#!/usr/bin/env python3
"""rdfsr_lint: repo-specific invariants no generic linter knows.

Rules
-----
layer-dag      The include graph must respect the layer DAG
                   util -> rdf -> schema -> rules -> eval
                        -> {gen, reduction, ilp} -> core -> api
               (ilp depends only on util). A file in src/<layer>/ may include
               project headers only from the layers listed in ALLOWED_DEPS.
facade-only    examples/*.cpp and tools/rdfsr_cli.cc are facade consumers:
               their project includes are restricted to api/rdfsr.h, gen/*,
               and util/* (the contract stated in CMakeLists.txt; previously
               enforced only by code review).
float-compare  No floating-point comparison against a non-zero float literal
               (or any epsilon literal like 1e-9) on the exact-rational
               solver path: src/core/, src/ilp/, src/util/rational.*.
               Exact-zero tests (== 0.0, != 0.0) are allowed — they are
               sparsity checks, exact in IEEE 754. Sigma/theta decisions must
               go through util::Rational / eval's integer counts.
thread-rand    No bare std::thread / std::jthread / rand() / srand() outside
               src/util/. Concurrency goes through util::ThreadPool (one
               tested shutdown/exception story; TSan suite covers it) and
               randomness through util/rng.h (deterministic, seedable).
lock-wrapper   No raw std::mutex / std::lock_guard / std::condition_variable
               (or any <mutex>/<shared_mutex> primitive) outside src/util/.
               Locking goes through util::Mutex / util::MutexLock /
               util::CondVar (util/mutex.h) so shared state stays inside the
               Clang thread-safety capability model (RDFSR_THREAD_SAFETY=ON).
atomic-ref     No bare std::atomic / std::atomic_ref outside src/util/ unless
               the site carries `lint:allow(atomic-ref: <phase contract>)`
               stating the owned-by-phase protocol (who writes during which
               barrier-separated phase, and which join publishes the result).
               Lock-free claims are invisible to the thread-safety analysis,
               so the written contract is the static story reviewers get.
cancel-poll    A function that accepts a util::CancellationToken or
               util::Deadline parameter and contains a for/while loop must
               poll it (ShouldStop/stop_requested/expired/... or a
               PeriodicCheck) or forward it to a callee — a token accepted
               and then ignored is a cancellation bug waiting for a big
               input. Scope: src/ outside src/util/.
compile-db     With --compile-commands <path>, every src/**/*.cc translation
               unit must appear in the compile database; a missing entry
               means clang-tidy and the thread-safety CI job silently skip
               that file.

Suppressions: append `// lint:allow(<rule>[: reason])` to the offending line,
or put it in a comment-only line directly above it. Suppressions are
themselves linted: an allow() naming an unknown rule, or one that suppresses
nothing, is an error (keeps waivers from rotting), and an atomic-ref waiver
with no reason text is itself a violation — the phase contract is the point.

Exit status: 0 clean, 1 violations, 2 usage/internal error.

Self-test: `rdfsr_lint.py --self-test` runs every rule against the known-bad
fixtures in tools/lint/testdata/ (each must be flagged, the good fixture must
not) and compiles the discarded-Result fixture expecting the [[nodiscard]]
rejection. Registered in ctest as rdfsr_lint and rdfsr_lint_selftest.
"""

import argparse
import bisect
import json
import os
import re
import subprocess
import sys

# --- configuration -----------------------------------------------------------

RULES = ("layer-dag", "facade-only", "float-compare", "thread-rand",
         "lock-wrapper", "atomic-ref", "cancel-poll", "compile-db")

# Layer -> layers whose headers it may include (itself always allowed).
ALLOWED_DEPS = {
    "util": {"util"},
    "rdf": {"rdf", "util"},
    "schema": {"schema", "rdf", "util"},
    "rules": {"rules", "schema", "rdf", "util"},
    "eval": {"eval", "rules", "schema", "rdf", "util"},
    "gen": {"gen", "eval", "rules", "schema", "rdf", "util"},
    "reduction": {"reduction", "rules", "schema", "rdf", "util"},
    "ilp": {"ilp", "util"},
    "core": {"core", "ilp", "eval", "rules", "schema", "rdf", "util"},
    "api": {"api", "core", "ilp", "eval", "rules", "schema", "rdf", "util"},
}

# Facade consumers and the include prefixes they may use.
FACADE_ALLOWED = ("api/rdfsr.h", "gen/", "util/")

# Files covered by the float-compare rule, relative to the repo root.
FLOAT_COMPARE_SCOPE = ("src/core/", "src/ilp/", "src/util/rational.")

SOURCE_EXTS = (".cc", ".h", ".cpp")

INCLUDE_RE = re.compile(r'^\s*#\s*include\s*"([^"]+)"')
ALLOW_RE = re.compile(r"lint:allow\(([a-z-]+)(?::([^)]*))?\)")
FLOAT_LIT = r"(?:\d+\.\d*(?:[eE][+-]?\d+)?|\.\d+(?:[eE][+-]?\d+)?|\d+[eE][+-]?\d+)[fF]?"
# A comparison operator with a float literal on either side. The left-context
# classes keep <, > from matching templates/includes/shifts (<<, >>, ->).
FLOAT_CMP_RE = re.compile(
    r"(?:==|!=|<=|>=|(?<![<>=&|^\-<])[<>](?!=))\s*(" + FLOAT_LIT + r")"
    r"|(" + FLOAT_LIT + r")\s*(?:==|!=|<=|>=|<(?!<)|>(?!>))"
)
EXACT_ZERO_RE = re.compile(r"^0*\.?0*[fF]?$")
THREAD_RAND_RE = re.compile(r"std::j?thread\b|(?<![\w.:])s?rand\s*\(")
LOCK_WRAPPER_RE = re.compile(
    r"std::(?:mutex|timed_mutex|recursive_mutex|recursive_timed_mutex|"
    r"shared_mutex|shared_timed_mutex|lock_guard|unique_lock|scoped_lock|"
    r"shared_lock|condition_variable(?:_any)?)\b"
)
ATOMIC_RE = re.compile(r"std::atomic(?:_ref)?\s*<")
# A named CancellationToken/Deadline *parameter*: the name is followed by `,`
# or `)` (possibly after a default argument), which locals/members/returns
# never are. util:: is optional — in-namespace code drops the qualifier.
TOKEN_PARAM_RE = re.compile(
    r"\b(?:util::)?(?:CancellationToken|Deadline)\b(?:\s+const)?"
    r"\s*&?\s*(\w+)\s*(?:=[^,()]*)?([,)])"
)
LOOP_RE = re.compile(r"\b(?:for|while)\s*\(")
POLL_RE = re.compile(
    r"\b(?:ShouldStop|stop_requested|expired|cancelled|can_trip|status)\s*\("
    r"|\bPeriodicCheck\b"
)


class Violation:
    def __init__(self, rule, path, line, message):
        self.rule = rule
        self.path = path
        self.line = line
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(line, in_block_comment):
    """Blanks out //, /* */ comment text and string/char literal contents.

    Returns (code_text, still_in_block_comment). Keeps column positions by
    replacing stripped characters with spaces.
    """
    out = []
    i, n = 0, len(line)
    state = "block" if in_block_comment else "code"
    quote = ""
    while i < n:
        c = line[i]
        nxt = line[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                out.append(" " * (n - i))
                i = n
                continue
            if c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if c in "\"'":
                state = "quote"
                quote = c
                out.append(c)
                i += 1
                continue
            out.append(c)
            i += 1
        elif state == "quote":
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
                out.append(c)
            else:
                out.append(" ")
            i += 1
        else:  # block comment
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(" ")
            i += 1
    return "".join(out), state == "block"


def layer_of(include):
    head = include.split("/", 1)[0]
    return head if head in ALLOWED_DEPS else None


def check_cancel_poll(rel, code_lines, allows_by_line, used_allows, violations):
    """Whole-file pass: every function definition taking a named
    CancellationToken/Deadline parameter and containing a loop must poll the
    token or at least mention the parameter (forwarding it counts — the
    callee then owns the polling obligation)."""
    text = "\n".join(code_lines)
    line_starts = [0]
    for code in code_lines:
        line_starts.append(line_starts[-1] + len(code) + 1)

    flagged_bodies = set()
    for m in TOKEN_PARAM_RE.finditer(text):
        name = m.group(1)
        # Walk to the closing paren of the parameter list.
        if m.group(2) == ")":
            close = m.end() - 1
        else:
            depth = 0
            close = None
            for i in range(m.end(), len(text)):
                c = text[i]
                if c == "(":
                    depth += 1
                elif c == ")":
                    if depth == 0:
                        close = i
                        break
                    depth -= 1
            if close is None:
                continue
        # Scan the declaration trailer: `{` means definition; `;` (pure
        # declaration) or `=` (defaulted/deleted, or this was actually an
        # initializer) means nothing to check. Balanced parens cover
        # noexcept(...) and attribute macros; the character class covers
        # cv-qualifiers, ref-qualifiers, and trailing return types.
        i = close + 1
        body_start = None
        while i < len(text):
            c = text[i]
            if c == "{":
                body_start = i
                break
            if c in ";=":
                break
            if c == "(":
                depth = 1
                i += 1
                while i < len(text) and depth:
                    if text[i] == "(":
                        depth += 1
                    elif text[i] == ")":
                        depth -= 1
                    i += 1
                continue
            if c.isspace() or c.isalnum() or c in "_:<>,&*[]-":
                i += 1
                continue
            break
        if body_start is None or body_start in flagged_bodies:
            continue
        depth = 0
        body_end = len(text)
        for i in range(body_start, len(text)):
            c = text[i]
            if c == "{":
                depth += 1
            elif c == "}":
                depth -= 1
                if depth == 0:
                    body_end = i + 1
                    break
        body = text[body_start:body_end]
        if not LOOP_RE.search(body):
            continue
        if POLL_RE.search(body):
            continue
        if re.search(r"\b" + re.escape(name) + r"\b", body):
            continue  # forwarded/stored: the callee owns the poll obligation
        flagged_bodies.add(body_start)
        sig_line = bisect.bisect_right(line_starts, m.start())
        allows = allows_by_line[sig_line] if sig_line < len(allows_by_line) else {}
        if "cancel-poll" in allows:
            used_allows.add((allows["cancel-poll"][0], "cancel-poll"))
            continue
        violations.append(Violation(
            "cancel-poll", rel, sig_line,
            f'function takes cancellation parameter "{name}" and loops but '
            "never polls or forwards it — big inputs would ignore the "
            "deadline (poll via PeriodicCheck/ShouldStop or pass it down)"))


def lint_file(root, rel, violations):
    path = os.path.join(root, rel)
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            raw_lines = f.readlines()
    except OSError as e:
        violations.append(Violation("internal", rel, 0, f"unreadable: {e}"))
        return

    unix_rel = rel.replace(os.sep, "/")
    src_layer = None
    if unix_rel.startswith("src/"):
        parts = unix_rel.split("/")
        if len(parts) >= 3 and parts[1] in ALLOWED_DEPS:
            src_layer = parts[1]
    facade_consumer = unix_rel.startswith("examples/") or unix_rel == "tools/rdfsr_cli.cc"
    float_scope = any(unix_rel.startswith(p) for p in FLOAT_COMPARE_SCOPE)
    thread_scope = not unix_rel.startswith("src/util/")
    cancel_scope = unix_rel.startswith("src/") and thread_scope

    in_block = False
    used_allows = set()
    declared_allows = {}  # (lineno, rule) -> rule name is known
    pending_allows = {}  # rule -> (lineno, reason) from comment-only line above
    code_lines = []  # stripped code text, for the whole-file cancel-poll pass
    allows_by_line = [{}]  # 1-based: effective allows visible on each line
    for lineno, raw in enumerate(raw_lines, start=1):
        line_allows = {}
        for m in ALLOW_RE.finditer(raw):
            declared_allows[(lineno, m.group(1))] = m.group(1) in RULES
            line_allows[m.group(1)] = (lineno, m.group(2) or "")

        was_in_block = in_block
        code, in_block = strip_comments_and_strings(raw.rstrip("\n"), in_block)

        effective_allows = dict(pending_allows)
        effective_allows.update(line_allows)
        # A comment-only allow line suppresses on the next code line instead.
        pending_allows = line_allows if not code.strip() else {}
        code_lines.append(code)
        allows_by_line.append(effective_allows)

        def report(rule, message, _ln=lineno, _allows=effective_allows,
                   require_reason=False):
            if rule in _allows:
                allow_line, reason = _allows[rule]
                used_allows.add((allow_line, rule))
                if require_reason and not reason.strip():
                    violations.append(Violation(
                        rule, rel, allow_line,
                        f"lint:allow({rule}) waiver must state the "
                        "owned-by-phase contract (which phase owns the data "
                        "and which barrier/join publishes it)"))
                return
            violations.append(Violation(rule, rel, _ln, message))

        # Matched against the raw line: the include path is a string literal,
        # which strip_comments_and_strings blanks out of `code`.
        inc = INCLUDE_RE.match(raw) if not was_in_block else None
        if inc:
            include = inc.group(1)
            target = layer_of(include)
            if src_layer is not None and target is not None:
                if target not in ALLOWED_DEPS[src_layer]:
                    report(
                        "layer-dag",
                        f'layer "{src_layer}" must not include "{include}" '
                        f'(allowed: {", ".join(sorted(ALLOWED_DEPS[src_layer]))})',
                    )
            if facade_consumer and (target is not None or include.startswith("api/")):
                if not any(
                    include == p if not p.endswith("/") else include.startswith(p)
                    for p in FACADE_ALLOWED
                ):
                    report(
                        "facade-only",
                        f'facade consumer includes internal header "{include}" '
                        f"(allowed: {', '.join(FACADE_ALLOWED)})",
                    )

        if float_scope:
            for m in FLOAT_CMP_RE.finditer(code):
                lit = m.group(1) or m.group(2)
                if lit is not None and EXACT_ZERO_RE.match(lit):
                    continue  # exact-zero sparsity test
                report(
                    "float-compare",
                    f"floating-point comparison against {lit} on the "
                    "exact-rational solver path (use util::Rational / "
                    "integer counts, or lint:allow with a reason)",
                )

        if thread_scope:
            m = THREAD_RAND_RE.search(code)
            if m:
                report(
                    "thread-rand",
                    f'bare "{m.group(0).strip()}" outside src/util/ '
                    "(use util::ThreadPool / util/rng.h)",
                )
            m = LOCK_WRAPPER_RE.search(code)
            if m:
                report(
                    "lock-wrapper",
                    f'raw "{m.group(0)}" outside src/util/ (use util::Mutex '
                    "/ util::MutexLock / util::CondVar from util/mutex.h so "
                    "the thread-safety analysis sees the capability)",
                )
            m = ATOMIC_RE.search(code)
            if m:
                report(
                    "atomic-ref",
                    f'bare "{m.group(0).rstrip("<").strip()}" outside '
                    "src/util/ without an owned-by-phase contract — add "
                    "lint:allow(atomic-ref: <who owns it during which phase, "
                    "which join publishes it>) or guard the state with "
                    "util::Mutex",
                    require_reason=True,
                )

    if cancel_scope:
        check_cancel_poll(rel, code_lines, allows_by_line, used_allows,
                          violations)

    for (lineno, rule), known in sorted(declared_allows.items()):
        if not known:
            violations.append(
                Violation("lint-allow", rel, lineno, f'allow() names unknown rule "{rule}"')
            )
        elif (lineno, rule) not in used_allows:
            violations.append(
                Violation(
                    "lint-allow", rel, lineno,
                    f'stale lint:allow({rule}): suppresses nothing on this line',
                )
            )


def collect_files(root):
    rels = []
    for top in ("src", "tools", "examples", "tests", "bench"):
        for dirpath, _dirnames, filenames in os.walk(os.path.join(root, top)):
            if "testdata" in dirpath.split(os.sep):
                continue
            for name in sorted(filenames):
                if name.endswith(SOURCE_EXTS):
                    rels.append(os.path.relpath(os.path.join(dirpath, name), root))
    return sorted(rels)


def check_compile_db(root, db_path, violations):
    """compile-db rule: every src/**/*.cc must be a translation unit in the
    compile database — clang-tidy and the thread-safety job key off it, and
    a file CMake forgot is a file those gates silently never check."""
    if not os.path.isfile(db_path):
        # Tolerated: the lint must stay runnable straight from a checkout,
        # before any build directory exists.
        print(f"rdfsr_lint: note: no compile database at {db_path}; "
              "skipping the compile-db coverage check")
        return
    try:
        with open(db_path, encoding="utf-8") as f:
            entries = json.load(f)
    except (OSError, ValueError) as e:
        violations.append(Violation(
            "compile-db", os.path.relpath(db_path, root), 0,
            f"unreadable compile database: {e}"))
        return
    covered = set()
    for entry in entries:
        fname = entry.get("file", "")
        if not os.path.isabs(fname):
            fname = os.path.join(entry.get("directory", ""), fname)
        covered.add(os.path.normpath(fname))
    for rel in collect_files(root):
        unix_rel = rel.replace(os.sep, "/")
        if not unix_rel.startswith("src/") or not unix_rel.endswith(".cc"):
            continue
        if os.path.normpath(os.path.join(root, rel)) not in covered:
            violations.append(Violation(
                "compile-db", rel, 0,
                "translation unit missing from compile_commands.json — "
                "clang-tidy and the thread-safety build would silently skip "
                "it (add it to a CMake target)"))


def run_lint(root, compile_db=None):
    violations = []
    for rel in collect_files(root):
        lint_file(root, rel, violations)
    if compile_db is not None:
        check_compile_db(root, compile_db, violations)
    return violations


# --- self-test ---------------------------------------------------------------

# fixture (relative to testdata/) -> set of rules it must trip.
FIXTURE_EXPECTATIONS = {
    "src/eval/bad_layering.cc": {"layer-dag"},
    "examples/bad_facade.cpp": {"facade-only"},
    "src/core/bad_float_compare.cc": {"float-compare"},
    "src/core/bad_thread.cc": {"thread-rand"},
    "src/core/bad_cancel_poll.cc": {"cancel-poll"},
    "src/core/bad_atomic_ref.cc": {"atomic-ref"},
    "src/core/bad_lock_wrapper.cc": {"lock-wrapper"},
    "src/core/good_sample.cc": set(),
}


def self_test(repo_root):
    testdata = os.path.join(repo_root, "tools", "lint", "testdata")
    failures = []

    for rel, expected in sorted(FIXTURE_EXPECTATIONS.items()):
        violations = []
        lint_file(testdata, rel, violations)
        got = {v.rule for v in violations}
        if got != expected:
            failures.append(
                f"{rel}: expected rules {sorted(expected)}, got {sorted(got)}:\n  "
                + "\n  ".join(str(v) for v in violations)
            )
        else:
            print(f"self-test OK: {rel} -> {sorted(got) or ['clean']}")

    # The discarded-Result fixture must be rejected by the compiler: Status and
    # Result<T> are [[nodiscard]], and CI promotes the warning to an error.
    cxx = os.environ.get("CXX", "c++")
    base = [cxx, "-std=c++20", "-fsyntax-only", "-Werror=unused-result",
            "-I", os.path.join(repo_root, "src")]
    bad = os.path.join(testdata, "nodiscard", "discard_result.cc")
    good = os.path.join(testdata, "nodiscard", "checked_result.cc")
    try:
        r = subprocess.run(base + [bad], capture_output=True, text=True)
        if r.returncode == 0:
            failures.append("discard_result.cc compiled clean; expected "
                            "[[nodiscard]] rejection")
        elif "nodiscard" not in r.stderr and "unused-result" not in r.stderr:
            failures.append(f"discard_result.cc failed for the wrong reason:\n{r.stderr}")
        else:
            print("self-test OK: discarded Result<T>/Status rejected by compiler")
        r = subprocess.run(base + [good], capture_output=True, text=True)
        if r.returncode != 0:
            failures.append(f"checked_result.cc should compile clean:\n{r.stderr}")
        else:
            print("self-test OK: checked Result<T> accepted")
    except FileNotFoundError:
        failures.append(f"compiler not found: {cxx}")

    if failures:
        print("\nSELF-TEST FAILURES:", file=sys.stderr)
        for f in failures:
            print("  " + f, file=sys.stderr)
        return 1
    print("lint self-test passed")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None,
                        help="repo root (default: two levels up from this file)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the linter against its known-bad fixtures")
    parser.add_argument("--compile-commands", default=None, metavar="PATH",
                        help="compile_commands.json to check src/ coverage "
                             "against (skipped with a note if absent)")
    args = parser.parse_args()

    script_root = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    root = os.path.abspath(args.root) if args.root else script_root

    if args.self_test:
        return self_test(root)

    compile_db = (os.path.abspath(args.compile_commands)
                  if args.compile_commands else None)
    violations = run_lint(root, compile_db)
    for v in violations:
        print(v)
    if violations:
        print(f"\nrdfsr_lint: {len(violations)} violation(s)", file=sys.stderr)
        return 1
    print("rdfsr_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
