// Known-good counterpart of discard_result.cc: both return values consumed,
// must compile clean under -Werror=unused-result.
#include "util/status.h"

rdfsr::Status DoWork() { return rdfsr::Status::OK(); }
rdfsr::Result<int> Compute() { return 42; }

int main() {
  if (!DoWork().ok()) return 1;
  auto r = Compute();
  return r.ok() ? 0 : 1;
}
