// Known-bad fixture: discards a Status and a Result<T>. Both types are
// [[nodiscard]], so -Werror=unused-result must reject this translation unit
// (the lint self-test asserts the compile fails).
#include "util/status.h"

rdfsr::Status DoWork() { return rdfsr::Status::OK(); }
rdfsr::Result<int> Compute() { return 42; }

int main() {
  DoWork();    // error: discarded Status
  Compute();   // error: discarded Result<int>
  return 0;
}
