// Known-bad fixture: a file in the eval layer reaching UP the DAG into core/.
// The layer-dag rule must reject this include.
#include "core/solver.h"
#include "schema/signature_index.h"  // fine: schema is below eval

int eval_fixture() { return 0; }
