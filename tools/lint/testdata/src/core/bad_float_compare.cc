// Known-bad fixture: floating-point threshold decisions on the solver path.
// Exact-zero tests are allowed; everything else must be flagged.
double sigma();

bool fixture() {
  double s = sigma();
  if (s == 0.0) return false;       // allowed: exact-zero sparsity test
  if (s >= 0.75) return true;       // flagged: non-zero literal comparison
  return (1.0 - s) < 1e-9;          // flagged: epsilon tolerance comparison
}
