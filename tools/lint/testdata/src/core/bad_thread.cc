// Known-bad fixture: bare std::thread and rand() outside util/.
#include <cstdlib>
#include <thread>

int fixture() {
  std::thread t([] {});  // flagged: use util::ThreadPool
  t.join();
  return rand();  // flagged: use util/rng.h
}
