// Known-bad fixture: bare atomics outside src/util/ without an owned-by-phase
// contract. Both sites below are flagged — the first has no waiver at all,
// the second has a waiver with no reason text (the contract IS the waiver).
#include <atomic>
#include <cstdint>

std::uint32_t fixture_claim(std::uint32_t* slots, std::uint32_t id) {
  std::atomic_ref<std::uint32_t> slot(slots[0]);  // flagged: no contract
  std::uint32_t expected = 0;
  slot.compare_exchange_strong(expected, id);

  // lint:allow(atomic-ref)
  std::atomic<std::uint32_t> counter{0};  // flagged: waiver states no contract
  return counter.load();
}
