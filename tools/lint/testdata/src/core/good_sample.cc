// Known-good fixture: everything here must pass every rule.
//   - includes respect the DAG (core may use eval/schema/util),
//   - exact-zero float tests are fine,
//   - a suppressed comparison with a reason is fine,
//   - "std::thread" in a comment or string is not a violation.
#include "eval/sort_stats.h"
#include "schema/property_set.h"
#include "util/rational.h"

const char* kDoc = "never uses std::thread or rand() at runtime";

bool fixture(double coef) {
  if (coef != 0.0) return true;  // exact-zero test: allowed
  return coef > 0.5;  // lint:allow(float-compare: display bucketing fixture)
}
