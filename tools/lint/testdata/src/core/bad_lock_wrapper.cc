// Known-bad fixture: raw <mutex> primitives outside src/util/. Locking goes
// through util::Mutex / util::MutexLock (util/mutex.h) so the Clang
// thread-safety analysis can see the capability.
#include <mutex>

int fixture_raw_lock() {
  std::mutex mu;  // flagged: use util::Mutex
  std::lock_guard<std::mutex> lock(mu);  // flagged: use util::MutexLock
  return 0;
}
