// Known-bad fixture: accepts a cancellation token, loops, and never looks at
// it — exactly the bug the cancel-poll rule exists for. (Textual fixture:
// never compiled, only linted.)
#include "util/deadline.h"

int fixture_ignores_token(int n, const util::CancellationToken& cancel) {
  int acc = 0;
  for (int i = 0; i < n; ++i) {  // flagged: loop never polls `cancel`
    acc += i;
  }
  return acc;
}

// Forwarding the token is fine: the callee owns the poll obligation.
int fixture_forwards(int n, const util::CancellationToken& cancel) {
  int acc = 0;
  for (int i = 0; i < n; ++i) {
    acc += fixture_ignores_token(i, cancel);
  }
  return acc;
}

// Polling through a PeriodicCheck is the canonical pattern.
int fixture_polls(int n, const util::CancellationToken& cancel) {
  util::PeriodicCheck check(cancel);
  int acc = 0;
  for (int i = 0; i < n; ++i) {
    if (check.ShouldStop()) break;
    acc += i;
  }
  return acc;
}

// A declaration alone carries no body to check.
int fixture_declared(int n, const util::CancellationToken& cancel);
