// Known-bad fixture: an example bypassing the facade. Examples may include
// api/rdfsr.h, gen/*, and util/* only; core/solver.h must be rejected.
#include "api/rdfsr.h"
#include "core/solver.h"

int main() { return 0; }
