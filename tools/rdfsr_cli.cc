// rdfsr — command-line driver for the rdfsr façade API.
//
// The three subcommands mirror the paper's workflow (Arenas et al., PVLDB
// 2014): `measure` evaluates sigma_r over a dataset (Sections 2-3), `refine`
// searches for a sort refinement (Sections 4-7: highest-theta for fixed k, or
// lowest-k for fixed theta), and `report` interprets a refinement as per-sort
// schema profiles (Section 7.1.1). Everything goes through api/rdfsr.h — this
// file is the reference consumer of the public API.

#include <algorithm>
#include <chrono>
#include <climits>
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "api/rdfsr.h"

namespace {

using rdfsr::api::Analysis;
using rdfsr::api::Dataset;
using rdfsr::api::DatasetOptions;
using rdfsr::api::Refinement;

constexpr const char* kUsage = R"(rdfsr — structuredness measurement and sort refinement for RDF datasets

usage: rdfsr <command> <file.nt> [options]

commands:
  measure   print sigma of the dataset under one or more rules
  refine    search for a sort refinement of the dataset
  report    refine, then print the per-sort schema report

common options:
  --sort <iri>      analyze only the subjects declared of this rdf:type
  --threads <n>     parser/index worker threads (0 = one per hardware
                    thread; capped at the input's chunk count; the result
                    is identical for any value)
  --rule <spec>     cov (default) | sim | cov-ignoring:p1,... | dep:p1,p2 |
                    symdep:p1,p2 | depdisj:p1,p2 | free text in the rule
                    language; measure accepts --rule multiple times
  --max-errors <n>  tolerate up to n malformed N-Triples lines (skipped and
                    reported on stderr); default 0 = fail on the first
  --timeout <s>     wall-clock budget in seconds for the whole run (load +
                    search); a cut search still prints its best refinement
                    but the process exits 4
  --view            print the ASCII signature view of the dataset

refine / report options:
  --k <n>           implicit sorts for the highest-theta search (default 2)
  --theta <x>       threshold in [0,1] for the lowest-k search (overrides --k)
  --max-k <n>       cap for the lowest-k search
  --time-limit <s>  exact-solver budget per decision instance, seconds
  --report          (refine only) also print the schema report

exit codes:
  0  success
  2  usage error
  3  data error (unreadable/malformed input, unknown sort or rule)
  4  deadline or resource limit (--timeout, solver limits)
  5  internal error

examples:
  rdfsr measure data.nt --sort http://x/Person --rule cov --rule sim
  rdfsr refine data.nt --sort http://x/Person --k 2 --report
  rdfsr refine data.nt --rule 'c = c -> val(c) = 1' --theta 0.9
  rdfsr report data.nt --sort http://x/Person --k 3
)";

// Exit-code taxonomy (documented in kUsage): scripts can tell bad input (3)
// from an expired budget (4) from a genuine bug (5) without parsing stderr.
constexpr int kExitUsage = 2;
constexpr int kExitDataError = 3;
constexpr int kExitLimit = 4;
constexpr int kExitInternal = 5;

int UsageError(const std::string& message) {
  std::cerr << "error: " << message << "\n\n" << kUsage;
  return kExitUsage;
}

int ExitCodeFor(const rdfsr::Status& status) {
  switch (status.code()) {
    case rdfsr::StatusCode::kOk:
      return 0;
    case rdfsr::StatusCode::kInvalidArgument:
    case rdfsr::StatusCode::kParseError:
    case rdfsr::StatusCode::kNotFound:
    case rdfsr::StatusCode::kOutOfRange:
      return kExitDataError;
    case rdfsr::StatusCode::kResourceExhausted:
    case rdfsr::StatusCode::kDeadlineExceeded:
    case rdfsr::StatusCode::kCancelled:
      return kExitLimit;
    case rdfsr::StatusCode::kInternal:
      return kExitInternal;
  }
  return kExitInternal;
}

int Fail(const rdfsr::Status& status) {
  std::cerr << "error: " << status.ToString() << "\n";
  return ExitCodeFor(status);
}

std::string FormatSigma(double value) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(4) << value;
  return out.str();
}

// Strict numeric parsing: the whole string must convert, so typos fail loudly
// instead of silently becoming 0 (atoi/strtod leftovers).
bool ParseDouble(const char* text, double* out) {
  char* end = nullptr;
  *out = std::strtod(text, &end);
  return end != text && *end == '\0';
}

bool ParseInt(const char* text, int* out) {
  char* end = nullptr;
  const long value = std::strtol(text, &end, 10);
  if (end == text || *end != '\0' || value < INT_MIN || value > INT_MAX) {
    return false;
  }
  *out = static_cast<int>(value);
  return true;
}

/// Parsed command line, shared by all subcommands.
struct Args {
  std::string command;
  std::string path;
  std::string sort;
  std::vector<std::string> rules;
  bool view = false;
  bool report = false;
  int k = 2;
  int threads = 1;      // 0 = auto (one per hardware thread)
  double theta = -1.0;  // < 0: highest-theta mode
  int max_k = -1;
  double time_limit = -1.0;
  double timeout = -1.0;  // whole-run wall-clock budget, seconds
  int max_errors = 0;     // tolerated malformed input lines
  /// Refine/report-only flags seen, for rejection under `measure`.
  std::vector<std::string> refine_flags;
};

/// Parses argv into Args; returns false (after printing) on bad input.
bool ParseArgs(int argc, char** argv, Args* args, int* exit_code) {
  auto need_value = [&](int i, const char* flag) {
    if (i + 1 < argc) return true;
    *exit_code = UsageError(std::string(flag) + " needs a value");
    return false;
  };
  auto bad_number = [&](const char* flag, const char* text) {
    *exit_code = UsageError(std::string(flag) + " needs a number, got '" +
                            text + "'");
    return false;
  };
  args->command = argv[1];
  if (argc < 3) {
    *exit_code = UsageError("missing <file.nt> argument");
    return false;
  }
  args->path = argv[2];
  for (int i = 3; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--sort") {
      if (!need_value(i, "--sort")) return false;
      args->sort = argv[++i];
    } else if (flag == "--rule") {
      if (!need_value(i, "--rule")) return false;
      args->rules.push_back(argv[++i]);
    } else if (flag == "--threads") {
      if (!need_value(i, "--threads")) return false;
      if (!ParseInt(argv[++i], &args->threads)) {
        return bad_number("--threads", argv[i]);
      }
    } else if (flag == "--max-errors") {
      if (!need_value(i, "--max-errors")) return false;
      if (!ParseInt(argv[++i], &args->max_errors) || args->max_errors < 0) {
        *exit_code = UsageError(
            std::string("--max-errors must be a non-negative count, got '") +
            argv[i] + "'");
        return false;
      }
    } else if (flag == "--timeout") {
      if (!need_value(i, "--timeout")) return false;
      if (!ParseDouble(argv[++i], &args->timeout) || args->timeout <= 0) {
        *exit_code = UsageError(std::string("--timeout must be a positive "
                                            "number of seconds, got '") +
                                argv[i] + "'");
        return false;
      }
    } else if (flag == "--view") {
      args->view = true;
    } else if (flag == "--report") {
      args->report = true;
      args->refine_flags.push_back(flag);
    } else if (flag == "--k") {
      if (!need_value(i, "--k")) return false;
      if (!ParseInt(argv[++i], &args->k)) return bad_number("--k", argv[i]);
      args->refine_flags.push_back(flag);
    } else if (flag == "--theta") {
      if (!need_value(i, "--theta")) return false;
      // Range-checked here: a negative value would otherwise silently select
      // the highest-theta mode (the internal sentinel for "--theta unset").
      if (!ParseDouble(argv[++i], &args->theta) || args->theta < 0.0 ||
          args->theta > 1.0) {
        *exit_code = UsageError(
            std::string("--theta must be a number in [0, 1], got '") +
            argv[i] + "'");
        return false;
      }
      args->refine_flags.push_back(flag);
    } else if (flag == "--max-k") {
      if (!need_value(i, "--max-k")) return false;
      if (!ParseInt(argv[++i], &args->max_k)) {
        return bad_number("--max-k", argv[i]);
      }
      args->refine_flags.push_back(flag);
    } else if (flag == "--time-limit") {
      if (!need_value(i, "--time-limit")) return false;
      if (!ParseDouble(argv[++i], &args->time_limit) ||
          args->time_limit <= 0) {
        *exit_code = UsageError(std::string("--time-limit must be a positive "
                                            "number of seconds, got '") +
                                argv[i] + "'");
        return false;
      }
      args->refine_flags.push_back(flag);
    } else {
      *exit_code = UsageError("unknown option: " + flag);
      return false;
    }
  }
  if (args->command == "measure" && !args->refine_flags.empty()) {
    *exit_code = UsageError(args->refine_flags.front() +
                            " is a refine/report option; not valid for "
                            "measure");
    return false;
  }
  return true;
}

/// Loads the dataset named by the common arguments. Skipped-line diagnostics
/// (--max-errors) go to stderr so stdout stays machine-readable.
rdfsr::Result<Dataset> Load(const Args& args) {
  DatasetOptions options;
  options.sort = args.sort;
  // 0 (and any value < 1) means auto; the api clamps to the chunk count and
  // reports the resolved value via effective_parse_threads().
  options.parse_threads = args.threads;
  options.max_errors = static_cast<std::size_t>(args.max_errors);
  std::vector<rdfsr::rdf::ParseDiagnostic> diagnostics;
  if (args.max_errors > 0) options.diagnostics = &diagnostics;
  if (args.timeout > 0) {
    options.deadline_ms =
        static_cast<std::int64_t>(args.timeout * 1000.0) + 1;
  }
  auto dataset = Dataset::FromNTriplesFile(args.path, options);
  for (const auto& diag : diagnostics) {
    std::cerr << "warning: " << args.path << ":" << diag.line
              << ": skipped malformed line: " << diag.message << "\n";
  }
  return dataset;
}

int Measure(const Args& args) {
  auto dataset = Load(args);
  if (!dataset.ok()) return Fail(dataset.status());
  std::cout << "dataset: " << dataset->Describe() << "\n"
            << "parse threads: " << dataset->effective_parse_threads()
            << (args.threads == dataset->effective_parse_threads()
                    ? ""
                    : " (clamped)")
            << "\n";
  if (args.view) std::cout << "\n" << dataset->RenderView() << "\n";
  std::vector<std::string> rules = args.rules;
  if (rules.empty()) rules = {"cov", "sim"};
  for (const std::string& spec : rules) {
    auto analysis = dataset->Analyze(spec);
    if (!analysis.ok()) return Fail(analysis.status());
    std::cout << "rule " << spec << ": " << analysis->RuleText() << "\n"
              << "  sigma = " << FormatSigma(analysis->Sigma()) << "\n";
  }
  return 0;
}

int Refine(const Args& args, bool report_only) {
  if (args.rules.size() > 1) {
    return UsageError(args.command + " takes a single --rule");
  }
  const auto start = std::chrono::steady_clock::now();
  auto dataset = Load(args);
  if (!dataset.ok()) return Fail(dataset.status());
  std::cout << "dataset: " << dataset->Describe() << "\n";
  if (args.view) std::cout << "\n" << dataset->RenderView() << "\n";

  auto analysis =
      dataset->Analyze(args.rules.empty() ? "cov" : args.rules.front());
  if (!analysis.ok()) return Fail(analysis.status());
  if (args.time_limit > 0) analysis->TimeLimit(args.time_limit);
  if (args.timeout > 0) {
    // --timeout budgets the whole run: the search gets what the load left
    // over (floored above zero so an exhausted budget still cuts the search
    // through the anytime path instead of tripping mid-configuration).
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    analysis->Timeout(std::max(args.timeout - elapsed, 1e-3));
  }
  analysis->HeuristicThreads(args.threads);
  std::cout << "rule: " << analysis->RuleText() << "\n"
            << "sigma over the whole dataset: "
            << FormatSigma(analysis->Sigma()) << "\n\n";

  rdfsr::Result<Refinement> refinement =
      args.theta >= 0.0 ? analysis->LowestK(args.theta, args.max_k)
                        : analysis->HighestTheta(args.k);
  if (!refinement.ok()) return Fail(refinement.status());
  if (args.theta >= 0.0) {
    std::cout << "lowest k with sigma >= " << args.theta << ": "
              << refinement->num_sorts();
  } else {
    std::cout << "highest theta with k = " << args.k << ": "
              << FormatSigma(refinement->theta.ToDouble());
  }
  std::cout << (refinement->optimal ? " (proven optimal)" : "")
            << (refinement->timed_out ? " (timed out: best found before cut)"
                                      : "")
            << "\n"
            << analysis->Summary(*refinement) << "\n";
  if (!report_only) std::cout << "\n" << analysis->Render(*refinement);
  if (report_only || args.report) {
    std::cout << "\n" << analysis->Report(*refinement);
  }
  // A cut search still printed its incumbent, but the run did hit its budget:
  // exit 4 so scripts notice without parsing the banner.
  return refinement->timed_out ? kExitLimit : 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << kUsage;
    return 2;
  }
  const std::string command = argv[1];
  if (command == "help" || command == "--help" || command == "-h") {
    std::cout << kUsage;
    return 0;
  }
  Args args;
  int exit_code = 0;
  if (!ParseArgs(argc, argv, &args, &exit_code)) return exit_code;
  if (command == "measure") return Measure(args);
  if (command == "refine") return Refine(args, /*report_only=*/false);
  if (command == "report") return Refine(args, /*report_only=*/true);
  return UsageError("unknown command: " + command);
}
