#include "gen/persons.h"

#include <map>
#include <vector>

#include "rdf/vocab.h"
#include "util/check.h"
#include "util/rng.h"

namespace rdfsr::gen {

const char* const kPersonsProperties[8] = {
    "deathPlace", "birthPlace", "description", "name",
    "deathDate",  "birthDate",  "givenName",   "surName",
};

namespace {

// Joint distribution of (deathPlace, deathDate, birthPlace, birthDate),
// fitted offline with iterative proportional fitting to the paper's reported
// statistics: the four marginals (90,246 / 173,507 / 323,368 / 420,242 of
// 790,703 subjects), the birthPlace ∧ birthDate joint (241,156), and the six
// pairwise conditionals of Table 1. The resulting maximum-entropy joint
// reproduces EVERY cell of Table 1 to two decimals and
// sigma_SymDep[deathPlace, deathDate] = 0.39. Bit order in the index:
// (dP << 3) | (dD << 2) | (bP << 1) | bD.
constexpr double kDeathBirthJoint[16] = {
    0.348839, 0.131642, 0.081067, 0.198473,  // dP=0 dD=0
    0.011900, 0.090667, 0.000461, 0.022804,  // dP=0 dD=1
    0.000788, 0.000053, 0.013690, 0.006016,  // dP=1 dD=0
    0.003020, 0.004130, 0.008757, 0.077694,  // dP=1 dD=1
};

// Names and description (independent of the date/place block).
constexpr double kPGivenSurName = 0.95;  // ~40k of 790k missing surName;
                                         // Table 2: SymDep[gN,sN] = 1.0
constexpr double kPDescription = 0.15;   // calibrated so sigma_Cov = 0.54

/// One sampled subject: which of the 8 properties it has.
struct PersonBits {
  bool death_place, birth_place, description, death_date, birth_date;
  bool given_sur;
};

PersonBits SampleBits(Rng* rng) {
  PersonBits bits{};
  bits.given_sur = rng->Chance(kPGivenSurName);
  bits.description = rng->Chance(kPDescription);
  // Categorical draw from the fitted joint.
  double u = rng->NextDouble();
  int cell = 15;
  for (int i = 0; i < 16; ++i) {
    u -= kDeathBirthJoint[i];
    if (u < 0) {
      cell = i;
      break;
    }
  }
  bits.death_place = (cell & 8) != 0;
  bits.death_date = (cell & 4) != 0;
  bits.birth_place = (cell & 2) != 0;
  bits.birth_date = (cell & 1) != 0;
  return bits;
}

std::vector<int> SupportOf(const PersonBits& bits) {
  // Column order: dP=0, bP=1, desc=2, name=3, dD=4, bD=5, gN=6, sN=7.
  std::vector<int> support;
  if (bits.death_place) support.push_back(0);
  if (bits.birth_place) support.push_back(1);
  if (bits.description) support.push_back(2);
  support.push_back(3);  // name: everyone
  if (bits.death_date) support.push_back(4);
  if (bits.birth_date) support.push_back(5);
  if (bits.given_sur) {
    support.push_back(6);
    support.push_back(7);
  }
  return support;
}

}  // namespace

schema::SignatureIndex GeneratePersons(const PersonsConfig& config) {
  RDFSR_CHECK_GT(config.num_subjects, 0);
  Rng rng(config.seed);
  std::map<std::vector<int>, std::int64_t> histogram;
  for (std::int64_t i = 0; i < config.num_subjects; ++i) {
    ++histogram[SupportOf(SampleBits(&rng))];
  }
  // At tiny scales a rare property (deathPlace) may not be sampled at all; a
  // valid dataset view has no unused columns, so pad with one full-support
  // subject when needed.
  std::vector<bool> used(8, false);
  for (const auto& [support, count] : histogram) {
    (void)count;
    for (int p : support) used[p] = true;
  }
  if (std::find(used.begin(), used.end(), false) != used.end()) {
    ++histogram[{0, 1, 2, 3, 4, 5, 6, 7}];
  }
  std::vector<std::string> names(kPersonsProperties, kPersonsProperties + 8);
  std::vector<schema::Signature> signatures;
  for (const auto& [support, count] : histogram) {
    signatures.emplace_back(support, count);
  }
  return schema::SignatureIndex::FromSignatures(std::move(names),
                                                std::move(signatures));
}

rdf::Graph GeneratePersonsGraph(const PersonsConfig& config) {
  RDFSR_CHECK_GT(config.num_subjects, 0);
  Rng rng(config.seed);
  rdf::Graph graph;
  const std::string base = "http://example.org/person/";
  const std::string prop_base = "http://example.org/prop/";
  for (std::int64_t i = 0; i < config.num_subjects; ++i) {
    const std::string subject = base + "p" + std::to_string(i);
    graph.AddIri(subject, rdf::vocab::kRdfType, rdf::vocab::kFoafPerson);
    for (int p : SupportOf(SampleBits(&rng))) {
      const std::string prop = prop_base + kPersonsProperties[p];
      graph.AddLiteral(subject, prop, "v" + std::to_string(i) + "_" +
                                          std::to_string(p));
    }
  }
  return graph;
}

}  // namespace rdfsr::gen
