// Random datasets for property-based testing.
//
// Valid dataset views (no empty subject rows, no unused property columns) so
// the brute-force semantics, the signature-level enumerator, and the closed
// forms are all defined on the same object.

#ifndef RDFSR_GEN_RANDOM_GRAPH_H_
#define RDFSR_GEN_RANDOM_GRAPH_H_

#include <cstdint>

#include "rdf/graph.h"
#include "schema/property_matrix.h"
#include "schema/signature_index.h"

namespace rdfsr::gen {

/// Shape of a random explicit matrix.
struct RandomMatrixSpec {
  int num_subjects = 6;
  int num_properties = 4;
  double density = 0.5;  ///< Bernoulli probability of a 1 cell.
  std::uint64_t seed = 1;
};

/// Random 0/1 matrix with no all-zero row and no all-zero column.
schema::PropertyMatrix GenerateRandomMatrix(const RandomMatrixSpec& spec);

/// Shape of a random signature index.
struct RandomIndexSpec {
  int num_signatures = 8;
  int num_properties = 5;
  std::int64_t max_count = 50;  ///< signature-set sizes uniform in [1, max]
  double density = 0.5;
  std::uint64_t seed = 1;
};

/// Random signature index (distinct supports, all properties used).
schema::SignatureIndex GenerateRandomIndex(const RandomIndexSpec& spec);

/// Shape of a random RDF graph — the ingestion-path test generator. Exercises
/// the messy inputs the streaming IndexBuilder must agree with the legacy
/// matrix path on: duplicate triples (set semantics), blank-node subjects,
/// subjects declared in several sorts, and untyped subjects.
struct RandomGraphSpec {
  int num_subjects = 20;
  int num_properties = 8;
  int num_sorts = 2;             ///< distinct rdf:type sort constants; 0 = none
  double density = 0.4;          ///< per (subject, property) Bernoulli
  double blank_probability = 0.2;      ///< subject is a blank node
  double duplicate_probability = 0.3;  ///< triple is emitted a second time
  double multi_sort_probability = 0.3; ///< typed subject gets a second sort
  double untyped_probability = 0.2;    ///< subject gets no rdf:type triple
  double literal_probability = 0.5;    ///< object is a literal (else an IRI)
  std::uint64_t seed = 1;
};

/// Random dictionary-encoded graph per the spec. Subjects with no drawn
/// property still get their rdf:type triple (when typed), so slices can
/// legitimately come out empty.
rdf::Graph GenerateRandomGraph(const RandomGraphSpec& spec);

}  // namespace rdfsr::gen

#endif  // RDFSR_GEN_RANDOM_GRAPH_H_
