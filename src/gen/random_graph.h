// Random datasets for property-based testing.
//
// Valid dataset views (no empty subject rows, no unused property columns) so
// the brute-force semantics, the signature-level enumerator, and the closed
// forms are all defined on the same object.

#ifndef RDFSR_GEN_RANDOM_GRAPH_H_
#define RDFSR_GEN_RANDOM_GRAPH_H_

#include <cstdint>

#include "schema/property_matrix.h"
#include "schema/signature_index.h"

namespace rdfsr::gen {

/// Shape of a random explicit matrix.
struct RandomMatrixSpec {
  int num_subjects = 6;
  int num_properties = 4;
  double density = 0.5;  ///< Bernoulli probability of a 1 cell.
  std::uint64_t seed = 1;
};

/// Random 0/1 matrix with no all-zero row and no all-zero column.
schema::PropertyMatrix GenerateRandomMatrix(const RandomMatrixSpec& spec);

/// Shape of a random signature index.
struct RandomIndexSpec {
  int num_signatures = 8;
  int num_properties = 5;
  std::int64_t max_count = 50;  ///< signature-set sizes uniform in [1, max]
  double density = 0.5;
  std::uint64_t seed = 1;
};

/// Random signature index (distinct supports, all properties used).
schema::SignatureIndex GenerateRandomIndex(const RandomIndexSpec& spec);

}  // namespace rdfsr::gen

#endif  // RDFSR_GEN_RANDOM_GRAPH_H_
