// Synthetic WordNet Nouns (Section 7.2 substitution).
//
// Calibrated to the paper's description of the dataset: 12 properties of
// which 5 are (near-)universal — gloss, label, synsetId, containsWordSense,
// hyponymOf — and 7 are rare, giving the characteristic high sigma_Sim (0.93)
// / low sigma_Cov (0.44) profile and ~53 signatures at full scale. Default
// scale is 1/10 of the paper's 79,689 subjects.

#ifndef RDFSR_GEN_WORDNET_H_
#define RDFSR_GEN_WORDNET_H_

#include <cstdint>

#include "rdf/graph.h"
#include "schema/signature_index.h"

namespace rdfsr::gen {

/// Generation knobs for the WordNet Nouns twin.
struct WordnetConfig {
  std::int64_t num_subjects = 7969;  ///< paper: 79,689 (default 1/10 scale)
  std::uint64_t seed = 7;
};

/// Property names in the paper's Figure 3 column order.
extern const char* const kWordnetProperties[12];

/// Generates the signature index of the synthetic dataset.
schema::SignatureIndex GenerateWordnet(const WordnetConfig& config = {});

/// Materializes RDF triples (with rdf:type wn:NounSynset declarations) for
/// pipeline examples and tests.
rdf::Graph GenerateWordnetGraph(const WordnetConfig& config);

}  // namespace rdfsr::gen

#endif  // RDFSR_GEN_WORDNET_H_
