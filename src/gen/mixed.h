// Mixed Drug Companies + Sultans dataset (Section 7.4 substitution).
//
// The paper merges two YAGO explicit sorts (27 drug companies, 40 sultans)
// and asks whether a k=2 highest-theta Cov refinement recovers the original
// split, interpreting the result as a binary classifier (accuracy 74.6%,
// precision 61.4%, recall 100%; improving to 82.1%/69.2%/100% with a modified
// Cov that ignores the RDF-plumbing properties type/sameAs/subClassOf/label).
// We generate two populations with sort-specific property groups plus shared
// plumbing properties whose presence is noisy — exactly the structure that
// makes plain Cov confuse sparse sultans with drug companies and makes the
// plumbing-blind rule do better.

#ifndef RDFSR_GEN_MIXED_H_
#define RDFSR_GEN_MIXED_H_

#include <cstdint>
#include <string>
#include <vector>

#include "schema/signature_index.h"

namespace rdfsr::gen {

/// Generation knobs for the mixed dataset.
struct MixedConfig {
  int num_drug_companies = 27;  ///< paper's counts
  int num_sultans = 40;
  std::uint64_t seed = 1234;
};

/// The mixed dataset plus ground truth.
struct MixedDataset {
  schema::SignatureIndex index;  ///< subject names retained
  /// Parallel vectors: subject name and whether it is a drug company.
  std::vector<std::string> subject_names;
  std::vector<bool> is_drug_company;
  /// The RDF-plumbing property names present in the index (for the modified
  /// Cov rule of Section 7.4).
  std::vector<std::string> plumbing_properties;
};

/// Generates the mixed Drug Companies + Sultans dataset.
MixedDataset GenerateMixed(const MixedConfig& config = {});

}  // namespace rdfsr::gen

#endif  // RDFSR_GEN_MIXED_H_
