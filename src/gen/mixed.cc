#include "gen/mixed.h"

#include <vector>

#include "schema/property_matrix.h"
#include "util/check.h"
#include "util/rng.h"

namespace rdfsr::gen {

namespace {

// Column layout. Plumbing first (shared by both sorts, noisy), then the
// drug-company group, then the sultan group.
const char* const kProperties[] = {
    // plumbing (0-3)
    "type", "label", "sameAs", "subClassOf",
    // drug companies (4-9)
    "hasProduct", "industry", "foundedIn", "hasWebsite", "locatedIn",
    "hasRevenue",
    // sultans (10-15)
    "bornIn", "diedIn", "reignStart", "reignEnd", "dynasty", "spouse",
};
constexpr int kNumProperties = 16;

// Presence probabilities per population. Sultans come in two flavours — the
// well-documented and the obscure — which is what makes plain Cov confuse
// documented sultans with drug companies (both are "dense" subjects), while
// the plumbing-blind rule separates along the population-specific property
// groups. This mirrors the Section 7.4 confusion pattern: no drug company is
// ever classified as a sultan (recall 100%), but a batch of sultans lands in
// the drug-company sort.
//                               ty    lb    sA    sC
constexpr double kDrugPlumb[] = {1.0, 1.00, 0.85, 0.90};
constexpr double kSultDocPlumb[] = {1.0, 0.95, 0.60, 0.90};
constexpr double kSultObsPlumb[] = {1.0, 0.80, 0.00, 0.90};
//                             hP    in    fI    hW    lI    hR
constexpr double kDrugOwn[] = {0.80, 0.90, 0.60, 0.60, 0.80, 0.40};
//                                bI    dI    rS    rE    dy    sp
constexpr double kSultDocOwn[] = {0.70, 0.65, 0.80, 0.75, 0.80, 0.40};
// Obscure sultans carry almost no content beyond the plumbing — at most a
// dynasty. Their property sets are therefore (nearly) subsets of the drug
// companies' columns, which is exactly what makes the plain-Cov optimum
// group them WITH the drug companies (the paper's 17 misclassified sultans),
// while the plumbing-blind rule keys on dynasty and keeps them with the
// documented sultans.
constexpr double kSultObsOwn[] = {0.00, 0.00, 0.00, 0.00, 0.50, 0.00};
// Fraction of sultans that are obscure (17 of 40, the paper's error count).
constexpr double kObscureSultans = 0.425;

}  // namespace

MixedDataset GenerateMixed(const MixedConfig& config) {
  RDFSR_CHECK_GT(config.num_drug_companies, 0);
  RDFSR_CHECK_GT(config.num_sultans, 0);
  Rng rng(config.seed);

  std::vector<std::vector<int>> rows;
  std::vector<std::string> subject_names;
  std::vector<bool> is_drug;

  auto sample = [&](bool drug, bool obscure, int id) {
    std::vector<int> row(kNumProperties, 0);
    const double* plumb =
        drug ? kDrugPlumb : (obscure ? kSultObsPlumb : kSultDocPlumb);
    for (int p = 0; p < 4; ++p) row[p] = rng.Chance(plumb[p]) ? 1 : 0;
    if (drug) {
      for (int p = 0; p < 6; ++p) row[4 + p] = rng.Chance(kDrugOwn[p]) ? 1 : 0;
    } else {
      const double* own = obscure ? kSultObsOwn : kSultDocOwn;
      for (int p = 0; p < 6; ++p) row[10 + p] = rng.Chance(own[p]) ? 1 : 0;
    }
    // Everyone has type; guarantee non-empty rows regardless.
    row[0] = 1;
    rows.push_back(std::move(row));
    subject_names.push_back((drug ? std::string("drug") : std::string("sultan")) +
                            std::to_string(id));
    is_drug.push_back(drug);
  };

  for (int i = 0; i < config.num_drug_companies; ++i) sample(true, false, i);
  for (int i = 0; i < config.num_sultans; ++i) {
    const bool obscure =
        i < static_cast<int>(config.num_sultans * kObscureSultans);
    sample(false, obscure, i);
  }

  // Every property must be used by someone; patch rare misses into the first
  // subject of the owning population.
  for (int p = 0; p < kNumProperties; ++p) {
    bool used = false;
    for (const auto& row : rows) used = used || row[p] == 1;
    if (!used) {
      const bool drug_prop = p >= 4 && p <= 9;
      for (std::size_t r = 0; r < rows.size(); ++r) {
        if (is_drug[r] == drug_prop || p < 4) {
          rows[r][p] = 1;
          break;
        }
      }
    }
  }

  std::vector<std::string> property_names(kProperties,
                                          kProperties + kNumProperties);
  schema::PropertyMatrix matrix = schema::PropertyMatrix::FromRows(
      rows, subject_names, property_names);

  MixedDataset dataset;
  dataset.index =
      schema::SignatureIndex::FromMatrix(matrix, /*keep_subject_names=*/true);
  dataset.subject_names = std::move(subject_names);
  dataset.is_drug_company = std::move(is_drug);
  dataset.plumbing_properties = {"type", "label", "sameAs", "subClassOf"};
  return dataset;
}

}  // namespace rdfsr::gen
