#include "gen/wordnet.h"

#include <algorithm>
#include <map>
#include <vector>

#include "rdf/vocab.h"
#include "util/check.h"
#include "util/rng.h"

namespace rdfsr::gen {

const char* const kWordnetProperties[12] = {
    "gloss",
    "label",
    "synsetId",
    "hyponymOf",
    "classifiedByTopic",
    "containsWordSense",
    "memberMeronymOf",
    "partMeronymOf",
    "substanceMeronymOf",
    "classifiedByUsage",
    "classifiedByRegion",
    "attribute",
};

namespace {

// Per-property presence probabilities. The first five dominant properties and
// the rare tail are calibrated so that sigma_Cov ≈ 0.44 (mean support 5.26 of
// 12) and sigma_Sim ≈ 0.93, matching Figure 3.
constexpr double kPresence[12] = {
    1.00,  // gloss
    1.00,  // label
    1.00,  // synsetId
    0.92,  // hyponymOf (root synsets have none)
    0.15,  // classifiedByTopic
    1.00,  // containsWordSense
    0.05,  // memberMeronymOf
    0.08,  // partMeronymOf
    0.02,  // substanceMeronymOf
    0.01,  // classifiedByUsage
    0.01,  // classifiedByRegion
    0.01,  // attribute
};

}  // namespace

namespace {

/// Samples one synset's property support (shared by both materializations).
std::vector<int> SampleSupport(Rng* rng) {
  std::vector<int> support;
  for (int p = 0; p < 12; ++p) {
    if (kPresence[p] >= 1.0 || rng->Chance(kPresence[p])) support.push_back(p);
  }
  return support;
}

}  // namespace

schema::SignatureIndex GenerateWordnet(const WordnetConfig& config) {
  RDFSR_CHECK_GT(config.num_subjects, 0);
  Rng rng(config.seed);
  std::map<std::vector<int>, std::int64_t> histogram;
  for (std::int64_t i = 0; i < config.num_subjects; ++i) {
    ++histogram[SampleSupport(&rng)];
  }
  std::vector<bool> used(12, false);
  for (const auto& [support, count] : histogram) {
    (void)count;
    for (int p : support) used[p] = true;
  }
  if (std::find(used.begin(), used.end(), false) != used.end()) {
    ++histogram[{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}];
  }

  std::vector<std::string> names(kWordnetProperties, kWordnetProperties + 12);
  std::vector<schema::Signature> signatures;
  for (const auto& [support, count] : histogram) {
    signatures.emplace_back(support, count);
  }
  return schema::SignatureIndex::FromSignatures(std::move(names),
                                                std::move(signatures));
}

rdf::Graph GenerateWordnetGraph(const WordnetConfig& config) {
  RDFSR_CHECK_GT(config.num_subjects, 0);
  Rng rng(config.seed);
  rdf::Graph graph;
  const std::string base = "http://example.org/wn/synset-";
  const std::string prop_base = "http://example.org/wn/";
  for (std::int64_t i = 0; i < config.num_subjects; ++i) {
    const std::string subject = base + std::to_string(i) + "-noun";
    graph.AddIri(subject, rdf::vocab::kRdfType, rdf::vocab::kWnNounSynset);
    for (int p : SampleSupport(&rng)) {
      graph.AddLiteral(subject, prop_base + kWordnetProperties[p],
                       "v" + std::to_string(i) + "_" + std::to_string(p));
    }
  }
  return graph;
}

}  // namespace rdfsr::gen
