// Synthetic YAGO explicit sorts (Section 7.3 substitution).
//
// The scalability study samples ~500 explicit sorts from YAGO with 1-350
// signatures, 10-40 properties, and 10^2-10^5 subjects, then measures the
// runtime of a "highest theta for k=2" search as a function of signature and
// property counts. We generate sorts with the same controllable shape:
// Zipf-skewed property popularity (a few near-universal columns, a long rare
// tail — the YAGO histogram shape in Figure 8) and Zipf-skewed signature-set
// sizes.

#ifndef RDFSR_GEN_YAGO_H_
#define RDFSR_GEN_YAGO_H_

#include <cstdint>

#include "schema/signature_index.h"

namespace rdfsr::gen {

/// Shape parameters of one synthetic explicit sort.
struct YagoSortSpec {
  int num_properties = 16;
  int num_signatures = 32;          ///< target; the result has exactly this many
  std::int64_t num_subjects = 5000; ///< total subjects across signature sets
  double property_skew = 0.8;       ///< Zipf exponent of property popularity
  double size_skew = 1.2;           ///< Zipf exponent of signature-set sizes
  std::uint64_t seed = 1;
};

/// Generates a synthetic explicit sort with the given shape. Guarantees:
/// exactly `num_signatures` distinct signatures, every property used by at
/// least one signature, subject counts summing to >= num_subjects.
schema::SignatureIndex GenerateYagoSort(const YagoSortSpec& spec);

}  // namespace rdfsr::gen

#endif  // RDFSR_GEN_YAGO_H_
