#include "gen/yago.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "util/check.h"
#include "util/rng.h"

namespace rdfsr::gen {

schema::SignatureIndex GenerateYagoSort(const YagoSortSpec& spec) {
  RDFSR_CHECK_GT(spec.num_properties, 0);
  RDFSR_CHECK_GT(spec.num_signatures, 0);
  RDFSR_CHECK_GT(spec.num_subjects, 0);
  RDFSR_CHECK_LE(static_cast<double>(spec.num_signatures),
                 std::pow(2.0, std::min(spec.num_properties, 60)) - 1)
      << "more signatures requested than distinct non-empty supports exist";
  Rng rng(spec.seed);

  // Zipf-like property popularity: p_j = clamp(popularity of rank j).
  std::vector<double> popularity(spec.num_properties);
  for (int p = 0; p < spec.num_properties; ++p) {
    popularity[p] = std::min(1.0, 1.6 / std::pow(p + 1.0, spec.property_skew));
  }

  // Sample distinct supports.
  std::set<std::vector<int>> supports;
  int attempts = 0;
  while (static_cast<int>(supports.size()) < spec.num_signatures) {
    std::vector<int> support;
    for (int p = 0; p < spec.num_properties; ++p) {
      if (rng.Chance(popularity[p])) support.push_back(p);
    }
    if (support.empty()) support.push_back(static_cast<int>(
        rng.Below(spec.num_properties)));
    if (!supports.insert(support).second && ++attempts > 200) {
      // Rejection is saturating (dense popularity): mutate a random existing
      // support by toggling one property to force progress.
      std::vector<int> base = *supports.begin();
      const int p = static_cast<int>(rng.Below(spec.num_properties));
      auto it = std::find(base.begin(), base.end(), p);
      if (it != base.end() && base.size() > 1) {
        base.erase(it);
      } else if (it == base.end()) {
        base.insert(std::lower_bound(base.begin(), base.end(), p), p);
      }
      supports.insert(base);
    }
  }

  // Ensure every property is used by some signature: patch unused properties
  // into the largest support (keeps distinctness in the common case; if the
  // patched support collides we simply drop the collided duplicate later —
  // signature counts absorb it).
  std::vector<bool> used(spec.num_properties, false);
  for (const auto& s : supports) {
    for (int p : s) used[p] = true;
  }
  std::vector<std::vector<int>> final_supports(supports.begin(),
                                               supports.end());
  for (int p = 0; p < spec.num_properties; ++p) {
    if (used[p]) continue;
    // Add p to the first support that stays distinct after insertion.
    for (auto& s : final_supports) {
      std::vector<int> patched = s;
      patched.insert(std::lower_bound(patched.begin(), patched.end(), p), p);
      if (!supports.count(patched)) {
        supports.erase(s);
        supports.insert(patched);
        s = std::move(patched);
        used[p] = true;
        break;
      }
    }
    RDFSR_CHECK(used[p]) << "could not place property " << p;
  }

  // Zipf sizes over rank, scaled to num_subjects (minimum 1 subject each).
  const int n = static_cast<int>(final_supports.size());
  std::vector<double> raw(n);
  double total_raw = 0;
  for (int i = 0; i < n; ++i) {
    raw[i] = 1.0 / std::pow(i + 1.0, spec.size_skew);
    total_raw += raw[i];
  }
  std::vector<schema::Signature> signatures;
  for (int i = 0; i < n; ++i) {
    signatures.emplace_back(
        final_supports[i],
        std::max<std::int64_t>(
            1, static_cast<std::int64_t>(
                   std::llround(raw[i] / total_raw * spec.num_subjects))));
  }

  std::vector<std::string> names;
  for (int p = 0; p < spec.num_properties; ++p) {
    names.push_back("prop" + std::to_string(p));
  }
  return schema::SignatureIndex::FromSignatures(std::move(names),
                                                std::move(signatures));
}

}  // namespace rdfsr::gen
