// Synthetic DBpedia Persons (Section 7.1 substitution).
//
// The 2014 DBpedia dump is not redistributable here, so we generate a
// statistical twin calibrated to every figure the paper reports about it:
//   * 8 properties: deathPlace, birthPlace, description, name, deathDate,
//     birthDate, givenName, surName,
//   * name on 100% of subjects; givenName/surName co-occurring (Table 2:
//     sigma_SymDep[givenName,surName] = 1.0) and missing together ~5%
//     (~40,000 of 790,703 without surname),
//   * marginals birthDate 420242/790703, birthPlace 323368/790703, both
//     241156/790703, deathDate 173507/790703, deathPlace 90246/790703,
//   * the Table 1 deathPlace row: P(birthPlace|deathPlace)=.93,
//     P(deathDate|deathPlace)=.82, P(birthDate|deathPlace)=.77,
//   * 64 signatures (6 independently varying property groups), and the
//     whole-dataset values sigma_Cov ≈ 0.54 and sigma_Sim ≈ 0.77.
// The default scale divides the subject count by 100 to keep our homegrown
// MIP within laptop budgets; the distribution (and hence every sigma) is
// scale-invariant in expectation.

#ifndef RDFSR_GEN_PERSONS_H_
#define RDFSR_GEN_PERSONS_H_

#include <cstdint>

#include "rdf/graph.h"
#include "schema/signature_index.h"

namespace rdfsr::gen {

/// Generation knobs for the DBpedia Persons twin.
struct PersonsConfig {
  std::int64_t num_subjects = 7907;  ///< paper: 790,703 (default 1/100 scale)
  std::uint64_t seed = 42;
};

/// Property names in the paper's Figure 2 column order.
extern const char* const kPersonsProperties[8];

/// Generates the signature index of the synthetic dataset.
schema::SignatureIndex GeneratePersons(const PersonsConfig& config = {});

/// Materializes actual RDF triples (with rdf:type foaf:Person declarations)
/// for pipeline examples; subject count taken from config.
rdf::Graph GeneratePersonsGraph(const PersonsConfig& config);

}  // namespace rdfsr::gen

#endif  // RDFSR_GEN_PERSONS_H_
