#include "gen/random_graph.h"

#include <set>
#include <string>
#include <vector>

#include "rdf/vocab.h"
#include "util/check.h"
#include "util/rng.h"

namespace rdfsr::gen {

schema::PropertyMatrix GenerateRandomMatrix(const RandomMatrixSpec& spec) {
  RDFSR_CHECK_GT(spec.num_subjects, 0);
  RDFSR_CHECK_GT(spec.num_properties, 0);
  Rng rng(spec.seed);
  std::vector<std::vector<int>> rows(
      spec.num_subjects, std::vector<int>(spec.num_properties, 0));
  for (auto& row : rows) {
    for (int p = 0; p < spec.num_properties; ++p) {
      row[p] = rng.Chance(spec.density) ? 1 : 0;
    }
  }
  // Repair all-zero rows (subjects must have >= 1 property) and all-zero
  // columns (properties must be mentioned).
  for (auto& row : rows) {
    bool any = false;
    for (int v : row) any = any || v == 1;
    if (!any) row[rng.Below(spec.num_properties)] = 1;
  }
  for (int p = 0; p < spec.num_properties; ++p) {
    bool any = false;
    for (const auto& row : rows) any = any || row[p] == 1;
    if (!any) rows[rng.Below(spec.num_subjects)][p] = 1;
  }
  return schema::PropertyMatrix::FromRows(rows);
}

schema::SignatureIndex GenerateRandomIndex(const RandomIndexSpec& spec) {
  RDFSR_CHECK_GT(spec.num_signatures, 0);
  RDFSR_CHECK_GT(spec.num_properties, 0);
  RDFSR_CHECK_GT(spec.max_count, 0);
  Rng rng(spec.seed);

  std::set<std::vector<int>> supports;
  int stall = 0;
  while (static_cast<int>(supports.size()) < spec.num_signatures) {
    std::vector<int> support;
    for (int p = 0; p < spec.num_properties; ++p) {
      if (rng.Chance(spec.density)) support.push_back(p);
    }
    if (support.empty()) {
      support.push_back(static_cast<int>(rng.Below(spec.num_properties)));
    }
    if (!supports.insert(support).second) {
      RDFSR_CHECK_LT(++stall, 100000)
          << "cannot draw enough distinct supports; lower num_signatures";
    }
  }

  // Patch unused properties into some support, preserving distinctness.
  std::vector<bool> used(spec.num_properties, false);
  for (const auto& s : supports) {
    for (int p : s) used[p] = true;
  }
  std::vector<std::vector<int>> final_supports(supports.begin(),
                                               supports.end());
  for (int p = 0; p < spec.num_properties; ++p) {
    if (used[p]) continue;
    bool placed = false;
    for (auto& s : final_supports) {
      std::vector<int> patched = s;
      patched.insert(std::lower_bound(patched.begin(), patched.end(), p), p);
      if (!supports.count(patched)) {
        supports.erase(s);
        supports.insert(patched);
        s = std::move(patched);
        placed = true;
        break;
      }
    }
    RDFSR_CHECK(placed) << "could not place property " << p;
  }

  std::vector<schema::Signature> signatures;
  for (auto& s : final_supports) {
    signatures.emplace_back(std::move(s), rng.Range(1, spec.max_count));
  }
  std::vector<std::string> names;
  for (int p = 0; p < spec.num_properties; ++p) {
    names.push_back("p" + std::to_string(p));
  }
  return schema::SignatureIndex::FromSignatures(std::move(names),
                                                std::move(signatures));
}

rdf::Graph GenerateRandomGraph(const RandomGraphSpec& spec) {
  RDFSR_CHECK_GT(spec.num_subjects, 0);
  RDFSR_CHECK_GT(spec.num_properties, 0);
  RDFSR_CHECK_GE(spec.num_sorts, 0);
  Rng rng(spec.seed);
  rdf::Graph graph;
  const rdf::Term type_prop = rdf::Term::Iri(rdf::vocab::kRdfType);

  for (int s = 0; s < spec.num_subjects; ++s) {
    const rdf::Term subject =
        rng.Chance(spec.blank_probability)
            ? rdf::Term::Blank("b" + std::to_string(s))
            : rdf::Term::Iri("http://x/s" + std::to_string(s));

    if (spec.num_sorts > 0 && !rng.Chance(spec.untyped_probability)) {
      const int sort = static_cast<int>(rng.Below(spec.num_sorts));
      graph.Add(subject, type_prop,
                rdf::Term::Iri("http://x/Sort" + std::to_string(sort)));
      if (spec.num_sorts > 1 && rng.Chance(spec.multi_sort_probability)) {
        const int other = static_cast<int>(rng.Below(spec.num_sorts));
        graph.Add(subject, type_prop,
                  rdf::Term::Iri("http://x/Sort" + std::to_string(other)));
      }
    }

    for (int p = 0; p < spec.num_properties; ++p) {
      if (!rng.Chance(spec.density)) continue;
      const rdf::Term property =
          rdf::Term::Iri("http://x/p" + std::to_string(p));
      const std::string value =
          "v" + std::to_string(s) + "_" + std::to_string(p);
      const rdf::Term object = rng.Chance(spec.literal_probability)
                                   ? rdf::Term::Literal(value)
                                   : rdf::Term::Iri("http://x/" + value);
      graph.Add(subject, property, object);
      if (rng.Chance(spec.duplicate_probability)) {
        graph.Add(subject, property, object);  // set semantics drop this
      }
    }
  }
  return graph;
}

}  // namespace rdfsr::gen
