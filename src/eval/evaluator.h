// Evaluator: uniform interface for computing sigma_r over implicit sorts.
//
// The refinement engine (core/) repeatedly asks "what is sigma of this subset
// of signatures?": the greedy backend during local search, the solver when
// validating decoded ILP solutions, the benches when reporting per-sort
// values. Evaluator hides whether that is answered by the generic
// signature-level enumerator (any rule) or by a closed form (the builtin
// families); the two are property-tested to agree.

#ifndef RDFSR_EVAL_EVALUATOR_H_
#define RDFSR_EVAL_EVALUATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "eval/closed_form.h"
#include "eval/counts.h"
#include "eval/enumerator.h"
#include "eval/sort_stats.h"
#include "rules/ast.h"
#include "schema/signature_index.h"

namespace rdfsr::eval {

/// Computes exact structuredness counts for subsets of a fixed base index.
/// The subset is given by signature ids; the implicit sort's property view is
/// the union of the member signatures' supports (columns unused by the subset
/// do not exist in the sort's matrix).
class Evaluator {
 public:
  virtual ~Evaluator() = default;

  /// The rule whose sigma this evaluator computes.
  virtual const rules::Rule& rule() const = 0;

  /// Exact counts for an implicit sort.
  virtual SigmaCounts Counts(const std::vector<int>& sig_ids) const = 0;

  /// Counts over the whole base index.
  SigmaCounts CountsAll() const { return Counts(AllSignatures(index())); }

  /// sigma for an implicit sort (1.0 when there are no total cases).
  double Sigma(const std::vector<int>& sig_ids) const {
    return Counts(sig_ids).Value();
  }

  /// sigma over the whole base index.
  double SigmaAll() const { return CountsAll().Value(); }

  /// Empty mergeable stats for this evaluator's rule: closed-form evaluators
  /// configure rule-specific tracked state here (the Dep pair), so callers
  /// can maintain candidate sorts incrementally and ask CountsFromStats
  /// instead of re-walking member signatures.
  virtual SortStats MakeStats() const { return SortStats(&index()); }

  /// Counts from incrementally maintained stats; must equal
  /// Counts(stats.members().ToVector()) exactly. This base implementation
  /// does exactly that (the generic-enumerator fallback); closed-form
  /// evaluators answer from the aggregates in O(1).
  virtual SigmaCounts CountsFromStats(const SortStats& stats) const {
    return Counts(stats.members().ToVector());
  }

  /// sigma from incrementally maintained stats.
  double SigmaFromStats(const SortStats& stats) const {
    return CountsFromStats(stats).Value();
  }

  /// Counts through the stats subsystem: folds `sig_ids` into fresh stats and
  /// extracts (closed form for the builtin families). Equals Counts(sig_ids)
  /// exactly; refinement validation runs on this so it shares the same
  /// aggregates the heuristics maintain instead of re-walking member
  /// signatures through the scratch closed forms.
  SigmaCounts CountsViaStats(const std::vector<int>& sig_ids) const;

  /// Counts of the union of two disjoint stats — the agglomerative
  /// candidate-merge probe. Must equal merging first and extracting after;
  /// this base implementation does exactly that, closed-form evaluators
  /// derive the union's counts pairwise without materializing it.
  virtual SigmaCounts CountsFromMergedStats(const SortStats& a,
                                            const SortStats& b) const {
    SortStats merged = a;
    merged.MergeWith(b);
    return CountsFromStats(merged);
  }

  /// Whether the stats entry points are cheap closed-form extractions. The
  /// memoizing wrapper skips its table for stats probes when true: hashing
  /// and storing an O(n/64)-word member key costs more than the O(|P|/64)
  /// extraction it would cache.
  virtual bool cheap_stats() const { return false; }

  /// The base index subsets refer to.
  virtual const schema::SignatureIndex& index() const = 0;
};

/// Evaluator running the generic signature-level enumerator on the restricted
/// index. Works for every rule in the language. Rules mentioning subject
/// constants require the base index to retain subject names.
class GenericEvaluator : public Evaluator {
 public:
  GenericEvaluator(rules::Rule rule, const schema::SignatureIndex* index);

  const rules::Rule& rule() const override { return rule_; }
  const schema::SignatureIndex& index() const override { return *index_; }
  SigmaCounts Counts(const std::vector<int>& sig_ids) const override;

 private:
  rules::Rule rule_;
  const schema::SignatureIndex* index_;
};

/// Evaluator using the closed forms of eval/closed_form.h.
class ClosedFormEvaluator : public Evaluator {
 public:
  /// Which builtin family.
  enum class Kind { kCov, kCovIgnoring, kSim, kDep, kSymDep, kDepDisj };

  static std::unique_ptr<ClosedFormEvaluator> Cov(
      const schema::SignatureIndex* index);
  static std::unique_ptr<ClosedFormEvaluator> CovIgnoring(
      const schema::SignatureIndex* index, std::vector<std::string> ignored);
  static std::unique_ptr<ClosedFormEvaluator> Sim(
      const schema::SignatureIndex* index);
  static std::unique_ptr<ClosedFormEvaluator> Dep(
      const schema::SignatureIndex* index, std::string p1, std::string p2);
  static std::unique_ptr<ClosedFormEvaluator> SymDep(
      const schema::SignatureIndex* index, std::string p1, std::string p2);
  static std::unique_ptr<ClosedFormEvaluator> DepDisj(
      const schema::SignatureIndex* index, std::string p1, std::string p2);

  const rules::Rule& rule() const override { return rule_; }
  const schema::SignatureIndex& index() const override { return *index_; }
  SigmaCounts Counts(const std::vector<int>& sig_ids) const override;

  /// Dep families get their pair resolved to ids once at construction and
  /// tracked through every stats mutation.
  SortStats MakeStats() const override;

  /// O(1) extraction from the aggregates (O(|ignored|) for CovIgnoring).
  SigmaCounts CountsFromStats(const SortStats& stats) const override;

  /// Pairwise union extraction: O(|P|/64) plus Sim's shared-column cross
  /// term, no merged stats materialized.
  SigmaCounts CountsFromMergedStats(const SortStats& a,
                                    const SortStats& b) const override;

  bool cheap_stats() const override { return true; }

 private:
  ClosedFormEvaluator(Kind kind, rules::Rule rule,
                      const schema::SignatureIndex* index,
                      std::vector<std::string> params);

  Kind kind_;
  rules::Rule rule_;
  const schema::SignatureIndex* index_;
  std::vector<std::string> params_;  // ignored props, or {p1, p2}
  // Resolved-once parameter state for the stats path: the Dep pair's column
  // ids and the CovIgnoring word mask (FindProperty runs at construction, not
  // per evaluation).
  int dep_id1_ = -1;
  int dep_id2_ = -1;
  schema::PropertySet ignored_mask_;
};

/// Picks the fastest evaluator for a rule: builtin rules created by
/// rules/builtins.h are recognized by name and routed to their closed forms;
/// everything else gets the generic enumerator.
std::unique_ptr<Evaluator> MakeEvaluator(const rules::Rule& rule,
                                         const schema::SignatureIndex* index);

}  // namespace rdfsr::eval

#endif  // RDFSR_EVAL_EVALUATOR_H_
