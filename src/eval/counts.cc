#include "eval/counts.h"

namespace rdfsr::eval {

std::string BigCountToString(BigCount value) {
  if (value == 0) return "0";
  const bool negative = value < 0;
  unsigned __int128 v =
      negative ? static_cast<unsigned __int128>(-(value + 1)) + 1
               : static_cast<unsigned __int128>(value);
  std::string digits;
  while (v > 0) {
    digits.push_back(static_cast<char>('0' + static_cast<int>(v % 10)));
    v /= 10;
  }
  if (negative) digits.push_back('-');
  return std::string(digits.rbegin(), digits.rend());
}

}  // namespace rdfsr::eval
