#include "eval/counts.h"

namespace rdfsr::eval {

std::string BigCountToString(BigCount value) {
  if (value == 0) return "0";
  const bool negative = value < 0;
  unsigned __int128 v =
      negative ? static_cast<unsigned __int128>(-(value + 1)) + 1
               : static_cast<unsigned __int128>(value);
  std::string digits;
  while (v > 0) {
    digits.push_back(static_cast<char>('0' + static_cast<int>(v % 10)));
    v /= 10;
  }
  if (negative) digits.push_back('-');
  return std::string(digits.rbegin(), digits.rend());
}

int CompareSigma(const SigmaCounts& a, const SigmaCounts& b) {
  // Vacuous counts (total == 0) compare as the exact rational 1/1.
  BigCount fa = a.total == 0 ? 1 : a.favorable;
  BigCount ta = a.total == 0 ? 1 : a.total;
  BigCount fb = b.total == 0 ? 1 : b.favorable;
  BigCount tb = b.total == 0 ? 1 : b.total;
  // Continued-fraction comparison of fa/ta vs fb/tb: alternate integer parts
  // and reciprocals of the remainders (Euclidean steps), flipping the
  // comparison direction at each level. Division only — no intermediate
  // products, so no overflow for any representable counts (naive
  // cross-multiplication would overflow __int128 once favorable * total
  // exceeds ~1.7e38, which Sim's quadratic-in-subjects totals can reach).
  int sign = 1;
  while (true) {
    const BigCount qa = fa / ta;
    const BigCount qb = fb / tb;
    if (qa != qb) return (qa < qb ? -1 : 1) * sign;
    fa -= qa * ta;
    fb -= qb * tb;
    if (fa == 0 || fb == 0) {
      if (fa == fb) return 0;
      return (fa == 0 ? -1 : 1) * sign;
    }
    // Equal integer parts: compare the fractional parts fa/ta vs fb/tb via
    // their reciprocals ta/fa vs tb/fb, which reverses the order.
    std::swap(fa, ta);
    std::swap(fb, tb);
    sign = -sign;
  }
}

}  // namespace rdfsr::eval
