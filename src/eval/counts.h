// Exact case counts for structuredness values.
//
// Counts of satisfying assignments grow like |S|^n for n-variable rules, so we
// accumulate in 128-bit integers (e.g. sigma_Sim on a 10^5-subject dataset has
// ~10^11 total cases; intermediate ILP coefficients multiply by the threshold
// denominator).

#ifndef RDFSR_EVAL_COUNTS_H_
#define RDFSR_EVAL_COUNTS_H_

#include <cstdint>
#include <string>

namespace rdfsr::eval {

/// 128-bit signed count.
using BigCount = __int128;

/// Favorable/total case counts defining a structuredness value
/// sigma = favorable / total (1 when total == 0, per Section 3.2).
struct SigmaCounts {
  BigCount favorable = 0;
  BigCount total = 0;

  double Value() const {
    return total == 0 ? 1.0
                      : static_cast<double>(favorable) /
                            static_cast<double>(total);
  }

  SigmaCounts& operator+=(const SigmaCounts& o) {
    favorable += o.favorable;
    total += o.total;
    return *this;
  }
};

/// Decimal rendering of a BigCount (std::to_string lacks __int128 support).
std::string BigCountToString(BigCount value);

/// Exact three-way comparison of the sigma values two counts define (-1 when
/// a < b, 0 when equal, +1 when a > b) by continued-fraction expansion — no
/// floating point and no intermediate products, so merge-order decisions stay
/// deterministic and overflow-safe for every representable count (Sim totals
/// grow quadratically in the subject count, past what 128-bit
/// cross-multiplication could hold). total == 0 reads as sigma = 1
/// (Section 3.2). Requires non-negative counts.
int CompareSigma(const SigmaCounts& a, const SigmaCounts& b);

}  // namespace rdfsr::eval

#endif  // RDFSR_EVAL_COUNTS_H_
