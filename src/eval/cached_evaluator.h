// Memoizing decorator for Evaluator.
//
// Refinement search evaluates the same implicit sorts over and over: the
// greedy local search re-scores unchanged slots, the agglomerative heuristic
// re-probes pair merges, validation re-computes the final sorts. Counts are
// pure functions of the subset, so a lookup table keyed by the member set
// removes the recomputation — critical for GenericEvaluator, whose Counts()
// run the full tau enumeration on a restricted index.
//
// The key is the subset packed as a PropertySet over signature ids: building
// it is a few word writes (no sort, no heap-allocated id copies), and hashing
// and equality run word-at-a-time.

#ifndef RDFSR_EVAL_CACHED_EVALUATOR_H_
#define RDFSR_EVAL_CACHED_EVALUATOR_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "eval/evaluator.h"
#include "schema/property_set.h"

namespace rdfsr::eval {

/// Wraps another evaluator with a subset -> counts memo table. The inner
/// evaluator must outlive the wrapper. Not thread-safe.
class CachedEvaluator : public Evaluator {
 public:
  explicit CachedEvaluator(const Evaluator* inner);

  const rules::Rule& rule() const override { return inner_->rule(); }
  const schema::SignatureIndex& index() const override {
    return inner_->index();
  }
  SigmaCounts Counts(const std::vector<int>& sig_ids) const override;

  /// Stats carry their member set word-packed, which is exactly this cache's
  /// key — so the stats path shares the memo table with Counts() without
  /// rebuilding the key bit by bit. When the inner evaluator's stats
  /// extractions are cheap closed forms (cheap_stats()), these delegate
  /// without memoizing: building and hashing the member key would cost more
  /// than the extraction, and the refinement heuristics issue millions of
  /// such probes.
  SortStats MakeStats() const override { return inner_->MakeStats(); }
  SigmaCounts CountsFromStats(const SortStats& stats) const override;
  SigmaCounts CountsFromMergedStats(const SortStats& a,
                                    const SortStats& b) const override;
  bool cheap_stats() const override { return inner_->cheap_stats(); }

  /// Cache statistics (diagnostics / tests).
  std::size_t hits() const { return hits_; }
  std::size_t misses() const { return misses_; }

 private:
  const Evaluator* inner_;
  // Key: the subset as a word-packed set of signature ids.
  mutable std::unordered_map<schema::PropertySet, SigmaCounts,
                             schema::PropertySetHash>
      cache_;
  mutable std::size_t hits_ = 0;
  mutable std::size_t misses_ = 0;
};

}  // namespace rdfsr::eval

#endif  // RDFSR_EVAL_CACHED_EVALUATOR_H_
