// Set-partition enumeration.
//
// The generic counter (eval/counting.h) resolves subject-equality atoms by
// enumerating the ways rule variables can share subjects: every concrete
// variable assignment induces a partition of the variables into co-subject
// classes. Partitions are enumerated via restricted growth strings; rules have
// few variables (the paper's builtins have 1-2, the NP-hardness rule has 11),
// so Bell(n) stays manageable for every rule we evaluate generically.

#ifndef RDFSR_EVAL_PARTITIONS_H_
#define RDFSR_EVAL_PARTITIONS_H_

#include <cstdint>
#include <functional>
#include <vector>

namespace rdfsr::eval {

/// Invokes `visit` once per set partition of {0,...,n-1}. The argument maps
/// each element to its class id; class ids are "restricted growth": class 0
/// appears first, a new class id is one larger than the current max. Returning
/// false from `visit` aborts the enumeration. n = 0 visits the empty partition
/// once.
void ForEachSetPartition(
    int n, const std::function<bool(const std::vector<int>&)>& visit);

/// Bell number B(n) (number of set partitions); n <= 20 to avoid overflow.
std::int64_t BellNumber(int n);

}  // namespace rdfsr::eval

#endif  // RDFSR_EVAL_PARTITIONS_H_
