// Mergeable per-sort statistics for incremental sigma evaluation.
//
// The refinement heuristics (core/greedy.cc) mutate candidate sorts one
// signature (greedy trial placements) or one whole part (agglomerative
// merges) at a time, yet the scratch closed forms of closed_form.h re-walk
// every member signature per evaluation — O(|sort| * |P|) per probe, O(n^3)
// and worse over a full agglomerative run. SortStats is the incremental
// alternative: it carries exactly the aggregates the closed forms of every
// builtin family consume —
//
//   subjects       N = Σ_mu n_mu
//   support_sum    Σ_mu n_mu |supp(mu)|  ( = Σ_p cnt_p )
//   count_sq_sum   Σ_p cnt_p^2           (Sim's favorable term)
//   used           word-packed union of used properties (cnt_p > 0), with its
//                  popcount maintained as used_properties
//   property_count cnt_p per global property id
//   pair_both      cnt over subjects having BOTH tracked properties
//                  (Dep/SymDep/DepDisj; configured at construction)
//   members        member signature ids (generic-evaluator fallback and memo
//                  keys)
//
// and keeps all of them exact under Add / Remove / MergeWith, so a candidate
// sort's SigmaCounts never requires re-walking its member signatures.
// All aggregates are integers, so the extracted counts — and therefore the
// sigma doubles derived from them — are bit-identical to a scratch
// SubsetStats::Compute over the same member set (property-tested in
// tests/sort_stats_test.cc).
//
// Memory diet (the ~100k-signature agglomerative regime holds one SortStats
// per part):
//  * members is a schema::MemberSet — sorted id vector while small, flipping
//    to the word-packed bitset at its density threshold — instead of an
//    unconditional n-bit bitset per part (O(n^2) bits across n parts).
//  * cnt_p lives in sorted (property, count) parallel arrays while the sort
//    uses fewer than half the global properties, flipping to the dense
//    per-property vector at 2 * |P*| >= |P| and back below |P| / 8
//    (hysteresis; see StoreCount). Lookups are O(log |P*|) sparse, O(1)
//    dense; both representations hold identical exact integers, so every
//    extracted count is independent of the representation.
//   `used` stays a dense |P|-bit set in both modes — the closed forms
//    intersect it word-at-a-time and |P| bits per sort is not the wall.

#ifndef RDFSR_EVAL_SORT_STATS_H_
#define RDFSR_EVAL_SORT_STATS_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "eval/counts.h"
#include "schema/member_set.h"
#include "schema/property_set.h"
#include "schema/signature_index.h"

namespace rdfsr::eval {

/// Aggregate statistics of an implicit sort, maintained incrementally.
/// Created empty (usually via Evaluator::MakeStats, which configures the
/// tracked dep pair for the rule); value-semantic, so heuristics can snapshot
/// and restore candidate states by plain copies.
class SortStats {
 public:
  /// Capacity-0 placeholder; usable only as an assignment target.
  SortStats() = default;

  /// Empty stats over `index`'s signatures. When both `pair_p1` and `pair_p2`
  /// are valid property ids, the conjunction count cnt_{p1 ∧ p2} is tracked
  /// through every mutation (the Dep-family favorable term).
  explicit SortStats(const schema::SignatureIndex* index, int pair_p1 = -1,
                     int pair_p2 = -1);

  /// Adds signature set `sig_id` (must not be a member).
  void Add(int sig_id);

  /// Removes signature set `sig_id` (must be a member).
  void Remove(int sig_id);

  /// Folds `other` in. Requires the same index and pair configuration and
  /// disjoint member sets.
  void MergeWith(const SortStats& other);

  bool empty() const { return num_members_ == 0; }
  std::size_t num_members() const { return num_members_; }

  /// Member signature ids (capacity = num_signatures; sparse/dense hybrid).
  const schema::MemberSet& members() const { return members_; }

  BigCount subjects() const { return subjects_; }
  BigCount support_sum() const { return support_sum_; }
  BigCount count_sq_sum() const { return count_sq_sum_; }

  /// |P*|: number of properties with cnt_p > 0, and their word-packed set.
  int used_properties() const { return used_properties_; }
  const schema::PropertySet& used() const { return used_; }

  /// cnt_p for a global property id.
  std::int64_t property_count(std::size_t p) const {
    if (counts_dense_) {
      RDFSR_CHECK_LT(p, property_count_.size());
      return property_count_[p];
    }
    const auto pos = std::lower_bound(sparse_props_.begin(),
                                      sparse_props_.end(),
                                      static_cast<std::uint32_t>(p));
    if (pos == sparse_props_.end() || *pos != p) return 0;
    return sparse_counts_[static_cast<std::size_t>(pos - sparse_props_.begin())];
  }

  /// Calls fn(std::size_t p, std::int64_t cnt_p) over used properties in
  /// ascending order — O(|P*|), independent of the count representation.
  template <typename Fn>
  void ForEachCount(Fn&& fn) const {
    if (counts_dense_) {
      used_.ForEach([&](int p) {
        fn(static_cast<std::size_t>(p),
           property_count_[static_cast<std::size_t>(p)]);
      });
    } else {
      for (std::size_t i = 0; i < sparse_props_.size(); ++i) {
        fn(static_cast<std::size_t>(sparse_props_[i]), sparse_counts_[i]);
      }
    }
  }

  /// Whether cnt_p currently uses the dense per-property vector. Tests lock
  /// the transition thresholds through this; nothing else may depend on it.
  bool counts_dense() const { return counts_dense_; }

  /// The tracked pair (-1 when untracked / unresolved) and its conjunction
  /// count.
  int pair_p1() const { return pair_p1_; }
  int pair_p2() const { return pair_p2_; }
  BigCount pair_both() const { return pair_both_; }

  /// Full oracle validation (fatal on violation): recomputes every aggregate
  /// from scratch over the member signatures and compares, then checks the
  /// representation invariants (exactly one count storage active, sparse
  /// arrays strictly ascending and zero-free, `used` == nonzero-count set).
  /// O(|members| * |P|) — the scratch cost the incremental path avoids —
  /// always compiled; audit builds run it at heuristic commit points.
  void CheckInvariants() const;

 private:
  friend struct AuditTestPeer;  // invariant-oracle tests corrupt state
  /// Sets cnt_p, keeping the sparse arrays sorted and zero-free; a zero
  /// `value` erases the sparse entry. Representation flips happen only in
  /// MaybeDensify/MaybeSparsify (called once per mutation, not per column).
  void StoreCount(std::size_t p, std::int64_t value);
  void MaybeDensifyCounts();
  void MaybeSparsifyCounts();

  const schema::SignatureIndex* index_ = nullptr;
  std::size_t num_members_ = 0;
  schema::MemberSet members_;
  BigCount subjects_ = 0;
  BigCount support_sum_ = 0;
  BigCount count_sq_sum_ = 0;
  int used_properties_ = 0;
  schema::PropertySet used_;
  // cnt_p storage: exactly one of the two representations is active.
  bool counts_dense_ = false;
  std::vector<std::int64_t> property_count_;   // dense: |P| entries
  std::vector<std::uint32_t> sparse_props_;    // sparse: used ids, ascending
  std::vector<std::int64_t> sparse_counts_;    // sparse: parallel counts
  int pair_p1_ = -1;
  int pair_p2_ = -1;
  schema::PropertySet pair_mask_;  // non-empty iff the pair is tracked
  BigCount pair_both_ = 0;
};

}  // namespace rdfsr::eval

#endif  // RDFSR_EVAL_SORT_STATS_H_
