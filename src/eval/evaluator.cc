#include "eval/evaluator.h"

#include "rules/builtins.h"
#include "util/check.h"

namespace rdfsr::eval {

GenericEvaluator::GenericEvaluator(rules::Rule rule,
                                   const schema::SignatureIndex* index)
    : rule_(std::move(rule)), index_(index) {
  RDFSR_CHECK(index_ != nullptr);
}

SigmaCounts GenericEvaluator::Counts(const std::vector<int>& sig_ids) const {
  const schema::SignatureIndex sub = index_->Restrict(sig_ids);
  return EvaluateRuleOnIndex(rule_, sub);
}

SigmaCounts Evaluator::CountsViaStats(const std::vector<int>& sig_ids) const {
  SortStats stats = MakeStats();
  for (int sig : sig_ids) stats.Add(sig);
  return CountsFromStats(stats);
}

ClosedFormEvaluator::ClosedFormEvaluator(Kind kind, rules::Rule rule,
                                         const schema::SignatureIndex* index,
                                         std::vector<std::string> params)
    : kind_(kind),
      rule_(std::move(rule)),
      index_(index),
      params_(std::move(params)) {
  RDFSR_CHECK(index_ != nullptr);
  switch (kind_) {
    case Kind::kDep:
    case Kind::kSymDep:
    case Kind::kDepDisj:
      dep_id1_ = index_->FindProperty(params_[0]);
      dep_id2_ = index_->FindProperty(params_[1]);
      break;
    case Kind::kCovIgnoring:
      ignored_mask_ = schema::PropertySet(index_->num_properties());
      for (const std::string& name : params_) {
        const int p = index_->FindProperty(name);
        if (p >= 0) ignored_mask_.Insert(static_cast<std::size_t>(p));
      }
      break;
    case Kind::kCov:
    case Kind::kSim:
      break;
  }
}

SortStats ClosedFormEvaluator::MakeStats() const {
  return SortStats(index_, dep_id1_, dep_id2_);
}

SigmaCounts ClosedFormEvaluator::CountsFromStats(const SortStats& stats) const {
  switch (kind_) {
    case Kind::kCov:
      return CovCountsFromStats(stats);
    case Kind::kCovIgnoring:
      return CovIgnoringCountsFromStats(stats, ignored_mask_);
    case Kind::kSim:
      return SimCountsFromStats(stats);
    case Kind::kDep:
      return DepCountsFromStats(stats);
    case Kind::kSymDep:
      return SymDepCountsFromStats(stats);
    case Kind::kDepDisj:
      return DepDisjCountsFromStats(stats);
  }
  return {};
}

std::unique_ptr<ClosedFormEvaluator> ClosedFormEvaluator::Cov(
    const schema::SignatureIndex* index) {
  return std::unique_ptr<ClosedFormEvaluator>(
      new ClosedFormEvaluator(Kind::kCov, rules::CovRule(), index, {}));
}

std::unique_ptr<ClosedFormEvaluator> ClosedFormEvaluator::CovIgnoring(
    const schema::SignatureIndex* index, std::vector<std::string> ignored) {
  rules::Rule rule = rules::CovRuleIgnoring(ignored);
  return std::unique_ptr<ClosedFormEvaluator>(new ClosedFormEvaluator(
      Kind::kCovIgnoring, std::move(rule), index, std::move(ignored)));
}

std::unique_ptr<ClosedFormEvaluator> ClosedFormEvaluator::Sim(
    const schema::SignatureIndex* index) {
  return std::unique_ptr<ClosedFormEvaluator>(
      new ClosedFormEvaluator(Kind::kSim, rules::SimRule(), index, {}));
}

std::unique_ptr<ClosedFormEvaluator> ClosedFormEvaluator::Dep(
    const schema::SignatureIndex* index, std::string p1, std::string p2) {
  rules::Rule rule = rules::DepRule(p1, p2);
  return std::unique_ptr<ClosedFormEvaluator>(new ClosedFormEvaluator(
      Kind::kDep, std::move(rule), index, {std::move(p1), std::move(p2)}));
}

std::unique_ptr<ClosedFormEvaluator> ClosedFormEvaluator::SymDep(
    const schema::SignatureIndex* index, std::string p1, std::string p2) {
  rules::Rule rule = rules::SymDepRule(p1, p2);
  return std::unique_ptr<ClosedFormEvaluator>(new ClosedFormEvaluator(
      Kind::kSymDep, std::move(rule), index, {std::move(p1), std::move(p2)}));
}

std::unique_ptr<ClosedFormEvaluator> ClosedFormEvaluator::DepDisj(
    const schema::SignatureIndex* index, std::string p1, std::string p2) {
  rules::Rule rule = rules::DepDisjunctiveRule(p1, p2);
  return std::unique_ptr<ClosedFormEvaluator>(new ClosedFormEvaluator(
      Kind::kDepDisj, std::move(rule), index, {std::move(p1), std::move(p2)}));
}

SigmaCounts ClosedFormEvaluator::Counts(const std::vector<int>& sig_ids) const {
  switch (kind_) {
    case Kind::kCov:
      return CovCounts(*index_, sig_ids);
    case Kind::kCovIgnoring:
      return CovIgnoringCounts(*index_, sig_ids, params_);
    case Kind::kSim:
      return SimCounts(*index_, sig_ids);
    case Kind::kDep:
      return DepCounts(*index_, sig_ids, params_[0], params_[1]);
    case Kind::kSymDep:
      return SymDepCounts(*index_, sig_ids, params_[0], params_[1]);
    case Kind::kDepDisj:
      return DepDisjCounts(*index_, sig_ids, params_[0], params_[1]);
  }
  return {};
}

SigmaCounts ClosedFormEvaluator::CountsFromMergedStats(
    const SortStats& a, const SortStats& b) const {
  switch (kind_) {
    case Kind::kCov:
      return CovCountsFromMergedStats(a, b);
    case Kind::kCovIgnoring:
      return CovIgnoringCountsFromMergedStats(a, b, ignored_mask_);
    case Kind::kSim:
      return SimCountsFromMergedStats(a, b);
    case Kind::kDep:
      return DepCountsFromMergedStats(a, b);
    case Kind::kSymDep:
      return SymDepCountsFromMergedStats(a, b);
    case Kind::kDepDisj:
      return DepDisjCountsFromMergedStats(a, b);
  }
  return {};
}

namespace {

/// Extracts "p1" and "p2" from a builtin name "Family[p1,p2]".
bool ParseBracketParams(const std::string& name, const std::string& prefix,
                        std::string* p1, std::string* p2) {
  if (name.size() < prefix.size() + 2) return false;
  if (name.compare(0, prefix.size(), prefix) != 0) return false;
  if (name[prefix.size()] != '[' || name.back() != ']') return false;
  const std::string body =
      name.substr(prefix.size() + 1, name.size() - prefix.size() - 2);
  const std::size_t comma = body.find(',');
  if (comma == std::string::npos) return false;
  *p1 = body.substr(0, comma);
  *p2 = body.substr(comma + 1);
  return !p1->empty() && !p2->empty();
}

}  // namespace

std::unique_ptr<Evaluator> MakeEvaluator(const rules::Rule& rule,
                                         const schema::SignatureIndex* index) {
  const std::string& name = rule.name();
  if (name == "Cov") return ClosedFormEvaluator::Cov(index);
  if (name == "Sim") return ClosedFormEvaluator::Sim(index);
  if (name.rfind("CovIgnoring[", 0) == 0 && name.back() == ']') {
    // The ignored properties are the prop(c) = p constants of the antecedent.
    // Recovered from the AST, not the display name: property IRIs may contain
    // commas, which the name's comma-joined list cannot round-trip.
    std::vector<std::string> ignored;
    rules::CollectPropertyConstants(rule.antecedent(), &ignored);
    return ClosedFormEvaluator::CovIgnoring(index, std::move(ignored));
  }
  std::string p1, p2;
  if (ParseBracketParams(name, "Dep", &p1, &p2)) {
    return ClosedFormEvaluator::Dep(index, p1, p2);
  }
  if (ParseBracketParams(name, "SymDep", &p1, &p2)) {
    return ClosedFormEvaluator::SymDep(index, p1, p2);
  }
  if (ParseBracketParams(name, "DepDisj", &p1, &p2)) {
    return ClosedFormEvaluator::DepDisj(index, p1, p2);
  }
  return std::make_unique<GenericEvaluator>(rule, index);
}

}  // namespace rdfsr::eval
