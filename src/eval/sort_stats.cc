#include "eval/sort_stats.h"

#include "util/check.h"

namespace rdfsr::eval {

SortStats::SortStats(const schema::SignatureIndex* index, int pair_p1,
                     int pair_p2)
    : index_(index),
      members_(index->num_signatures()),
      used_(index->num_properties()),
      pair_p1_(pair_p1),
      pair_p2_(pair_p2) {
  RDFSR_CHECK(index_ != nullptr);
  if (pair_p1_ >= 0 && pair_p2_ >= 0) {
    pair_mask_ = schema::PropertySet(index->num_properties());
    pair_mask_.Insert(static_cast<std::size_t>(pair_p1_));
    pair_mask_.Insert(static_cast<std::size_t>(pair_p2_));
  }
}

void SortStats::StoreCount(std::size_t p, std::int64_t value) {
  if (counts_dense_) {
    property_count_[p] = value;
    return;
  }
  const auto pos = std::lower_bound(sparse_props_.begin(), sparse_props_.end(),
                                    static_cast<std::uint32_t>(p));
  const std::size_t i = static_cast<std::size_t>(pos - sparse_props_.begin());
  if (pos != sparse_props_.end() && *pos == p) {
    if (value == 0) {
      sparse_props_.erase(pos);
      sparse_counts_.erase(sparse_counts_.begin() +
                           static_cast<std::ptrdiff_t>(i));
    } else {
      sparse_counts_[i] = value;
    }
    return;
  }
  RDFSR_CHECK_NE(value, 0);
  sparse_props_.insert(pos, static_cast<std::uint32_t>(p));
  sparse_counts_.insert(sparse_counts_.begin() + static_cast<std::ptrdiff_t>(i),
                        value);
}

void SortStats::MaybeDensifyCounts() {
  const std::size_t num_props = index_->num_properties();
  if (counts_dense_ || 2 * static_cast<std::size_t>(used_properties_) < num_props) {
    return;
  }
  property_count_.assign(num_props, 0);
  for (std::size_t i = 0; i < sparse_props_.size(); ++i) {
    property_count_[sparse_props_[i]] = sparse_counts_[i];
  }
  sparse_props_.clear();
  sparse_props_.shrink_to_fit();
  sparse_counts_.clear();
  sparse_counts_.shrink_to_fit();
  counts_dense_ = true;
}

void SortStats::MaybeSparsifyCounts() {
  const std::size_t num_props = index_->num_properties();
  // Hysteresis: re-sparsify only well below the densify bound (|P| / 8 vs
  // |P| / 2), so sorts hovering at the boundary do not thrash.
  if (!counts_dense_ ||
      8 * static_cast<std::size_t>(used_properties_) > num_props) {
    return;
  }
  sparse_props_.reserve(static_cast<std::size_t>(used_properties_));
  sparse_counts_.reserve(static_cast<std::size_t>(used_properties_));
  used_.ForEach([&](int p) {
    sparse_props_.push_back(static_cast<std::uint32_t>(p));
    sparse_counts_.push_back(property_count_[static_cast<std::size_t>(p)]);
  });
  property_count_.clear();
  property_count_.shrink_to_fit();
  counts_dense_ = false;
}

void SortStats::Add(int sig_id) {
  RDFSR_CHECK(index_ != nullptr);
  RDFSR_CHECK_GE(sig_id, 0);
  RDFSR_CHECK_LT(static_cast<std::size_t>(sig_id), index_->num_signatures());
  RDFSR_CHECK(!members_.Contains(static_cast<std::size_t>(sig_id)))
      << "signature " << sig_id << " already a member";
  const schema::Signature& sig = index_->signature(sig_id);
  const std::int64_t n = sig.count;
  members_.Insert(static_cast<std::size_t>(sig_id));
  ++num_members_;
  subjects_ += n;
  support_sum_ +=
      static_cast<BigCount>(n) * static_cast<BigCount>(sig.props().Popcount());
  sig.props().ForEach([&](int p) {
    const std::size_t prop = static_cast<std::size_t>(p);
    const std::int64_t c = property_count(prop);
    // (c + n)^2 - c^2 = n * (2c + n), kept exact in 128-bit.
    count_sq_sum_ += static_cast<BigCount>(n) * (2 * c + n);
    if (c == 0) {
      used_.Insert(prop);
      ++used_properties_;
    }
    StoreCount(prop, c + n);
  });
  MaybeDensifyCounts();
  if (pair_mask_.capacity() != 0 && pair_mask_.IsSubsetOf(sig.props())) {
    pair_both_ += n;
  }
}

void SortStats::Remove(int sig_id) {
  RDFSR_CHECK(index_ != nullptr);
  RDFSR_CHECK_GE(sig_id, 0);
  RDFSR_CHECK(members_.Contains(static_cast<std::size_t>(sig_id)))
      << "signature " << sig_id << " not a member";
  const schema::Signature& sig = index_->signature(sig_id);
  const std::int64_t n = sig.count;
  members_.Erase(static_cast<std::size_t>(sig_id));
  --num_members_;
  subjects_ -= n;
  support_sum_ -=
      static_cast<BigCount>(n) * static_cast<BigCount>(sig.props().Popcount());
  sig.props().ForEach([&](int p) {
    const std::size_t prop = static_cast<std::size_t>(p);
    const std::int64_t c = property_count(prop);
    // c^2 - (c - n)^2 = n * (2c - n).
    count_sq_sum_ -= static_cast<BigCount>(n) * (2 * c - n);
    if (c == n) {
      used_.Erase(prop);
      --used_properties_;
    }
    StoreCount(prop, c - n);
  });
  MaybeSparsifyCounts();
  if (pair_mask_.capacity() != 0 && pair_mask_.IsSubsetOf(sig.props())) {
    pair_both_ -= n;
  }
}

void SortStats::MergeWith(const SortStats& other) {
  RDFSR_CHECK(index_ != nullptr);
  RDFSR_CHECK(index_ == other.index_) << "stats over different indices";
  RDFSR_CHECK(pair_p1_ == other.pair_p1_ && pair_p2_ == other.pair_p2_)
      << "stats track different property pairs";
  RDFSR_CHECK(!members_.Intersects(other.members_))
      << "merging overlapping sorts";
  // Cross term of Σ (a_p + b_p)^2 over shared columns, read before the
  // per-column counts are folded in.
  BigCount cross = 0;
  used_.ForEachIntersect(other.used_, [&](int p) {
    const std::size_t prop = static_cast<std::size_t>(p);
    cross += static_cast<BigCount>(property_count(prop)) *
             static_cast<BigCount>(other.property_count(prop));
  });
  count_sq_sum_ += other.count_sq_sum_ + 2 * cross;
  other.ForEachCount([&](std::size_t prop, std::int64_t oc) {
    const std::int64_t c = property_count(prop);
    if (c == 0) {
      used_.Insert(prop);
      ++used_properties_;
    }
    StoreCount(prop, c + oc);
  });
  MaybeDensifyCounts();
  subjects_ += other.subjects_;
  support_sum_ += other.support_sum_;
  pair_both_ += other.pair_both_;
  members_.UnionWith(other.members_);
  num_members_ += other.num_members_;
}

void SortStats::CheckInvariants() const {
  RDFSR_CHECK(index_ != nullptr) << "placeholder SortStats";
  members_.CheckInvariants();
  RDFSR_CHECK_EQ(members_.size(), num_members_) << "member count out of sync";

  // Scratch recompute of every aggregate over the member signatures.
  const std::size_t num_props = index_->num_properties();
  std::vector<std::int64_t> counts(num_props, 0);
  BigCount subjects = 0, support_sum = 0, pair_both = 0;
  members_.ForEach([&](int sig_id) {
    const schema::Signature& sig = index_->signature(sig_id);
    const std::int64_t n = sig.count;
    subjects += n;
    support_sum += static_cast<BigCount>(n) *
                   static_cast<BigCount>(sig.props().Popcount());
    sig.props().ForEach([&](int p) { counts[static_cast<std::size_t>(p)] += n; });
    if (pair_mask_.capacity() != 0 && pair_mask_.IsSubsetOf(sig.props())) {
      pair_both += n;
    }
  });
  RDFSR_CHECK(subjects == subjects_) << "subjects aggregate out of sync";
  RDFSR_CHECK(support_sum == support_sum_) << "support_sum out of sync";
  RDFSR_CHECK(pair_both == pair_both_) << "pair_both out of sync";

  BigCount count_sq_sum = 0;
  int used_count = 0;
  RDFSR_CHECK_EQ(used_.capacity(), num_props) << "used set capacity mismatch";
  for (std::size_t p = 0; p < num_props; ++p) {
    count_sq_sum +=
        static_cast<BigCount>(counts[p]) * static_cast<BigCount>(counts[p]);
    RDFSR_CHECK_EQ(property_count(p), counts[p])
        << "cnt_" << p << " out of sync";
    RDFSR_CHECK_EQ(used_.Contains(p), counts[p] > 0)
        << "used bit " << p << " disagrees with cnt_" << p;
    if (counts[p] > 0) ++used_count;
  }
  RDFSR_CHECK(count_sq_sum == count_sq_sum_) << "count_sq_sum out of sync";
  RDFSR_CHECK_EQ(used_count, used_properties_) << "|P*| out of sync";

  // Representation invariants: exactly one count storage is active.
  if (counts_dense_) {
    RDFSR_CHECK_EQ(property_count_.size(), num_props);
    RDFSR_CHECK(sparse_props_.empty() && sparse_counts_.empty())
        << "dense stats still hold sparse arrays";
  } else {
    RDFSR_CHECK(property_count_.empty())
        << "sparse stats still hold the dense vector";
    RDFSR_CHECK_EQ(sparse_props_.size(), sparse_counts_.size());
    RDFSR_CHECK_EQ(sparse_props_.size(),
                   static_cast<std::size_t>(used_properties_));
    for (std::size_t i = 0; i < sparse_props_.size(); ++i) {
      RDFSR_CHECK_NE(sparse_counts_[i], 0) << "sparse entry with zero count";
      if (i > 0) {
        RDFSR_CHECK_LT(sparse_props_[i - 1], sparse_props_[i])
            << "sparse property ids not strictly ascending";
      }
    }
  }
}

}  // namespace rdfsr::eval
