#include "eval/sort_stats.h"

#include "util/check.h"

namespace rdfsr::eval {

SortStats::SortStats(const schema::SignatureIndex* index, int pair_p1,
                     int pair_p2)
    : index_(index),
      members_(index->num_signatures()),
      used_(index->num_properties()),
      property_count_(index->num_properties(), 0),
      pair_p1_(pair_p1),
      pair_p2_(pair_p2) {
  RDFSR_CHECK(index_ != nullptr);
  if (pair_p1_ >= 0 && pair_p2_ >= 0) {
    pair_mask_ = schema::PropertySet(index->num_properties());
    pair_mask_.Insert(static_cast<std::size_t>(pair_p1_));
    pair_mask_.Insert(static_cast<std::size_t>(pair_p2_));
  }
}

void SortStats::Add(int sig_id) {
  RDFSR_CHECK(index_ != nullptr);
  RDFSR_CHECK_GE(sig_id, 0);
  RDFSR_CHECK_LT(static_cast<std::size_t>(sig_id), index_->num_signatures());
  RDFSR_CHECK(!members_.Contains(static_cast<std::size_t>(sig_id)))
      << "signature " << sig_id << " already a member";
  const schema::Signature& sig = index_->signature(sig_id);
  const std::int64_t n = sig.count;
  members_.Insert(static_cast<std::size_t>(sig_id));
  ++num_members_;
  subjects_ += n;
  support_sum_ +=
      static_cast<BigCount>(n) * static_cast<BigCount>(sig.props().Popcount());
  sig.props().ForEach([&](int p) {
    std::int64_t& c = property_count_[p];
    // (c + n)^2 - c^2 = n * (2c + n), kept exact in 128-bit.
    count_sq_sum_ += static_cast<BigCount>(n) * (2 * c + n);
    if (c == 0) {
      used_.Insert(static_cast<std::size_t>(p));
      ++used_properties_;
    }
    c += n;
  });
  if (pair_mask_.capacity() != 0 && pair_mask_.IsSubsetOf(sig.props())) {
    pair_both_ += n;
  }
}

void SortStats::Remove(int sig_id) {
  RDFSR_CHECK(index_ != nullptr);
  RDFSR_CHECK_GE(sig_id, 0);
  RDFSR_CHECK(members_.Contains(static_cast<std::size_t>(sig_id)))
      << "signature " << sig_id << " not a member";
  const schema::Signature& sig = index_->signature(sig_id);
  const std::int64_t n = sig.count;
  members_.Erase(static_cast<std::size_t>(sig_id));
  --num_members_;
  subjects_ -= n;
  support_sum_ -=
      static_cast<BigCount>(n) * static_cast<BigCount>(sig.props().Popcount());
  sig.props().ForEach([&](int p) {
    std::int64_t& c = property_count_[p];
    // c^2 - (c - n)^2 = n * (2c - n).
    count_sq_sum_ -= static_cast<BigCount>(n) * (2 * c - n);
    c -= n;
    if (c == 0) {
      used_.Erase(static_cast<std::size_t>(p));
      --used_properties_;
    }
  });
  if (pair_mask_.capacity() != 0 && pair_mask_.IsSubsetOf(sig.props())) {
    pair_both_ -= n;
  }
}

void SortStats::MergeWith(const SortStats& other) {
  RDFSR_CHECK(index_ != nullptr);
  RDFSR_CHECK(index_ == other.index_) << "stats over different indices";
  RDFSR_CHECK(pair_p1_ == other.pair_p1_ && pair_p2_ == other.pair_p2_)
      << "stats track different property pairs";
  RDFSR_CHECK(!members_.Intersects(other.members_))
      << "merging overlapping sorts";
  // Cross term of Σ (a_p + b_p)^2 over shared columns, read before the
  // per-column counts are folded in.
  BigCount cross = 0;
  used_.ForEachIntersect(other.used_, [&](int p) {
    cross += static_cast<BigCount>(property_count_[p]) *
             static_cast<BigCount>(other.property_count_[p]);
  });
  count_sq_sum_ += other.count_sq_sum_ + 2 * cross;
  other.used_.ForEach([&](int p) {
    std::int64_t& c = property_count_[p];
    if (c == 0) {
      used_.Insert(static_cast<std::size_t>(p));
      ++used_properties_;
    }
    c += other.property_count_[p];
  });
  subjects_ += other.subjects_;
  support_sum_ += other.support_sum_;
  pair_both_ += other.pair_both_;
  members_.UnionWith(other.members_);
  num_members_ += other.num_members_;
}

}  // namespace rdfsr::eval
