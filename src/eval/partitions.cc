#include "eval/partitions.h"

#include "util/check.h"

namespace rdfsr::eval {

void ForEachSetPartition(
    int n, const std::function<bool(const std::vector<int>&)>& visit) {
  RDFSR_CHECK_GE(n, 0);
  std::vector<int> class_of(n, 0);
  if (n == 0) {
    visit(class_of);
    return;
  }
  // Depth-first over restricted growth strings: position i may take any class
  // id in [0, 1 + max(class_of[0..i-1])].
  std::vector<int> max_prefix(n, 0);  // max class id among positions < i
  int i = 0;
  class_of[0] = 0;
  max_prefix[0] = -1;  // no previous positions
  while (true) {
    if (i == n - 1) {
      if (!visit(class_of)) return;
      // Backtrack to the last position that can still be incremented.
      while (i >= 0 && class_of[i] >= max_prefix[i] + 1) --i;
      if (i < 0) return;
      ++class_of[i];
    } else {
      ++i;
      max_prefix[i] = std::max(max_prefix[i - 1], class_of[i - 1]);
      class_of[i] = 0;
    }
  }
}

std::int64_t BellNumber(int n) {
  RDFSR_CHECK_GE(n, 0);
  RDFSR_CHECK_LE(n, 20);
  // Bell triangle.
  std::vector<std::vector<std::int64_t>> triangle(
      static_cast<std::size_t>(n) + 1);
  triangle[0] = {1};
  for (int r = 1; r <= n; ++r) {
    triangle[r].resize(r + 1);
    triangle[r][0] = triangle[r - 1][r - 1];
    for (int c = 1; c <= r; ++c) {
      triangle[r][c] = triangle[r][c - 1] + triangle[r - 1][c - 1];
    }
  }
  return triangle[n][0];
}

}  // namespace rdfsr::eval
