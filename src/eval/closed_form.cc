#include "eval/closed_form.h"

#include <algorithm>

#include "util/check.h"

namespace rdfsr::eval {

SubsetStats SubsetStats::Compute(const schema::SignatureIndex& index,
                                 const std::vector<int>& sig_ids) {
  SubsetStats stats;
  stats.property_count.assign(index.num_properties(), 0);
  for (int id : sig_ids) {
    RDFSR_CHECK_GE(id, 0);
    RDFSR_CHECK_LT(static_cast<std::size_t>(id), index.num_signatures());
    const schema::Signature& sig = index.signature(id);
    stats.subjects += sig.count;
    stats.support_sum += static_cast<BigCount>(sig.count) *
                         static_cast<BigCount>(sig.props().Popcount());
    sig.props().ForEach(
        [&](int p) { stats.property_count[p] += sig.count; });
  }
  for (const BigCount& c : stats.property_count) {
    if (c > 0) ++stats.used_properties;
  }
  return stats;
}

BigCount SubsetStats::CountHavingAll(const schema::SignatureIndex& index,
                                     const std::vector<int>& sig_ids,
                                     const std::vector<int>& props) {
  for (int p : props) {
    if (p < 0) return 0;
  }
  const schema::PropertySet needed =
      schema::PropertySet::FromIndices(index.num_properties(), props);
  BigCount total = 0;
  for (int id : sig_ids) {
    if (needed.IsSubsetOf(index.signature(id).props())) {
      total += index.signature(id).count;
    }
  }
  return total;
}

SigmaCounts CovCounts(const schema::SignatureIndex& index,
                      const std::vector<int>& sig_ids) {
  const SubsetStats stats = SubsetStats::Compute(index, sig_ids);
  SigmaCounts out;
  out.total = stats.subjects * stats.used_properties;
  out.favorable = stats.support_sum;
  return out;
}

SigmaCounts CovIgnoringCounts(const schema::SignatureIndex& index,
                              const std::vector<int>& sig_ids,
                              const std::vector<std::string>& ignored) {
  const SubsetStats stats = SubsetStats::Compute(index, sig_ids);
  std::vector<bool> is_ignored(index.num_properties(), false);
  for (const std::string& name : ignored) {
    const int p = index.FindProperty(name);
    if (p >= 0) is_ignored[p] = true;
  }
  SigmaCounts out;
  int kept_columns = 0;
  for (std::size_t p = 0; p < index.num_properties(); ++p) {
    if (stats.property_count[p] > 0 && !is_ignored[p]) {
      ++kept_columns;
      out.favorable += stats.property_count[p];
    }
  }
  out.total = stats.subjects * kept_columns;
  return out;
}

SigmaCounts SimCounts(const schema::SignatureIndex& index,
                      const std::vector<int>& sig_ids) {
  const SubsetStats stats = SubsetStats::Compute(index, sig_ids);
  SigmaCounts out;
  for (std::size_t p = 0; p < index.num_properties(); ++p) {
    const BigCount cnt = stats.property_count[p];
    if (cnt == 0) continue;
    out.total += cnt * (stats.subjects - 1);
    out.favorable += cnt * (cnt - 1);
  }
  return out;
}

namespace {

/// Looks up both property ids; returns false when either column is missing
/// from the subset's view (no subjects use it) — in which case total cases
/// are zero (sigma trivially 1, cf. Figure 4c's left sort).
bool LookupColumns(const schema::SignatureIndex& index,
                   const SubsetStats& stats, const std::string& p1,
                   const std::string& p2, int* id1, int* id2) {
  *id1 = index.FindProperty(p1);
  *id2 = index.FindProperty(p2);
  if (*id1 < 0 || *id2 < 0) return false;
  if (stats.property_count[*id1] == 0 && stats.property_count[*id2] == 0) {
    // Neither column exists in the sub-view: no assignment can satisfy
    // prop(c1)=p1 ∧ prop(c2)=p2.
    return false;
  }
  // A column with zero count among the subset's signatures does not exist in
  // the restricted matrix either.
  if (stats.property_count[*id1] == 0 || stats.property_count[*id2] == 0) {
    return false;
  }
  return true;
}

}  // namespace

SigmaCounts DepCounts(const schema::SignatureIndex& index,
                      const std::vector<int>& sig_ids, const std::string& p1,
                      const std::string& p2) {
  const SubsetStats stats = SubsetStats::Compute(index, sig_ids);
  SigmaCounts out;
  int id1 = -1, id2 = -1;
  if (!LookupColumns(index, stats, p1, p2, &id1, &id2)) return out;
  out.total = stats.property_count[id1];
  out.favorable = SubsetStats::CountHavingAll(index, sig_ids, {id1, id2});
  return out;
}

SigmaCounts SymDepCounts(const schema::SignatureIndex& index,
                         const std::vector<int>& sig_ids,
                         const std::string& p1, const std::string& p2) {
  const SubsetStats stats = SubsetStats::Compute(index, sig_ids);
  SigmaCounts out;
  int id1 = -1, id2 = -1;
  if (!LookupColumns(index, stats, p1, p2, &id1, &id2)) return out;
  const BigCount both = SubsetStats::CountHavingAll(index, sig_ids, {id1, id2});
  out.total =
      stats.property_count[id1] + stats.property_count[id2] - both;
  out.favorable = both;
  return out;
}

SigmaCounts DepDisjCounts(const schema::SignatureIndex& index,
                          const std::vector<int>& sig_ids,
                          const std::string& p1, const std::string& p2) {
  const SubsetStats stats = SubsetStats::Compute(index, sig_ids);
  SigmaCounts out;
  int id1 = -1, id2 = -1;
  if (!LookupColumns(index, stats, p1, p2, &id1, &id2)) return out;
  const BigCount both = SubsetStats::CountHavingAll(index, sig_ids, {id1, id2});
  out.total = stats.subjects;
  out.favorable = stats.subjects - stats.property_count[id1] + both;
  return out;
}

SigmaCounts CovCountsFromStats(const SortStats& stats) {
  SigmaCounts out;
  out.total = stats.subjects() * stats.used_properties();
  out.favorable = stats.support_sum();
  return out;
}

SigmaCounts CovIgnoringCountsFromStats(
    const SortStats& stats, const schema::PropertySet& ignored_mask) {
  SigmaCounts out;
  BigCount favorable = stats.support_sum();
  int kept_columns = stats.used_properties();
  stats.used().ForEachIntersect(ignored_mask, [&](int p) {
    favorable -= stats.property_count(static_cast<std::size_t>(p));
    --kept_columns;
  });
  out.total = stats.subjects() * kept_columns;
  out.favorable = favorable;
  return out;
}

SigmaCounts SimCountsFromStats(const SortStats& stats) {
  SigmaCounts out;
  if (stats.empty()) return out;
  out.total = stats.support_sum() * (stats.subjects() - 1);
  out.favorable = stats.count_sq_sum() - stats.support_sum();
  return out;
}

namespace {

/// Mirrors LookupColumns for the stats path: both tracked columns must exist
/// in the sort's view, else total = 0 (sigma trivially 1).
bool StatsColumnsPresent(const SortStats& stats) {
  if (stats.pair_p1() < 0 || stats.pair_p2() < 0) return false;
  return stats.property_count(static_cast<std::size_t>(stats.pair_p1())) > 0 &&
         stats.property_count(static_cast<std::size_t>(stats.pair_p2())) > 0;
}

}  // namespace

SigmaCounts DepCountsFromStats(const SortStats& stats) {
  SigmaCounts out;
  if (!StatsColumnsPresent(stats)) return out;
  out.total = stats.property_count(static_cast<std::size_t>(stats.pair_p1()));
  out.favorable = stats.pair_both();
  return out;
}

SigmaCounts SymDepCountsFromStats(const SortStats& stats) {
  SigmaCounts out;
  if (!StatsColumnsPresent(stats)) return out;
  out.total =
      stats.property_count(static_cast<std::size_t>(stats.pair_p1())) +
      stats.property_count(static_cast<std::size_t>(stats.pair_p2())) -
      stats.pair_both();
  out.favorable = stats.pair_both();
  return out;
}

SigmaCounts DepDisjCountsFromStats(const SortStats& stats) {
  SigmaCounts out;
  if (!StatsColumnsPresent(stats)) return out;
  out.total = stats.subjects();
  out.favorable =
      stats.subjects() -
      stats.property_count(static_cast<std::size_t>(stats.pair_p1())) +
      stats.pair_both();
  return out;
}

SigmaCounts CovCountsFromMergedStats(const SortStats& a, const SortStats& b) {
  SigmaCounts out;
  out.total = (a.subjects() + b.subjects()) *
              static_cast<BigCount>(a.used().UnionCount(b.used()));
  out.favorable = a.support_sum() + b.support_sum();
  return out;
}

SigmaCounts CovIgnoringCountsFromMergedStats(
    const SortStats& a, const SortStats& b,
    const schema::PropertySet& ignored_mask) {
  SigmaCounts out;
  BigCount favorable = a.support_sum() + b.support_sum();
  BigCount kept_columns =
      static_cast<BigCount>(a.used().UnionCount(b.used()));
  ignored_mask.ForEach([&](int p) {
    const std::size_t prop = static_cast<std::size_t>(p);
    const std::int64_t cnt = a.property_count(prop) + b.property_count(prop);
    if (cnt > 0) {
      favorable -= cnt;
      --kept_columns;
    }
  });
  out.total = (a.subjects() + b.subjects()) * kept_columns;
  out.favorable = favorable;
  return out;
}

SigmaCounts SimCountsFromMergedStats(const SortStats& a, const SortStats& b) {
  SigmaCounts out;
  const BigCount subjects = a.subjects() + b.subjects();
  if (subjects == 0) return out;
  const BigCount support_sum = a.support_sum() + b.support_sum();
  BigCount cross = 0;
  a.used().ForEachIntersect(b.used(), [&](int p) {
    const std::size_t prop = static_cast<std::size_t>(p);
    cross += static_cast<BigCount>(a.property_count(prop)) *
             static_cast<BigCount>(b.property_count(prop));
  });
  out.total = support_sum * (subjects - 1);
  out.favorable =
      a.count_sq_sum() + b.count_sq_sum() + 2 * cross - support_sum;
  return out;
}

namespace {

/// LookupColumns for a candidate merge: both tracked columns must exist in
/// the union view.
bool MergedColumnsPresent(const SortStats& a, const SortStats& b) {
  RDFSR_CHECK(a.pair_p1() == b.pair_p1() && a.pair_p2() == b.pair_p2())
      << "stats track different property pairs";
  if (a.pair_p1() < 0 || a.pair_p2() < 0) return false;
  const std::size_t p1 = static_cast<std::size_t>(a.pair_p1());
  const std::size_t p2 = static_cast<std::size_t>(a.pair_p2());
  return a.property_count(p1) + b.property_count(p1) > 0 &&
         a.property_count(p2) + b.property_count(p2) > 0;
}

}  // namespace

SigmaCounts DepCountsFromMergedStats(const SortStats& a, const SortStats& b) {
  SigmaCounts out;
  if (!MergedColumnsPresent(a, b)) return out;
  const std::size_t p1 = static_cast<std::size_t>(a.pair_p1());
  out.total = a.property_count(p1) + b.property_count(p1);
  out.favorable = a.pair_both() + b.pair_both();
  return out;
}

SigmaCounts SymDepCountsFromMergedStats(const SortStats& a,
                                        const SortStats& b) {
  SigmaCounts out;
  if (!MergedColumnsPresent(a, b)) return out;
  const std::size_t p1 = static_cast<std::size_t>(a.pair_p1());
  const std::size_t p2 = static_cast<std::size_t>(a.pair_p2());
  const BigCount both = a.pair_both() + b.pair_both();
  out.total = BigCount{a.property_count(p1)} + b.property_count(p1) +
              a.property_count(p2) + b.property_count(p2) - both;
  out.favorable = both;
  return out;
}

SigmaCounts DepDisjCountsFromMergedStats(const SortStats& a,
                                         const SortStats& b) {
  SigmaCounts out;
  if (!MergedColumnsPresent(a, b)) return out;
  const std::size_t p1 = static_cast<std::size_t>(a.pair_p1());
  const BigCount subjects = a.subjects() + b.subjects();
  out.total = subjects;
  out.favorable = subjects - a.property_count(p1) - b.property_count(p1) +
                  a.pair_both() + b.pair_both();
  return out;
}

std::vector<int> AllSignatures(const schema::SignatureIndex& index) {
  std::vector<int> ids(index.num_signatures());
  for (std::size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<int>(i);
  return ids;
}

}  // namespace rdfsr::eval
