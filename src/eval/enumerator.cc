#include "eval/enumerator.h"

#include <algorithm>
#include <functional>

#include "util/check.h"

namespace rdfsr::eval {

namespace {

int VarIndex(const std::vector<std::string>& variables, const std::string& v) {
  auto it = std::find(variables.begin(), variables.end(), v);
  RDFSR_CHECK(it != variables.end()) << "unbound variable '" << v << "'";
  return static_cast<int>(it - variables.begin());
}

Tri TriNot(Tri t) {
  switch (t) {
    case Tri::kFalse:
      return Tri::kTrue;
    case Tri::kTrue:
      return Tri::kFalse;
    case Tri::kUnknown:
      return Tri::kUnknown;
  }
  return Tri::kUnknown;
}

Tri TriAnd(Tri a, Tri b) {
  if (a == Tri::kFalse || b == Tri::kFalse) return Tri::kFalse;
  if (a == Tri::kTrue && b == Tri::kTrue) return Tri::kTrue;
  return Tri::kUnknown;
}

Tri TriOr(Tri a, Tri b) {
  if (a == Tri::kTrue || b == Tri::kTrue) return Tri::kTrue;
  if (a == Tri::kFalse && b == Tri::kFalse) return Tri::kFalse;
  return Tri::kUnknown;
}

Tri FromBool(bool b) { return b ? Tri::kTrue : Tri::kFalse; }

}  // namespace

Tri PartialEvaluate(const rules::FormulaPtr& phi,
                    const std::vector<std::string>& variables,
                    const RoughAssignment& partial,
                    const schema::SignatureIndex& index) {
  using rules::FormulaKind;
  RDFSR_CHECK(phi != nullptr);
  auto assigned = [&](int v) { return partial.cells[v].first >= 0; };
  switch (phi->kind) {
    case FormulaKind::kValEqConst: {
      const int v = VarIndex(variables, phi->var1);
      if (!assigned(v)) return Tri::kUnknown;
      const auto [sig, prop] = partial.cells[v];
      return FromBool(index.Has(sig, prop) == (phi->value == 1));
    }
    case FormulaKind::kSubjEqConst: {
      const int v = VarIndex(variables, phi->var1);
      if (!assigned(v)) return Tri::kUnknown;
      const int const_sig = index.FindSubjectSignature(phi->constant);
      if (const_sig != partial.cells[v].first) return Tri::kFalse;
      return Tri::kUnknown;  // depends on the concrete subject choice
    }
    case FormulaKind::kPropEqConst: {
      const int v = VarIndex(variables, phi->var1);
      if (!assigned(v)) return Tri::kUnknown;
      return FromBool(index.property_name(partial.cells[v].second) ==
                      phi->constant);
    }
    case FormulaKind::kVarEq: {
      const int a = VarIndex(variables, phi->var1);
      const int b = VarIndex(variables, phi->var2);
      if (a == b) return Tri::kTrue;
      if (!assigned(a) || !assigned(b)) return Tri::kUnknown;
      if (partial.cells[a].first != partial.cells[b].first ||
          partial.cells[a].second != partial.cells[b].second) {
        return Tri::kFalse;
      }
      return Tri::kUnknown;  // same signature set and property: may coincide
    }
    case FormulaKind::kValEqVal: {
      const int a = VarIndex(variables, phi->var1);
      const int b = VarIndex(variables, phi->var2);
      if (a == b) return Tri::kTrue;
      if (!assigned(a) || !assigned(b)) return Tri::kUnknown;
      const auto [sa, pa] = partial.cells[a];
      const auto [sb, pb] = partial.cells[b];
      return FromBool(index.Has(sa, pa) == index.Has(sb, pb));
    }
    case FormulaKind::kSubjEqSubj: {
      const int a = VarIndex(variables, phi->var1);
      const int b = VarIndex(variables, phi->var2);
      if (a == b) return Tri::kTrue;
      if (!assigned(a) || !assigned(b)) return Tri::kUnknown;
      if (partial.cells[a].first != partial.cells[b].first) return Tri::kFalse;
      return Tri::kUnknown;
    }
    case FormulaKind::kPropEqProp: {
      const int a = VarIndex(variables, phi->var1);
      const int b = VarIndex(variables, phi->var2);
      if (a == b) return Tri::kTrue;
      if (!assigned(a) || !assigned(b)) return Tri::kUnknown;
      return FromBool(partial.cells[a].second == partial.cells[b].second);
    }
    case FormulaKind::kNot:
      return TriNot(PartialEvaluate(phi->left, variables, partial, index));
    case FormulaKind::kAnd:
      return TriAnd(PartialEvaluate(phi->left, variables, partial, index),
                    PartialEvaluate(phi->right, variables, partial, index));
    case FormulaKind::kOr:
      return TriOr(PartialEvaluate(phi->left, variables, partial, index),
                   PartialEvaluate(phi->right, variables, partial, index));
  }
  return Tri::kUnknown;
}

namespace {

/// Shared DFS over rough assignments; `on_leaf` receives each tau whose
/// antecedent is not definitely false.
void ForEachCandidateTau(const rules::Rule& rule,
                         const schema::SignatureIndex& index,
                         const std::function<void(const RoughAssignment&)>&
                             on_leaf) {
  const std::vector<std::string>& variables = rule.variables();
  const int n = static_cast<int>(variables.size());
  const int sigs = static_cast<int>(index.num_signatures());
  const int props = static_cast<int>(index.num_properties());
  if (sigs == 0 || props == 0) return;

  RoughAssignment partial;
  partial.cells.assign(n, {-1, -1});

  std::function<void(int)> recurse = [&](int depth) {
    if (depth == n) {
      on_leaf(partial);
      return;
    }
    for (int sig = 0; sig < sigs; ++sig) {
      for (int prop = 0; prop < props; ++prop) {
        partial.cells[depth] = {sig, prop};
        if (PartialEvaluate(rule.antecedent(), variables, partial, index) !=
            Tri::kFalse) {
          recurse(depth + 1);
        }
      }
    }
    partial.cells[depth] = {-1, -1};
  };
  recurse(0);
}

}  // namespace

std::vector<TauCount> EnumerateTauCounts(const rules::Rule& rule,
                                         const schema::SignatureIndex& index) {
  std::vector<TauCount> out;
  ForEachCandidateTau(rule, index, [&](const RoughAssignment& tau) {
    const SigmaCounts counts = CountRuleCases(
        rule.antecedent(), rule.consequent(), rule.variables(), tau, index);
    if (counts.total == 0) return;
    TauCount tc;
    tc.tau = tau;
    RDFSR_CHECK(counts.total <= INT64_MAX && counts.favorable <= INT64_MAX)
        << "per-tau count exceeds int64";
    tc.total = static_cast<std::int64_t>(counts.total);
    tc.favorable = static_cast<std::int64_t>(counts.favorable);
    out.push_back(std::move(tc));
  });
  return out;
}

SigmaCounts EvaluateRuleOnIndex(const rules::Rule& rule,
                                const schema::SignatureIndex& index) {
  SigmaCounts sum;
  ForEachCandidateTau(rule, index, [&](const RoughAssignment& tau) {
    sum += CountRuleCases(rule.antecedent(), rule.consequent(),
                          rule.variables(), tau, index);
  });
  return sum;
}

}  // namespace rdfsr::eval
