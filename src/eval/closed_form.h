// Closed-form structuredness computation for the builtin rule families.
//
// For the rules of Section 2.2 the double sum over rough assignments collapses
// to per-property subject counts. With N = Σ_mu n_mu subjects, cnt_p = number
// of subjects having p, and P* = properties used by at least one subject:
//
//   Cov:            total = N * |P*|                favorable = Σ_mu n_mu |supp(mu)|
//   Sim:            total = Σ_p cnt_p (N - 1)       favorable = Σ_p cnt_p (cnt_p - 1)
//   Dep[p1,p2]:     total = cnt_p1                  favorable = cnt_{p1 ∧ p2}
//   SymDep[p1,p2]:  total = cnt_p1 + cnt_p2 - both  favorable = cnt_{p1 ∧ p2}
//   DepDisj[p1,p2]: total = N                       favorable = N - cnt_p1 + both
//
// Dep/SymDep/DepDisj require the p1 and p2 columns to exist in the sort's view
// (Section 7.1.1's "trivially satisfied" sorts rely on this): when either is
// missing, total = 0 and sigma = 1. These closed forms are property-tested
// against the generic enumerator.
//
// When computing sigma for an implicit sort (a subset of signatures), columns
// are those used by the member signatures — pass the subset; the full dataset
// is the subset of all signatures.

#ifndef RDFSR_EVAL_CLOSED_FORM_H_
#define RDFSR_EVAL_CLOSED_FORM_H_

#include <string>
#include <vector>

#include "eval/counts.h"
#include "schema/signature_index.h"

namespace rdfsr::eval {

/// Aggregate statistics of a subset of signatures (an implicit sort).
struct SubsetStats {
  BigCount subjects = 0;                   ///< N: subjects in the subset.
  std::vector<BigCount> property_count;    ///< cnt_p per (global) property id.
  BigCount support_sum = 0;                ///< Σ_mu n_mu |supp(mu)|.
  int used_properties = 0;                 ///< |P*|: columns with cnt_p > 0.

  /// Computes the stats for the given signature ids of `index`.
  static SubsetStats Compute(const schema::SignatureIndex& index,
                             const std::vector<int>& sig_ids);

  /// cnt over subjects having ALL of the given properties.
  static BigCount CountHavingAll(const schema::SignatureIndex& index,
                                 const std::vector<int>& sig_ids,
                                 const std::vector<int>& props);
};

/// sigma_Cov counts for a subset.
SigmaCounts CovCounts(const schema::SignatureIndex& index,
                      const std::vector<int>& sig_ids);

/// sigma_Cov ignoring the listed properties.
SigmaCounts CovIgnoringCounts(const schema::SignatureIndex& index,
                              const std::vector<int>& sig_ids,
                              const std::vector<std::string>& ignored);

/// sigma_Sim counts for a subset.
SigmaCounts SimCounts(const schema::SignatureIndex& index,
                      const std::vector<int>& sig_ids);

/// sigma_Dep[p1, p2] counts for a subset (property names).
SigmaCounts DepCounts(const schema::SignatureIndex& index,
                      const std::vector<int>& sig_ids, const std::string& p1,
                      const std::string& p2);

/// sigma_SymDep[p1, p2] counts for a subset.
SigmaCounts SymDepCounts(const schema::SignatureIndex& index,
                         const std::vector<int>& sig_ids,
                         const std::string& p1, const std::string& p2);

/// Disjunctive-consequent Dep variant counts for a subset.
SigmaCounts DepDisjCounts(const schema::SignatureIndex& index,
                          const std::vector<int>& sig_ids,
                          const std::string& p1, const std::string& p2);

/// Convenience: all signature ids of an index (the full dataset subset).
std::vector<int> AllSignatures(const schema::SignatureIndex& index);

}  // namespace rdfsr::eval

#endif  // RDFSR_EVAL_CLOSED_FORM_H_
