// Closed-form structuredness computation for the builtin rule families.
//
// For the rules of Section 2.2 the double sum over rough assignments collapses
// to per-property subject counts. With N = Σ_mu n_mu subjects, cnt_p = number
// of subjects having p, and P* = properties used by at least one subject:
//
//   Cov:            total = N * |P*|                favorable = Σ_mu n_mu |supp(mu)|
//   Sim:            total = Σ_p cnt_p (N - 1)       favorable = Σ_p cnt_p (cnt_p - 1)
//   Dep[p1,p2]:     total = cnt_p1                  favorable = cnt_{p1 ∧ p2}
//   SymDep[p1,p2]:  total = cnt_p1 + cnt_p2 - both  favorable = cnt_{p1 ∧ p2}
//   DepDisj[p1,p2]: total = N                       favorable = N - cnt_p1 + both
//
// Dep/SymDep/DepDisj require the p1 and p2 columns to exist in the sort's view
// (Section 7.1.1's "trivially satisfied" sorts rely on this): when either is
// missing, total = 0 and sigma = 1. These closed forms are property-tested
// against the generic enumerator.
//
// When computing sigma for an implicit sort (a subset of signatures), columns
// are those used by the member signatures — pass the subset; the full dataset
// is the subset of all signatures.

#ifndef RDFSR_EVAL_CLOSED_FORM_H_
#define RDFSR_EVAL_CLOSED_FORM_H_

#include <string>
#include <vector>

#include "eval/counts.h"
#include "eval/sort_stats.h"
#include "schema/signature_index.h"

namespace rdfsr::eval {

/// Aggregate statistics of a subset of signatures (an implicit sort).
struct SubsetStats {
  BigCount subjects = 0;                   ///< N: subjects in the subset.
  std::vector<BigCount> property_count;    ///< cnt_p per (global) property id.
  BigCount support_sum = 0;                ///< Σ_mu n_mu |supp(mu)|.
  int used_properties = 0;                 ///< |P*|: columns with cnt_p > 0.

  /// Computes the stats for the given signature ids of `index`.
  static SubsetStats Compute(const schema::SignatureIndex& index,
                             const std::vector<int>& sig_ids);

  /// cnt over subjects having ALL of the given properties.
  static BigCount CountHavingAll(const schema::SignatureIndex& index,
                                 const std::vector<int>& sig_ids,
                                 const std::vector<int>& props);
};

/// sigma_Cov counts for a subset.
SigmaCounts CovCounts(const schema::SignatureIndex& index,
                      const std::vector<int>& sig_ids);

/// sigma_Cov ignoring the listed properties.
SigmaCounts CovIgnoringCounts(const schema::SignatureIndex& index,
                              const std::vector<int>& sig_ids,
                              const std::vector<std::string>& ignored);

/// sigma_Sim counts for a subset.
SigmaCounts SimCounts(const schema::SignatureIndex& index,
                      const std::vector<int>& sig_ids);

/// sigma_Dep[p1, p2] counts for a subset (property names).
SigmaCounts DepCounts(const schema::SignatureIndex& index,
                      const std::vector<int>& sig_ids, const std::string& p1,
                      const std::string& p2);

/// sigma_SymDep[p1, p2] counts for a subset.
SigmaCounts SymDepCounts(const schema::SignatureIndex& index,
                         const std::vector<int>& sig_ids,
                         const std::string& p1, const std::string& p2);

/// Disjunctive-consequent Dep variant counts for a subset.
SigmaCounts DepDisjCounts(const schema::SignatureIndex& index,
                          const std::vector<int>& sig_ids,
                          const std::string& p1, const std::string& p2);

// --- Closed forms over incrementally maintained stats ------------------------
// Each *FromStats function extracts the same SigmaCounts its scratch
// counterpart above computes, but from a SortStats value in O(1) (O(|ignored|)
// for CovIgnoring) — no walk over member signatures. All arithmetic is the
// same exact integer arithmetic, so results are bit-identical to the scratch
// path for equal member sets.

/// sigma_Cov counts from stats: total = N * |P*|, favorable = Σ n_mu |supp|.
SigmaCounts CovCountsFromStats(const SortStats& stats);

/// sigma_Cov ignoring the properties of `ignored_mask` (word-packed over the
/// same index; typically precomputed once by the evaluator).
SigmaCounts CovIgnoringCountsFromStats(const SortStats& stats,
                                       const schema::PropertySet& ignored_mask);

/// sigma_Sim counts from stats: total = Σ_p cnt_p (N - 1) = support_sum (N-1),
/// favorable = Σ_p cnt_p (cnt_p - 1) = count_sq_sum - support_sum.
SigmaCounts SimCountsFromStats(const SortStats& stats);

/// sigma_Dep counts from the stats' tracked pair; zero counts (sigma = 1)
/// when either column is missing from the sort's view.
SigmaCounts DepCountsFromStats(const SortStats& stats);

/// sigma_SymDep counts from the stats' tracked pair.
SigmaCounts SymDepCountsFromStats(const SortStats& stats);

/// Disjunctive-consequent Dep variant counts from the stats' tracked pair.
SigmaCounts DepDisjCountsFromStats(const SortStats& stats);

// --- Closed forms over a candidate merge of two disjoint sorts ---------------
// The agglomerative heuristic probes O(n) candidate merges per round; these
// derive the union's counts straight from the two operands' aggregates —
// O(|P|/64) word work plus the shared-column cross term for Sim — without
// materializing (or copying) a merged SortStats. Identical integers to
// merging first and extracting after.

SigmaCounts CovCountsFromMergedStats(const SortStats& a, const SortStats& b);
SigmaCounts CovIgnoringCountsFromMergedStats(
    const SortStats& a, const SortStats& b,
    const schema::PropertySet& ignored_mask);
SigmaCounts SimCountsFromMergedStats(const SortStats& a, const SortStats& b);
SigmaCounts DepCountsFromMergedStats(const SortStats& a, const SortStats& b);
SigmaCounts SymDepCountsFromMergedStats(const SortStats& a,
                                        const SortStats& b);
SigmaCounts DepDisjCountsFromMergedStats(const SortStats& a,
                                         const SortStats& b);

/// Convenience: all signature ids of an index (the full dataset subset).
std::vector<int> AllSignatures(const schema::SignatureIndex& index);

}  // namespace rdfsr::eval

#endif  // RDFSR_EVAL_CLOSED_FORM_H_
