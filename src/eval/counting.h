// The count(phi, tau, M) function of Section 6, computed on the signature
// index.
//
// A rough assignment tau maps each rule variable to a (signature, property)
// pair instead of a concrete cell. count(phi, tau, M) is the number of
// concrete variable assignments compatible with tau that satisfy phi. Given
// tau, everything about phi is determined except subject identity:
//   * val(c) is sig(c)'s support bit at prop(c) (all subjects of a signature
//     set share their matrix row),
//   * prop-atoms are determined by tau's property components,
//   * subject-equality atoms depend only on which variables share subjects,
//   * subj(c)=u atoms depend on whether the class's subject is the constant u.
// So we enumerate set partitions of the variables into co-subject classes
// (feasible only when co-classed variables share a signature) and, when the
// formula mentions subject constants, the injective binding of classes to
// those constants; satisfied combinations contribute a product of falling
// factorials (distinct classes of the same signature must pick distinct
// subjects, avoiding the mentioned constants for "fresh" classes).

#ifndef RDFSR_EVAL_COUNTING_H_
#define RDFSR_EVAL_COUNTING_H_

#include <string>
#include <utility>
#include <vector>

#include "eval/counts.h"
#include "rules/ast.h"
#include "schema/signature_index.h"

namespace rdfsr::eval {

/// A rough variable assignment: per rule variable, a (signature id, property
/// id) pair into a SignatureIndex.
struct RoughAssignment {
  std::vector<std::pair<int, int>> cells;

  bool operator==(const RoughAssignment& o) const { return cells == o.cells; }
};

/// count(phi, tau, M): concrete assignments compatible with tau satisfying
/// phi. `variables` fixes the order of tau's components (variables[i] is
/// assigned tau.cells[i]); it must cover all variables of phi.
BigCount CountCompatible(const rules::FormulaPtr& phi,
                         const std::vector<std::string>& variables,
                         const RoughAssignment& tau,
                         const schema::SignatureIndex& index);

/// Computes count(phi1, tau, M) and count(phi1 ∧ phi2, tau, M) in a single
/// partition sweep (the totals and favorables of a rule at tau).
SigmaCounts CountRuleCases(const rules::FormulaPtr& phi1,
                           const rules::FormulaPtr& phi2,
                           const std::vector<std::string>& variables,
                           const RoughAssignment& tau,
                           const schema::SignatureIndex& index);

}  // namespace rdfsr::eval

#endif  // RDFSR_EVAL_COUNTING_H_
