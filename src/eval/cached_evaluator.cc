#include "eval/cached_evaluator.h"

#include <algorithm>
#include <cstring>

#include "util/check.h"

namespace rdfsr::eval {

CachedEvaluator::CachedEvaluator(const Evaluator* inner) : inner_(inner) {
  RDFSR_CHECK(inner != nullptr);
}

SigmaCounts CachedEvaluator::Counts(const std::vector<int>& sig_ids) const {
  std::vector<int> sorted = sig_ids;
  std::sort(sorted.begin(), sorted.end());
  std::string key;
  key.resize(sorted.size() * sizeof(int));
  if (!sorted.empty()) {
    std::memcpy(key.data(), sorted.data(), key.size());
  }
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    ++hits_;
    return it->second;
  }
  ++misses_;
  const SigmaCounts counts = inner_->Counts(sig_ids);
  cache_.emplace(std::move(key), counts);
  return counts;
}

}  // namespace rdfsr::eval
