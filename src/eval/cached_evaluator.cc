#include "eval/cached_evaluator.h"

#include "util/check.h"

namespace rdfsr::eval {

CachedEvaluator::CachedEvaluator(const Evaluator* inner) : inner_(inner) {
  RDFSR_CHECK(inner != nullptr);
}

SigmaCounts CachedEvaluator::Counts(const std::vector<int>& sig_ids) const {
  schema::PropertySet key(inner_->index().num_signatures());
  for (int id : sig_ids) {
    RDFSR_CHECK_GE(id, 0);
    key.Insert(static_cast<std::size_t>(id));
  }
  // Subsets are sets: a repeated id would alias a different subset's slot
  // (the inner evaluators count per occurrence, the key per member).
  RDFSR_CHECK_EQ(key.Popcount(), sig_ids.size())
      << "duplicate signature id in subset";
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    ++hits_;
    return it->second;
  }
  ++misses_;
  const SigmaCounts counts = inner_->Counts(sig_ids);
  cache_.emplace(std::move(key), counts);
  return counts;
}

}  // namespace rdfsr::eval
