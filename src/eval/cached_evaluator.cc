#include "eval/cached_evaluator.h"

#include "util/check.h"

namespace rdfsr::eval {

CachedEvaluator::CachedEvaluator(const Evaluator* inner) : inner_(inner) {
  RDFSR_CHECK(inner != nullptr);
}

SigmaCounts CachedEvaluator::Counts(const std::vector<int>& sig_ids) const {
  schema::PropertySet key(inner_->index().num_signatures());
  for (int id : sig_ids) {
    RDFSR_CHECK_GE(id, 0);
    key.Insert(static_cast<std::size_t>(id));
  }
  // Subsets are sets: a repeated id would alias a different subset's slot
  // (the inner evaluators count per occurrence, the key per member).
  RDFSR_CHECK_EQ(key.Popcount(), sig_ids.size())
      << "duplicate signature id in subset";
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    ++hits_;
    return it->second;
  }
  ++misses_;
  const SigmaCounts counts = inner_->Counts(sig_ids);
  cache_.emplace(std::move(key), counts);
  return counts;
}

SigmaCounts CachedEvaluator::CountsFromStats(const SortStats& stats) const {
  if (inner_->cheap_stats()) return inner_->CountsFromStats(stats);
  // Only the generic (non-cheap) path reaches the memo, so materializing the
  // word-packed key from the hybrid member set is off the closed-form hot
  // paths.
  schema::PropertySet key = stats.members().ToPropertySet();
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    ++hits_;
    return it->second;
  }
  ++misses_;
  const SigmaCounts counts = inner_->CountsFromStats(stats);
  cache_.emplace(std::move(key), counts);
  return counts;
}

SigmaCounts CachedEvaluator::CountsFromMergedStats(const SortStats& a,
                                                   const SortStats& b) const {
  if (inner_->cheap_stats()) return inner_->CountsFromMergedStats(a, b);
  schema::PropertySet key = a.members().ToPropertySet();
  b.members().ForEach([&key](int id) { key.Insert(static_cast<std::size_t>(id)); });
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    ++hits_;
    return it->second;
  }
  ++misses_;
  const SigmaCounts counts = inner_->CountsFromMergedStats(a, b);
  cache_.emplace(std::move(key), counts);
  return counts;
}

}  // namespace rdfsr::eval
