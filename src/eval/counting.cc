#include "eval/counting.h"

#include <algorithm>

#include "eval/partitions.h"
#include "util/check.h"

namespace rdfsr::eval {

namespace {

std::string BigToString(BigCount value) { return BigCountToString(value); }

/// Context for evaluating a formula under a rough assignment plus a subject
/// partition plus a class-to-constant binding.
struct AbstractContext {
  const std::vector<std::string>* variables = nullptr;
  const RoughAssignment* tau = nullptr;
  const std::vector<int>* class_of = nullptr;        // per variable index
  const std::vector<int>* class_constant = nullptr;  // per class; -1 = fresh
  const std::vector<std::string>* constants = nullptr;
  const schema::SignatureIndex* index = nullptr;
  // Per variable, the word-packed support of its assigned signature
  // (prefetched once per enumeration; val-atoms probe these words directly).
  const std::vector<const schema::PropertySet*>* var_support = nullptr;

  int VarIndex(const std::string& v) const {
    auto it = std::find(variables->begin(), variables->end(), v);
    RDFSR_CHECK(it != variables->end()) << "unbound variable '" << v << "'";
    return static_cast<int>(it - variables->begin());
  }
};

bool SatisfiesAbstract(const rules::FormulaPtr& phi,
                       const AbstractContext& ctx) {
  using rules::FormulaKind;
  RDFSR_CHECK(phi != nullptr);
  switch (phi->kind) {
    case FormulaKind::kValEqConst: {
      const int v = ctx.VarIndex(phi->var1);
      const int prop = ctx.tau->cells[v].second;
      const bool bit = (*ctx.var_support)[v]->Contains(prop);
      return bit == (phi->value == 1);
    }
    case FormulaKind::kSubjEqConst: {
      const int v = ctx.VarIndex(phi->var1);
      const int cls = (*ctx.class_of)[v];
      const int bound = (*ctx.class_constant)[cls];
      return bound >= 0 && (*ctx.constants)[bound] == phi->constant;
    }
    case FormulaKind::kPropEqConst: {
      const int v = ctx.VarIndex(phi->var1);
      const int prop = ctx.tau->cells[v].second;
      return ctx.index->property_name(prop) == phi->constant;
    }
    case FormulaKind::kVarEq: {
      const int a = ctx.VarIndex(phi->var1);
      const int b = ctx.VarIndex(phi->var2);
      return (*ctx.class_of)[a] == (*ctx.class_of)[b] &&
             ctx.tau->cells[a].second == ctx.tau->cells[b].second;
    }
    case FormulaKind::kValEqVal: {
      const int a = ctx.VarIndex(phi->var1);
      const int b = ctx.VarIndex(phi->var2);
      const int pa = ctx.tau->cells[a].second;
      const int pb = ctx.tau->cells[b].second;
      return (*ctx.var_support)[a]->Contains(pa) ==
             (*ctx.var_support)[b]->Contains(pb);
    }
    case FormulaKind::kSubjEqSubj: {
      const int a = ctx.VarIndex(phi->var1);
      const int b = ctx.VarIndex(phi->var2);
      return (*ctx.class_of)[a] == (*ctx.class_of)[b];
    }
    case FormulaKind::kPropEqProp: {
      const int a = ctx.VarIndex(phi->var1);
      const int b = ctx.VarIndex(phi->var2);
      return ctx.tau->cells[a].second == ctx.tau->cells[b].second;
    }
    case FormulaKind::kNot:
      return !SatisfiesAbstract(phi->left, ctx);
    case FormulaKind::kAnd:
      return SatisfiesAbstract(phi->left, ctx) &&
             SatisfiesAbstract(phi->right, ctx);
    case FormulaKind::kOr:
      return SatisfiesAbstract(phi->left, ctx) ||
             SatisfiesAbstract(phi->right, ctx);
  }
  return false;
}

/// Number of concrete subject choices for a given partition + constant
/// binding: constants contribute factor 1 (their subject is fixed); fresh
/// classes of signature mu choose distinct subjects from the signature set,
/// avoiding the formula's mentioned constants.
BigCount CountSubjectChoices(const std::vector<int>& class_of,
                             const std::vector<int>& class_constant,
                             const std::vector<int>& class_sig,
                             const std::vector<std::string>& constants,
                             const schema::SignatureIndex& index) {
  const int num_classes =
      class_of.empty() ? 0 : *std::max_element(class_of.begin(),
                                               class_of.end()) + 1;
  // Per signature, how many fresh classes draw from it.
  BigCount ways = 1;
  std::vector<std::pair<int, int>> fresh_per_sig;  // (sig, count)
  for (int cls = 0; cls < num_classes; ++cls) {
    if (class_constant[cls] >= 0) continue;  // bound to a constant: 1 way
    const int sig = class_sig[cls];
    bool found = false;
    for (auto& [s, c] : fresh_per_sig) {
      if (s == sig) {
        ++c;
        found = true;
        break;
      }
    }
    if (!found) fresh_per_sig.emplace_back(sig, 1);
  }
  for (const auto& [sig, fresh] : fresh_per_sig) {
    const std::int64_t named = index.CountNamedSubjects(
        constants, static_cast<std::size_t>(sig));
    BigCount base = index.signature(sig).count - named;
    for (int j = 0; j < fresh; ++j) {
      if (base - j <= 0) return 0;
      ways *= (base - j);
    }
  }
  return ways;
}

/// Shared enumeration core: walks partitions (and constant bindings) of the
/// variables and accumulates the subject-choice counts of combinations where
/// phi1 holds (total) and where additionally phi2 holds (favorable). phi2 may
/// be null (CountCompatible).
SigmaCounts EnumeratePartitions(const rules::FormulaPtr& phi1,
                                const rules::FormulaPtr& phi2,
                                const std::vector<std::string>& variables,
                                const RoughAssignment& tau,
                                const schema::SignatureIndex& index) {
  RDFSR_CHECK_EQ(variables.size(), tau.cells.size());
  std::vector<const schema::PropertySet*> var_support;
  var_support.reserve(tau.cells.size());
  for (const auto& [sig, prop] : tau.cells) {
    RDFSR_CHECK_GE(sig, 0);
    RDFSR_CHECK_LT(static_cast<std::size_t>(sig), index.num_signatures());
    RDFSR_CHECK_GE(prop, 0);
    RDFSR_CHECK_LT(static_cast<std::size_t>(prop), index.num_properties());
    var_support.push_back(&index.signature(sig).props());
  }

  std::vector<std::string> constants;
  rules::CollectSubjectConstants(phi1, &constants);
  if (phi2 != nullptr) rules::CollectSubjectConstants(phi2, &constants);
  std::sort(constants.begin(), constants.end());
  constants.erase(std::unique(constants.begin(), constants.end()),
                  constants.end());

  const int n = static_cast<int>(variables.size());
  SigmaCounts result;

  ForEachSetPartition(n, [&](const std::vector<int>& class_of) {
    // Feasibility: co-classed variables must share a signature.
    const int num_classes =
        n == 0 ? 0 : *std::max_element(class_of.begin(), class_of.end()) + 1;
    std::vector<int> class_sig(num_classes, -1);
    for (int v = 0; v < n; ++v) {
      const int sig = tau.cells[v].first;
      int& slot = class_sig[class_of[v]];
      if (slot == -1) {
        slot = sig;
      } else if (slot != sig) {
        return true;  // infeasible partition; keep enumerating
      }
    }

    // Enumerate injective bindings of classes to mentioned constants (or
    // fresh). Without subject constants there is exactly one binding.
    std::vector<int> class_constant(num_classes, -1);
    auto evaluate_binding = [&] {
      AbstractContext ctx;
      ctx.variables = &variables;
      ctx.tau = &tau;
      ctx.class_of = &class_of;
      ctx.class_constant = &class_constant;
      ctx.constants = &constants;
      ctx.index = &index;
      ctx.var_support = &var_support;
      if (!SatisfiesAbstract(phi1, ctx)) return;
      const BigCount ways = CountSubjectChoices(class_of, class_constant,
                                                class_sig, constants, index);
      if (ways == 0) return;
      result.total += ways;
      if (phi2 != nullptr && SatisfiesAbstract(phi2, ctx)) {
        result.favorable += ways;
      }
    };

    if (constants.empty()) {
      evaluate_binding();
      return true;
    }

    // DFS over per-class choices: fresh (-1) or one of the constants whose
    // dataset signature matches the class signature, injectively.
    std::vector<bool> constant_used(constants.size(), false);
    std::function<void(int)> assign = [&](int cls) {
      if (cls == num_classes) {
        evaluate_binding();
        return;
      }
      class_constant[cls] = -1;
      assign(cls + 1);
      for (std::size_t k = 0; k < constants.size(); ++k) {
        if (constant_used[k]) continue;
        const int const_sig = index.FindSubjectSignature(constants[k]);
        if (const_sig != class_sig[cls]) continue;
        constant_used[k] = true;
        class_constant[cls] = static_cast<int>(k);
        assign(cls + 1);
        class_constant[cls] = -1;
        constant_used[k] = false;
      }
    };
    assign(0);
    return true;
  });

  RDFSR_CHECK_GE(result.total, result.favorable)
      << "favorable " << BigToString(result.favorable) << " exceeds total "
      << BigToString(result.total);
  return result;
}

}  // namespace

BigCount CountCompatible(const rules::FormulaPtr& phi,
                         const std::vector<std::string>& variables,
                         const RoughAssignment& tau,
                         const schema::SignatureIndex& index) {
  return EnumeratePartitions(phi, nullptr, variables, tau, index).total;
}

SigmaCounts CountRuleCases(const rules::FormulaPtr& phi1,
                           const rules::FormulaPtr& phi2,
                           const std::vector<std::string>& variables,
                           const RoughAssignment& tau,
                           const schema::SignatureIndex& index) {
  RDFSR_CHECK(phi2 != nullptr);
  return EnumeratePartitions(phi1, phi2, variables, tau, index);
}

}  // namespace rdfsr::eval
