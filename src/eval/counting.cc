#include "eval/counting.h"

#include <algorithm>
#include <unordered_map>

#include "eval/partitions.h"
#include "util/check.h"

namespace rdfsr::eval {

namespace {

std::string BigToString(BigCount value) { return BigCountToString(value); }

/// Atom -> resolved variable indices, built once per enumeration. The
/// abstract evaluator runs over the same formula tree for every partition and
/// binding, so resolving var1/var2 with a std::find over the variable list on
/// every visit was pure rework; a pointer-keyed lookup replaces it.
class VarIndexCache {
 public:
  void Build(const rules::FormulaPtr& phi,
             const std::vector<std::string>& variables) {
    if (phi == nullptr) return;
    using rules::FormulaKind;
    switch (phi->kind) {
      case FormulaKind::kNot:
        Build(phi->left, variables);
        return;
      case FormulaKind::kAnd:
      case FormulaKind::kOr:
        Build(phi->left, variables);
        Build(phi->right, variables);
        return;
      case FormulaKind::kVarEq:
      case FormulaKind::kValEqVal:
      case FormulaKind::kSubjEqSubj:
      case FormulaKind::kPropEqProp:
        atoms_.emplace(phi.get(), std::pair<int, int>{
                                      Resolve(phi->var1, variables),
                                      Resolve(phi->var2, variables)});
        return;
      case FormulaKind::kValEqConst:
      case FormulaKind::kSubjEqConst:
      case FormulaKind::kPropEqConst:
        atoms_.emplace(phi.get(),
                       std::pair<int, int>{Resolve(phi->var1, variables), -1});
        return;
    }
  }

  std::pair<int, int> Vars(const rules::Formula* atom) const {
    const auto it = atoms_.find(atom);
    RDFSR_CHECK(it != atoms_.end()) << "unresolved atom";
    return it->second;
  }

 private:
  static int Resolve(const std::string& v,
                     const std::vector<std::string>& variables) {
    auto it = std::find(variables.begin(), variables.end(), v);
    RDFSR_CHECK(it != variables.end()) << "unbound variable '" << v << "'";
    return static_cast<int>(it - variables.begin());
  }

  std::unordered_map<const rules::Formula*, std::pair<int, int>> atoms_;
};

/// Context for evaluating a formula under a rough assignment plus a subject
/// partition plus a class-to-constant binding.
struct AbstractContext {
  const RoughAssignment* tau = nullptr;
  const std::vector<int>* class_of = nullptr;        // per variable index
  const std::vector<int>* class_constant = nullptr;  // per class; -1 = fresh
  const std::vector<std::string>* constants = nullptr;
  const schema::SignatureIndex* index = nullptr;
  // Per variable, the word-packed support of its assigned signature
  // (prefetched once per enumeration; val-atoms probe these words directly).
  const std::vector<const schema::PropertySet*>* var_support = nullptr;
  // Atom variables resolved once per enumeration.
  const VarIndexCache* vars = nullptr;
};

bool SatisfiesAbstract(const rules::FormulaPtr& phi,
                       const AbstractContext& ctx) {
  using rules::FormulaKind;
  RDFSR_CHECK(phi != nullptr);
  switch (phi->kind) {
    case FormulaKind::kValEqConst: {
      const int v = ctx.vars->Vars(phi.get()).first;
      const int prop = ctx.tau->cells[v].second;
      const bool bit = (*ctx.var_support)[v]->Contains(prop);
      return bit == (phi->value == 1);
    }
    case FormulaKind::kSubjEqConst: {
      const int v = ctx.vars->Vars(phi.get()).first;
      const int cls = (*ctx.class_of)[v];
      const int bound = (*ctx.class_constant)[cls];
      return bound >= 0 && (*ctx.constants)[bound] == phi->constant;
    }
    case FormulaKind::kPropEqConst: {
      const int v = ctx.vars->Vars(phi.get()).first;
      const int prop = ctx.tau->cells[v].second;
      return ctx.index->property_name(prop) == phi->constant;
    }
    case FormulaKind::kVarEq: {
      const auto [a, b] = ctx.vars->Vars(phi.get());
      return (*ctx.class_of)[a] == (*ctx.class_of)[b] &&
             ctx.tau->cells[a].second == ctx.tau->cells[b].second;
    }
    case FormulaKind::kValEqVal: {
      const auto [a, b] = ctx.vars->Vars(phi.get());
      const int pa = ctx.tau->cells[a].second;
      const int pb = ctx.tau->cells[b].second;
      return (*ctx.var_support)[a]->Contains(pa) ==
             (*ctx.var_support)[b]->Contains(pb);
    }
    case FormulaKind::kSubjEqSubj: {
      const auto [a, b] = ctx.vars->Vars(phi.get());
      return (*ctx.class_of)[a] == (*ctx.class_of)[b];
    }
    case FormulaKind::kPropEqProp: {
      const auto [a, b] = ctx.vars->Vars(phi.get());
      return ctx.tau->cells[a].second == ctx.tau->cells[b].second;
    }
    case FormulaKind::kNot:
      return !SatisfiesAbstract(phi->left, ctx);
    case FormulaKind::kAnd:
      return SatisfiesAbstract(phi->left, ctx) &&
             SatisfiesAbstract(phi->right, ctx);
    case FormulaKind::kOr:
      return SatisfiesAbstract(phi->left, ctx) ||
             SatisfiesAbstract(phi->right, ctx);
  }
  return false;
}

/// Number of concrete subject choices for a given partition + constant
/// binding: constants contribute factor 1 (their subject is fixed); fresh
/// classes of signature mu choose distinct subjects from the signature set,
/// avoiding the formula's mentioned constants. `fresh_count` is a caller-
/// provided per-signature counter array (zeroed on entry, re-zeroed on exit)
/// and `touched` its dirty list — direct addressing instead of the linear
/// (sig, count) pair scan this used to do per class.
BigCount CountSubjectChoices(int num_classes,
                             const std::vector<int>& class_constant,
                             const std::vector<int>& class_sig,
                             const std::vector<std::string>& constants,
                             const schema::SignatureIndex& index,
                             std::vector<int>* fresh_count,
                             std::vector<int>* touched) {
  touched->clear();
  for (int cls = 0; cls < num_classes; ++cls) {
    if (class_constant[cls] >= 0) continue;  // bound to a constant: 1 way
    const int sig = class_sig[cls];
    if ((*fresh_count)[sig]++ == 0) touched->push_back(sig);
  }
  BigCount ways = 1;
  bool exhausted = false;
  for (const int sig : *touched) {
    const int fresh = (*fresh_count)[sig];
    (*fresh_count)[sig] = 0;  // leave the scratch clean for the next binding
    if (exhausted) continue;
    const std::int64_t named = index.CountNamedSubjects(
        constants, static_cast<std::size_t>(sig));
    const BigCount base = index.signature(sig).count - named;
    for (int j = 0; j < fresh; ++j) {
      if (base - j <= 0) {
        exhausted = true;
        break;
      }
      ways *= (base - j);
    }
  }
  return exhausted ? 0 : ways;
}

/// Shared enumeration core: walks partitions (and constant bindings) of the
/// variables and accumulates the subject-choice counts of combinations where
/// phi1 holds (total) and where additionally phi2 holds (favorable). phi2 may
/// be null (CountCompatible).
SigmaCounts EnumeratePartitions(const rules::FormulaPtr& phi1,
                                const rules::FormulaPtr& phi2,
                                const std::vector<std::string>& variables,
                                const RoughAssignment& tau,
                                const schema::SignatureIndex& index) {
  RDFSR_CHECK_EQ(variables.size(), tau.cells.size());
  std::vector<const schema::PropertySet*> var_support;
  var_support.reserve(tau.cells.size());
  for (const auto& [sig, prop] : tau.cells) {
    RDFSR_CHECK_GE(sig, 0);
    RDFSR_CHECK_LT(static_cast<std::size_t>(sig), index.num_signatures());
    RDFSR_CHECK_GE(prop, 0);
    RDFSR_CHECK_LT(static_cast<std::size_t>(prop), index.num_properties());
    var_support.push_back(&index.signature(sig).props());
  }

  std::vector<std::string> constants;
  rules::CollectSubjectConstants(phi1, &constants);
  if (phi2 != nullptr) rules::CollectSubjectConstants(phi2, &constants);
  std::sort(constants.begin(), constants.end());
  constants.erase(std::unique(constants.begin(), constants.end()),
                  constants.end());

  VarIndexCache vars;
  vars.Build(phi1, variables);
  if (phi2 != nullptr) vars.Build(phi2, variables);

  // Scratch for CountSubjectChoices, allocated once per enumeration.
  std::vector<int> fresh_count(index.num_signatures(), 0);
  std::vector<int> touched;
  touched.reserve(variables.size());

  const int n = static_cast<int>(variables.size());
  SigmaCounts result;

  ForEachSetPartition(n, [&](const std::vector<int>& class_of) {
    // Feasibility: co-classed variables must share a signature.
    const int num_classes =
        n == 0 ? 0 : *std::max_element(class_of.begin(), class_of.end()) + 1;
    std::vector<int> class_sig(num_classes, -1);
    for (int v = 0; v < n; ++v) {
      const int sig = tau.cells[v].first;
      int& slot = class_sig[class_of[v]];
      if (slot == -1) {
        slot = sig;
      } else if (slot != sig) {
        return true;  // infeasible partition; keep enumerating
      }
    }

    // Enumerate injective bindings of classes to mentioned constants (or
    // fresh). Without subject constants there is exactly one binding.
    std::vector<int> class_constant(num_classes, -1);
    auto evaluate_binding = [&] {
      AbstractContext ctx;
      ctx.tau = &tau;
      ctx.class_of = &class_of;
      ctx.class_constant = &class_constant;
      ctx.constants = &constants;
      ctx.index = &index;
      ctx.var_support = &var_support;
      ctx.vars = &vars;
      if (!SatisfiesAbstract(phi1, ctx)) return;
      const BigCount ways =
          CountSubjectChoices(num_classes, class_constant, class_sig,
                              constants, index, &fresh_count, &touched);
      if (ways == 0) return;
      result.total += ways;
      if (phi2 != nullptr && SatisfiesAbstract(phi2, ctx)) {
        result.favorable += ways;
      }
    };

    if (constants.empty()) {
      evaluate_binding();
      return true;
    }

    // DFS over per-class choices: fresh (-1) or one of the constants whose
    // dataset signature matches the class signature, injectively.
    std::vector<bool> constant_used(constants.size(), false);
    std::function<void(int)> assign = [&](int cls) {
      if (cls == num_classes) {
        evaluate_binding();
        return;
      }
      class_constant[cls] = -1;
      assign(cls + 1);
      for (std::size_t k = 0; k < constants.size(); ++k) {
        if (constant_used[k]) continue;
        const int const_sig = index.FindSubjectSignature(constants[k]);
        if (const_sig != class_sig[cls]) continue;
        constant_used[k] = true;
        class_constant[cls] = static_cast<int>(k);
        assign(cls + 1);
        class_constant[cls] = -1;
        constant_used[k] = false;
      }
    };
    assign(0);
    return true;
  });

  RDFSR_CHECK_GE(result.total, result.favorable)
      << "favorable " << BigToString(result.favorable) << " exceeds total "
      << BigToString(result.total);
  return result;
}

}  // namespace

BigCount CountCompatible(const rules::FormulaPtr& phi,
                         const std::vector<std::string>& variables,
                         const RoughAssignment& tau,
                         const schema::SignatureIndex& index) {
  return EnumeratePartitions(phi, nullptr, variables, tau, index).total;
}

SigmaCounts CountRuleCases(const rules::FormulaPtr& phi1,
                           const rules::FormulaPtr& phi2,
                           const std::vector<std::string>& variables,
                           const RoughAssignment& tau,
                           const schema::SignatureIndex& index) {
  RDFSR_CHECK(phi2 != nullptr);
  return EnumeratePartitions(phi1, phi2, variables, tau, index);
}

}  // namespace rdfsr::eval
