// Pruned enumeration of rough assignments (tau) and rule evaluation on the
// signature index.
//
// sigma_r(M) = (Σ_tau count(phi1 ∧ phi2, tau, M)) / (Σ_tau count(phi1, tau, M))
// where tau ranges over (Λ(D) x P(D))^n. The enumerator walks that space
// variable by variable, pruning any prefix under which the antecedent is
// already determined false (three-valued evaluation): e.g. for sigma_Sim the
// val(c1)=1 and prop(c1)=prop(c2) conjuncts collapse the quadratic candidate
// space to pairs of signatures sharing a property. The surviving taus with
// non-zero totals are exactly the T-variable candidates of the ILP encoding
// (Section 6); the builder consumes them via EnumerateTauCounts.

#ifndef RDFSR_EVAL_ENUMERATOR_H_
#define RDFSR_EVAL_ENUMERATOR_H_

#include <cstdint>
#include <vector>

#include "eval/counting.h"
#include "eval/counts.h"
#include "rules/ast.h"
#include "schema/signature_index.h"

namespace rdfsr::eval {

/// Three-valued truth for partially assigned rough assignments.
enum class Tri { kFalse, kTrue, kUnknown };

/// Evaluates phi under a partial rough assignment (cells with sig = -1 are
/// unassigned). Subject-equality atoms between co-signature variables stay
/// kUnknown (they depend on concrete subject choices).
Tri PartialEvaluate(const rules::FormulaPtr& phi,
                    const std::vector<std::string>& variables,
                    const RoughAssignment& partial,
                    const schema::SignatureIndex& index);

/// Counts for one rough assignment with a non-zero number of total cases.
struct TauCount {
  RoughAssignment tau;
  std::int64_t total = 0;      ///< count(phi1, tau, M)
  std::int64_t favorable = 0;  ///< count(phi1 ∧ phi2, tau, M)
};

/// Enumerates every tau with count(phi1, tau, M) > 0, with counts.
/// Deterministic order (lexicographic in (sig, prop) per variable).
std::vector<TauCount> EnumerateTauCounts(const rules::Rule& rule,
                                         const schema::SignatureIndex& index);

/// sigma_r over the whole index: sums EnumerateTauCounts without
/// materializing the vector.
SigmaCounts EvaluateRuleOnIndex(const rules::Rule& rule,
                                const schema::SignatureIndex& index);

}  // namespace rdfsr::eval

#endif  // RDFSR_EVAL_ENUMERATOR_H_
