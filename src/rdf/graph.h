// RDF graphs: finite sets of triples over dictionary-encoded terms.
//
// Implements the schema-oriented representation of Section 2.1:
//  * S(D), P(D) — subjects and properties mentioned in D,
//  * "s has property p in D",
//  * the sort slice D_t = { (s,p,o) in D | (s, type, t) in D }.

#ifndef RDFSR_RDF_GRAPH_H_
#define RDFSR_RDF_GRAPH_H_

#include <memory>
#include <unordered_set>
#include <vector>

#include "rdf/dictionary.h"
#include "rdf/term.h"
#include "util/deadline.h"
#include "util/status.h"

namespace rdfsr::util {
class ThreadPool;
}  // namespace rdfsr::util

namespace rdfsr::rdf {

/// A dictionary-encoded RDF triple (subject, predicate, object).
struct Triple {
  TermId subject = kInvalidTermId;
  TermId predicate = kInvalidTermId;
  TermId object = kInvalidTermId;

  bool operator==(const Triple& o) const {
    return subject == o.subject && predicate == o.predicate &&
           object == o.object;
  }
};

/// Hash functor for Triple (set semantics of RDF graphs).
///
/// FNV-1a over the three ids plus a murmur-style finalizer. Each component is
/// mixed (xor-then-multiply) starting from the offset basis, so the subject
/// participates in the avalanche like the other fields — the previous version
/// seeded the state with the raw subject and XORed the object in last, which
/// left the object's bits unmixed (flipping one object bit flipped exactly one
/// hash bit) and the high hash bits nearly constant on small dictionaries.
/// rdf_test.cc has distribution regression tests for both properties.
struct TripleHash {
  std::size_t operator()(const Triple& t) const {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    h = (h ^ t.subject) * 0x100000001b3ULL;
    h = (h ^ t.predicate) * 0x100000001b3ULL;
    h = (h ^ t.object) * 0x100000001b3ULL;
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    return static_cast<std::size_t>(h);
  }
};

/// A finite set of RDF triples sharing a Dictionary. Insertion order of the
/// first occurrence of each triple/subject/property is preserved, which keeps
/// downstream views (matrices, signature indexes) deterministic.
class Graph {
 public:
  /// Creates a graph with a fresh dictionary.
  Graph() : dict_(std::make_shared<Dictionary>()) {}

  /// Creates a graph sharing an existing dictionary (used by slices).
  explicit Graph(std::shared_ptr<Dictionary> dict) : dict_(std::move(dict)) {}

  Dictionary& dict() { return *dict_; }
  const Dictionary& dict() const { return *dict_; }
  const std::shared_ptr<Dictionary>& dict_ptr() const { return dict_; }

  /// Pre-sizes the triple store, dedup index, and dictionary for a bulk load
  /// of ~`triples` triples mentioning ~`terms` distinct terms. Purely an
  /// optimization (growth is amortized anyway); the parser calls this with a
  /// newline-count estimate before streaming a file in.
  void Reserve(std::size_t triples, std::size_t terms);

  /// Adds a triple by id; duplicate triples are ignored (set semantics).
  /// Returns true if the triple was newly inserted.
  bool Add(Triple t);

  /// Adds a triple of terms, interning them first.
  bool Add(const Term& s, const Term& p, const Term& o);

  /// Adds a triple of viewed terms — the parser hot path. Interning goes
  /// through the dictionary's heterogeneous lookup, so already-seen terms
  /// cost zero allocations.
  bool Add(const TermView& s, const TermView& p, const TermView& o);

  /// Convenience: adds (<s>, <p>, <o>) with all-IRI terms.
  bool AddIri(const std::string& s, const std::string& p, const std::string& o);

  /// Convenience: adds (<s>, <p>, "literal").
  bool AddLiteral(const std::string& s, const std::string& p,
                  const std::string& literal);

  /// Number of triples |D|.
  std::size_t size() const { return triples_.size(); }
  bool empty() const { return triples_.empty(); }

  /// All triples in first-insertion order.
  const std::vector<Triple>& triples() const { return triples_; }

  /// S(D): distinct subjects in first-appearance order.
  const std::vector<TermId>& subjects() const { return subjects_; }

  /// P(D): distinct properties in first-appearance order.
  const std::vector<TermId>& properties() const { return properties_; }

  /// Whether s has property p in D (some (s, p, o) in D). Backed by a lazily
  /// built (s, p) hash set — query paths use it, the ingestion hot path
  /// never pays for it. Like TypePostings(), the first call mutates a
  /// mutable cache: warm it before sharing const references across threads.
  bool HasProperty(TermId s, TermId p) const;

  /// D_t: the subgraph of all triples whose subject is declared of sort t via
  /// (s, type, t). The slice shares this graph's dictionary. `include_type`
  /// controls whether the (s, type, t) triples themselves are copied (the
  /// paper's datasets exclude the type property from the analysis).
  Graph SortSlice(const std::string& type_iri, bool include_type = false) const;

  /// All sort constants t appearing in (s, type, t) triples.
  std::vector<TermId> SortConstants() const;

  /// Bulk-merges the first `count` parsed shards into this graph on `pool` —
  /// the parallel equivalent of interning each shard's terms into dict() in
  /// shard order and Add()ing each shard's triples in shard order. Requires
  /// this graph (and its dictionary) to be empty; the sharded parser falls
  /// back to the serial merge loop when appending to a non-empty graph.
  ///
  /// The result is bit-identical to the serial merge: term ids and the
  /// triple / subject / property orders are first-occurrence orders of the
  /// concatenated shard streams, derived by per-shard prefix sums rather
  /// than by any scheduling order (hash-table slot layouts are the only
  /// thing the thread interleaving can vary, and those are unobservable).
  /// Consumes the shards (terms are moved out of their dictionaries).
  ///
  /// Cancellation is polled between the early phases, before this graph is
  /// mutated: a cancelled merge returns kCancelled / kDeadlineExceeded with
  /// the destination graph still empty. On an injected fault (failpoint
  /// build) the destination's contents are unspecified but safe to destroy;
  /// callers discard the graph on any non-OK return.
  Status MergeShards(std::vector<Graph>* shards, std::size_t count,
                     util::ThreadPool* pool,
                     const util::CancellationToken& cancel = {});

  /// Positions (indices into triples()) of all (s, rdf:type, t) triples, in
  /// insertion order. Built lazily on first use and extended incrementally as
  /// triples are added, so repeated sort slicing / sort enumeration never
  /// rescans the full triple vector.
  ///
  /// Thread-safety: the build mutates a mutable cache, so call this once
  /// while the graph is still exclusively owned if const references will be
  /// shared across threads afterwards (api::Dataset::FromGraph does exactly
  /// that); once built for the current triple count, concurrent const calls
  /// are read-only.
  const std::vector<std::uint32_t>& TypePostings() const;

  /// Full structural validation (fatal on violation): every triple's ids are
  /// interned, the triple set is duplicate-free, the dedup slot index covers
  /// exactly the stored triples, and subjects()/properties() are the
  /// first-appearance orders of triples(). O(|D|); audit builds run it after
  /// the parallel shard merge (the one code path where thread interleaving
  /// could corrupt the flat structures without failing a lookup).
  void CheckInvariants() const;

 private:
  /// Flat open-addressing dedup index over triples_ (set semantics without a
  /// node allocation per insert). Returns true and records the slot when the
  /// triple is new; false when already present.
  bool DedupInsert(const Triple& t);
  /// Rebuilds the slot array at `slots` entries (power of two, > 2x triples).
  void DedupGrow(std::size_t slots);

  /// Direct-address first-sighting bitmap over dense term ids; returns true
  /// on the first call for `id`.
  static bool MarkSeen(std::vector<std::uint8_t>* seen, TermId id);

  std::shared_ptr<Dictionary> dict_;
  std::vector<Triple> triples_;
  // Linear-probe slots holding indices into triples_; kEmptySlot when free.
  // Power-of-two size, load factor kept under 1/2.
  std::vector<std::uint32_t> dedup_slots_;
  std::vector<TermId> subjects_;
  std::vector<TermId> properties_;
  std::vector<std::uint8_t> subject_seen_;   // TermId -> appeared as subject
  std::vector<std::uint8_t> property_seen_;  // TermId -> appeared as predicate
  // Lazy (s,p) membership set backing HasProperty; extended on demand from
  // triples_ [0, sp_scanned_).
  mutable std::unordered_set<std::uint64_t> subject_property_;
  mutable std::size_t sp_scanned_ = 0;
  // Lazy rdf:type posting list: positions of type triples among triples_
  // [0, type_scanned_). Extended, never rebuilt — sound because a triple can
  // only reference rdf:type if it was already interned at Add time.
  mutable std::vector<std::uint32_t> type_postings_;
  mutable std::size_t type_scanned_ = 0;
};

}  // namespace rdfsr::rdf

#endif  // RDFSR_RDF_GRAPH_H_
