// N-Triples (RDF 1.1 line-based syntax) reader and writer.
//
// Supports IRIs, blank nodes, plain / language-tagged / datatyped literals,
// string escapes (\t \b \n \r \f \" \' \\ \uXXXX \UXXXXXXXX), comments, and
// blank lines. Errors report 1-based line numbers.
//
// The reader is streaming and zero-copy: terms are produced as TermViews
// pointing into the input buffer (escaped forms decode into reused scratch
// buffers), and files are read once into a single allocation. Parsing can be
// sharded across threads (ParseOptions::threads); chunks split at line
// boundaries and shard dictionaries merge by id-remap in chunk order — itself
// parallel when the destination graph starts empty (Graph::MergeShards) — so
// the resulting graph is bit-identical to a sequential parse for any thread
// count.

#ifndef RDFSR_RDF_NTRIPLES_H_
#define RDFSR_RDF_NTRIPLES_H_

#include <cstddef>
#include <functional>
#include <iosfwd>
#include <string>
#include <string_view>

#include <vector>

#include "rdf/graph.h"
#include "util/deadline.h"
#include "util/status.h"

namespace rdfsr::util {
class ThreadPool;
}  // namespace rdfsr::util

namespace rdfsr::rdf {

/// One skipped input line from an error-tolerant parse: the 1-based global
/// line number (correct in sharded mode too) and the parser's message.
struct ParseDiagnostic {
  std::size_t line = 0;
  std::string message;
};

/// Knobs for the N-Triples reader.
struct ParseOptions {
  /// Number of parser threads. 1 parses sequentially; values < 1 mean one
  /// thread per hardware thread. Sharded parsing produces the same graph
  /// (same term ids, same triple order) as sequential, so this is a pure
  /// throughput knob. The count actually used is EffectiveParseThreads().
  int threads = 1;
  /// Inputs shorter than threads * min_chunk_bytes parse on fewer threads
  /// (each chunk keeps at least this many bytes) — thread startup would
  /// dominate. Tests lower this to force sharding on tiny inputs.
  std::size_t min_chunk_bytes = 1 << 20;
  /// Optional borrowed worker pool for the sharded path (parse + merge).
  /// When null, the parser spins up a temporary pool of the effective
  /// thread count. Callers that also parallelize downstream stages (the
  /// api::Dataset load chain) pass one pool through the whole pipeline.
  util::ThreadPool* pool = nullptr;
  /// Error tolerance: 0 (default) fails fast on the first malformed line.
  /// A positive value switches to skip-and-collect mode — up to this many
  /// malformed lines are skipped (recorded in `diagnostics` when set) and
  /// parsing succeeds with the graph bit-identical to parsing a pre-cleaned
  /// input; exceeding the budget aborts with kParseError. In sharded mode
  /// diagnostics carry global line numbers and arrive in line order.
  std::size_t max_errors = 0;
  /// When non-null and max_errors > 0, receives one entry per skipped line
  /// (appended; bounded by max_errors even on over-budget failure).
  std::vector<ParseDiagnostic>* diagnostics = nullptr;
  /// Cooperative cancellation: the parser polls this token every few
  /// thousand lines and unwinds with kCancelled / kDeadlineExceeded. The
  /// graph is always left in a valid state: the sequential path keeps the
  /// prefix parsed so far, the sharded path may leave it empty (the merge
  /// refuses to start once the token has tripped).
  util::CancellationToken cancel;
};

/// The thread count the reader will actually use for `input_bytes` of text:
/// `options.threads` with < 1 resolved to the hardware concurrency, then
/// capped so every chunk keeps at least `options.min_chunk_bytes` bytes.
int EffectiveParseThreads(const ParseOptions& options, std::size_t input_bytes);

/// Parses N-Triples text into a fresh graph.
Result<Graph> ParseNTriples(std::string_view text);

/// Parses N-Triples text, appending into an existing graph. On error the
/// graph keeps the triples parsed before the failing line.
Status ParseNTriplesInto(std::string_view text, Graph* graph);
Status ParseNTriplesInto(std::string_view text, Graph* graph,
                         const ParseOptions& options);

/// Parses an N-Triples file from disk (read once into a single buffer).
Result<Graph> ParseNTriplesFile(const std::string& path,
                                const ParseOptions& options = {});

/// Streaming interface: invokes `sink` for each parsed triple in input order.
/// The TermViews are valid only for the duration of the call — copy what you
/// keep. Always sequential (shard merging needs a graph to remap into).
using TripleSink =
    std::function<void(const TermView& s, const TermView& p, const TermView& o)>;
Status ParseNTriplesStream(std::string_view text, const TripleSink& sink);

/// Reads a whole file into one string with a single size-stat'ed allocation.
Result<std::string> ReadFileToString(const std::string& path);

/// Serializes a graph in N-Triples syntax (one triple per line, trailing " .").
std::string WriteNTriples(const Graph& graph);

/// Serializes a graph to a stream.
void WriteNTriples(const Graph& graph, std::ostream* out);

}  // namespace rdfsr::rdf

#endif  // RDFSR_RDF_NTRIPLES_H_
