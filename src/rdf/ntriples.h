// N-Triples (RDF 1.1 line-based syntax) reader and writer.
//
// Supports IRIs, blank nodes, plain / language-tagged / datatyped literals,
// string escapes (\t \b \n \r \f \" \' \\ \uXXXX \UXXXXXXXX), comments, and
// blank lines. Errors report 1-based line numbers.

#ifndef RDFSR_RDF_NTRIPLES_H_
#define RDFSR_RDF_NTRIPLES_H_

#include <iosfwd>
#include <string>
#include <string_view>

#include "rdf/graph.h"
#include "util/status.h"

namespace rdfsr::rdf {

/// Parses N-Triples text into a fresh graph.
Result<Graph> ParseNTriples(std::string_view text);

/// Parses N-Triples text, appending into an existing graph.
Status ParseNTriplesInto(std::string_view text, Graph* graph);

/// Parses an N-Triples file from disk.
Result<Graph> ParseNTriplesFile(const std::string& path);

/// Serializes a graph in N-Triples syntax (one triple per line, trailing " .").
std::string WriteNTriples(const Graph& graph);

/// Serializes a graph to a stream.
void WriteNTriples(const Graph& graph, std::ostream* out);

}  // namespace rdfsr::rdf

#endif  // RDFSR_RDF_NTRIPLES_H_
