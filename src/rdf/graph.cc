#include "rdf/graph.h"

#include <unordered_set>

#include "rdf/vocab.h"

namespace rdfsr::rdf {

namespace {
std::uint64_t PackPair(TermId a, TermId b) {
  return (static_cast<std::uint64_t>(a) << 32) | b;
}
}  // namespace

bool Graph::Add(Triple t) {
  RDFSR_CHECK_LT(t.subject, dict_->size());
  RDFSR_CHECK_LT(t.predicate, dict_->size());
  RDFSR_CHECK_LT(t.object, dict_->size());
  if (!triple_set_.insert(t).second) return false;
  triples_.push_back(t);
  if (subject_set_.insert(t.subject).second) subjects_.push_back(t.subject);
  if (property_set_.insert(t.predicate).second) {
    properties_.push_back(t.predicate);
  }
  subject_property_.insert(PackPair(t.subject, t.predicate));
  return true;
}

bool Graph::Add(const Term& s, const Term& p, const Term& o) {
  Triple t;
  t.subject = dict_->Intern(s);
  t.predicate = dict_->Intern(p);
  t.object = dict_->Intern(o);
  return Add(t);
}

bool Graph::AddIri(const std::string& s, const std::string& p,
                   const std::string& o) {
  return Add(Term::Iri(s), Term::Iri(p), Term::Iri(o));
}

bool Graph::AddLiteral(const std::string& s, const std::string& p,
                       const std::string& literal) {
  return Add(Term::Iri(s), Term::Iri(p), Term::Literal(literal));
}

bool Graph::HasProperty(TermId s, TermId p) const {
  return subject_property_.count(PackPair(s, p)) > 0;
}

Graph Graph::SortSlice(const std::string& type_iri, bool include_type) const {
  Graph slice(dict_);
  const TermId type_prop = dict_->FindIri(vocab::kRdfType);
  const TermId sort = dict_->FindIri(type_iri);
  if (type_prop == kInvalidTermId || sort == kInvalidTermId) return slice;

  std::unordered_set<TermId> members;
  for (const Triple& t : triples_) {
    if (t.predicate == type_prop && t.object == sort) members.insert(t.subject);
  }
  for (const Triple& t : triples_) {
    if (!members.count(t.subject)) continue;
    if (!include_type && t.predicate == type_prop) continue;
    slice.Add(t);
  }
  return slice;
}

std::vector<TermId> Graph::SortConstants() const {
  const TermId type_prop = dict_->FindIri(vocab::kRdfType);
  std::vector<TermId> sorts;
  if (type_prop == kInvalidTermId) return sorts;
  std::unordered_set<TermId> seen;
  for (const Triple& t : triples_) {
    if (t.predicate == type_prop && seen.insert(t.object).second) {
      sorts.push_back(t.object);
    }
  }
  return sorts;
}

}  // namespace rdfsr::rdf
