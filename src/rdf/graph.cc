#include "rdf/graph.h"

#include <algorithm>
#include <unordered_set>

#include "rdf/vocab.h"

namespace rdfsr::rdf {

namespace {
std::uint64_t PackPair(TermId a, TermId b) {
  return (static_cast<std::uint64_t>(a) << 32) | b;
}
constexpr std::uint32_t kEmptySlot = static_cast<std::uint32_t>(-1);
}  // namespace

bool Graph::MarkSeen(std::vector<std::uint8_t>* seen, TermId id) {
  if (seen->size() <= id) {
    seen->resize(std::max<std::size_t>(id + 1, seen->size() * 2), 0);
  }
  if ((*seen)[id]) return false;
  (*seen)[id] = 1;
  return true;
}

void Graph::DedupGrow(std::size_t slots) {
  dedup_slots_.assign(slots, kEmptySlot);
  const std::size_t mask = slots - 1;
  for (std::size_t idx = 0; idx < triples_.size(); ++idx) {
    std::size_t i = TripleHash{}(triples_[idx]) & mask;
    while (dedup_slots_[i] != kEmptySlot) i = (i + 1) & mask;
    dedup_slots_[i] = static_cast<std::uint32_t>(idx);
  }
}

void Graph::Reserve(std::size_t triples, std::size_t terms) {
  triples_.reserve(triples);
  std::size_t slots = dedup_slots_.empty() ? 64 : dedup_slots_.size();
  while (slots < 2 * (triples + 1)) slots *= 2;
  if (slots > dedup_slots_.size()) DedupGrow(slots);
  subject_seen_.reserve(terms);
  property_seen_.reserve(terms);
  dict_->Reserve(terms);
}

bool Graph::DedupInsert(const Triple& t) {
  if (dedup_slots_.size() < 2 * (triples_.size() + 1)) {
    DedupGrow(dedup_slots_.empty() ? 64 : dedup_slots_.size() * 2);
  }
  const std::size_t mask = dedup_slots_.size() - 1;
  std::size_t i = TripleHash{}(t) & mask;
  while (true) {
    const std::uint32_t slot = dedup_slots_[i];
    if (slot == kEmptySlot) {
      dedup_slots_[i] = static_cast<std::uint32_t>(triples_.size());
      return true;
    }
    if (triples_[slot] == t) return false;
    i = (i + 1) & mask;
  }
}

bool Graph::Add(Triple t) {
  RDFSR_CHECK_LT(t.subject, dict_->size());
  RDFSR_CHECK_LT(t.predicate, dict_->size());
  RDFSR_CHECK_LT(t.object, dict_->size());
  if (!DedupInsert(t)) return false;
  triples_.push_back(t);
  if (MarkSeen(&subject_seen_, t.subject)) subjects_.push_back(t.subject);
  if (MarkSeen(&property_seen_, t.predicate)) {
    properties_.push_back(t.predicate);
  }
  return true;
}

bool Graph::Add(const Term& s, const Term& p, const Term& o) {
  Triple t;
  t.subject = dict_->Intern(s);
  t.predicate = dict_->Intern(p);
  t.object = dict_->Intern(o);
  return Add(t);
}

bool Graph::Add(const TermView& s, const TermView& p, const TermView& o) {
  Triple t;
  t.subject = dict_->Intern(s);
  t.predicate = dict_->Intern(p);
  t.object = dict_->Intern(o);
  return Add(t);
}

bool Graph::AddIri(const std::string& s, const std::string& p,
                   const std::string& o) {
  return Add(Term::Iri(s), Term::Iri(p), Term::Iri(o));
}

bool Graph::AddLiteral(const std::string& s, const std::string& p,
                       const std::string& literal) {
  return Add(Term::Iri(s), Term::Iri(p), Term::Literal(literal));
}

bool Graph::HasProperty(TermId s, TermId p) const {
  for (; sp_scanned_ < triples_.size(); ++sp_scanned_) {
    subject_property_.insert(PackPair(triples_[sp_scanned_].subject,
                                      triples_[sp_scanned_].predicate));
  }
  return subject_property_.count(PackPair(s, p)) > 0;
}

const std::vector<std::uint32_t>& Graph::TypePostings() const {
  if (type_scanned_ == triples_.size()) return type_postings_;
  const TermId type_prop = dict_->FindIri(vocab::kRdfType);
  if (type_prop != kInvalidTermId) {
    for (std::size_t i = type_scanned_; i < triples_.size(); ++i) {
      if (triples_[i].predicate == type_prop) {
        type_postings_.push_back(static_cast<std::uint32_t>(i));
      }
    }
  }
  type_scanned_ = triples_.size();
  return type_postings_;
}

Graph Graph::SortSlice(const std::string& type_iri, bool include_type) const {
  Graph slice(dict_);
  const TermId type_prop = dict_->FindIri(vocab::kRdfType);
  const TermId sort = dict_->FindIri(type_iri);
  if (type_prop == kInvalidTermId || sort == kInvalidTermId) return slice;

  // Membership comes from the rdf:type posting list, so only the triple
  // collection below still walks the full triple vector.
  std::unordered_set<TermId> members;
  for (std::uint32_t i : TypePostings()) {
    const Triple& t = triples_[i];
    if (t.object == sort) members.insert(t.subject);
  }
  if (members.empty()) return slice;
  for (const Triple& t : triples_) {
    if (!members.count(t.subject)) continue;
    if (!include_type && t.predicate == type_prop) continue;
    slice.Add(t);
  }
  return slice;
}

std::vector<TermId> Graph::SortConstants() const {
  std::vector<TermId> sorts;
  std::unordered_set<TermId> seen;
  for (std::uint32_t i : TypePostings()) {
    if (seen.insert(triples_[i].object).second) {
      sorts.push_back(triples_[i].object);
    }
  }
  return sorts;
}

}  // namespace rdfsr::rdf
