#include "rdf/graph.h"

#include <algorithm>
#include <atomic>
#include <unordered_map>
#include <unordered_set>

#include "rdf/vocab.h"
#include "util/failpoint.h"
#include "util/thread_pool.h"

namespace rdfsr::rdf {

namespace {
std::uint64_t PackPair(TermId a, TermId b) {
  return (static_cast<std::uint64_t>(a) << 32) | b;
}
constexpr std::uint32_t kEmptySlot = static_cast<std::uint32_t>(-1);
}  // namespace

bool Graph::MarkSeen(std::vector<std::uint8_t>* seen, TermId id) {
  if (seen->size() <= id) {
    seen->resize(std::max<std::size_t>(id + 1, seen->size() * 2), 0);
  }
  if ((*seen)[id]) return false;
  (*seen)[id] = 1;
  return true;
}

void Graph::DedupGrow(std::size_t slots) {
  dedup_slots_.assign(slots, kEmptySlot);
  const std::size_t mask = slots - 1;
  for (std::size_t idx = 0; idx < triples_.size(); ++idx) {
    std::size_t i = TripleHash{}(triples_[idx]) & mask;
    while (dedup_slots_[i] != kEmptySlot) i = (i + 1) & mask;
    dedup_slots_[i] = static_cast<std::uint32_t>(idx);
  }
}

void Graph::Reserve(std::size_t triples, std::size_t terms) {
  triples_.reserve(triples);
  std::size_t slots = dedup_slots_.empty() ? 64 : dedup_slots_.size();
  while (slots < 2 * (triples + 1)) slots *= 2;
  if (slots > dedup_slots_.size()) DedupGrow(slots);
  subject_seen_.reserve(terms);
  property_seen_.reserve(terms);
  dict_->Reserve(terms);
}

bool Graph::DedupInsert(const Triple& t) {
  if (dedup_slots_.size() < 2 * (triples_.size() + 1)) {
    DedupGrow(dedup_slots_.empty() ? 64 : dedup_slots_.size() * 2);
  }
  const std::size_t mask = dedup_slots_.size() - 1;
  std::size_t i = TripleHash{}(t) & mask;
  while (true) {
    const std::uint32_t slot = dedup_slots_[i];
    if (slot == kEmptySlot) {
      dedup_slots_[i] = static_cast<std::uint32_t>(triples_.size());
      return true;
    }
    if (triples_[slot] == t) return false;
    i = (i + 1) & mask;
  }
}

bool Graph::Add(Triple t) {
  RDFSR_CHECK_LT(t.subject, dict_->size());
  RDFSR_CHECK_LT(t.predicate, dict_->size());
  RDFSR_CHECK_LT(t.object, dict_->size());
  if (!DedupInsert(t)) return false;
  triples_.push_back(t);
  if (MarkSeen(&subject_seen_, t.subject)) subjects_.push_back(t.subject);
  if (MarkSeen(&property_seen_, t.predicate)) {
    properties_.push_back(t.predicate);
  }
  return true;
}

bool Graph::Add(const Term& s, const Term& p, const Term& o) {
  Triple t;
  t.subject = dict_->Intern(s);
  t.predicate = dict_->Intern(p);
  t.object = dict_->Intern(o);
  return Add(t);
}

bool Graph::Add(const TermView& s, const TermView& p, const TermView& o) {
  Triple t;
  t.subject = dict_->Intern(s);
  t.predicate = dict_->Intern(p);
  t.object = dict_->Intern(o);
  return Add(t);
}

bool Graph::AddIri(const std::string& s, const std::string& p,
                   const std::string& o) {
  return Add(Term::Iri(s), Term::Iri(p), Term::Iri(o));
}

bool Graph::AddLiteral(const std::string& s, const std::string& p,
                       const std::string& literal) {
  return Add(Term::Iri(s), Term::Iri(p), Term::Literal(literal));
}

// The merge runs in barrier-separated parallel phases; within each phase,
// workers write only per-shard (or per-bucket, or per-id-range) state that no
// other worker touches. Global orders come from per-shard prefix sums over
// per-element flags, never from scheduling order, which is how the result
// stays bit-identical to the serial merge. The two hash tables built by
// atomic CAS (dictionary slots, triple dedup slots) insert keys that are
// pairwise distinct by construction, so claims need no equality probes.
Status Graph::MergeShards(std::vector<Graph>* shards_in, std::size_t count,
                          util::ThreadPool* pool,
                          const util::CancellationToken& cancel) {
  RDFSR_CHECK(pool != nullptr);
  RDFSR_CHECK(shards_in != nullptr);
  RDFSR_CHECK_LE(count, shards_in->size());
  RDFSR_CHECK(triples_.empty());
  RDFSR_CHECK_EQ(dict_->size(), 0u);
  RDFSR_FAILPOINT("graph.merge-shards");
  if (cancel.stop_requested()) return cancel.status();
  std::vector<Graph>& shards = *shards_in;
  const std::size_t m = count;
  if (m == 0) return Status::OK();

  const std::size_t lanes = static_cast<std::size_t>(pool->workers()) + 1;
  std::size_t buckets = 64;
  while (buckets < 4 * lanes) buckets *= 2;
  const std::size_t bmask = buckets - 1;

  std::vector<std::size_t> term_count(m);
  for (std::size_t s = 0; s < m; ++s) term_count[s] = shards[s].dict().size();

  // Phase 1: bin each shard's terms by hash bucket (ascending ids per list).
  std::vector<std::vector<std::vector<std::uint32_t>>> term_bins(m);
  pool->ParallelFor(m, [&](std::size_t sb, std::size_t se) {
    for (std::size_t s = sb; s < se; ++s) {
      term_bins[s].resize(buckets);
      const Dictionary& dict = shards[s].dict();
      for (std::size_t t = 0; t < term_count[s]; ++t) {
        term_bins[s][TermHash{}(dict.term(static_cast<TermId>(t))) & bmask]
            .push_back(static_cast<std::uint32_t>(t));
      }
    }
  });

  // The destination is untouched through phase 3, so these inter-phase
  // checkpoints can unwind with the graph still empty.
  if (cancel.stop_requested()) return cancel.status();

  // Phase 2: per-bucket cross-shard dedup. canon[s][t] is the packed
  // (shard << 32 | local id) of the term's first occurrence; visiting shards
  // ascending and ids ascending makes "first" mean first in the byte stream.
  std::vector<std::vector<std::uint64_t>> canon(m);
  for (std::size_t s = 0; s < m; ++s) canon[s].resize(term_count[s]);
  pool->ParallelFor(buckets, [&](std::size_t bb, std::size_t be) {
    std::unordered_map<TermView, std::uint64_t, TermHash, TermEq> first;
    for (std::size_t b = bb; b < be; ++b) {
      first.clear();
      for (std::size_t s = 0; s < m; ++s) {
        const Dictionary& dict = shards[s].dict();
        for (std::uint32_t t : term_bins[s][b]) {
          const std::uint64_t self = (static_cast<std::uint64_t>(s) << 32) | t;
          canon[s][t] = first.emplace(TermView(dict.term(t)), self)
                            .first->second;
        }
      }
    }
  });

  if (cancel.stop_requested()) return cancel.status();

  // Phase 3: rank new terms within each shard, then prefix the per-shard
  // counts into id bases — merged id = base[canon shard] + rank there.
  std::vector<std::vector<std::uint32_t>> new_rank(m);
  std::vector<std::size_t> new_count(m);
  pool->ParallelFor(m, [&](std::size_t sb, std::size_t se) {
    for (std::size_t s = sb; s < se; ++s) {
      new_rank[s].resize(term_count[s]);
      std::uint32_t rank = 0;
      for (std::size_t t = 0; t < term_count[s]; ++t) {
        new_rank[s][t] = rank;
        if (canon[s][t] == ((static_cast<std::uint64_t>(s) << 32) | t)) {
          ++rank;
        }
      }
      new_count[s] = rank;
    }
  });
  std::vector<TermId> base(m + 1, 0);
  for (std::size_t s = 0; s < m; ++s) {
    base[s + 1] = base[s] + static_cast<TermId>(new_count[s]);
  }
  const std::size_t total_terms = base[m];

  std::vector<std::vector<TermId>> remap(m);
  pool->ParallelFor(m, [&](std::size_t sb, std::size_t se) {
    for (std::size_t s = sb; s < se; ++s) {
      remap[s].resize(term_count[s]);
      for (std::size_t t = 0; t < term_count[s]; ++t) {
        const std::uint64_t c = canon[s][t];
        const std::size_t cs = static_cast<std::size_t>(c >> 32);
        const std::uint32_t ct = static_cast<std::uint32_t>(c);
        remap[s][t] = base[cs] + new_rank[cs][ct];
      }
    }
  });

  // Last checkpoint before the destination is mutated: from here the merge
  // runs to completion (a half-built bulk dictionary is not a valid state to
  // stop in).
  if (cancel.stop_requested()) return cancel.status();

  // Phase 4: move canonical terms into the merged dictionary (no string
  // copies) and publish disjoint id ranges into its index. The bulk-append
  // failpoint throws from inside a worker: ParallelFor rethrows on the
  // calling thread (proving the pool unwinds rather than deadlocks) and the
  // catch below converts it back into a Status.
  try {
    dict_->BulkAppend(total_terms);
    pool->ParallelFor(m, [&](std::size_t sb, std::size_t se) {
      for (std::size_t s = sb; s < se; ++s) {
        RDFSR_FAILPOINT_THROW("dict.bulk-append");
        Dictionary& dict = shards[s].dict();
        for (std::size_t t = 0; t < term_count[s]; ++t) {
          if (canon[s][t] == ((static_cast<std::uint64_t>(s) << 32) | t)) {
            dict_->BulkSet(remap[s][t], dict.StealTerm(static_cast<TermId>(t)));
          }
        }
      }
    });
    pool->ParallelFor(total_terms, [&](std::size_t b, std::size_t e) {
      dict_->BulkIndex(static_cast<TermId>(b), static_cast<TermId>(e));
    });
  } catch (const util::FailpointError& e) {
    return e.status();
  }

  // Phase 5: remap the shard triples to merged ids, then bin them by hash
  // bucket like the terms.
  std::vector<std::vector<std::vector<std::uint32_t>>> triple_bins(m);
  pool->ParallelFor(m, [&](std::size_t sb, std::size_t se) {
    for (std::size_t s = sb; s < se; ++s) {
      triple_bins[s].resize(buckets);
      std::vector<Triple>& triples = shards[s].triples_;
      for (std::size_t i = 0; i < triples.size(); ++i) {
        Triple& t = triples[i];
        t.subject = remap[s][t.subject];
        t.predicate = remap[s][t.predicate];
        t.object = remap[s][t.object];
        triple_bins[s][TripleHash{}(t) & bmask].push_back(
            static_cast<std::uint32_t>(i));
      }
    }
  });

  // Phase 6: per-bucket cross-shard dedup — keep the first occurrence (the
  // shards already dedup internally, so only cross-shard repeats drop here).
  std::vector<std::vector<char>> keep(m);
  for (std::size_t s = 0; s < m; ++s) keep[s].resize(shards[s].size());
  pool->ParallelFor(buckets, [&](std::size_t bb, std::size_t be) {
    std::unordered_set<Triple, TripleHash> seen;
    for (std::size_t b = bb; b < be; ++b) {
      seen.clear();
      for (std::size_t s = 0; s < m; ++s) {
        const std::vector<Triple>& triples = shards[s].triples_;
        for (std::uint32_t i : triple_bins[s][b]) {
          keep[s][i] = seen.insert(triples[i]).second ? 1 : 0;
        }
      }
    }
  });

  // Phase 7: prefix the keep flags into destination positions and scatter.
  std::vector<std::vector<std::uint32_t>> dest(m);
  std::vector<std::size_t> kept_count(m);
  pool->ParallelFor(m, [&](std::size_t sb, std::size_t se) {
    for (std::size_t s = sb; s < se; ++s) {
      dest[s].resize(keep[s].size());
      std::uint32_t rank = 0;
      for (std::size_t i = 0; i < keep[s].size(); ++i) {
        dest[s][i] = rank;
        rank += static_cast<std::uint32_t>(keep[s][i]);
      }
      kept_count[s] = rank;
    }
  });
  std::vector<std::size_t> tbase(m + 1, 0);
  for (std::size_t s = 0; s < m; ++s) tbase[s + 1] = tbase[s] + kept_count[s];
  triples_.resize(tbase[m]);
  pool->ParallelFor(m, [&](std::size_t sb, std::size_t se) {
    for (std::size_t s = sb; s < se; ++s) {
      const std::vector<Triple>& triples = shards[s].triples_;
      for (std::size_t i = 0; i < triples.size(); ++i) {
        if (keep[s][i]) triples_[tbase[s] + dest[s][i]] = triples[i];
      }
    }
  });

  // Phase 8: build the dedup slot index over the (pairwise distinct) merged
  // triples by atomic claims.
  std::size_t slots = 64;
  while (slots < 2 * (triples_.size() + 1)) slots *= 2;
  dedup_slots_.assign(slots, kEmptySlot);
  const std::size_t dmask = slots - 1;
  pool->ParallelFor(triples_.size(), [&](std::size_t b, std::size_t e) {
    for (std::size_t idx = b; idx < e; ++idx) {
      std::size_t i = TripleHash{}(triples_[idx]) & dmask;
      while (true) {
        // owned-by-phase: dedup_slots_ is exclusive to phase 8 — assigned
        // empty before the fan-out, claimed only by these lanes, and handed
        // to single-threaded readers by the ParallelFor join below.
        // lint:allow(atomic-ref: dedup_slots_ owned by merge phase 8; published by the ParallelFor join)
        std::atomic_ref<std::uint32_t> slot(dedup_slots_[i]);
        std::uint32_t expected = kEmptySlot;
        if (slot.load(std::memory_order_relaxed) == kEmptySlot &&
            slot.compare_exchange_strong(expected,
                                         static_cast<std::uint32_t>(idx),
                                         std::memory_order_relaxed)) {
          break;
        }
        i = (i + 1) & dmask;
      }
    }
  });

  // First-appearance subject/property orders: a serial two-array-probe pass
  // (cheap relative to the parallel phases above).
  subject_seen_.assign(dict_->size(), 0);
  property_seen_.assign(dict_->size(), 0);
  for (const Triple& t : triples_) {
    if (MarkSeen(&subject_seen_, t.subject)) subjects_.push_back(t.subject);
    if (MarkSeen(&property_seen_, t.predicate)) {
      properties_.push_back(t.predicate);
    }
  }

  // Audit builds re-validate the CAS-built structures before the merged graph
  // crosses back into single-threaded use.
  RDFSR_AUDIT_CHECK_INVARIANTS(*dict_);
  RDFSR_AUDIT_CHECK_INVARIANTS(*this);
  return Status::OK();
}

void Graph::CheckInvariants() const {
  const std::size_t num_terms = dict_->size();
  std::unordered_set<Triple, TripleHash> seen;
  seen.reserve(triples_.size() * 2);
  for (const Triple& t : triples_) {
    RDFSR_CHECK_LT(t.subject, num_terms) << "subject id not interned";
    RDFSR_CHECK_LT(t.predicate, num_terms) << "predicate id not interned";
    RDFSR_CHECK_LT(t.object, num_terms) << "object id not interned";
    RDFSR_CHECK(seen.insert(t).second)
        << "duplicate triple in the deduplicated store";
  }

  RDFSR_CHECK_GE(dedup_slots_.size(),
                 triples_.empty() ? 0 : 2 * triples_.size())
      << "dedup slot index under-sized";
  std::size_t filled = 0;
  for (std::uint32_t slot : dedup_slots_) {
    if (slot == kEmptySlot) continue;
    ++filled;
    RDFSR_CHECK_LT(slot, triples_.size()) << "dedup slot out of range";
  }
  RDFSR_CHECK_EQ(filled, triples_.size())
      << "dedup index does not cover every triple exactly once";

  // subjects()/properties() must be the first-appearance orders of triples().
  std::unordered_set<TermId> seen_subjects, seen_properties;
  std::size_t next_subject = 0, next_property = 0;
  for (const Triple& t : triples_) {
    if (seen_subjects.insert(t.subject).second) {
      RDFSR_CHECK_LT(next_subject, subjects_.size());
      RDFSR_CHECK_EQ(subjects_[next_subject], t.subject)
          << "subjects() out of first-appearance order";
      ++next_subject;
    }
    if (seen_properties.insert(t.predicate).second) {
      RDFSR_CHECK_LT(next_property, properties_.size());
      RDFSR_CHECK_EQ(properties_[next_property], t.predicate)
          << "properties() out of first-appearance order";
      ++next_property;
    }
  }
  RDFSR_CHECK_EQ(next_subject, subjects_.size())
      << "subjects() lists terms no triple mentions";
  RDFSR_CHECK_EQ(next_property, properties_.size())
      << "properties() lists terms no triple mentions";
}

bool Graph::HasProperty(TermId s, TermId p) const {
  for (; sp_scanned_ < triples_.size(); ++sp_scanned_) {
    subject_property_.insert(PackPair(triples_[sp_scanned_].subject,
                                      triples_[sp_scanned_].predicate));
  }
  return subject_property_.count(PackPair(s, p)) > 0;
}

const std::vector<std::uint32_t>& Graph::TypePostings() const {
  if (type_scanned_ == triples_.size()) return type_postings_;
  const TermId type_prop = dict_->FindIri(vocab::kRdfType);
  if (type_prop != kInvalidTermId) {
    for (std::size_t i = type_scanned_; i < triples_.size(); ++i) {
      if (triples_[i].predicate == type_prop) {
        type_postings_.push_back(static_cast<std::uint32_t>(i));
      }
    }
  }
  type_scanned_ = triples_.size();
  return type_postings_;
}

Graph Graph::SortSlice(const std::string& type_iri, bool include_type) const {
  Graph slice(dict_);
  const TermId type_prop = dict_->FindIri(vocab::kRdfType);
  const TermId sort = dict_->FindIri(type_iri);
  if (type_prop == kInvalidTermId || sort == kInvalidTermId) return slice;

  // Membership comes from the rdf:type posting list, so only the triple
  // collection below still walks the full triple vector.
  std::unordered_set<TermId> members;
  for (std::uint32_t i : TypePostings()) {
    const Triple& t = triples_[i];
    if (t.object == sort) members.insert(t.subject);
  }
  if (members.empty()) return slice;
  for (const Triple& t : triples_) {
    if (!members.count(t.subject)) continue;
    if (!include_type && t.predicate == type_prop) continue;
    slice.Add(t);
  }
  return slice;
}

std::vector<TermId> Graph::SortConstants() const {
  std::vector<TermId> sorts;
  std::unordered_set<TermId> seen;
  for (std::uint32_t i : TypePostings()) {
    if (seen.insert(triples_[i].object).second) {
      sorts.push_back(triples_[i].object);
    }
  }
  return sorts;
}

}  // namespace rdfsr::rdf
