#include "rdf/term.h"

#include <utility>

namespace rdfsr::rdf {

namespace {

/// Escapes a literal lexical form per N-Triples rules.
std::string EscapeLiteral(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

}  // namespace

Term Term::Iri(std::string iri) {
  Term t;
  t.kind = TermKind::kIri;
  t.lexical = std::move(iri);
  return t;
}

Term Term::Literal(std::string lexical, std::string datatype, std::string lang) {
  Term t;
  t.kind = TermKind::kLiteral;
  t.lexical = std::move(lexical);
  t.datatype = std::move(datatype);
  t.lang = std::move(lang);
  return t;
}

Term Term::Blank(std::string label) {
  Term t;
  t.kind = TermKind::kBlank;
  t.lexical = std::move(label);
  return t;
}

std::string Term::ToString() const {
  switch (kind) {
    case TermKind::kIri:
      return "<" + lexical + ">";
    case TermKind::kBlank:
      return "_:" + lexical;
    case TermKind::kLiteral: {
      std::string out = "\"" + EscapeLiteral(lexical) + "\"";
      if (!lang.empty()) {
        out += "@" + lang;
      } else if (!datatype.empty()) {
        out += "^^<" + datatype + ">";
      }
      return out;
    }
  }
  return "";
}

std::size_t TermHash::operator()(const TermView& t) const {
  std::size_t h = std::hash<std::string_view>()(t.lexical);
  h ^= std::hash<std::string_view>()(t.datatype) + 0x9e3779b9 + (h << 6) +
       (h >> 2);
  h ^= std::hash<std::string_view>()(t.lang) + 0x9e3779b9 + (h << 6) + (h >> 2);
  h ^= static_cast<std::size_t>(t.kind) + 0x9e3779b9 + (h << 6) + (h >> 2);
  return h;
}

}  // namespace rdfsr::rdf
