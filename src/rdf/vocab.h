// Well-known vocabulary constants used by the paper and its experiments.

#ifndef RDFSR_RDF_VOCAB_H_
#define RDFSR_RDF_VOCAB_H_

namespace rdfsr::rdf::vocab {

/// rdf:type — the constant `type` of Section 2.1: (s, type, t) declares subject
/// s to be of sort t.
inline constexpr const char* kRdfType =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";

/// owl:sameAs — one of the RDF-plumbing properties the Section 7.4 modified Cov
/// rule excludes.
inline constexpr const char* kOwlSameAs = "http://www.w3.org/2002/07/owl#sameAs";

/// rdfs:subClassOf — RDF plumbing (Section 7.4).
inline constexpr const char* kRdfsSubClassOf =
    "http://www.w3.org/2000/01/rdf-schema#subClassOf";

/// rdfs:label — RDF plumbing (Section 7.4).
inline constexpr const char* kRdfsLabel =
    "http://www.w3.org/2000/01/rdf-schema#label";

/// foaf:Person — the sort of the DBpedia Persons dataset (Section 7.1).
inline constexpr const char* kFoafPerson = "http://xmlns.com/foaf/0.1/Person";

/// WordNet 2.0 NounSynset — the sort of the WordNet Nouns dataset (Section 7.2).
inline constexpr const char* kWnNounSynset =
    "http://www.w3.org/2006/03/wn/wn20/schema/NounSynset";

}  // namespace rdfsr::rdf::vocab

#endif  // RDFSR_RDF_VOCAB_H_
