#include "rdf/dictionary.h"

#include <utility>

namespace rdfsr::rdf {

TermId Dictionary::Intern(const TermView& term) {
  auto it = ids_.find(term);
  if (it != ids_.end()) return it->second;
  const TermId id = static_cast<TermId>(terms_.size());
  auto [pos, inserted] = ids_.emplace(term.ToTerm(), id);
  RDFSR_CHECK(inserted);
  terms_.push_back(&pos->first);
  return id;
}

TermId Dictionary::Find(const TermView& term) const {
  auto it = ids_.find(term);
  return it == ids_.end() ? kInvalidTermId : it->second;
}

}  // namespace rdfsr::rdf
