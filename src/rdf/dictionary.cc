#include "rdf/dictionary.h"

#include <atomic>
#include <utility>

namespace rdfsr::rdf {

namespace {
constexpr std::uint32_t kEmptySlot = static_cast<std::uint32_t>(-1);

std::size_t SlotsFor(std::size_t terms) {
  std::size_t slots = 64;
  while (slots < 2 * (terms + 1)) slots *= 2;
  return slots;
}
}  // namespace

void Dictionary::Rehash(std::size_t slots) {
  slots_.assign(slots, kEmptySlot);
  const std::size_t mask = slots - 1;
  for (std::size_t id = 0; id < terms_.size(); ++id) {
    std::size_t i = TermHash{}(terms_[id]) & mask;
    while (slots_[i] != kEmptySlot) i = (i + 1) & mask;
    slots_[i] = static_cast<std::uint32_t>(id);
  }
}

void Dictionary::Reserve(std::size_t terms) {
  const std::size_t slots = SlotsFor(terms);
  if (slots > slots_.size()) Rehash(slots);
}

TermId Dictionary::Intern(const TermView& term) {
  if (slots_.size() < 2 * (terms_.size() + 1)) {
    Rehash(slots_.empty() ? 64 : slots_.size() * 2);
  }
  const std::size_t mask = slots_.size() - 1;
  std::size_t i = TermHash{}(term) & mask;
  while (true) {
    const std::uint32_t slot = slots_[i];
    if (slot == kEmptySlot) {
      const TermId id = static_cast<TermId>(terms_.size());
      terms_.push_back(term.ToTerm());
      slots_[i] = id;
      return id;
    }
    if (TermEq{}(terms_[slot], term)) return slot;
    i = (i + 1) & mask;
  }
}

TermId Dictionary::Find(const TermView& term) const {
  if (slots_.empty()) return kInvalidTermId;
  const std::size_t mask = slots_.size() - 1;
  std::size_t i = TermHash{}(term) & mask;
  while (true) {
    const std::uint32_t slot = slots_[i];
    if (slot == kEmptySlot) return kInvalidTermId;
    if (TermEq{}(terms_[slot], term)) return slot;
    i = (i + 1) & mask;
  }
}

TermId Dictionary::BulkAppend(std::size_t count) {
  const TermId first = static_cast<TermId>(terms_.size());
  // Grow the slot index before the resize: Rehash re-inserts every current
  // term, and the about-to-be-appended slots are all identical empty Terms —
  // hashing those would pile them onto one probe chain (quadratic) and leave
  // stale entries BulkIndex then duplicates. The new ids are published by
  // BulkIndex alone, after BulkSet has filled them.
  const std::size_t slots = SlotsFor(terms_.size() + count);
  if (slots > slots_.size()) Rehash(slots);
  terms_.resize(terms_.size() + count);
  return first;
}

void Dictionary::BulkIndex(TermId begin, TermId end) {
  const std::size_t mask = slots_.size() - 1;
  for (TermId id = begin; id < end; ++id) {
    std::size_t i = TermHash{}(terms_[id]) & mask;
    while (true) {
      // owned-by-phase: slots_ is exclusive to the BulkIndex barrier phase —
      // BulkAppend sizes it before the fan-out, only BulkIndex lanes touch it
      // during the phase, and the caller's ParallelFor join publishes it to
      // single-threaded readers. No mutex capability exists to annotate; the
      // CAS below is the whole claim protocol.
      // lint:allow(atomic-ref: slots_ owned by the BulkIndex phase; published by the ParallelFor join)
      std::atomic_ref<std::uint32_t> slot(slots_[i]);
      std::uint32_t expected = kEmptySlot;
      // Every bulk term is distinct from every other term (the merge dedups
      // first), so claiming any empty slot on the probe path is correct — no
      // equality check needed, and the winning interleaving only affects the
      // (unobservable) slot layout.
      if (slot.load(std::memory_order_relaxed) == kEmptySlot &&
          slot.compare_exchange_strong(expected, id,
                                       std::memory_order_relaxed)) {
        break;
      }
      i = (i + 1) & mask;
    }
  }
}

void Dictionary::CheckInvariants() const {
  RDFSR_CHECK_GE(slots_.size(), terms_.empty() ? 0 : 2 * terms_.size())
      << "slot index under-sized for the interned terms";
  std::size_t filled = 0;
  for (std::uint32_t slot : slots_) {
    if (slot == kEmptySlot) continue;
    ++filled;
    RDFSR_CHECK_LT(slot, terms_.size()) << "slot points past the term store";
  }
  RDFSR_CHECK_EQ(filled, terms_.size())
      << "slot index does not cover every term exactly once";
  for (std::size_t id = 0; id < terms_.size(); ++id) {
    RDFSR_CHECK_EQ(Find(TermView(terms_[id])), static_cast<TermId>(id))
        << "round-trip failed for term id " << id;
  }
}

}  // namespace rdfsr::rdf
