#include "rdf/dictionary.h"

namespace rdfsr::rdf {

TermId Dictionary::Intern(const Term& term) {
  auto it = ids_.find(term);
  if (it != ids_.end()) return it->second;
  const TermId id = static_cast<TermId>(terms_.size());
  terms_.push_back(term);
  ids_.emplace(term, id);
  return id;
}

TermId Dictionary::Find(const Term& term) const {
  auto it = ids_.find(term);
  return it == ids_.end() ? kInvalidTermId : it->second;
}

}  // namespace rdfsr::rdf
