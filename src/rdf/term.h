// RDF terms: IRIs, literals, and blank nodes.
//
// The paper's model (Section 2.1) assumes two countably infinite disjoint sets U
// (URIs) and L (literals); triples are (s, p, o) in U x U x (U ∪ L). We add blank
// nodes for practical N-Triples compatibility; they behave like URIs throughout
// the structuredness machinery (only subject identity and property presence
// matter there).

#ifndef RDFSR_RDF_TERM_H_
#define RDFSR_RDF_TERM_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

namespace rdfsr::rdf {

/// Which set a term belongs to.
enum class TermKind : std::uint8_t {
  kIri = 0,
  kLiteral = 1,
  kBlank = 2,
};

/// An RDF term. Literals carry an optional datatype IRI and language tag
/// (mutually exclusive per RDF 1.1; enforced by the N-Triples parser).
struct Term {
  TermKind kind = TermKind::kIri;
  std::string lexical;   ///< IRI string, literal lexical form, or blank label.
  std::string datatype;  ///< Datatype IRI for typed literals, else empty.
  std::string lang;      ///< Language tag for lang-tagged literals, else empty.

  static Term Iri(std::string iri);
  static Term Literal(std::string lexical, std::string datatype = "",
                      std::string lang = "");
  static Term Blank(std::string label);

  bool is_iri() const { return kind == TermKind::kIri; }
  bool is_literal() const { return kind == TermKind::kLiteral; }
  bool is_blank() const { return kind == TermKind::kBlank; }

  bool operator==(const Term& o) const {
    return kind == o.kind && lexical == o.lexical && datatype == o.datatype &&
           lang == o.lang;
  }
  bool operator!=(const Term& o) const { return !(*this == o); }

  /// N-Triples surface form: <iri>, "literal"^^<dt>, "literal"@lang, _:label.
  std::string ToString() const;
};

/// A non-owning view of a term: the string_view analogue of Term. The
/// streaming N-Triples parser produces TermViews pointing into the input
/// buffer (or a per-line scratch buffer for escaped forms), and the dictionary
/// interns them through heterogeneous lookup — the common case of an
/// already-interned term does zero allocations.
struct TermView {
  TermKind kind = TermKind::kIri;
  std::string_view lexical;
  std::string_view datatype;
  std::string_view lang;

  TermView() = default;
  TermView(TermKind kind, std::string_view lexical,
           std::string_view datatype = {}, std::string_view lang = {})
      : kind(kind), lexical(lexical), datatype(datatype), lang(lang) {}
  /// View of an owning Term (valid while the Term lives).
  explicit TermView(const Term& t)
      : kind(t.kind), lexical(t.lexical), datatype(t.datatype), lang(t.lang) {}

  static TermView Iri(std::string_view iri) {
    return TermView(TermKind::kIri, iri);
  }
  static TermView Blank(std::string_view label) {
    return TermView(TermKind::kBlank, label);
  }

  /// Materializes an owning Term (copies the viewed bytes).
  Term ToTerm() const {
    Term t;
    t.kind = kind;
    t.lexical = std::string(lexical);
    t.datatype = std::string(datatype);
    t.lang = std::string(lang);
    return t;
  }

  friend bool operator==(const TermView& a, const TermView& b) {
    return a.kind == b.kind && a.lexical == b.lexical &&
           a.datatype == b.datatype && a.lang == b.lang;
  }
};

/// Hash functor so Term can key unordered maps (dictionary interning).
/// Transparent: TermView hashes to the same value as the equivalent Term, so
/// lookups by view never materialize a temporary Term.
struct TermHash {
  using is_transparent = void;
  std::size_t operator()(const Term& t) const {
    return (*this)(TermView(t));
  }
  std::size_t operator()(const TermView& t) const;
};

/// Equality functor matching TermHash's transparency.
struct TermEq {
  using is_transparent = void;
  bool operator()(const Term& a, const Term& b) const { return a == b; }
  bool operator()(const Term& a, const TermView& b) const {
    return TermView(a) == b;
  }
  bool operator()(const TermView& a, const Term& b) const {
    return a == TermView(b);
  }
  bool operator()(const TermView& a, const TermView& b) const { return a == b; }
};

}  // namespace rdfsr::rdf

#endif  // RDFSR_RDF_TERM_H_
