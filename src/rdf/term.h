// RDF terms: IRIs, literals, and blank nodes.
//
// The paper's model (Section 2.1) assumes two countably infinite disjoint sets U
// (URIs) and L (literals); triples are (s, p, o) in U x U x (U ∪ L). We add blank
// nodes for practical N-Triples compatibility; they behave like URIs throughout
// the structuredness machinery (only subject identity and property presence
// matter there).

#ifndef RDFSR_RDF_TERM_H_
#define RDFSR_RDF_TERM_H_

#include <cstdint>
#include <functional>
#include <string>

namespace rdfsr::rdf {

/// Which set a term belongs to.
enum class TermKind : std::uint8_t {
  kIri = 0,
  kLiteral = 1,
  kBlank = 2,
};

/// An RDF term. Literals carry an optional datatype IRI and language tag
/// (mutually exclusive per RDF 1.1; enforced by the N-Triples parser).
struct Term {
  TermKind kind = TermKind::kIri;
  std::string lexical;   ///< IRI string, literal lexical form, or blank label.
  std::string datatype;  ///< Datatype IRI for typed literals, else empty.
  std::string lang;      ///< Language tag for lang-tagged literals, else empty.

  static Term Iri(std::string iri);
  static Term Literal(std::string lexical, std::string datatype = "",
                      std::string lang = "");
  static Term Blank(std::string label);

  bool is_iri() const { return kind == TermKind::kIri; }
  bool is_literal() const { return kind == TermKind::kLiteral; }
  bool is_blank() const { return kind == TermKind::kBlank; }

  bool operator==(const Term& o) const {
    return kind == o.kind && lexical == o.lexical && datatype == o.datatype &&
           lang == o.lang;
  }
  bool operator!=(const Term& o) const { return !(*this == o); }

  /// N-Triples surface form: <iri>, "literal"^^<dt>, "literal"@lang, _:label.
  std::string ToString() const;
};

/// Hash functor so Term can key unordered maps (dictionary interning).
struct TermHash {
  std::size_t operator()(const Term& t) const;
};

}  // namespace rdfsr::rdf

#endif  // RDFSR_RDF_TERM_H_
