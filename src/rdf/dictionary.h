// Dictionary encoding: interning of RDF terms to dense 32-bit ids.
//
// This is the standard triple-store trick (see the horizontal-database view of
// Section 2.1): all structural computation downstream works on integer ids; the
// strings are only needed at the I/O boundary.

#ifndef RDFSR_RDF_DICTIONARY_H_
#define RDFSR_RDF_DICTIONARY_H_

#include <cstdint>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "rdf/term.h"
#include "util/check.h"

namespace rdfsr::rdf {

/// Dense id of an interned term. Valid ids are < Dictionary::size().
using TermId = std::uint32_t;

/// Sentinel for "no term".
inline constexpr TermId kInvalidTermId = static_cast<TermId>(-1);

/// Bidirectional Term <-> TermId map. Ids are assigned in interning order and
/// are stable for the dictionary's lifetime. Not thread-safe.
class Dictionary {
 public:
  Dictionary() = default;

  // Movable but not copyable: graphs share dictionaries by reference.
  Dictionary(const Dictionary&) = delete;
  Dictionary& operator=(const Dictionary&) = delete;
  Dictionary(Dictionary&&) = default;
  Dictionary& operator=(Dictionary&&) = default;

  /// Interns a term, returning its id (existing id if already present).
  TermId Intern(const Term& term) { return Intern(TermView(term)); }

  /// Interns a viewed term through heterogeneous lookup: the hit path (term
  /// already present) does zero allocations; the miss path materializes the
  /// Term once.
  TermId Intern(const TermView& term);

  /// Convenience: interns an IRI given by string.
  TermId InternIri(std::string_view iri) {
    return Intern(TermView::Iri(iri));
  }

  /// Looks up a term's id without interning; kInvalidTermId when absent.
  TermId Find(const Term& term) const { return Find(TermView(term)); }

  /// Heterogeneous lookup by view — no temporary Term, no allocations.
  TermId Find(const TermView& term) const;

  /// Looks up an IRI's id without interning; kInvalidTermId when absent.
  TermId FindIri(std::string_view iri) const {
    return Find(TermView::Iri(iri));
  }

  /// The term for a (valid) id.
  const Term& term(TermId id) const {
    RDFSR_CHECK_LT(id, terms_.size());
    return *terms_[id];
  }

  /// Number of interned terms.
  std::size_t size() const { return terms_.size(); }

  /// Pre-sizes the intern table for an expected term count (avoids rehash
  /// cascades during bulk loads).
  void Reserve(std::size_t terms) {
    ids_.reserve(terms);
    terms_.reserve(terms);
  }

 private:
  // Each term is stored once, as a map key; terms_ maps ids to the keys.
  // unordered_map nodes are stable across rehash and container moves, so the
  // pointers stay valid for the dictionary's lifetime. Transparent hash/equal
  // enable lookup by TermView (C++20 heterogeneous lookup) — the parser's
  // hot path does zero allocations for already-interned terms, and a miss
  // materializes the Term exactly once.
  std::unordered_map<Term, TermId, TermHash, TermEq> ids_;
  std::vector<const Term*> terms_;  // id -> interned term (key of ids_)
};

}  // namespace rdfsr::rdf

#endif  // RDFSR_RDF_DICTIONARY_H_
