// Dictionary encoding: interning of RDF terms to dense 32-bit ids.
//
// This is the standard triple-store trick (see the horizontal-database view of
// Section 2.1): all structural computation downstream works on integer ids; the
// strings are only needed at the I/O boundary.

#ifndef RDFSR_RDF_DICTIONARY_H_
#define RDFSR_RDF_DICTIONARY_H_

#include <cstdint>
#include <deque>
#include <unordered_map>

#include "rdf/term.h"
#include "util/check.h"

namespace rdfsr::rdf {

/// Dense id of an interned term. Valid ids are < Dictionary::size().
using TermId = std::uint32_t;

/// Sentinel for "no term".
inline constexpr TermId kInvalidTermId = static_cast<TermId>(-1);

/// Bidirectional Term <-> TermId map. Ids are assigned in interning order and
/// are stable for the dictionary's lifetime. Not thread-safe.
class Dictionary {
 public:
  Dictionary() = default;

  // Movable but not copyable: graphs share dictionaries by reference.
  Dictionary(const Dictionary&) = delete;
  Dictionary& operator=(const Dictionary&) = delete;
  Dictionary(Dictionary&&) = default;
  Dictionary& operator=(Dictionary&&) = default;

  /// Interns a term, returning its id (existing id if already present).
  TermId Intern(const Term& term);

  /// Convenience: interns an IRI given by string.
  TermId InternIri(const std::string& iri) { return Intern(Term::Iri(iri)); }

  /// Looks up a term's id without interning; kInvalidTermId when absent.
  TermId Find(const Term& term) const;

  /// Looks up an IRI's id without interning; kInvalidTermId when absent.
  TermId FindIri(const std::string& iri) const {
    return Find(Term::Iri(iri));
  }

  /// The term for a (valid) id.
  const Term& term(TermId id) const {
    RDFSR_CHECK_LT(id, terms_.size());
    return terms_[id];
  }

  /// Number of interned terms.
  std::size_t size() const { return terms_.size(); }

 private:
  std::deque<Term> terms_;  // deque: stable references across growth
  std::unordered_map<Term, TermId, TermHash> ids_;
};

}  // namespace rdfsr::rdf

#endif  // RDFSR_RDF_DICTIONARY_H_
