// Dictionary encoding: interning of RDF terms to dense 32-bit ids.
//
// This is the standard triple-store trick (see the horizontal-database view of
// Section 2.1): all structural computation downstream works on integer ids; the
// strings are only needed at the I/O boundary.
//
// Storage is a deque of Terms (id -> term, reference-stable across growth)
// plus a flat open-addressing slot index (hash -> id, linear probing, load
// factor < 1/2). Besides being allocation-lean, this layout is what enables
// the sharded-parse bulk merge (rdf/ntriples.cc): new terms are appended and
// filled in parallel, then published into the index by concurrent CAS inserts
// — every bulk term is distinct, so publication needs no equality probes and
// the slot layout (the only thing the interleaving can vary) is never
// observable through the lookup API.

#ifndef RDFSR_RDF_DICTIONARY_H_
#define RDFSR_RDF_DICTIONARY_H_

#include <cstdint>
#include <deque>
#include <string_view>
#include <vector>

#include "rdf/term.h"
#include "util/check.h"

namespace rdfsr::rdf {

/// Dense id of an interned term. Valid ids are < Dictionary::size().
using TermId = std::uint32_t;

/// Sentinel for "no term".
inline constexpr TermId kInvalidTermId = static_cast<TermId>(-1);

/// Bidirectional Term <-> TermId map. Ids are assigned in interning order and
/// are stable for the dictionary's lifetime. Not thread-safe, except for the
/// documented bulk-build protocol.
class Dictionary {
 public:
  Dictionary() = default;

  // Movable but not copyable: graphs share dictionaries by reference.
  Dictionary(const Dictionary&) = delete;
  Dictionary& operator=(const Dictionary&) = delete;
  Dictionary(Dictionary&&) = default;
  Dictionary& operator=(Dictionary&&) = default;

  /// Interns a term, returning its id (existing id if already present).
  TermId Intern(const Term& term) { return Intern(TermView(term)); }

  /// Interns a viewed term through heterogeneous lookup: the hit path (term
  /// already present) does zero allocations; the miss path materializes the
  /// Term once.
  TermId Intern(const TermView& term);

  /// Convenience: interns an IRI given by string.
  TermId InternIri(std::string_view iri) {
    return Intern(TermView::Iri(iri));
  }

  /// Looks up a term's id without interning; kInvalidTermId when absent.
  TermId Find(const Term& term) const { return Find(TermView(term)); }

  /// Heterogeneous lookup by view — no temporary Term, no allocations.
  TermId Find(const TermView& term) const;

  /// Looks up an IRI's id without interning; kInvalidTermId when absent.
  TermId FindIri(std::string_view iri) const {
    return Find(TermView::Iri(iri));
  }

  /// The term for a (valid) id.
  const Term& term(TermId id) const {
    RDFSR_CHECK_LT(id, terms_.size());
    return terms_[id];
  }

  /// Number of interned terms.
  std::size_t size() const { return terms_.size(); }

  /// Pre-sizes the intern table for an expected term count (avoids rehash
  /// cascades during bulk loads).
  void Reserve(std::size_t terms);

  // --- Sharded-merge bulk-build protocol (Graph::MergeShards) -------------
  // Usage: BulkAppend once (serial), fill every new slot with BulkSet and
  // publish disjoint id ranges with BulkIndex (both parallel), then resume
  // normal use. Until the protocol completes, lookups are undefined.
  //
  // Each step is a capability transfer rather than a lock: BulkAppend runs
  // with the caller holding exclusive ownership of the dictionary, the
  // ParallelFor fan-out hands each lane exclusive ownership of its id range
  // (BulkSet) plus shared CAS-claim access to the slot index (BulkIndex),
  // and the ParallelFor join returns full ownership to the caller. There is
  // no mutex for the thread-safety analysis to track across the transfer, so
  // the atomic claims inside BulkIndex carry `owned-by-phase` contracts
  // checked by the `atomic-ref` lint rule instead.

  /// Appends `count` empty term slots, returning the id of the first, and
  /// pre-grows the slot index to its final size (so BulkIndex never rehashes
  /// concurrently). Serial.
  TermId BulkAppend(std::size_t count);

  /// Fills a bulk-appended slot. The term must be distinct from every term
  /// the dictionary will hold. Safe to call concurrently for distinct ids.
  void BulkSet(TermId id, Term&& term) {
    RDFSR_CHECK_LT(id, terms_.size());
    terms_[id] = std::move(term);
  }

  /// Publishes filled bulk ids [begin, end) into the slot index via atomic
  /// claims. Safe to call concurrently for disjoint ranges.
  void BulkIndex(TermId begin, TermId end);

  /// Destructively moves out the term for `id` (shard dictionaries hand
  /// their strings to the merged dictionary this way). The dictionary's
  /// lookup index is stale afterwards; only term extraction remains valid.
  Term StealTerm(TermId id) {
    RDFSR_CHECK_LT(id, terms_.size());
    return std::move(terms_[id]);
  }

  /// Full round-trip validation (fatal on violation): Find(term(id)) == id
  /// for every interned id — the property the bulk-build protocol must
  /// re-establish before normal use resumes. O(size); audit builds run it
  /// after every parallel shard merge. Not valid on a dictionary whose terms
  /// were stolen.
  void CheckInvariants() const;

 private:
  /// Grows the slot index to `slots` entries (power of two) and reindexes
  /// every stored term. Serial.
  void Rehash(std::size_t slots);

  std::deque<Term> terms_;            // id -> term; stable references
  std::vector<std::uint32_t> slots_;  // open addressing: TermId or kInvalid
};

}  // namespace rdfsr::rdf

#endif  // RDFSR_RDF_DICTIONARY_H_
