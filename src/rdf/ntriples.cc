#include "rdf/ntriples.h"

#include <sys/stat.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <memory>
#include <ostream>
#include <sstream>
#include <utility>
#include <vector>

#include "util/failpoint.h"
#include "util/thread_pool.h"

namespace rdfsr::rdf {

namespace {

// Local early-return helper (kept file-private; not part of the public API).
#define RETURN_IF_ERROR(expr)                \
  do {                                       \
    ::rdfsr::Status _st = (expr);            \
    if (!_st.ok()) return _st;               \
  } while (0)

/// Cursor over a single N-Triples line, producing TermViews. Unescaped terms
/// view directly into the line; escaped forms decode into one of four scratch
/// buffers (subject, predicate, object lexical, object datatype) that are
/// reused across lines, so steady-state parsing does not allocate here.
/// Reusable: construct once, Reset() per line.
class LineParser {
 public:
  void Reset(std::string_view line, std::size_t line_no) {
    line_ = line;
    line_no_ = line_no;
    pos_ = 0;
    scratch_used_ = 0;
  }

  Status ParseTriple(TermView* s, TermView* p, TermView* o) {
    SkipWs();
    RETURN_IF_ERROR(ParseSubject(s));
    SkipWs();
    RETURN_IF_ERROR(ParseIriTerm(p, "predicate"));
    SkipWs();
    RETURN_IF_ERROR(ParseObject(o));
    SkipWs();
    if (!Consume('.')) return Error("expected '.' terminating triple");
    SkipWs();
    if (pos_ != line_.size() && line_[pos_] != '#') {
      return Error("trailing characters after '.'");
    }
    return Status::OK();
  }

 private:
  Status ParseSubject(TermView* out) {
    if (Peek() == '<') return ParseIriTerm(out, "subject");
    if (Peek() == '_') return ParseBlank(out);
    return Error("subject must be an IRI or blank node");
  }

  Status ParseObject(TermView* out) {
    if (Peek() == '<') return ParseIriTerm(out, "object");
    if (Peek() == '_') return ParseBlank(out);
    if (Peek() == '"') return ParseLiteral(out);
    return Error("object must be an IRI, blank node, or literal");
  }

  Status ParseIriTerm(TermView* out, const char* role) {
    if (!Consume('<')) {
      return Error(std::string("expected '<' starting ") + role);
    }
    const std::size_t start = pos_;
    std::string* scratch = nullptr;
    while (pos_ < line_.size() && line_[pos_] != '>') {
      const char c = line_[pos_];
      if (c == ' ' || c == '\t') return Error("whitespace inside IRI");
      if (c == '\\') {
        // IRIs only allow \u / \U escapes.
        if (scratch == nullptr) {
          scratch = NewScratch();
          scratch->assign(line_.substr(start, pos_ - start));
        }
        ++pos_;  // consume the backslash; cursor sits on the escape letter
        RETURN_IF_ERROR(DecodeUnicodeEscape(scratch));
        continue;
      }
      if (scratch != nullptr) scratch->push_back(c);
      ++pos_;
    }
    if (!Consume('>')) return Error("unterminated IRI");
    const std::string_view iri =
        scratch != nullptr ? std::string_view(*scratch)
                           : line_.substr(start, pos_ - 1 - start);
    if (iri.empty()) return Error("empty IRI");
    *out = TermView(TermKind::kIri, iri);
    return Status::OK();
  }

  Status ParseBlank(TermView* out) {
    if (!Consume('_') || !Consume(':')) {
      return Error("expected '_:' starting blank node");
    }
    const std::size_t start = pos_;
    while (pos_ < line_.size() && !IsWs(line_[pos_]) && line_[pos_] != '.') {
      ++pos_;
    }
    const std::string_view label = line_.substr(start, pos_ - start);
    if (label.empty()) return Error("empty blank node label");
    *out = TermView(TermKind::kBlank, label);
    return Status::OK();
  }

  Status ParseLiteral(TermView* out) {
    if (!Consume('"')) return Error("expected '\"' starting literal");
    const std::size_t start = pos_;
    std::string* scratch = nullptr;
    bool closed = false;
    while (pos_ < line_.size()) {
      const char c = line_[pos_];
      if (c == '"') {
        ++pos_;
        closed = true;
        break;
      }
      if (c == '\\') {
        if (scratch == nullptr) {
          scratch = NewScratch();
          scratch->assign(line_.substr(start, pos_ - start));
        }
        ++pos_;  // consume the backslash
        if (pos_ >= line_.size()) return Error("dangling escape in literal");
        const char e = line_[pos_];
        switch (e) {
          case 't':
            scratch->push_back('\t');
            ++pos_;
            break;
          case 'b':
            scratch->push_back('\b');
            ++pos_;
            break;
          case 'n':
            scratch->push_back('\n');
            ++pos_;
            break;
          case 'r':
            scratch->push_back('\r');
            ++pos_;
            break;
          case 'f':
            scratch->push_back('\f');
            ++pos_;
            break;
          case '"':
            scratch->push_back('"');
            ++pos_;
            break;
          case '\'':
            scratch->push_back('\'');
            ++pos_;
            break;
          case '\\':
            scratch->push_back('\\');
            ++pos_;
            break;
          case 'u':
          case 'U':
            // Cursor already sits on the escape letter.
            RETURN_IF_ERROR(DecodeUnicodeEscape(scratch));
            break;
          default:
            return Error(std::string("invalid escape '\\") + e + "'");
        }
        continue;
      }
      if (scratch != nullptr) scratch->push_back(c);
      ++pos_;
    }
    if (!closed) return Error("unterminated literal");
    const std::string_view lex =
        scratch != nullptr ? std::string_view(*scratch)
                           : line_.substr(start, pos_ - 1 - start);

    std::string_view lang, datatype;
    if (Peek() == '@') {
      ++pos_;
      const std::size_t lang_start = pos_;
      while (pos_ < line_.size() &&
             (std::isalnum(static_cast<unsigned char>(line_[pos_])) ||
              line_[pos_] == '-')) {
        ++pos_;
      }
      lang = line_.substr(lang_start, pos_ - lang_start);
      if (lang.empty()) return Error("empty language tag");
    } else if (Peek() == '^') {
      ++pos_;
      if (!Consume('^')) return Error("expected '^^' before datatype");
      TermView dt;
      RETURN_IF_ERROR(ParseIriTerm(&dt, "datatype"));
      datatype = dt.lexical;
    }
    *out = TermView(TermKind::kLiteral, lex, datatype, lang);
    return Status::OK();
  }

  /// Decodes \uXXXX or \UXXXXXXXX, appending UTF-8 to *out. The cursor must
  /// sit on the escape letter ('u' or 'U'); the backslash has already been
  /// consumed.
  Status DecodeUnicodeEscape(std::string* out) {
    if (pos_ >= line_.size()) return Error("dangling unicode escape");
    char kind = line_[pos_++];
    int digits = kind == 'u' ? 4 : kind == 'U' ? 8 : -1;
    if (digits < 0) return Error("invalid escape in IRI");
    if (pos_ + digits > line_.size()) return Error("truncated unicode escape");
    std::uint32_t cp = 0;
    for (int i = 0; i < digits; ++i) {
      char c = line_[pos_++];
      cp <<= 4;
      if (c >= '0' && c <= '9') {
        cp |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        cp |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        cp |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        return Error("invalid hex digit in unicode escape");
      }
    }
    // Encode code point as UTF-8.
    if (cp <= 0x7f) {
      out->push_back(static_cast<char>(cp));
    } else if (cp <= 0x7ff) {
      out->push_back(static_cast<char>(0xc0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3f)));
    } else if (cp <= 0xffff) {
      out->push_back(static_cast<char>(0xe0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3f)));
    } else if (cp <= 0x10ffff) {
      out->push_back(static_cast<char>(0xf0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3f)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3f)));
    } else {
      return Error("unicode escape out of range");
    }
    return Status::OK();
  }

  static bool IsWs(char c) { return c == ' ' || c == '\t' || c == '\r'; }
  void SkipWs() {
    while (pos_ < line_.size() && IsWs(line_[pos_])) ++pos_;
  }
  char Peek() const { return pos_ < line_.size() ? line_[pos_] : '\0'; }
  bool Consume(char c) {
    if (Peek() != c) return false;
    ++pos_;
    return true;
  }
  Status Error(const std::string& msg) const {
    return Status::ParseError("line " + std::to_string(line_no_) + ": " + msg);
  }

  std::string* NewScratch() {
    RDFSR_CHECK_LT(scratch_used_, kMaxScratch);
    return &scratch_[scratch_used_++];
  }

  static constexpr int kMaxScratch = 4;  // subject, predicate, lexical, datatype

  std::string_view line_;
  std::size_t line_no_ = 0;
  std::size_t pos_ = 0;
  std::string scratch_[kMaxScratch];
  int scratch_used_ = 0;
};

/// Iterates the lines of `text`, invoking sink(s, p, o) per triple. Line
/// numbers are 1-based and offset by `first_line_no` (sharded chunks pass the
/// global number of their first line). Static dispatch on the sink keeps the
/// per-triple cost free of std::function indirection on the graph hot path.
///
/// With max_errors > 0 the loop runs in skip-and-collect mode: malformed
/// lines are skipped and recorded in `diags` (when non-null; at most
/// max_errors entries) until the budget is exceeded, at which point the loop
/// aborts with kParseError. The cancel token is polled every few thousand
/// lines; a trip unwinds with the sink's output so far intact.
template <typename Sink>
Status ParseLinesInto(std::string_view text, std::size_t first_line_no,
                      Sink&& sink, std::size_t max_errors = 0,
                      std::vector<ParseDiagnostic>* diags = nullptr,
                      const util::CancellationToken& cancel = {}) {
  LineParser parser;
  util::PeriodicCheck check(cancel, 4096);
  std::size_t errors = 0;
  std::size_t line_no = first_line_no;
  std::size_t start = 0;
  while (start < text.size()) {
    if (check.ShouldStop()) return check.token().status();
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = text.substr(start, end - start);
    const std::size_t current_line = line_no;
    ++line_no;
    start = end + 1;
    // Strip leading whitespace; skip blank lines and comment lines.
    std::size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string_view::npos) continue;
    if (line[first] == '#') continue;
    TermView s, p, o;
    parser.Reset(line, current_line);
    Status st = parser.ParseTriple(&s, &p, &o);
    if (!st.ok()) {
      if (max_errors == 0) return st;
      ++errors;
      if (errors > max_errors) {
        return Status::ParseError(
            "too many parse errors (more than max_errors=" +
            std::to_string(max_errors) + "); last: " + st.message());
      }
      if (diags != nullptr && diags->size() < max_errors) {
        diags->push_back(ParseDiagnostic{current_line, st.message()});
      }
      continue;
    }
    sink(s, p, o);
  }
  return Status::OK();
}

/// Splits [0, size) into up to `shards` chunks whose boundaries sit just
/// after a '\n', so no line straddles two chunks.
std::vector<std::pair<std::size_t, std::size_t>> SplitAtLines(
    std::string_view text, int shards) {
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  const std::size_t target = text.size() / static_cast<std::size_t>(shards);
  std::size_t begin = 0;
  for (int i = 0; i < shards && begin < text.size(); ++i) {
    std::size_t end = text.size();
    if (i + 1 < shards) {
      end = text.find('\n', std::min(text.size(), begin + target));
      end = end == std::string_view::npos ? text.size() : end + 1;
    }
    chunks.emplace_back(begin, end);
    begin = end;
  }
  return chunks;
}

/// Sharded parse: each worker parses its chunk into a private graph with a
/// private dictionary; the shards then merge into `graph` in chunk order,
/// interning each shard's terms in shard-local id order. Both orders coincide
/// with first-occurrence order in the byte stream, so the merged graph is
/// bit-identical (term ids, triple order) to a sequential parse. The merge
/// itself runs on the pool (Graph::MergeShards) when `graph` starts empty;
/// appends to a non-empty graph fall back to the serial id-remap loop.
Status ParseShardedInto(std::string_view text, Graph* graph, int threads,
                        util::ThreadPool* pool, const ParseOptions& options) {
  const auto chunks = SplitAtLines(text, threads);

  // Global line number of each chunk's first line: parallel per-chunk
  // newline counts (memchr speed, but serial it costs as much as a parse
  // shard on large inputs), then a serial prefix. The total doubles as the
  // pre-size estimate for the serial merge path.
  std::vector<std::size_t> chunk_lines(chunks.size());
  pool->ParallelFor(chunks.size(), [&](std::size_t cb, std::size_t ce) {
    for (std::size_t i = cb; i < ce; ++i) {
      const auto [begin, end] = chunks[i];
      chunk_lines[i] = static_cast<std::size_t>(
          std::count(text.begin() + static_cast<std::ptrdiff_t>(begin),
                     text.begin() + static_cast<std::ptrdiff_t>(end), '\n'));
    }
  });
  std::vector<std::size_t> first_line(chunks.size());
  std::size_t line = 1;
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    first_line[i] = line;
    line += chunk_lines[i];
  }

  std::vector<Graph> shards(chunks.size());
  std::vector<Status> shard_status(chunks.size(), Status::OK());
  // Per-shard diagnostic lists carry global line numbers (first_line[i]
  // offsets) and double as the per-shard error counters; each shard gets the
  // full budget locally and the global total is re-checked in chunk order
  // below.
  std::vector<std::vector<ParseDiagnostic>> shard_diags(chunks.size());
  pool->ParallelFor(chunks.size(), [&](std::size_t cb, std::size_t ce) {
    for (std::size_t i = cb; i < ce; ++i) {
      const auto [begin, end] = chunks[i];
      Graph& local = shards[i];
      shard_status[i] = ParseLinesInto(
          text.substr(begin, end - begin), first_line[i],
          [&local](const TermView& s, const TermView& p, const TermView& o) {
            local.Add(s, p, o);
          },
          options.max_errors,
          options.max_errors > 0 ? &shard_diags[i] : nullptr, options.cancel);
    }
  });

  // Merge in chunk order up to and including the first failing shard (lowest
  // line number), keeping the triples parsed before the error — same
  // partial-append semantics as the sequential parser. In tolerant mode a
  // shard that stayed under budget locally can still tip the global total
  // over max_errors; that counts as failing at that shard.
  std::size_t merge_count = shards.size();
  Status result = Status::OK();
  std::size_t total_errors = 0;
  for (std::size_t i = 0; i < shards.size(); ++i) {
    if (!shard_status[i].ok()) {
      merge_count = i + 1;
      result = shard_status[i];
      break;
    }
    if (options.max_errors > 0) {
      total_errors += shard_diags[i].size();
      if (total_errors > options.max_errors) {
        merge_count = i + 1;
        result = Status::ParseError(
            "too many parse errors (more than max_errors=" +
            std::to_string(options.max_errors) + ")");
        break;
      }
    }
  }
  if (options.max_errors > 0 && options.diagnostics != nullptr) {
    // Chunk order == line order; bounded by max_errors even on failure.
    for (std::size_t i = 0; i < merge_count; ++i) {
      for (ParseDiagnostic& d : shard_diags[i]) {
        if (options.diagnostics->size() >= options.max_errors) break;
        options.diagnostics->push_back(std::move(d));
      }
    }
  }

  if (graph->empty() && graph->dict().size() == 0) {
    Status merge_st =
        graph->MergeShards(&shards, merge_count, pool, options.cancel);
    if (!merge_st.ok()) return merge_st;
    return result;
  }
  if (text.size() >= (1u << 20)) graph->Reserve(line, line);
  std::vector<TermId> remap;
  for (std::size_t s = 0; s < merge_count; ++s) {
    const Dictionary& shard_dict = shards[s].dict();
    remap.resize(shard_dict.size());
    for (TermId id = 0; id < shard_dict.size(); ++id) {
      remap[id] = graph->dict().Intern(shard_dict.term(id));
    }
    for (const Triple& t : shards[s].triples()) {
      graph->Add(Triple{remap[t.subject], remap[t.predicate], remap[t.object]});
    }
  }
  return result;
}

}  // namespace

int EffectiveParseThreads(const ParseOptions& options, std::size_t input_bytes) {
  int threads = util::ThreadPool::ResolveThreads(options.threads);
  if (threads > 1 && options.min_chunk_bytes > 0) {
    const std::size_t max_useful = input_bytes / options.min_chunk_bytes;
    if (static_cast<std::size_t>(threads) > max_useful) {
      threads = static_cast<int>(std::max<std::size_t>(max_useful, 1));
    }
  }
  return threads;
}

Status ParseNTriplesInto(std::string_view text, Graph* graph) {
  return ParseNTriplesInto(text, graph, ParseOptions{});
}

Status ParseNTriplesInto(std::string_view text, Graph* graph,
                         const ParseOptions& options) {
  RDFSR_CHECK(graph != nullptr);
  const int threads = EffectiveParseThreads(options, text.size());
  if (threads > 1) {
    // One pool drives the whole sharded path: chunk line counts, the shard
    // parses, and every merge phase. `threads - 1` workers plus the calling
    // thread gives exactly `threads` lanes.
    util::ThreadPool* pool = options.pool;
    std::unique_ptr<util::ThreadPool> owned;
    if (pool == nullptr) {
      owned = std::make_unique<util::ThreadPool>(threads - 1);
      pool = owned.get();
    }
    return ParseShardedInto(text, graph, threads, pool, options);
  }
  // Pre-size the graph from a newline count (memchr-speed pass): line count
  // upper-bounds the triple count, and distinct terms rarely exceed lines
  // (subjects and predicates repeat; objects are the unique tail).
  if (text.size() >= (1u << 20)) {
    const auto lines = static_cast<std::size_t>(
        std::count(text.begin(), text.end(), '\n') + 1);
    graph->Reserve(lines, lines);
  }
  return ParseLinesInto(
      text, 1,
      [graph](const TermView& s, const TermView& p, const TermView& o) {
        graph->Add(s, p, o);
      },
      options.max_errors, options.diagnostics, options.cancel);
}

Status ParseNTriplesStream(std::string_view text, const TripleSink& sink) {
  RDFSR_CHECK(sink != nullptr);
  return ParseLinesInto(text, 1, sink);
}

Result<Graph> ParseNTriples(std::string_view text) {
  Graph g;
  Status st = ParseNTriplesInto(text, &g);
  if (!st.ok()) return st;
  return g;
}

Result<std::string> ReadFileToString(const std::string& path) {
  RDFSR_FAILPOINT("ntriples.read-file");
  struct stat sb;
  if (::stat(path.c_str(), &sb) != 0) {
    const int err = errno;
    return Status::NotFound("cannot open file: " + path + ": " +
                            std::strerror(err));
  }
  if (S_ISDIR(sb.st_mode)) {
    return Status::InvalidArgument("not a regular file (is a directory): " +
                                   path);
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    const int err = errno;
    return Status::NotFound("cannot open file: " + path + ": " +
                            (err != 0 ? std::strerror(err) : "open failed"));
  }
  const auto size = static_cast<std::streamoff>(sb.st_size);
  std::string buf(static_cast<std::size_t>(size), '\0');
  if (size > 0 && !in.read(buf.data(), size)) {
    // gcount() says how far the read got before the stream failed — a
    // truncated device file or concurrent truncation must surface as an
    // error, never as a silently shorter graph.
    return Status::Internal(
        "short read on file: " + path + ": got " +
        std::to_string(in.gcount()) + " of " + std::to_string(size) +
        " bytes");
  }
  return buf;
}

Result<Graph> ParseNTriplesFile(const std::string& path,
                                const ParseOptions& options) {
  auto text = ReadFileToString(path);
  if (!text.ok()) return text.status();
  Graph g;
  Status st = ParseNTriplesInto(*text, &g, options);
  if (!st.ok()) return st;
  return g;
}

void WriteNTriples(const Graph& graph, std::ostream* out) {
  RDFSR_CHECK(out != nullptr);
  const Dictionary& dict = graph.dict();
  for (const Triple& t : graph.triples()) {
    *out << dict.term(t.subject).ToString() << " "
         << dict.term(t.predicate).ToString() << " "
         << dict.term(t.object).ToString() << " .\n";
  }
}

std::string WriteNTriples(const Graph& graph) {
  std::ostringstream out;
  WriteNTriples(graph, &out);
  return out.str();
}

}  // namespace rdfsr::rdf
