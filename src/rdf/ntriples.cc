#include "rdf/ntriples.h"

#include <fstream>
#include <ostream>
#include <sstream>

namespace rdfsr::rdf {

namespace {

// Local early-return helper (kept file-private; not part of the public API).
#define RETURN_IF_ERROR(expr)                \
  do {                                       \
    ::rdfsr::Status _st = (expr);            \
    if (!_st.ok()) return _st;               \
  } while (0)

/// Cursor over a single N-Triples line.
class LineParser {
 public:
  LineParser(std::string_view line, std::size_t line_no)
      : line_(line), line_no_(line_no) {}

  Status ParseTriple(Term* s, Term* p, Term* o) {
    SkipWs();
    RETURN_IF_ERROR(ParseSubject(s));
    SkipWs();
    RETURN_IF_ERROR(ParseIriTerm(p, "predicate"));
    SkipWs();
    RETURN_IF_ERROR(ParseObject(o));
    SkipWs();
    if (!Consume('.')) return Error("expected '.' terminating triple");
    SkipWs();
    if (pos_ != line_.size() && line_[pos_] != '#') {
      return Error("trailing characters after '.'");
    }
    return Status::OK();
  }

 private:
  Status ParseSubject(Term* out) {
    if (Peek() == '<') return ParseIriTerm(out, "subject");
    if (Peek() == '_') return ParseBlank(out);
    return Error("subject must be an IRI or blank node");
  }

  Status ParseObject(Term* out) {
    if (Peek() == '<') return ParseIriTerm(out, "object");
    if (Peek() == '_') return ParseBlank(out);
    if (Peek() == '"') return ParseLiteral(out);
    return Error("object must be an IRI, blank node, or literal");
  }

  Status ParseIriTerm(Term* out, const char* role) {
    if (!Consume('<')) {
      return Error(std::string("expected '<' starting ") + role);
    }
    std::string iri;
    while (pos_ < line_.size() && line_[pos_] != '>') {
      char c = line_[pos_++];
      if (c == ' ' || c == '\t') return Error("whitespace inside IRI");
      if (c == '\\') {
        // IRIs only allow \u / \U escapes.
        std::string decoded;
        RETURN_IF_ERROR(DecodeUnicodeEscape(&decoded));
        iri += decoded;
        continue;
      }
      iri.push_back(c);
    }
    if (!Consume('>')) return Error("unterminated IRI");
    if (iri.empty()) return Error("empty IRI");
    *out = Term::Iri(std::move(iri));
    return Status::OK();
  }

  Status ParseBlank(Term* out) {
    if (!Consume('_') || !Consume(':')) {
      return Error("expected '_:' starting blank node");
    }
    std::string label;
    while (pos_ < line_.size() && !IsWs(line_[pos_]) && line_[pos_] != '.') {
      label.push_back(line_[pos_++]);
    }
    if (label.empty()) return Error("empty blank node label");
    *out = Term::Blank(std::move(label));
    return Status::OK();
  }

  Status ParseLiteral(Term* out) {
    if (!Consume('"')) return Error("expected '\"' starting literal");
    std::string lex;
    bool closed = false;
    while (pos_ < line_.size()) {
      char c = line_[pos_++];
      if (c == '"') {
        closed = true;
        break;
      }
      if (c == '\\') {
        if (pos_ >= line_.size()) return Error("dangling escape in literal");
        char e = line_[pos_];
        switch (e) {
          case 't':
            lex.push_back('\t');
            ++pos_;
            break;
          case 'b':
            lex.push_back('\b');
            ++pos_;
            break;
          case 'n':
            lex.push_back('\n');
            ++pos_;
            break;
          case 'r':
            lex.push_back('\r');
            ++pos_;
            break;
          case 'f':
            lex.push_back('\f');
            ++pos_;
            break;
          case '"':
            lex.push_back('"');
            ++pos_;
            break;
          case '\'':
            lex.push_back('\'');
            ++pos_;
            break;
          case '\\':
            lex.push_back('\\');
            ++pos_;
            break;
          case 'u':
          case 'U': {
            // Cursor already sits on the escape letter.
            std::string decoded;
            RETURN_IF_ERROR(DecodeUnicodeEscape(&decoded));
            lex += decoded;
            break;
          }
          default:
            return Error(std::string("invalid escape '\\") + e + "'");
        }
        continue;
      }
      lex.push_back(c);
    }
    if (!closed) return Error("unterminated literal");

    std::string lang, datatype;
    if (Peek() == '@') {
      ++pos_;
      while (pos_ < line_.size() &&
             (std::isalnum(static_cast<unsigned char>(line_[pos_])) ||
              line_[pos_] == '-')) {
        lang.push_back(line_[pos_++]);
      }
      if (lang.empty()) return Error("empty language tag");
    } else if (Peek() == '^') {
      ++pos_;
      if (!Consume('^')) return Error("expected '^^' before datatype");
      Term dt;
      RETURN_IF_ERROR(ParseIriTerm(&dt, "datatype"));
      datatype = dt.lexical;
    }
    *out = Term::Literal(std::move(lex), std::move(datatype), std::move(lang));
    return Status::OK();
  }

  /// Decodes \uXXXX or \UXXXXXXXX to UTF-8. The cursor must sit on the escape
  /// letter ('u' or 'U'); the backslash has already been consumed.
  Status DecodeUnicodeEscape(std::string* out) {
    if (pos_ >= line_.size()) return Error("dangling unicode escape");
    char kind = line_[pos_++];
    int digits = kind == 'u' ? 4 : kind == 'U' ? 8 : -1;
    if (digits < 0) return Error("invalid escape in IRI");
    if (pos_ + digits > line_.size()) return Error("truncated unicode escape");
    std::uint32_t cp = 0;
    for (int i = 0; i < digits; ++i) {
      char c = line_[pos_++];
      cp <<= 4;
      if (c >= '0' && c <= '9') {
        cp |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        cp |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        cp |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        return Error("invalid hex digit in unicode escape");
      }
    }
    // Encode code point as UTF-8.
    if (cp <= 0x7f) {
      out->push_back(static_cast<char>(cp));
    } else if (cp <= 0x7ff) {
      out->push_back(static_cast<char>(0xc0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3f)));
    } else if (cp <= 0xffff) {
      out->push_back(static_cast<char>(0xe0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3f)));
    } else if (cp <= 0x10ffff) {
      out->push_back(static_cast<char>(0xf0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3f)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3f)));
    } else {
      return Error("unicode escape out of range");
    }
    return Status::OK();
  }

  static bool IsWs(char c) { return c == ' ' || c == '\t' || c == '\r'; }
  void SkipWs() {
    while (pos_ < line_.size() && IsWs(line_[pos_])) ++pos_;
  }
  char Peek() const { return pos_ < line_.size() ? line_[pos_] : '\0'; }
  bool Consume(char c) {
    if (Peek() != c) return false;
    ++pos_;
    return true;
  }
  Status Error(const std::string& msg) const {
    return Status::ParseError("line " + std::to_string(line_no_) + ": " + msg);
  }

  std::string_view line_;
  std::size_t line_no_;
  std::size_t pos_ = 0;
};

}  // namespace

Status ParseNTriplesInto(std::string_view text, Graph* graph) {
  RDFSR_CHECK(graph != nullptr);
  std::size_t line_no = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = text.substr(start, end - start);
    ++line_no;
    start = end + 1;
    // Strip leading whitespace; skip blank lines and comment lines.
    std::size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string_view::npos) continue;
    if (line[first] == '#') continue;
    Term s, p, o;
    LineParser parser(line, line_no);
    Status st = parser.ParseTriple(&s, &p, &o);
    if (!st.ok()) return st;
    graph->Add(s, p, o);
  }
  return Status::OK();
}

Result<Graph> ParseNTriples(std::string_view text) {
  Graph g;
  Status st = ParseNTriplesInto(text, &g);
  if (!st.ok()) return st;
  return g;
}

Result<Graph> ParseNTriplesFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseNTriples(buf.str());
}

void WriteNTriples(const Graph& graph, std::ostream* out) {
  RDFSR_CHECK(out != nullptr);
  const Dictionary& dict = graph.dict();
  for (const Triple& t : graph.triples()) {
    *out << dict.term(t.subject).ToString() << " "
         << dict.term(t.predicate).ToString() << " "
         << dict.term(t.object).ToString() << " .\n";
  }
}

std::string WriteNTriples(const Graph& graph) {
  std::ostringstream out;
  WriteNTriples(graph, &out);
  return out.str();
}

}  // namespace rdfsr::rdf
