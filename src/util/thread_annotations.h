// Clang Thread Safety Analysis capability annotations (Hutchins, Ballman,
// Sutherland, "C/C++ Thread Safety Analysis"). The macros attach lock
// requirements to data and functions so the discipline the comments used to
// state — "queue_ is only touched under mu_", "ParseSpecLocked requires the
// registry mutex" — becomes a compile-time proof:
//
//   util::Mutex mu;
//   int balance RDFSR_GUARDED_BY(mu);        // reads/writes need mu held
//   void Credit(int n) RDFSR_REQUIRES(mu);   // callers must hold mu
//
// Enforcement is opt-in per build: `cmake -DRDFSR_THREAD_SAFETY=ON` (Clang
// only) promotes -Wthread-safety and -Wthread-safety-beta to errors, and the
// CI `thread-safety` job runs that configuration on every push. Off Clang the
// macros expand to nothing, so GCC builds are unaffected.
//
// This is the static half of the repo's race coverage: the TSan CI job proves
// the interleavings the test suite happens to execute are race-free; the
// analysis here proves every lock-discipline violation the annotations can
// express is absent from all paths, executed or not. What the analysis cannot
// see — the barrier-separated phase ownership of `std::atomic_ref` slot
// claims in Graph::MergeShards / Dictionary::BulkIndex — is covered by the
// `atomic-ref` lint rule instead (tools/lint/rdfsr_lint.py), which makes
// every lock-free site carry a written atomic-ref waiver stating its
// ownership contract.

#ifndef RDFSR_UTIL_THREAD_ANNOTATIONS_H_
#define RDFSR_UTIL_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && !defined(SWIG)
#define RDFSR_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define RDFSR_THREAD_ANNOTATION__(x)  // no-op off Clang
#endif

/// Marks a class as a capability (a lockable resource). The string names the
/// capability kind in diagnostics, e.g. RDFSR_CAPABILITY("mutex").
#define RDFSR_CAPABILITY(x) RDFSR_THREAD_ANNOTATION__(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases a
/// capability (util::MutexLock).
#define RDFSR_SCOPED_CAPABILITY RDFSR_THREAD_ANNOTATION__(scoped_lockable)

/// Data members: reads and writes require the named capability to be held.
#define RDFSR_GUARDED_BY(x) RDFSR_THREAD_ANNOTATION__(guarded_by(x))

/// Pointer members: dereferencing requires the capability (the pointer value
/// itself is unguarded).
#define RDFSR_PT_GUARDED_BY(x) RDFSR_THREAD_ANNOTATION__(pt_guarded_by(x))

/// Lock-ordering declarations between capabilities (deadlock prevention).
#define RDFSR_ACQUIRED_BEFORE(...) \
  RDFSR_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))
#define RDFSR_ACQUIRED_AFTER(...) \
  RDFSR_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))

/// Function precondition: the capability is held on entry and still held on
/// exit (the "Locked" suffix convention in this repo).
#define RDFSR_REQUIRES(...) \
  RDFSR_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))
#define RDFSR_REQUIRES_SHARED(...) \
  RDFSR_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))

/// Function effect: acquires the capability (not held on entry, held on
/// exit). With no argument, applies to `this`.
#define RDFSR_ACQUIRE(...) \
  RDFSR_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#define RDFSR_ACQUIRE_SHARED(...) \
  RDFSR_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))

/// Function effect: releases the capability (held on entry, not on exit).
#define RDFSR_RELEASE(...) \
  RDFSR_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
#define RDFSR_RELEASE_SHARED(...) \
  RDFSR_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))
#define RDFSR_RELEASE_GENERIC(...) \
  RDFSR_THREAD_ANNOTATION__(release_generic_capability(__VA_ARGS__))

/// Function effect: acquires the capability iff the return value equals the
/// first macro argument, e.g. RDFSR_TRY_ACQUIRE(true).
#define RDFSR_TRY_ACQUIRE(...) \
  RDFSR_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))

/// Function precondition: the capability must NOT be held (guards against
/// self-deadlock on non-reentrant mutexes).
#define RDFSR_EXCLUDES(...) \
  RDFSR_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held (informs the analysis
/// without acquiring anything).
#define RDFSR_ASSERT_CAPABILITY(x) \
  RDFSR_THREAD_ANNOTATION__(assert_capability(x))

/// Accessor functions returning a reference to a capability.
#define RDFSR_RETURN_CAPABILITY(x) RDFSR_THREAD_ANNOTATION__(lock_returned(x))

/// Escape hatch: disables the analysis inside one function. Every use must
/// say why the discipline holds anyway.
#define RDFSR_NO_THREAD_SAFETY_ANALYSIS \
  RDFSR_THREAD_ANNOTATION__(no_thread_safety_analysis)

#endif  // RDFSR_UTIL_THREAD_ANNOTATIONS_H_
