// Wall-clock timing for the benchmark harness (Figure 8 runtime series).

#ifndef RDFSR_UTIL_TIMER_H_
#define RDFSR_UTIL_TIMER_H_

#include <chrono>

namespace rdfsr {

/// Measures elapsed wall time since construction or the last Reset().
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds.
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds.
  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace rdfsr

#endif  // RDFSR_UTIL_TIMER_H_
