// Least-squares curve fitting for the Figure 8 scalability analysis.
//
// The paper fits runtime ~ s^2.53 against signature count (power law) and
// runtime ~ e^{0.28 p} against property count (exponential). Both reduce to
// ordinary least squares in log space; we reproduce that here and report R^2.

#ifndef RDFSR_UTIL_FIT_H_
#define RDFSR_UTIL_FIT_H_

#include <vector>

namespace rdfsr {

/// y ≈ a * x^b (fit in log-log space). r2 is the coefficient of determination of
/// the underlying linear fit.
struct PowerFit {
  double a = 0.0;
  double b = 0.0;
  double r2 = 0.0;
};

/// y ≈ a * e^{b x} (fit in semi-log space).
struct ExpFit {
  double a = 0.0;
  double b = 0.0;
  double r2 = 0.0;
};

/// Simple linear regression y ≈ a + b x.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r2 = 0.0;
};

/// Ordinary least squares; xs and ys must have equal size >= 2.
LinearFit FitLinear(const std::vector<double>& xs, const std::vector<double>& ys);

/// Power-law fit; all xs and ys must be > 0 (points violating this are skipped).
PowerFit FitPower(const std::vector<double>& xs, const std::vector<double>& ys);

/// Exponential fit; all ys must be > 0 (points violating this are skipped).
ExpFit FitExponential(const std::vector<double>& xs,
                      const std::vector<double>& ys);

}  // namespace rdfsr

#endif  // RDFSR_UTIL_FIT_H_
