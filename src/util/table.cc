#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/check.h"

namespace rdfsr {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  RDFSR_CHECK(!header_.empty());
}

void TextTable::AddRow(std::vector<std::string> row) {
  RDFSR_CHECK_EQ(row.size(), header_.size()) << "row arity mismatch";
  rows_.push_back(std::move(row));
}

void TextTable::AddSeparator() { rows_.emplace_back(); }

std::string TextTable::ToString() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto rule = [&] {
    std::string s = "+";
    for (std::size_t w : widths) s += std::string(w + 2, '-') + "+";
    s += "\n";
    return s;
  };
  auto line = [&](const std::vector<std::string>& cells) {
    std::string s = "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      s += " " + cells[c] + std::string(widths[c] - cells[c].size(), ' ') + " |";
    }
    s += "\n";
    return s;
  };

  std::ostringstream out;
  out << rule() << line(header_) << rule();
  for (const auto& row : rows_) {
    if (row.empty()) {
      out << rule();
    } else {
      out << line(row);
    }
  }
  out << rule();
  return out.str();
}

std::string FormatDouble(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string FormatCount(long long v) {
  std::string digits = std::to_string(v < 0 ? -v : v);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (v < 0) out.push_back('-');
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace rdfsr
