#include "util/failpoint.h"

#include <cstdint>
#include <cstdlib>
#include <map>
#include <string>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace rdfsr::util {

namespace {

struct Site {
  // Fire on every period-th hit, starting with the first: period == 1 means
  // "always" (name=error), period == floor(100/n) implements name=n%.
  // Both fields are part of the Registry::mu capability (the guarded map
  // owns its values): hits used to be a std::atomic bumped through a Site*
  // held past the lock, which raced a concurrent Arm/Clear rebuilding the
  // map — a use-after-free on the node. Counting under the lock closes that
  // and keeps the whole registry one annotated capability.
  std::uint64_t period = 1;
  std::uint64_t hits = 0;
};

struct Registry {
  Mutex mu;
  // std::map: stable addresses across insertion, no rehash invalidation.
  std::map<std::string, Site> sites RDFSR_GUARDED_BY(mu);
  bool env_loaded RDFSR_GUARDED_BY(mu) = false;
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: outlives all users
  return *r;
}

bool ParseSpecLocked(Registry& r, const std::string& spec)
    RDFSR_REQUIRES(r.mu) {
  r.sites.clear();
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t end = spec.find_first_of(",;", pos);
    if (end == std::string::npos) end = spec.size();
    const std::string entry = spec.substr(pos, end - pos);
    pos = end + 1;
    if (entry.empty()) continue;
    const std::size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) return false;
    const std::string name = entry.substr(0, eq);
    const std::string action = entry.substr(eq + 1);
    std::uint64_t period = 0;
    if (action == "error") {
      period = 1;
    } else if (!action.empty() && action.back() == '%') {
      char* parse_end = nullptr;
      const std::string digits = action.substr(0, action.size() - 1);
      const unsigned long long pct =
          std::strtoull(digits.c_str(), &parse_end, 10);
      if (digits.empty() || *parse_end != '\0' || pct == 0 || pct > 100) {
        return false;
      }
      period = 100 / pct;
      if (period == 0) period = 1;
    } else {
      return false;
    }
    r.sites[name].period = period;
  }
  return true;
}

void EnsureEnvLoadedLocked(Registry& r) RDFSR_REQUIRES(r.mu) {
  if (r.env_loaded) return;
  r.env_loaded = true;
  const char* env = std::getenv("RDFSR_FAILPOINTS");
  if (env != nullptr && *env != '\0') {
    // A malformed env spec arms nothing; the process still runs fault-free
    // rather than aborting, matching the "robustness layer" contract.
    if (!ParseSpecLocked(r, env)) r.sites.clear();
  }
}

}  // namespace

bool FailpointShouldFire(const char* name) {
  Registry& r = registry();
  MutexLock lock(r.mu);
  EnsureEnvLoadedLocked(r);
  auto it = r.sites.find(name);
  if (it == r.sites.end()) return false;
  // Hit numbering starts at 1; fire on hits 1, 1+period, 1+2*period, ... so a
  // sparse (n%) failpoint still fires on short runs and runs are replayable.
  const std::uint64_t hit = ++it->second.hits;
  return (hit - 1) % it->second.period == 0;
}

Status FailpointStatus(const char* name) {
  return Status::Internal(std::string("injected failure at failpoint '") +
                          name + "'");
}

bool ArmFailpointsFromSpec(const std::string& spec) {
  Registry& r = registry();
  MutexLock lock(r.mu);
  r.env_loaded = true;  // explicit arming overrides the environment
  const bool ok = ParseSpecLocked(r, spec);
  if (!ok) r.sites.clear();
  return ok;
}

void ClearFailpoints() {
  Registry& r = registry();
  MutexLock lock(r.mu);
  r.env_loaded = true;
  r.sites.clear();
}

}  // namespace rdfsr::util
