// A small fixed-size worker pool shared by every parallel path in the repo:
// the sharded N-Triples merge (rdf/ntriples.cc), the signature-index pair
// sort (schema/index_builder.cc), and the agglomerative row recomputation
// (core/greedy.cc).
//
// Design constraints, in order:
//  * Determinism. The pool never decides *what* runs — callers partition
//    work into tasks that write disjoint outputs, then combine them in a
//    fixed order on the calling thread. Nothing downstream observes
//    scheduling order.
//  * Exceptions propagate. A task that throws surfaces the exception to the
//    caller (through the Submit future, or rethrown by ParallelFor) instead
//    of terminating a detached worker.
//  * Reusable. Workers persist across Submit/ParallelFor calls, so per-merge
//    row recomputation in the agglomerative loop does not pay thread
//    creation per round.

#ifndef RDFSR_UTIL_THREAD_POOL_H_
#define RDFSR_UTIL_THREAD_POOL_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace rdfsr::util {

/// Fixed pool of `workers` threads plus the calling thread. A pool of 0
/// workers is valid and runs everything inline on the caller — call sites
/// construct one pool of (threads - 1) workers and get exactly `threads`
/// concurrent lanes through ParallelFor.
class ThreadPool {
 public:
  explicit ThreadPool(int workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (the calling thread is not counted).
  int workers() const { return static_cast<int>(threads_.size()); }

  /// Enqueues one task. The returned future rethrows any exception the task
  /// threw. With 0 workers the task runs inline before Submit returns.
  std::future<void> Submit(std::function<void()> fn);

  /// Runs fn(begin, end) over a contiguous partition of [0, n). The calling
  /// thread participates; chunks are handed out dynamically so uneven task
  /// costs balance. Returns after every chunk finished; rethrows the first
  /// observed task exception. Tasks must write disjoint outputs — the
  /// partition boundaries (not the schedule) are the only thing callers may
  /// rely on, and even those vary with n and worker count, so outputs must
  /// not depend on chunk shape either.
  void ParallelFor(std::size_t n,
                   const std::function<void(std::size_t, std::size_t)>& fn);

  /// Resolves a user-facing thread-count knob: values < 1 mean "one lane per
  /// hardware thread" (never less than 1).
  static int ResolveThreads(int requested);

 private:
  void WorkerLoop();

  // The pool's entire cross-thread state is one capability: mu_ guards the
  // task queue and the shutdown flag; cv_ signals queue transitions under
  // it. threads_ is not guarded — it is written once by the constructing
  // thread and joined by the destructor, never touched by workers.
  Mutex mu_;
  CondVar cv_;
  std::deque<std::packaged_task<void()>> queue_ RDFSR_GUARDED_BY(mu_);
  bool stop_ RDFSR_GUARDED_BY(mu_) = false;
  std::vector<std::thread> threads_;
};

}  // namespace rdfsr::util

#endif  // RDFSR_UTIL_THREAD_POOL_H_
