// Cooperative deadlines and cancellation.
//
// A Deadline couples an absolute wall-clock budget (steady_clock, immune to
// NTP jumps) with an optional shared cancel flag. Long-running stages receive
// a CancellationToken view and poll it at cheap, periodic checkpoints —
// between merge rounds, every few thousand parsed lines, every few hundred
// simplex iterations. Nothing is preempted: a tripped token means "stop at
// the next safe point and unwind with partial results intact" (anytime
// semantics), never "abandon state mid-mutation".
//
// The default-constructed Deadline/token is infinite and flagless, so the
// common un-bounded call sites pay a single branch per checkpoint and no
// allocation, no atomic traffic.

#ifndef RDFSR_UTIL_DEADLINE_H_
#define RDFSR_UTIL_DEADLINE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

#include "util/status.h"

namespace rdfsr::util {

class Deadline;

/// Read-only view of a Deadline, cheap to copy into worker stages. A
/// default-constructed token never trips.
class CancellationToken {
 public:
  using Clock = std::chrono::steady_clock;

  CancellationToken() = default;

  /// True when cancellation was explicitly requested (ignores the clock).
  bool cancelled() const {
    return flag_ != nullptr && flag_->load(std::memory_order_relaxed);
  }

  /// True once the deadline has passed (ignores the cancel flag).
  bool expired() const {
    return deadline_ != Clock::time_point::max() && Clock::now() >= deadline_;
  }

  /// True when work should stop: cancelled or past the deadline. The cancel
  /// flag is checked first so explicit cancellation wins the race and the
  /// fully-unbounded token short-circuits without reading the clock.
  bool stop_requested() const { return cancelled() || expired(); }

  /// OK while work may continue; otherwise kCancelled or kDeadlineExceeded
  /// (cancellation reported in preference to expiry when both hold).
  Status status() const {
    if (cancelled()) return Status::Cancelled("operation cancelled");
    if (expired()) return Status::DeadlineExceeded("deadline exceeded");
    return Status::OK();
  }

  /// True when this token can ever trip — lets hot loops hoist the whole
  /// checkpoint out when the caller passed no budget.
  bool can_trip() const {
    return flag_ != nullptr || deadline_ != Clock::time_point::max();
  }

 private:
  friend class Deadline;
  CancellationToken(Clock::time_point deadline,
                    std::shared_ptr<std::atomic<bool>> flag)
      : deadline_(deadline), flag_(std::move(flag)) {}

  Clock::time_point deadline_ = Clock::time_point::max();
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// An absolute time budget plus an owner-side cancel switch. Copyable; all
/// copies share one cancel flag. The default Deadline is infinite and cannot
/// be cancelled (its token never trips and costs nothing to poll).
class Deadline {
 public:
  using Clock = CancellationToken::Clock;

  /// Infinite, non-cancellable deadline.
  Deadline() = default;

  /// A deadline `seconds` from now (also cancellable via RequestCancel).
  /// Non-positive budgets produce an already-expired deadline.
  static Deadline After(double seconds) {
    Deadline d;
    d.deadline_ =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(seconds));
    d.flag_ = std::make_shared<std::atomic<bool>>(false);
    return d;
  }

  /// A deadline `ms` milliseconds from now. Zero means "no deadline"
  /// (matches the DatasetOptions::deadline_ms convention).
  static Deadline AfterMillis(std::int64_t ms) {
    if (ms <= 0) return Deadline();
    return After(static_cast<double>(ms) / 1000.0);
  }

  /// An infinite deadline that can still be cancelled explicitly.
  static Deadline Cancellable() {
    Deadline d;
    d.flag_ = std::make_shared<std::atomic<bool>>(false);
    return d;
  }

  /// Asks every holder of this deadline's tokens to stop at the next safe
  /// point. Safe to call from any thread, idempotent. No-op on the default
  /// (flagless) deadline.
  void RequestCancel() const {
    if (flag_ != nullptr) flag_->store(true, std::memory_order_relaxed);
  }

  /// The pollable view handed to pipeline stages.
  CancellationToken token() const {
    return CancellationToken(deadline_, flag_);
  }

  /// True when this deadline can ever trip.
  bool can_trip() const {
    return flag_ != nullptr || deadline_ != Clock::time_point::max();
  }

 private:
  Clock::time_point deadline_ = Clock::time_point::max();
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// Stride-counted checkpoint helper for hot loops: polls the token only every
/// `stride` calls, so the per-iteration cost is one increment and one
/// predictable branch. Stateless callers keep one PeriodicCheck per loop.
class PeriodicCheck {
 public:
  explicit PeriodicCheck(CancellationToken token, std::uint32_t stride = 1024)
      : token_(std::move(token)),
        stride_(stride == 0 ? 1 : stride),
        armed_(token_.can_trip()) {}

  /// True when the token tripped at a sampled checkpoint.
  bool ShouldStop() {
    if (!armed_) return false;
    if (++count_ % stride_ != 0) return false;
    return token_.stop_requested();
  }

  const CancellationToken& token() const { return token_; }

 private:
  CancellationToken token_;
  std::uint32_t stride_;
  bool armed_;
  std::uint32_t count_ = 0;
};

}  // namespace rdfsr::util

#endif  // RDFSR_UTIL_DEADLINE_H_
