// Exact rational arithmetic for structuredness thresholds.
//
// Definition 4.2 of the paper requires the threshold theta to be rational "for
// compatibility with the reduction to the Integer Linear Programming instance":
// the threshold row of the ILP multiplies integer counts by theta's numerator and
// denominator. Rational keeps that exact.

#ifndef RDFSR_UTIL_RATIONAL_H_
#define RDFSR_UTIL_RATIONAL_H_

#include <cstdint>
#include <string>

namespace rdfsr {

/// An exact rational number num/den with den > 0, always stored normalized
/// (gcd(|num|, den) == 1). Arithmetic runs through 128-bit intermediates, so
/// cross-products of any two representable rationals cannot silently wrap; the
/// result is normalized in 128 bits and then checked to fit back into int64
/// (a genuine overflow of the reduced result is a fatal error, not UB).
class Rational {
 public:
  /// Zero.
  Rational() : num_(0), den_(1) {}
  /// Whole number.
  Rational(std::int64_t value) : num_(value), den_(1) {}  // NOLINT
  /// num/den; den must be non-zero.
  Rational(std::int64_t num, std::int64_t den);

  /// Closest rational p/q to `value` with q <= max_den (continued fractions).
  /// Used to turn user-facing double thresholds into exact theta1/theta2.
  static Rational FromDouble(double value, std::int64_t max_den = 10000);

  std::int64_t num() const { return num_; }
  std::int64_t den() const { return den_; }

  double ToDouble() const { return static_cast<double>(num_) / den_; }
  std::string ToString() const;

  Rational operator+(const Rational& o) const;
  Rational operator-(const Rational& o) const;
  Rational operator*(const Rational& o) const;
  Rational operator/(const Rational& o) const;
  Rational operator-() const;

  bool operator==(const Rational& o) const {
    return num_ == o.num_ && den_ == o.den_;
  }
  bool operator!=(const Rational& o) const { return !(*this == o); }
  bool operator<(const Rational& o) const;
  bool operator<=(const Rational& o) const { return *this < o || *this == o; }
  bool operator>(const Rational& o) const { return o < *this; }
  bool operator>=(const Rational& o) const { return o <= *this; }

 private:
  /// Builds num/den from 128-bit intermediates: normalizes in 128 bits, then
  /// checked-narrows to int64 (fatal on a result that truly cannot fit).
  static Rational FromInt128(__int128 num, __int128 den);

  std::int64_t num_;
  std::int64_t den_;
};

}  // namespace rdfsr

#endif  // RDFSR_UTIL_RATIONAL_H_
