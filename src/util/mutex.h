// Capability-annotated mutex wrappers — the only blocking-synchronization
// primitives allowed outside src/util/ (enforced by the `lock-wrapper` lint
// rule, the locking analogue of the thread-rand rule's ThreadPool funnel).
//
// util::Mutex wraps std::mutex as a Clang Thread Safety Analysis capability,
// so shared state can be declared RDFSR_GUARDED_BY(mu) and locked helpers
// RDFSR_REQUIRES(mu); `cmake -DRDFSR_THREAD_SAFETY=ON` then turns any access
// outside the lock into a compile error. util::MutexLock is the scoped
// acquire, util::CondVar the matching condition variable (Wait requires the
// mutex held, releases it while blocked, and reacquires before returning —
// callers re-check their predicate in a loop, which keeps the wait condition
// visible to the analysis instead of hidden inside a predicate lambda).

#ifndef RDFSR_UTIL_MUTEX_H_
#define RDFSR_UTIL_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace rdfsr::util {

class CondVar;

/// An exclusive capability over std::mutex. Prefer MutexLock for scoped
/// acquisition; bare Lock/Unlock exist for the rare split-scope pattern.
class RDFSR_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() RDFSR_ACQUIRE() { mu_.lock(); }
  void Unlock() RDFSR_RELEASE() { mu_.unlock(); }
  bool TryLock() RDFSR_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;  // Wait adopts the underlying std::mutex
  std::mutex mu_;
};

/// Scoped acquisition: holds `mu` from construction to scope exit.
class RDFSR_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) RDFSR_ACQUIRE(mu) : mu_(mu) { mu.Lock(); }
  ~MutexLock() RDFSR_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable paired with util::Mutex. No predicate overload on
/// purpose: callers write `while (!cond) cv.Wait(mu);` so the guarded reads
/// in `cond` sit in a scope the thread-safety analysis can check.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu` and blocks; reacquires `mu` before returning.
  /// Spurious wakeups are possible — always re-check the predicate.
  void Wait(Mutex& mu) RDFSR_REQUIRES(mu) {
    // Adopt the already-held native mutex for the wait, then release the
    // unique_lock's ownership claim so the caller's MutexLock remains the
    // single owner; the capability never changes hands.
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace rdfsr::util

#endif  // RDFSR_UTIL_MUTEX_H_
