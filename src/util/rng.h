// Deterministic pseudo-random number generation for generators and tests.
//
// All synthetic-data generators take an explicit seed so that every experiment in
// EXPERIMENTS.md is reproducible bit-for-bit. We wrap SplitMix64 (for seeding) and
// xoshiro256** (for streams): both are tiny, fast, and fully specified here, so the
// library does not depend on unspecified standard-library distribution details.

#ifndef RDFSR_UTIL_RNG_H_
#define RDFSR_UTIL_RNG_H_

#include <cstdint>

#include "util/check.h"

namespace rdfsr {

/// Deterministic 64-bit PRNG (xoshiro256** seeded via SplitMix64).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (int i = 0; i < 4; ++i) s_[i] = SplitMix64(&x);
  }

  /// Uniform 64-bit value.
  std::uint64_t Next() {
    const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) using Lemire's multiply-shift reduction.
  std::uint64_t Below(std::uint64_t bound) {
    RDFSR_CHECK_GT(bound, 0u);
    // Debiased multiply-shift.
    std::uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    std::uint64_t low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      std::uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        x = Next();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t Range(std::int64_t lo, std::int64_t hi) {
    RDFSR_CHECK_LE(lo, hi);
    return lo + static_cast<std::int64_t>(
                    Below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() { return (Next() >> 11) * 0x1.0p-53; }

  /// Bernoulli trial with success probability p.
  bool Chance(double p) { return NextDouble() < p; }

  /// Forks an independent stream (for parallel sub-generators).
  Rng Fork() { return Rng(Next() ^ 0x9e3779b97f4a7c15ULL); }

 private:
  static std::uint64_t SplitMix64(std::uint64_t* state) {
    std::uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace rdfsr

#endif  // RDFSR_UTIL_RNG_H_
