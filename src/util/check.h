// Fatal invariant checking, modeled on glog-style CHECK.
//
// RDFSR_CHECK(cond) << "context";   aborts with file/line + streamed message when
// cond is false. Used for programmer errors; recoverable errors use Status.

#ifndef RDFSR_UTIL_CHECK_H_
#define RDFSR_UTIL_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace rdfsr {
namespace internal {

/// Accumulates the streamed message and aborts the process on destruction.
class CheckFailStream {
 public:
  CheckFailStream(const char* file, int line, const char* expr) {
    stream_ << "CHECK failed at " << file << ":" << line << ": " << expr << " ";
  }
  [[noreturn]] ~CheckFailStream() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }
  template <typename T>
  CheckFailStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace rdfsr

#define RDFSR_CHECK(cond)                 \
  switch (0)                              \
  case 0:                                 \
  default:                                \
    if (cond) {                           \
    } else /* NOLINT */                   \
      ::rdfsr::internal::CheckFailStream(__FILE__, __LINE__, #cond)

#define RDFSR_CHECK_EQ(a, b) RDFSR_CHECK((a) == (b))
#define RDFSR_CHECK_NE(a, b) RDFSR_CHECK((a) != (b))
#define RDFSR_CHECK_LT(a, b) RDFSR_CHECK((a) < (b))
#define RDFSR_CHECK_LE(a, b) RDFSR_CHECK((a) <= (b))
#define RDFSR_CHECK_GT(a, b) RDFSR_CHECK((a) > (b))
#define RDFSR_CHECK_GE(a, b) RDFSR_CHECK((a) >= (b))

#endif  // RDFSR_UTIL_CHECK_H_
