// Fatal invariant checking, modeled on glog-style CHECK.
//
// RDFSR_CHECK(cond) << "context";   aborts with file/line + streamed message when
// cond is false. Used for programmer errors; recoverable errors use Status.
//
// Check tiers:
//   RDFSR_CHECK*   always on, every build. Cheap argument/bounds guards on
//                  paths where a violation would corrupt results silently.
//   RDFSR_DCHECK*  on in debug (!NDEBUG) and audit (RDFSR_AUDIT) builds,
//                  compiled out (condition unevaluated, but still
//                  type-checked) in plain release builds. For guards too hot
//                  for the release inner loops.
//   RDFSR_AUDIT_CHECK_INVARIANTS(obj)
//                  calls (obj).CheckInvariants() in audit builds only. The
//                  stateful core types (SignatureIndex, SortStats, Graph,
//                  Dictionary, ilp::Model, RefinementIlpInstance) expose
//                  CheckInvariants() as an always-compiled method — tests
//                  call it directly — and the library invokes it at layer
//                  boundaries when built with -DRDFSR_AUDIT=ON.
//
// Audit builds (cmake -DRDFSR_AUDIT=ON) define the RDFSR_AUDIT macro for the
// whole library: DCHECKs fire even in optimized builds and every boundary
// crossing re-validates the full invariants of the objects it hands over.

#ifndef RDFSR_UTIL_CHECK_H_
#define RDFSR_UTIL_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

#if defined(RDFSR_AUDIT) || !defined(NDEBUG)
#define RDFSR_DCHECK_IS_ON 1
#else
#define RDFSR_DCHECK_IS_ON 0
#endif

namespace rdfsr {

/// Whether this translation unit was compiled with debug checks (DCHECK)
/// active. constexpr so audit-only slow paths can be `if constexpr`-gated.
inline constexpr bool kDChecksEnabled = RDFSR_DCHECK_IS_ON != 0;

/// Whether this translation unit was compiled at the audit build level
/// (-DRDFSR_AUDIT=ON): boundary-crossing CheckInvariants() calls are active.
inline constexpr bool audit_enabled() {
#ifdef RDFSR_AUDIT
  return true;
#else
  return false;
#endif
}

namespace internal {

/// Accumulates the streamed message and aborts the process on destruction.
class CheckFailStream {
 public:
  CheckFailStream(const char* file, int line, const char* expr) {
    stream_ << "CHECK failed at " << file << ":" << line << ": " << expr << " ";
  }
  [[noreturn]] ~CheckFailStream() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }
  template <typename T>
  CheckFailStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

/// Swallows a disabled check's streamed message without evaluating it.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal
}  // namespace rdfsr

#define RDFSR_CHECK(cond)                 \
  switch (0)                              \
  case 0:                                 \
  default:                                \
    if (cond) {                           \
    } else /* NOLINT */                   \
      ::rdfsr::internal::CheckFailStream(__FILE__, __LINE__, #cond)

#define RDFSR_CHECK_EQ(a, b) RDFSR_CHECK((a) == (b))
#define RDFSR_CHECK_NE(a, b) RDFSR_CHECK((a) != (b))
#define RDFSR_CHECK_LT(a, b) RDFSR_CHECK((a) < (b))
#define RDFSR_CHECK_LE(a, b) RDFSR_CHECK((a) <= (b))
#define RDFSR_CHECK_GT(a, b) RDFSR_CHECK((a) > (b))
#define RDFSR_CHECK_GE(a, b) RDFSR_CHECK((a) >= (b))

#if RDFSR_DCHECK_IS_ON

#define RDFSR_DCHECK(cond) RDFSR_CHECK(cond)

#else  // !RDFSR_DCHECK_IS_ON

// Disabled: the condition is parsed (so it cannot bit-rot) but never
// evaluated, and the streamed message is swallowed.
#define RDFSR_DCHECK(cond)                     \
  switch (0)                                   \
  case 0:                                      \
  default:                                     \
    if (true || (cond)) {                      \
    } else /* NOLINT */                        \
      ::rdfsr::internal::NullStream()

#endif  // RDFSR_DCHECK_IS_ON

#define RDFSR_DCHECK_EQ(a, b) RDFSR_DCHECK((a) == (b))
#define RDFSR_DCHECK_NE(a, b) RDFSR_DCHECK((a) != (b))
#define RDFSR_DCHECK_LT(a, b) RDFSR_DCHECK((a) < (b))
#define RDFSR_DCHECK_LE(a, b) RDFSR_DCHECK((a) <= (b))
#define RDFSR_DCHECK_GT(a, b) RDFSR_DCHECK((a) > (b))
#define RDFSR_DCHECK_GE(a, b) RDFSR_DCHECK((a) >= (b))

/// Invokes `(obj).CheckInvariants()` at the audit build level; a no-op (the
/// expression is not evaluated) otherwise. Place at layer boundaries where an
/// object is handed across subsystems.
#ifdef RDFSR_AUDIT
#define RDFSR_AUDIT_CHECK_INVARIANTS(obj) (obj).CheckInvariants()
#else
#define RDFSR_AUDIT_CHECK_INVARIANTS(obj) \
  do {                                    \
  } while (false)
#endif

#endif  // RDFSR_UTIL_CHECK_H_
