// Fault injection: named failpoints at IO and allocation-heavy boundaries.
//
// A failpoint is a named site that normally does nothing. When the build is
// configured with -DRDFSR_FAILPOINTS=ON and the process environment carries
//
//   RDFSR_FAILPOINTS=name=error,other.name=5%
//
// the named sites start failing: `name=error` fires on every hit, `name=n%`
// fires deterministically on every floor(100/n)-th hit starting with the
// first (so even a short run with a 1% failpoint injects at least one fault,
// and a given run is exactly reproducible — no RNG). Multiple specs are
// comma- or semicolon-separated.
//
// Sites come in two flavours:
//   RDFSR_FAILPOINT(name)        — in a function returning Status/Result<T>:
//                                  early-returns an injected kInternal Status.
//   RDFSR_FAILPOINT_THROW(name)  — inside a ThreadPool worker: throws
//                                  FailpointError, which ParallelFor rethrows
//                                  on the calling thread; the catch site turns
//                                  it back into a Status. This is what proves
//                                  the pool unwinds instead of deadlocking.
//
// When the CMake option is OFF (the default), both macros compile to nothing
// and the registry is not linked into the hot path.

#ifndef RDFSR_UTIL_FAILPOINT_H_
#define RDFSR_UTIL_FAILPOINT_H_

#include <stdexcept>
#include <string>

#include "util/status.h"

namespace rdfsr::util {

/// Thrown by RDFSR_FAILPOINT_THROW from inside pool workers; carries the
/// injected Status across the ParallelFor rethrow boundary.
class FailpointError : public std::runtime_error {
 public:
  explicit FailpointError(Status status)
      : std::runtime_error(status.ToString()), status_(std::move(status)) {}

  const Status& status() const { return status_; }

 private:
  Status status_;
};

/// True when the named failpoint should fire on this hit. Thread-safe;
/// increments the site's hit counter. Always false for unarmed names.
bool FailpointShouldFire(const char* name);

/// The Status injected at `name` (kInternal, message names the failpoint).
Status FailpointStatus(const char* name);

/// Checks-and-fires in one call: non-OK when the site should fail now.
inline Status FailpointHit(const char* name) {
  if (FailpointShouldFire(name)) return FailpointStatus(name);
  return Status::OK();
}

/// Parses a spec string ("a=error,b=5%"), replacing the armed set. Returns
/// false (and arms nothing new) on a malformed spec. Exposed for tests; the
/// registry self-initializes from $RDFSR_FAILPOINTS on first use.
bool ArmFailpointsFromSpec(const std::string& spec);

/// Disarms every failpoint and resets hit counters. Test hook.
void ClearFailpoints();

}  // namespace rdfsr::util

#ifdef RDFSR_FAILPOINTS_ENABLED
#define RDFSR_FAILPOINT(name)                                        \
  do {                                                               \
    if (::rdfsr::util::FailpointShouldFire(name)) {                  \
      return ::rdfsr::util::FailpointStatus(name);                   \
    }                                                                \
  } while (false)
#define RDFSR_FAILPOINT_THROW(name)                                  \
  do {                                                               \
    if (::rdfsr::util::FailpointShouldFire(name)) {                  \
      throw ::rdfsr::util::FailpointError(                           \
          ::rdfsr::util::FailpointStatus(name));                     \
    }                                                                \
  } while (false)
#else
#define RDFSR_FAILPOINT(name) \
  do {                        \
  } while (false)
#define RDFSR_FAILPOINT_THROW(name) \
  do {                              \
  } while (false)
#endif  // RDFSR_FAILPOINTS_ENABLED

#endif  // RDFSR_UTIL_FAILPOINT_H_
