#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <utility>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace rdfsr::util {

namespace {

/// First-exception capture for ParallelFor: lanes Record() concurrently
/// during the fan-out; the calling thread Take()s after every chunk joined.
/// Keeping the fold behind methods of the owning class (instead of a bare
/// mutex + captured locals) lets the thread-safety analysis check the
/// guarded access on Clang builds.
class ErrorCapture {
 public:
  void Record(std::exception_ptr error) {
    MutexLock lock(mu_);
    if (!error_) error_ = std::move(error);
  }

  std::exception_ptr Take() {
    MutexLock lock(mu_);
    return error_;
  }

 private:
  Mutex mu_;
  std::exception_ptr error_ RDFSR_GUARDED_BY(mu_);
};

}  // namespace

ThreadPool::ThreadPool(int workers) {
  threads_.reserve(static_cast<std::size_t>(std::max(workers, 0)));
  for (int i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::packaged_task<void()> task;
    {
      MutexLock lock(mu_);
      while (!stop_ && queue_.empty()) cv_.Wait(mu_);
      if (queue_.empty()) return;  // stop_ with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // packaged_task captures exceptions into the future
  }
}

std::future<void> ThreadPool::Submit(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> future = task.get_future();
  if (threads_.empty()) {
    task();
    return future;
  }
  {
    MutexLock lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.NotifyOne();
  return future;
}

void ThreadPool::ParallelFor(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t lanes = static_cast<std::size_t>(workers()) + 1;
  if (lanes == 1) {
    fn(0, n);
    return;
  }
  // More chunks than lanes so uneven per-index costs rebalance; the atomic
  // dispenser hands chunks to whichever lane frees up first.
  const std::size_t chunks = std::min(n, lanes * 4);
  const std::size_t step = (n + chunks - 1) / chunks;
  std::atomic<std::size_t> next{0};
  ErrorCapture error;
  auto run = [&] {
    while (true) {
      const std::size_t begin = next.fetch_add(step);
      if (begin >= n) return;
      try {
        fn(begin, std::min(n, begin + step));
      } catch (...) {
        error.Record(std::current_exception());
      }
    }
  };
  std::vector<std::future<void>> helpers;
  const std::size_t helper_count =
      std::min(static_cast<std::size_t>(workers()), chunks - 1);
  helpers.reserve(helper_count);
  for (std::size_t i = 0; i < helper_count; ++i) {
    helpers.push_back(Submit(run));
  }
  run();
  for (std::future<void>& h : helpers) h.get();  // run() never throws
  if (std::exception_ptr first = error.Take()) std::rethrow_exception(first);
}

int ThreadPool::ResolveThreads(int requested) {
  if (requested >= 1) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

}  // namespace rdfsr::util
