// Lightweight Status / Result<T> error-handling primitives.
//
// The library avoids exceptions on hot paths (per the Google style guide and the
// Arrow/RocksDB idiom): fallible operations return Status or Result<T>, and
// internal invariants are enforced with RDFSR_CHECK (see util/check.h).

#ifndef RDFSR_UTIL_STATUS_H_
#define RDFSR_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "util/check.h"

namespace rdfsr {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kParseError,
  kNotFound,
  kOutOfRange,
  kResourceExhausted,
  kDeadlineExceeded,
  kCancelled,
  kInternal,
};

/// Returns a short human-readable name for a status code ("ParseError", ...).
const char* StatusCodeName(StatusCode code);

/// Result of a fallible operation: a code plus a human-readable message.
///
/// [[nodiscard]] at class level: any call discarding a returned Status (or
/// Result<T>) is a compiler warning, promoted to an error in CI. Silently
/// dropped errors are exactly the failure mode the exact-arithmetic pipeline
/// cannot tolerate.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Accessing the value of a failed
/// Result is a checked fatal error.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from a non-OK status (failure).
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    RDFSR_CHECK(!status_.ok()) << "Result constructed from OK status";
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    RDFSR_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    RDFSR_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    RDFSR_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace rdfsr

#endif  // RDFSR_UTIL_STATUS_H_
