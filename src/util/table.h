// Plain-text table rendering used by the benchmark harness to print the paper's
// tables (Table 1, Table 2, the Section 7.4 confusion matrix, ...).

#ifndef RDFSR_UTIL_TABLE_H_
#define RDFSR_UTIL_TABLE_H_

#include <string>
#include <vector>

namespace rdfsr {

/// A simple left/right-aligned monospace table.
///
/// Usage:
///   TextTable t({"p1", "p2", "sigma"});
///   t.AddRow({"givenName", "surName", "1.00"});
///   std::cout << t.ToString();
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends a data row; must have the same arity as the header.
  void AddRow(std::vector<std::string> row);

  /// Appends a horizontal separator line.
  void AddSeparator();

  std::size_t num_rows() const { return rows_.size(); }

  /// Renders with column padding, a header rule, and optional separators.
  std::string ToString() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;  // empty vector == separator
};

/// Formats a double with `digits` fractional digits ("0.54").
std::string FormatDouble(double v, int digits = 2);

/// Formats a count with thousands separators ("790,703").
std::string FormatCount(long long v);

}  // namespace rdfsr

#endif  // RDFSR_UTIL_TABLE_H_
