#include "util/rational.h"

#include <cmath>
#include <numeric>

#include "util/check.h"

namespace rdfsr {

Rational::Rational(std::int64_t num, std::int64_t den) : num_(num), den_(den) {
  RDFSR_CHECK_NE(den, 0) << "Rational with zero denominator";
  Normalize();
}

void Rational::Normalize() {
  if (den_ < 0) {
    num_ = -num_;
    den_ = -den_;
  }
  std::int64_t g = std::gcd(num_ < 0 ? -num_ : num_, den_);
  if (g > 1) {
    num_ /= g;
    den_ /= g;
  }
  if (num_ == 0) den_ = 1;
}

Rational Rational::FromDouble(double value, std::int64_t max_den) {
  RDFSR_CHECK_GT(max_den, 0);
  if (std::isnan(value)) return Rational(0);
  // Continued-fraction expansion with convergent denominators capped at max_den.
  bool negative = value < 0;
  double x = negative ? -value : value;
  std::int64_t p0 = 0, q0 = 1, p1 = 1, q1 = 0;
  double frac = x;
  for (int iter = 0; iter < 64; ++iter) {
    double fa = std::floor(frac);
    if (fa > 9.0e18) break;
    std::int64_t a = static_cast<std::int64_t>(fa);
    std::int64_t p2 = a * p1 + p0;
    std::int64_t q2 = a * q1 + q0;
    if (q2 > max_den || q2 <= 0) break;
    p0 = p1;
    q0 = q1;
    p1 = p2;
    q1 = q2;
    double rem = frac - fa;
    if (rem < 1e-12) break;
    frac = 1.0 / rem;
  }
  if (q1 == 0) return Rational(negative ? -p0 : p0, q0 == 0 ? 1 : q0);
  return Rational(negative ? -p1 : p1, q1);
}

std::string Rational::ToString() const {
  if (den_ == 1) return std::to_string(num_);
  return std::to_string(num_) + "/" + std::to_string(den_);
}

namespace {

__int128 Abs128(__int128 v) { return v < 0 ? -v : v; }

__int128 Gcd128(__int128 a, __int128 b) {
  a = Abs128(a);
  b = Abs128(b);
  while (b != 0) {
    const __int128 t = a % b;
    a = b;
    b = t;
  }
  return a;
}

}  // namespace

Rational Rational::FromInt128(__int128 num, __int128 den) {
  RDFSR_CHECK(den != 0) << "Rational with zero denominator";
  if (den < 0) {
    num = -num;
    den = -den;
  }
  const __int128 g = Gcd128(num, den);
  if (g > 1) {
    num /= g;
    den /= g;
  }
  if (num == 0) den = 1;
  constexpr __int128 kMin = INT64_MIN;
  constexpr __int128 kMax = INT64_MAX;
  RDFSR_CHECK(num >= kMin && num <= kMax && den <= kMax)
      << "Rational overflow: reduced result exceeds int64";
  Rational out;
  out.num_ = static_cast<std::int64_t>(num);
  out.den_ = static_cast<std::int64_t>(den);
  return out;
}

Rational Rational::operator+(const Rational& o) const {
  return FromInt128(
      static_cast<__int128>(num_) * o.den_ + static_cast<__int128>(o.num_) * den_,
      static_cast<__int128>(den_) * o.den_);
}

Rational Rational::operator-(const Rational& o) const {
  return FromInt128(
      static_cast<__int128>(num_) * o.den_ - static_cast<__int128>(o.num_) * den_,
      static_cast<__int128>(den_) * o.den_);
}

Rational Rational::operator*(const Rational& o) const {
  return FromInt128(static_cast<__int128>(num_) * o.num_,
                    static_cast<__int128>(den_) * o.den_);
}

Rational Rational::operator/(const Rational& o) const {
  RDFSR_CHECK_NE(o.num_, 0) << "Rational division by zero";
  return FromInt128(static_cast<__int128>(num_) * o.den_,
                    static_cast<__int128>(den_) * o.num_);
}

bool Rational::operator<(const Rational& o) const {
  // Cross-multiply in 128-bit to avoid overflow.
  return static_cast<__int128>(num_) * o.den_ <
         static_cast<__int128>(o.num_) * den_;
}

}  // namespace rdfsr
