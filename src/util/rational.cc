#include "util/rational.h"

#include <cmath>

#include "util/check.h"

namespace rdfsr {

namespace {

// Magnitude as unsigned: defined for every input, including INT64_MIN /
// INT128_MIN (whose negation as a signed value is UB — the signed-narrowing
// trap this file is hardened against).
unsigned __int128 Mag128(__int128 v) {
  return v < 0 ? -static_cast<unsigned __int128>(v)
               : static_cast<unsigned __int128>(v);
}

unsigned __int128 Gcd128(unsigned __int128 a, unsigned __int128 b) {
  while (b != 0) {
    const unsigned __int128 t = a % b;
    a = b;
    b = t;
  }
  return a;
}

constexpr unsigned __int128 kInt64Max =
    static_cast<unsigned __int128>(INT64_MAX);

}  // namespace

Rational::Rational(std::int64_t num, std::int64_t den) {
  RDFSR_CHECK_NE(den, 0) << "Rational with zero denominator";
  *this = FromInt128(num, den);
}

Rational Rational::FromInt128(__int128 num, __int128 den) {
  RDFSR_CHECK(den != 0) << "Rational with zero denominator";
  const bool negative = (num < 0) != (den < 0) && num != 0;
  unsigned __int128 n = Mag128(num);
  unsigned __int128 d = Mag128(den);
  if (n == 0) {
    d = 1;
  } else {
    const unsigned __int128 g = Gcd128(n, d);
    n /= g;
    d /= g;
  }
  // The reduced magnitudes must narrow to int64: |num| may be INT64_MAX + 1
  // only when negative (INT64_MIN is representable), den is positive.
  RDFSR_CHECK(d <= kInt64Max && n <= kInt64Max + (negative ? 1 : 0))
      << "Rational overflow: reduced result exceeds int64";
  Rational out;
  out.num_ = negative ? static_cast<std::int64_t>(-static_cast<__int128>(n))
                      : static_cast<std::int64_t>(n);
  out.den_ = static_cast<std::int64_t>(d);
  return out;
}

Rational Rational::operator-() const {
  // Via the 128-bit path: -INT64_MIN does not fit an int64 and must be a
  // checked fatal error, not a signed-negation UB.
  return FromInt128(-static_cast<__int128>(num_), den_);
}

Rational Rational::FromDouble(double value, std::int64_t max_den) {
  RDFSR_CHECK_GT(max_den, 0);
  if (std::isnan(value)) return Rational(0);
  // Continued-fraction expansion with convergent denominators capped at
  // max_den. The recurrence runs in 128-bit: the candidate convergent is
  // computed wide and range-checked BEFORE committing, so an oversized
  // element a (possible when floating-point noise inflates 1/rem near the
  // termination threshold) can never sign-overflow the int64 state.
  bool negative = value < 0;
  double x = negative ? -value : value;
  std::int64_t p0 = 0, q0 = 1, p1 = 1, q1 = 0;
  double frac = x;
  for (int iter = 0; iter < 64; ++iter) {
    double fa = std::floor(frac);
    // lint:allow(float-compare: overflow guard before the int64 cast)
    if (fa > 9.0e18) break;
    std::int64_t a = static_cast<std::int64_t>(fa);
    const __int128 p2 = static_cast<__int128>(a) * p1 + p0;
    const __int128 q2 = static_cast<__int128>(a) * q1 + q0;
    if (q2 > max_den || q2 <= 0 || p2 > static_cast<__int128>(INT64_MAX)) break;
    p0 = p1;
    q0 = q1;
    p1 = static_cast<std::int64_t>(p2);
    q1 = static_cast<std::int64_t>(q2);
    double rem = frac - fa;
    // lint:allow(float-compare: termination threshold of the double expansion)
    if (rem < 1e-12) break;
    frac = 1.0 / rem;
  }
  if (q1 == 0) return Rational(negative ? -p0 : p0, q0 == 0 ? 1 : q0);
  return Rational(negative ? -p1 : p1, q1);
}

std::string Rational::ToString() const {
  if (den_ == 1) return std::to_string(num_);
  return std::to_string(num_) + "/" + std::to_string(den_);
}

Rational Rational::operator+(const Rational& o) const {
  return FromInt128(
      static_cast<__int128>(num_) * o.den_ + static_cast<__int128>(o.num_) * den_,
      static_cast<__int128>(den_) * o.den_);
}

Rational Rational::operator-(const Rational& o) const {
  return FromInt128(
      static_cast<__int128>(num_) * o.den_ - static_cast<__int128>(o.num_) * den_,
      static_cast<__int128>(den_) * o.den_);
}

Rational Rational::operator*(const Rational& o) const {
  return FromInt128(static_cast<__int128>(num_) * o.num_,
                    static_cast<__int128>(den_) * o.den_);
}

Rational Rational::operator/(const Rational& o) const {
  RDFSR_CHECK_NE(o.num_, 0) << "Rational division by zero";
  return FromInt128(static_cast<__int128>(num_) * o.den_,
                    static_cast<__int128>(den_) * o.num_);
}

bool Rational::operator<(const Rational& o) const {
  // Cross-multiply in 128-bit to avoid overflow.
  return static_cast<__int128>(num_) * o.den_ <
         static_cast<__int128>(o.num_) * den_;
}

}  // namespace rdfsr
