#include "util/fit.h"

#include <cmath>

#include "util/check.h"

namespace rdfsr {

LinearFit FitLinear(const std::vector<double>& xs,
                    const std::vector<double>& ys) {
  RDFSR_CHECK_EQ(xs.size(), ys.size());
  RDFSR_CHECK_GE(xs.size(), 2u);
  const double n = static_cast<double>(xs.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
    syy += ys[i] * ys[i];
  }
  const double denom = n * sxx - sx * sx;
  LinearFit fit;
  if (denom == 0) {
    fit.slope = 0;
    fit.intercept = sy / n;
    fit.r2 = 0;
    return fit;
  }
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  double ss_res = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double r = ys[i] - (fit.intercept + fit.slope * xs[i]);
    ss_res += r * r;
  }
  fit.r2 = ss_tot > 0 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

PowerFit FitPower(const std::vector<double>& xs, const std::vector<double>& ys) {
  std::vector<double> lx, ly;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (xs[i] > 0 && ys[i] > 0) {
      lx.push_back(std::log(xs[i]));
      ly.push_back(std::log(ys[i]));
    }
  }
  PowerFit fit;
  if (lx.size() < 2) return fit;
  const LinearFit lin = FitLinear(lx, ly);
  fit.a = std::exp(lin.intercept);
  fit.b = lin.slope;
  fit.r2 = lin.r2;
  return fit;
}

ExpFit FitExponential(const std::vector<double>& xs,
                      const std::vector<double>& ys) {
  std::vector<double> lx, ly;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (ys[i] > 0) {
      lx.push_back(xs[i]);
      ly.push_back(std::log(ys[i]));
    }
  }
  ExpFit fit;
  if (lx.size() < 2) return fit;
  const LinearFit lin = FitLinear(lx, ly);
  fit.a = std::exp(lin.intercept);
  fit.b = lin.slope;
  fit.r2 = lin.r2;
  return fit;
}

}  // namespace rdfsr
