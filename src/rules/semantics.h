// Reference (brute-force) semantics of the rule language, Section 3.2.
//
// A variable assignment rho maps each rule variable to a cell (s, p) of the
// matrix M. sigma_r(M) = |total(phi1 ∧ phi2, M)| / |total(phi1, M)| (defined as
// 1 when the denominator is 0). This implementation enumerates all |S x P|^n
// assignments and is exponential in the number of variables: it exists as the
// ground truth against which the signature-level machinery in eval/ is
// property-tested, and for tiny teaching examples.

#ifndef RDFSR_RULES_SEMANTICS_H_
#define RDFSR_RULES_SEMANTICS_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "rules/ast.h"
#include "schema/property_matrix.h"

namespace rdfsr::rules {

/// A cell position (subject row, property column).
using Cell = std::pair<int, int>;

/// Evaluates the satisfaction relation (M, rho) |= phi. `variables` and
/// `cells` are parallel: variables[i] is assigned cells[i]. All variables of
/// phi must be assigned.
bool Satisfies(const FormulaPtr& phi, const schema::PropertyMatrix& matrix,
               const std::vector<std::string>& variables,
               const std::vector<Cell>& cells);

/// |total(phi, M)|: the number of satisfying assignments with domain exactly
/// var(phi) (enumerated brute-force).
std::int64_t CountSatisfying(const FormulaPtr& phi,
                             const schema::PropertyMatrix& matrix);

/// An exact structuredness value: favorable / total case counts.
struct SigmaValue {
  std::int64_t favorable = 0;
  std::int64_t total = 0;

  /// sigma as a double; 1.0 when there are no total cases (paper convention).
  double Value() const {
    return total == 0 ? 1.0 : static_cast<double>(favorable) / total;
  }
};

/// sigma_r(M) by brute-force enumeration over assignments of var(phi1).
SigmaValue EvaluateBruteForce(const Rule& rule,
                              const schema::PropertyMatrix& matrix);

}  // namespace rdfsr::rules

#endif  // RDFSR_RULES_SEMANTICS_H_
