#include "rules/parser.h"

#include <cctype>
#include <string>

namespace rdfsr::rules {

namespace {

enum class TokenKind {
  kIdent,
  kUri,     // <...>
  kNumber,  // 0 or 1
  kLParen,
  kRParen,
  kEq,
  kNeq,
  kNot,
  kAnd,
  kOr,
  kArrow,
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  std::size_t pos = 0;
};

/// Single-pass tokenizer.
class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> tokens;
    while (true) {
      SkipWs();
      if (pos_ >= text_.size()) break;
      const std::size_t start = pos_;
      const char c = text_[pos_];
      if (c == '(') {
        tokens.push_back({TokenKind::kLParen, "(", start});
        ++pos_;
      } else if (c == ')') {
        tokens.push_back({TokenKind::kRParen, ")", start});
        ++pos_;
      } else if (c == '=') {
        tokens.push_back({TokenKind::kEq, "=", start});
        ++pos_;
      } else if (c == '!') {
        ++pos_;
        if (pos_ < text_.size() && text_[pos_] == '=') {
          tokens.push_back({TokenKind::kNeq, "!=", start});
          ++pos_;
        } else {
          tokens.push_back({TokenKind::kNot, "!", start});
        }
      } else if (c == '&') {
        ++pos_;
        if (pos_ >= text_.size() || text_[pos_] != '&') {
          return Error(start, "expected '&&'");
        }
        tokens.push_back({TokenKind::kAnd, "&&", start});
        ++pos_;
      } else if (c == '|') {
        ++pos_;
        if (pos_ >= text_.size() || text_[pos_] != '|') {
          return Error(start, "expected '||'");
        }
        tokens.push_back({TokenKind::kOr, "||", start});
        ++pos_;
      } else if (c == '-') {
        ++pos_;
        if (pos_ >= text_.size() || text_[pos_] != '>') {
          return Error(start, "expected '->'");
        }
        tokens.push_back({TokenKind::kArrow, "->", start});
        ++pos_;
      } else if (c == '<') {
        ++pos_;
        std::string uri;
        while (pos_ < text_.size() && text_[pos_] != '>') {
          uri.push_back(text_[pos_++]);
        }
        if (pos_ >= text_.size()) return Error(start, "unterminated '<...>'");
        ++pos_;  // consume '>'
        if (uri.empty()) return Error(start, "empty constant '<>'");
        tokens.push_back({TokenKind::kUri, std::move(uri), start});
      } else if (c == '0' || c == '1') {
        // Numbers longer than one digit are invalid values for val().
        std::string num;
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
          num.push_back(text_[pos_++]);
        }
        if (num.size() != 1) return Error(start, "values must be 0 or 1");
        tokens.push_back({TokenKind::kNumber, std::move(num), start});
      } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        std::string ident;
        while (pos_ < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '_')) {
          ident.push_back(text_[pos_++]);
        }
        tokens.push_back({TokenKind::kIdent, std::move(ident), start});
      } else {
        return Error(start, std::string("unexpected character '") + c + "'");
      }
    }
    tokens.push_back({TokenKind::kEnd, "", pos_});
    return tokens;
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  Status Error(std::size_t pos, const std::string& msg) {
    return Status::ParseError("at offset " + std::to_string(pos) + ": " + msg);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<FormulaPtr> ParseFormulaOnly() {
    Result<FormulaPtr> f = ParseOr();
    if (!f.ok()) return f;
    if (Peek().kind != TokenKind::kEnd) {
      return Error("trailing input after formula");
    }
    return f;
  }

  Result<Rule> ParseRuleText(std::string name) {
    Result<FormulaPtr> ante = ParseOr();
    if (!ante.ok()) return ante.status();
    if (Peek().kind != TokenKind::kArrow) {
      return Error("expected '->' between antecedent and consequent");
    }
    Advance();
    Result<FormulaPtr> cons = ParseOr();
    if (!cons.ok()) return cons.status();
    if (Peek().kind != TokenKind::kEnd) {
      return Error("trailing input after rule");
    }
    return Rule::Create(*ante, *cons, std::move(name));
  }

 private:
  Result<FormulaPtr> ParseOr() {
    Result<FormulaPtr> left = ParseAnd();
    if (!left.ok()) return left;
    FormulaPtr acc = *left;
    while (Peek().kind == TokenKind::kOr) {
      Advance();
      Result<FormulaPtr> right = ParseAnd();
      if (!right.ok()) return right;
      acc = Or(acc, *right);
    }
    return acc;
  }

  Result<FormulaPtr> ParseAnd() {
    Result<FormulaPtr> left = ParseUnary();
    if (!left.ok()) return left;
    FormulaPtr acc = *left;
    while (Peek().kind == TokenKind::kAnd) {
      Advance();
      Result<FormulaPtr> right = ParseUnary();
      if (!right.ok()) return right;
      acc = And(acc, *right);
    }
    return acc;
  }

  Result<FormulaPtr> ParseUnary() {
    if (Peek().kind == TokenKind::kNot) {
      Advance();
      Result<FormulaPtr> inner = ParseUnary();
      if (!inner.ok()) return inner;
      return Not(*inner);
    }
    if (Peek().kind == TokenKind::kLParen) {
      Advance();
      Result<FormulaPtr> inner = ParseOr();
      if (!inner.ok()) return inner;
      if (Peek().kind != TokenKind::kRParen) return Error("expected ')'");
      Advance();
      return inner;
    }
    return ParseAtom();
  }

  /// Parses the equality operator; sets `negated` for '!='.
  Result<bool> ParseEqOp() {
    if (Peek().kind == TokenKind::kEq) {
      Advance();
      return false;
    }
    if (Peek().kind == TokenKind::kNeq) {
      Advance();
      return true;
    }
    return Status(StatusCode::kParseError, ErrorText("expected '=' or '!='"));
  }

  Result<FormulaPtr> ParseAtom() {
    if (Peek().kind != TokenKind::kIdent) {
      return Error("expected atom (val/subj/prop/variable)");
    }
    const std::string head = Peek().text;
    const bool is_functional =
        (head == "val" || head == "subj" || head == "prop") &&
        PeekAhead(1).kind == TokenKind::kLParen;

    if (is_functional) return ParseFunctionalAtom(head);

    // var = var
    Advance();
    Result<bool> neg = ParseEqOp();
    if (!neg.ok()) return neg.status();
    if (Peek().kind != TokenKind::kIdent) {
      return Error("expected variable on right-hand side of '='");
    }
    const std::string rhs = Peek().text;
    if (rhs == "val" || rhs == "subj" || rhs == "prop") {
      return Error("mixed term equality (variable vs functional term)");
    }
    Advance();
    FormulaPtr atom = VarEq(head, rhs);
    return *neg ? Not(atom) : atom;
  }

  Result<FormulaPtr> ParseFunctionalAtom(const std::string& fn) {
    Advance();  // fn
    Advance();  // '('
    if (Peek().kind != TokenKind::kIdent) return Error("expected variable");
    const std::string var = Peek().text;
    Advance();
    if (Peek().kind != TokenKind::kRParen) return Error("expected ')'");
    Advance();
    Result<bool> neg = ParseEqOp();
    if (!neg.ok()) return neg.status();

    FormulaPtr atom;
    if (Peek().kind == TokenKind::kIdent && Peek().text == fn &&
        PeekAhead(1).kind == TokenKind::kLParen) {
      // fn(c1) = fn(c2)
      Advance();
      Advance();
      if (Peek().kind != TokenKind::kIdent) return Error("expected variable");
      const std::string var2 = Peek().text;
      Advance();
      if (Peek().kind != TokenKind::kRParen) return Error("expected ')'");
      Advance();
      if (fn == "val") {
        atom = ValEqVal(var, var2);
      } else if (fn == "subj") {
        atom = SubjEqSubj(var, var2);
      } else {
        atom = PropEqProp(var, var2);
      }
    } else if (fn == "val") {
      if (Peek().kind != TokenKind::kNumber) {
        return Error("val(c) compares against 0, 1, or val(c')");
      }
      atom = ValEqConst(var, Peek().text == "1" ? 1 : 0);
      Advance();
    } else {
      // subj/prop against a constant (URI or bareword identifier).
      if (Peek().kind == TokenKind::kUri) {
        atom = fn == "subj" ? SubjEqConst(var, Peek().text)
                            : PropEqConst(var, Peek().text);
        Advance();
      } else if (Peek().kind == TokenKind::kIdent) {
        atom = fn == "subj" ? SubjEqConst(var, Peek().text)
                            : PropEqConst(var, Peek().text);
        Advance();
      } else {
        return Error("expected constant on right-hand side");
      }
    }
    return *neg ? Not(atom) : atom;
  }

  const Token& Peek() const { return tokens_[index_]; }
  const Token& PeekAhead(std::size_t n) const {
    const std::size_t i = index_ + n;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  void Advance() {
    if (index_ + 1 < tokens_.size()) ++index_;
  }

  std::string ErrorText(const std::string& msg) const {
    return "at offset " + std::to_string(Peek().pos) + ": " + msg +
           (Peek().text.empty() ? "" : " (got '" + Peek().text + "')");
  }
  Status Error(const std::string& msg) const {
    return Status::ParseError(ErrorText(msg));
  }

  std::vector<Token> tokens_;
  std::size_t index_ = 0;
};

}  // namespace

Result<FormulaPtr> ParseFormula(std::string_view text) {
  Lexer lexer(text);
  Result<std::vector<Token>> tokens = lexer.Tokenize();
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(*tokens));
  return parser.ParseFormulaOnly();
}

Result<Rule> ParseRule(std::string_view text, std::string name) {
  Lexer lexer(text);
  Result<std::vector<Token>> tokens = lexer.Tokenize();
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(*tokens));
  return parser.ParseRuleText(std::move(name));
}

}  // namespace rdfsr::rules
