#include "rules/builtins.h"

#include "util/check.h"

namespace rdfsr::rules {

namespace {

/// Unwraps Rule::Create for builtin rules (which are correct by construction).
Rule MustCreate(FormulaPtr ante, FormulaPtr cons, std::string name) {
  Result<Rule> rule = Rule::Create(std::move(ante), std::move(cons),
                                   std::move(name));
  RDFSR_CHECK(rule.ok()) << rule.status().ToString();
  return std::move(rule).value();
}

}  // namespace

Rule CovRule() {
  return MustCreate(VarEq("c", "c"), ValEqConst("c", 1), "Cov");
}

Rule CovRuleIgnoring(const std::vector<std::string>& ignored_properties) {
  std::vector<FormulaPtr> conjuncts = {VarEq("c", "c")};
  // Display name in the Dep[p1,p2] style. MakeEvaluator keys on the
  // "CovIgnoring[" prefix but recovers the actual params from the AST.
  std::string name = "CovIgnoring[";
  for (std::size_t i = 0; i < ignored_properties.size(); ++i) {
    if (i > 0) name += ",";
    name += ignored_properties[i];
  }
  name += "]";
  for (const std::string& p : ignored_properties) {
    conjuncts.push_back(Not(PropEqConst("c", p)));
  }
  return MustCreate(AndAll(conjuncts), ValEqConst("c", 1), std::move(name));
}

Rule SimRule() {
  FormulaPtr ante = AndAll({
      Not(VarEq("c1", "c2")),
      PropEqProp("c1", "c2"),
      ValEqConst("c1", 1),
  });
  return MustCreate(std::move(ante), ValEqConst("c2", 1), "Sim");
}

Rule DepRule(const std::string& p1, const std::string& p2) {
  FormulaPtr ante = AndAll({
      SubjEqSubj("c1", "c2"),
      PropEqConst("c1", p1),
      PropEqConst("c2", p2),
      ValEqConst("c1", 1),
  });
  return MustCreate(std::move(ante), ValEqConst("c2", 1),
                    "Dep[" + p1 + "," + p2 + "]");
}

Rule SymDepRule(const std::string& p1, const std::string& p2) {
  FormulaPtr ante = AndAll({
      SubjEqSubj("c1", "c2"),
      PropEqConst("c1", p1),
      PropEqConst("c2", p2),
      Or(ValEqConst("c1", 1), ValEqConst("c2", 1)),
  });
  FormulaPtr cons = And(ValEqConst("c1", 1), ValEqConst("c2", 1));
  return MustCreate(std::move(ante), std::move(cons),
                    "SymDep[" + p1 + "," + p2 + "]");
}

Rule DepDisjunctiveRule(const std::string& p1, const std::string& p2) {
  FormulaPtr ante = AndAll({
      SubjEqSubj("c1", "c2"),
      PropEqConst("c1", p1),
      PropEqConst("c2", p2),
  });
  FormulaPtr cons = Or(ValEqConst("c1", 0), ValEqConst("c2", 1));
  return MustCreate(std::move(ante), std::move(cons),
                    "DepDisj[" + p1 + "," + p2 + "]");
}

}  // namespace rdfsr::rules
