// Concrete-syntax printing of formulas and rules.
//
// The printed form round-trips through rules/parser.h:
//   val(c1) = 1 && prop(c1) = prop(c2) && !(c1 = c2) -> val(c2) = 1

#ifndef RDFSR_RULES_PRINTER_H_
#define RDFSR_RULES_PRINTER_H_

#include <string>

#include "rules/ast.h"

namespace rdfsr::rules {

/// Prints a formula in the concrete syntax accepted by ParseFormula.
std::string ToString(const FormulaPtr& formula);

/// Prints a rule as "<antecedent> -> <consequent>".
std::string ToString(const Rule& rule);

}  // namespace rdfsr::rules

#endif  // RDFSR_RULES_PRINTER_H_
