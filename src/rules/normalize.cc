#include "rules/normalize.h"


#include <algorithm>
#include <functional>
#include "util/check.h"

namespace rdfsr::rules {

bool StructurallyEqual(const FormulaPtr& a, const FormulaPtr& b) {
  if (a == b) return true;
  if (a == nullptr || b == nullptr) return false;
  if (a->kind != b->kind) return false;
  if (a->var1 != b->var1 || a->var2 != b->var2) return false;
  if (a->value != b->value || a->constant != b->constant) return false;
  return StructurallyEqual(a->left, b->left) &&
         StructurallyEqual(a->right, b->right);
}

namespace {

/// Constant truth of an ATOM (reflexive equalities are tautologies).
ConstantTruth AtomTruth(const FormulaPtr& f) {
  switch (f->kind) {
    case FormulaKind::kVarEq:
    case FormulaKind::kValEqVal:
    case FormulaKind::kSubjEqSubj:
    case FormulaKind::kPropEqProp:
      if (f->var1 == f->var2) return ConstantTruth::kTrue;
      return ConstantTruth::kUnknown;
    default:
      return ConstantTruth::kUnknown;
  }
}

/// Sentinel tautology/contradiction markers: we reuse val(c)=0/1 shapes is
/// not possible (they are not constant), so folding keeps a three-valued
/// result alongside the rewritten formula.
struct Folded {
  FormulaPtr formula;  ///< null when the truth value is constant
  ConstantTruth truth = ConstantTruth::kUnknown;
};

Folded MakeConstant(ConstantTruth truth) {
  Folded f;
  f.truth = truth;
  return f;
}

Folded MakeFormula(FormulaPtr formula) {
  Folded f;
  f.formula = std::move(formula);
  return f;
}

ConstantTruth Negate(ConstantTruth t) {
  if (t == ConstantTruth::kTrue) return ConstantTruth::kFalse;
  if (t == ConstantTruth::kFalse) return ConstantTruth::kTrue;
  return ConstantTruth::kUnknown;
}

/// Core rewriter: returns the NNF of `f` (negated when `negate` is set),
/// folding constants bottom-up.
Folded Rewrite(const FormulaPtr& f, bool negate) {
  RDFSR_CHECK(f != nullptr);
  switch (f->kind) {
    case FormulaKind::kNot:
      return Rewrite(f->left, !negate);
    case FormulaKind::kAnd:
    case FormulaKind::kOr: {
      // De Morgan under negation: !(a && b) == !a || !b.
      const bool is_and = (f->kind == FormulaKind::kAnd) != negate;
      const FormulaKind op = is_and ? FormulaKind::kAnd : FormulaKind::kOr;
      Folded left = Rewrite(f->left, negate);
      Folded right = Rewrite(f->right, negate);
      const ConstantTruth absorb =
          is_and ? ConstantTruth::kFalse : ConstantTruth::kTrue;
      const ConstantTruth neutral =
          is_and ? ConstantTruth::kTrue : ConstantTruth::kFalse;
      if (left.truth == absorb || right.truth == absorb) {
        return MakeConstant(absorb);
      }
      if (left.truth == neutral && right.truth == neutral) {
        return MakeConstant(neutral);
      }
      if (left.truth == neutral) return right;
      if (right.truth == neutral) return left;
      // Flatten the same-operator chain (children are already normalized
      // left-folds of `op`) and dedupe structurally equal operands, so
      // idempotence is caught across the whole chain: a && b && b == a && b.
      std::vector<FormulaPtr> operands;
      const std::function<void(const FormulaPtr&)> flatten =
          [&](const FormulaPtr& node) {
            if (node->kind == op) {
              flatten(node->left);
              flatten(node->right);
              return;
            }
            for (const FormulaPtr& seen : operands) {
              if (StructurallyEqual(seen, node)) return;
            }
            operands.push_back(node);
          };
      flatten(left.formula);
      flatten(right.formula);
      FormulaPtr acc = operands[0];
      for (std::size_t i = 1; i < operands.size(); ++i) {
        acc = is_and ? And(acc, operands[i]) : Or(acc, operands[i]);
      }
      return MakeFormula(std::move(acc));
    }
    default: {
      const ConstantTruth truth = AtomTruth(f);
      if (truth != ConstantTruth::kUnknown) {
        return MakeConstant(negate ? Negate(truth) : truth);
      }
      return MakeFormula(negate ? Not(f) : f);
    }
  }
}

}  // namespace

FormulaPtr Normalize(const FormulaPtr& formula) {
  Folded folded = Rewrite(formula, false);
  if (folded.formula != nullptr) return folded.formula;
  // The formula is constant; the language has no literal true/false, so
  // represent them canonically over some variable of the original formula:
  // true  == (c = c), false == !(c = c).
  std::vector<std::string> variables;
  CollectVariables(formula, &variables);
  RDFSR_CHECK(!variables.empty()) << "formulas always mention a variable";
  FormulaPtr truth = VarEq(variables[0], variables[0]);
  return folded.truth == ConstantTruth::kTrue ? truth : Not(truth);
}

ConstantTruth DecideConstant(const FormulaPtr& formula) {
  Folded folded = Rewrite(formula, false);
  return folded.truth;
}

Rule NormalizeRule(const Rule& rule) {
  FormulaPtr ante = Normalize(rule.antecedent());
  FormulaPtr cons = Normalize(rule.consequent());
  // The rule's case counting quantifies over var(phi1): folding must not
  // change the variable set (e.g. "c = c && val(d) = 1" must keep ranging
  // over c). If it would, fall back to the original side.
  std::vector<std::string> before, after;
  CollectVariables(rule.antecedent(), &before);
  CollectVariables(ante, &after);
  if (before != after) ante = rule.antecedent();

  std::vector<std::string> cons_vars;
  CollectVariables(cons, &cons_vars);
  for (const std::string& v : cons_vars) {
    if (std::find(after.begin(), after.end(), v) == after.end() &&
        std::find(before.begin(), before.end(), v) == before.end()) {
      // Normalization introduced no new variables by construction; guard
      // anyway.
      cons = rule.consequent();
      break;
    }
  }
  Result<Rule> normalized = Rule::Create(std::move(ante), std::move(cons),
                                         rule.name());
  RDFSR_CHECK(normalized.ok()) << normalized.status().ToString();
  return std::move(normalized).value();
}

}  // namespace rdfsr::rules
