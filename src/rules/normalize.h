// Formula normalization: negation normal form and algebraic simplification.
//
// The paper notes that the expressiveness/complexity frontier of the rule
// language is open ("it would be interesting to explore subsets of our
// language with possibly lower computational complexity"). A normalizer is
// the first step of any such analysis, and it also speeds up the three-valued
// enumerator (shallower formulas, fewer double negations). Semantics are
// preserved exactly — property-tested against the brute-force evaluator.
//
// Transformations:
//   * negations pushed to the atoms (De Morgan), double negations removed,
//   * trivially-true / trivially-false atoms folded: c = c is true,
//     subj(c) = subj(c) is true, val(c) = val(c) is true, ...,
//   * idempotent / absorbing conjunctions and disjunctions folded:
//     phi && phi -> phi, phi || phi -> phi (syntactic equality).
//
// Negated atoms have no positive equivalent in the language, so NNF keeps
// kNot nodes, but only immediately above atoms.

#ifndef RDFSR_RULES_NORMALIZE_H_
#define RDFSR_RULES_NORMALIZE_H_

#include "rules/ast.h"

namespace rdfsr::rules {

/// Truth value of a formula that is constant under every assignment, if the
/// normalizer can prove it syntactically.
enum class ConstantTruth {
  kTrue,
  kFalse,
  kUnknown,
};

/// Normalizes a formula (NNF + folding). The result is semantically
/// equivalent: it satisfies exactly the same (matrix, assignment) pairs.
FormulaPtr Normalize(const FormulaPtr& formula);

/// Syntactic constant-truth detection on a normalized formula.
ConstantTruth DecideConstant(const FormulaPtr& formula);

/// Structural equality of formulas (used for idempotence folding and tests).
bool StructurallyEqual(const FormulaPtr& a, const FormulaPtr& b);

/// Normalizes both sides of a rule. The variable set of the antecedent must
/// survive normalization (otherwise the rule's semantics would change); when
/// folding would drop a variable, the original antecedent is kept.
Rule NormalizeRule(const Rule& rule);

}  // namespace rdfsr::rules

#endif  // RDFSR_RULES_NORMALIZE_H_
