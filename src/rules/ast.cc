#include "rules/ast.h"

#include <algorithm>

#include "util/check.h"

namespace rdfsr::rules {

namespace {

std::shared_ptr<Formula> MakeNode(FormulaKind kind) {
  auto node = std::make_shared<Formula>();
  node->kind = kind;
  return node;
}

}  // namespace

FormulaPtr ValEqConst(std::string var, int value) {
  RDFSR_CHECK(value == 0 || value == 1) << "val(c) compares only against 0/1";
  auto node = MakeNode(FormulaKind::kValEqConst);
  node->var1 = std::move(var);
  node->value = value;
  return node;
}

FormulaPtr SubjEqConst(std::string var, std::string constant) {
  auto node = MakeNode(FormulaKind::kSubjEqConst);
  node->var1 = std::move(var);
  node->constant = std::move(constant);
  return node;
}

FormulaPtr PropEqConst(std::string var, std::string constant) {
  auto node = MakeNode(FormulaKind::kPropEqConst);
  node->var1 = std::move(var);
  node->constant = std::move(constant);
  return node;
}

FormulaPtr VarEq(std::string var1, std::string var2) {
  auto node = MakeNode(FormulaKind::kVarEq);
  node->var1 = std::move(var1);
  node->var2 = std::move(var2);
  return node;
}

FormulaPtr ValEqVal(std::string var1, std::string var2) {
  auto node = MakeNode(FormulaKind::kValEqVal);
  node->var1 = std::move(var1);
  node->var2 = std::move(var2);
  return node;
}

FormulaPtr SubjEqSubj(std::string var1, std::string var2) {
  auto node = MakeNode(FormulaKind::kSubjEqSubj);
  node->var1 = std::move(var1);
  node->var2 = std::move(var2);
  return node;
}

FormulaPtr PropEqProp(std::string var1, std::string var2) {
  auto node = MakeNode(FormulaKind::kPropEqProp);
  node->var1 = std::move(var1);
  node->var2 = std::move(var2);
  return node;
}

FormulaPtr Not(FormulaPtr phi) {
  RDFSR_CHECK(phi != nullptr);
  auto node = MakeNode(FormulaKind::kNot);
  node->left = std::move(phi);
  return node;
}

FormulaPtr And(FormulaPtr left, FormulaPtr right) {
  RDFSR_CHECK(left != nullptr && right != nullptr);
  auto node = MakeNode(FormulaKind::kAnd);
  node->left = std::move(left);
  node->right = std::move(right);
  return node;
}

FormulaPtr AndAll(const std::vector<FormulaPtr>& formulas) {
  RDFSR_CHECK(!formulas.empty());
  FormulaPtr acc = formulas[0];
  for (std::size_t i = 1; i < formulas.size(); ++i) acc = And(acc, formulas[i]);
  return acc;
}

FormulaPtr Or(FormulaPtr left, FormulaPtr right) {
  RDFSR_CHECK(left != nullptr && right != nullptr);
  auto node = MakeNode(FormulaKind::kOr);
  node->left = std::move(left);
  node->right = std::move(right);
  return node;
}

namespace {

void AppendUnique(const std::string& value, std::vector<std::string>* out) {
  if (std::find(out->begin(), out->end(), value) == out->end()) {
    out->push_back(value);
  }
}

}  // namespace

void CollectVariables(const FormulaPtr& formula,
                      std::vector<std::string>* out) {
  if (formula == nullptr) return;
  switch (formula->kind) {
    case FormulaKind::kValEqConst:
    case FormulaKind::kSubjEqConst:
    case FormulaKind::kPropEqConst:
      AppendUnique(formula->var1, out);
      break;
    case FormulaKind::kVarEq:
    case FormulaKind::kValEqVal:
    case FormulaKind::kSubjEqSubj:
    case FormulaKind::kPropEqProp:
      AppendUnique(formula->var1, out);
      AppendUnique(formula->var2, out);
      break;
    case FormulaKind::kNot:
      CollectVariables(formula->left, out);
      break;
    case FormulaKind::kAnd:
    case FormulaKind::kOr:
      CollectVariables(formula->left, out);
      CollectVariables(formula->right, out);
      break;
  }
}

void CollectSubjectConstants(const FormulaPtr& formula,
                             std::vector<std::string>* out) {
  if (formula == nullptr) return;
  if (formula->kind == FormulaKind::kSubjEqConst) {
    AppendUnique(formula->constant, out);
  }
  CollectSubjectConstants(formula->left, out);
  CollectSubjectConstants(formula->right, out);
}

void CollectPropertyConstants(const FormulaPtr& formula,
                              std::vector<std::string>* out) {
  if (formula == nullptr) return;
  if (formula->kind == FormulaKind::kPropEqConst) {
    AppendUnique(formula->constant, out);
  }
  CollectPropertyConstants(formula->left, out);
  CollectPropertyConstants(formula->right, out);
}

Result<Rule> Rule::Create(FormulaPtr antecedent, FormulaPtr consequent,
                          std::string name) {
  if (antecedent == nullptr || consequent == nullptr) {
    return Status::InvalidArgument("rule requires antecedent and consequent");
  }
  std::vector<std::string> ante_vars;
  CollectVariables(antecedent, &ante_vars);
  std::vector<std::string> cons_vars;
  CollectVariables(consequent, &cons_vars);
  for (const std::string& v : cons_vars) {
    if (std::find(ante_vars.begin(), ante_vars.end(), v) == ante_vars.end()) {
      return Status::InvalidArgument(
          "consequent variable '" + v +
          "' does not appear in the antecedent (var(phi2) must be a subset of "
          "var(phi1))");
    }
  }
  if (ante_vars.empty()) {
    return Status::InvalidArgument("rule must mention at least one variable");
  }
  Rule rule;
  rule.antecedent_ = std::move(antecedent);
  rule.consequent_ = std::move(consequent);
  rule.variables_ = std::move(ante_vars);
  rule.name_ = std::move(name);
  return rule;
}

}  // namespace rdfsr::rules
