// The structuredness functions of Section 2.2, expressed as rules (Section 3.2).
//
// These are the three families the paper evaluates (plus documented variants):
//   Cov          c = c -> val(c) = 1
//   Sim          !(c1 = c2) && prop(c1) = prop(c2) && val(c1) = 1 -> val(c2)=1
//   Dep[p1,p2]   subj-joined pair, val(c1)=1 -> val(c2)=1
//   SymDep[p1,p2] subj-joined pair, either -> both

#ifndef RDFSR_RULES_BUILTINS_H_
#define RDFSR_RULES_BUILTINS_H_

#include <string>
#include <vector>

#include "rules/ast.h"

namespace rdfsr::rules {

/// sigma_Cov of Duan et al. [5]: the fraction of 1-cells in M(D).
Rule CovRule();

/// Cov restricted to ignore the given properties: the antecedent conjoins
/// !(prop(c) = p) for each p (the Section 3.2 "ignore a column" example; also
/// the Section 7.4 modified Cov that skips RDF-plumbing properties).
Rule CovRuleIgnoring(const std::vector<std::string>& ignored_properties);

/// sigma_Sim: probability that a property held by one subject is held by
/// another random subject.
Rule SimRule();

/// sigma_Dep[p1,p2]: probability that a subject with p1 also has p2.
Rule DepRule(const std::string& p1, const std::string& p2);

/// sigma_SymDep[p1,p2]: probability that a subject with p1 or p2 has both.
Rule SymDepRule(const std::string& p1, const std::string& p2);

/// The disjunctive-consequent Dep variant from Section 3.2: probability that a
/// random subject satisfies "has p1 implies has p2"
/// (-> val(c1) = 0 || val(c2) = 1).
Rule DepDisjunctiveRule(const std::string& p1, const std::string& p2);

}  // namespace rdfsr::rules

#endif  // RDFSR_RULES_BUILTINS_H_
