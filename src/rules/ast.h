// Abstract syntax for the structuredness-rule language of Section 3.
//
// Terms: 0, 1, URIs, variables c in V, and the functional terms val(c),
// subj(c), prop(c). Formulas: the eight atom shapes of Section 3.1 plus
// negation, conjunction, disjunction. A rule is "phi1 |-> phi2" with
// var(phi2) ⊆ var(phi1); its semantics sigma_r(M) is the fraction of variable
// assignments satisfying phi1 that also satisfy phi2 (Section 3.2).

#ifndef RDFSR_RULES_AST_H_
#define RDFSR_RULES_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "util/status.h"

namespace rdfsr::rules {

struct Formula;
using FormulaPtr = std::shared_ptr<const Formula>;

/// The syntactic shape of a formula node.
enum class FormulaKind {
  kValEqConst,   ///< val(c) = 0 | 1
  kSubjEqConst,  ///< subj(c) = u
  kPropEqConst,  ///< prop(c) = u
  kVarEq,        ///< c1 = c2 (same cell)
  kValEqVal,     ///< val(c1) = val(c2)
  kSubjEqSubj,   ///< subj(c1) = subj(c2)
  kPropEqProp,   ///< prop(c1) = prop(c2)
  kNot,          ///< ¬ phi
  kAnd,          ///< phi1 ∧ phi2
  kOr,           ///< phi1 ∨ phi2
};

/// An immutable formula tree node. Which fields are meaningful depends on
/// `kind`; construction goes through the factory functions below which enforce
/// the invariants.
struct Formula {
  FormulaKind kind;
  std::string var1;      ///< First (or only) variable, for atoms.
  std::string var2;      ///< Second variable, for two-variable atoms.
  int value = -1;        ///< 0 or 1, for kValEqConst.
  std::string constant;  ///< URI constant, for kSubjEqConst / kPropEqConst.
  FormulaPtr left;       ///< Child (kNot) or left child (kAnd/kOr).
  FormulaPtr right;      ///< Right child (kAnd/kOr).
};

/// val(c) = value, value in {0, 1}.
FormulaPtr ValEqConst(std::string var, int value);
/// subj(c) = u.
FormulaPtr SubjEqConst(std::string var, std::string constant);
/// prop(c) = u.
FormulaPtr PropEqConst(std::string var, std::string constant);
/// c1 = c2.
FormulaPtr VarEq(std::string var1, std::string var2);
/// val(c1) = val(c2).
FormulaPtr ValEqVal(std::string var1, std::string var2);
/// subj(c1) = subj(c2).
FormulaPtr SubjEqSubj(std::string var1, std::string var2);
/// prop(c1) = prop(c2).
FormulaPtr PropEqProp(std::string var1, std::string var2);
/// ¬ phi.
FormulaPtr Not(FormulaPtr phi);
/// phi1 ∧ phi2.
FormulaPtr And(FormulaPtr left, FormulaPtr right);
/// Conjunction of one or more formulas (left fold); requires non-empty input.
FormulaPtr AndAll(const std::vector<FormulaPtr>& formulas);
/// phi1 ∨ phi2.
FormulaPtr Or(FormulaPtr left, FormulaPtr right);

/// Appends the variables of `formula` to `out` in order of first appearance
/// (duplicates skipped).
void CollectVariables(const FormulaPtr& formula, std::vector<std::string>* out);

/// Appends every subject constant u mentioned in subj(c)=u atoms.
void CollectSubjectConstants(const FormulaPtr& formula,
                             std::vector<std::string>* out);

/// Appends every property constant u mentioned in prop(c)=u atoms.
void CollectPropertyConstants(const FormulaPtr& formula,
                              std::vector<std::string>* out);

/// A structuredness rule phi1 |-> phi2.
class Rule {
 public:
  /// Validates var(consequent) ⊆ var(antecedent) and builds the rule. The
  /// rule's variable order is the order of first appearance in the antecedent.
  static Result<Rule> Create(FormulaPtr antecedent, FormulaPtr consequent,
                             std::string name = "");

  const FormulaPtr& antecedent() const { return antecedent_; }
  const FormulaPtr& consequent() const { return consequent_; }

  /// var(phi1): all rule variables, in canonical order.
  const std::vector<std::string>& variables() const { return variables_; }

  /// Optional display name ("Cov", "Sim[...]", ...). Empty for ad-hoc rules.
  const std::string& name() const { return name_; }

  /// Antecedent ∧ consequent (the favorable-case formula).
  FormulaPtr Conjunction() const { return And(antecedent_, consequent_); }

 private:
  Rule() = default;

  FormulaPtr antecedent_;
  FormulaPtr consequent_;
  std::vector<std::string> variables_;
  std::string name_;
};

}  // namespace rdfsr::rules

#endif  // RDFSR_RULES_AST_H_
