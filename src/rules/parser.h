// Text parser for the rule language.
//
// Concrete syntax (whitespace-insensitive):
//
//   rule     := formula "->" formula
//   formula  := conj ("||" conj)*
//   conj     := unary ("&&" unary)*
//   unary    := "!" unary | "(" formula ")" | atom
//   atom     := "val"  "(" var ")" eq ( "0" | "1" | "val"  "(" var ")" )
//             | "subj" "(" var ")" eq ( const      | "subj" "(" var ")" )
//             | "prop" "(" var ")" eq ( const      | "prop" "(" var ")" )
//             | var eq var
//   eq       := "=" | "!="            ("!=" is sugar for negated equality)
//   const    := "<" uri ">" | identifier
//   var      := identifier            (not one of val/subj/prop)
//
// Examples (the builtin rules of Section 2.2 in this syntax):
//   Cov:    c = c -> val(c) = 1
//   Sim:    !(c1 = c2) && prop(c1) = prop(c2) && val(c1) = 1 -> val(c2) = 1
//   Dep:    subj(c1) = subj(c2) && prop(c1) = p1 && prop(c2) = p2 &&
//           val(c1) = 1 -> val(c2) = 1

#ifndef RDFSR_RULES_PARSER_H_
#define RDFSR_RULES_PARSER_H_

#include <string_view>

#include "rules/ast.h"
#include "util/status.h"

namespace rdfsr::rules {

/// Parses a formula; fails with ParseError (position included) on bad input.
Result<FormulaPtr> ParseFormula(std::string_view text);

/// Parses a full rule "phi1 -> phi2" and validates the variable condition.
Result<Rule> ParseRule(std::string_view text, std::string name = "");

}  // namespace rdfsr::rules

#endif  // RDFSR_RULES_PARSER_H_
