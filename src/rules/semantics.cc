#include "rules/semantics.h"

#include <algorithm>

#include "util/check.h"

namespace rdfsr::rules {

namespace {

int VarIndex(const std::vector<std::string>& variables, const std::string& v) {
  auto it = std::find(variables.begin(), variables.end(), v);
  RDFSR_CHECK(it != variables.end()) << "unbound rule variable '" << v << "'";
  return static_cast<int>(it - variables.begin());
}

}  // namespace

bool Satisfies(const FormulaPtr& phi, const schema::PropertyMatrix& matrix,
               const std::vector<std::string>& variables,
               const std::vector<Cell>& cells) {
  RDFSR_CHECK(phi != nullptr);
  RDFSR_CHECK_EQ(variables.size(), cells.size());
  switch (phi->kind) {
    case FormulaKind::kValEqConst: {
      const Cell c = cells[VarIndex(variables, phi->var1)];
      return matrix.At(c.first, c.second) == phi->value;
    }
    case FormulaKind::kSubjEqConst: {
      const Cell c = cells[VarIndex(variables, phi->var1)];
      return matrix.subject_name(c.first) == phi->constant;
    }
    case FormulaKind::kPropEqConst: {
      const Cell c = cells[VarIndex(variables, phi->var1)];
      return matrix.property_name(c.second) == phi->constant;
    }
    case FormulaKind::kVarEq: {
      const Cell a = cells[VarIndex(variables, phi->var1)];
      const Cell b = cells[VarIndex(variables, phi->var2)];
      return a == b;
    }
    case FormulaKind::kValEqVal: {
      const Cell a = cells[VarIndex(variables, phi->var1)];
      const Cell b = cells[VarIndex(variables, phi->var2)];
      return matrix.At(a.first, a.second) == matrix.At(b.first, b.second);
    }
    case FormulaKind::kSubjEqSubj: {
      const Cell a = cells[VarIndex(variables, phi->var1)];
      const Cell b = cells[VarIndex(variables, phi->var2)];
      return a.first == b.first;
    }
    case FormulaKind::kPropEqProp: {
      const Cell a = cells[VarIndex(variables, phi->var1)];
      const Cell b = cells[VarIndex(variables, phi->var2)];
      return a.second == b.second;
    }
    case FormulaKind::kNot:
      return !Satisfies(phi->left, matrix, variables, cells);
    case FormulaKind::kAnd:
      return Satisfies(phi->left, matrix, variables, cells) &&
             Satisfies(phi->right, matrix, variables, cells);
    case FormulaKind::kOr:
      return Satisfies(phi->left, matrix, variables, cells) ||
             Satisfies(phi->right, matrix, variables, cells);
  }
  return false;
}

namespace {

/// Enumerates all assignments of `variables` over the matrix cells, invoking
/// `visit` for each; returns how many satisfied phi (and, when phi_and is
/// non-null, also counts assignments satisfying phi ∧ phi_and).
struct EnumerationCounts {
  std::int64_t phi_count = 0;
  std::int64_t both_count = 0;
};

EnumerationCounts EnumerateAll(const FormulaPtr& phi, const FormulaPtr& phi2,
                               const schema::PropertyMatrix& matrix,
                               const std::vector<std::string>& variables) {
  EnumerationCounts counts;
  const std::int64_t subjects = static_cast<std::int64_t>(matrix.num_subjects());
  const std::int64_t props = static_cast<std::int64_t>(matrix.num_properties());
  const std::int64_t cells = subjects * props;
  if (cells == 0 || variables.empty()) return counts;

  std::vector<Cell> assignment(variables.size());
  std::vector<std::int64_t> odometer(variables.size(), 0);
  while (true) {
    for (std::size_t i = 0; i < variables.size(); ++i) {
      assignment[i] = {static_cast<int>(odometer[i] / props),
                       static_cast<int>(odometer[i] % props)};
    }
    if (Satisfies(phi, matrix, variables, assignment)) {
      ++counts.phi_count;
      if (phi2 != nullptr &&
          Satisfies(phi2, matrix, variables, assignment)) {
        ++counts.both_count;
      }
    }
    // Advance the odometer.
    std::size_t pos = 0;
    while (pos < odometer.size()) {
      if (++odometer[pos] < cells) break;
      odometer[pos] = 0;
      ++pos;
    }
    if (pos == odometer.size()) break;
  }
  return counts;
}

}  // namespace

std::int64_t CountSatisfying(const FormulaPtr& phi,
                             const schema::PropertyMatrix& matrix) {
  std::vector<std::string> variables;
  CollectVariables(phi, &variables);
  return EnumerateAll(phi, nullptr, matrix, variables).phi_count;
}

SigmaValue EvaluateBruteForce(const Rule& rule,
                              const schema::PropertyMatrix& matrix) {
  const EnumerationCounts counts = EnumerateAll(
      rule.antecedent(), rule.consequent(), matrix, rule.variables());
  SigmaValue sigma;
  sigma.total = counts.phi_count;
  sigma.favorable = counts.both_count;
  return sigma;
}

}  // namespace rdfsr::rules
