#include "rules/printer.h"

#include "util/check.h"

namespace rdfsr::rules {

namespace {

/// Wraps constants that are not plain identifiers in angle brackets.
std::string PrintConstant(const std::string& constant) {
  bool bare = !constant.empty();
  for (char c : constant) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_')) {
      bare = false;
      break;
    }
  }
  if (bare && constant != "val" && constant != "subj" && constant != "prop") {
    return constant;
  }
  return "<" + constant + ">";
}

// Precedence: Or < And < Not/atom. Children with strictly lower precedence get
// parenthesized.
int Precedence(FormulaKind kind) {
  switch (kind) {
    case FormulaKind::kOr:
      return 0;
    case FormulaKind::kAnd:
      return 1;
    default:
      return 2;
  }
}

std::string Print(const FormulaPtr& f, int parent_prec) {
  RDFSR_CHECK(f != nullptr);
  std::string out;
  const int prec = Precedence(f->kind);
  switch (f->kind) {
    case FormulaKind::kValEqConst:
      out = "val(" + f->var1 + ") = " + std::to_string(f->value);
      break;
    case FormulaKind::kSubjEqConst:
      out = "subj(" + f->var1 + ") = " + PrintConstant(f->constant);
      break;
    case FormulaKind::kPropEqConst:
      out = "prop(" + f->var1 + ") = " + PrintConstant(f->constant);
      break;
    case FormulaKind::kVarEq:
      out = f->var1 + " = " + f->var2;
      break;
    case FormulaKind::kValEqVal:
      out = "val(" + f->var1 + ") = val(" + f->var2 + ")";
      break;
    case FormulaKind::kSubjEqSubj:
      out = "subj(" + f->var1 + ") = subj(" + f->var2 + ")";
      break;
    case FormulaKind::kPropEqProp:
      out = "prop(" + f->var1 + ") = prop(" + f->var2 + ")";
      break;
    case FormulaKind::kNot:
      // Atoms under ! always get parens for readability: !(c1 = c2).
      out = "!(" + Print(f->left, 0) + ")";
      break;
    case FormulaKind::kAnd:
      out = Print(f->left, prec) + " && " + Print(f->right, prec);
      break;
    case FormulaKind::kOr:
      out = Print(f->left, prec) + " || " + Print(f->right, prec);
      break;
  }
  if (prec < parent_prec) return "(" + out + ")";
  return out;
}

}  // namespace

std::string ToString(const FormulaPtr& formula) { return Print(formula, 0); }

std::string ToString(const Rule& rule) {
  return Print(rule.antecedent(), 0) + " -> " + Print(rule.consequent(), 0);
}

}  // namespace rdfsr::rules
