// Word-packed property sets: the compact representation behind the signature
// index.
//
// A PropertySet is a fixed-capacity bitset over property (or signature)
// indices, packed 64 per machine word. Subset tests, intersections, and
// popcounts run word-at-a-time, which is what makes every evaluator and
// refinement inner loop scale with |P|/64 instead of |P| — the paper's
// signature index stays tiny (64 signatures for DBpedia Persons), but each
// sigma evaluation probes supports millions of times, so the per-probe
// constant matters.
//
// Sets carry their capacity; binary operations require both operands to have
// the same capacity (enforced with CHECK). Iteration is deterministic in
// ascending index order, and CompareLex reproduces the lexicographic order of
// the sorted index vectors the scalar representation used, so canonical
// orderings are unchanged.

#ifndef RDFSR_SCHEMA_PROPERTY_SET_H_
#define RDFSR_SCHEMA_PROPERTY_SET_H_

#include <bit>
#include <cstdint>
#include <vector>

#include "util/check.h"

namespace rdfsr::schema {

/// Fixed-capacity bitset over [0, capacity) with 64-bit word storage.
class PropertySet {
 public:
  /// Empty set of capacity 0. Binary operations on it only accept other
  /// capacity-0 sets; resize by assigning a properly-sized set.
  PropertySet() = default;

  /// Empty set over indices [0, capacity).
  explicit PropertySet(std::size_t capacity)
      : capacity_(capacity), words_((capacity + 63) / 64, 0) {}

  /// Set containing exactly `indices`, each in [0, capacity).
  static PropertySet FromIndices(std::size_t capacity,
                                 const std::vector<int>& indices) {
    PropertySet set(capacity);
    for (int i : indices) {
      RDFSR_CHECK_GE(i, 0);
      set.Insert(static_cast<std::size_t>(i));
    }
    return set;
  }

  std::size_t capacity() const { return capacity_; }

  bool Contains(std::size_t i) const {
    RDFSR_CHECK_LT(i, capacity_);
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }

  void Insert(std::size_t i) {
    RDFSR_CHECK_LT(i, capacity_);
    words_[i >> 6] |= std::uint64_t{1} << (i & 63);
  }

  void Erase(std::size_t i) {
    RDFSR_CHECK_LT(i, capacity_);
    words_[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
  }

  /// Number of elements.
  std::size_t Popcount() const {
    std::size_t n = 0;
    for (std::uint64_t w : words_) n += static_cast<std::size_t>(std::popcount(w));
    return n;
  }

  bool Empty() const {
    for (std::uint64_t w : words_) {
      if (w != 0) return false;
    }
    return true;
  }

  /// Whether every element of *this is in `o`.
  bool IsSubsetOf(const PropertySet& o) const {
    RDFSR_CHECK_EQ(capacity_, o.capacity_);
    const std::uint64_t* a = words_.data();
    const std::uint64_t* b = o.words_.data();
    for (std::size_t w = 0, n = words_.size(); w < n; ++w) {
      if (a[w] & ~b[w]) return false;
    }
    return true;
  }

  /// Whether the two sets share any element.
  bool Intersects(const PropertySet& o) const {
    RDFSR_CHECK_EQ(capacity_, o.capacity_);
    for (std::size_t w = 0; w < words_.size(); ++w) {
      if (words_[w] & o.words_[w]) return true;
    }
    return false;
  }

  /// |*this ∪ o| without materializing the union.
  std::size_t UnionCount(const PropertySet& o) const {
    RDFSR_CHECK_EQ(capacity_, o.capacity_);
    const std::uint64_t* a = words_.data();
    const std::uint64_t* b = o.words_.data();
    std::size_t n = 0;
    for (std::size_t w = 0, count = words_.size(); w < count; ++w) {
      n += static_cast<std::size_t>(std::popcount(a[w] | b[w]));
    }
    return n;
  }

  /// |*this ∩ o|.
  std::size_t IntersectCount(const PropertySet& o) const {
    RDFSR_CHECK_EQ(capacity_, o.capacity_);
    const std::uint64_t* a = words_.data();
    const std::uint64_t* b = o.words_.data();
    std::size_t n = 0;
    for (std::size_t w = 0, count = words_.size(); w < count; ++w) {
      n += static_cast<std::size_t>(std::popcount(a[w] & b[w]));
    }
    return n;
  }

  PropertySet& UnionWith(const PropertySet& o) {
    RDFSR_CHECK_EQ(capacity_, o.capacity_);
    for (std::size_t w = 0; w < words_.size(); ++w) words_[w] |= o.words_[w];
    return *this;
  }

  PropertySet& IntersectWith(const PropertySet& o) {
    RDFSR_CHECK_EQ(capacity_, o.capacity_);
    for (std::size_t w = 0; w < words_.size(); ++w) words_[w] &= o.words_[w];
    return *this;
  }

  PropertySet& DifferenceWith(const PropertySet& o) {
    RDFSR_CHECK_EQ(capacity_, o.capacity_);
    for (std::size_t w = 0; w < words_.size(); ++w) words_[w] &= ~o.words_[w];
    return *this;
  }

  friend PropertySet Union(PropertySet a, const PropertySet& b) {
    a.UnionWith(b);
    return a;
  }
  friend PropertySet Intersect(PropertySet a, const PropertySet& b) {
    a.IntersectWith(b);
    return a;
  }
  friend PropertySet Difference(PropertySet a, const PropertySet& b) {
    a.DifferenceWith(b);
    return a;
  }

  bool operator==(const PropertySet& o) const {
    return capacity_ == o.capacity_ && words_ == o.words_;
  }
  bool operator!=(const PropertySet& o) const { return !(*this == o); }

  /// Three-way comparison matching lexicographic order of the ascending index
  /// sequences (the order the scalar `std::vector<int>` supports sorted by):
  /// returns <0 when a precedes b, 0 when equal, >0 otherwise.
  static int CompareLex(const PropertySet& a, const PropertySet& b);

  /// Smallest element >= `from`, or -1 when none.
  int NextSetBit(std::size_t from) const;

  /// Calls fn(int index) for each element in ascending order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t word = words_[w];
      while (word != 0) {
        const int bit = std::countr_zero(word);
        fn(static_cast<int>(w * 64 + static_cast<std::size_t>(bit)));
        word &= word - 1;  // clear lowest set bit
      }
    }
  }

  /// Calls fn(int index) for each element of *this ∩ o in ascending order,
  /// without materializing the intersection (the incremental-stats merge path
  /// walks shared columns this way).
  template <typename Fn>
  void ForEachIntersect(const PropertySet& o, Fn&& fn) const {
    RDFSR_CHECK_EQ(capacity_, o.capacity_);
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t word = words_[w] & o.words_[w];
      while (word != 0) {
        const int bit = std::countr_zero(word);
        fn(static_cast<int>(w * 64 + static_cast<std::size_t>(bit)));
        word &= word - 1;
      }
    }
  }

  /// Elements as a sorted ascending vector (the scalar support view).
  std::vector<int> ToVector() const {
    std::vector<int> out;
    out.reserve(Popcount());
    ForEach([&](int i) { out.push_back(i); });
    return out;
  }

  /// 64-bit mix of the words; stable within a process run, suitable for
  /// unordered containers.
  std::size_t Hash() const {
    std::uint64_t h = 0xcbf29ce484222325ULL ^ capacity_;
    for (std::uint64_t w : words_) {
      h = (h ^ w) * 0x100000001b3ULL;
      h ^= h >> 29;
    }
    return static_cast<std::size_t>(h);
  }

  /// Read-only access to the packed words (benchmarks, serialization).
  const std::vector<std::uint64_t>& words() const { return words_; }

  /// Forward iterator over elements in ascending order (enables range-for).
  class const_iterator {
   public:
    using value_type = int;
    using difference_type = std::ptrdiff_t;

    const_iterator(const PropertySet* set, int pos) : set_(set), pos_(pos) {}
    int operator*() const { return pos_; }
    const_iterator& operator++() {
      // Incrementing end() stays at end() (pos_ == -1) instead of wrapping.
      if (pos_ >= 0) {
        pos_ = set_->NextSetBit(static_cast<std::size_t>(pos_) + 1);
      }
      return *this;
    }
    bool operator==(const const_iterator& o) const { return pos_ == o.pos_; }
    bool operator!=(const const_iterator& o) const { return pos_ != o.pos_; }

   private:
    const PropertySet* set_;
    int pos_;  // -1 == end
  };

  const_iterator begin() const { return const_iterator(this, NextSetBit(0)); }
  const_iterator end() const { return const_iterator(this, -1); }

 private:
  std::size_t capacity_ = 0;
  std::vector<std::uint64_t> words_;
};

/// Hash functor for unordered containers keyed by PropertySet.
struct PropertySetHash {
  std::size_t operator()(const PropertySet& s) const { return s.Hash(); }
};

}  // namespace rdfsr::schema

#endif  // RDFSR_SCHEMA_PROPERTY_SET_H_
