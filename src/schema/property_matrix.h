// The property-structure view M(D) of Section 2.1.
//
// M(D) is the |S(D)| x |P(D)| 0/1 matrix with M[s][p] = 1 iff subject s has
// property p in D ("horizontal database" view). This explicit matrix is the
// reference representation: the rule semantics of Section 3 are defined on it,
// and the brute-force evaluator in rules/semantics.h works directly on it. The
// compact SignatureIndex (schema/signature_index.h) is the production
// representation.

#ifndef RDFSR_SCHEMA_PROPERTY_MATRIX_H_
#define RDFSR_SCHEMA_PROPERTY_MATRIX_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "rdf/graph.h"
#include "util/check.h"

namespace rdfsr::schema {

/// Explicit 0/1 subject x property matrix with named rows and columns.
class PropertyMatrix {
 public:
  PropertyMatrix() = default;

  /// Builds M(D) from a graph. Row order follows first appearance of each
  /// subject in D; column order follows first appearance of each property.
  static PropertyMatrix FromGraph(const rdf::Graph& graph);

  /// Builds a matrix directly from rows of 0/1 cells (test / example helper).
  /// Subjects are named "s0","s1",... and properties "p0","p1",... unless
  /// names are given.
  static PropertyMatrix FromRows(const std::vector<std::vector<int>>& rows,
                                 std::vector<std::string> subject_names = {},
                                 std::vector<std::string> property_names = {});

  std::size_t num_subjects() const { return subject_names_.size(); }
  std::size_t num_properties() const { return property_names_.size(); }

  /// Cell value (0 or 1).
  int At(std::size_t subject, std::size_t property) const {
    RDFSR_CHECK_LT(subject, num_subjects());
    RDFSR_CHECK_LT(property, num_properties());
    return cells_[subject * num_properties() + property] ? 1 : 0;
  }

  const std::string& subject_name(std::size_t s) const {
    RDFSR_CHECK_LT(s, subject_names_.size());
    return subject_names_[s];
  }
  const std::string& property_name(std::size_t p) const {
    RDFSR_CHECK_LT(p, property_names_.size());
    return property_names_[p];
  }

  /// Index of a property by name, or -1 when absent. O(1): hashed against a
  /// map built by the factory, so const lookups never mutate shared state.
  int FindProperty(const std::string& name) const;
  /// Index of a subject by name, or -1 when absent. Hashed like FindProperty.
  int FindSubject(const std::string& name) const;

  /// Total number of 1-cells (Σ_sp M_sp).
  std::int64_t CountOnes() const;

 private:
  /// Builds the name -> index maps; called by both factories once the name
  /// vectors are final.
  void BuildNameIndexes();

  std::vector<std::string> subject_names_;
  std::vector<std::string> property_names_;
  std::vector<std::uint8_t> cells_;  // row-major
  // Name -> index maps backing FindProperty / FindSubject (duplicate names
  // keep their first index, matching the old linear scans).
  std::unordered_map<std::string, int> property_index_;
  std::unordered_map<std::string, int> subject_index_;
};

}  // namespace rdfsr::schema

#endif  // RDFSR_SCHEMA_PROPERTY_MATRIX_H_
