#include "schema/index_io.h"

#include <fstream>
#include <sstream>
#include <vector>

namespace rdfsr::schema {

namespace {
constexpr const char* kHeader = "# rdfsr-signature-index v1";
}  // namespace

std::string SerializeIndex(const SignatureIndex& index) {
  std::ostringstream out;
  out << kHeader << "\n";
  out << "properties " << index.num_properties() << "\n";
  for (std::size_t p = 0; p < index.num_properties(); ++p) {
    out << index.property_name(p) << "\n";
  }
  out << "signatures " << index.num_signatures() << "\n";
  for (std::size_t i = 0; i < index.num_signatures(); ++i) {
    const Signature& sig = index.signature(i);
    out << sig.count << " " << sig.props().Popcount();
    for (int p : sig.props()) out << " " << p;
    out << "\n";
  }
  return out.str();
}

Result<SignatureIndex> ParseIndex(std::string_view text) {
  std::istringstream in{std::string(text)};
  std::string line;

  auto next_line = [&](const char* what) -> Result<std::string> {
    if (!std::getline(in, line)) {
      return Status::ParseError(std::string("unexpected end of input: "
                                            "expected ") + what);
    }
    return line;
  };

  Result<std::string> header = next_line("header");
  if (!header.ok()) return header.status();
  if (*header != kHeader) {
    return Status::ParseError("bad header: '" + *header + "'");
  }

  Result<std::string> props_line = next_line("'properties <n>'");
  if (!props_line.ok()) return props_line.status();
  std::size_t num_props = 0;
  {
    std::istringstream ls(*props_line);
    std::string keyword;
    if (!(ls >> keyword >> num_props) || keyword != "properties") {
      return Status::ParseError("expected 'properties <n>', got '" +
                                *props_line + "'");
    }
  }
  std::vector<std::string> names;
  for (std::size_t p = 0; p < num_props; ++p) {
    Result<std::string> name = next_line("property name");
    if (!name.ok()) return name.status();
    if (name->empty()) return Status::ParseError("empty property name");
    names.push_back(*name);
  }

  Result<std::string> sigs_line = next_line("'signatures <n>'");
  if (!sigs_line.ok()) return sigs_line.status();
  std::size_t num_sigs = 0;
  {
    std::istringstream ls(*sigs_line);
    std::string keyword;
    if (!(ls >> keyword >> num_sigs) || keyword != "signatures") {
      return Status::ParseError("expected 'signatures <n>', got '" +
                                *sigs_line + "'");
    }
  }
  std::vector<Signature> signatures;
  for (std::size_t i = 0; i < num_sigs; ++i) {
    Result<std::string> row = next_line("signature row");
    if (!row.ok()) return row.status();
    std::istringstream ls(*row);
    std::int64_t count = 0;
    std::size_t support_size = 0;
    if (!(ls >> count >> support_size)) {
      return Status::ParseError("bad signature row: '" + *row + "'");
    }
    if (count <= 0) {
      return Status::ParseError("signature with non-positive count");
    }
    std::vector<int> support;
    int prev = -1;
    for (std::size_t j = 0; j < support_size; ++j) {
      int p = -1;
      if (!(ls >> p)) {
        return Status::ParseError("truncated support in row: '" + *row + "'");
      }
      if (p <= prev || static_cast<std::size_t>(p) >= num_props) {
        return Status::ParseError(
            "support ids must be strictly increasing property ids: '" + *row +
            "'");
      }
      support.push_back(p);
      prev = p;
    }
    int extra;
    if (ls >> extra) {
      return Status::ParseError("trailing tokens in row: '" + *row + "'");
    }
    if (support.empty()) {
      return Status::ParseError("signature with empty support");
    }
    signatures.emplace_back(std::move(support), count);
  }

  // FromSignatures re-validates (all properties used, supports sorted).
  // Catch its invariants here with a friendlier error for unused columns.
  std::vector<bool> used(num_props, false);
  for (const Signature& sig : signatures) {
    for (int p : sig.support()) used[p] = true;
  }
  for (std::size_t p = 0; p < num_props; ++p) {
    if (!used[p]) {
      return Status::ParseError("property '" + names[p] +
                                "' unused by every signature");
    }
  }
  return SignatureIndex::FromSignatures(std::move(names),
                                        std::move(signatures));
}

Status WriteIndexFile(const SignatureIndex& index, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::NotFound("cannot open for writing: " + path);
  out << SerializeIndex(index);
  if (!out) return Status::Internal("write failed: " + path);
  return Status::OK();
}

Result<SignatureIndex> ReadIndexFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseIndex(buf.str());
}

}  // namespace rdfsr::schema
