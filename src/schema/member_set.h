// Capacity-aware set of signature ids: sorted id vector below a density
// threshold, word-packed PropertySet above it.
//
// SortStats keeps one member set per candidate sort. The agglomerative
// heuristics hold one SortStats per part, so a dense n-bit bitset per part is
// O(n^2) bits total — the memory wall at ~100k signatures (100k parts x
// 12.5 KB = 1.25 GB of member bits alone, almost all of them zero: parts
// start as singletons and stay small until late in the run). MemberSet keeps
// small sets as sorted 32-bit ids (32 bits per member instead of `capacity`
// bits per set) and flips to the word-packed representation exactly when the
// bitset becomes the smaller encoding.
//
// Representation thresholds (see Densify/Sparsify):
//  * sparse -> dense when 32 * size >= capacity (the id vector would be at
//    least as large as the bitset),
//  * dense -> sparse when 64 * size <= capacity (hysteresis at half the
//    densify bound, so a set oscillating around the boundary does not thrash
//    between representations).
//
// Every operation is representation-independent in behavior: iteration is
// ascending, equality is set equality, and ToPropertySet() materializes the
// word-packed view on demand (memo keys in eval/cached_evaluator.cc). The
// representation is observable only through dense(), which exists for tests.

#ifndef RDFSR_SCHEMA_MEMBER_SET_H_
#define RDFSR_SCHEMA_MEMBER_SET_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "schema/property_set.h"
#include "util/check.h"

namespace rdfsr::schema {

/// Fixed-capacity set over [0, capacity) with an automatic sparse/dense
/// representation switch. Value-semantic, like PropertySet.
class MemberSet {
 public:
  /// Empty set of capacity 0; usable only as an assignment target.
  MemberSet() = default;

  /// Empty (sparse) set over [0, capacity). Allocates nothing until members
  /// are inserted.
  explicit MemberSet(std::size_t capacity) : capacity_(capacity) {}

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Whether the current representation is the word-packed bitset. Tests
  /// lock the transition thresholds through this; nothing else may depend on
  /// it.
  bool dense() const { return dense_rep_; }

  bool Contains(std::size_t i) const {
    RDFSR_CHECK_LT(i, capacity_);
    if (dense_rep_) return bits_.Contains(i);
    return std::binary_search(ids_.begin(), ids_.end(),
                              static_cast<std::uint32_t>(i));
  }

  /// Inserts `i`, which must not be present.
  void Insert(std::size_t i) {
    RDFSR_CHECK_LT(i, capacity_);
    if (dense_rep_) {
      RDFSR_CHECK(!bits_.Contains(i));
      bits_.Insert(i);
    } else {
      const auto pos = std::lower_bound(ids_.begin(), ids_.end(),
                                        static_cast<std::uint32_t>(i));
      RDFSR_CHECK(pos == ids_.end() || *pos != i);
      ids_.insert(pos, static_cast<std::uint32_t>(i));
    }
    ++size_;
    if (!dense_rep_ && 32 * size_ >= capacity_) Densify();
  }

  /// Erases `i`, which must be present.
  void Erase(std::size_t i) {
    RDFSR_CHECK_LT(i, capacity_);
    if (dense_rep_) {
      RDFSR_CHECK(bits_.Contains(i));
      bits_.Erase(i);
    } else {
      const auto pos = std::lower_bound(ids_.begin(), ids_.end(),
                                        static_cast<std::uint32_t>(i));
      RDFSR_CHECK(pos != ids_.end() && *pos == i);
      ids_.erase(pos);
    }
    --size_;
    if (dense_rep_ && 64 * size_ <= capacity_) Sparsify();
  }

  /// Whether the two sets share any element.
  bool Intersects(const MemberSet& o) const {
    RDFSR_CHECK_EQ(capacity_, o.capacity_);
    if (dense_rep_ && o.dense_rep_) return bits_.Intersects(o.bits_);
    if (!dense_rep_ && !o.dense_rep_) {
      auto a = ids_.begin();
      auto b = o.ids_.begin();
      while (a != ids_.end() && b != o.ids_.end()) {
        if (*a == *b) return true;
        if (*a < *b) {
          ++a;
        } else {
          ++b;
        }
      }
      return false;
    }
    const MemberSet& sparse = dense_rep_ ? o : *this;
    const MemberSet& dense = dense_rep_ ? *this : o;
    for (std::uint32_t id : sparse.ids_) {
      if (dense.bits_.Contains(id)) return true;
    }
    return false;
  }

  /// Folds `o` in; the sets must be disjoint.
  void UnionWith(const MemberSet& o) {
    RDFSR_CHECK_EQ(capacity_, o.capacity_);
    RDFSR_CHECK(!Intersects(o)) << "union of overlapping member sets";
    size_ += o.size_;
    if (!dense_rep_ && 32 * size_ >= capacity_) Densify();
    if (dense_rep_) {
      if (o.dense_rep_) {
        bits_.UnionWith(o.bits_);
      } else {
        for (std::uint32_t id : o.ids_) bits_.Insert(id);
      }
      return;
    }
    // Both sparse (o smaller than the densify bound): merge the sorted runs.
    std::vector<std::uint32_t> merged;
    merged.reserve(size_);
    std::merge(ids_.begin(), ids_.end(), o.ids_.begin(), o.ids_.end(),
               std::back_inserter(merged));
    ids_ = std::move(merged);
  }

  /// Calls fn(int id) for each element in ascending order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    if (dense_rep_) {
      bits_.ForEach(fn);
    } else {
      for (std::uint32_t id : ids_) fn(static_cast<int>(id));
    }
  }

  /// Elements as a sorted ascending vector.
  std::vector<int> ToVector() const {
    std::vector<int> out;
    out.reserve(size_);
    ForEach([&](int id) { out.push_back(id); });
    return out;
  }

  /// The word-packed view (memo keys); O(capacity/64) even when sparse.
  PropertySet ToPropertySet() const {
    if (dense_rep_) return bits_;
    PropertySet out(capacity_);
    for (std::uint32_t id : ids_) out.Insert(id);
    return out;
  }

  /// Set equality, independent of representation.
  bool operator==(const MemberSet& o) const {
    if (capacity_ != o.capacity_ || size_ != o.size_) return false;
    if (dense_rep_ == o.dense_rep_) {
      return dense_rep_ ? bits_ == o.bits_ : ids_ == o.ids_;
    }
    const MemberSet& sparse = dense_rep_ ? o : *this;
    const MemberSet& dense = dense_rep_ ? *this : o;
    for (std::uint32_t id : sparse.ids_) {
      if (!dense.bits_.Contains(id)) return false;
    }
    return true;
  }
  bool operator!=(const MemberSet& o) const { return !(*this == o); }

  /// Structural validation (fatal on violation): size_ matches the active
  /// representation, sparse ids are strictly ascending and in range, and the
  /// inactive representation is empty.
  void CheckInvariants() const {
    if (dense_rep_) {
      RDFSR_CHECK_EQ(bits_.capacity(), capacity_);
      RDFSR_CHECK_EQ(bits_.Popcount(), size_) << "dense size out of sync";
      RDFSR_CHECK(ids_.empty()) << "dense member set still holds ids";
    } else {
      RDFSR_CHECK_EQ(bits_.capacity(), 0u)
          << "sparse member set still holds the bitset";
      RDFSR_CHECK_EQ(ids_.size(), size_) << "sparse size out of sync";
      for (std::size_t i = 0; i < ids_.size(); ++i) {
        RDFSR_CHECK_LT(ids_[i], capacity_);
        if (i > 0) {
          RDFSR_CHECK_LT(ids_[i - 1], ids_[i])
              << "member ids not strictly ascending";
        }
      }
    }
  }

 private:
  void Densify() {
    bits_ = PropertySet(capacity_);
    for (std::uint32_t id : ids_) bits_.Insert(id);
    ids_.clear();
    ids_.shrink_to_fit();
    dense_rep_ = true;
  }

  void Sparsify() {
    ids_.clear();
    ids_.reserve(size_);
    bits_.ForEach([&](int id) { ids_.push_back(static_cast<std::uint32_t>(id)); });
    bits_ = PropertySet();
    dense_rep_ = false;
  }

  std::size_t capacity_ = 0;
  std::size_t size_ = 0;
  bool dense_rep_ = false;
  std::vector<std::uint32_t> ids_;  // sparse: sorted ascending
  PropertySet bits_;                // dense: capacity_-bit bitset
};

}  // namespace rdfsr::schema

#endif  // RDFSR_SCHEMA_MEMBER_SET_H_
