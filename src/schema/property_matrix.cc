#include "schema/property_matrix.h"

#include <unordered_map>

namespace rdfsr::schema {

PropertyMatrix PropertyMatrix::FromGraph(const rdf::Graph& graph) {
  PropertyMatrix m;
  const rdf::Dictionary& dict = graph.dict();

  std::unordered_map<rdf::TermId, std::size_t> subj_index;
  std::unordered_map<rdf::TermId, std::size_t> prop_index;
  for (rdf::TermId s : graph.subjects()) {
    subj_index.emplace(s, m.subject_names_.size());
    m.subject_names_.push_back(dict.term(s).lexical);
  }
  for (rdf::TermId p : graph.properties()) {
    prop_index.emplace(p, m.property_names_.size());
    m.property_names_.push_back(dict.term(p).lexical);
  }

  m.cells_.assign(m.num_subjects() * m.num_properties(), 0);
  for (const rdf::Triple& t : graph.triples()) {
    const std::size_t r = subj_index.at(t.subject);
    const std::size_t c = prop_index.at(t.predicate);
    m.cells_[r * m.num_properties() + c] = 1;
  }
  m.BuildNameIndexes();
  return m;
}

PropertyMatrix PropertyMatrix::FromRows(
    const std::vector<std::vector<int>>& rows,
    std::vector<std::string> subject_names,
    std::vector<std::string> property_names) {
  PropertyMatrix m;
  const std::size_t ncols = rows.empty() ? property_names.size() : rows[0].size();
  if (subject_names.empty()) {
    for (std::size_t r = 0; r < rows.size(); ++r) {
      subject_names.push_back("s" + std::to_string(r));
    }
  }
  if (property_names.empty()) {
    for (std::size_t c = 0; c < ncols; ++c) {
      property_names.push_back("p" + std::to_string(c));
    }
  }
  RDFSR_CHECK_EQ(subject_names.size(), rows.size());
  RDFSR_CHECK_EQ(property_names.size(), ncols);

  m.subject_names_ = std::move(subject_names);
  m.property_names_ = std::move(property_names);
  m.cells_.assign(rows.size() * ncols, 0);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    RDFSR_CHECK_EQ(rows[r].size(), ncols) << "ragged row " << r;
    for (std::size_t c = 0; c < ncols; ++c) {
      RDFSR_CHECK(rows[r][c] == 0 || rows[r][c] == 1);
      m.cells_[r * ncols + c] = static_cast<std::uint8_t>(rows[r][c]);
    }
  }
  m.BuildNameIndexes();
  return m;
}

void PropertyMatrix::BuildNameIndexes() {
  property_index_.reserve(property_names_.size());
  for (std::size_t i = 0; i < property_names_.size(); ++i) {
    property_index_.emplace(property_names_[i], static_cast<int>(i));
  }
  subject_index_.reserve(subject_names_.size());
  for (std::size_t i = 0; i < subject_names_.size(); ++i) {
    subject_index_.emplace(subject_names_[i], static_cast<int>(i));
  }
}

int PropertyMatrix::FindProperty(const std::string& name) const {
  auto it = property_index_.find(name);
  return it == property_index_.end() ? -1 : it->second;
}

int PropertyMatrix::FindSubject(const std::string& name) const {
  auto it = subject_index_.find(name);
  return it == subject_index_.end() ? -1 : it->second;
}

std::int64_t PropertyMatrix::CountOnes() const {
  std::int64_t total = 0;
  for (std::uint8_t v : cells_) total += v;
  return total;
}

}  // namespace rdfsr::schema
