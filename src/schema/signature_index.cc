#include "schema/signature_index.h"

#include <algorithm>
#include <map>

namespace rdfsr::schema {

SignatureIndex SignatureIndex::FromMatrix(const PropertyMatrix& matrix,
                                          bool keep_subject_names) {
  SignatureIndex index;
  for (std::size_t p = 0; p < matrix.num_properties(); ++p) {
    index.property_names_.push_back(matrix.property_name(p));
  }

  // Group subjects by support vector.
  std::map<std::vector<int>, std::vector<std::size_t>> groups;
  for (std::size_t s = 0; s < matrix.num_subjects(); ++s) {
    std::vector<int> support;
    for (std::size_t p = 0; p < matrix.num_properties(); ++p) {
      if (matrix.At(s, p)) support.push_back(static_cast<int>(p));
    }
    groups[support].push_back(s);
  }

  for (auto& [support, members] : groups) {
    Signature sig;
    sig.support = support;
    sig.count = static_cast<std::int64_t>(members.size());
    index.signatures_.push_back(std::move(sig));
    std::vector<std::string> names;
    if (keep_subject_names) {
      for (std::size_t s : members) names.push_back(matrix.subject_name(s));
    }
    index.subject_names_.push_back(std::move(names));
  }
  index.Canonicalize();
  return index;
}

SignatureIndex SignatureIndex::FromSignatures(
    std::vector<std::string> property_names, std::vector<Signature> signatures) {
  SignatureIndex index;
  index.property_names_ = std::move(property_names);
  index.signatures_ = std::move(signatures);
  for (const Signature& sig : index.signatures_) {
    RDFSR_CHECK_GT(sig.count, 0) << "empty signature set";
    for (std::size_t j = 0; j < sig.support.size(); ++j) {
      RDFSR_CHECK_GE(sig.support[j], 0);
      RDFSR_CHECK_LT(static_cast<std::size_t>(sig.support[j]),
                     index.property_names_.size());
      if (j > 0) {
        RDFSR_CHECK_LT(sig.support[j - 1], sig.support[j]);
      }
    }
  }
  // A valid dataset view has no unused columns (P(D) only contains properties
  // mentioned by some triple) and no empty supports (every subject in S(D)
  // appears in a triple, hence has at least one property).
  std::vector<bool> used(index.property_names_.size(), false);
  for (const Signature& sig : index.signatures_) {
    RDFSR_CHECK(!sig.support.empty()) << "signature with empty support";
    for (int p : sig.support) used[p] = true;
  }
  for (std::size_t p = 0; p < used.size(); ++p) {
    RDFSR_CHECK(used[p]) << "property '" << index.property_names_[p]
                         << "' unused by every signature";
  }
  index.subject_names_.resize(index.signatures_.size());
  index.Canonicalize();
  return index;
}

void SignatureIndex::Canonicalize() {
  std::vector<std::size_t> order(signatures_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (signatures_[a].count != signatures_[b].count) {
      return signatures_[a].count > signatures_[b].count;
    }
    return signatures_[a].support < signatures_[b].support;
  });

  std::vector<Signature> sigs;
  std::vector<std::vector<std::string>> names;
  sigs.reserve(signatures_.size());
  names.reserve(signatures_.size());
  for (std::size_t i : order) {
    sigs.push_back(std::move(signatures_[i]));
    names.push_back(std::move(subject_names_[i]));
  }
  signatures_ = std::move(sigs);
  subject_names_ = std::move(names);

  total_subjects_ = 0;
  subject_signature_.clear();
  for (std::size_t i = 0; i < signatures_.size(); ++i) {
    total_subjects_ += signatures_[i].count;
    for (const std::string& name : subject_names_[i]) {
      subject_signature_.emplace(name, static_cast<int>(i));
    }
  }
  RebuildFlags();
}

void SignatureIndex::RebuildFlags() {
  has_.assign(signatures_.size() * property_names_.size(), 0);
  for (std::size_t i = 0; i < signatures_.size(); ++i) {
    for (int p : signatures_[i].support) {
      has_[i * property_names_.size() + p] = 1;
    }
  }
}

int SignatureIndex::FindProperty(const std::string& name) const {
  for (std::size_t p = 0; p < property_names_.size(); ++p) {
    if (property_names_[p] == name) return static_cast<int>(p);
  }
  return -1;
}

std::int64_t SignatureIndex::PropertyCount(std::size_t prop) const {
  RDFSR_CHECK_LT(prop, property_names_.size());
  std::int64_t total = 0;
  for (std::size_t i = 0; i < signatures_.size(); ++i) {
    if (Has(i, prop)) total += signatures_[i].count;
  }
  return total;
}

int SignatureIndex::FindSubjectSignature(const std::string& subject_name) const {
  auto it = subject_signature_.find(subject_name);
  return it == subject_signature_.end() ? -1 : it->second;
}

std::int64_t SignatureIndex::CountNamedSubjects(
    const std::vector<std::string>& names, std::size_t sig) const {
  std::int64_t total = 0;
  for (const std::string& name : names) {
    auto it = subject_signature_.find(name);
    if (it != subject_signature_.end() &&
        it->second == static_cast<int>(sig)) {
      ++total;
    }
  }
  return total;
}

SignatureIndex SignatureIndex::Restrict(const std::vector<int>& sig_ids,
                                        std::vector<int>* kept_props) const {
  // Union of member supports defines the retained columns P(D_i).
  std::vector<std::uint8_t> used(property_names_.size(), 0);
  for (int id : sig_ids) {
    RDFSR_CHECK_GE(id, 0);
    RDFSR_CHECK_LT(static_cast<std::size_t>(id), signatures_.size());
    for (int p : signatures_[id].support) used[p] = 1;
  }
  std::vector<int> prop_map(property_names_.size(), -1);
  SignatureIndex sub;
  for (std::size_t p = 0; p < property_names_.size(); ++p) {
    if (used[p]) {
      prop_map[p] = static_cast<int>(sub.property_names_.size());
      sub.property_names_.push_back(property_names_[p]);
      if (kept_props != nullptr) kept_props->push_back(static_cast<int>(p));
    }
  }
  for (int id : sig_ids) {
    Signature sig;
    sig.count = signatures_[id].count;
    for (int p : signatures_[id].support) sig.support.push_back(prop_map[p]);
    std::sort(sig.support.begin(), sig.support.end());
    sub.signatures_.push_back(std::move(sig));
    sub.subject_names_.push_back(subject_names_[id]);
  }
  sub.Canonicalize();
  return sub;
}

PropertyMatrix SignatureIndex::ToMatrix() const {
  std::vector<std::vector<int>> rows;
  std::vector<std::string> subject_names;
  for (std::size_t i = 0; i < signatures_.size(); ++i) {
    std::vector<int> row(property_names_.size(), 0);
    for (int p : signatures_[i].support) row[p] = 1;
    for (std::int64_t j = 0; j < signatures_[i].count; ++j) {
      rows.push_back(row);
      if (!subject_names_[i].empty()) {
        subject_names.push_back(subject_names_[i][j]);
      } else {
        subject_names.push_back("sig" + std::to_string(i) + "_" +
                                std::to_string(j));
      }
    }
  }
  return PropertyMatrix::FromRows(rows, std::move(subject_names),
                                  property_names_);
}

}  // namespace rdfsr::schema
