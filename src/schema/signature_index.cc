#include "schema/signature_index.h"

#include <algorithm>

namespace rdfsr::schema {

void Signature::Pack(std::size_t num_properties) {
  if (packed_) {
    RDFSR_CHECK_EQ(props_.capacity(), num_properties)
        << "signature packed with wrong property count";
    return;
  }
  PropertySet props(num_properties);
  int prev = -1;
  for (int p : pending_support_) {
    RDFSR_CHECK_GT(p, prev) << "support ids must be strictly increasing";
    RDFSR_CHECK_LT(static_cast<std::size_t>(p), num_properties);
    props.Insert(static_cast<std::size_t>(p));
    prev = p;
  }
  props_ = std::move(props);
  packed_ = true;
  pending_support_.clear();
  pending_support_.shrink_to_fit();
}

SignatureIndex SignatureIndex::FromMatrix(const PropertyMatrix& matrix,
                                          bool keep_subject_names) {
  SignatureIndex index;
  for (std::size_t p = 0; p < matrix.num_properties(); ++p) {
    index.property_names_.push_back(matrix.property_name(p));
  }
  const std::size_t num_props = matrix.num_properties();

  // Group subjects by packed support row.
  std::unordered_map<PropertySet, std::vector<std::size_t>, PropertySetHash>
      groups;
  for (std::size_t s = 0; s < matrix.num_subjects(); ++s) {
    PropertySet row(num_props);
    for (std::size_t p = 0; p < num_props; ++p) {
      if (matrix.At(s, p)) row.Insert(p);
    }
    groups[std::move(row)].push_back(s);
  }

  for (auto& [row, members] : groups) {
    index.signatures_.emplace_back(row,
                                   static_cast<std::int64_t>(members.size()));
    std::vector<std::string> names;
    if (keep_subject_names) {
      for (std::size_t s : members) names.push_back(matrix.subject_name(s));
    }
    index.subject_names_.push_back(std::move(names));
  }
  index.Canonicalize();
  return index;
}

SignatureIndex SignatureIndex::FromSignatures(
    std::vector<std::string> property_names, std::vector<Signature> signatures) {
  SignatureIndex index;
  index.property_names_ = std::move(property_names);
  index.signatures_ = std::move(signatures);
  // A valid dataset view has no unused columns (P(D) only contains properties
  // mentioned by some triple) and no empty supports (every subject in S(D)
  // appears in a triple, hence has at least one property).
  PropertySet used(index.property_names_.size());
  for (Signature& sig : index.signatures_) {
    RDFSR_CHECK_GT(sig.count, 0) << "empty signature set";
    sig.Pack(index.property_names_.size());
    RDFSR_CHECK(!sig.props().Empty()) << "signature with empty support";
    used.UnionWith(sig.props());
  }
  for (std::size_t p = 0; p < index.property_names_.size(); ++p) {
    RDFSR_CHECK(used.Contains(p)) << "property '" << index.property_names_[p]
                                  << "' unused by every signature";
  }
  index.subject_names_.resize(index.signatures_.size());
  index.Canonicalize();
  return index;
}

void SignatureIndex::Canonicalize() {
  std::vector<std::size_t> order(signatures_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (signatures_[a].count != signatures_[b].count) {
      return signatures_[a].count > signatures_[b].count;
    }
    return PropertySet::CompareLex(signatures_[a].props(),
                                   signatures_[b].props()) < 0;
  });

  std::vector<Signature> sigs;
  std::vector<std::vector<std::string>> names;
  sigs.reserve(signatures_.size());
  names.reserve(signatures_.size());
  for (std::size_t i : order) {
    sigs.push_back(std::move(signatures_[i]));
    names.push_back(std::move(subject_names_[i]));
  }
  signatures_ = std::move(sigs);
  subject_names_ = std::move(names);

  total_subjects_ = 0;
  subject_signature_.clear();
  for (std::size_t i = 0; i < signatures_.size(); ++i) {
    total_subjects_ += signatures_[i].count;
    for (const std::string& name : subject_names_[i]) {
      subject_signature_.emplace(name, static_cast<int>(i));
    }
  }
  // Built here rather than lazily so that const queries on a shared index
  // never mutate (indexes are shared across Analyses, possibly cross-thread).
  property_index_.clear();
  property_index_.reserve(property_names_.size());
  for (std::size_t p = 0; p < property_names_.size(); ++p) {
    property_index_.emplace(property_names_[p], static_cast<int>(p));
  }
  // Every construction path (FromMatrix, FromSignatures, Restrict, and the
  // streaming IndexBuilder) funnels through here, so this one audit hook
  // covers the whole schema-layer boundary.
  RDFSR_AUDIT_CHECK_INVARIANTS(*this);
}

void SignatureIndex::CheckInvariants() const {
  const std::size_t num_props = property_names_.size();
  std::int64_t total = 0;
  for (std::size_t i = 0; i < signatures_.size(); ++i) {
    const Signature& sig = signatures_[i];
    RDFSR_CHECK(sig.packed_) << "signature " << i << " not packed";
    RDFSR_CHECK_EQ(sig.props().capacity(), num_props)
        << "signature " << i << " packed at wrong capacity";
    RDFSR_CHECK_GT(sig.count, 0) << "signature " << i << " has empty set";
    RDFSR_CHECK(!sig.props().Empty())
        << "signature " << i << " has empty support";
    total += sig.count;
    if (i > 0) {
      const Signature& prev = signatures_[i - 1];
      const bool canonical =
          prev.count > sig.count ||
          (prev.count == sig.count &&
           PropertySet::CompareLex(prev.props(), sig.props()) < 0);
      RDFSR_CHECK(canonical) << "signatures " << i - 1 << ", " << i
                             << " violate (count desc, lex asc) order";
    }
  }
  RDFSR_CHECK_EQ(total, total_subjects_) << "total_subjects out of sync";

  RDFSR_CHECK_EQ(property_index_.size(), num_props)
      << "property map size mismatch";
  for (std::size_t p = 0; p < num_props; ++p) {
    const auto it = property_index_.find(property_names_[p]);
    RDFSR_CHECK(it != property_index_.end() &&
                it->second == static_cast<int>(p))
        << "property map inconsistent at column " << p;
  }

  RDFSR_CHECK_EQ(subject_names_.size(), signatures_.size())
      << "subject-name rows out of sync with signatures";
  std::size_t named = 0;
  for (std::size_t i = 0; i < subject_names_.size(); ++i) {
    if (subject_names_[i].empty()) continue;
    RDFSR_CHECK_EQ(static_cast<std::int64_t>(subject_names_[i].size()),
                   signatures_[i].count)
        << "signature " << i << " name count != subject count";
    named += subject_names_[i].size();
    for (const std::string& name : subject_names_[i]) {
      const auto it = subject_signature_.find(name);
      RDFSR_CHECK(it != subject_signature_.end() &&
                  it->second == static_cast<int>(i))
          << "subject map inconsistent for '" << name << "'";
    }
  }
  RDFSR_CHECK_EQ(subject_signature_.size(), named)
      << "subject map holds entries for unnamed signatures";
}

int SignatureIndex::FindProperty(const std::string& name) const {
  auto it = property_index_.find(name);
  return it == property_index_.end() ? -1 : it->second;
}

std::int64_t SignatureIndex::PropertyCount(std::size_t prop) const {
  RDFSR_CHECK_LT(prop, property_names_.size());
  std::int64_t total = 0;
  for (const Signature& sig : signatures_) {
    if (sig.props().Contains(prop)) total += sig.count;
  }
  return total;
}

int SignatureIndex::FindSubjectSignature(const std::string& subject_name) const {
  auto it = subject_signature_.find(subject_name);
  return it == subject_signature_.end() ? -1 : it->second;
}

std::int64_t SignatureIndex::CountNamedSubjects(
    const std::vector<std::string>& names, std::size_t sig) const {
  std::int64_t total = 0;
  for (const std::string& name : names) {
    auto it = subject_signature_.find(name);
    if (it != subject_signature_.end() &&
        it->second == static_cast<int>(sig)) {
      ++total;
    }
  }
  return total;
}

PropertySet SignatureIndex::SupportUnion(const std::vector<int>& sig_ids) const {
  PropertySet used(property_names_.size());
  for (int id : sig_ids) {
    RDFSR_CHECK_GE(id, 0);
    RDFSR_CHECK_LT(static_cast<std::size_t>(id), signatures_.size());
    used.UnionWith(signatures_[id].props());
  }
  return used;
}

SignatureIndex SignatureIndex::Restrict(const std::vector<int>& sig_ids,
                                        std::vector<int>* kept_props) const {
  // Union of member supports defines the retained columns P(D_i).
  const PropertySet used = SupportUnion(sig_ids);
  std::vector<int> prop_map(property_names_.size(), -1);
  SignatureIndex sub;
  used.ForEach([&](int p) {
    prop_map[p] = static_cast<int>(sub.property_names_.size());
    sub.property_names_.push_back(property_names_[p]);
    if (kept_props != nullptr) kept_props->push_back(p);
  });
  const std::size_t sub_props = sub.property_names_.size();
  for (int id : sig_ids) {
    PropertySet remapped(sub_props);
    signatures_[id].props().ForEach(
        [&](int p) { remapped.Insert(static_cast<std::size_t>(prop_map[p])); });
    sub.signatures_.emplace_back(std::move(remapped), signatures_[id].count);
    sub.subject_names_.push_back(subject_names_[id]);
  }
  sub.Canonicalize();
  return sub;
}

PropertyMatrix SignatureIndex::ToMatrix() const {
  std::vector<std::vector<int>> rows;
  std::vector<std::string> subject_names;
  for (std::size_t i = 0; i < signatures_.size(); ++i) {
    std::vector<int> row(property_names_.size(), 0);
    signatures_[i].props().ForEach([&](int p) { row[p] = 1; });
    for (std::int64_t j = 0; j < signatures_[i].count; ++j) {
      rows.push_back(row);
      if (!subject_names_[i].empty()) {
        subject_names.push_back(subject_names_[i][j]);
      } else {
        subject_names.push_back("sig" + std::to_string(i) + "_" +
                                std::to_string(j));
      }
    }
  }
  return PropertyMatrix::FromRows(rows, std::move(subject_names),
                                  property_names_);
}

}  // namespace rdfsr::schema
