// ASCII rendering of the horizontal-table visualizations of Figures 2-7.
//
// The paper draws each dataset as a subjects x properties bitmap with rows
// grouped into signature sets in descending size order (black = property
// present). We render one text row per signature set, scaled bar-style, so the
// structural difference between e.g. DBpedia Persons (ragged) and WordNet Nouns
// (five solid columns) is visible in a terminal.

#ifndef RDFSR_SCHEMA_ASCII_VIEW_H_
#define RDFSR_SCHEMA_ASCII_VIEW_H_

#include <string>
#include <vector>

#include "schema/signature_index.h"

namespace rdfsr::schema {

/// Rendering options.
struct AsciiViewOptions {
  std::size_t max_rows = 24;        ///< Max signature rows to print.
  bool show_property_header = true; ///< Print abbreviated property names.
  bool show_counts = true;          ///< Print signature-set sizes at row ends.
  char present = '#';               ///< Glyph for a present property.
  char absent = '.';                ///< Glyph for an absent property.
};

/// Renders the signature view of a dataset (Figures 2 and 3).
std::string RenderSignatureView(const SignatureIndex& index,
                                const AsciiViewOptions& options = {});

/// Renders a sort refinement side by side: each element of `partition` is a
/// list of signature ids of `index` (Figures 4-7). Sorts are rendered one
/// after another, each with its own header line.
std::string RenderRefinementView(const SignatureIndex& index,
                                 const std::vector<std::vector<int>>& partition,
                                 const AsciiViewOptions& options = {});

/// Shortens a property IRI/name to its final segment, clipped to `width`.
std::string AbbreviateProperty(const std::string& name, std::size_t width = 14);

}  // namespace rdfsr::schema

#endif  // RDFSR_SCHEMA_ASCII_VIEW_H_
