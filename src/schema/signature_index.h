// Signatures and the compact signature index (Definition 4.1 and the "views"
// of Section 1).
//
// The signature of a subject s is the function sig(s,D): P(D) -> {0,1} marking
// which properties s has; a signature set is the group of subjects sharing a
// signature. The SignatureIndex stores, per signature: its support as a
// word-packed PropertySet and its size (subject count). This is the size
// reduction that makes the ILP practical: DBpedia Persons collapses from
// 790,703 subjects to 64 signatures ("3 KB of storage" in the paper) — and
// word-packing the supports makes every probe of that index (subset tests,
// overlap counts, membership) a handful of 64-bit operations.
//
// Subjects with equal signatures are structurally identical, so every
// computation in eval/ and core/ is defined on this index; signature sets are
// also the atomic units moved by a sort refinement (Definition 4.2 requires
// implicit sorts to be closed under signatures).

#ifndef RDFSR_SCHEMA_SIGNATURE_INDEX_H_
#define RDFSR_SCHEMA_SIGNATURE_INDEX_H_

#include <cstdint>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "schema/property_matrix.h"
#include "schema/property_set.h"
#include "util/check.h"

namespace rdfsr::schema {

/// One signature set: a word-packed property support plus the number of
/// subjects sharing it.
///
/// Constructible either from a packed PropertySet (index-internal paths) or
/// from a sorted index vector (generators, parsers, tests); in the latter case
/// the words are packed by the index builder once the property count is known.
/// The scalar sorted-index view remains available through support(), derived
/// lazily from the words.
class Signature {
 public:
  Signature() = default;

  /// From an already-packed support. Templated so that only an actual
  /// PropertySet binds here — a braced index list like {{0}, 2} must not be
  /// ambiguous against PropertySet's explicit capacity constructor.
  template <typename PS,
            typename = std::enable_if_t<
                std::is_same_v<std::remove_cvref_t<PS>, PropertySet>>>
  Signature(PS&& props, std::int64_t count)
      : count(count), props_(std::forward<PS>(props)), packed_(true) {}

  /// From a strictly-increasing vector of property indices. The capacity of
  /// the packed words is fixed later by SignatureIndex::FromSignatures (which
  /// knows the property count).
  Signature(std::vector<int> support, std::int64_t count)
      : count(count), pending_support_(std::move(support)) {}

  std::int64_t count = 0;  ///< Size of the signature set (# subjects).

  /// Word-packed support. Only valid once owned by a SignatureIndex (or
  /// constructed from a PropertySet directly).
  const PropertySet& props() const {
    RDFSR_CHECK(packed_) << "signature support not packed yet";
    return props_;
  }

  /// Sorted ascending property indices — the scalar view, derived on demand
  /// from the packed words (or the pending construction input). Returned by
  /// value: the words are the single source of truth, and deriving per call
  /// keeps const reads of a shared index race-free.
  std::vector<int> support() const {
    return packed_ ? props_.ToVector() : pending_support_;
  }

 private:
  friend class SignatureIndex;

  /// Packs the pending index vector into words of the given capacity,
  /// validating bounds and strict monotonicity. No-op when already packed
  /// with matching capacity.
  void Pack(std::size_t num_properties);

  PropertySet props_;
  bool packed_ = false;
  std::vector<int> pending_support_;  // construction input until packed
};

/// Compact, deterministic view of a dataset: properties, signature sets, and
/// (optionally) the signature of individually named subjects.
///
/// Signatures are canonically ordered by (count desc, support lex asc) so that
/// figures and ILP variable ids are stable across runs.
class SignatureIndex {
 public:
  SignatureIndex() = default;

  /// Builds the index from an explicit matrix. When `keep_subject_names` is
  /// true, the subject-name -> signature map needed by rules mentioning
  /// subj(c) = <constant> is retained.
  static SignatureIndex FromMatrix(const PropertyMatrix& matrix,
                                   bool keep_subject_names = true);

  /// Builds the index from raw (support, count) pairs; property names given
  /// explicitly. Used by synthetic generators that never materialize subjects.
  static SignatureIndex FromSignatures(std::vector<std::string> property_names,
                                       std::vector<Signature> signatures);

  std::size_t num_signatures() const { return signatures_.size(); }
  std::size_t num_properties() const { return property_names_.size(); }

  const Signature& signature(std::size_t i) const {
    RDFSR_CHECK_LT(i, signatures_.size());
    return signatures_[i];
  }
  const std::string& property_name(std::size_t p) const {
    RDFSR_CHECK_LT(p, property_names_.size());
    return property_names_[p];
  }
  const std::vector<std::string>& property_names() const {
    return property_names_;
  }

  /// Index of a property by name, or -1 when absent. O(1): backed by a hash
  /// map built at construction (Canonicalize), so const queries on a shared
  /// index never mutate.
  int FindProperty(const std::string& name) const;

  /// Whether signature i has property p — a single word probe.
  bool Has(std::size_t sig, std::size_t prop) const {
    RDFSR_CHECK_LT(sig, signatures_.size());
    return signatures_[sig].props().Contains(prop);
  }

  /// Total subjects Σ_μ |S_μ|.
  std::int64_t total_subjects() const { return total_subjects_; }

  /// Number of subjects having property p (column count).
  std::int64_t PropertyCount(std::size_t prop) const;

  /// Signature id of a named subject, or -1 when unknown. Only meaningful when
  /// the index was built with keep_subject_names=true.
  int FindSubjectSignature(const std::string& subject_name) const;

  /// Number of named subjects whose signature is `sig` among the given subject
  /// names (used by the generic counter to handle subj(c)=u constants exactly).
  std::int64_t CountNamedSubjects(const std::vector<std::string>& names,
                                  std::size_t sig) const;

  /// Restriction of the index to a subset of signatures (an implicit sort).
  /// Properties not supported by any member signature are dropped, mirroring
  /// P(D_i) of the sub-dataset; `kept_props`, if non-null, receives the global
  /// property index of each retained column. The retained-column union and the
  /// per-member remapping run on the packed words.
  SignatureIndex Restrict(const std::vector<int>& sig_ids,
                          std::vector<int>* kept_props = nullptr) const;

  /// Union of the supports of the given signatures (P(D_i) as a word set).
  PropertySet SupportUnion(const std::vector<int>& sig_ids) const;

  /// Expands the index back to an explicit matrix with synthesized subject
  /// names ("sig<i>_<j>") when names were not kept. For tests and rendering.
  PropertyMatrix ToMatrix() const;

  /// Full structural validation (fatal on violation): every signature packed
  /// at |P| capacity with positive count and non-empty support, canonical
  /// (count desc, support lex asc) order, total_subjects consistency, and
  /// both lookup maps consistent with the vectors they index. Always
  /// compiled — tests call it directly; the library re-validates at layer
  /// boundaries in audit builds (RDFSR_AUDIT_CHECK_INVARIANTS).
  void CheckInvariants() const;

 private:
  friend struct AuditTestPeer;  // invariant-oracle tests corrupt state
  friend class IndexBuilder;  // streaming construction (schema/index_builder.h)

  void Canonicalize();

  std::vector<std::string> property_names_;
  std::vector<Signature> signatures_;
  std::int64_t total_subjects_ = 0;
  // subject name -> signature id (optional; empty when not kept).
  std::unordered_map<std::string, int> subject_signature_;
  // Per signature, the retained subject names (parallel to signatures_; empty
  // vectors when names not kept).
  std::vector<std::vector<std::string>> subject_names_;
  // Property name -> index map backing FindProperty; rebuilt by
  // Canonicalize alongside the subject map.
  std::unordered_map<std::string, int> property_index_;
};

}  // namespace rdfsr::schema

#endif  // RDFSR_SCHEMA_SIGNATURE_INDEX_H_
