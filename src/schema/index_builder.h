// Streaming construction of a SignatureIndex from (subject, property) id
// pairs — the ingestion fast path.
//
// The legacy load chain materialized the dense |S(D)| x |P(D)| PropertyMatrix
// before collapsing it into signatures: O(subjects x properties) bytes of
// intermediate state, which is exactly what makes DBpedia/WordNet-scale inputs
// (tens of millions of triples) memory-infeasible long before the refinement
// solver matters. IndexBuilder replaces that chain on the Dataset hot path:
// it accumulates dictionary-encoded (subject_id, property_id) pairs as they
// stream out of the parser (8 bytes per triple, duplicates welcome), then
// sorts + uniques + groups them into per-subject word-packed PropertySet rows
// and hashes the rows into signature sets. Peak intermediate state is
// O(triples + signatures), never O(subjects x properties).
//
// The result is canonically identical — property column order, signature
// order, subject-name maps, byte for byte — to
// SignatureIndex::FromMatrix(PropertyMatrix::FromGraph(g)), which remains the
// reference implementation for tests and generators
// (tests/index_builder_test.cc asserts the equivalence on random graphs).

#ifndef RDFSR_SCHEMA_INDEX_BUILDER_H_
#define RDFSR_SCHEMA_INDEX_BUILDER_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "rdf/graph.h"
#include "schema/signature_index.h"
#include "util/deadline.h"

namespace rdfsr::util {
class ThreadPool;
}  // namespace rdfsr::util

namespace rdfsr::schema {

/// Accumulates per-subject property supports and emits the canonical
/// SignatureIndex. Single-use: call Add per (subject, property) mention, then
/// Build once.
class IndexBuilder {
 public:
  IndexBuilder() = default;

  /// Pre-sizes the pair buffer (e.g. to the known triple count).
  void ReservePairs(std::size_t pairs) { pairs_.reserve(pairs); }

  /// Records that `subject` has `property`. Duplicates are fine (collapsed at
  /// Build). First-call order defines the row/column order of the result,
  /// matching the first-appearance order PropertyMatrix::FromGraph uses.
  void Add(rdf::TermId subject, rdf::TermId property) {
    const std::uint32_t s = DenseId(subject, &subj_dense_, &subjects_);
    const std::uint32_t p = DenseId(property, &prop_dense_, &properties_);
    pairs_.push_back((static_cast<std::uint64_t>(s) << 32) | p);
  }

  /// Pair mentions recorded so far (before dedup).
  std::size_t num_pairs() const { return pairs_.size(); }
  /// Distinct subjects / properties seen so far.
  std::size_t num_subjects() const { return subjects_.size(); }
  std::size_t num_properties() const { return properties_.size(); }

  /// Bytes of transient state held by the builder — the ingestion
  /// peak-memory proxy benchmarked against the legacy dense matrix (whose
  /// equivalent figure is subjects x properties cells). The grouping stage of
  /// Build adds one PropertySet row per distinct signature on top of this.
  std::size_t intermediate_bytes() const {
    return pairs_.capacity() * sizeof(std::uint64_t) +
           (subj_dense_.capacity() + prop_dense_.capacity()) *
               sizeof(std::int32_t) +
           (subjects_.capacity() + properties_.capacity()) *
               sizeof(rdf::TermId);
  }

  /// Sorts, dedups, and groups the accumulated pairs into the canonical
  /// SignatureIndex. Names resolve through `dict` (the dictionary the ids
  /// were interned in). Consumes the builder's state.
  ///
  /// `pool`, when non-null, parallelizes the pair sort (chunk sort + merge
  /// rounds over fixed offsets) and the grouping stage (ranges split at
  /// subject boundaries, merged serially in range order). Both are
  /// bit-identical to the serial path: the sort is a multiset sort of
  /// integers over deterministic chunk bounds, and range-order merging
  /// reproduces the serial first-appearance discovery order of signatures
  /// and the global subject order within each signature's name list.
  ///
  /// `cancel` is polled between the sort/grouping stages and periodically
  /// inside the serial grouping loop. A tripped token makes Build return
  /// early with a structurally valid but incomplete index — the caller must
  /// consult the token and discard the result (api::Dataset does; it maps
  /// the trip to kCancelled / kDeadlineExceeded).
  SignatureIndex Build(const rdf::Dictionary& dict, bool keep_subject_names,
                       util::ThreadPool* pool = nullptr,
                       const util::CancellationToken& cancel = {});

  /// One-shot: the index of a whole graph, no dense intermediate. Canonically
  /// identical to FromMatrix(PropertyMatrix::FromGraph(graph), ...).
  static SignatureIndex FromGraph(const rdf::Graph& graph,
                                  bool keep_subject_names = true,
                                  util::ThreadPool* pool = nullptr,
                                  const util::CancellationToken& cancel = {});

  /// One-shot: the index of the sort slice D_t, computed from the graph's
  /// rdf:type posting list without materializing the slice as a second graph.
  /// Type triples are excluded from the view (the paper's convention).
  /// `slice_triples`, if non-null, receives |D_t|; an unknown sort (or one
  /// with no non-type triples) yields an empty index and 0 triples.
  static SignatureIndex FromSortSlice(const rdf::Graph& graph,
                                      std::string_view type_iri,
                                      bool keep_subject_names = true,
                                      std::size_t* slice_triples = nullptr,
                                      util::ThreadPool* pool = nullptr,
                                      const util::CancellationToken& cancel = {});

 private:
  /// First-appearance dense id of a term id, grown on demand. The dense
  /// remap is direct-addressed (term ids are dense already), so the hot Add
  /// path does no hashing at all.
  static std::uint32_t DenseId(rdf::TermId id, std::vector<std::int32_t>* dense,
                               std::vector<rdf::TermId>* order) {
    if (dense->size() <= id) dense->resize(id + 1, -1);
    std::int32_t& slot = (*dense)[id];
    if (slot < 0) {
      slot = static_cast<std::int32_t>(order->size());
      order->push_back(id);
    }
    return static_cast<std::uint32_t>(slot);
  }

  std::vector<std::int32_t> subj_dense_;   // TermId -> dense row, -1 unseen
  std::vector<std::int32_t> prop_dense_;   // TermId -> dense column, -1 unseen
  std::vector<rdf::TermId> subjects_;      // dense row -> TermId
  std::vector<rdf::TermId> properties_;    // dense column -> TermId
  std::vector<std::uint64_t> pairs_;       // (row << 32) | column
};

}  // namespace rdfsr::schema

#endif  // RDFSR_SCHEMA_INDEX_BUILDER_H_
