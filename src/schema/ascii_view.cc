#include "schema/ascii_view.h"

#include <algorithm>
#include <sstream>

#include "util/table.h"

namespace rdfsr::schema {

std::string AbbreviateProperty(const std::string& name, std::size_t width) {
  std::size_t cut = name.find_last_of("/#");
  std::string tail = cut == std::string::npos ? name : name.substr(cut + 1);
  if (tail.empty()) tail = name;
  if (tail.size() > width) tail = tail.substr(0, width - 1) + "~";
  return tail;
}

namespace {

/// Renders the property header as vertical-ish column labels: one line listing
/// abbreviated names with column markers.
std::string RenderHeader(const SignatureIndex& index) {
  std::ostringstream out;
  for (std::size_t p = 0; p < index.num_properties(); ++p) {
    out << "  col " << p << ": " << AbbreviateProperty(index.property_name(p))
        << "\n";
  }
  return out.str();
}

std::string RenderRows(const SignatureIndex& index,
                       const AsciiViewOptions& options) {
  std::ostringstream out;
  const std::size_t rows = std::min(options.max_rows, index.num_signatures());
  for (std::size_t i = 0; i < rows; ++i) {
    out << "  ";
    for (std::size_t p = 0; p < index.num_properties(); ++p) {
      out << (index.Has(i, p) ? options.present : options.absent);
    }
    if (options.show_counts) {
      out << "  x " << FormatCount(index.signature(i).count);
    }
    out << "\n";
  }
  if (rows < index.num_signatures()) {
    out << "  ... (" << (index.num_signatures() - rows)
        << " more signature sets)\n";
  }
  return out.str();
}

}  // namespace

std::string RenderSignatureView(const SignatureIndex& index,
                                const AsciiViewOptions& options) {
  std::ostringstream out;
  out << "subjects=" << FormatCount(index.total_subjects())
      << " properties=" << index.num_properties()
      << " signatures=" << index.num_signatures() << "\n";
  if (options.show_property_header) out << RenderHeader(index);
  out << RenderRows(index, options);
  return out.str();
}

std::string RenderRefinementView(const SignatureIndex& index,
                                 const std::vector<std::vector<int>>& partition,
                                 const AsciiViewOptions& options) {
  std::ostringstream out;
  for (std::size_t i = 0; i < partition.size(); ++i) {
    std::int64_t subjects = 0;
    for (int sig : partition[i]) subjects += index.signature(sig).count;
    out << "sort " << (i + 1) << ": " << FormatCount(subjects) << " subjects, "
        << partition[i].size() << " signatures\n";
    // Render member signatures against the full (global) property axis so the
    // sorts line up column-wise, as in the paper's figures.
    std::vector<int> sorted = partition[i];
    std::sort(sorted.begin(), sorted.end(), [&](int a, int b) {
      if (index.signature(a).count != index.signature(b).count) {
        return index.signature(a).count > index.signature(b).count;
      }
      return PropertySet::CompareLex(index.signature(a).props(),
                                     index.signature(b).props()) < 0;
    });
    const std::size_t rows = std::min(options.max_rows, sorted.size());
    for (std::size_t r = 0; r < rows; ++r) {
      out << "  ";
      for (std::size_t p = 0; p < index.num_properties(); ++p) {
        out << (index.Has(sorted[r], p) ? options.present : options.absent);
      }
      if (options.show_counts) {
        out << "  x " << FormatCount(index.signature(sorted[r]).count);
      }
      out << "\n";
    }
    if (rows < sorted.size()) {
      out << "  ... (" << (sorted.size() - rows) << " more signature sets)\n";
    }
  }
  return out.str();
}

}  // namespace rdfsr::schema
