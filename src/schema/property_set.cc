#include "schema/property_set.h"

namespace rdfsr::schema {

int PropertySet::NextSetBit(std::size_t from) const {
  if (from >= capacity_) return -1;
  std::size_t w = from >> 6;
  std::uint64_t word = words_[w] & (~std::uint64_t{0} << (from & 63));
  while (true) {
    if (word != 0) {
      return static_cast<int>(w * 64 +
                              static_cast<std::size_t>(std::countr_zero(word)));
    }
    if (++w == words_.size()) return -1;
    word = words_[w];
  }
}

int PropertySet::CompareLex(const PropertySet& a, const PropertySet& b) {
  RDFSR_CHECK_EQ(a.capacity_, b.capacity_);
  // Find the smallest index d where membership differs. All smaller indices
  // agree, so the ascending index sequences share a common prefix up to d.
  // Let B be the set containing d. B's next sequence element is d itself; A's
  // is its smallest element > d (if any). Hence B precedes A — unless A has
  // no element above d at all, making A a strict prefix of B, and a prefix
  // precedes its extension.
  for (std::size_t w = 0; w < a.words_.size(); ++w) {
    const std::uint64_t diff = a.words_[w] ^ b.words_[w];
    if (diff == 0) continue;
    const int bit = std::countr_zero(diff);
    const bool in_a = (a.words_[w] >> bit) & 1u;
    // The holder of d precedes `other` unless `other` is a strict prefix.
    const PropertySet& other = in_a ? b : a;
    // Does `other` have any element above d?
    const std::uint64_t above_mask =
        bit == 63 ? 0 : (~std::uint64_t{0} << (bit + 1));
    bool other_has_above = (other.words_[w] & above_mask) != 0;
    for (std::size_t w2 = w + 1; !other_has_above && w2 < other.words_.size();
         ++w2) {
      other_has_above = other.words_[w2] != 0;
    }
    if (other_has_above) return in_a ? -1 : 1;  // holder precedes other
    return in_a ? 1 : -1;                       // other is a strict prefix
  }
  return 0;
}

}  // namespace rdfsr::schema
