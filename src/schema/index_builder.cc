#include "schema/index_builder.h"

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "rdf/vocab.h"
#include "schema/property_set.h"
#include "util/thread_pool.h"

namespace rdfsr::schema {

namespace {

// Below this many pairs the serial paths win outright; the parallel sort and
// grouping stages both use it as their cutoff. Low enough that the
// determinism tests (random graphs of a few thousand triples) exercise the
// parallel branches.
constexpr std::size_t kParallelPairCutoff = 4096;

// Sorts `pairs` on `pool`: power-of-two chunk count over fixed offsets, each
// chunk sorted in parallel, then log2(k) parallel pairwise merge rounds into
// a double buffer. The chunk bounds are pure functions of (n, lane count) and
// std::merge over integers is order-deterministic, so the result is the exact
// byte sequence std::sort produces.
void ParallelSortPairs(std::vector<std::uint64_t>* pairs,
                       util::ThreadPool* pool) {
  const std::size_t n = pairs->size();
  const std::size_t lanes =
      pool == nullptr ? 1 : static_cast<std::size_t>(pool->workers()) + 1;
  if (lanes <= 1 || n < kParallelPairCutoff) {
    std::sort(pairs->begin(), pairs->end());
    return;
  }
  std::size_t k = 1;
  while (k < lanes) k <<= 1;
  std::vector<std::size_t> bounds(k + 1);
  for (std::size_t i = 0; i <= k; ++i) bounds[i] = i * n / k;
  pool->ParallelFor(k, [&](std::size_t b, std::size_t e) {
    for (std::size_t j = b; j < e; ++j) {
      std::sort(pairs->begin() + bounds[j], pairs->begin() + bounds[j + 1]);
    }
  });
  std::vector<std::uint64_t> tmp(n);
  std::vector<std::uint64_t>* src = pairs;
  std::vector<std::uint64_t>* dst = &tmp;
  while (k > 1) {
    pool->ParallelFor(k / 2, [&](std::size_t b, std::size_t e) {
      for (std::size_t j = b; j < e; ++j) {
        std::merge(src->begin() + bounds[2 * j],
                   src->begin() + bounds[2 * j + 1],
                   src->begin() + bounds[2 * j + 1],
                   src->begin() + bounds[2 * j + 2],
                   dst->begin() + bounds[2 * j]);
      }
    });
    for (std::size_t j = 0; j <= k / 2; ++j) bounds[j] = bounds[2 * j];
    k /= 2;
    std::swap(src, dst);
  }
  if (src != pairs) pairs->swap(*src);
}

// Per-range grouping output: distinct signature rows in local first-subject
// order, each with its multiplicity and the dense subject ids (ascending)
// that carry it.
struct RangeGroups {
  std::unordered_map<PropertySet, std::size_t, PropertySetHash> map;
  std::vector<std::int64_t> counts;
  std::vector<std::vector<std::uint32_t>> row_subjects;
  std::vector<const PropertySet*> rows;
};

}  // namespace

SignatureIndex IndexBuilder::Build(const rdf::Dictionary& dict,
                                   bool keep_subject_names,
                                   util::ThreadPool* pool,
                                   const util::CancellationToken& cancel) {
  SignatureIndex index;
  if (cancel.stop_requested()) return index;
  // Sorting ascending groups each subject's columns contiguously; dense ids
  // are first-appearance ordinals, so subject runs come out in the same row
  // order as the legacy matrix.
  ParallelSortPairs(&pairs_, pool);
  pairs_.erase(std::unique(pairs_.begin(), pairs_.end()), pairs_.end());
  if (cancel.stop_requested()) return index;
  index.property_names_.reserve(properties_.size());
  for (rdf::TermId p : properties_) {
    index.property_names_.push_back(dict.term(p).lexical);
  }
  const std::size_t num_props = properties_.size();

  const std::size_t lanes =
      pool == nullptr ? 1 : static_cast<std::size_t>(pool->workers()) + 1;
  if (lanes > 1 && pairs_.size() >= kParallelPairCutoff) {
    // Split the sorted pair array at subject boundaries into ~2 ranges per
    // lane, group each range independently, then fold the ranges into the
    // global signature map in range order. Because ranges never split a
    // subject and are folded ascending, the global discovery order of each
    // signature (its first subject) and the subject order inside each name
    // list both match the serial loop exactly.
    const std::size_t target = std::min(pairs_.size(), lanes * 2);
    std::vector<std::size_t> starts;
    starts.reserve(target + 1);
    starts.push_back(0);
    for (std::size_t t = 1; t < target; ++t) {
      std::size_t pos = t * pairs_.size() / target;
      // Advance to the next subject-run start so no range splits a subject.
      while (pos > 0 && pos < pairs_.size() &&
             static_cast<std::uint32_t>(pairs_[pos - 1] >> 32) ==
                 static_cast<std::uint32_t>(pairs_[pos] >> 32)) {
        ++pos;
      }
      if (pos > starts.back() && pos < pairs_.size()) starts.push_back(pos);
    }
    starts.push_back(pairs_.size());

    const std::size_t num_ranges = starts.size() - 1;
    std::vector<RangeGroups> ranges(num_ranges);
    pool->ParallelFor(num_ranges, [&](std::size_t b, std::size_t e) {
      for (std::size_t r = b; r < e; ++r) {
        RangeGroups& rg = ranges[r];
        std::size_t i = starts[r];
        const std::size_t end = starts[r + 1];
        while (i < end) {
          const std::uint32_t subj =
              static_cast<std::uint32_t>(pairs_[i] >> 32);
          PropertySet row(num_props);
          for (; i < end &&
                 static_cast<std::uint32_t>(pairs_[i] >> 32) == subj;
               ++i) {
            row.Insert(static_cast<std::size_t>(pairs_[i] & 0xffffffffu));
          }
          auto [it, inserted] = rg.map.emplace(std::move(row), rg.rows.size());
          if (inserted) {
            rg.rows.push_back(&it->first);
            rg.counts.push_back(0);
            rg.row_subjects.emplace_back();
          }
          ++rg.counts[it->second];
          if (keep_subject_names) rg.row_subjects[it->second].push_back(subj);
        }
      }
    });

    std::unordered_map<PropertySet, std::size_t, PropertySetHash> groups;
    for (const RangeGroups& rg : ranges) {
      for (std::size_t k = 0; k < rg.rows.size(); ++k) {
        auto [it, inserted] = groups.emplace(*rg.rows[k],
                                             index.signatures_.size());
        if (inserted) {
          index.signatures_.emplace_back(it->first, std::int64_t{0});
          index.subject_names_.emplace_back();
        }
        index.signatures_[it->second].count += rg.counts[k];
        if (keep_subject_names) {
          std::vector<std::string>& names = index.subject_names_[it->second];
          for (std::uint32_t subj : rg.row_subjects[k]) {
            names.push_back(dict.term(subjects_[subj]).lexical);
          }
        }
      }
    }
    index.Canonicalize();
    return index;
  }

  // signature row -> position in index.signatures_
  std::unordered_map<PropertySet, std::size_t, PropertySetHash> groups;
  util::PeriodicCheck check(cancel, 1024);
  std::size_t i = 0;
  while (i < pairs_.size()) {
    // A trip mid-grouping stops at a subject boundary: the truncated index
    // is structurally valid, just missing the remaining subjects.
    if (check.ShouldStop()) break;
    const std::uint32_t subj = static_cast<std::uint32_t>(pairs_[i] >> 32);
    PropertySet row(num_props);
    for (; i < pairs_.size() &&
           static_cast<std::uint32_t>(pairs_[i] >> 32) == subj;
         ++i) {
      row.Insert(static_cast<std::size_t>(pairs_[i] & 0xffffffffu));
    }
    auto [it, inserted] = groups.emplace(std::move(row), index.signatures_.size());
    if (inserted) {
      index.signatures_.emplace_back(it->first, std::int64_t{1});
      index.subject_names_.emplace_back();
    } else {
      ++index.signatures_[it->second].count;
    }
    if (keep_subject_names) {
      index.subject_names_[it->second].push_back(
          dict.term(subjects_[subj]).lexical);
    }
  }
  index.Canonicalize();
  return index;
}

SignatureIndex IndexBuilder::FromGraph(const rdf::Graph& graph,
                                       bool keep_subject_names,
                                       util::ThreadPool* pool,
                                       const util::CancellationToken& cancel) {
  IndexBuilder builder;
  builder.ReservePairs(graph.size());
  for (const rdf::Triple& t : graph.triples()) {
    builder.Add(t.subject, t.predicate);
  }
  return builder.Build(graph.dict(), keep_subject_names, pool, cancel);
}

SignatureIndex IndexBuilder::FromSortSlice(const rdf::Graph& graph,
                                           std::string_view type_iri,
                                           bool keep_subject_names,
                                           std::size_t* slice_triples,
                                           util::ThreadPool* pool,
                                           const util::CancellationToken& cancel) {
  if (slice_triples != nullptr) *slice_triples = 0;
  IndexBuilder builder;
  const rdf::Dictionary& dict = graph.dict();
  const rdf::TermId type_prop = dict.FindIri(rdf::vocab::kRdfType);
  const rdf::TermId sort = dict.FindIri(type_iri);
  if (type_prop != rdf::kInvalidTermId && sort != rdf::kInvalidTermId) {
    std::unordered_set<rdf::TermId> members;
    for (std::uint32_t i : graph.TypePostings()) {
      const rdf::Triple& t = graph.triples()[i];
      if (t.object == sort) members.insert(t.subject);
    }
    if (!members.empty()) {
      std::size_t n = 0;
      for (const rdf::Triple& t : graph.triples()) {
        if (t.predicate == type_prop || members.count(t.subject) == 0) continue;
        builder.Add(t.subject, t.predicate);
        ++n;
      }
      if (slice_triples != nullptr) *slice_triples = n;
    }
  }
  return builder.Build(dict, keep_subject_names, pool, cancel);
}

}  // namespace rdfsr::schema
