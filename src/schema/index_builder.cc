#include "schema/index_builder.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "rdf/vocab.h"
#include "schema/property_set.h"

namespace rdfsr::schema {

SignatureIndex IndexBuilder::Build(const rdf::Dictionary& dict,
                                   bool keep_subject_names) {
  // Sorting ascending groups each subject's columns contiguously; dense ids
  // are first-appearance ordinals, so subject runs come out in the same row
  // order as the legacy matrix.
  std::sort(pairs_.begin(), pairs_.end());
  pairs_.erase(std::unique(pairs_.begin(), pairs_.end()), pairs_.end());

  SignatureIndex index;
  index.property_names_.reserve(properties_.size());
  for (rdf::TermId p : properties_) {
    index.property_names_.push_back(dict.term(p).lexical);
  }
  const std::size_t num_props = properties_.size();

  // signature row -> position in index.signatures_
  std::unordered_map<PropertySet, std::size_t, PropertySetHash> groups;
  std::size_t i = 0;
  while (i < pairs_.size()) {
    const std::uint32_t subj = static_cast<std::uint32_t>(pairs_[i] >> 32);
    PropertySet row(num_props);
    for (; i < pairs_.size() &&
           static_cast<std::uint32_t>(pairs_[i] >> 32) == subj;
         ++i) {
      row.Insert(static_cast<std::size_t>(pairs_[i] & 0xffffffffu));
    }
    auto [it, inserted] = groups.emplace(std::move(row), index.signatures_.size());
    if (inserted) {
      index.signatures_.emplace_back(it->first, std::int64_t{1});
      index.subject_names_.emplace_back();
    } else {
      ++index.signatures_[it->second].count;
    }
    if (keep_subject_names) {
      index.subject_names_[it->second].push_back(
          dict.term(subjects_[subj]).lexical);
    }
  }
  index.Canonicalize();
  return index;
}

SignatureIndex IndexBuilder::FromGraph(const rdf::Graph& graph,
                                       bool keep_subject_names) {
  IndexBuilder builder;
  builder.ReservePairs(graph.size());
  for (const rdf::Triple& t : graph.triples()) {
    builder.Add(t.subject, t.predicate);
  }
  return builder.Build(graph.dict(), keep_subject_names);
}

SignatureIndex IndexBuilder::FromSortSlice(const rdf::Graph& graph,
                                           std::string_view type_iri,
                                           bool keep_subject_names,
                                           std::size_t* slice_triples) {
  if (slice_triples != nullptr) *slice_triples = 0;
  IndexBuilder builder;
  const rdf::Dictionary& dict = graph.dict();
  const rdf::TermId type_prop = dict.FindIri(rdf::vocab::kRdfType);
  const rdf::TermId sort = dict.FindIri(type_iri);
  if (type_prop != rdf::kInvalidTermId && sort != rdf::kInvalidTermId) {
    std::unordered_set<rdf::TermId> members;
    for (std::uint32_t i : graph.TypePostings()) {
      const rdf::Triple& t = graph.triples()[i];
      if (t.object == sort) members.insert(t.subject);
    }
    if (!members.empty()) {
      std::size_t n = 0;
      for (const rdf::Triple& t : graph.triples()) {
        if (t.predicate == type_prop || members.count(t.subject) == 0) continue;
        builder.Add(t.subject, t.predicate);
        ++n;
      }
      if (slice_triples != nullptr) *slice_triples = n;
    }
  }
  return builder.Build(dict, keep_subject_names);
}

}  // namespace rdfsr::schema
