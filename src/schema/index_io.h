// Serialization of signature indexes.
//
// The signature view is the unit of exchange the paper advertises ("DBpedia
// Persons ... consists of 64 signatures, requiring only 3 KB of storage"):
// once computed, the index is all that sigma evaluation and sort refinement
// need, so persisting it avoids reparsing multi-gigabyte dumps. The format is
// a line-oriented text file:
//
//   # rdfsr-signature-index v1
//   properties <P>
//   <property name>            (P lines, may contain spaces)
//   signatures <S>
//   <count> <k> <p_1> ... <p_k>  (S lines; p_i are 0-based property ids,
//                                 strictly increasing)
//
// Subject names are intentionally not serialized (they defeat the size
// reduction); deserialized indexes therefore cannot answer subj(c)=constant
// rules, matching SignatureIndex::FromMatrix(..., keep_subject_names=false).

#ifndef RDFSR_SCHEMA_INDEX_IO_H_
#define RDFSR_SCHEMA_INDEX_IO_H_

#include <string>
#include <string_view>

#include "schema/signature_index.h"
#include "util/status.h"

namespace rdfsr::schema {

/// Serializes an index to the v1 text format.
std::string SerializeIndex(const SignatureIndex& index);

/// Parses the v1 text format.
Result<SignatureIndex> ParseIndex(std::string_view text);

/// Writes an index to a file.
Status WriteIndexFile(const SignatureIndex& index, const std::string& path);

/// Reads an index from a file.
Result<SignatureIndex> ReadIndexFile(const std::string& path);

}  // namespace rdfsr::schema

#endif  // RDFSR_SCHEMA_INDEX_IO_H_
