// Greedy + local-search heuristic for sort refinement.
//
// Commercial MIP solvers find feasible points fast via primal heuristics and
// spend their time on proofs; the paper's CPLEX runs show the same shape
// (800 ms feasible vs hours for infeasible). This backend plays the primal-
// heuristic role for our homegrown solver: multi-restart randomized greedy
// assignment of signatures to k sorts followed by single-move local search
// maximizing the minimum sigma. It can only certify existence (a validated
// refinement), never non-existence — the exact MIP remains the decision
// procedure.
//
// Both heuristics evaluate candidate sorts through the incremental SortStats
// subsystem (eval/sort_stats.h): per-slot / per-part aggregates are mutated
// in place and sigma extracted in closed form, instead of re-walking member
// signatures per probe. Greedy trial placements drop from O(k * |sort| * |P|)
// to O(|supp| + k log k) each; an agglomerative merge round drops from
// O(n^2 * |sort| * |P|) to O(n log n + n * |P|/64) via a lazy best-pair
// priority queue (bench/bench_refine.cc measures both against the scratch
// baselines). Outputs are bit-identical to scratch evaluation: the stats
// carry the same exact integer counts the scratch closed forms compute.

#ifndef RDFSR_CORE_GREEDY_H_
#define RDFSR_CORE_GREEDY_H_

#include <cstdint>
#include <optional>

#include "core/refinement.h"
#include "eval/evaluator.h"
#include "util/deadline.h"
#include "util/rational.h"

namespace rdfsr::core {

/// Heuristic knobs.
struct GreedyOptions {
  int restarts = 6;
  int max_passes = 40;      ///< Local-search sweeps per restart.
  std::uint64_t seed = 17;  ///< Deterministic PRNG stream.
  /// Cooperative cancellation: polled between restarts / passes and
  /// periodically inside the construction loop. A tripped token still yields
  /// a valid partition (remaining signatures fall into the first slot) — the
  /// result is just a worse heuristic, never an invalid one.
  util::CancellationToken cancel;
};

/// Best-effort partition into at most k sorts maximizing min-sigma. Always
/// returns a valid partition (all signatures covered); the min sigma may be
/// below any particular threshold.
SortRefinement GreedyMaxMinSigma(const eval::Evaluator& evaluator, int k,
                                 const GreedyOptions& options = {});

/// Convenience: runs GreedyMaxMinSigma and keeps the result only when it
/// meets theta exactly (validated).
std::optional<SortRefinement> GreedyFindRefinement(
    const eval::Evaluator& evaluator, int k, Rational theta,
    const GreedyOptions& options = {});

/// Bottom-up merge heuristic for the lowest-k problem: start with every
/// signature set in its own implicit sort (for the builtin rule families a
/// single-signature sort has sigma = 1) and repeatedly merge the pair of
/// sorts whose merged sigma is highest, as long as that merged sigma still
/// meets theta (checked exactly). Stops when no pair can merge — the number
/// of remaining sorts is a greedy upper bound on the lowest k. Deterministic.
///
/// `threads` parallelizes the best-pair row recomputation (values < 1 mean
/// one thread per hardware thread). The merge sequence — and therefore the
/// returned refinement — is bit-identical for every thread count: candidate
/// pairs are totally ordered (exact sigma comparison, then pair index), so
/// the per-row best and the popped merge are unique regardless of the order
/// worker threads discover them. Parallelism engages only when the evaluator
/// reports cheap_stats() (pure closed-form extraction, no shared memo) and
/// the instance is large enough to pay for the fan-out.
///
/// `cancel` is polled once per merge round (and per row during the initial
/// build): a tripped token stops merging early, returning the valid partial
/// partition reached so far — more sorts than the uncancelled run, never an
/// invalid partition.
SortRefinement AgglomerativeLowestK(const eval::Evaluator& evaluator,
                                    Rational theta, int threads = 1,
                                    const util::CancellationToken& cancel = {});

/// Merge variant for fixed k: merge best pairs unconditionally until at most
/// `k` sorts remain (a hierarchical-clustering seed for Exists/highest-theta;
/// callers validate against their threshold). `threads` and `cancel` as in
/// AgglomerativeLowestK (a cancelled run may stop above k sorts).
SortRefinement AgglomerativeFixedK(const eval::Evaluator& evaluator, int k,
                                   int threads = 1,
                                   const util::CancellationToken& cancel = {});

}  // namespace rdfsr::core

#endif  // RDFSR_CORE_GREEDY_H_
