#include "core/refinement.h"

#include <algorithm>

#include "util/check.h"

namespace rdfsr::core {

std::int64_t SortRefinement::SubjectsIn(const schema::SignatureIndex& index,
                                        int i) const {
  RDFSR_CHECK_GE(i, 0);
  RDFSR_CHECK_LT(static_cast<std::size_t>(i), sorts.size());
  std::int64_t total = 0;
  for (int sig : sorts[i]) total += index.signature(sig).count;
  return total;
}

std::string SortRefinement::Summary(const schema::SignatureIndex& index) const {
  std::string out = "{" + std::to_string(sorts.size()) + " sorts: ";
  for (std::size_t i = 0; i < sorts.size(); ++i) {
    if (i > 0) out += "+";
    out += std::to_string(sorts[i].size());
  }
  out += " signatures, ";
  for (std::size_t i = 0; i < sorts.size(); ++i) {
    if (i > 0) out += "+";
    out += std::to_string(SubjectsIn(index, static_cast<int>(i)));
  }
  out += " subjects}";
  return out;
}

bool SigmaAtLeast(const eval::SigmaCounts& counts, Rational theta) {
  // sigma = favorable / total >= theta1 / theta2
  //   <=>  theta2 * favorable >= theta1 * total   (total, theta2 > 0).
  if (counts.total == 0) return true;  // sigma defined as 1
  return static_cast<eval::BigCount>(theta.den()) * counts.favorable >=
         static_cast<eval::BigCount>(theta.num()) * counts.total;
}

Status ValidatePartition(const schema::SignatureIndex& index,
                         const SortRefinement& refinement) {
  std::vector<int> seen(index.num_signatures(), 0);
  if (refinement.sorts.empty()) {
    return Status::InvalidArgument("refinement has no sorts");
  }
  for (std::size_t i = 0; i < refinement.sorts.size(); ++i) {
    if (refinement.sorts[i].empty()) {
      return Status::InvalidArgument("sort " + std::to_string(i) +
                                     " is empty");
    }
    for (int sig : refinement.sorts[i]) {
      if (sig < 0 || static_cast<std::size_t>(sig) >= index.num_signatures()) {
        return Status::InvalidArgument("sort " + std::to_string(i) +
                                       " references unknown signature " +
                                       std::to_string(sig));
      }
      if (++seen[sig] > 1) {
        return Status::InvalidArgument(
            "signature " + std::to_string(sig) +
            " appears in more than one sort (not a partition)");
      }
    }
  }
  for (std::size_t sig = 0; sig < seen.size(); ++sig) {
    if (seen[sig] == 0) {
      return Status::InvalidArgument("signature " + std::to_string(sig) +
                                     " is not covered by any sort");
    }
  }
  return Status::OK();
}

std::vector<eval::SigmaCounts> SortCounts(const eval::Evaluator& evaluator,
                                          const SortRefinement& refinement) {
  std::vector<eval::SigmaCounts> counts;
  counts.reserve(refinement.sorts.size());
  for (const std::vector<int>& sort : refinement.sorts) {
    counts.push_back(evaluator.CountsViaStats(sort));
  }
  return counts;
}

Status ValidateSortCounts(const std::vector<eval::SigmaCounts>& counts,
                          Rational theta) {
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (!SigmaAtLeast(counts[i], theta)) {
      return Status::InvalidArgument(
          "sort " + std::to_string(i) + " has sigma " +
          std::to_string(counts[i].Value()) + " < theta " + theta.ToString());
    }
  }
  return Status::OK();
}

Status ValidateRefinement(const eval::Evaluator& evaluator,
                          const SortRefinement& refinement, Rational theta) {
  Status structure = ValidatePartition(evaluator.index(), refinement);
  if (!structure.ok()) return structure;
  return ValidateSortCounts(SortCounts(evaluator, refinement), theta);
}

double MinSigma(const eval::Evaluator& evaluator,
                const SortRefinement& refinement) {
  double min_sigma = 1.0;
  for (const std::vector<int>& sort : refinement.sorts) {
    if (sort.empty()) continue;
    min_sigma = std::min(min_sigma, evaluator.Sigma(sort));
  }
  return min_sigma;
}

}  // namespace rdfsr::core
