#include "core/report.h"

#include <algorithm>
#include <sstream>

#include "eval/closed_form.h"
#include "schema/ascii_view.h"
#include "util/check.h"
#include "util/table.h"

namespace rdfsr::core {

std::vector<SortProfile> ProfileRefinement(const schema::SignatureIndex& index,
                                           const SortRefinement& refinement) {
  const std::size_t num_props = index.num_properties();

  // Dataset-wide coverage per property.
  std::vector<double> global_coverage(num_props, 0.0);
  for (std::size_t p = 0; p < num_props; ++p) {
    global_coverage[p] =
        index.total_subjects() == 0
            ? 0.0
            : static_cast<double>(index.PropertyCount(p)) /
                  static_cast<double>(index.total_subjects());
  }

  std::vector<SortProfile> profiles;
  for (const std::vector<int>& sort : refinement.sorts) {
    SortProfile profile;
    profile.signatures = sort.size();
    const eval::SubsetStats stats = eval::SubsetStats::Compute(index, sort);
    profile.subjects = static_cast<std::int64_t>(stats.subjects);
    profile.sigma_cov = eval::CovCounts(index, sort).Value();
    profile.sigma_sim = eval::SimCounts(index, sort).Value();

    for (std::size_t p = 0; p < num_props; ++p) {
      const double coverage =
          profile.subjects == 0
              ? 0.0
              : static_cast<double>(stats.property_count[p]) /
                    static_cast<double>(profile.subjects);
      const std::string& name = index.property_name(p);
      if (stats.property_count[p] == 0) {
        profile.absent_properties.push_back(name);
      } else if (stats.property_count[p] == stats.subjects) {
        profile.universal_properties.push_back(name);
      // lint:allow(float-compare: display bucketing, not a solver decision)
      } else if (coverage >= 0.5) {
        profile.common_properties.push_back(name);
      }
      // Coverage of the remainder of the dataset for the discrimination
      // score: remainder = global minus this sort.
      const std::int64_t rest_subjects =
          index.total_subjects() - profile.subjects;
      // With an empty remainder there is nothing to discriminate against.
      const double rest_coverage =
          rest_subjects == 0
              ? coverage
              : (global_coverage[p] * index.total_subjects() -
                 static_cast<double>(stats.property_count[p])) /
                    rest_subjects;
      profile.discriminating_properties.emplace_back(name,
                                                     coverage - rest_coverage);
    }
    std::sort(profile.discriminating_properties.begin(),
              profile.discriminating_properties.end(),
              [](const auto& a, const auto& b) {
                return std::abs(a.second) > std::abs(b.second);
              });
    profile.discriminating_properties.resize(
        std::min<std::size_t>(3, profile.discriminating_properties.size()));
    profiles.push_back(std::move(profile));
  }
  return profiles;
}

std::string RenderReport(const schema::SignatureIndex& index,
                         const SortRefinement& refinement) {
  const std::vector<SortProfile> profiles =
      ProfileRefinement(index, refinement);
  std::ostringstream out;
  auto join = [](const std::vector<std::string>& names) {
    std::string s;
    for (std::size_t i = 0; i < names.size(); ++i) {
      if (i > 0) s += ", ";
      s += schema::AbbreviateProperty(names[i]);
    }
    return s.empty() ? std::string("(none)") : s;
  };
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    const SortProfile& p = profiles[i];
    out << "implicit sort " << (i + 1) << ": " << FormatCount(p.subjects)
        << " subjects, " << p.signatures << " signatures, sigma_Cov "
        << FormatDouble(p.sigma_cov) << ", sigma_Sim "
        << FormatDouble(p.sigma_sim) << "\n";
    out << "  always present: " << join(p.universal_properties) << "\n";
    if (!p.common_properties.empty()) {
      out << "  usually present: " << join(p.common_properties) << "\n";
    }
    if (!p.absent_properties.empty()) {
      out << "  never present:  " << join(p.absent_properties) << "\n";
    }
    if (!p.discriminating_properties.empty()) {
      out << "  vs rest:        ";
      for (std::size_t d = 0; d < p.discriminating_properties.size(); ++d) {
        if (d > 0) out << ", ";
        const auto& [name, diff] = p.discriminating_properties[d];
        out << schema::AbbreviateProperty(name) << " "
            << (diff >= 0 ? "+" : "") << FormatDouble(diff);
      }
      out << "\n";
    }
  }
  return out.str();
}

}  // namespace rdfsr::core
