// Sort refinements (Definition 4.2) and their validation.
//
// A sigma-sort refinement of D with threshold theta is an entity-preserving
// partition {D_1, ..., D_n} of D, closed under signatures, with
// sigma(D_i) >= theta for every i. Because the partition is closed under
// signatures, it is fully described by a partition of the signature ids of the
// dataset's SignatureIndex — which is how we represent it (entity preservation
// is then automatic: a subject's triples all live with its signature).

#ifndef RDFSR_CORE_REFINEMENT_H_
#define RDFSR_CORE_REFINEMENT_H_

#include <string>
#include <vector>

#include "eval/evaluator.h"
#include "schema/signature_index.h"
#include "util/rational.h"
#include "util/status.h"

namespace rdfsr::core {

/// A sort refinement: each element ("implicit sort") is a non-empty list of
/// signature ids of the underlying index.
struct SortRefinement {
  std::vector<std::vector<int>> sorts;

  std::size_t num_sorts() const { return sorts.size(); }

  /// Subjects in implicit sort i.
  std::int64_t SubjectsIn(const schema::SignatureIndex& index, int i) const;

  /// One-line description: "{3 sorts: 12+7+2 signatures}".
  std::string Summary(const schema::SignatureIndex& index) const;
};

/// Checks that `refinement` is a valid sigma_r-sort refinement of the
/// evaluator's index with threshold theta:
///  * the sorts are non-empty and partition the signature ids exactly,
///  * sigma(sort) >= theta for every sort, compared exactly
///    (theta2 * favorable >= theta1 * total in integer arithmetic).
/// Composed of the three pieces below, which the searches also use
/// separately: a refinement's structure and per-sort counts are
/// theta-independent, so validating one refinement against many thresholds
/// (the theta grid, the k ladder) computes SortCounts once and re-runs only
/// the exact comparisons.
Status ValidateRefinement(const eval::Evaluator& evaluator,
                          const SortRefinement& refinement, Rational theta);

/// The structural half of ValidateRefinement: non-empty sorts partitioning
/// the index's signature ids exactly. Theta-independent.
Status ValidatePartition(const schema::SignatureIndex& index,
                         const SortRefinement& refinement);

/// Exact per-sort counts, evaluated through the incremental-stats subsystem
/// (closed forms for builtin rules — no member re-walks in the extraction).
/// Theta-independent: reusable across every threshold a refinement is
/// checked against.
std::vector<eval::SigmaCounts> SortCounts(const eval::Evaluator& evaluator,
                                          const SortRefinement& refinement);

/// The threshold half of ValidateRefinement on precomputed per-sort counts:
/// OK iff sigma(counts[i]) >= theta for every i (exact integer comparison).
Status ValidateSortCounts(const std::vector<eval::SigmaCounts>& counts,
                          Rational theta);

/// Exact comparison sigma(counts) >= theta without floating point.
bool SigmaAtLeast(const eval::SigmaCounts& counts, Rational theta);

/// The minimum sigma across sorts (1.0 for an empty refinement).
double MinSigma(const eval::Evaluator& evaluator,
                const SortRefinement& refinement);

}  // namespace rdfsr::core

#endif  // RDFSR_CORE_REFINEMENT_H_
