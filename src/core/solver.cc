#include "core/solver.h"

#include <algorithm>
#include <cmath>

#include "eval/closed_form.h"
#include "util/check.h"
#include "util/timer.h"

namespace rdfsr::core {

const char* DecisionName(Decision decision) {
  switch (decision) {
    case Decision::kExists:
      return "Exists";
    case Decision::kNotExists:
      return "NotExists";
    case Decision::kUnknown:
      return "Unknown";
  }
  return "Unknown";
}

RefinementSolver::RefinementSolver(const eval::Evaluator* evaluator,
                                   SolverOptions options)
    : evaluator_(evaluator), options_(std::move(options)) {
  RDFSR_CHECK(evaluator_ != nullptr);
  if (options_.cache_evaluations) {
    cached_ = std::make_unique<eval::CachedEvaluator>(evaluator_);
  }
}

const std::vector<eval::TauCount>& RefinementSolver::TauCounts() {
  if (!tau_counts_ready_) {
    tau_counts_ =
        eval::EnumerateTauCounts(evaluator_->rule(), evaluator_->index());
    tau_counts_ready_ = true;
  }
  return tau_counts_;
}

const SortRefinement& RefinementSolver::AgglomerativeForTheta(Rational theta) {
  const std::pair<std::int64_t, std::int64_t> key{theta.num(), theta.den()};
  auto it = agglomerative_cache_.find(key);
  if (it == agglomerative_cache_.end()) {
    it = agglomerative_cache_
             .emplace(key, AgglomerativeLowestK(Eval(), theta))
             .first;
  }
  return it->second;
}

DecisionResult RefinementSolver::Exists(int k, Rational theta) {
  WallTimer timer;
  DecisionResult result;
  const schema::SignatureIndex& index = Eval().index();
  RDFSR_CHECK_GT(k, 0);

  if (index.num_signatures() == 0) {
    // Empty dataset: the empty partition vacuously satisfies any threshold.
    result.decision = Decision::kExists;
    result.refinement = SortRefinement{};
    result.seconds = timer.Seconds();
    return result;
  }

  // Trivial instance: the whole dataset already meets theta with one sort.
  {
    const eval::SigmaCounts all = Eval().CountsAll();
    if (SigmaAtLeast(all, theta)) {
      SortRefinement whole;
      whole.sorts.push_back(eval::AllSignatures(index));
      result.decision = Decision::kExists;
      result.refinement = std::move(whole);
      result.seconds = timer.Seconds();
      return result;
    }
  }
  // k >= |Lambda|: each signature alone is a (sub-)sort... but singleton
  // sorts are not automatically above theta, so no shortcut there.

  if (options_.greedy_first && k > 1) {
    // Heuristic ladder (cheapest first): agglomerative threshold merging,
    // agglomerative k-clustering, randomized greedy + local search. Any
    // exactly-validated witness settles the instance.
    {
      const SortRefinement& agg = AgglomerativeForTheta(theta);
      if (agg.num_sorts() <= static_cast<std::size_t>(k) &&
          !agg.sorts.empty() &&
          ValidateRefinement(Eval(), agg, theta).ok()) {
        result.decision = Decision::kExists;
        result.refinement = agg;
        result.via_greedy = true;
        result.seconds = timer.Seconds();
        return result;
      }
    }
    {
      SortRefinement clustered = AgglomerativeFixedK(Eval(), k);
      if (ValidateRefinement(Eval(), clustered, theta).ok()) {
        result.decision = Decision::kExists;
        result.refinement = std::move(clustered);
        result.via_greedy = true;
        result.seconds = timer.Seconds();
        return result;
      }
    }
    std::optional<SortRefinement> found =
        GreedyFindRefinement(Eval(), k, theta, options_.greedy);
    if (found.has_value()) {
      result.decision = Decision::kExists;
      result.refinement = std::move(found);
      result.via_greedy = true;
      result.seconds = timer.Seconds();
      return result;
    }
  }

  // Exact decision via the Section 6 ILP. Estimate the encoding size first:
  // rows ~= assignments + per-sort (support links + property rows + tau
  // links) + symmetry; building a model only to discard it wastes seconds on
  // large rule/dataset combinations.
  {
    std::size_t support_links = 0;
    for (std::size_t mu = 0; mu < index.num_signatures(); ++mu) {
      support_links += index.signature(mu).props().Popcount();
    }
    const std::size_t rows_estimate =
        index.num_signatures() +
        static_cast<std::size_t>(k) *
            (support_links + index.num_properties() + TauCounts().size() + 1);
    if (rows_estimate / 2 > options_.max_mip_rows) {
      result.decision = Decision::kUnknown;
      result.seconds = timer.Seconds();
      return result;
    }
  }
  IlpEncoding enc = BuildRefinementIlp(index, evaluator_->rule(), TauCounts(),
                                       k, theta, options_.build);
  if (enc.model.num_constraints() > options_.max_mip_rows) {
    // Too large for the dense-simplex MIP; the answer stays open.
    result.decision = Decision::kUnknown;
    result.seconds = timer.Seconds();
    return result;
  }
  const ilp::MipResult mip = ilp::SolveMip(enc.model, options_.mip);
  result.mip_nodes = mip.nodes;
  switch (mip.status) {
    case ilp::MipStatus::kOptimal:
    case ilp::MipStatus::kFeasible: {
      SortRefinement decoded = enc.Decode(mip.x);
      const Status valid = ValidateRefinement(Eval(), decoded, theta);
      if (valid.ok()) {
        result.decision = Decision::kExists;
        result.refinement = std::move(decoded);
      } else {
        // A numerically accepted but exactly-invalid point: do not report a
        // wrong refinement; the instance stays undecided.
        result.decision = Decision::kUnknown;
      }
      break;
    }
    case ilp::MipStatus::kInfeasible:
      result.decision = Decision::kNotExists;
      break;
    case ilp::MipStatus::kUnknown:
      result.decision = Decision::kUnknown;
      break;
  }
  result.seconds = timer.Seconds();
  return result;
}

HighestThetaResult RefinementSolver::FindHighestTheta(int k) {
  WallTimer timer;
  HighestThetaResult best;

  // The initial threshold sigma_r(D) is feasible with the one-sort partition
  // (the paper's starting point).
  const eval::SigmaCounts all = Eval().CountsAll();
  Rational sigma_all(1);
  if (all.total > 0) {
    RDFSR_CHECK(all.total <= INT64_MAX);
    sigma_all = Rational(static_cast<std::int64_t>(all.favorable),
                         static_cast<std::int64_t>(all.total));
  }
  best.theta = sigma_all;
  best.refinement.sorts.push_back(eval::AllSignatures(Eval().index()));
  best.instances = 0;

  const Rational step = Rational::FromDouble(options_.theta_step, 1000);
  // First grid index strictly above sigma_all; last index is theta = 1.
  const std::int64_t first_grid =
      static_cast<std::int64_t>(
          std::floor(sigma_all.ToDouble() / step.ToDouble())) + 1;
  const std::int64_t last_grid = step.num() == 0
                                     ? first_grid
                                     : step.den() / step.num();

  if (!options_.binary_theta_search) {
    // Sequential search upward on the grid (paper Section 7: preferred over
    // bisection because infeasible instances are far slower than feasible
    // ones, and the sequential scan meets exactly one infeasible instance).
    for (std::int64_t g = first_grid; g <= last_grid; ++g) {
      const Rational theta = Rational(g) * step;
      DecisionResult r = Exists(k, theta);
      ++best.instances;
      if (r.decision == Decision::kExists) {
        best.theta = theta;
        best.refinement = std::move(*r.refinement);
        continue;
      }
      best.ceiling_proven = (r.decision == Decision::kNotExists);
      break;
    }
    best.seconds = timer.Seconds();
    return best;
  }

  // Bisection on the grid. Invariant: everything at or below `lo` is known
  // feasible (or is the sigma_all baseline); everything above `hi` is known
  // infeasible or unknown.
  std::int64_t lo = first_grid - 1;  // baseline (sigma_all)
  std::int64_t hi = last_grid;
  best.ceiling_proven = true;
  while (lo < hi) {
    const std::int64_t mid = lo + (hi - lo + 1) / 2;
    const Rational theta = Rational(mid) * step;
    DecisionResult r = Exists(k, theta);
    ++best.instances;
    if (r.decision == Decision::kExists) {
      best.theta = theta;
      best.refinement = std::move(*r.refinement);
      lo = mid;
    } else {
      if (r.decision != Decision::kNotExists) best.ceiling_proven = false;
      hi = mid - 1;
    }
  }
  best.seconds = timer.Seconds();
  return best;
}

Result<LowestKResult> RefinementSolver::FindLowestK(Rational theta, int max_k) {
  WallTimer timer;
  const int n = static_cast<int>(Eval().index().num_signatures());
  if (max_k <= 0) max_k = std::max(n, 1);

  LowestKResult out;
  out.proven_minimal = true;
  for (int k = 1; k <= max_k; ++k) {
    DecisionResult r = Exists(k, theta);
    ++out.instances;
    if (r.decision == Decision::kExists) {
      out.k = k;
      out.refinement = std::move(*r.refinement);
      out.seconds = timer.Seconds();
      return out;
    }
    if (r.decision == Decision::kUnknown) out.proven_minimal = false;
  }
  return Status::NotFound("no sort refinement with theta = " +
                          theta.ToString() + " and k <= " +
                          std::to_string(max_k));
}

}  // namespace rdfsr::core
