#include "core/solver.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "eval/closed_form.h"
#include "util/check.h"
#include "util/failpoint.h"
#include "util/timer.h"

namespace rdfsr::core {

const char* DecisionName(Decision decision) {
  switch (decision) {
    case Decision::kExists:
      return "Exists";
    case Decision::kNotExists:
      return "NotExists";
    case Decision::kUnknown:
      return "Unknown";
  }
  return "Unknown";
}

Rational ThetaGrid::Theta(std::int64_t g) const {
  const Rational value = Rational(g) * step;
  return value > Rational(1) ? Rational(1) : value;
}

ThetaGrid MakeThetaGrid(Rational sigma_all, double theta_step) {
  ThetaGrid grid;
  if (!std::isfinite(theta_step) || theta_step <= 0) {
    grid.step = Rational(1, 100);  // the paper's step
  } else if (theta_step >= 1) {
    grid.step = Rational(1);
  } else {
    grid.step = Rational::FromDouble(theta_step, 1000);
    // A step below the grid resolution collapses to the zero rational, which
    // would divide the index derivation by zero: clamp to the finest grid.
    if (grid.step.num() <= 0) grid.step = Rational(1, 1000);
  }
  RDFSR_CHECK_GE(sigma_all.num(), 0);
  // First index strictly above sigma_all, by exact integer floor division
  // (double rounding could skip a point or re-test sigma_all when it lies
  // exactly on the grid).
  const __int128 num = static_cast<__int128>(sigma_all.num()) * grid.step.den();
  const __int128 den = static_cast<__int128>(sigma_all.den()) * grid.step.num();
  grid.first = static_cast<std::int64_t>(num / den) + 1;  // >= 0: trunc = floor
  // Smallest index at or above theta = 1; Theta() clamps it to exactly 1, so
  // the endpoint is always on the grid even when step does not divide 1
  // (step = 3/100: last = 34, Theta(last) = 1, not 99/100).
  grid.last = (grid.step.den() + grid.step.num() - 1) / grid.step.num();
  return grid;
}

RefinementSolver::RefinementSolver(const eval::Evaluator* evaluator,
                                   SolverOptions options)
    : evaluator_(evaluator), options_(std::move(options)) {
  RDFSR_CHECK(evaluator_ != nullptr);
  if (options_.cache_evaluations) {
    cached_ = std::make_unique<eval::CachedEvaluator>(evaluator_);
  }
}

const std::vector<eval::TauCount>& RefinementSolver::TauCounts() {
  if (!tau_counts_ready_) {
    tau_counts_ =
        eval::EnumerateTauCounts(evaluator_->rule(), evaluator_->index());
    tau_counts_ready_ = true;
  }
  return tau_counts_;
}

const std::vector<TauShape>& RefinementSolver::Shapes() {
  if (!shapes_.has_value()) {
    shapes_ = AnalyzeTaus(TauCounts(), evaluator_->index());
  }
  return *shapes_;
}

RefinementIlpInstance& RefinementSolver::InstanceFor(int k) {
  if (!options_.reuse_instances) {
    // Rebuild-per-instance baseline: a fresh skeleton every call.
    instance_ = std::make_unique<RefinementIlpInstance>(
        evaluator_->index(), Shapes(), k, options_.build);
    instance_k_ = k;
    return *instance_;
  }
  if (instance_ == nullptr || instance_k_ != k) {
    instance_ = std::make_unique<RefinementIlpInstance>(
        evaluator_->index(), Shapes(), k, options_.build);
    instance_k_ = k;
  }
  return *instance_;
}

RefinementSolver::ScoredRefinement RefinementSolver::Score(
    SortRefinement refinement) const {
  ScoredRefinement scored;
  scored.structure_ok =
      ValidatePartition(Eval().index(), refinement).ok();
  if (scored.structure_ok) {
    scored.counts = SortCounts(Eval(), refinement);
  }
  scored.refinement = std::move(refinement);
  return scored;
}

const RefinementSolver::ScoredRefinement&
RefinementSolver::AgglomerativeForTheta(Rational theta) {
  // Cached per theta regardless of reuse_instances (the pre-reuse solver
  // already memoized these across the k ladder).
  const std::pair<std::int64_t, std::int64_t> key{theta.num(), theta.den()};
  auto it = agglomerative_cache_.find(key);
  if (it != agglomerative_cache_.end()) return it->second;
  const util::CancellationToken token = options_.deadline.token();
  ScoredRefinement scored = Score(
      AgglomerativeLowestK(Eval(), theta, options_.heuristic_threads, token));
  if (token.stop_requested()) {
    // A result computed under a tripped token may be truncated; keep it out
    // of the cache so a later, un-deadlined query recomputes it in full.
    scratch_scored_ = std::move(scored);
    return scratch_scored_;
  }
  return agglomerative_cache_.emplace(key, std::move(scored)).first->second;
}

const RefinementSolver::ScoredRefinement&
RefinementSolver::AgglomerativeFixedKFor(int k) {
  const util::CancellationToken token = options_.deadline.token();
  if (!options_.reuse_instances) {
    scratch_scored_ = Score(
        AgglomerativeFixedK(Eval(), k, options_.heuristic_threads, token));
    return scratch_scored_;
  }
  auto it = fixed_k_cache_.find(k);
  if (it != fixed_k_cache_.end()) return it->second;
  ScoredRefinement scored = Score(
      AgglomerativeFixedK(Eval(), k, options_.heuristic_threads, token));
  if (token.stop_requested()) {
    scratch_scored_ = std::move(scored);
    return scratch_scored_;
  }
  return fixed_k_cache_.emplace(k, std::move(scored)).first->second;
}

const RefinementSolver::ScoredRefinement& RefinementSolver::GreedyFor(int k) {
  GreedyOptions greedy = options_.greedy;
  greedy.cancel = options_.deadline.token();
  if (!options_.reuse_instances) {
    scratch_scored_ = Score(GreedyMaxMinSigma(Eval(), k, greedy));
    return scratch_scored_;
  }
  auto it = greedy_cache_.find(k);
  if (it != greedy_cache_.end()) return it->second;
  ScoredRefinement scored = Score(GreedyMaxMinSigma(Eval(), k, greedy));
  if (greedy.cancel.stop_requested()) {
    scratch_scored_ = std::move(scored);
    return scratch_scored_;
  }
  return greedy_cache_.emplace(k, std::move(scored)).first->second;
}

namespace {

/// Translates the reason a MIP search stopped undecided into the Status
/// surfaced on DecisionResult::limit. Limits name themselves and their counts
/// so operators can tell a tree-size problem from a numerical-budget one.
Status MipLimitStatus(const ilp::MipResult& mip, const ilp::MipOptions& mip_options) {
  std::ostringstream msg;
  switch (mip.stop_reason) {
    case ilp::MipStopReason::kCancelled:
      msg << "MIP search cancelled after " << mip.nodes << " nodes";
      return Status::Cancelled(msg.str());
    case ilp::MipStopReason::kDeadline:
      msg << "MIP search cut by deadline after " << mip.nodes << " nodes";
      return Status::DeadlineExceeded(msg.str());
    case ilp::MipStopReason::kNodeLimit:
      msg << "MIP node limit reached (max_nodes = " << mip_options.max_nodes
          << ")";
      return Status::ResourceExhausted(msg.str());
    case ilp::MipStopReason::kTimeLimit:
      msg << "MIP time limit reached (time_limit_seconds = "
          << mip_options.time_limit_seconds << ", explored " << mip.nodes
          << " nodes)";
      return Status::ResourceExhausted(msg.str());
    case ilp::MipStopReason::kLpIterationLimit:
      msg << "LP iteration limit (max_iterations = "
          << mip_options.lp.max_iterations << ") hit in "
          << mip.lp_iteration_limit_hits << " node relaxation(s)";
      return Status::ResourceExhausted(msg.str());
    case ilp::MipStopReason::kNone:
    case ilp::MipStopReason::kFirstIncumbent:
      break;
  }
  // Undecided without a recorded limit (e.g. an unbounded or numerically
  // distrusted subtree): still explain why the answer is missing.
  msg << "MIP search undecided after " << mip.nodes << " nodes";
  return Status::ResourceExhausted(msg.str());
}

}  // namespace

DecisionResult RefinementSolver::Exists(int k, Rational theta) {
  WallTimer timer;
  DecisionResult result;
  const schema::SignatureIndex& index = Eval().index();
  RDFSR_CHECK_GT(k, 0);
  const util::CancellationToken token = options_.deadline.token();

  if (index.num_signatures() == 0) {
    // Empty dataset: the empty partition vacuously satisfies any threshold.
    result.decision = Decision::kExists;
    result.refinement = SortRefinement{};
    result.seconds = timer.Seconds();
    return result;
  }

  // Trivial instance: the whole dataset already meets theta with one sort.
  {
    const eval::SigmaCounts all = Eval().CountsAll();
    if (SigmaAtLeast(all, theta)) {
      SortRefinement whole;
      whole.sorts.push_back(eval::AllSignatures(index));
      result.decision = Decision::kExists;
      result.refinement = std::move(whole);
      result.seconds = timer.Seconds();
      return result;
    }
  }
  // k >= |Lambda|: each signature alone is a (sub-)sort... but singleton
  // sorts are not automatically above theta, so no shortcut there.

  // Deadline checkpoint before any real work (the shortcuts above are O(1)
  // and still allowed to answer).
  if (token.stop_requested()) {
    result.decision = Decision::kUnknown;
    result.limit = token.status();
    result.seconds = timer.Seconds();
    return result;
  }

  if (options_.greedy_first && k > 1) {
    // Heuristic ladder (cheapest first): agglomerative threshold merging,
    // agglomerative k-clustering, randomized greedy + local search. Any
    // exactly-validated witness settles the instance. The ladder's
    // refinements are scored once (structure + per-sort counts); checking an
    // instance is then one exact comparison per sort.
    {
      const ScoredRefinement& agg = AgglomerativeForTheta(theta);
      if (agg.structure_ok &&
          agg.refinement.num_sorts() <= static_cast<std::size_t>(k) &&
          ValidateSortCounts(agg.counts, theta).ok()) {
        result.decision = Decision::kExists;
        result.refinement = agg.refinement;
        result.via_greedy = true;
        result.seconds = timer.Seconds();
        return result;
      }
    }
    {
      const ScoredRefinement& clustered = AgglomerativeFixedKFor(k);
      if (clustered.structure_ok &&
          ValidateSortCounts(clustered.counts, theta).ok()) {
        result.decision = Decision::kExists;
        result.refinement = clustered.refinement;
        result.via_greedy = true;
        result.seconds = timer.Seconds();
        return result;
      }
    }
    {
      const ScoredRefinement& greedy = GreedyFor(k);
      if (greedy.structure_ok &&
          ValidateSortCounts(greedy.counts, theta).ok()) {
        result.decision = Decision::kExists;
        result.refinement = greedy.refinement;
        result.via_greedy = true;
        result.seconds = timer.Seconds();
        return result;
      }
    }
  }

  // The heuristic ladder may have burned the whole budget; do not start the
  // exact solve on a tripped token.
  if (token.stop_requested()) {
    result.decision = Decision::kUnknown;
    result.limit = token.status();
    result.seconds = timer.Seconds();
    return result;
  }

  // Exact decision via the Section 6 ILP. The row count the dense simplex
  // will actually see is known exactly from the theta-independent tau
  // analysis, so oversized instances resolve to kUnknown before any model
  // (or skeleton) is built. With presolve on (default) the deactivated link
  // sides are dropped before the simplex, so only the active rows count;
  // without it the simplex is handed the whole skeleton.
  const std::size_t simplex_rows =
      options_.mip.use_presolve
          ? RefinementIlpActiveRows(index, Shapes(), k, options_.build)
          : RefinementIlpRows(index, Shapes(), k, options_.build);
  if (simplex_rows > options_.max_mip_rows) {
    result.decision = Decision::kUnknown;
    std::ostringstream msg;
    msg << "exact MIP skipped: encoding has " << simplex_rows
        << " simplex rows > max_mip_rows = " << options_.max_mip_rows;
    result.limit = Status::ResourceExhausted(msg.str());
    result.seconds = timer.Seconds();
    return result;
  }
#ifdef RDFSR_FAILPOINTS_ENABLED
  {
    // Fault-injection site at the solve boundary: a planted failure must
    // surface as a clean kUnknown, never a wrong decision.
    Status fp = util::FailpointHit("ilp.solve");
    if (!fp.ok()) {
      result.decision = Decision::kUnknown;
      result.limit = std::move(fp);
      result.seconds = timer.Seconds();
      return result;
    }
  }
#endif
  RefinementIlpInstance& instance = InstanceFor(k);
  instance.Reweight(theta);
  ilp::MipOptions mip_options = options_.mip;
  if (token.can_trip() && !mip_options.cancel.can_trip()) {
    mip_options.cancel = token;
  }
  // Seed the root LP with the previous exact solve's basis when it came from
  // the same k (a Reweight step keeps the variable space). A mismatched shape
  // — presolve reductions can differ between thetas — is rejected inside the
  // MIP and simply falls back to a cold start.
  if (options_.warm_start && warm_basis_k_ == k && !warm_basis_.empty()) {
    mip_options.warm_basis = &warm_basis_;
  }
  ilp::MipResult mip = ilp::SolveMip(instance.model(), mip_options);
  result.mip_nodes = mip.nodes;
  result.lp_stats = mip.lp_stats;
  if (options_.warm_start && !mip.root_basis.empty()) {
    warm_basis_ = std::move(mip.root_basis);
    warm_basis_k_ = k;
  }
  switch (mip.status) {
    case ilp::MipStatus::kOptimal:
    case ilp::MipStatus::kFeasible: {
      SortRefinement decoded = instance.Decode(mip.x);
      const Status valid = ValidateRefinement(Eval(), decoded, theta);
      if (valid.ok()) {
        result.decision = Decision::kExists;
        result.refinement = std::move(decoded);
      } else {
        // A numerically accepted but exactly-invalid point: do not report a
        // wrong refinement; the instance stays undecided.
        result.decision = Decision::kUnknown;
        result.limit = Status::Internal(
            "MIP incumbent failed exact validation: " + valid.message());
      }
      break;
    }
    case ilp::MipStatus::kInfeasible:
      result.decision = Decision::kNotExists;
      break;
    case ilp::MipStatus::kUnknown:
      result.decision = Decision::kUnknown;
      result.limit = MipLimitStatus(mip, mip_options);
      break;
  }
  result.seconds = timer.Seconds();
  return result;
}

HighestThetaResult RefinementSolver::FindHighestTheta(int k) {
  WallTimer timer;
  HighestThetaResult best;

  // The initial threshold sigma_r(D) is feasible with the one-sort partition
  // (the paper's starting point).
  const eval::SigmaCounts all = Eval().CountsAll();
  Rational sigma_all(1);
  if (all.total > 0) {
    RDFSR_CHECK(all.total <= INT64_MAX);
    sigma_all = Rational(static_cast<std::int64_t>(all.favorable),
                         static_cast<std::int64_t>(all.total));
  }
  best.theta = sigma_all;
  best.refinement.sorts.push_back(eval::AllSignatures(Eval().index()));
  best.instances = 0;

  const ThetaGrid grid = MakeThetaGrid(sigma_all, options_.theta_step);
  if (grid.first > grid.last) {
    // sigma_all is already 1: nothing lies above the baseline.
    best.ceiling_proven = true;
    best.seconds = timer.Seconds();
    return best;
  }

  const util::CancellationToken token = options_.deadline.token();
  // An instance left undecided because the token tripped mid-solve.
  const auto deadline_cut = [](const DecisionResult& r) {
    return r.decision == Decision::kUnknown &&
           (r.limit.code() == StatusCode::kDeadlineExceeded ||
            r.limit.code() == StatusCode::kCancelled);
  };

  if (!options_.binary_theta_search) {
    // Sequential search upward on the grid (paper Section 7: preferred over
    // bisection because infeasible instances are far slower than feasible
    // ones, and the sequential scan meets exactly one infeasible instance).
    for (std::int64_t g = grid.first; g <= grid.last; ++g) {
      // Anytime early-out: keep the incumbent (at worst the sigma_all
      // baseline) and mark the scan as cut, never as a proven ceiling.
      if (token.stop_requested()) {
        best.timed_out = true;
        break;
      }
      const Rational theta = grid.Theta(g);
      DecisionResult r = Exists(k, theta);
      ++best.instances;
      best.mip_nodes += r.mip_nodes;
      best.lp_stats.MergeWith(r.lp_stats);
      if (r.decision == Decision::kExists) {
        best.theta = theta;
        best.refinement = std::move(*r.refinement);
        // Reaching the endpoint (theta = 1) proves the ceiling: no threshold
        // above 1 is satisfiable.
        if (g == grid.last) best.ceiling_proven = true;
        continue;
      }
      best.ceiling_proven = (r.decision == Decision::kNotExists);
      if (deadline_cut(r)) best.timed_out = true;
      break;
    }
    best.seconds = timer.Seconds();
    return best;
  }

  // Bisection on the grid. Invariant: everything at or below `lo` is known
  // feasible (or is the sigma_all baseline); everything above `hi` is known
  // infeasible or unknown.
  std::int64_t lo = grid.first - 1;  // baseline (sigma_all)
  std::int64_t hi = grid.last;
  best.ceiling_proven = true;
  while (lo < hi) {
    if (token.stop_requested()) {
      best.timed_out = true;
      best.ceiling_proven = false;
      break;
    }
    const std::int64_t mid = lo + (hi - lo + 1) / 2;
    const Rational theta = grid.Theta(mid);
    DecisionResult r = Exists(k, theta);
    ++best.instances;
    best.mip_nodes += r.mip_nodes;
    best.lp_stats.MergeWith(r.lp_stats);
    if (r.decision == Decision::kExists) {
      best.theta = theta;
      best.refinement = std::move(*r.refinement);
      lo = mid;
    } else {
      if (r.decision != Decision::kNotExists) best.ceiling_proven = false;
      if (deadline_cut(r)) {
        // Every remaining probe would return the same tripped-token kUnknown;
        // stop narrowing and report the incumbent.
        best.timed_out = true;
        break;
      }
      hi = mid - 1;
    }
  }
  best.seconds = timer.Seconds();
  return best;
}

Result<LowestKResult> RefinementSolver::FindLowestK(Rational theta, int max_k) {
  WallTimer timer;
  const int n = static_cast<int>(Eval().index().num_signatures());
  if (max_k <= 0) max_k = std::max(n, 1);

  LowestKResult out;
  out.proven_minimal = true;
  bool undecided = false;
  bool deadline_hit = false;
  Status last_limit = Status::OK();
  const util::CancellationToken token = options_.deadline.token();
  for (int k = 1; k <= max_k; ++k) {
    // Once the token trips every further instance is an instant kUnknown, so
    // sweeping on would only inflate the statistics.
    if (token.stop_requested()) {
      deadline_hit = true;
      break;
    }
    DecisionResult r = Exists(k, theta);
    ++out.instances;
    out.mip_nodes += r.mip_nodes;
    out.lp_stats.MergeWith(r.lp_stats);
    if (r.decision == Decision::kExists) {
      out.k = k;
      out.refinement = std::move(*r.refinement);
      out.timed_out = deadline_hit;
      out.seconds = timer.Seconds();
      return out;
    }
    if (r.decision == Decision::kUnknown) {
      undecided = true;
      out.proven_minimal = false;
      if (!r.limit.ok()) last_limit = r.limit;
      if (r.limit.code() == StatusCode::kDeadlineExceeded ||
          r.limit.code() == StatusCode::kCancelled) {
        deadline_hit = true;
      }
    }
  }
  // Exhausted (or cut). Distinguish a proof (every k <= max_k infeasible)
  // from an undecided sweep (some instances hit solver limits), and keep the
  // search statistics in the message — callers see how much work the failure
  // cost.
  std::ostringstream detail;
  detail << "theta = " << theta.ToString() << " and k <= " << max_k << " ("
         << out.instances << " instances, " << timer.Seconds() << " s)";
  if (deadline_hit) {
    const std::string msg =
        "lowest-k search cut before an answer: no sort refinement found with " +
        detail.str();
    return token.cancelled() ? Status::Cancelled(msg)
                             : Status::DeadlineExceeded(msg);
  }
  if (undecided) {
    std::string msg =
        "undecided: found no sort refinement with " + detail.str() +
        ", but some instances exceeded solver limits; one may still exist";
    if (!last_limit.ok()) msg += " (last limit: " + last_limit.message() + ")";
    return Status::ResourceExhausted(std::move(msg));
  }
  return Status::NotFound("proven: no sort refinement with " + detail.str());
}

}  // namespace rdfsr::core
