// Human-readable schema reports for sort refinements.
//
// Section 7.1.1 interprets discovered implicit sorts by their property
// profiles ("the left sort has no deathDate or deathPlace: it represents the
// sort for people that are alive!"). This module automates that reading: for
// each implicit sort it derives the universal, common, and absent properties
// and the properties that discriminate it from the rest of the dataset.

#ifndef RDFSR_CORE_REPORT_H_
#define RDFSR_CORE_REPORT_H_

#include <string>
#include <vector>

#include "core/refinement.h"
#include "eval/evaluator.h"
#include "schema/signature_index.h"

namespace rdfsr::core {

/// Profile of one implicit sort.
struct SortProfile {
  std::int64_t subjects = 0;
  std::size_t signatures = 0;
  double sigma_cov = 0.0;
  double sigma_sim = 0.0;
  /// Properties every member subject has.
  std::vector<std::string> universal_properties;
  /// Properties at least half the member subjects have (excluding universal).
  std::vector<std::string> common_properties;
  /// Dataset properties no member subject has (the sort's view lacks these
  /// columns entirely — e.g. deathDate/deathPlace for the "alive" sort).
  std::vector<std::string> absent_properties;
  /// Properties whose coverage in this sort differs most from their coverage
  /// in the remainder of the dataset, with the signed difference.
  std::vector<std::pair<std::string, double>> discriminating_properties;
};

/// Computes the profile of every sort of a refinement.
std::vector<SortProfile> ProfileRefinement(const schema::SignatureIndex& index,
                                           const SortRefinement& refinement);

/// Renders the profiles as a compact multi-line report.
std::string RenderReport(const schema::SignatureIndex& index,
                         const SortRefinement& refinement);

}  // namespace rdfsr::core

#endif  // RDFSR_CORE_REPORT_H_
