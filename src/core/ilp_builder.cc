#include "core/ilp_builder.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "util/check.h"

namespace rdfsr::core {

namespace {

/// Static (sort-independent) analysis of one tau: which distinct signatures
/// must be present and which properties still need a U link (those not covered
/// by any of tau's own signatures' supports).
struct TauShape {
  std::vector<int> sigs;          ///< distinct signature ids
  std::vector<int> linked_props;  ///< distinct props needing a U link
  eval::BigCount weight = 0;      ///< theta2*cF - theta1*cT
};

TauShape AnalyzeTau(const eval::TauCount& tc,
                    const schema::SignatureIndex& index, Rational theta) {
  TauShape shape;
  // Distinct member signatures (first-appearance order) and the union of
  // their supports: a property is "covered" when some member signature's
  // support word already contains it.
  schema::PropertySet seen_sigs(index.num_signatures());
  schema::PropertySet covered(index.num_properties());
  for (const auto& [sig, prop] : tc.tau.cells) {
    (void)prop;
    if (!seen_sigs.Contains(sig)) {
      seen_sigs.Insert(sig);
      shape.sigs.push_back(sig);
      covered.UnionWith(index.signature(sig).props());
    }
  }
  schema::PropertySet linked(index.num_properties());
  for (const auto& [sig, prop] : tc.tau.cells) {
    (void)sig;
    if (!covered.Contains(prop) && !linked.Contains(prop)) {
      linked.Insert(prop);
      shape.linked_props.push_back(prop);
    }
  }
  shape.weight = static_cast<eval::BigCount>(theta.den()) * tc.favorable -
                 static_cast<eval::BigCount>(theta.num()) * tc.total;
  return shape;
}

}  // namespace

SortRefinement IlpEncoding::Decode(const std::vector<double>& x) const {
  SortRefinement refinement;
  for (int i = 0; i < k; ++i) {
    std::vector<int> members;
    for (int mu = 0; mu < num_signatures; ++mu) {
      if (x[x_var[i][mu]] > 0.5) members.push_back(mu);
    }
    if (!members.empty()) refinement.sorts.push_back(std::move(members));
  }
  return refinement;
}

IlpEncoding BuildRefinementIlp(const schema::SignatureIndex& index,
                               const rules::Rule& rule,
                               const std::vector<eval::TauCount>& tau_counts,
                               int k, Rational theta,
                               const IlpBuildOptions& options) {
  RDFSR_CHECK_GT(k, 0);
  RDFSR_CHECK_GE(theta.num(), 0);
  (void)rule;

  IlpEncoding enc;
  enc.k = k;
  enc.num_signatures = static_cast<int>(index.num_signatures());
  const int num_props = static_cast<int>(index.num_properties());

  ilp::Model& model = enc.model;

  // --- X variables -------------------------------------------------------
  enc.x_var.assign(k, std::vector<int>(enc.num_signatures, -1));
  for (int i = 0; i < k; ++i) {
    for (int mu = 0; mu < enc.num_signatures; ++mu) {
      enc.x_var[i][mu] = model.AddBinary("X_" + std::to_string(i) + "_" +
                                         std::to_string(mu));
    }
  }

  // --- U variables ---------------------------------------------------
  // Constraints (2)+(3) pin U to its exact 0/1 value once X is integral, so U
  // may be continuous (see header).
  std::vector<std::vector<int>> u_var(k, std::vector<int>(num_props, -1));
  for (int i = 0; i < k; ++i) {
    for (int p = 0; p < num_props; ++p) {
      u_var[i][p] =
          model.AddVariable("U_" + std::to_string(i) + "_" + std::to_string(p),
                            0, 1, !options.continuous_aux);
    }
  }

  // (1) each signature placed exactly once.
  for (int mu = 0; mu < enc.num_signatures; ++mu) {
    std::vector<ilp::LinTerm> terms;
    for (int i = 0; i < k; ++i) terms.push_back({enc.x_var[i][mu], 1.0});
    model.AddConstraint("assign_" + std::to_string(mu), std::move(terms), 1, 1);
  }

  // (2) X_{i,mu} <= U_{i,p} for p in supp(mu);
  // (3) U_{i,p} <= sum of supporting X.
  // Column generation from the support words: one pass over the packed
  // signature supports yields, per property, the ascending list of supporting
  // signatures, instead of probing every (mu, p) pair per sort.
  std::vector<std::vector<int>> sigs_with(num_props);
  for (int mu = 0; mu < enc.num_signatures; ++mu) {
    index.signature(mu).props().ForEach(
        [&](int p) { sigs_with[p].push_back(mu); });
  }
  for (int i = 0; i < k; ++i) {
    for (int p = 0; p < num_props; ++p) {
      std::vector<ilp::LinTerm> supporters;
      for (int mu : sigs_with[p]) {
        model.AddConstraint(
            "use_lo_" + std::to_string(i) + "_" + std::to_string(mu) + "_" +
                std::to_string(p),
            {{enc.x_var[i][mu], 1.0}, {u_var[i][p], -1.0}}, -ilp::kInfinity, 0);
        supporters.push_back({enc.x_var[i][mu], 1.0});
      }
      supporters.push_back({u_var[i][p], -1.0});
      model.AddConstraint(
          "use_hi_" + std::to_string(i) + "_" + std::to_string(p),
          std::move(supporters), 0, ilp::kInfinity);
    }
  }

  // --- T variables and the threshold row (4)+(5) --------------------------
  std::vector<TauShape> shapes;
  shapes.reserve(tau_counts.size());
  for (const eval::TauCount& tc : tau_counts) {
    shapes.push_back(AnalyzeTau(tc, index, theta));
  }
  // Scale the threshold row so its coefficients stay O(1) for the double
  // simplex regardless of dataset size.
  double max_weight = 1.0;
  for (const TauShape& shape : shapes) {
    max_weight = std::max(
        max_weight, std::abs(static_cast<double>(shape.weight)));
  }

  for (int i = 0; i < k; ++i) {
    std::vector<ilp::LinTerm> threshold;  // sum w(tau) T_{i,tau} >= 0
    for (std::size_t t = 0; t < shapes.size(); ++t) {
      const TauShape& shape = shapes[t];
      if (shape.weight == 0) continue;  // cannot affect the row
      const double w = static_cast<double>(shape.weight) / max_weight;

      // Singleton substitution: T == X_{i,mu}.
      if (options.substitute_singleton_taus && shape.sigs.size() == 1 &&
          shape.linked_props.empty()) {
        threshold.push_back({enc.x_var[i][shape.sigs[0]], w});
        if (i == 0) ++enc.num_tau_substituted;
        continue;
      }

      const int t_var = model.AddVariable(
          "T_" + std::to_string(i) + "_" + std::to_string(t), 0, 1,
          !options.continuous_aux);
      if (i == 0) ++enc.num_tau_variables;
      threshold.push_back({t_var, w});

      // Collect the variables T is the conjunction of.
      std::vector<int> linked;
      for (int mu : shape.sigs) linked.push_back(enc.x_var[i][mu]);
      for (int p : shape.linked_props) linked.push_back(u_var[i][p]);
      const double n_linked = static_cast<double>(linked.size());

      const bool need_upper =
          !options.sign_directed_linking || shape.weight > 0;
      const bool need_lower =
          !options.sign_directed_linking || shape.weight < 0;
      if (need_upper) {
        // T <= each linked variable (tight McCormick upper envelope).
        for (int lv : linked) {
          model.AddConstraint("t_ub", {{t_var, 1.0}, {lv, -1.0}},
                              -ilp::kInfinity, 0);
        }
      }
      if (need_lower) {
        // T >= sum(linked) - (n-1).
        std::vector<ilp::LinTerm> lower{{t_var, 1.0}};
        for (int lv : linked) lower.push_back({lv, -1.0});
        model.AddConstraint("t_lb", std::move(lower), 1.0 - n_linked,
                            ilp::kInfinity);
      }
    }
    if (!threshold.empty()) {
      model.AddConstraint("theta_" + std::to_string(i), std::move(threshold),
                          0, ilp::kInfinity);
    }
  }

  // --- (6) symmetry breaking ----------------------------------------------
  if (options.symmetry == IlpBuildOptions::SymmetryBreaking::kHash) {
    // hash(i) = sum_j 2^min(j, cap) X_{i, mu_j};  hash(i) <= hash(i+1).
    for (int i = 0; i + 1 < k; ++i) {
      std::vector<ilp::LinTerm> terms;
      for (int mu = 0; mu < enc.num_signatures; ++mu) {
        const double weight =
            std::pow(2.0, std::min(mu, options.hash_exponent_cap));
        terms.push_back({enc.x_var[i][mu], weight});
        terms.push_back({enc.x_var[i + 1][mu], -weight});
      }
      model.AddConstraint("hash_" + std::to_string(i), std::move(terms),
                          -ilp::kInfinity, 0);
    }
  } else if (options.symmetry ==
             IlpBuildOptions::SymmetryBreaking::kPrecedence) {
    // Signature mu may open sort i (> 0) only if some earlier signature is in
    // sort i-1; equivalently X_{i,mu} <= sum_{mu' < mu} X_{i-1,mu'}. For
    // mu < i the right-hand side chain is structurally empty, fixing X to 0.
    for (int i = 1; i < k; ++i) {
      for (int mu = 0; mu < enc.num_signatures; ++mu) {
        std::vector<ilp::LinTerm> terms{{enc.x_var[i][mu], 1.0}};
        for (int prev = 0; prev < mu; ++prev) {
          terms.push_back({enc.x_var[i - 1][prev], -1.0});
        }
        model.AddConstraint(
            "prec_" + std::to_string(i) + "_" + std::to_string(mu),
            std::move(terms), -ilp::kInfinity, 0);
      }
    }
  }

  return enc;
}

}  // namespace rdfsr::core
