#include "core/ilp_builder.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <utility>

#include "eval/counts.h"
#include "util/check.h"

namespace rdfsr::core {

std::vector<TauShape> AnalyzeTaus(const std::vector<eval::TauCount>& tau_counts,
                                  const schema::SignatureIndex& index) {
  std::vector<TauShape> shapes;
  shapes.reserve(tau_counts.size());
  for (const eval::TauCount& tc : tau_counts) {
    TauShape shape;
    // Distinct member signatures (first-appearance order) and the union of
    // their supports: a property is "covered" when some member signature's
    // support word already contains it.
    schema::PropertySet seen_sigs(index.num_signatures());
    schema::PropertySet covered(index.num_properties());
    for (const auto& [sig, prop] : tc.tau.cells) {
      (void)prop;
      if (!seen_sigs.Contains(sig)) {
        seen_sigs.Insert(sig);
        shape.sigs.push_back(sig);
        covered.UnionWith(index.signature(sig).props());
      }
    }
    schema::PropertySet linked(index.num_properties());
    for (const auto& [sig, prop] : tc.tau.cells) {
      (void)sig;
      if (!covered.Contains(prop) && !linked.Contains(prop)) {
        linked.Insert(prop);
        shape.linked_props.push_back(prop);
      }
    }
    shape.total = tc.total;
    shape.favorable = tc.favorable;
    shapes.push_back(std::move(shape));
  }
  return shapes;
}

namespace {

bool IsSubstituted(const TauShape& shape, const IlpBuildOptions& options) {
  return options.substitute_singleton_taus && shape.sigs.size() == 1 &&
         shape.linked_props.empty();
}

}  // namespace

namespace {

/// Shared accounting for the two row counters: `link_rows_per_tau` maps a
/// materialized tau's linked-variable count to its contribution to (4).
std::size_t CountRows(const schema::SignatureIndex& index,
                      const std::vector<TauShape>& shapes, int k,
                      const IlpBuildOptions& options,
                      const std::function<std::size_t(std::size_t)>&
                          link_rows_per_tau) {
  const std::size_t n = index.num_signatures();
  std::size_t support_links = 0;
  for (std::size_t mu = 0; mu < n; ++mu) {
    support_links += index.signature(mu).props().Popcount();
  }
  std::size_t tau_links = 0;
  for (const TauShape& shape : shapes) {
    if (IsSubstituted(shape, options)) continue;
    tau_links +=
        link_rows_per_tau(shape.sigs.size() + shape.linked_props.size());
  }
  std::size_t rows =
      n +  // assignment rows (1)
      static_cast<std::size_t>(k) *
          (support_links + index.num_properties() +  // (2) + (3)
           tau_links +                               // linking rows (4)
           1);                                       // threshold row (5)
  switch (options.symmetry) {
    case IlpBuildOptions::SymmetryBreaking::kHash:
      rows += static_cast<std::size_t>(k - 1);
      break;
    case IlpBuildOptions::SymmetryBreaking::kPrecedence:
      rows += static_cast<std::size_t>(k - 1) * n;
      break;
    case IlpBuildOptions::SymmetryBreaking::kNone:
      break;
  }
  return rows;
}

}  // namespace

std::size_t RefinementIlpRows(const schema::SignatureIndex& index,
                              const std::vector<TauShape>& shapes, int k,
                              const IlpBuildOptions& options) {
  // The skeleton always carries both directions: |linked| upper + 1 lower.
  return CountRows(index, shapes, k, options,
                   [](std::size_t linked) { return linked + 1; });
}

std::size_t RefinementIlpActiveRows(const schema::SignatureIndex& index,
                                    const std::vector<TauShape>& shapes, int k,
                                    const IlpBuildOptions& options) {
  if (!options.sign_directed_linking) return RefinementIlpRows(index, shapes, k, options);
  // Sign-directed: at any theta a tau keeps at most one side — the |linked|
  // upper rows (positive weight) or the single lower row (negative weight).
  return CountRows(index, shapes, k, options, [](std::size_t linked) {
    return std::max<std::size_t>(linked, 1);
  });
}

SortRefinement IlpEncoding::Decode(const std::vector<double>& x) const {
  SortRefinement refinement;
  for (int i = 0; i < k; ++i) {
    std::vector<int> members;
    for (int mu = 0; mu < num_signatures; ++mu) {
      // lint:allow(float-compare: rounding an integral 0/1 LP variable)
      if (x[x_var[i][mu]] > 0.5) members.push_back(mu);
    }
    if (!members.empty()) refinement.sorts.push_back(std::move(members));
  }
  return refinement;
}

bool RefinementIlpInstance::Substituted(const TauShape& shape) const {
  return IsSubstituted(shape, options_);
}

RefinementIlpInstance::RefinementIlpInstance(
    const schema::SignatureIndex& index, std::vector<TauShape> shapes, int k,
    const IlpBuildOptions& options)
    : shapes_(std::move(shapes)), options_(options) {
  RDFSR_CHECK_GT(k, 0);

  enc_.k = k;
  enc_.num_signatures = static_cast<int>(index.num_signatures());
  const int num_props = static_cast<int>(index.num_properties());

  ilp::Model& model = enc_.model;

  // --- X variables -----------------------------------------------------
  enc_.x_var.assign(k, std::vector<int>(enc_.num_signatures, -1));
  for (int i = 0; i < k; ++i) {
    for (int mu = 0; mu < enc_.num_signatures; ++mu) {
      enc_.x_var[i][mu] = model.AddBinary("X_" + std::to_string(i) + "_" +
                                          std::to_string(mu));
    }
  }

  // --- U variables -------------------------------------------------------
  // Constraints (2)+(3) pin U to its exact 0/1 value once X is integral, so U
  // may be continuous (see header).
  std::vector<std::vector<int>> u_var(k, std::vector<int>(num_props, -1));
  for (int i = 0; i < k; ++i) {
    for (int p = 0; p < num_props; ++p) {
      u_var[i][p] =
          model.AddVariable("U_" + std::to_string(i) + "_" + std::to_string(p),
                            0, 1, !options.continuous_aux);
    }
  }

  // (1) each signature placed exactly once.
  for (int mu = 0; mu < enc_.num_signatures; ++mu) {
    std::vector<ilp::LinTerm> terms;
    for (int i = 0; i < k; ++i) terms.push_back({enc_.x_var[i][mu], 1.0});
    model.AddConstraint("assign_" + std::to_string(mu), std::move(terms), 1, 1);
  }

  // (2) X_{i,mu} <= U_{i,p} for p in supp(mu);
  // (3) U_{i,p} <= sum of supporting X.
  // Column generation from the support words: one pass over the packed
  // signature supports yields, per property, the ascending list of supporting
  // signatures, instead of probing every (mu, p) pair per sort.
  std::vector<std::vector<int>> sigs_with(num_props);
  for (int mu = 0; mu < enc_.num_signatures; ++mu) {
    index.signature(mu).props().ForEach(
        [&](int p) { sigs_with[p].push_back(mu); });
  }
  for (int i = 0; i < k; ++i) {
    for (int p = 0; p < num_props; ++p) {
      std::vector<ilp::LinTerm> supporters;
      for (int mu : sigs_with[p]) {
        model.AddConstraint(
            "use_lo_" + std::to_string(i) + "_" + std::to_string(mu) + "_" +
                std::to_string(p),
            {{enc_.x_var[i][mu], 1.0}, {u_var[i][p], -1.0}}, -ilp::kInfinity,
            0);
        supporters.push_back({enc_.x_var[i][mu], 1.0});
      }
      supporters.push_back({u_var[i][p], -1.0});
      model.AddConstraint(
          "use_hi_" + std::to_string(i) + "_" + std::to_string(p),
          std::move(supporters), 0, ilp::kInfinity);
    }
  }

  // --- T variables, linking rows (4), threshold rows (5) ------------------
  // The skeleton materializes every non-substituted tau with BOTH linking
  // directions; link rows start vacuous (both bounds infinite) and threshold
  // rows empty — Reweight activates the theta-dependent parts per instance.
  t_var_.assign(k, std::vector<int>(shapes_.size(), -1));
  link_row_.assign(k, std::vector<int>(shapes_.size(), -1));
  threshold_row_.assign(k, -1);
  for (int i = 0; i < k; ++i) {
    for (std::size_t t = 0; t < shapes_.size(); ++t) {
      const TauShape& shape = shapes_[t];
      if (Substituted(shape)) {
        if (i == 0) ++enc_.num_tau_substituted;
        continue;  // T == X_{i,mu}; folded into the threshold row
      }
      const int t_var = enc_.model.AddVariable(
          "T_" + std::to_string(i) + "_" + std::to_string(t), 0, 1,
          !options.continuous_aux);
      if (i == 0) ++enc_.num_tau_variables;
      t_var_[i][t] = t_var;

      // The variables T is the conjunction of.
      std::vector<int> linked;
      for (int mu : shape.sigs) linked.push_back(enc_.x_var[i][mu]);
      for (int p : shape.linked_props) linked.push_back(u_var[i][p]);

      // Upper envelope rows: T <= each linked variable.
      link_row_[i][t] = static_cast<int>(model.num_constraints());
      for (int lv : linked) {
        model.AddConstraint("t_ub", {{t_var, 1.0}, {lv, -1.0}},
                            -ilp::kInfinity, ilp::kInfinity);
      }
      // Lower envelope row: T >= sum(linked) - (n-1).
      std::vector<ilp::LinTerm> lower{{t_var, 1.0}};
      for (int lv : linked) lower.push_back({lv, -1.0});
      model.AddConstraint("t_lb", std::move(lower), -ilp::kInfinity,
                          ilp::kInfinity);
    }
    threshold_row_[i] = model.AddConstraint("theta_" + std::to_string(i), {},
                                            0, ilp::kInfinity);
  }

  // --- (6) symmetry breaking ----------------------------------------------
  if (options.symmetry == IlpBuildOptions::SymmetryBreaking::kHash) {
    // hash(i) = sum_j 2^min(j, cap) X_{i, mu_j};  hash(i) <= hash(i+1).
    for (int i = 0; i + 1 < k; ++i) {
      std::vector<ilp::LinTerm> terms;
      for (int mu = 0; mu < enc_.num_signatures; ++mu) {
        const double weight =
            std::pow(2.0, std::min(mu, options.hash_exponent_cap));
        terms.push_back({enc_.x_var[i][mu], weight});
        terms.push_back({enc_.x_var[i + 1][mu], -weight});
      }
      model.AddConstraint("hash_" + std::to_string(i), std::move(terms),
                          -ilp::kInfinity, 0);
    }
  } else if (options.symmetry ==
             IlpBuildOptions::SymmetryBreaking::kPrecedence) {
    // Signature mu may open sort i (> 0) only if some earlier signature is in
    // sort i-1; equivalently X_{i,mu} <= sum_{mu' < mu} X_{i-1,mu'}. For
    // mu < i the right-hand side chain is structurally empty, fixing X to 0.
    for (int i = 1; i < k; ++i) {
      for (int mu = 0; mu < enc_.num_signatures; ++mu) {
        std::vector<ilp::LinTerm> terms{{enc_.x_var[i][mu], 1.0}};
        for (int prev = 0; prev < mu; ++prev) {
          terms.push_back({enc_.x_var[i - 1][prev], -1.0});
        }
        model.AddConstraint(
            "prec_" + std::to_string(i) + "_" + std::to_string(mu),
            std::move(terms), -ilp::kInfinity, 0);
      }
    }
  }
}

void RefinementIlpInstance::Reweight(Rational theta) {
  RDFSR_CHECK_GE(theta.num(), 0);
  ilp::Model& model = enc_.model;

  // Exact per-tau weights w = theta2*cF - theta1*cT, and the scale keeping
  // threshold coefficients O(1) for the double simplex regardless of dataset
  // size.
  std::vector<eval::BigCount> weight(shapes_.size(), 0);
  double max_weight = 1.0;
  for (std::size_t t = 0; t < shapes_.size(); ++t) {
    weight[t] =
        static_cast<eval::BigCount>(theta.den()) * shapes_[t].favorable -
        static_cast<eval::BigCount>(theta.num()) * shapes_[t].total;
    max_weight =
        std::max(max_weight, std::abs(static_cast<double>(weight[t])));
  }

  const int k = enc_.k;
  for (int i = 0; i < k; ++i) {
    std::vector<ilp::LinTerm> threshold;  // sum w(tau) T_{i,tau} >= 0
    for (std::size_t t = 0; t < shapes_.size(); ++t) {
      const TauShape& shape = shapes_[t];
      const bool materialized = t_var_[i][t] >= 0;
      if (weight[t] != 0) {
        const double w = static_cast<double>(weight[t]) / max_weight;
        threshold.push_back(
            {materialized ? t_var_[i][t] : enc_.x_var[i][shape.sigs[0]], w});
      }
      if (!materialized) continue;

      // Sign-directed activation: a positive-weight tau only needs the upper
      // links (the row pushes T up), a negative-weight one only the lower
      // link; a zero-weight tau is absent from the row, so both sides relax
      // (its T is free and unused). Without sign_directed_linking both sides
      // stay active for every tau in the row.
      const bool need_upper = options_.sign_directed_linking
                                  ? weight[t] > 0
                                  : weight[t] != 0;
      const bool need_lower = options_.sign_directed_linking
                                  ? weight[t] < 0
                                  : weight[t] != 0;
      const int first = link_row_[i][t];
      const int n_linked =
          static_cast<int>(shape.sigs.size() + shape.linked_props.size());
      for (int r = 0; r < n_linked; ++r) {
        model.SetConstraintBounds(first + r,
                                  -ilp::kInfinity,
                                  need_upper ? 0.0 : ilp::kInfinity);
      }
      model.SetConstraintBounds(first + n_linked,
                                need_lower ? 1.0 - n_linked : -ilp::kInfinity,
                                ilp::kInfinity);
    }
    model.SetConstraintTerms(threshold_row_[i], std::move(threshold), 0,
                             ilp::kInfinity);
  }

  RDFSR_AUDIT_CHECK_INVARIANTS(*this);
}

void RefinementIlpInstance::CheckInvariants() const {
  const ilp::Model& model = enc_.model;
  model.CheckInvariants();

  const std::size_t k = static_cast<std::size_t>(enc_.k);
  const std::size_t num_vars = model.num_variables();
  const std::size_t num_rows = model.num_constraints();
  RDFSR_CHECK_EQ(enc_.x_var.size(), k);
  RDFSR_CHECK_EQ(t_var_.size(), k);
  RDFSR_CHECK_EQ(link_row_.size(), k);
  RDFSR_CHECK_EQ(threshold_row_.size(), k);

  std::vector<char> own_var(num_vars, 0);  // sort i's X and T variables
  for (std::size_t i = 0; i < k; ++i) {
    RDFSR_CHECK_EQ(enc_.x_var[i].size(),
                   static_cast<std::size_t>(enc_.num_signatures));
    RDFSR_CHECK_EQ(t_var_[i].size(), shapes_.size());
    RDFSR_CHECK_EQ(link_row_[i].size(), shapes_.size());

    std::fill(own_var.begin(), own_var.end(), 0);
    for (int v : enc_.x_var[i]) {
      RDFSR_CHECK_GE(v, 0);
      RDFSR_CHECK_LT(static_cast<std::size_t>(v), num_vars);
      own_var[v] = 1;
    }

    for (std::size_t t = 0; t < shapes_.size(); ++t) {
      const TauShape& shape = shapes_[t];
      const int t_var = t_var_[i][t];
      RDFSR_CHECK_EQ(t_var < 0, Substituted(shape))
          << "substitution decision out of sync with the T map";
      if (t_var < 0) {
        RDFSR_CHECK_EQ(link_row_[i][t], -1);
        RDFSR_CHECK_EQ(shape.sigs.size(), 1u)
            << "substituted tau must touch a single signature";
        continue;
      }
      RDFSR_CHECK_LT(static_cast<std::size_t>(t_var), num_vars);
      own_var[t_var] = 1;

      // Rows [first, first + n_linked] exist and carry exactly the bound
      // shapes Reweight toggles between (upper: -inf <= . <= {0, inf};
      // lower: {1 - n, -inf} <= . <= inf).
      const int first = link_row_[i][t];
      const int n_linked =
          static_cast<int>(shape.sigs.size() + shape.linked_props.size());
      RDFSR_CHECK_GE(first, 0);
      RDFSR_CHECK_LT(static_cast<std::size_t>(first + n_linked), num_rows);
      for (int r = 0; r < n_linked; ++r) {
        const ilp::Constraint& row = model.constraint(first + r);
        RDFSR_CHECK_EQ(row.lower, -ilp::kInfinity);
        RDFSR_CHECK(row.upper == 0.0 || row.upper == ilp::kInfinity)
            << "upper link row bound is neither active nor vacuous";
      }
      const ilp::Constraint& lower_row = model.constraint(first + n_linked);
      RDFSR_CHECK_EQ(lower_row.upper, ilp::kInfinity);
      // lint:allow(float-compare: audit check of an exactly-stored sentinel)
      RDFSR_CHECK(lower_row.lower == 1.0 - n_linked ||
                  lower_row.lower == -ilp::kInfinity)
          << "lower link row bound is neither active nor vacuous";
    }

    // The threshold row sum w(tau) T >= 0 may only mention sort i's own
    // X/T variables — a cross-sort term would couple the blocks.
    const int theta_row = threshold_row_[i];
    RDFSR_CHECK_GE(theta_row, 0);
    RDFSR_CHECK_LT(static_cast<std::size_t>(theta_row), num_rows);
    const ilp::Constraint& theta = model.constraint(theta_row);
    RDFSR_CHECK_EQ(theta.lower, 0.0);
    RDFSR_CHECK_EQ(theta.upper, ilp::kInfinity);
    for (const ilp::LinTerm& term : theta.terms) {
      RDFSR_CHECK(own_var[term.var])
          << "threshold row " << i << " mentions another sort's variable";
    }
  }
}

IlpEncoding BuildRefinementIlp(const schema::SignatureIndex& index,
                               const rules::Rule& rule,
                               const std::vector<eval::TauCount>& tau_counts,
                               int k, Rational theta,
                               const IlpBuildOptions& options) {
  (void)rule;
  RefinementIlpInstance instance(index, AnalyzeTaus(tau_counts, index), k,
                                 options);
  instance.Reweight(theta);
  return std::move(instance).ReleaseEncoding();
}

}  // namespace rdfsr::core
