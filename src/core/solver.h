// The sort-refinement searches of Section 7.
//
// RefinementSolver answers the EXISTSSORTREFINEMENT(r) decision problem and
// drives the paper's two experimental modes:
//  * "highest theta for fixed k" — sequential search from sigma_r(D) upward in
//    0.01 steps, keeping the last feasible refinement (Section 7: "this
//    sequential search is preferred over a binary search"),
//  * "lowest k for fixed theta" — increasing k until an instance is feasible.
//
// Each decision instance is attacked greedy-first (primal heuristic); the
// exact branch-and-bound over the Section 6 ILP settles instances the
// heuristic cannot, and is the only component that can prove non-existence.
// Node/time limits surface as kUnknown rather than a wrong answer.

#ifndef RDFSR_CORE_SOLVER_H_
#define RDFSR_CORE_SOLVER_H_

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "core/greedy.h"
#include "eval/cached_evaluator.h"
#include "core/ilp_builder.h"
#include "core/refinement.h"
#include "eval/evaluator.h"
#include "ilp/branch_and_bound.h"
#include "util/rational.h"

namespace rdfsr::core {

/// Three-valued decision outcome.
enum class Decision {
  kExists,
  kNotExists,
  kUnknown,  ///< solver limits hit before an answer
};

const char* DecisionName(Decision decision);

/// Outcome of one EXISTSSORTREFINEMENT instance.
struct DecisionResult {
  Decision decision = Decision::kUnknown;
  std::optional<SortRefinement> refinement;  ///< present when kExists
  bool via_greedy = false;   ///< heuristic answered without the MIP
  long long mip_nodes = 0;
  double seconds = 0.0;
};

/// Solver configuration.
struct SolverOptions {
  IlpBuildOptions build;
  ilp::MipOptions mip;
  GreedyOptions greedy;
  bool greedy_first = true;  ///< try the heuristic before the exact solver
  double theta_step = 0.01;  ///< paper's sequential step
  /// Use bisection instead of the paper's sequential scan in
  /// FindHighestTheta. The paper prefers sequential search because "it has
  /// proven to be much slower to find an instance infeasible than to find a
  /// solution to a feasible instance" — bisection front-loads infeasible
  /// instances. Kept as an option for the ablation bench.
  bool binary_theta_search = false;
  /// Memoize sigma evaluations across heuristic and validation calls.
  bool cache_evaluations = true;
  /// Skip the exact MIP when the encoding exceeds this many rows (our dense
  /// simplex keeps an m x m basis inverse; CPLEX had no such ceiling). The
  /// instance then resolves to kUnknown unless the heuristic found a witness.
  std::size_t max_mip_rows = 4000;
};

/// Result of the highest-theta search.
struct HighestThetaResult {
  Rational theta;  ///< best threshold with a feasible refinement
  SortRefinement refinement;
  int instances = 0;       ///< decision instances solved
  bool ceiling_proven = false;  ///< next step was proven infeasible (vs unknown)
  double seconds = 0.0;
};

/// Result of the lowest-k search.
struct LowestKResult {
  int k = 0;
  SortRefinement refinement;
  bool proven_minimal = false;  ///< all smaller k proven infeasible
  int instances = 0;
  double seconds = 0.0;
};

/// Drives refinement searches for one (dataset, rule) pair.
class RefinementSolver {
 public:
  /// `evaluator` must outlive the solver; its rule and index define the
  /// problem.
  explicit RefinementSolver(const eval::Evaluator* evaluator,
                            SolverOptions options = {});

  /// EXISTSSORTREFINEMENT(r) on (D, theta, k). Any returned refinement is
  /// validated exactly before being reported.
  DecisionResult Exists(int k, Rational theta);

  /// Highest theta with a k-sort refinement (sequential search).
  HighestThetaResult FindHighestTheta(int k);

  /// Smallest k admitting a refinement with threshold theta; searches k
  /// upward from 1 to max_k (default: number of signatures). Fails with
  /// NotFound when no k up to the cap works.
  Result<LowestKResult> FindLowestK(Rational theta, int max_k = -1);

 private:
  /// The evaluator actually consulted (the cache wrapper when enabled).
  const eval::Evaluator& Eval() const {
    return cached_ != nullptr ? *cached_ : *evaluator_;
  }

  const eval::Evaluator* evaluator_;
  std::unique_ptr<eval::CachedEvaluator> cached_;
  SolverOptions options_;
  // Tau counts depend only on (rule, dataset) — theta enters the encoding
  // via the weights — so the enumeration is cached across instances.
  std::vector<eval::TauCount> tau_counts_;
  bool tau_counts_ready_ = false;
  // Agglomerative lowest-k partitions per theta (reused across the k sweep).
  std::map<std::pair<std::int64_t, std::int64_t>, SortRefinement>
      agglomerative_cache_;

  const std::vector<eval::TauCount>& TauCounts();
  const SortRefinement& AgglomerativeForTheta(Rational theta);
};

}  // namespace rdfsr::core

#endif  // RDFSR_CORE_SOLVER_H_
