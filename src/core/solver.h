// The sort-refinement searches of Section 7.
//
// RefinementSolver answers the EXISTSSORTREFINEMENT(r) decision problem and
// drives the paper's two experimental modes:
//  * "highest theta for fixed k" — sequential search from sigma_r(D) upward in
//    0.01 steps, keeping the last feasible refinement (Section 7: "this
//    sequential search is preferred over a binary search"),
//  * "lowest k for fixed theta" — increasing k until an instance is feasible.
//
// Each decision instance is attacked greedy-first (primal heuristic); the
// exact branch-and-bound over the Section 6 ILP settles instances the
// heuristic cannot, and is the only component that can prove non-existence.
// Node/time limits surface as kUnknown rather than a wrong answer.
//
// Both searches drive many closely-related instances, and everything but the
// threshold is shared between them, so the solver is incremental across
// instances (reuse_instances, on by default):
//  * one RefinementIlpInstance per k, reweighted per theta instead of
//    rebuilding the O(k * |P| * n) encoding,
//  * the theta-independent heuristics (greedy max-min, fixed-k agglomerative)
//    run once per k; their per-sort counts are cached so re-validation
//    against each instance's threshold is O(#sorts) exact comparisons,
//  * the theta grid itself is derived in exact integer arithmetic
//    (ThetaGrid), so no grid point is skipped or re-tested and theta = 1 is
//    always the endpoint.
// Outputs are bit-identical with reuse off — bench/bench_solver.cc asserts it
// while measuring the speedup.

#ifndef RDFSR_CORE_SOLVER_H_
#define RDFSR_CORE_SOLVER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/greedy.h"
#include "eval/cached_evaluator.h"
#include "core/ilp_builder.h"
#include "core/refinement.h"
#include "eval/evaluator.h"
#include "ilp/branch_and_bound.h"
#include "util/rational.h"

namespace rdfsr::core {

/// Three-valued decision outcome.
enum class Decision {
  kExists,
  kNotExists,
  kUnknown,  ///< solver limits hit before an answer
};

const char* DecisionName(Decision decision);

/// Outcome of one EXISTSSORTREFINEMENT instance.
struct DecisionResult {
  Decision decision = Decision::kUnknown;
  std::optional<SortRefinement> refinement;  ///< present when kExists
  bool via_greedy = false;   ///< heuristic answered without the MIP
  long long mip_nodes = 0;
  /// LP engine internals of the exact solve (zero when the heuristic or a
  /// shortcut answered): pivots, refactorizations, warm-basis reuses, eta
  /// high-water mark.
  ilp::LpEngineStats lp_stats;
  double seconds = 0.0;
  /// Why the instance is kUnknown (OK otherwise): kResourceExhausted for
  /// node/LP-iteration/size limits (the message names the limit and its
  /// count), kDeadlineExceeded / kCancelled when the deadline token tripped.
  Status limit = Status::OK();
};

/// Solver configuration.
struct SolverOptions {
  IlpBuildOptions build;
  ilp::MipOptions mip;
  GreedyOptions greedy;
  bool greedy_first = true;  ///< try the heuristic before the exact solver
  /// Step of the sequential highest-theta search (paper: 0.01). Validated by
  /// MakeThetaGrid: non-finite / non-positive values fall back to 0.01, and
  /// values below the 1/1000 grid resolution clamp to 0.001 (a smaller step
  /// would otherwise collapse to a zero rational and divide the grid
  /// derivation by zero).
  double theta_step = 0.01;
  /// Use bisection instead of the paper's sequential scan in
  /// FindHighestTheta. The paper prefers sequential search because "it has
  /// proven to be much slower to find an instance infeasible than to find a
  /// solution to a feasible instance" — bisection front-loads infeasible
  /// instances. Kept as an option for the ablation bench.
  bool binary_theta_search = false;
  /// Memoize sigma evaluations across heuristic and validation calls.
  bool cache_evaluations = true;
  /// Reuse work across decision instances: one ILP encoding per k reweighted
  /// per theta, theta-independent heuristic refinements computed once per k,
  /// and per-sort counts cached so validation per instance is a handful of
  /// exact comparisons. Outputs are bit-identical with the flag off (the
  /// heuristics are deterministic and a reweighted instance equals a fresh
  /// build); off exists as the rebuild-per-instance baseline for
  /// bench_solver and the regression tests.
  bool reuse_instances = true;
  /// Warm-start the exact solves across the search grid: each SolveMip's root
  /// basis (same k) seeds the next instance's root LP, so a Reweight(theta)
  /// step usually re-optimizes in a handful of pivots instead of a cold
  /// phase-1. Mismatched shapes (presolve reductions differ between thetas)
  /// fall back to a cold start automatically. Off exists as the measured
  /// baseline for bench_solver.
  bool warm_start = true;
  /// Skip the exact MIP when the encoding exceeds this many rows; the
  /// instance then resolves to kUnknown unless the heuristic found a witness.
  /// The ceiling is a time guard, not a memory one, and it bounds the ROOT
  /// LP: branch-and-bound churn on a phase-transition instance is capped by
  /// MipOptions::time_limit_seconds at any size, so the gate's job is to
  /// keep the cold root solve itself inside that budget. Measured with the
  /// sparse LU engine (ilp/basis.h, O(m + fill) per pivot vs the old dense
  /// inverse's O(m^2)): a root LP at ~16k rows (a 512-signature, k = 2
  /// encoding) completes in ~10 s, against the old engine's ~4000-row limit
  /// for the same wall clock — hence 20000, a 5x raise that keeps one root
  /// solve well under the default 120 s MIP budget. bench_solver's
  /// exact_frontier config tracks this point. Checked against the exact
  /// worst-case count of rows the simplex will see (RefinementIlpActiveRows —
  /// deactivated link sides presolve away) before any model is built.
  std::size_t max_mip_rows = 20000;
  /// Worker threads for the agglomerative heuristics' best-pair row
  /// recomputation (values < 1 mean one per hardware thread). Purely a
  /// throughput knob: the merge sequence is bit-identical for every value
  /// (see AgglomerativeLowestK), and small instances stay serial regardless.
  int heuristic_threads = 1;
  /// Wall-clock budget / cancellation for every search this solver runs.
  /// Anytime semantics: a tripped deadline makes Exists return kUnknown (with
  /// DecisionResult::limit explaining why), FindHighestTheta return its best
  /// incumbent so far with timed_out set and ceiling_proven false, and
  /// FindLowestK fail with kDeadlineExceeded / kCancelled. The default is
  /// infinite. Re-arm per query with RefinementSolver::set_deadline (which
  /// preserves the incremental caches, unlike rebuilding the solver).
  util::Deadline deadline;
};

/// The exact theta grid of FindHighestTheta: indices first..last over
/// multiples of `step`, with the endpoint clamped so Theta(last) == 1 exactly
/// (e.g. step = 3/100 ends at min(34 * 3/100, 1) = 1, not 99/100). Empty
/// (first > last) only when sigma_all is already 1.
struct ThetaGrid {
  Rational step;
  std::int64_t first = 0;  ///< smallest index with Theta(first) > sigma_all
  std::int64_t last = 0;   ///< Theta(last) == 1

  /// min(g * step, 1).
  Rational Theta(std::int64_t g) const;
};

/// Derives the grid strictly above `sigma_all` with integer arithmetic only
/// (the former double floor could skip or re-test a point when sigma_all sat
/// exactly on the grid). `theta_step` is validated as documented on
/// SolverOptions::theta_step.
ThetaGrid MakeThetaGrid(Rational sigma_all, double theta_step);

/// Result of the highest-theta search.
struct HighestThetaResult {
  Rational theta;  ///< best threshold with a feasible refinement
  SortRefinement refinement;
  int instances = 0;       ///< decision instances solved
  bool ceiling_proven = false;  ///< next step was proven infeasible (vs unknown)
  long long mip_nodes = 0;         ///< summed over the exact solves
  ilp::LpEngineStats lp_stats;     ///< aggregated over the exact solves
  double seconds = 0.0;
  /// The deadline cut the grid scan: `theta`/`refinement` still carry the
  /// best incumbent found before the cut (at worst the sigma_all baseline),
  /// but thresholds above it were never decided (ceiling_proven is false).
  bool timed_out = false;
};

/// Result of the lowest-k search.
struct LowestKResult {
  int k = 0;
  SortRefinement refinement;
  bool proven_minimal = false;  ///< all smaller k proven infeasible
  int instances = 0;
  long long mip_nodes = 0;         ///< summed over the exact solves
  ilp::LpEngineStats lp_stats;     ///< aggregated over the exact solves
  double seconds = 0.0;
  /// Some smaller k went undecided because the deadline tripped (implies
  /// !proven_minimal): the found k is an upper bound reached under time
  /// pressure, not a minimality proof.
  bool timed_out = false;
};

/// Drives refinement searches for one (dataset, rule) pair.
class RefinementSolver {
 public:
  /// `evaluator` must outlive the solver; its rule and index define the
  /// problem.
  explicit RefinementSolver(const eval::Evaluator* evaluator,
                            SolverOptions options = {});

  /// EXISTSSORTREFINEMENT(r) on (D, theta, k). Any returned refinement is
  /// validated exactly before being reported.
  DecisionResult Exists(int k, Rational theta);

  /// Highest theta with a k-sort refinement (sequential search).
  HighestThetaResult FindHighestTheta(int k);

  /// Smallest k admitting a refinement with threshold theta; searches k
  /// upward from 1 to max_k (default: number of signatures). On exhaustion
  /// the failure distinguishes decidedness: NotFound means every k <= max_k
  /// was PROVEN infeasible; ResourceExhausted means at least one instance hit
  /// solver limits (kUnknown), so a refinement may still exist. Both carry
  /// the instance count and elapsed seconds in the message. A deadline trip
  /// mid-sweep fails with kDeadlineExceeded / kCancelled instead.
  Result<LowestKResult> FindLowestK(Rational theta, int max_k = -1);

  /// Re-arms the wall-clock budget for subsequent queries without touching
  /// the incremental caches (instances, heuristic refinements). api::Analysis
  /// calls this per query to implement its Timeout knob.
  void set_deadline(util::Deadline deadline) {
    options_.deadline = std::move(deadline);
  }

 private:
  /// A heuristic refinement scored once: structure checked and per-sort
  /// counts extracted (theta-independent), so checking it against any
  /// threshold afterwards is an exact comparison per sort.
  struct ScoredRefinement {
    SortRefinement refinement;
    std::vector<eval::SigmaCounts> counts;
    bool structure_ok = false;
  };

  /// The evaluator actually consulted (the cache wrapper when enabled).
  const eval::Evaluator& Eval() const {
    return cached_ != nullptr ? *cached_ : *evaluator_;
  }

  const std::vector<eval::TauCount>& TauCounts();
  /// Theta-independent tau link analysis, shared by every encoding.
  const std::vector<TauShape>& Shapes();
  /// The reusable encoding for k (single slot — the searches drive one k at
  /// a time). With reuse_instances off, builds a fresh instance per call.
  RefinementIlpInstance& InstanceFor(int k);
  ScoredRefinement Score(SortRefinement refinement) const;
  const ScoredRefinement& AgglomerativeForTheta(Rational theta);
  const ScoredRefinement& AgglomerativeFixedKFor(int k);
  const ScoredRefinement& GreedyFor(int k);

  const eval::Evaluator* evaluator_;
  std::unique_ptr<eval::CachedEvaluator> cached_;
  SolverOptions options_;
  // Tau counts and shapes depend only on (rule, dataset) — theta enters the
  // encoding via the weights — so both are cached across instances.
  std::vector<eval::TauCount> tau_counts_;
  bool tau_counts_ready_ = false;
  std::optional<std::vector<TauShape>> shapes_;
  // The reusable exact encoding (reuse_instances): rebuilt only when k
  // changes, reweighted per theta.
  std::unique_ptr<RefinementIlpInstance> instance_;
  int instance_k_ = -1;
  // Warm-start chain (SolverOptions::warm_start): the root basis of the last
  // exact solve, keyed by its k. A Reweight(theta) step keeps the variable
  // space, so the basis usually transplants; shape mismatches (different
  // presolve reductions) are rejected inside the MIP and cost nothing.
  ilp::SimplexBasis warm_basis_;
  int warm_basis_k_ = -1;
  // Heuristic-ladder caches. Agglomerative lowest-k partitions per theta
  // (reused across the k ladder); fixed-k agglomerative and greedy max-min
  // per k (theta-independent, reused across the theta grid).
  std::map<std::pair<std::int64_t, std::int64_t>, ScoredRefinement>
      agglomerative_cache_;
  std::map<int, ScoredRefinement> fixed_k_cache_;
  std::map<int, ScoredRefinement> greedy_cache_;
  // Single-slot scratch for the reuse_instances=false baseline, so the
  // accessors can still hand out references.
  ScoredRefinement scratch_scored_;
};

}  // namespace rdfsr::core

#endif  // RDFSR_CORE_SOLVER_H_
