#include "core/greedy.h"

#include <algorithm>
#include <functional>
#include <numeric>

#include "schema/property_set.h"
#include "util/check.h"
#include "util/rng.h"

namespace rdfsr::core {

namespace {

/// Score of a partition: the sorted-ascending vector of per-sort sigmas
/// (lexicographic comparison == maximize the minimum, then the second
/// minimum, ...). Empty slots are ignored.
std::vector<double> Score(const eval::Evaluator& evaluator,
                          const std::vector<std::vector<int>>& slots) {
  std::vector<double> sigmas;
  for (const std::vector<int>& slot : slots) {
    if (!slot.empty()) sigmas.push_back(evaluator.Sigma(slot));
  }
  std::sort(sigmas.begin(), sigmas.end());
  return sigmas;
}

SortRefinement ToRefinement(const std::vector<std::vector<int>>& slots) {
  SortRefinement refinement;
  for (const std::vector<int>& slot : slots) {
    if (!slot.empty()) refinement.sorts.push_back(slot);
  }
  return refinement;
}

}  // namespace

SortRefinement GreedyMaxMinSigma(const eval::Evaluator& evaluator, int k,
                                 const GreedyOptions& options) {
  RDFSR_CHECK_GT(k, 0);
  const schema::SignatureIndex& index = evaluator.index();
  const int n = static_cast<int>(index.num_signatures());
  RDFSR_CHECK_GT(n, 0);

  Rng rng(options.seed);
  std::vector<std::vector<int>> best_slots;
  std::vector<double> best_score;

  // Signatures in descending size: placing the big sets first lets the
  // incremental sigma of each slot stabilize early.
  std::vector<int> order(n);
  for (int i = 0; i < n; ++i) order[i] = i;

  for (int restart = 0; restart < options.restarts; ++restart) {
    std::vector<int> shuffled = order;
    if (restart > 0) {
      // Keep the first restart deterministic-greedy; later ones perturb.
      for (int i = n - 1; i > 0; --i) {
        std::swap(shuffled[i], shuffled[rng.Below(i + 1)]);
      }
    }

    // Greedy construction: put each signature where the resulting score
    // vector is best; opening a new (empty) slot is allowed while slots
    // remain. Slots are tried in descending support overlap with the
    // candidate (word-packed IntersectCount against the slot's support
    // union), so score ties resolve toward the structurally closest sort.
    std::vector<std::vector<int>> slots(k);
    std::vector<schema::PropertySet> slot_support(
        k, schema::PropertySet(index.num_properties()));
    for (int sig : shuffled) {
      const schema::PropertySet& sig_props = index.signature(sig).props();
      std::vector<int> slot_order(k);
      std::iota(slot_order.begin(), slot_order.end(), 0);
      std::vector<std::size_t> overlap(k);
      for (int s = 0; s < k; ++s) {
        overlap[s] = slot_support[s].IntersectCount(sig_props);
      }
      std::stable_sort(slot_order.begin(), slot_order.end(),
                       [&](int a, int b) { return overlap[a] > overlap[b]; });
      int best_slot = -1;
      std::vector<double> best_local;
      bool tried_empty = false;
      for (int s : slot_order) {
        if (slots[s].empty()) {
          if (tried_empty) continue;  // empty slots are interchangeable
          tried_empty = true;
        }
        slots[s].push_back(sig);
        std::vector<double> sc = Score(evaluator, slots);
        slots[s].pop_back();
        if (best_slot < 0 || sc > best_local) {
          best_local = std::move(sc);
          best_slot = s;
        }
      }
      slots[best_slot].push_back(sig);
      slot_support[best_slot].UnionWith(sig_props);
    }

    // Local search: move a single signature to a different slot when that
    // improves the score vector.
    for (int pass = 0; pass < options.max_passes; ++pass) {
      bool improved = false;
      std::vector<double> current = Score(evaluator, slots);
      for (int s = 0; s < k; ++s) {
        for (std::size_t pos = 0; pos < slots[s].size(); ++pos) {
          const int sig = slots[s][pos];
          bool tried_empty = false;
          for (int d = 0; d < k; ++d) {
            if (d == s) continue;
            if (slots[d].empty()) {
              if (tried_empty) continue;
              tried_empty = true;
            }
            // Apply the move.
            slots[s].erase(slots[s].begin() + pos);
            slots[d].push_back(sig);
            std::vector<double> sc = Score(evaluator, slots);
            if (sc > current) {
              current = std::move(sc);
              improved = true;
              // Keep the move; restart scanning this slot.
              break;
            }
            // Undo.
            slots[d].pop_back();
            slots[s].insert(slots[s].begin() + pos, sig);
          }
          if (improved) break;
        }
        if (improved) break;
      }
      if (!improved) break;
    }

    std::vector<double> sc = Score(evaluator, slots);
    if (best_slots.empty() || sc > best_score) {
      best_score = std::move(sc);
      best_slots = slots;
    }
  }

  return ToRefinement(best_slots);
}

std::optional<SortRefinement> GreedyFindRefinement(
    const eval::Evaluator& evaluator, int k, Rational theta,
    const GreedyOptions& options) {
  SortRefinement candidate = GreedyMaxMinSigma(evaluator, k, options);
  if (ValidateRefinement(evaluator, candidate, theta).ok()) return candidate;
  return std::nullopt;
}

namespace {

/// Shared agglomerative engine. Merges the best pair (highest merged sigma;
/// ties by lower indices for determinism) while `may_merge` admits it and
/// more than `min_sorts` sorts remain.
SortRefinement Agglomerate(
    const eval::Evaluator& evaluator, std::size_t min_sorts,
    const std::function<bool(const eval::SigmaCounts&)>& may_merge) {
  const int n = static_cast<int>(evaluator.index().num_signatures());
  std::vector<std::vector<int>> parts(n);
  for (int i = 0; i < n; ++i) parts[i] = {i};

  // Pairwise merged-sigma cache; invalidated rows recomputed after merges.
  auto merged_counts = [&](int a, int b) {
    std::vector<int> merged = parts[a];
    merged.insert(merged.end(), parts[b].begin(), parts[b].end());
    return evaluator.Counts(merged);
  };

  while (parts.size() > std::max<std::size_t>(min_sorts, 1)) {
    int best_a = -1, best_b = -1;
    double best_sigma = -1.0;
    bool best_allowed = false;
    for (std::size_t a = 0; a < parts.size(); ++a) {
      for (std::size_t b = a + 1; b < parts.size(); ++b) {
        const eval::SigmaCounts counts =
            merged_counts(static_cast<int>(a), static_cast<int>(b));
        const bool allowed = may_merge(counts);
        const double sigma = counts.Value();
        // Prefer allowed merges; among them the highest sigma.
        if ((allowed && !best_allowed) ||
            (allowed == best_allowed && sigma > best_sigma + 1e-15)) {
          best_a = static_cast<int>(a);
          best_b = static_cast<int>(b);
          best_sigma = sigma;
          best_allowed = allowed;
        }
      }
    }
    if (best_a < 0) break;
    // Under a threshold regime (min_sorts == 1) only allowed merges happen;
    // under fixed-k (min_sorts == k) every merge is allowed by construction.
    if (!best_allowed) break;
    parts[best_a].insert(parts[best_a].end(), parts[best_b].begin(),
                         parts[best_b].end());
    parts.erase(parts.begin() + best_b);
  }

  SortRefinement refinement;
  for (auto& part : parts) {
    std::sort(part.begin(), part.end());
    refinement.sorts.push_back(std::move(part));
  }
  return refinement;
}

}  // namespace

SortRefinement AgglomerativeLowestK(const eval::Evaluator& evaluator,
                                    Rational theta) {
  return Agglomerate(evaluator, 1, [&](const eval::SigmaCounts& counts) {
    return SigmaAtLeast(counts, theta);
  });
}

SortRefinement AgglomerativeFixedK(const eval::Evaluator& evaluator, int k) {
  RDFSR_CHECK_GT(k, 0);
  return Agglomerate(evaluator, static_cast<std::size_t>(k),
                     [](const eval::SigmaCounts&) { return true; });
}

}  // namespace rdfsr::core
