#include "core/greedy.h"

#include <algorithm>
#include <functional>
#include <memory>
#include <numeric>
#include <queue>
#include <utility>

#include "eval/sort_stats.h"
#include "schema/property_set.h"
#include "util/check.h"
#include "util/mutex.h"
#include "util/rng.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace rdfsr::core {

namespace {

SortRefinement ToRefinement(const std::vector<std::vector<int>>& slots) {
  SortRefinement refinement;
  for (const std::vector<int>& slot : slots) {
    if (!slot.empty()) refinement.sorts.push_back(slot);
  }
  return refinement;
}

}  // namespace

// Incremental evaluation: every slot keeps a SortStats plus its cached sigma,
// so a trial placement costs one Add/Remove on the touched slot and an O(1)
// closed-form extraction — the other k-1 slots contribute their cached
// values. That turns a placement step from O(k^2 * |sort| * |P|) (the old
// Score() re-derived every slot's sigma from its member signatures for every
// trial) into O(k * (|supp| + k log k)). The sigma doubles come from the same
// exact integer counts as the scratch path, so scores — and therefore every
// placement and move decision — are bit-identical to the pre-incremental
// implementation.
SortRefinement GreedyMaxMinSigma(const eval::Evaluator& evaluator, int k,
                                 const GreedyOptions& options) {
  RDFSR_CHECK_GT(k, 0);
  const schema::SignatureIndex& index = evaluator.index();
  const int n = static_cast<int>(index.num_signatures());
  RDFSR_CHECK_GT(n, 0);

  Rng rng(options.seed);
  std::vector<std::vector<int>> best_slots;
  std::vector<double> best_score;

  // Signatures in descending size: placing the big sets first lets the
  // incremental sigma of each slot stabilize early.
  std::vector<int> order(n);
  for (int i = 0; i < n; ++i) order[i] = i;

  // Per-restart state and per-trial scratch, hoisted out of the loops.
  std::vector<eval::SortStats> slot_stats;
  std::vector<double> slot_sigma(static_cast<std::size_t>(k), 1.0);
  std::vector<int> slot_order(static_cast<std::size_t>(k));
  std::vector<std::size_t> overlap(static_cast<std::size_t>(k));
  std::vector<double> trial;
  trial.reserve(static_cast<std::size_t>(k));

  // The sorted-ascending vector of per-(non-empty-)slot sigmas, with slot s
  // overridden to `sigma_s` (every trial changes exactly one slot). Lexical
  // comparison of these vectors == maximize the minimum, then the second
  // minimum, ... `include_s` is false when the trial empties slot s.
  const auto trial_score = [&](const std::vector<std::vector<int>>& slots,
                               int s, double sigma_s, bool include_s,
                               int d = -1, double sigma_d = 1.0) {
    trial.clear();
    for (int t = 0; t < k; ++t) {
      if (t == s) {
        if (include_s) trial.push_back(sigma_s);
      } else if (t == d) {
        trial.push_back(sigma_d);
      } else if (!slots[t].empty()) {
        trial.push_back(slot_sigma[t]);
      }
    }
    std::sort(trial.begin(), trial.end());
  };

  util::PeriodicCheck check(options.cancel, 64);
  bool cancelled = false;
  for (int restart = 0; restart < options.restarts && !cancelled; ++restart) {
    std::vector<int> shuffled = order;
    if (restart > 0) {
      // Keep the first restart deterministic-greedy; later ones perturb.
      for (int i = n - 1; i > 0; --i) {
        std::swap(shuffled[i], shuffled[rng.Below(i + 1)]);
      }
    }

    // Greedy construction: put each signature where the resulting score
    // vector is best; opening a new (empty) slot is allowed while slots
    // remain. Slots are tried in descending support overlap with the
    // candidate (word-packed IntersectCount against the slot's used-property
    // union), so score ties resolve toward the structurally closest sort.
    std::vector<std::vector<int>> slots(k);
    slot_stats.assign(static_cast<std::size_t>(k), evaluator.MakeStats());
    for (std::size_t next = 0; next < shuffled.size(); ++next) {
      const int sig = shuffled[next];
      if (check.ShouldStop()) {
        // Keep the partition valid on cancellation: every unplaced signature
        // lands in the first slot (scored below like any other restart).
        for (std::size_t rest = next; rest < shuffled.size(); ++rest) {
          slots[0].push_back(shuffled[rest]);
          slot_stats[0].Add(shuffled[rest]);
        }
        slot_sigma[0] = evaluator.SigmaFromStats(slot_stats[0]);
        cancelled = true;
        break;
      }
      const schema::PropertySet& sig_props = index.signature(sig).props();
      std::iota(slot_order.begin(), slot_order.end(), 0);
      for (int s = 0; s < k; ++s) {
        overlap[s] = slot_stats[s].used().IntersectCount(sig_props);
      }
      std::stable_sort(slot_order.begin(), slot_order.end(),
                       [&](int a, int b) { return overlap[a] > overlap[b]; });
      int best_slot = -1;
      double best_slot_sigma = 1.0;
      std::vector<double> best_local;
      bool tried_empty = false;
      for (int s : slot_order) {
        if (slots[s].empty()) {
          if (tried_empty) continue;  // empty slots are interchangeable
          tried_empty = true;
        }
        slot_stats[s].Add(sig);
        const double sigma_s = evaluator.SigmaFromStats(slot_stats[s]);
        slot_stats[s].Remove(sig);
        trial_score(slots, s, sigma_s, /*include_s=*/true);
        if (best_slot < 0 || trial > best_local) {
          best_local = trial;
          best_slot = s;
          best_slot_sigma = sigma_s;
        }
      }
      slots[best_slot].push_back(sig);
      slot_stats[best_slot].Add(sig);
      slot_sigma[best_slot] = best_slot_sigma;
      // Audit committed placements only — trial Add/Remove pairs cancel out.
      RDFSR_AUDIT_CHECK_INVARIANTS(slot_stats[best_slot]);
    }

    // Local search: move a single signature to a different slot when that
    // improves the score vector. Only the source and destination slots are
    // re-evaluated per candidate move.
    for (int pass = 0; pass < options.max_passes && !cancelled; ++pass) {
      if (options.cancel.stop_requested()) {
        cancelled = true;
        break;
      }
      bool improved = false;
      trial_score(slots, /*s=*/-1, 1.0, false);
      std::vector<double> current = trial;
      for (int s = 0; s < k; ++s) {
        for (std::size_t pos = 0; pos < slots[s].size(); ++pos) {
          const int sig = slots[s][pos];
          bool tried_empty = false;
          for (int d = 0; d < k; ++d) {
            if (d == s) continue;
            if (slots[d].empty()) {
              if (tried_empty) continue;
              tried_empty = true;
            }
            // Apply the move to the stats, score, then commit or undo.
            slot_stats[s].Remove(sig);
            slot_stats[d].Add(sig);
            const bool s_remains = slots[s].size() > 1;
            const double sigma_s =
                s_remains ? evaluator.SigmaFromStats(slot_stats[s]) : 1.0;
            const double sigma_d = evaluator.SigmaFromStats(slot_stats[d]);
            trial_score(slots, s, sigma_s, s_remains, d, sigma_d);
            if (trial > current) {
              slots[s].erase(slots[s].begin() + pos);
              slots[d].push_back(sig);
              slot_sigma[s] = sigma_s;
              slot_sigma[d] = sigma_d;
              RDFSR_AUDIT_CHECK_INVARIANTS(slot_stats[s]);
              RDFSR_AUDIT_CHECK_INVARIANTS(slot_stats[d]);
              current = trial;
              improved = true;
              // Keep the move; restart scanning this slot.
              break;
            }
            slot_stats[d].Remove(sig);
            slot_stats[s].Add(sig);
          }
          if (improved) break;
        }
        if (improved) break;
      }
      if (!improved) break;
    }

    trial_score(slots, /*s=*/-1, 1.0, false);
    if (best_slots.empty() || trial > best_score) {
      best_score = trial;
      best_slots = slots;
    }
  }

  return ToRefinement(best_slots);
}

std::optional<SortRefinement> GreedyFindRefinement(
    const eval::Evaluator& evaluator, int k, Rational theta,
    const GreedyOptions& options) {
  SortRefinement candidate = GreedyMaxMinSigma(evaluator, k, options);
  if (ValidateRefinement(evaluator, candidate, theta).ok()) return candidate;
  return std::nullopt;
}

namespace {

/// Shared agglomerative engine. Merges the best pair (highest merged sigma,
/// compared exactly; ties by lower part order for determinism) while
/// `may_merge` admits it and more than `min_sorts` sorts remain.
///
/// Incremental evaluation: each part keeps a SortStats, so a candidate
/// merge's sigma is one stats merge plus an O(1) closed-form extraction —
/// never a walk over the parts' member signatures. Pair selection uses a
/// lazy best-pair priority queue over per-part rows (part a's row covers
/// pairs (a, b) with b after a in part order): the heap holds snapshots that
/// are re-validated against part versions on pop, and after a merge only the
/// rows touching the merged part are recomputed — rows whose cached best
/// partner survived just race the merged part as one new candidate. A merge
/// round therefore costs O(n log n + n * |P|/64) instead of the scratch
/// baseline's O(n^2 * |sort| * |P|) (measured in bench/bench_refine.cc).
/// Instances below this many signatures run serial regardless of `threads`:
/// a full row scan is ~n closed-form evaluations, and the fan-out overhead
/// only amortizes once rows are a few hundred entries wide.
constexpr int kParallelAgglomerateCutoff = 256;

SortRefinement Agglomerate(
    const eval::Evaluator& evaluator, std::size_t min_sorts,
    const std::function<bool(const eval::SigmaCounts&)>& may_merge,
    int threads, const util::CancellationToken& cancel) {
  const int n = static_cast<int>(evaluator.index().num_signatures());

  // Worker pool for row recomputation. Only engaged when sigma extraction is
  // a pure closed form (cheap_stats() — the cached evaluator's memo is not
  // thread-safe, but it bypasses the memo entirely in that regime) and the
  // instance is large enough to amortize the dispatch. The pool only ever
  // computes PairEntry values into disjoint slots; every heap mutation stays
  // on this thread, and the total order on pairs makes each row's best
  // unique, so the merge sequence cannot depend on thread scheduling.
  std::unique_ptr<util::ThreadPool> pool;
  if (n >= kParallelAgglomerateCutoff && evaluator.cheap_stats()) {
    const int resolved = util::ThreadPool::ResolveThreads(threads);
    if (resolved > 1) {
      pool = std::make_unique<util::ThreadPool>(resolved - 1);
    }
  }

  // Parts live in fixed slots; a merge folds the later slot into the earlier
  // one, so ascending live slots reproduce the erase-based ordering (and the
  // pair tie-break order) of the scratch implementation exactly.
  struct Part {
    std::vector<int> members;
    eval::SortStats stats;
    std::uint32_t version = 0;
    bool alive = true;
  };
  std::vector<Part> parts(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    parts[i].members = {i};
    parts[i].stats = evaluator.MakeStats();
    parts[i].stats.Add(i);
  }

  struct PairEntry {
    eval::SigmaCounts counts;
    int a = -1, b = -1;  // slots, a < b
    std::uint32_t version_a = 0, version_b = 0;
    bool allowed = false;
  };

  // Mutex-folded reduction target for the split row scan: pool lanes Offer()
  // their chunk-local best during the fan-out, the owning thread Take()s the
  // folded row best after ParallelFor's barrier. The strict total order on
  // pairs makes the folded result independent of arrival order, and keeping
  // the guarded fields behind these two methods lets Clang's thread-safety
  // analysis check the discipline.
  struct RowFold {
    util::Mutex mu;
    PairEntry best RDFSR_GUARDED_BY(mu);
    bool has RDFSR_GUARDED_BY(mu) = false;

    void Offer(const PairEntry& entry,
               const std::function<bool(const PairEntry&, const PairEntry&)>&
                   before) {
      util::MutexLock lock(mu);
      if (!has || before(entry, best)) {
        best = entry;
        has = true;
      }
    }

    bool Take(PairEntry* out) {
      util::MutexLock lock(mu);
      if (has) *out = best;
      return has;
    }
  };

  // Strict "merge first" order: allowed merges before disallowed ones, then
  // the exactly-higher sigma, then the earlier pair — the same preference the
  // scratch scan applied, minus its 1e-15 float slack.
  const auto merges_before = [](const PairEntry& x, const PairEntry& y) {
    if (x.allowed != y.allowed) return x.allowed;
    const int c = eval::CompareSigma(x.counts, y.counts);
    if (c != 0) return c > 0;
    if (x.a != y.a) return x.a < y.a;
    return x.b < y.b;
  };

  const auto eval_pair = [&](int a, int b) {
    PairEntry e;
    e.counts =
        evaluator.CountsFromMergedStats(parts[a].stats, parts[b].stats);
    e.allowed = may_merge(e.counts);
    e.a = a;
    e.b = b;
    e.version_a = parts[a].version;
    e.version_b = parts[b].version;
    return e;
  };

  const auto heap_less = [&merges_before](const PairEntry& x,
                                          const PairEntry& y) {
    return merges_before(y, x);
  };
  std::priority_queue<PairEntry, std::vector<PairEntry>, decltype(heap_less)>
      heap(heap_less);

  // Per-part row cache: the best pair (a, b) over live b > a.
  std::vector<PairEntry> row_best(static_cast<std::size_t>(n));
  std::vector<char> has_row(static_cast<std::size_t>(n), 0);

  // Scratch for the parallel post-merge update, hoisted out of the loop.
  std::vector<int> rescan, probe;
  std::vector<PairEntry> probe_entries;

  // Scans row a (pairs (a, b) over live b > a) into row_best[a] / has_row[a].
  // Touches no shared state besides its own row slots, so disjoint rows are
  // safe to compute concurrently. Does NOT push to the heap.
  const auto compute_row = [&](int a) {
    has_row[a] = 0;
    for (int b = a + 1; b < n; ++b) {
      if (!parts[b].alive) continue;
      PairEntry e = eval_pair(a, b);
      if (!has_row[a] || merges_before(e, row_best[a])) {
        row_best[a] = e;
        has_row[a] = 1;
      }
    }
  };

  // Like compute_row but splits the single row across the pool — used for
  // the merged part's own rebuild, which runs outside any row fan-out (the
  // pool's ParallelFor must not nest). Each chunk reduces to a local best;
  // the total order on pairs makes the mutex-folded result unique.
  // Type-erased once so each Offer() (one per chunk, not per pair) can fold
  // through the same comparator the serial path uses.
  const std::function<bool(const PairEntry&, const PairEntry&)>
      merges_before_fn = merges_before;

  const auto compute_row_split = [&](int a) {
    const std::size_t span =
        a + 1 < n ? static_cast<std::size_t>(n - a - 1) : 0;
    if (pool == nullptr || span < 512) {
      compute_row(a);
      return;
    }
    RowFold fold;
    pool->ParallelFor(span, [&](std::size_t lo, std::size_t hi) {
      PairEntry local;
      bool has_local = false;
      for (std::size_t i = lo; i < hi; ++i) {
        const int b = a + 1 + static_cast<int>(i);
        if (!parts[b].alive) continue;
        PairEntry e = eval_pair(a, b);
        if (!has_local || merges_before(e, local)) {
          local = e;
          has_local = true;
        }
      }
      if (has_local) fold.Offer(local, merges_before_fn);
    });
    has_row[a] = fold.Take(&row_best[a]) ? 1 : 0;
  };

  const auto recompute_row = [&](int a) {
    compute_row(a);
    if (has_row[a]) heap.push(row_best[a]);
  };

  std::size_t live = static_cast<std::size_t>(n);
  const std::size_t stop = std::max<std::size_t>(min_sorts, 1);
  bool cancelled = cancel.stop_requested();
  if (live > stop && !cancelled) {
    if (pool != nullptr) {
      pool->ParallelFor(static_cast<std::size_t>(n),
                        [&](std::size_t lo, std::size_t hi) {
                          for (std::size_t a = lo; a < hi; ++a) {
                            compute_row(static_cast<int>(a));
                          }
                        });
      for (int a = 0; a < n; ++a) {
        if (has_row[a]) heap.push(row_best[a]);
      }
      cancelled = cancel.stop_requested();
    } else {
      for (int a = 0; a < n; ++a) {
        // Per-row granularity: each row is O(n) closed-form evaluations, so
        // this is the natural safe point of the initial build. A cancelled
        // build skips the merge loop — all-singletons is a valid partition.
        if (cancel.stop_requested()) {
          cancelled = true;
          break;
        }
        recompute_row(a);
      }
    }
  }
  while (live > stop && !cancelled) {
    // One merge round per checkpoint: unwinding here leaves a coarser but
    // fully valid partition (parts always cover every signature).
    if (cancel.stop_requested()) break;
    // Pop to the best still-valid snapshot; entries for dead or since-merged
    // parts are discarded here rather than eagerly removed.
    PairEntry best;
    bool found = false;
    while (!heap.empty()) {
      const PairEntry top = heap.top();
      heap.pop();
      if (parts[top.a].alive && parts[top.b].alive &&
          parts[top.a].version == top.version_a &&
          parts[top.b].version == top.version_b) {
        best = top;
        found = true;
        break;
      }
    }
    if (!found) break;
    // Under a threshold regime (min_sorts == 1) only allowed merges happen;
    // under fixed-k (min_sorts == k) every merge is allowed by construction.
    if (!best.allowed) break;

    const int a = best.a;
    const int b = best.b;
    parts[a].members.insert(parts[a].members.end(), parts[b].members.begin(),
                            parts[b].members.end());
    parts[a].stats.MergeWith(parts[b].stats);
    // The merge is the one operation that can cross the sparse/dense
    // representation boundary with bulk state; audit every committed one.
    RDFSR_AUDIT_CHECK_INVARIANTS(parts[a].stats);
    ++parts[a].version;
    parts[b].alive = false;
    --live;
    if (live <= stop) break;

    // Only rows touching the merged part change: rows whose cached best
    // referenced a or b must rescan; earlier rows race the merged part as a
    // single new candidate; a's own row is rebuilt against its new stats.
    if (pool != nullptr) {
      // Classify serially (cheap flag reads), fan the evaluations out —
      // rescans write disjoint row slots, probes write disjoint scratch —
      // then fold results and push on this thread in ascending row order,
      // exactly as the serial loop does.
      rescan.clear();
      probe.clear();
      for (int x = 0; x < n; ++x) {
        if (!parts[x].alive || x == a) continue;
        if (has_row[x] && (row_best[x].b == a || row_best[x].b == b)) {
          rescan.push_back(x);
        } else if (x < a) {
          probe.push_back(x);
        }
      }
      probe_entries.resize(probe.size());
      pool->ParallelFor(
          rescan.size() + probe.size(),
          [&](std::size_t lo, std::size_t hi) {
            for (std::size_t i = lo; i < hi; ++i) {
              if (i < rescan.size()) {
                compute_row(rescan[i]);
              } else {
                const std::size_t j = i - rescan.size();
                probe_entries[j] = eval_pair(probe[j], a);
              }
            }
          });
      std::size_t ri = 0, pi = 0;
      while (ri < rescan.size() || pi < probe.size()) {
        if (pi >= probe.size() ||
            (ri < rescan.size() && rescan[ri] < probe[pi])) {
          const int x = rescan[ri++];
          if (has_row[x]) heap.push(row_best[x]);
        } else {
          const int x = probe[pi];
          const PairEntry& e = probe_entries[pi++];
          if (!has_row[x] || merges_before(e, row_best[x])) {
            row_best[x] = e;
            has_row[x] = 1;
            heap.push(row_best[x]);
          }
        }
      }
      compute_row_split(a);
      if (has_row[a]) heap.push(row_best[a]);
    } else {
      for (int x = 0; x < n; ++x) {
        if (!parts[x].alive || x == a) continue;
        if (has_row[x] && (row_best[x].b == a || row_best[x].b == b)) {
          recompute_row(x);
        } else if (x < a) {
          PairEntry e = eval_pair(x, a);
          if (!has_row[x] || merges_before(e, row_best[x])) {
            row_best[x] = e;
            has_row[x] = 1;
            heap.push(row_best[x]);
          }
        }
      }
      recompute_row(a);
    }

    // Stale snapshots accumulate until popped; rebuilding from the O(n) row
    // cache keeps the heap from growing past O(n) between rounds.
    if (heap.size() > 4 * static_cast<std::size_t>(n) + 64) {
      while (!heap.empty()) heap.pop();
      for (int x = 0; x < n; ++x) {
        if (parts[x].alive && has_row[x]) heap.push(row_best[x]);
      }
    }
  }

  SortRefinement refinement;
  for (auto& part : parts) {
    if (!part.alive) continue;
    std::sort(part.members.begin(), part.members.end());
    refinement.sorts.push_back(std::move(part.members));
  }
  return refinement;
}

}  // namespace

SortRefinement AgglomerativeLowestK(const eval::Evaluator& evaluator,
                                    Rational theta, int threads,
                                    const util::CancellationToken& cancel) {
  return Agglomerate(
      evaluator, 1,
      [&](const eval::SigmaCounts& counts) {
        return SigmaAtLeast(counts, theta);
      },
      threads, cancel);
}

SortRefinement AgglomerativeFixedK(const eval::Evaluator& evaluator, int k,
                                   int threads,
                                   const util::CancellationToken& cancel) {
  RDFSR_CHECK_GT(k, 0);
  return Agglomerate(evaluator, static_cast<std::size_t>(k),
                     [](const eval::SigmaCounts&) { return true; }, threads,
                     cancel);
}

}  // namespace rdfsr::core
