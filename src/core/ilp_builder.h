// The Section 6 reduction: EXISTSSORTREFINEMENT(r) as an integer program.
//
// Variables (per implicit sort i in 1..k):
//   X_{i,mu}  signature mu is placed in sort i          (binary)
//   U_{i,p}   sort i uses property p                    (implied; see below)
//   T_{i,tau} rough assignment tau is consistent in i   (implied; see below)
// Constraints:
//   (1) sum_i X_{i,mu} = 1                          each signature in one sort
//   (2) X_{i,mu} <= U_{i,p}          for p in supp(mu)
//   (3) U_{i,p} <= sum_{mu: p in supp} X_{i,mu}
//   (4) T linking (see below)
//   (5) theta2 * sum_tau cF(tau) T_{i,tau} >= theta1 * sum_tau cT(tau) T_{i,tau}
//   (6) optional symmetry breaking (paper's hash constraints, or precedence)
//
// Optimizations relative to the paper's literal encoding (all switchable for
// the ablation bench, all preserving the feasible set exactly):
//   * tau pruning: tau with count(phi1,tau,M) = 0 cannot contribute to (5) and
//     is never materialized (the paper hints at this: "the value of
//     count(...) is calculated offline").
//   * implied integrality: given integral X, constraints (2)+(3) force each
//     U_{i,p} to exactly 0/1, and the sign-directed linking in (4) gives each
//     T_{i,tau} exactly the freedom of AND(X,U) — so U and T can be declared
//     continuous in [0,1], shrinking the branching space to the k|Lambda|
//     X variables.
//   * sign-directed linking: a tau whose threshold-row weight
//     w = theta2*cF - theta1*cT is positive only needs T <= each linked
//     variable (the row pushes T up); a negative-weight tau only needs
//     T >= sum(linked) - (|linked| - 1) (the row pushes T down). Zero-weight
//     taus are dropped.
//   * X-substitution: when tau touches a single signature and all its
//     properties lie in that signature's support, T == X_{i,mu} and the weight
//     folds directly into the threshold row.
//   * link coverage: a property of tau supported by one of tau's own
//     signatures needs no U link (X of that signature already implies U).

#ifndef RDFSR_CORE_ILP_BUILDER_H_
#define RDFSR_CORE_ILP_BUILDER_H_

#include <vector>

#include "core/refinement.h"
#include "eval/enumerator.h"
#include "ilp/model.h"
#include "rules/ast.h"
#include "schema/signature_index.h"
#include "util/rational.h"

namespace rdfsr::core {

/// Encoding options (defaults = all optimizations on).
struct IlpBuildOptions {
  enum class SymmetryBreaking {
    kNone,
    kHash,        ///< The paper's hash(i) <= hash(i+1) with capped exponents.
    kPrecedence,  ///< Sort i+1 opens only after sort i (default).
  };
  SymmetryBreaking symmetry = SymmetryBreaking::kPrecedence;
  int hash_exponent_cap = 40;     ///< Cap on 2^j (paper Section 6.3).
  bool continuous_aux = true;     ///< U and T as continuous [0,1].
  bool sign_directed_linking = true;
  bool substitute_singleton_taus = true;
};

/// A built encoding plus the decoding map.
struct IlpEncoding {
  ilp::Model model;
  int k = 0;
  int num_signatures = 0;
  std::vector<std::vector<int>> x_var;  ///< x_var[i][mu] -> model variable id.
  long long num_tau_variables = 0;      ///< materialized T vars (diagnostics)
  long long num_tau_substituted = 0;    ///< taus folded into X terms

  /// Reads the X block of a solution into a refinement (empty sorts dropped).
  SortRefinement Decode(const std::vector<double>& x) const;
};

/// Builds the ILP for EXISTSSORTREFINEMENT(rule) on (index, k, theta).
/// `tau_counts` must be EnumerateTauCounts(rule, index) (passed in so callers
/// can reuse it across the theta search).
IlpEncoding BuildRefinementIlp(const schema::SignatureIndex& index,
                               const rules::Rule& rule,
                               const std::vector<eval::TauCount>& tau_counts,
                               int k, Rational theta,
                               const IlpBuildOptions& options = {});

}  // namespace rdfsr::core

#endif  // RDFSR_CORE_ILP_BUILDER_H_
