// The Section 6 reduction: EXISTSSORTREFINEMENT(r) as an integer program.
//
// Variables (per implicit sort i in 1..k):
//   X_{i,mu}  signature mu is placed in sort i          (binary)
//   U_{i,p}   sort i uses property p                    (implied; see below)
//   T_{i,tau} rough assignment tau is consistent in i   (implied; see below)
// Constraints:
//   (1) sum_i X_{i,mu} = 1                          each signature in one sort
//   (2) X_{i,mu} <= U_{i,p}          for p in supp(mu)
//   (3) U_{i,p} <= sum_{mu: p in supp} X_{i,mu}
//   (4) T linking (see below)
//   (5) theta2 * sum_tau cF(tau) T_{i,tau} >= theta1 * sum_tau cT(tau) T_{i,tau}
//   (6) optional symmetry breaking (paper's hash constraints, or precedence)
//
// Optimizations relative to the paper's literal encoding (all switchable for
// the ablation bench, all preserving the feasible set exactly):
//   * tau pruning: tau with count(phi1,tau,M) = 0 cannot contribute to (5) and
//     is never materialized (the paper hints at this: "the value of
//     count(...) is calculated offline").
//   * implied integrality: given integral X, constraints (2)+(3) force each
//     U_{i,p} to exactly 0/1, and the sign-directed linking in (4) gives each
//     T_{i,tau} exactly the freedom of AND(X,U) — so U and T can be declared
//     continuous in [0,1], shrinking the branching space to the k|Lambda|
//     X variables.
//   * sign-directed linking: a tau whose threshold-row weight
//     w = theta2*cF - theta1*cT is positive only needs T <= each linked
//     variable (the row pushes T up); a negative-weight tau only needs
//     T >= sum(linked) - (|linked| - 1) (the row pushes T down). Zero-weight
//     taus drop out of the threshold row.
//   * X-substitution: when tau touches a single signature and all its
//     properties lie in that signature's support, T == X_{i,mu} and the weight
//     folds directly into the threshold row.
//   * link coverage: a property of tau supported by one of tau's own
//     signatures needs no U link (X of that signature already implies U).
//
// Reusable instances. The searches of Section 7 (highest-theta grid scan,
// lowest-k ladder) drive this encoding through many decision instances that
// differ only in theta. Everything except the threshold-row weights is
// theta-independent, so the encoding is split in two:
//   * RefinementIlpInstance builds the full skeleton once per (index, k):
//     X/U/T variables, assignment, support-link, tau-link, and symmetry rows.
//     Both directions of every tau link are materialized; the theta-dependent
//     side selection of sign-directed linking is applied per instance by
//     toggling row bounds (a deactivated side is a vacuous row, dropped by
//     the root presolve).
//   * Reweight(theta) rewrites the k threshold rows' coefficients and the
//     link-row bounds in place through the coefficient-update API of
//     ilp::Model — O(k * |taus|) stores, no allocation proportional to the
//     skeleton.
// BuildRefinementIlp (one-shot) constructs an instance and reweights it once,
// so a per-instance rebuild and a reused instance produce bit-identical
// models by construction (asserted in tests and bench_solver).

#ifndef RDFSR_CORE_ILP_BUILDER_H_
#define RDFSR_CORE_ILP_BUILDER_H_

#include <cstdint>
#include <vector>

#include "core/refinement.h"
#include "eval/enumerator.h"
#include "ilp/model.h"
#include "rules/ast.h"
#include "schema/signature_index.h"
#include "util/rational.h"

namespace rdfsr::core {

/// Encoding options (defaults = all optimizations on).
struct IlpBuildOptions {
  enum class SymmetryBreaking {
    kNone,
    kHash,        ///< The paper's hash(i) <= hash(i+1) with capped exponents.
    kPrecedence,  ///< Sort i+1 opens only after sort i (default).
  };
  SymmetryBreaking symmetry = SymmetryBreaking::kPrecedence;
  int hash_exponent_cap = 40;     ///< Cap on 2^j (paper Section 6.3).
  bool continuous_aux = true;     ///< U and T as continuous [0,1].
  bool sign_directed_linking = true;
  bool substitute_singleton_taus = true;
};

/// Theta-independent analysis of one tau: the distinct signatures it touches,
/// the properties still needing a U link (those not covered by any of its own
/// signatures' supports), and the counts its threshold weight
/// w(theta) = theta2 * favorable - theta1 * total is derived from.
struct TauShape {
  std::vector<int> sigs;          ///< distinct signature ids
  std::vector<int> linked_props;  ///< distinct props needing a U link
  std::int64_t total = 0;         ///< count(phi1, tau, M)
  std::int64_t favorable = 0;     ///< count(phi1 ∧ phi2, tau, M)
};

/// Analyzes every tau once; reusable across k and theta (the searches cache
/// the result per (rule, dataset)).
std::vector<TauShape> AnalyzeTaus(const std::vector<eval::TauCount>& tau_counts,
                                  const schema::SignatureIndex& index);

/// Exact number of constraints RefinementIlpInstance builds for k sorts —
/// theta-independent, so solver row ceilings can be checked without paying
/// for a model build.
std::size_t RefinementIlpRows(const schema::SignatureIndex& index,
                              const std::vector<TauShape>& shapes, int k,
                              const IlpBuildOptions& options = {});

/// Upper bound (over all theta) on the rows still ACTIVE after Reweight:
/// with sign-directed linking each tau keeps one side — max(|linked|, 1)
/// rows — while the other side is vacuous and dropped by the presolve before
/// the dense simplex. This is the count solver row ceilings should gate on;
/// RefinementIlpRows additionally counts the deactivated rows the skeleton
/// carries.
std::size_t RefinementIlpActiveRows(const schema::SignatureIndex& index,
                                    const std::vector<TauShape>& shapes, int k,
                                    const IlpBuildOptions& options = {});

/// A built encoding plus the decoding map.
struct IlpEncoding {
  ilp::Model model;
  int k = 0;
  int num_signatures = 0;
  std::vector<std::vector<int>> x_var;  ///< x_var[i][mu] -> model variable id.
  long long num_tau_variables = 0;      ///< materialized T vars (diagnostics)
  long long num_tau_substituted = 0;    ///< taus folded into X terms

  /// Reads the X block of a solution into a refinement (empty sorts dropped).
  SortRefinement Decode(const std::vector<double>& x) const;
};

/// One reusable encoding for a fixed (index, k, options): the skeleton is
/// built once, Reweight(theta) retargets it to a decision instance in place.
/// The searches keep one instance per k and sweep it through the theta grid /
/// k ladder instead of rebuilding O(k * |P| * n) models per instance.
class RefinementIlpInstance {
 public:
  RefinementIlpInstance(const schema::SignatureIndex& index,
                        std::vector<TauShape> shapes, int k,
                        const IlpBuildOptions& options = {});

  /// Retargets the encoding to threshold `theta`: rewrites the k threshold
  /// rows' coefficients and toggles the theta-dependent link-row bounds.
  /// O(k * |taus|); no skeleton work.
  void Reweight(Rational theta);

  /// The encoding (valid after the first Reweight).
  const IlpEncoding& encoding() const { return enc_; }
  const ilp::Model& model() const { return enc_.model; }

  /// Reads the X block of a solution into a refinement.
  SortRefinement Decode(const std::vector<double>& x) const {
    return enc_.Decode(x);
  }

  /// Moves the encoding out (the one-shot BuildRefinementIlp path).
  IlpEncoding ReleaseEncoding() && { return std::move(enc_); }

  /// Full skeleton/Reweight consistency validation (fatal on violation): the
  /// model's own invariants hold, the decode maps are k x n / k x |taus| and
  /// reference live variables and rows, substitution is consistent across
  /// sorts, every link row carries exactly the bounds Reweight may set, and
  /// threshold rows mention only this instance's X/T variables. O(model);
  /// audit builds run it after every Reweight.
  void CheckInvariants() const;

 private:
  bool Substituted(const TauShape& shape) const;

  IlpEncoding enc_;
  std::vector<TauShape> shapes_;
  IlpBuildOptions options_;
  // Per sort i and tau t: the T variable (-1 when substituted / X-folded).
  std::vector<std::vector<int>> t_var_;
  // Per sort i and tau t: first link-row id; rows [first, first + linked)
  // are the upper links (T <= lv), row first + linked is the lower link
  // (T >= sum - (linked-1)). -1 when substituted.
  std::vector<std::vector<int>> link_row_;
  // Per sort i: the threshold row (5).
  std::vector<int> threshold_row_;
};

/// Builds the ILP for EXISTSSORTREFINEMENT(rule) on (index, k, theta).
/// `tau_counts` must be EnumerateTauCounts(rule, index) (passed in so callers
/// can reuse it across the theta search). One-shot convenience over
/// RefinementIlpInstance + Reweight — produces the identical model.
IlpEncoding BuildRefinementIlp(const schema::SignatureIndex& index,
                               const rules::Rule& rule,
                               const std::vector<eval::TauCount>& tau_counts,
                               int k, Rational theta,
                               const IlpBuildOptions& options = {});

}  // namespace rdfsr::core

#endif  // RDFSR_CORE_ILP_BUILDER_H_
