// Mixed-integer linear program model.
//
// Holds variables with bounds and integrality marks, range constraints
// lo <= a.x <= hi, and an optional linear objective. This is the substrate the
// paper outsources to IBM ILOG CPLEX; we implement the model plus our own
// solvers (ilp/simplex.h, ilp/branch_and_bound.h) since CPLEX is proprietary.

#ifndef RDFSR_ILP_MODEL_H_
#define RDFSR_ILP_MODEL_H_

#include <string>
#include <vector>

#include "util/check.h"

namespace rdfsr::ilp {

/// Effective infinity for unbounded variable/constraint sides.
inline constexpr double kInfinity = 1e30;

/// One variable of the model.
struct Variable {
  std::string name;
  double lower = 0.0;
  double upper = kInfinity;
  bool is_integer = false;
};

/// One term coef * x_var of a linear expression.
struct LinTerm {
  int var = -1;
  double coef = 0.0;
};

/// A range constraint lower <= sum(terms) <= upper.
struct Constraint {
  std::string name;
  std::vector<LinTerm> terms;
  double lower = -kInfinity;
  double upper = kInfinity;
};

/// A mixed-integer linear model. The default objective is zero (pure
/// feasibility), which is how the sort-refinement decision problem is encoded.
class Model {
 public:
  /// Adds a variable; returns its index.
  int AddVariable(std::string name, double lower, double upper,
                  bool is_integer);

  /// Adds a binary (0/1 integer) variable.
  int AddBinary(std::string name) { return AddVariable(std::move(name), 0, 1, true); }

  /// Adds lower <= terms <= upper; returns the constraint index. Terms with
  /// duplicate variables are merged; zero coefficients dropped.
  int AddConstraint(std::string name, std::vector<LinTerm> terms, double lower,
                    double upper);

  /// Replaces the terms and bounds of constraint `r` in place, with the same
  /// merging rules as AddConstraint (duplicates merged, zero coefficients
  /// dropped). The name is kept. This is the coefficient-update entry point
  /// the reusable refinement encoding drives per decision instance: threshold
  /// rows are rewritten for each theta without rebuilding the model.
  void SetConstraintTerms(int r, std::vector<LinTerm> terms, double lower,
                          double upper);

  /// Rewrites only the bounds of constraint `r`. Setting both sides infinite
  /// deactivates the row (the presolve drops such rows as activity-redundant)
  /// — how theta-dependent sign-directed linking rows are toggled per
  /// instance.
  void SetConstraintBounds(int r, double lower, double upper);

  /// Sets the (minimization) objective. Default is the zero objective.
  void SetObjective(std::vector<LinTerm> terms);

  std::size_t num_variables() const { return variables_.size(); }
  std::size_t num_constraints() const { return constraints_.size(); }

  const Variable& variable(int j) const {
    RDFSR_CHECK_GE(j, 0);
    RDFSR_CHECK_LT(static_cast<std::size_t>(j), variables_.size());
    return variables_[j];
  }
  const Constraint& constraint(int r) const {
    RDFSR_CHECK_GE(r, 0);
    RDFSR_CHECK_LT(static_cast<std::size_t>(r), constraints_.size());
    return constraints_[r];
  }
  const std::vector<Variable>& variables() const { return variables_; }
  const std::vector<Constraint>& constraints() const { return constraints_; }
  const std::vector<LinTerm>& objective() const { return objective_; }

  /// Objective value of a point.
  double ObjectiveValue(const std::vector<double>& x) const;

  /// Checks bounds, integrality, and all constraints at `x` within `tol`.
  bool IsFeasible(const std::vector<double>& x, double tol = 1e-6) const;

  /// Human-readable LP-format-ish dump (debugging aid).
  std::string ToString() const;

  /// Full row/bound validation (fatal on violation): every term references a
  /// live variable with a nonzero coefficient, no constraint mentions a
  /// variable twice (the MergeTerms postcondition the in-place
  /// coefficient-update API must preserve), and every variable/constraint/
  /// objective bound pair is a non-empty, finite-or-sentinel range. O(model);
  /// audit builds run it before each solve.
  void CheckInvariants() const;

 private:
  std::vector<Variable> variables_;
  std::vector<Constraint> constraints_;
  std::vector<LinTerm> objective_;
};

}  // namespace rdfsr::ilp

#endif  // RDFSR_ILP_MODEL_H_
