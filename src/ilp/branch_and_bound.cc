#include "ilp/branch_and_bound.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "ilp/presolve.h"
#include "util/timer.h"

namespace rdfsr::ilp {

const char* MipStatusName(MipStatus status) {
  switch (status) {
    case MipStatus::kOptimal:
      return "Optimal";
    case MipStatus::kFeasible:
      return "Feasible";
    case MipStatus::kInfeasible:
      return "Infeasible";
    case MipStatus::kUnknown:
      return "Unknown";
  }
  return "Unknown";
}

const char* MipStopReasonName(MipStopReason reason) {
  switch (reason) {
    case MipStopReason::kNone:
      return "None";
    case MipStopReason::kFirstIncumbent:
      return "FirstIncumbent";
    case MipStopReason::kNodeLimit:
      return "NodeLimit";
    case MipStopReason::kTimeLimit:
      return "TimeLimit";
    case MipStopReason::kLpIterationLimit:
      return "LpIterationLimit";
    case MipStopReason::kCancelled:
      return "Cancelled";
    case MipStopReason::kDeadline:
      return "Deadline";
  }
  return "None";
}

namespace {

constexpr double kOne = 1.0;
/// Work cap for the root probing pass, in row-term evaluations. Keeps the
/// pass a fixed small fraction of a big instance's solve time.
constexpr long long kProbeBudget = 2000000;

class BranchAndBound {
 public:
  BranchAndBound(const Model& model, const MipOptions& options)
      : model_(model), options_(options) {
    const std::size_t n = model.num_variables();
    lb_.resize(n);
    ub_.resize(n);
    for (std::size_t j = 0; j < n; ++j) {
      lb_[j] = model.variable(j).lower;
      ub_[j] = model.variable(j).upper;
    }
    pc_down_.assign(n, 0.0);
    pc_up_.assign(n, 0.0);
    cnt_down_.assign(n, 0);
    cnt_up_.assign(n, 0);
  }

  MipResult Run() {
    bool root_infeasible = false;
    if (options_.root_probing && !ShouldStop()) root_infeasible = !Probe();
    if (!root_infeasible) Dfs(options_.warm_basis, nullptr);
    MipResult result;
    result.nodes = nodes_;
    result.seconds = timer_.Seconds();
    result.lp_iteration_limit_hits = lp_iteration_limit_hits_;
    result.stop_reason = stop_reason_;
    // An LP iteration limit never unwinds the search by itself; report it
    // only when nothing stronger stopped us but the tree is still undecided.
    if (result.stop_reason == MipStopReason::kNone && !exhausted_ &&
        lp_iteration_limit_hits_ > 0) {
      result.stop_reason = MipStopReason::kLpIterationLimit;
    }
    if (have_incumbent_) {
      result.x = incumbent_;
      result.objective = incumbent_obj_;
      result.status = exhausted_ ? MipStatus::kOptimal : MipStatus::kFeasible;
      // stop_at_first_incumbent abandons the rest of the tree by design; the
      // incumbent is still a valid feasible point.
      if (stopped_early_ && options_.stop_at_first_incumbent) {
        result.status = MipStatus::kFeasible;
      }
    } else {
      result.status = exhausted_ ? MipStatus::kInfeasible : MipStatus::kUnknown;
    }
    result.lp_stats = lp_stats_;
    result.root_basis = std::move(root_basis_);
    return result;
  }

 private:
  /// Returns true when the search should unwind completely.
  bool ShouldStop() {
    if (stopped_early_) return true;
    if (options_.cancel.stop_requested()) {
      exhausted_ = false;
      stopped_early_ = true;
      stop_reason_ = options_.cancel.cancelled() ? MipStopReason::kCancelled
                                                 : MipStopReason::kDeadline;
      return true;
    }
    if (nodes_ >= options_.max_nodes) {
      exhausted_ = false;
      stopped_early_ = true;
      stop_reason_ = MipStopReason::kNodeLimit;
      return true;
    }
    if (timer_.Seconds() >= options_.time_limit_seconds) {
      exhausted_ = false;
      stopped_early_ = true;
      stop_reason_ = MipStopReason::kTimeLimit;
      return true;
    }
    return false;
  }

  /// The branch a node was created by, for pseudo-cost bookkeeping.
  struct BranchInfo {
    int var;
    bool up;
    double dist;         ///< Distance from the LP value to the branch bound.
    double parent_obj;   ///< Parent node's LP objective.
    double parent_frac;  ///< Parent node's total fractionality.
  };

  /// Root-fixing pass: propagate the row implications, then probe each
  /// still-free binary at both values; a value whose propagation is
  /// infeasible fixes the variable (adopting the surviving side's propagated
  /// bounds, which hold for every feasible solution). Returns false when the
  /// model is proven infeasible outright.
  bool Probe() {
    if (!PropagateBounds(model_, &lb_, &ub_, 2)) return false;
    long long budget = kProbeBudget;
    const std::size_t n = model_.num_variables();
    for (std::size_t j = 0; j < n && budget > 0; ++j) {
      if (!model_.variable(j).is_integer) continue;
      if (lb_[j] != 0.0 || ub_[j] != kOne) continue;  // only free binaries
      std::vector<double> lb0 = lb_, ub0 = ub_;
      ub0[j] = 0.0;
      const bool feasible0 = PropagateBounds(model_, &lb0, &ub0, 2, &budget);
      std::vector<double> lb1 = lb_, ub1 = ub_;
      lb1[j] = kOne;
      const bool feasible1 = PropagateBounds(model_, &lb1, &ub1, 2, &budget);
      if (!feasible0 && !feasible1) return false;
      if (!feasible0) {
        lb_ = std::move(lb1);
        ub_ = std::move(ub1);
      } else if (!feasible1) {
        lb_ = std::move(lb0);
        ub_ = std::move(ub0);
      }
    }
    return PropagateBounds(model_, &lb_, &ub_, 2);
  }

  /// Per-unit degradation observed by solving a child node's LP: objective
  /// increase when the model optimizes, total-fractionality decrease on
  /// zero-objective decision instances.
  void RecordPseudoCost(const BranchInfo& info, double obj, double frac) {
    const double gain = model_.objective().empty()
                            ? std::max(info.parent_frac - frac, 0.0)
                            : std::max(obj - info.parent_obj, 0.0);
    const double dist = std::max(info.dist, options_.integer_tol);
    if (info.up) {
      pc_up_[info.var] += gain / dist;
      ++cnt_up_[info.var];
    } else {
      pc_down_[info.var] += gain / dist;
      ++cnt_down_[info.var];
    }
  }

  void Dfs(const SimplexBasis* warm, const BranchInfo* pending) {
    if (ShouldStop()) return;
    ++nodes_;

    SimplexOptions lp_options = options_.lp;
    if (options_.warm_start_lps && warm != nullptr && !warm->empty()) {
      lp_options.warm_start = warm;
    }
    const LpResult lp = SolveLp(model_, lp_options, &lb_, &ub_);
    lp_stats_.MergeWith(lp.stats);
    if (nodes_ == 1) root_basis_ = lp.basis;
    if (lp.status == LpStatus::kInfeasible) return;  // prune
    if (lp.status == LpStatus::kIterationLimit) {
      // Cannot trust this subtree either way.
      exhausted_ = false;
      ++lp_iteration_limit_hits_;
      return;
    }
    if (lp.status == LpStatus::kCancelled) {
      // The token tripped mid-LP; the next ShouldStop records the reason and
      // unwinds the whole search.
      exhausted_ = false;
      return;
    }
    if (lp.status == LpStatus::kUnbounded) {
      // A zero-objective LP is never unbounded; with a real objective an
      // unbounded relaxation cannot prune, so we must treat the subtree as
      // undecided unless branching fixes it. Branch on any fractional var;
      // if none, give up on this subtree.
      exhausted_ = false;
      return;
    }

    // Branch-candidate scan: total fractionality feeds the pseudo-cost
    // update; the selected variable depends on the branching rule.
    int branch_var = -1;
    double total_frac = 0.0;
    if (options_.branching == BranchingRule::kMostFractional) {
      double branch_frac = options_.integer_tol;
      for (std::size_t j = 0; j < model_.num_variables(); ++j) {
        if (!model_.variable(j).is_integer) continue;
        const double v = lp.x[j];
        const double frac = std::abs(v - std::round(v));
        total_frac += frac;
        if (frac > branch_frac) {
          branch_frac = frac;
          branch_var = static_cast<int>(j);
        }
      }
    } else {
      // Pseudo-cost product rule; unvisited directions score 1.0, so with no
      // history this reduces exactly to the most-fractional rule (f * (1-f)
      // is monotone in the distance to the nearest integer).
      double best_score = 0.0;
      for (std::size_t j = 0; j < model_.num_variables(); ++j) {
        if (!model_.variable(j).is_integer) continue;
        const double v = lp.x[j];
        const double f = v - std::floor(v);
        const double frac = std::min(f, 1.0 - f);
        total_frac += frac;
        if (frac <= options_.integer_tol) continue;
        const double down = cnt_down_[j] > 0 ? pc_down_[j] / cnt_down_[j] : kOne;
        const double up = cnt_up_[j] > 0 ? pc_up_[j] / cnt_up_[j] : kOne;
        const double score = (down * f) * (up * (1.0 - f));
        if (branch_var < 0 || score > best_score) {
          best_score = score;
          branch_var = static_cast<int>(j);
        }
      }
    }
    if (pending != nullptr) {
      RecordPseudoCost(*pending, lp.objective, total_frac);
    }

    // Bound pruning against the incumbent (minimization): prune when the
    // node bound cannot improve the incumbent by more than the gap.
    if (have_incumbent_ && !model_.objective().empty()) {
      const double gap =
          options_.cutoff_abs + options_.cutoff_rel * std::abs(incumbent_obj_);
      if (lp.objective > incumbent_obj_ - gap) return;
    }

    if (branch_var < 0) {
      // Integral: round and accept as incumbent.
      std::vector<double> x = lp.x;
      for (std::size_t j = 0; j < model_.num_variables(); ++j) {
        if (model_.variable(j).is_integer) x[j] = std::round(x[j]);
      }
      if (!model_.IsFeasible(x, 1e-5)) {
        // Rounding broke a tight constraint; treat the node as undecided
        // rather than derive a wrong incumbent.
        exhausted_ = false;
        return;
      }
      const double obj = model_.ObjectiveValue(x);
      if (!have_incumbent_ || obj < incumbent_obj_) {
        have_incumbent_ = true;
        incumbent_ = std::move(x);
        incumbent_obj_ = obj;
        if (options_.stop_at_first_incumbent) {
          stopped_early_ = true;
          stop_reason_ = MipStopReason::kFirstIncumbent;
        }
      }
      return;
    }

    const double v = lp.x[branch_var];
    const double floor_v = std::floor(v);
    const double ceil_v = floor_v + 1.0;
    const double saved_lb = lb_[branch_var];
    const double saved_ub = ub_[branch_var];

    // Nearest side first (diving): below if frac < 0.5. Children reuse this
    // node's optimal basis as their LP warm start.
    // lint:allow(float-compare: branching-order heuristic, both sides explored)
    const bool down_first = (v - floor_v) < 0.5;
    for (int side = 0; side < 2; ++side) {
      const bool down = (side == 0) == down_first;
      BranchInfo info{branch_var, !down, down ? v - floor_v : ceil_v - v,
                      lp.objective, total_frac};
      if (down) {
        ub_[branch_var] = floor_v;
        if (lb_[branch_var] <= ub_[branch_var]) Dfs(&lp.basis, &info);
        ub_[branch_var] = saved_ub;
      } else {
        lb_[branch_var] = ceil_v;
        if (lb_[branch_var] <= ub_[branch_var]) Dfs(&lp.basis, &info);
        lb_[branch_var] = saved_lb;
      }
      if (stopped_early_) return;
    }
  }

  const Model& model_;
  const MipOptions& options_;
  std::vector<double> lb_, ub_;
  std::vector<double> pc_down_, pc_up_;  // pseudo-cost degradation sums
  std::vector<int> cnt_down_, cnt_up_;   // observations per direction
  LpEngineStats lp_stats_;
  SimplexBasis root_basis_;
  WallTimer timer_;

  long long nodes_ = 0;
  long long lp_iteration_limit_hits_ = 0;
  MipStopReason stop_reason_ = MipStopReason::kNone;
  bool exhausted_ = true;
  bool stopped_early_ = false;
  bool have_incumbent_ = false;
  std::vector<double> incumbent_;
  double incumbent_obj_ = std::numeric_limits<double>::infinity();
};

}  // namespace

MipResult SolveMip(const Model& model, const MipOptions& options) {
  // Solve entry is the core -> ilp layer boundary: audit builds re-validate
  // the (possibly Reweight-rewritten) model before branching on it.
  RDFSR_AUDIT_CHECK_INVARIANTS(model);
  // Forward the node-level token into the simplex loops so a trip cuts a
  // long LP solve, not just the next node boundary.
  MipOptions opts = options;
  if (opts.cancel.can_trip() && !opts.lp.cancel.can_trip()) {
    opts.lp.cancel = opts.cancel;
  }
  if (!opts.use_presolve) {
    BranchAndBound solver(model, opts);
    return solver.Run();
  }
  const PresolveResult pre = Presolve(model);
  if (pre.proven_infeasible) {
    MipResult result;
    result.status = MipStatus::kInfeasible;
    return result;
  }
  BranchAndBound solver(pre.reduced, opts);
  MipResult result = solver.Run();
  if (!result.x.empty() || pre.reduced.num_variables() == 0) {
    if (result.status == MipStatus::kOptimal ||
        result.status == MipStatus::kFeasible) {
      result.x = pre.RestoreSolution(result.x);
      result.objective += pre.objective_offset;
    }
  }
  return result;
}

}  // namespace rdfsr::ilp
