#include "ilp/branch_and_bound.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "ilp/presolve.h"
#include "util/timer.h"

namespace rdfsr::ilp {

const char* MipStatusName(MipStatus status) {
  switch (status) {
    case MipStatus::kOptimal:
      return "Optimal";
    case MipStatus::kFeasible:
      return "Feasible";
    case MipStatus::kInfeasible:
      return "Infeasible";
    case MipStatus::kUnknown:
      return "Unknown";
  }
  return "Unknown";
}

const char* MipStopReasonName(MipStopReason reason) {
  switch (reason) {
    case MipStopReason::kNone:
      return "None";
    case MipStopReason::kFirstIncumbent:
      return "FirstIncumbent";
    case MipStopReason::kNodeLimit:
      return "NodeLimit";
    case MipStopReason::kTimeLimit:
      return "TimeLimit";
    case MipStopReason::kLpIterationLimit:
      return "LpIterationLimit";
    case MipStopReason::kCancelled:
      return "Cancelled";
    case MipStopReason::kDeadline:
      return "Deadline";
  }
  return "None";
}

namespace {

class BranchAndBound {
 public:
  BranchAndBound(const Model& model, const MipOptions& options)
      : model_(model), options_(options) {
    lb_.resize(model.num_variables());
    ub_.resize(model.num_variables());
    for (std::size_t j = 0; j < model.num_variables(); ++j) {
      lb_[j] = model.variable(j).lower;
      ub_[j] = model.variable(j).upper;
    }
  }

  MipResult Run() {
    Dfs();
    MipResult result;
    result.nodes = nodes_;
    result.seconds = timer_.Seconds();
    result.lp_iteration_limit_hits = lp_iteration_limit_hits_;
    result.stop_reason = stop_reason_;
    // An LP iteration limit never unwinds the search by itself; report it
    // only when nothing stronger stopped us but the tree is still undecided.
    if (result.stop_reason == MipStopReason::kNone && !exhausted_ &&
        lp_iteration_limit_hits_ > 0) {
      result.stop_reason = MipStopReason::kLpIterationLimit;
    }
    if (have_incumbent_) {
      result.x = incumbent_;
      result.objective = incumbent_obj_;
      result.status = exhausted_ ? MipStatus::kOptimal : MipStatus::kFeasible;
      // stop_at_first_incumbent abandons the rest of the tree by design; the
      // incumbent is still a valid feasible point.
      if (stopped_early_ && options_.stop_at_first_incumbent) {
        result.status = MipStatus::kFeasible;
      }
    } else {
      result.status = exhausted_ ? MipStatus::kInfeasible : MipStatus::kUnknown;
    }
    return result;
  }

 private:
  /// Returns true when the search should unwind completely.
  bool ShouldStop() {
    if (stopped_early_) return true;
    if (options_.cancel.stop_requested()) {
      exhausted_ = false;
      stopped_early_ = true;
      stop_reason_ = options_.cancel.cancelled() ? MipStopReason::kCancelled
                                                 : MipStopReason::kDeadline;
      return true;
    }
    if (nodes_ >= options_.max_nodes) {
      exhausted_ = false;
      stopped_early_ = true;
      stop_reason_ = MipStopReason::kNodeLimit;
      return true;
    }
    if (timer_.Seconds() >= options_.time_limit_seconds) {
      exhausted_ = false;
      stopped_early_ = true;
      stop_reason_ = MipStopReason::kTimeLimit;
      return true;
    }
    return false;
  }

  void Dfs() {
    if (ShouldStop()) return;
    ++nodes_;

    const LpResult lp = SolveLp(model_, options_.lp, &lb_, &ub_);
    if (lp.status == LpStatus::kInfeasible) return;  // prune
    if (lp.status == LpStatus::kIterationLimit) {
      // Cannot trust this subtree either way.
      exhausted_ = false;
      ++lp_iteration_limit_hits_;
      return;
    }
    if (lp.status == LpStatus::kCancelled) {
      // The token tripped mid-LP; the next ShouldStop records the reason and
      // unwinds the whole search.
      exhausted_ = false;
      return;
    }
    if (lp.status == LpStatus::kUnbounded) {
      // A zero-objective LP is never unbounded; with a real objective an
      // unbounded relaxation cannot prune, so we must treat the subtree as
      // undecided unless branching fixes it. Branch on any fractional var;
      // if none, give up on this subtree.
      exhausted_ = false;
      return;
    }

    // Bound pruning against the incumbent (minimization).
    if (have_incumbent_ && !model_.objective().empty() &&
        lp.objective > incumbent_obj_ - 1e-9) {
      return;
    }

    // Find the most fractional integer variable.
    int branch_var = -1;
    double branch_frac = options_.integer_tol;
    for (std::size_t j = 0; j < model_.num_variables(); ++j) {
      if (!model_.variable(j).is_integer) continue;
      const double v = lp.x[j];
      const double frac = std::abs(v - std::round(v));
      if (frac > branch_frac) {
        branch_frac = frac;
        branch_var = static_cast<int>(j);
      }
    }

    if (branch_var < 0) {
      // Integral: round and accept as incumbent.
      std::vector<double> x = lp.x;
      for (std::size_t j = 0; j < model_.num_variables(); ++j) {
        if (model_.variable(j).is_integer) x[j] = std::round(x[j]);
      }
      if (!model_.IsFeasible(x, 1e-5)) {
        // Rounding broke a tight constraint; treat the node as undecided
        // rather than derive a wrong incumbent.
        exhausted_ = false;
        return;
      }
      const double obj = model_.ObjectiveValue(x);
      if (!have_incumbent_ || obj < incumbent_obj_) {
        have_incumbent_ = true;
        incumbent_ = std::move(x);
        incumbent_obj_ = obj;
        if (options_.stop_at_first_incumbent) {
          stopped_early_ = true;
          stop_reason_ = MipStopReason::kFirstIncumbent;
        }
      }
      return;
    }

    const double v = lp.x[branch_var];
    const double floor_v = std::floor(v);
    const double ceil_v = floor_v + 1.0;
    const double saved_lb = lb_[branch_var];
    const double saved_ub = ub_[branch_var];

    // Nearest side first (diving): below if frac < 0.5.
    // lint:allow(float-compare: branching-order heuristic, both sides explored)
    const bool down_first = (v - floor_v) < 0.5;
    for (int side = 0; side < 2; ++side) {
      const bool down = (side == 0) == down_first;
      if (down) {
        ub_[branch_var] = floor_v;
        if (lb_[branch_var] <= ub_[branch_var]) Dfs();
        ub_[branch_var] = saved_ub;
      } else {
        lb_[branch_var] = ceil_v;
        if (lb_[branch_var] <= ub_[branch_var]) Dfs();
        lb_[branch_var] = saved_lb;
      }
      if (stopped_early_) return;
    }
  }

  const Model& model_;
  const MipOptions& options_;
  std::vector<double> lb_, ub_;
  WallTimer timer_;

  long long nodes_ = 0;
  long long lp_iteration_limit_hits_ = 0;
  MipStopReason stop_reason_ = MipStopReason::kNone;
  bool exhausted_ = true;
  bool stopped_early_ = false;
  bool have_incumbent_ = false;
  std::vector<double> incumbent_;
  double incumbent_obj_ = std::numeric_limits<double>::infinity();
};

}  // namespace

MipResult SolveMip(const Model& model, const MipOptions& options) {
  // Solve entry is the core -> ilp layer boundary: audit builds re-validate
  // the (possibly Reweight-rewritten) model before branching on it.
  RDFSR_AUDIT_CHECK_INVARIANTS(model);
  // Forward the node-level token into the simplex loops so a trip cuts a
  // long LP solve, not just the next node boundary.
  MipOptions opts = options;
  if (opts.cancel.can_trip() && !opts.lp.cancel.can_trip()) {
    opts.lp.cancel = opts.cancel;
  }
  if (!opts.use_presolve) {
    BranchAndBound solver(model, opts);
    return solver.Run();
  }
  const PresolveResult pre = Presolve(model);
  if (pre.proven_infeasible) {
    MipResult result;
    result.status = MipStatus::kInfeasible;
    return result;
  }
  BranchAndBound solver(pre.reduced, opts);
  MipResult result = solver.Run();
  if (!result.x.empty() || pre.reduced.num_variables() == 0) {
    if (result.status == MipStatus::kOptimal ||
        result.status == MipStatus::kFeasible) {
      result.x = pre.RestoreSolution(result.x);
      result.objective += pre.objective_offset;
    }
  }
  return result;
}

}  // namespace rdfsr::ilp
