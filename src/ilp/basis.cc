#include "ilp/basis.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace rdfsr::ilp {
namespace {

/// Pivot magnitudes at or below this are treated as structural zeros: the
/// column is declared dependent and repaired.
constexpr double kSingularTol = 1e-10;

/// Threshold partial pivoting: rows within this factor of the column's max
/// are numerically acceptable, and among them the sparsest row (smallest
/// static count) wins — trading a bounded amount of growth for less fill.
constexpr double kRelPivotTol = 0.1;

/// Smallest eta / replacement pivot the product-form update accepts; below
/// this Update() reports failure and the caller refactorizes.
constexpr double kUpdatePivotTol = 1e-9;

struct Entry {
  int idx;
  double val;
};

// ---------------------------------------------------------------------------
// Sparse LU (left-looking Gilbert–Peierls style elimination).
// ---------------------------------------------------------------------------

class LuFactorization final : public BasisRep {
 public:
  explicit LuFactorization(int m) : m_(m) {}

  void Factorize(const SparseColumns& cols, int n_struct,
                 std::vector<int>* basic, std::vector<int>* ejected) override;
  void Ftran(std::vector<double>* v) const override;
  void FtranColumn(const std::vector<std::pair<int, double>>& column,
                   std::vector<double>* w) const override;
  void Btran(std::vector<double>* v) const override;
  bool Update(int pos, const std::vector<double>& w) override;
  int eta_length() const override { return static_cast<int>(etas_.size()); }

 private:
  // Eliminates one basis column (basis position `p`). Returns false when the
  // column is dependent on the already-pivoted set (caller repairs it).
  bool FactorColumn(const std::vector<std::pair<int, double>>& col, int p,
                    const std::vector<int>& row_count, int* done,
                    std::vector<double>* work, std::vector<int>* touched);

  int m_;
  // Factor storage, indexed by elimination order k:
  //   col_order_[k]  basis position eliminated k-th       (k -> position)
  //   pivot_row_[k]  matrix row chosen as pivot           (k -> row)
  //   row_pos_[r]    inverse of pivot_row_                (row -> k)
  //   l_cols_[k]     L multipliers (matrix row, l)        (unit diagonal)
  //   u_cols_[k]     U off-diagonals (position k' < k, value)
  //   u_diag_[k]     U diagonal
  std::vector<int> col_order_, pivot_row_, row_pos_;
  std::vector<std::vector<Entry>> l_cols_, u_cols_;
  std::vector<double> u_diag_;

  // Product-form updates since the last factorization, oldest first. `pos`
  // and `others` indices live in basis-position space.
  struct Eta {
    int pos;
    double pivot;
    std::vector<Entry> others;
  };
  std::vector<Eta> etas_;

  mutable std::vector<double> scratch_;
};

void LuFactorization::Factorize(const SparseColumns& cols, int n_struct,
                                std::vector<int>* basic,
                                std::vector<int>* ejected) {
  etas_.clear();
  l_cols_.assign(m_, {});
  u_cols_.assign(m_, {});
  u_diag_.assign(m_, 0.0);
  col_order_.assign(m_, -1);
  pivot_row_.assign(m_, -1);
  row_pos_.assign(m_, -1);

  // Static row counts over the basis columns: the Markowitz-style tie-break.
  std::vector<int> row_count(m_, 0);
  for (int p = 0; p < m_; ++p) {
    for (const auto& [row, coef] : cols[(*basic)[p]]) {
      (void)coef;
      ++row_count[row];
    }
  }

  // Eliminate sparsest columns first; stable sort keeps ties deterministic.
  std::vector<int> order(m_);
  for (int p = 0; p < m_; ++p) order[p] = p;
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return cols[(*basic)[a]].size() < cols[(*basic)[b]].size();
  });

  std::vector<double> work(m_, 0.0);
  std::vector<int> touched;
  touched.reserve(m_);
  std::vector<int> deferred;
  int done = 0;
  for (int p : order) {
    if (!FactorColumn(cols[(*basic)[p]], p, row_count, &done, &work,
                      &touched)) {
      deferred.push_back(p);
    }
  }

  if (!deferred.empty()) {
    // Repair: dependent columns are swapped for the slacks of rows the
    // elimination never pivoted. A slack column -e_r is untouched by the
    // L-pass (it is zero on every pivot row), so it pivots trivially at r.
    std::sort(deferred.begin(), deferred.end());
    std::vector<int> free_rows;
    for (int r = 0; r < m_; ++r) {
      if (row_pos_[r] < 0) free_rows.push_back(r);
    }
    std::size_t next = 0;
    for (int p : deferred) {
      const int r = free_rows[next++];
      ejected->push_back((*basic)[p]);
      (*basic)[p] = n_struct + r;
      const int k = done++;
      col_order_[k] = p;
      pivot_row_[k] = r;
      row_pos_[r] = k;
      u_diag_[k] = -1.0;
    }
  }
}

bool LuFactorization::FactorColumn(
    const std::vector<std::pair<int, double>>& col, int p,
    const std::vector<int>& row_count, int* done, std::vector<double>* work_io,
    std::vector<int>* touched_io) {
  std::vector<double>& work = *work_io;
  std::vector<int>& touched = *touched_io;
  touched.clear();
  for (const auto& [row, coef] : col) {
    if (work[row] == 0.0) touched.push_back(row);
    work[row] += coef;
  }

  // Apply the already-computed L columns in elimination order; each op can
  // spread the column into new rows, so the scan walks all finished columns.
  const int finished = *done;
  for (int k = 0; k < finished; ++k) {
    const double val = work[pivot_row_[k]];
    if (val == 0.0) continue;
    for (const Entry& e : l_cols_[k]) {
      if (work[e.idx] == 0.0) touched.push_back(e.idx);
      work[e.idx] -= e.val * val;
    }
  }

  // Pivot choice among unpivoted rows: numerically acceptable (threshold
  // partial pivoting), then sparsest row, then largest magnitude, then
  // smallest row index for determinism.
  double maxabs = 0.0;
  for (int i : touched) {
    if (row_pos_[i] >= 0) continue;
    const double a = std::fabs(work[i]);
    if (a > maxabs) maxabs = a;
  }
  if (maxabs <= kSingularTol) {
    for (int i : touched) work[i] = 0.0;
    return false;
  }
  const double accept = std::max(kSingularTol, kRelPivotTol * maxabs);
  int pivot = -1;
  int best_count = std::numeric_limits<int>::max();
  double best_abs = 0.0;
  for (int i : touched) {
    if (row_pos_[i] >= 0) continue;
    const double a = std::fabs(work[i]);
    if (a < accept) continue;
    const bool better =
        pivot < 0 || row_count[i] < best_count ||
        (row_count[i] == best_count &&
         (a > best_abs || (a == best_abs && i < pivot)));
    if (better) {
      pivot = i;
      best_count = row_count[i];
      best_abs = a;
    }
  }

  const int k = (*done)++;
  col_order_[k] = p;
  pivot_row_[k] = pivot;
  row_pos_[pivot] = k;
  const double diag = work[pivot];
  u_diag_[k] = diag;
  work[pivot] = 0.0;
  for (int i : touched) {
    const double v = work[i];
    work[i] = 0.0;  // duplicates in `touched` read 0.0 and are skipped
    if (v == 0.0) continue;
    if (row_pos_[i] >= 0) {
      u_cols_[k].push_back({row_pos_[i], v});
    } else {
      l_cols_[k].push_back({i, v / diag});
    }
  }
  return true;
}

void LuFactorization::Ftran(std::vector<double>* v) const {
  std::vector<double>& x = *v;
  // L pass in elimination order, in row space.
  for (int k = 0; k < m_; ++k) {
    const double val = x[pivot_row_[k]];
    if (val == 0.0) continue;
    for (const Entry& e : l_cols_[k]) x[e.idx] -= e.val * val;
  }
  // Gather to elimination order and back-substitute through U.
  std::vector<double>& z = scratch_;
  z.resize(m_);
  for (int k = 0; k < m_; ++k) z[k] = x[pivot_row_[k]];
  for (int k = m_ - 1; k >= 0; --k) {
    const double xk = z[k] / u_diag_[k];
    z[k] = xk;
    if (xk == 0.0) continue;
    for (const Entry& e : u_cols_[k]) z[e.idx] -= e.val * xk;
  }
  // Scatter to basis-position space, then sweep the eta file oldest-first:
  // B_new = B_old * E, so B_new^-1 applies E^-1 after the base solve.
  for (int k = 0; k < m_; ++k) x[col_order_[k]] = z[k];
  for (const Eta& eta : etas_) {
    const double piv = x[eta.pos] / eta.pivot;
    x[eta.pos] = piv;
    if (piv == 0.0) continue;
    for (const Entry& e : eta.others) x[e.idx] -= e.val * piv;
  }
}

void LuFactorization::FtranColumn(
    const std::vector<std::pair<int, double>>& column,
    std::vector<double>* w) const {
  w->assign(m_, 0.0);
  for (const auto& [row, coef] : column) (*w)[row] += coef;
  Ftran(w);
}

void LuFactorization::Btran(std::vector<double>* v) const {
  std::vector<double>& y = *v;
  // Eta file newest-first: B_new^-T applies E^-T before the base solve.
  for (auto it = etas_.rbegin(); it != etas_.rend(); ++it) {
    double acc = y[it->pos];
    for (const Entry& e : it->others) acc -= e.val * y[e.idx];
    y[it->pos] = acc / it->pivot;
  }
  // Gather to elimination order, solve U^T forward.
  std::vector<double>& z = scratch_;
  z.resize(m_);
  for (int k = 0; k < m_; ++k) z[k] = y[col_order_[k]];
  for (int k = 0; k < m_; ++k) {
    double acc = z[k];
    for (const Entry& e : u_cols_[k]) acc -= e.val * z[e.idx];
    z[k] = acc / u_diag_[k];
  }
  // Scatter to row space, then apply the transposed L ops in reverse order:
  // each op adjusts only its own pivot row from rows eliminated later.
  for (int k = 0; k < m_; ++k) y[pivot_row_[k]] = z[k];
  for (int k = m_ - 1; k >= 0; --k) {
    double acc = y[pivot_row_[k]];
    for (const Entry& e : l_cols_[k]) acc -= e.val * y[e.idx];
    y[pivot_row_[k]] = acc;
  }
}

bool LuFactorization::Update(int pos, const std::vector<double>& w) {
  const double piv = w[pos];
  if (std::fabs(piv) < kUpdatePivotTol) return false;
  Eta eta;
  eta.pos = pos;
  eta.pivot = piv;
  for (int i = 0; i < m_; ++i) {
    if (i == pos) continue;
    if (w[i] != 0.0) eta.others.push_back({i, w[i]});
  }
  etas_.push_back(std::move(eta));
  return true;
}

// ---------------------------------------------------------------------------
// Dense inverse: the pre-sparse baseline. Factorization (including warm-start
// repair) delegates to the LU and densifies its inverse; per-iteration ops
// are the original O(m^2) row-operation machinery.
// ---------------------------------------------------------------------------

class DenseInverse final : public BasisRep {
 public:
  explicit DenseInverse(int m) : m_(m), lu_(m) {}

  void Factorize(const SparseColumns& cols, int n_struct,
                 std::vector<int>* basic, std::vector<int>* ejected) override {
    lu_.Factorize(cols, n_struct, basic, ejected);
    binv_.assign(static_cast<std::size_t>(m_) * m_, 0.0);
    std::vector<double> col(m_);
    for (int i = 0; i < m_; ++i) {
      col.assign(m_, 0.0);
      col[i] = 1.0;
      lu_.Ftran(&col);  // column i of B^-1
      for (int r = 0; r < m_; ++r) {
        binv_[static_cast<std::size_t>(r) * m_ + i] = col[r];
      }
    }
  }

  void Ftran(std::vector<double>* v) const override {
    std::vector<double>& out = scratch_;
    out.assign(m_, 0.0);
    for (int r = 0; r < m_; ++r) {
      const double* row = &binv_[static_cast<std::size_t>(r) * m_];
      double acc = 0.0;
      for (int k = 0; k < m_; ++k) acc += row[k] * (*v)[k];
      out[r] = acc;
    }
    v->swap(out);
  }

  void FtranColumn(const std::vector<std::pair<int, double>>& column,
                   std::vector<double>* w) const override {
    // Exploits the column's sparsity: O(nnz * m) instead of O(m^2).
    w->assign(m_, 0.0);
    for (const auto& [row, coef] : column) {
      for (int r = 0; r < m_; ++r) {
        (*w)[r] += binv_[static_cast<std::size_t>(r) * m_ + row] * coef;
      }
    }
  }

  void Btran(std::vector<double>* v) const override {
    std::vector<double>& out = scratch_;
    out.assign(m_, 0.0);
    for (int r = 0; r < m_; ++r) {
      const double cr = (*v)[r];
      if (cr == 0.0) continue;
      const double* row = &binv_[static_cast<std::size_t>(r) * m_];
      for (int k = 0; k < m_; ++k) out[k] += row[k] * cr;
    }
    v->swap(out);
  }

  bool Update(int pos, const std::vector<double>& w) override {
    const double piv = w[pos];
    if (std::fabs(piv) < kUpdatePivotTol) return false;
    double* prow = &binv_[static_cast<std::size_t>(pos) * m_];
    const double inv = 1.0 / piv;
    for (int k = 0; k < m_; ++k) prow[k] *= inv;
    for (int i = 0; i < m_; ++i) {
      if (i == pos) continue;
      const double f = w[i];
      if (f == 0.0) continue;
      double* row = &binv_[static_cast<std::size_t>(i) * m_];
      for (int k = 0; k < m_; ++k) row[k] -= f * prow[k];
    }
    return true;
  }

 private:
  int m_;
  LuFactorization lu_;
  std::vector<double> binv_;  // row-major: binv_[pos][row]
  mutable std::vector<double> scratch_;
};

}  // namespace

std::unique_ptr<BasisRep> MakeLuFactorization(int m) {
  return std::make_unique<LuFactorization>(m);
}

std::unique_ptr<BasisRep> MakeDenseInverse(int m) {
  return std::make_unique<DenseInverse>(m);
}

}  // namespace rdfsr::ilp
