#include "ilp/simplex.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace rdfsr::ilp {

const char* LpStatusName(LpStatus status) {
  switch (status) {
    case LpStatus::kOptimal:
      return "Optimal";
    case LpStatus::kInfeasible:
      return "Infeasible";
    case LpStatus::kUnbounded:
      return "Unbounded";
    case LpStatus::kIterationLimit:
      return "IterationLimit";
    case LpStatus::kCancelled:
      return "Cancelled";
  }
  return "Unknown";
}

namespace {

constexpr double kPivotEps = 1e-9;

/// Internal solver state for one LP solve.
class Simplex {
 public:
  Simplex(const Model& model, const SimplexOptions& options,
          const std::vector<double>* lower, const std::vector<double>* upper)
      : options_(options),
        feas_tol_(std::max(10 * options.tol, 1e-6)),
        n_struct_(static_cast<int>(model.num_variables())),
        m_(static_cast<int>(model.num_constraints())),
        n_(n_struct_ + m_),
        segment_(std::max(64, n_ / 8)) {
    lb_.resize(n_);
    ub_.resize(n_);
    cost_.assign(n_, 0.0);
    cols_.resize(n_);
    for (int j = 0; j < n_struct_; ++j) {
      lb_[j] = lower != nullptr ? (*lower)[j] : model.variable(j).lower;
      ub_[j] = upper != nullptr ? (*upper)[j] : model.variable(j).upper;
    }
    for (int r = 0; r < m_; ++r) {
      const Constraint& c = model.constraint(r);
      for (const LinTerm& t : c.terms) {
        cols_[t.var].push_back({r, t.coef});
      }
      const int slack = n_struct_ + r;
      cols_[slack].push_back({r, -1.0});
      lb_[slack] = c.lower;
      ub_[slack] = c.upper;
    }
    for (const LinTerm& t : model.objective()) cost_[t.var] = t.coef;

    basis_ = options_.basis_kind == BasisKind::kDenseInverse
                 ? MakeDenseInverse(m_)
                 : MakeLuFactorization(m_);

    warm_started_ = AdoptWarmBasis(options_.warm_start);
    if (!warm_started_) {
      // Cold start: slack basis (B = -I), structurals parked at a bound.
      basic_.resize(m_);
      state_.assign(n_, BasisStatus::kAtLower);
      for (int r = 0; r < m_; ++r) {
        basic_[r] = n_struct_ + r;
        state_[n_struct_ + r] = BasisStatus::kBasic;
      }
      for (int j = 0; j < n_struct_; ++j) SetNonbasicAtBound(j);
    } else {
      ++stats_.basis_reuses;
    }
    x_.assign(n_, 0.0);
    for (int j = 0; j < n_; ++j) {
      if (state_[j] == BasisStatus::kBasic) continue;
      x_[j] = state_[j] == BasisStatus::kAtLower   ? lb_[j]
              : state_[j] == BasisStatus::kAtUpper ? ub_[j]
                                                   : 0.0;
    }
    Factorize();  // also repairs a stale warm basis and recomputes basics
  }

  LpResult Run() {
    LpResult result;
    util::PeriodicCheck check(options_.cancel, 128);
    const int bland_after = 2000 + 20 * (m_ + n_);
    for (int iter = 0; iter < options_.max_iterations; ++iter) {
      if (check.ShouldStop()) {
        result.status = LpStatus::kCancelled;
        result.iterations = iter;
        Extract(&result);
        return result;
      }
      if (iter > 0 && iter % options_.refresh_interval == 0) RecomputeBasics();
      const bool phase1 = ComputePhase1Costs();
      const std::vector<double>& cost = phase1 ? phase1_cost_ : cost_;

      // Pricing: y = B^-T c_B, then reduced costs for nonbasic columns.
      ComputeDuals(cost);
      const bool bland = iter >= bland_after;
      int direction = 0;
      const int entering = SelectEntering(cost, bland, &direction);

      if (entering < 0) {
        RecomputeBasics();
        if (TotalInfeasibility() > feas_tol_) {
          result.status = LpStatus::kInfeasible;
        } else if (phase1) {
          // Violations were within tolerance after the refresh; re-price with
          // the true objective (ComputePhase1Costs will come back false).
          continue;
        } else {
          result.status = LpStatus::kOptimal;
        }
        result.iterations = iter;
        Extract(&result);
        return result;
      }

      // Column of the entering variable in the current basis: w = B^-1 A_j.
      basis_->FtranColumn(cols_[entering], &w_);

      // Ratio test (composite rule: infeasible basics block only at the bound
      // they are approaching from outside).
      double t_limit = std::numeric_limits<double>::infinity();
      int blocking_row = -1;
      double blocking_target = 0.0;
      // Bound flip of the entering variable itself.
      if (lb_[entering] > -kInfinity && ub_[entering] < kInfinity) {
        t_limit = ub_[entering] - lb_[entering];
      }
      for (int r = 0; r < m_; ++r) {
        const double wr = w_[r];
        if (std::abs(wr) < kPivotEps) continue;
        const int i = basic_[r];
        const double rate = -direction * wr;
        double target;
        if (rate > 0) {
          if (x_[i] < lb_[i] - feas_tol_) {
            target = lb_[i];  // infeasible below, improving: block at lower
          } else if (x_[i] > ub_[i] + feas_tol_) {
            continue;  // infeasible above, worsening: no block (the phase-1
                       // objective prices the worsening; composite rule)
          } else if (ub_[i] < kInfinity) {
            target = ub_[i];
          } else {
            continue;
          }
        } else {
          if (x_[i] > ub_[i] + feas_tol_) {
            target = ub_[i];  // infeasible above, improving: block at upper
          } else if (x_[i] < lb_[i] - feas_tol_) {
            continue;  // infeasible below, worsening: no block
          } else if (lb_[i] > -kInfinity) {
            target = lb_[i];
          } else {
            continue;
          }
        }
        double t = (target - x_[i]) / rate;
        if (t < 0) t = 0;  // degenerate step
        // Prefer the smallest ratio; break ties toward larger |pivot| for
        // numerical stability, then smaller row index for determinism.
        if (t < t_limit - 1e-12 ||
            (blocking_row >= 0 && t < t_limit + 1e-12 &&
             std::abs(wr) > std::abs(w_[blocking_row]) + 1e-12)) {
          t_limit = t;
          blocking_row = r;
          blocking_target = target;
        }
      }

      if (std::isinf(t_limit)) {
        result.status = LpStatus::kUnbounded;
        result.iterations = iter;
        Extract(&result);
        return result;
      }

      // Apply the step.
      for (int r = 0; r < m_; ++r) {
        if (w_[r] != 0.0) x_[basic_[r]] -= direction * t_limit * w_[r];
      }
      x_[entering] += direction * t_limit;

      if (blocking_row < 0) {
        // Bound flip: entering stays nonbasic at its other bound.
        state_[entering] =
            direction > 0 ? BasisStatus::kAtUpper : BasisStatus::kAtLower;
        x_[entering] = direction > 0 ? ub_[entering] : lb_[entering];
        continue;
      }

      // Pivot: entering becomes basic in blocking_row.
      const int leaving = basic_[blocking_row];
      x_[leaving] = blocking_target;
      state_[leaving] = blocking_target == ub_[leaving]
                            ? BasisStatus::kAtUpper
                            : BasisStatus::kAtLower;
      basic_[blocking_row] = entering;
      state_[entering] = BasisStatus::kBasic;
      ++stats_.pivots;
      const bool stable = basis_->Update(blocking_row, w_);
      if (basis_->eta_length() > stats_.max_eta_length) {
        stats_.max_eta_length = basis_->eta_length();
      }
      if (!stable || basis_->eta_length() >= options_.refactor_interval) {
        Factorize();
      }
    }

    result.status = LpStatus::kIterationLimit;
    result.iterations = options_.max_iterations;
    Extract(&result);
    return result;
  }

 private:
  /// Validates and adopts a warm-start basis. Returns false (cold start) when
  /// the snapshot is absent, differently shaped, or internally inconsistent.
  bool AdoptWarmBasis(const SimplexBasis* warm) {
    if (warm == nullptr || warm->empty()) return false;
    if (static_cast<int>(warm->basic.size()) != m_ ||
        static_cast<int>(warm->status.size()) != n_) {
      return false;
    }
    std::vector<char> in_basis(n_, 0);
    for (int j : warm->basic) {
      if (j < 0 || j >= n_ || in_basis[j] != 0) return false;
      in_basis[j] = 1;
    }
    basic_ = warm->basic;
    state_ = warm->status;
    for (int j = 0; j < n_; ++j) {
      if (in_basis[j] != 0) {
        state_[j] = BasisStatus::kBasic;
        continue;
      }
      // Sanitize nonbasic states against the (possibly changed) bounds.
      if (state_[j] == BasisStatus::kBasic ||
          (state_[j] == BasisStatus::kAtLower && lb_[j] <= -kInfinity) ||
          (state_[j] == BasisStatus::kAtUpper && ub_[j] >= kInfinity)) {
        SetNonbasicAtBound(j);
      }
    }
    return true;
  }

  /// Default nonbasic placement for variable j: lower bound if finite, else
  /// upper bound, else parked free at zero.
  void SetNonbasicAtBound(int j) {
    if (lb_[j] > -kInfinity) {
      state_[j] = BasisStatus::kAtLower;
    } else if (ub_[j] < kInfinity) {
      state_[j] = BasisStatus::kAtUpper;
    } else {
      state_[j] = BasisStatus::kAtZero;
    }
  }

  /// Rebuilds the basis representation from basic_, repairing dependent
  /// columns (ejected variables move to a bound, replacement slacks become
  /// basic), and refreshes the basic values.
  void Factorize() {
    std::vector<int> ejected;
    basis_->Factorize(cols_, n_struct_, &basic_, &ejected);
    ++stats_.refactorizations;
    stats_.basis_repairs += static_cast<long long>(ejected.size());
    if (!ejected.empty()) {
      for (int j : ejected) {
        SetNonbasicAtBound(j);
        x_[j] = state_[j] == BasisStatus::kAtLower   ? lb_[j]
                : state_[j] == BasisStatus::kAtUpper ? ub_[j]
                                                     : 0.0;
      }
      for (int r = 0; r < m_; ++r) state_[basic_[r]] = BasisStatus::kBasic;
    }
    RecomputeBasics();
  }

  /// Picks the entering variable; returns -1 when none is eligible (optimal
  /// for the current cost vector). `direction` is +1 (increase) or -1.
  int SelectEntering(const std::vector<double>& cost, bool bland,
                     int* direction) {
    auto eligible = [&](int j, double* d_out, int* dir_out) {
      if (state_[j] == BasisStatus::kBasic) return false;
      const double d = cost[j] - ColumnDual(j);
      int dir;
      if (state_[j] == BasisStatus::kAtLower && d < -options_.tol) {
        dir = +1;
      } else if (state_[j] == BasisStatus::kAtUpper && d > options_.tol) {
        dir = -1;
      } else if (state_[j] == BasisStatus::kAtZero &&
                 std::abs(d) > options_.tol) {
        dir = d < 0 ? +1 : -1;
      } else {
        return false;
      }
      *d_out = d;
      *dir_out = dir;
      return true;
    };

    if (bland) {  // anti-cycling: first eligible index, always a full rule
      for (int j = 0; j < n_; ++j) {
        double d;
        int dir;
        if (eligible(j, &d, &dir)) {
          *direction = dir;
          return j;
        }
      }
      return -1;
    }

    if (options_.pricing == PricingRule::kDantzig) {
      int best = -1;
      int best_dir = 0;
      double best_score = options_.tol;
      for (int j = 0; j < n_; ++j) {
        double d;
        int dir;
        if (!eligible(j, &d, &dir)) continue;
        if (std::abs(d) > best_score) {
          best_score = std::abs(d);
          best = j;
          best_dir = dir;
        }
      }
      *direction = best_dir;
      return best;
    }

    // Partial Dantzig: scan fixed-size segments from a rotating cursor and
    // take the best candidate of the first segment holding any; a full wrap
    // with no candidate is the same optimality certificate as a full scan.
    int scanned = 0;
    while (scanned < n_) {
      const int len = std::min(segment_, n_ - scanned);
      int best = -1;
      int best_dir = 0;
      double best_score = options_.tol;
      for (int t = 0; t < len; ++t) {
        int j = cursor_ + t;
        if (j >= n_) j -= n_;
        double d;
        int dir;
        if (!eligible(j, &d, &dir)) continue;
        if (std::abs(d) > best_score) {
          best_score = std::abs(d);
          best = j;
          best_dir = dir;
        }
      }
      cursor_ += len;
      if (cursor_ >= n_) cursor_ -= n_;
      scanned += len;
      if (best >= 0) {
        *direction = best_dir;
        return best;
      }
    }
    return -1;
  }

  /// Fills phase1_cost_ from current basic violations; returns true when any
  /// basic variable is out of bounds (phase 1 needed).
  bool ComputePhase1Costs() {
    bool any = false;
    phase1_cost_.assign(n_, 0.0);
    for (int r = 0; r < m_; ++r) {
      const int i = basic_[r];
      if (x_[i] < lb_[i] - feas_tol_) {
        phase1_cost_[i] = -1.0;
        any = true;
      } else if (x_[i] > ub_[i] + feas_tol_) {
        phase1_cost_[i] = 1.0;
        any = true;
      }
    }
    return any;
  }

  double TotalInfeasibility() const {
    double total = 0.0;
    for (int r = 0; r < m_; ++r) {
      const int i = basic_[r];
      if (x_[i] < lb_[i]) {
        total += lb_[i] - x_[i];
      } else if (x_[i] > ub_[i]) {
        total += x_[i] - ub_[i];
      }
    }
    return total;
  }

  /// y = B^-T c_B.
  void ComputeDuals(const std::vector<double>& cost) {
    y_.resize(m_);
    for (int r = 0; r < m_; ++r) y_[r] = cost[basic_[r]];
    basis_->Btran(&y_);
  }

  /// y . A_j over the sparse column.
  double ColumnDual(int j) const {
    double dual = 0.0;
    for (const auto& [row, coef] : cols_[j]) dual += y_[row] * coef;
    return dual;
  }

  /// x_B = -B^-1 (A_N x_N)  (right-hand side is 0).
  void RecomputeBasics() {
    std::vector<double> v(m_, 0.0);
    for (int j = 0; j < n_; ++j) {
      if (state_[j] == BasisStatus::kBasic || x_[j] == 0.0) continue;
      for (const auto& [row, coef] : cols_[j]) v[row] += coef * x_[j];
    }
    basis_->Ftran(&v);
    for (int r = 0; r < m_; ++r) x_[basic_[r]] = -v[r];
  }

  void Extract(LpResult* result) const {
    result->x.assign(x_.begin(), x_.begin() + n_struct_);
    double obj = 0.0;
    for (int j = 0; j < n_struct_; ++j) obj += cost_[j] * x_[j];
    result->objective = obj;
    result->basis.basic = basic_;
    result->basis.status = state_;
    result->stats = stats_;
    result->warm_started = warm_started_;
  }

  const SimplexOptions options_;
  const double feas_tol_;
  const int n_struct_;
  const int m_;
  const int n_;
  const int segment_;  // partial-pricing segment size

  SparseColumns cols_;  // (row, coef) per column of [A | -I]
  std::vector<double> lb_, ub_, cost_, phase1_cost_;
  std::vector<int> basic_;
  std::vector<BasisStatus> state_;
  std::unique_ptr<BasisRep> basis_;
  std::vector<double> x_;
  std::vector<double> y_, w_;
  LpEngineStats stats_;
  bool warm_started_ = false;
  int cursor_ = 0;  // partial-pricing rotating cursor
};

}  // namespace

LpResult SolveLp(const Model& model, const SimplexOptions& options,
                 const std::vector<double>* lower,
                 const std::vector<double>* upper) {
  if (lower != nullptr) {
    RDFSR_CHECK_EQ(lower->size(), model.num_variables());
  }
  if (upper != nullptr) {
    RDFSR_CHECK_EQ(upper->size(), model.num_variables());
  }
  // Trivially check for empty variable domains (branch bounds may cross).
  for (std::size_t j = 0; j < model.num_variables(); ++j) {
    const double lo = lower ? (*lower)[j] : model.variable(j).lower;
    const double hi = upper ? (*upper)[j] : model.variable(j).upper;
    if (lo > hi) {
      LpResult result;
      result.status = LpStatus::kInfeasible;
      return result;
    }
  }
  Simplex solver(model, options, lower, upper);
  return solver.Run();
}

}  // namespace rdfsr::ilp
