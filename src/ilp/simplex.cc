#include "ilp/simplex.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace rdfsr::ilp {

const char* LpStatusName(LpStatus status) {
  switch (status) {
    case LpStatus::kOptimal:
      return "Optimal";
    case LpStatus::kInfeasible:
      return "Infeasible";
    case LpStatus::kUnbounded:
      return "Unbounded";
    case LpStatus::kIterationLimit:
      return "IterationLimit";
    case LpStatus::kCancelled:
      return "Cancelled";
  }
  return "Unknown";
}

namespace {

constexpr double kPivotEps = 1e-9;

enum class VarState : std::uint8_t {
  kBasic,
  kAtLower,
  kAtUpper,
  kAtZero,  // free nonbasic, parked at 0
};

/// Internal solver state for one LP solve.
class Simplex {
 public:
  Simplex(const Model& model, const SimplexOptions& options,
          const std::vector<double>* lower, const std::vector<double>* upper)
      : options_(options),
        feas_tol_(std::max(10 * options.tol, 1e-6)),
        n_struct_(static_cast<int>(model.num_variables())),
        m_(static_cast<int>(model.num_constraints())),
        n_(n_struct_ + m_) {
    lb_.resize(n_);
    ub_.resize(n_);
    cost_.assign(n_, 0.0);
    cols_.resize(n_);
    for (int j = 0; j < n_struct_; ++j) {
      lb_[j] = lower != nullptr ? (*lower)[j] : model.variable(j).lower;
      ub_[j] = upper != nullptr ? (*upper)[j] : model.variable(j).upper;
    }
    for (int r = 0; r < m_; ++r) {
      const Constraint& c = model.constraint(r);
      for (const LinTerm& t : c.terms) {
        cols_[t.var].push_back({r, t.coef});
      }
      const int slack = n_struct_ + r;
      cols_[slack].push_back({r, -1.0});
      lb_[slack] = c.lower;
      ub_[slack] = c.upper;
    }
    for (const LinTerm& t : model.objective()) cost_[t.var] = t.coef;

    // Initial basis: the slack columns (B = -I, so Binv = -I).
    basic_.resize(m_);
    state_.assign(n_, VarState::kAtLower);
    binv_.assign(static_cast<std::size_t>(m_) * m_, 0.0);
    for (int r = 0; r < m_; ++r) {
      basic_[r] = n_struct_ + r;
      state_[n_struct_ + r] = VarState::kBasic;
      binv_[static_cast<std::size_t>(r) * m_ + r] = -1.0;
    }
    x_.assign(n_, 0.0);
    for (int j = 0; j < n_struct_; ++j) {
      if (lb_[j] > -kInfinity) {
        state_[j] = VarState::kAtLower;
        x_[j] = lb_[j];
      } else if (ub_[j] < kInfinity) {
        state_[j] = VarState::kAtUpper;
        x_[j] = ub_[j];
      } else {
        state_[j] = VarState::kAtZero;
        x_[j] = 0.0;
      }
    }
    RecomputeBasics();
  }

  LpResult Run() {
    LpResult result;
    util::PeriodicCheck check(options_.cancel, 128);
    const int bland_after = 2000 + 20 * (m_ + n_);
    for (int iter = 0; iter < options_.max_iterations; ++iter) {
      if (check.ShouldStop()) {
        result.status = LpStatus::kCancelled;
        result.iterations = iter;
        Extract(&result);
        return result;
      }
      if (iter > 0 && iter % options_.refresh_interval == 0) RecomputeBasics();
      const bool phase1 = ComputePhase1Costs();
      const std::vector<double>& cost = phase1 ? phase1_cost_ : cost_;

      // Pricing: y = c_B * Binv, then reduced costs for nonbasic columns.
      ComputeDuals(cost);
      const bool bland = iter >= bland_after;
      int entering = -1;
      int direction = 0;
      double best_score = options_.tol;
      for (int j = 0; j < n_; ++j) {
        if (state_[j] == VarState::kBasic) continue;
        const double d = cost[j] - ColumnDual(j);
        int dir = 0;
        if (state_[j] == VarState::kAtLower && d < -options_.tol) {
          dir = +1;
        } else if (state_[j] == VarState::kAtUpper && d > options_.tol) {
          dir = -1;
        } else if (state_[j] == VarState::kAtZero &&
                   std::abs(d) > options_.tol) {
          dir = d < 0 ? +1 : -1;
        } else {
          continue;
        }
        if (bland) {  // first eligible index
          entering = j;
          direction = dir;
          break;
        }
        if (std::abs(d) > best_score) {
          best_score = std::abs(d);
          entering = j;
          direction = dir;
        }
      }

      if (entering < 0) {
        RecomputeBasics();
        if (TotalInfeasibility() > feas_tol_) {
          result.status = LpStatus::kInfeasible;
        } else if (phase1) {
          // Violations were within tolerance after the refresh; re-price with
          // the true objective (ComputePhase1Costs will come back false).
          continue;
        } else {
          result.status = LpStatus::kOptimal;
        }
        result.iterations = iter;
        Extract(&result);
        return result;
      }

      // Column of the entering variable in the current basis: w = Binv * A_j.
      ComputePivotColumn(entering);

      // Ratio test (composite rule: infeasible basics block only at the bound
      // they are approaching from outside).
      double t_limit = std::numeric_limits<double>::infinity();
      int blocking_row = -1;
      double blocking_target = 0.0;
      // Bound flip of the entering variable itself.
      if (lb_[entering] > -kInfinity && ub_[entering] < kInfinity) {
        t_limit = ub_[entering] - lb_[entering];
      }
      for (int r = 0; r < m_; ++r) {
        const double wr = w_[r];
        if (std::abs(wr) < kPivotEps) continue;
        const int i = basic_[r];
        const double rate = -direction * wr;
        double target;
        if (rate > 0) {
          if (x_[i] < lb_[i] - feas_tol_) {
            target = lb_[i];  // infeasible below, improving: block at lower
          } else if (x_[i] > ub_[i] + feas_tol_) {
            continue;  // infeasible above, worsening: no block (the phase-1
                       // objective prices the worsening; composite rule)
          } else if (ub_[i] < kInfinity) {
            target = ub_[i];
          } else {
            continue;
          }
        } else {
          if (x_[i] > ub_[i] + feas_tol_) {
            target = ub_[i];  // infeasible above, improving: block at upper
          } else if (x_[i] < lb_[i] - feas_tol_) {
            continue;  // infeasible below, worsening: no block
          } else if (lb_[i] > -kInfinity) {
            target = lb_[i];
          } else {
            continue;
          }
        }
        double t = (target - x_[i]) / rate;
        if (t < 0) t = 0;  // degenerate step
        // Prefer the smallest ratio; break ties toward larger |pivot| for
        // numerical stability, then smaller row index for determinism.
        if (t < t_limit - 1e-12 ||
            (blocking_row >= 0 && t < t_limit + 1e-12 &&
             std::abs(wr) > std::abs(w_[blocking_row]) + 1e-12)) {
          t_limit = t;
          blocking_row = r;
          blocking_target = target;
        }
      }

      if (std::isinf(t_limit)) {
        result.status = LpStatus::kUnbounded;
        result.iterations = iter;
        Extract(&result);
        return result;
      }

      // Apply the step.
      for (int r = 0; r < m_; ++r) {
        if (w_[r] != 0.0) x_[basic_[r]] -= direction * t_limit * w_[r];
      }
      x_[entering] += direction * t_limit;

      if (blocking_row < 0) {
        // Bound flip: entering stays nonbasic at its other bound.
        state_[entering] = direction > 0 ? VarState::kAtUpper
                                         : VarState::kAtLower;
        x_[entering] = direction > 0 ? ub_[entering] : lb_[entering];
        continue;
      }

      // Pivot: entering becomes basic in blocking_row.
      const int leaving = basic_[blocking_row];
      x_[leaving] = blocking_target;
      state_[leaving] = blocking_target == ub_[leaving] ? VarState::kAtUpper
                                                        : VarState::kAtLower;
      UpdateInverse(blocking_row);
      basic_[blocking_row] = entering;
      state_[entering] = VarState::kBasic;
    }

    result.status = LpStatus::kIterationLimit;
    result.iterations = options_.max_iterations;
    Extract(&result);
    return result;
  }

 private:
  /// Fills phase1_cost_ from current basic violations; returns true when any
  /// basic variable is out of bounds (phase 1 needed).
  bool ComputePhase1Costs() {
    bool any = false;
    phase1_cost_.assign(n_, 0.0);
    for (int r = 0; r < m_; ++r) {
      const int i = basic_[r];
      if (x_[i] < lb_[i] - feas_tol_) {
        phase1_cost_[i] = -1.0;
        any = true;
      } else if (x_[i] > ub_[i] + feas_tol_) {
        phase1_cost_[i] = 1.0;
        any = true;
      }
    }
    return any;
  }

  double TotalInfeasibility() const {
    double total = 0.0;
    for (int r = 0; r < m_; ++r) {
      const int i = basic_[r];
      if (x_[i] < lb_[i]) {
        total += lb_[i] - x_[i];
      } else if (x_[i] > ub_[i]) {
        total += x_[i] - ub_[i];
      }
    }
    return total;
  }

  /// y = c_B * Binv.
  void ComputeDuals(const std::vector<double>& cost) {
    y_.assign(m_, 0.0);
    for (int r = 0; r < m_; ++r) {
      const double cb = cost[basic_[r]];
      if (cb == 0.0) continue;
      const double* row = &binv_[static_cast<std::size_t>(r) * m_];
      for (int k = 0; k < m_; ++k) y_[k] += cb * row[k];
    }
  }

  /// y . A_j over the sparse column.
  double ColumnDual(int j) const {
    double dual = 0.0;
    for (const auto& [row, coef] : cols_[j]) dual += y_[row] * coef;
    return dual;
  }

  /// w = Binv * A_j.
  void ComputePivotColumn(int j) {
    w_.assign(m_, 0.0);
    for (const auto& [row, coef] : cols_[j]) {
      if (coef == 0.0) continue;
      for (int r = 0; r < m_; ++r) {
        w_[r] += binv_[static_cast<std::size_t>(r) * m_ + row] * coef;
      }
    }
  }

  /// Elementary row operations turning column w into the unit vector e_row.
  void UpdateInverse(int pivot_row) {
    const double pivot = w_[pivot_row];
    RDFSR_CHECK(std::abs(pivot) > kPivotEps) << "numerically singular pivot";
    double* prow = &binv_[static_cast<std::size_t>(pivot_row) * m_];
    for (int k = 0; k < m_; ++k) prow[k] /= pivot;
    for (int r = 0; r < m_; ++r) {
      if (r == pivot_row) continue;
      const double factor = w_[r];
      if (factor == 0.0) continue;
      double* row = &binv_[static_cast<std::size_t>(r) * m_];
      for (int k = 0; k < m_; ++k) row[k] -= factor * prow[k];
    }
  }

  /// x_B = -Binv * (A_N x_N)  (right-hand side is 0).
  void RecomputeBasics() {
    std::vector<double> v(m_, 0.0);
    for (int j = 0; j < n_; ++j) {
      if (state_[j] == VarState::kBasic || x_[j] == 0.0) continue;
      for (const auto& [row, coef] : cols_[j]) v[row] += coef * x_[j];
    }
    for (int r = 0; r < m_; ++r) {
      const double* row = &binv_[static_cast<std::size_t>(r) * m_];
      double sum = 0.0;
      for (int k = 0; k < m_; ++k) sum += row[k] * v[k];
      x_[basic_[r]] = -sum;
    }
  }

  void Extract(LpResult* result) const {
    result->x.assign(x_.begin(), x_.begin() + n_struct_);
    double obj = 0.0;
    for (int j = 0; j < n_struct_; ++j) obj += cost_[j] * x_[j];
    result->objective = obj;
  }

  const SimplexOptions options_;
  const double feas_tol_;
  const int n_struct_;
  const int m_;
  const int n_;

  std::vector<std::vector<std::pair<int, double>>> cols_;  // (row, coef)
  std::vector<double> lb_, ub_, cost_, phase1_cost_;
  std::vector<int> basic_;
  std::vector<VarState> state_;
  std::vector<double> binv_;  // m x m row-major
  std::vector<double> x_;
  std::vector<double> y_, w_;
};

}  // namespace

LpResult SolveLp(const Model& model, const SimplexOptions& options,
                 const std::vector<double>* lower,
                 const std::vector<double>* upper) {
  if (lower != nullptr) {
    RDFSR_CHECK_EQ(lower->size(), model.num_variables());
  }
  if (upper != nullptr) {
    RDFSR_CHECK_EQ(upper->size(), model.num_variables());
  }
  // Trivially check for empty variable domains (branch bounds may cross).
  for (std::size_t j = 0; j < model.num_variables(); ++j) {
    const double lo = lower ? (*lower)[j] : model.variable(j).lower;
    const double hi = upper ? (*upper)[j] : model.variable(j).upper;
    if (lo > hi) {
      LpResult result;
      result.status = LpStatus::kInfeasible;
      return result;
    }
  }
  Simplex solver(model, options, lower, upper);
  return solver.Run();
}

}  // namespace rdfsr::ilp
