// Basis representations for the bounded-variable revised simplex.
//
// The simplex iterates over a square basis matrix B whose columns are drawn
// from [A | -I] (structural columns of the model plus one slack column per
// row). Each iteration needs four operations:
//   * Ftran:  w = B^-1 a        (pivot column, basic-value refresh)
//   * Btran:  y = B^-T c_B      (duals for pricing)
//   * Update: replace the column at one basis position after a pivot
//   * Factorize: rebuild the representation from the basic variable list
// Two interchangeable implementations live behind BasisRep:
//
//   LuFactorization (default) — sparse LU of B via a left-looking
//   column-by-column elimination: columns are processed in ascending-nonzero
//   order and the pivot row is chosen among numerically acceptable candidates
//   (within a threshold of the column's max) by smallest static row count — a
//   Markowitz-style choice that controls fill. Pivots append product-form eta
//   matrices to the factorization; the simplex refactorizes periodically
//   (SimplexOptions::refactor_interval) or when an update pivot is too small
//   to be stable. Ftran/Btran are triangular solves plus an eta sweep:
//   O(m + fill) instead of the dense O(m^2).
//
//   DenseInverse — the explicit m x m basis inverse updated by elementary row
//   operations, i.e. the pre-sparse solver. Kept as the measured baseline
//   (bench_solver) and as the oracle for the randomized LP property suite.
//
// Both support warm starts from an arbitrary SimplexBasis: Factorize repairs
// a structurally or numerically singular basis by replacing dependent columns
// with the slacks of unpivoted rows (the ejected variables are reported so
// the caller can move them to a bound).

#ifndef RDFSR_ILP_BASIS_H_
#define RDFSR_ILP_BASIS_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

namespace rdfsr::ilp {

/// Column-major sparse view of [A | -I]: cols[j] lists (row, coef) of
/// variable j's constraint-matrix column.
using SparseColumns = std::vector<std::vector<std::pair<int, double>>>;

/// Where a variable sits in a basis snapshot.
enum class BasisStatus : std::uint8_t {
  kBasic = 0,
  kAtLower = 1,
  kAtUpper = 2,
  kAtZero = 3,  ///< free nonbasic, parked at 0
};

/// A restartable basis snapshot: the warm-start contract between LP solves.
/// `basic` holds one variable index per row (basis position order) and
/// `status` one entry per variable (structural then slack, model order).
/// SolveLp validates shape and contents; a snapshot from a differently-sized
/// model is silently ignored (cold start), and a stale-but-well-shaped one is
/// repaired during factorization.
struct SimplexBasis {
  std::vector<int> basic;
  std::vector<BasisStatus> status;

  bool empty() const { return basic.empty(); }
};

/// Solve-internals counters surfaced through LpResult / MipResult and the
/// bench JSON: how much pivoting, refactorization, and warm-start reuse a
/// solve actually did.
struct LpEngineStats {
  long long pivots = 0;            ///< basis changes (bound flips excluded)
  long long refactorizations = 0;  ///< from-scratch basis factorizations
  long long basis_repairs = 0;     ///< dependent columns replaced by slacks
  long long basis_reuses = 0;      ///< LP solves adopting a warm basis
  int max_eta_length = 0;          ///< longest eta file between refactorizations

  void MergeWith(const LpEngineStats& other) {
    pivots += other.pivots;
    refactorizations += other.refactorizations;
    basis_repairs += other.basis_repairs;
    basis_reuses += other.basis_reuses;
    if (other.max_eta_length > max_eta_length) {
      max_eta_length = other.max_eta_length;
    }
  }
};

/// Abstract basis representation. All vectors are dense of length m; Ftran
/// maps row space -> basis-position space, Btran the transpose direction.
class BasisRep {
 public:
  virtual ~BasisRep() = default;

  /// Rebuilds the representation for the basis `*basic` (variable indices
  /// into `cols`). Dependent columns are repaired in place: basic[p] is
  /// replaced with the slack of a row the elimination never pivoted, and the
  /// ejected variable index is appended to *ejected (the caller re-states
  /// it nonbasic). After return the representation is nonsingular.
  virtual void Factorize(const SparseColumns& cols, int n_struct,
                         std::vector<int>* basic,
                         std::vector<int>* ejected) = 0;

  /// v := B^-1 v. Input indexed by matrix row, output by basis position.
  virtual void Ftran(std::vector<double>* v) const = 0;

  /// w := B^-1 a for a sparse column (the pivot-column hot path; the dense
  /// representation exploits the column's sparsity directly).
  virtual void FtranColumn(const std::vector<std::pair<int, double>>& column,
                           std::vector<double>* w) const = 0;

  /// v := B^-T v. Input indexed by basis position, output by matrix row.
  virtual void Btran(std::vector<double>* v) const = 0;

  /// Records the basis change at position `pos`, where `w` is the Ftran image
  /// of the entering column. Returns false when the update is numerically
  /// unsafe (tiny pivot / oversized eta file) — the caller must refactorize.
  virtual bool Update(int pos, const std::vector<double>& w) = 0;

  /// Current eta-file length (0 for representations without one).
  virtual int eta_length() const { return 0; }
};

std::unique_ptr<BasisRep> MakeLuFactorization(int m);
std::unique_ptr<BasisRep> MakeDenseInverse(int m);

}  // namespace rdfsr::ilp

#endif  // RDFSR_ILP_BASIS_H_
