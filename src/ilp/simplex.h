// Bounded-variable revised primal simplex.
//
// Solves min c.x subject to the model's range constraints and variable bounds
// (integrality ignored — this is the LP relaxation used by branch-and-bound).
//
// Formulation: each range row lo <= a.x <= hi becomes the equality
// a.x - s = 0 with a slack s bounded by [lo, hi], so the constraint matrix is
// [A | -I] with right-hand side 0 and the slack columns form the initial
// basis. Feasibility is restored with a composite phase-1 (minimize the sum of
// basic bound violations, costs recomputed each iteration), then phase 2
// optimizes the true objective. The basis inverse is kept explicitly (dense)
// and updated by elementary row operations per pivot; Dantzig pricing with a
// Bland fallback guards against cycling; basic values are refreshed from the
// inverse periodically for numerical hygiene.

#ifndef RDFSR_ILP_SIMPLEX_H_
#define RDFSR_ILP_SIMPLEX_H_

#include <vector>

#include "ilp/model.h"
#include "util/deadline.h"

namespace rdfsr::ilp {

/// Outcome of an LP solve.
enum class LpStatus {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,  ///< max_iterations pivots without convergence.
  kCancelled,       ///< Cooperative cancellation / deadline tripped mid-solve.
};

const char* LpStatusName(LpStatus status);

/// LP solution.
struct LpResult {
  LpStatus status = LpStatus::kIterationLimit;
  double objective = 0.0;
  std::vector<double> x;  ///< Structural variable values (model order).
  int iterations = 0;
};

/// Solver options.
struct SimplexOptions {
  int max_iterations = 200000;
  double tol = 1e-7;           ///< Feasibility / reduced-cost tolerance.
  int refresh_interval = 128;  ///< Recompute basic values every N pivots.
  /// Polled every ~128 pivots; a trip ends the solve with kCancelled.
  util::CancellationToken cancel;
};

/// Solves the LP relaxation of `model`. When `lower`/`upper` are non-null they
/// override the model's variable bounds (branch-and-bound node bounds).
LpResult SolveLp(const Model& model, const SimplexOptions& options = {},
                 const std::vector<double>* lower = nullptr,
                 const std::vector<double>* upper = nullptr);

}  // namespace rdfsr::ilp

#endif  // RDFSR_ILP_SIMPLEX_H_
