// Bounded-variable revised primal simplex.
//
// Solves min c.x subject to the model's range constraints and variable bounds
// (integrality ignored — this is the LP relaxation used by branch-and-bound).
//
// Formulation: each range row lo <= a.x <= hi becomes the equality
// a.x - s = 0 with a slack s bounded by [lo, hi], so the constraint matrix is
// [A | -I] with right-hand side 0 and the slack columns form the initial
// basis. Feasibility is restored with a composite phase-1 (minimize the sum of
// basic bound violations, costs recomputed each iteration), then phase 2
// optimizes the true objective.
//
// The basis is held behind a BasisRep (see ilp/basis.h): by default a sparse
// LU factorization with product-form eta updates, refactorized every
// `refactor_interval` pivots or when an update pivot is numerically unsafe;
// the explicit dense inverse remains available as a baseline/oracle. Pricing
// defaults to partial Dantzig (segment scan with a rotating cursor) with the
// classic full-scan Dantzig rule available; a Bland fallback guards against
// cycling in either mode. Basic values are refreshed from the factorization
// periodically for numerical hygiene.
//
// Warm starts: every solve returns its final basis in LpResult::basis, and
// SimplexOptions::warm_start replays such a snapshot — the factorization
// repairs stale bases (bound changes, numerical singularity) by ejecting
// dependent columns, and phase-1 restores feasibility from there. A snapshot
// whose shape does not match the model is ignored (cold start).

#ifndef RDFSR_ILP_SIMPLEX_H_
#define RDFSR_ILP_SIMPLEX_H_

#include <vector>

#include "ilp/basis.h"
#include "ilp/model.h"
#include "util/deadline.h"

namespace rdfsr::ilp {

/// Outcome of an LP solve.
enum class LpStatus {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,  ///< max_iterations pivots without convergence.
  kCancelled,       ///< Cooperative cancellation / deadline tripped mid-solve.
};

const char* LpStatusName(LpStatus status);

/// LP solution.
struct LpResult {
  LpStatus status = LpStatus::kIterationLimit;
  double objective = 0.0;
  std::vector<double> x;  ///< Structural variable values (model order).
  int iterations = 0;
  SimplexBasis basis;        ///< Final basis: feed back via warm_start.
  LpEngineStats stats;       ///< Pivot / refactorization counters.
  bool warm_started = false; ///< True when a warm basis was actually adopted.
};

/// Which basis representation backs the solve.
enum class BasisKind {
  kLuFactorization,  ///< Sparse LU + eta file (default).
  kDenseInverse,     ///< Explicit dense inverse (baseline / oracle).
};

/// Entering-variable pricing rule.
enum class PricingRule {
  kPartialDantzig,  ///< Most-negative within a rotating segment (default).
  kDantzig,         ///< Most-negative over all columns.
};

/// Solver options.
struct SimplexOptions {
  int max_iterations = 200000;
  double tol = 1e-7;           ///< Feasibility / reduced-cost tolerance.
  int refresh_interval = 128;  ///< Recompute basic values every N pivots.
  /// Refactorize once the eta file reaches this length (LU only).
  int refactor_interval = 100;
  BasisKind basis_kind = BasisKind::kLuFactorization;
  PricingRule pricing = PricingRule::kPartialDantzig;
  /// Optional warm-start basis (not owned; must outlive the solve). Ignored
  /// unless its shape matches the model; repaired if stale.
  const SimplexBasis* warm_start = nullptr;
  /// Polled every ~128 pivots; a trip ends the solve with kCancelled.
  util::CancellationToken cancel;
};

/// Solves the LP relaxation of `model`. When `lower`/`upper` are non-null they
/// override the model's variable bounds (branch-and-bound node bounds).
LpResult SolveLp(const Model& model, const SimplexOptions& options = {},
                 const std::vector<double>* lower = nullptr,
                 const std::vector<double>* upper = nullptr);

}  // namespace rdfsr::ilp

#endif  // RDFSR_ILP_SIMPLEX_H_
