#include "ilp/presolve.h"

#include <cmath>
#include <limits>

#include "util/check.h"

namespace rdfsr::ilp {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kFeasTol = 1e-9;

/// Minimum improvement before an implied bound is applied — keeps the
/// tightening fixpoint from looping on epsilon-sized moves.
constexpr double kTightenTol = 1e-7;

/// Working copy of the model during reduction rounds.
struct Working {
  std::vector<double> lb, ub;
  std::vector<bool> is_integer;
  std::vector<bool> removed_row;
  std::vector<Constraint> rows;  // terms rewritten in place
  bool infeasible = false;
};

/// Rounds integer bounds inward; detects empty domains.
void TightenIntegerBounds(Working* w) {
  for (std::size_t j = 0; j < w->lb.size(); ++j) {
    if (!w->is_integer[j]) continue;
    if (w->lb[j] > -kInfinity) w->lb[j] = std::ceil(w->lb[j] - kFeasTol);
    if (w->ub[j] < kInfinity) w->ub[j] = std::floor(w->ub[j] + kFeasTol);
    if (w->lb[j] > w->ub[j] + kFeasTol) w->infeasible = true;
  }
}

/// Activity range [min, max] of a row under current bounds.
void ActivityRange(const Working& w, const Constraint& row, double* lo,
                   double* hi) {
  *lo = 0;
  *hi = 0;
  for (const LinTerm& t : row.terms) {
    const double l = w.lb[t.var];
    const double u = w.ub[t.var];
    if (t.coef > 0) {
      *lo += (l <= -kInfinity) ? -kInfinity : t.coef * l;
      *hi += (u >= kInfinity) ? kInfinity : t.coef * u;
    } else {
      *lo += (u >= kInfinity) ? -kInfinity : t.coef * u;
      *hi += (l <= -kInfinity) ? kInfinity : t.coef * l;
    }
    if (*lo <= -kInfinity && *hi >= kInfinity) return;
  }
}

enum TightenOutcome : int {
  kTightenInfeasible = -1,
  kTightenNoChange = 0,
  kTightenChanged = 1,
};

/// Activity-based implied bounds from one row: each variable's contribution
/// plus the worst-case activity of the *other* terms must fit inside
/// [row_lo, row_hi]. Tightens lb/ub in place (only on improvements beyond
/// kTightenTol); residuals use the bounds from loop entry, which stays valid
/// because those are relaxations of any tightened bound. Shared by the
/// presolve rounds and the branch-and-bound root propagation.
int TightenFromRow(const std::vector<LinTerm>& terms, double row_lo,
                   double row_hi, std::vector<double>* lb_io,
                   std::vector<double>* ub_io) {
  std::vector<double>& lb = *lb_io;
  std::vector<double>& ub = *ub_io;
  double sum_lo = 0;
  double sum_hi = 0;
  int inf_lo = 0;
  int inf_hi = 0;
  for (const LinTerm& t : terms) {
    const double l = lb[t.var];
    const double u = ub[t.var];
    if (t.coef > 0) {
      if (l <= -kInfinity) ++inf_lo; else sum_lo += t.coef * l;
      if (u >= kInfinity) ++inf_hi; else sum_hi += t.coef * u;
    } else {
      if (u >= kInfinity) ++inf_lo; else sum_lo += t.coef * u;
      if (l <= -kInfinity) ++inf_hi; else sum_hi += t.coef * l;
    }
  }
  if (inf_lo == 0 && row_hi < kInfinity && sum_lo > row_hi + kFeasTol) {
    return kTightenInfeasible;
  }
  if (inf_hi == 0 && row_lo > -kInfinity && sum_hi < row_lo - kFeasTol) {
    return kTightenInfeasible;
  }
  int outcome = kTightenNoChange;
  for (const LinTerm& t : terms) {
    const double l = lb[t.var];
    const double u = ub[t.var];
    bool cmin_inf, cmax_inf;
    double cmin, cmax;
    if (t.coef > 0) {
      cmin_inf = l <= -kInfinity;
      cmin = cmin_inf ? 0 : t.coef * l;
      cmax_inf = u >= kInfinity;
      cmax = cmax_inf ? 0 : t.coef * u;
    } else {
      cmin_inf = u >= kInfinity;
      cmin = cmin_inf ? 0 : t.coef * u;
      cmax_inf = l <= -kInfinity;
      cmax = cmax_inf ? 0 : t.coef * l;
    }
    // Residual activity of the other terms; finite only when this term holds
    // the row's sole infinite contribution (or there is none).
    const bool res_lo_finite = inf_lo == (cmin_inf ? 1 : 0);
    const bool res_hi_finite = inf_hi == (cmax_inf ? 1 : 0);
    const double res_lo = sum_lo - cmin;
    const double res_hi = sum_hi - cmax;
    if (row_hi < kInfinity && res_lo_finite) {
      const double limit = (row_hi - res_lo) / t.coef;
      if (t.coef > 0) {
        if (limit < ub[t.var] - kTightenTol) {
          ub[t.var] = limit;
          outcome = kTightenChanged;
        }
      } else if (limit > lb[t.var] + kTightenTol) {
        lb[t.var] = limit;
        outcome = kTightenChanged;
      }
    }
    if (row_lo > -kInfinity && res_hi_finite) {
      const double limit = (row_lo - res_hi) / t.coef;
      if (t.coef > 0) {
        if (limit > lb[t.var] + kTightenTol) {
          lb[t.var] = limit;
          outcome = kTightenChanged;
        }
      } else if (limit < ub[t.var] - kTightenTol) {
        ub[t.var] = limit;
        outcome = kTightenChanged;
      }
    }
    if (lb[t.var] > ub[t.var] + kFeasTol) return kTightenInfeasible;
  }
  return outcome;
}

/// One reduction round; returns whether anything changed.
bool Round(Working* w) {
  bool changed = false;
  for (std::size_t r = 0; r < w->rows.size() && !w->infeasible; ++r) {
    if (w->removed_row[r]) continue;
    Constraint& row = w->rows[r];

    // Drop fixed variables from the row into its bounds.
    std::vector<LinTerm> kept;
    double shift = 0;
    for (const LinTerm& t : row.terms) {
      if (w->lb[t.var] == w->ub[t.var]) {
        shift += t.coef * w->lb[t.var];
      } else {
        kept.push_back(t);
      }
    }
    if (kept.size() != row.terms.size()) {
      row.terms = std::move(kept);
      if (row.lower > -kInfinity) row.lower -= shift;
      if (row.upper < kInfinity) row.upper -= shift;
      changed = true;
    }

    // Empty row.
    if (row.terms.empty()) {
      if (row.lower > kFeasTol || row.upper < -kFeasTol) {
        w->infeasible = true;
      }
      w->removed_row[r] = true;
      changed = true;
      continue;
    }

    // Singleton row: fold into variable bounds. Infinities flip sign when
    // divided by a negative coefficient (-inf / -1 == +inf).
    if (row.terms.size() == 1) {
      const LinTerm t = row.terms[0];
      RDFSR_CHECK_NE(t.coef, 0.0);
      const double lo_div =
          row.lower <= -kInfinity ? (t.coef > 0 ? -kInfinity : kInfinity)
                                  : row.lower / t.coef;
      const double hi_div =
          row.upper >= kInfinity ? (t.coef > 0 ? kInfinity : -kInfinity)
                                 : row.upper / t.coef;
      const double new_lb = std::min(lo_div, hi_div);
      const double new_ub = std::max(lo_div, hi_div);
      if (new_lb > w->lb[t.var] + kFeasTol) {
        w->lb[t.var] = new_lb;
        changed = true;
      }
      if (new_ub < w->ub[t.var] - kFeasTol) {
        w->ub[t.var] = new_ub;
        changed = true;
      }
      if (w->lb[t.var] > w->ub[t.var] + kFeasTol) w->infeasible = true;
      w->removed_row[r] = true;
      changed = true;
      continue;
    }

    // Activity-based redundancy / infeasibility.
    double act_lo, act_hi;
    ActivityRange(*w, row, &act_lo, &act_hi);
    if (act_lo > row.upper + kFeasTol || act_hi < row.lower - kFeasTol) {
      w->infeasible = true;
      continue;
    }
    if (act_lo >= row.lower - kFeasTol && act_hi <= row.upper + kFeasTol) {
      w->removed_row[r] = true;
      changed = true;
      continue;
    }

    // Implied variable bounds from this row's activity.
    const int tightened =
        TightenFromRow(row.terms, row.lower, row.upper, &w->lb, &w->ub);
    if (tightened == kTightenInfeasible) {
      w->infeasible = true;
    } else if (tightened == kTightenChanged) {
      changed = true;
    }
  }
  TightenIntegerBounds(w);
  return changed;
}

}  // namespace

bool PropagateBounds(const Model& model, std::vector<double>* lb,
                     std::vector<double>* ub, int max_rounds,
                     long long* budget) {
  RDFSR_CHECK_EQ(lb->size(), model.num_variables());
  RDFSR_CHECK_EQ(ub->size(), model.num_variables());
  for (int round = 0; round < max_rounds; ++round) {
    bool changed = false;
    for (std::size_t r = 0; r < model.num_constraints(); ++r) {
      if (budget != nullptr) {
        if (*budget <= 0) return true;  // out of budget, bounds still valid
        *budget -= static_cast<long long>(model.constraint(r).terms.size());
      }
      const Constraint& row = model.constraint(r);
      const int outcome = TightenFromRow(row.terms, row.lower, row.upper, lb, ub);
      if (outcome == kTightenInfeasible) return false;
      if (outcome == kTightenChanged) changed = true;
    }
    for (std::size_t j = 0; j < model.num_variables(); ++j) {
      if (!model.variable(j).is_integer) continue;
      if ((*lb)[j] > -kInfinity) (*lb)[j] = std::ceil((*lb)[j] - kFeasTol);
      if ((*ub)[j] < kInfinity) (*ub)[j] = std::floor((*ub)[j] + kFeasTol);
      if ((*lb)[j] > (*ub)[j] + kFeasTol) return false;
    }
    if (!changed) break;
  }
  return true;
}

std::vector<double> PresolveResult::RestoreSolution(
    const std::vector<double>& reduced_x) const {
  RDFSR_CHECK_EQ(reduced_x.size(), variable_map.size());
  std::vector<double> x = fixed_values;
  for (std::size_t j = 0; j < reduced_x.size(); ++j) {
    x[variable_map[j]] = reduced_x[j];
  }
  for (double& v : x) {
    RDFSR_CHECK(!std::isnan(v)) << "unassigned variable after restore";
  }
  return x;
}

PresolveResult Presolve(const Model& model, int max_rounds) {
  Working w;
  const std::size_t n = model.num_variables();
  w.lb.resize(n);
  w.ub.resize(n);
  w.is_integer.resize(n);
  for (std::size_t j = 0; j < n; ++j) {
    w.lb[j] = model.variable(j).lower;
    w.ub[j] = model.variable(j).upper;
    w.is_integer[j] = model.variable(j).is_integer;
  }
  w.rows = model.constraints();
  w.removed_row.assign(w.rows.size(), false);

  TightenIntegerBounds(&w);
  for (int round = 0; round < max_rounds && !w.infeasible; ++round) {
    if (!Round(&w)) break;
  }

  PresolveResult result;
  result.fixed_values.assign(n, kNaN);
  if (w.infeasible) {
    result.proven_infeasible = true;
    return result;
  }

  // Partition variables into fixed and surviving.
  std::vector<int> new_index(n, -1);
  for (std::size_t j = 0; j < n; ++j) {
    if (w.lb[j] == w.ub[j]) {
      result.fixed_values[j] = w.lb[j];
    } else {
      new_index[j] = static_cast<int>(result.variable_map.size());
      result.variable_map.push_back(static_cast<int>(j));
      result.reduced.AddVariable(model.variable(j).name, w.lb[j], w.ub[j],
                                 w.is_integer[j]);
    }
  }

  // Objective: surviving terms + constant offset from fixed variables.
  std::vector<LinTerm> objective;
  for (const LinTerm& t : model.objective()) {
    if (new_index[t.var] >= 0) {
      objective.push_back({new_index[t.var], t.coef});
    } else {
      result.objective_offset += t.coef * result.fixed_values[t.var];
    }
  }
  result.reduced.SetObjective(std::move(objective));

  // Surviving rows, remapped. Fixed variables were already folded into the
  // row bounds during the rounds; guard for ones fixed in the final round.
  for (std::size_t r = 0; r < w.rows.size(); ++r) {
    if (w.removed_row[r]) continue;
    const Constraint& row = w.rows[r];
    std::vector<LinTerm> terms;
    double shift = 0;
    for (const LinTerm& t : row.terms) {
      if (new_index[t.var] >= 0) {
        terms.push_back({new_index[t.var], t.coef});
      } else {
        shift += t.coef * result.fixed_values[t.var];
      }
    }
    const double lower =
        row.lower <= -kInfinity ? -kInfinity : row.lower - shift;
    const double upper = row.upper >= kInfinity ? kInfinity : row.upper - shift;
    if (terms.empty()) {
      if (lower > kFeasTol || upper < -kFeasTol) {
        result.proven_infeasible = true;
        return result;
      }
      continue;
    }
    result.reduced.AddConstraint(row.name, std::move(terms), lower, upper);
  }
  return result;
}

}  // namespace rdfsr::ilp
