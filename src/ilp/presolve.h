// Root-node presolve for MIP models.
//
// Cheap, provably-safe reductions applied before branch-and-bound:
//   * empty rows: dropped (or infeasibility detected),
//   * singleton rows a*x in [lo, hi]: folded into x's bounds, then dropped,
//   * integer bound rounding: [lb, ub] -> [ceil(lb), floor(ub)],
//   * fixed variables (lb == ub): substituted into every row and the
//     objective, then removed,
//   * activity-redundant rows: a row whose worst-case activity range already
//     lies inside [lo, hi] is dropped; one whose best case misses the range
//     proves infeasibility,
//   * implied variable bounds: from each remaining row, the bound on a.x
//     minus the worst-case activity of the other terms tightens each
//     variable's own bounds (classic activity-based bound tightening).
// Applied to a fixpoint (bounded rounds). The Section-6 encodings benefit
// twice: the X-sum rows fix variables k = 1 instances completely, and the
// precedence rows fix the leading X variables of every sort.

#ifndef RDFSR_ILP_PRESOLVE_H_
#define RDFSR_ILP_PRESOLVE_H_

#include <vector>

#include "ilp/model.h"

namespace rdfsr::ilp {

/// Outcome of presolving.
struct PresolveResult {
  /// The reduced model (meaningless when proven_infeasible).
  Model reduced;
  bool proven_infeasible = false;
  /// reduced variable index -> original variable index.
  std::vector<int> variable_map;
  /// Per original variable: its fixed value, or NaN when still free.
  std::vector<double> fixed_values;
  /// Constant objective contribution of the fixed variables.
  double objective_offset = 0.0;

  /// Lifts a solution of the reduced model back to the original space.
  std::vector<double> RestoreSolution(const std::vector<double>& reduced_x) const;
};

/// Presolves a model. `max_rounds` bounds the fixpoint iteration.
PresolveResult Presolve(const Model& model, int max_rounds = 10);

/// Bound propagation against external variable bounds (the branch-and-bound
/// root-fixing pass): repeatedly derives implied bounds from every row's
/// activity range, rounding integer bounds each round, and writes the result
/// into *lb / *ub. Returns false when the bounds prove the model infeasible.
/// `budget`, when non-null, caps the work in row-term evaluations; when it
/// runs out propagation stops cleanly (bounds stay valid, just less tight).
bool PropagateBounds(const Model& model, std::vector<double>* lb,
                     std::vector<double>* ub, int max_rounds,
                     long long* budget = nullptr);

}  // namespace rdfsr::ilp

#endif  // RDFSR_ILP_PRESOLVE_H_
