#include "ilp/model.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

namespace rdfsr::ilp {

int Model::AddVariable(std::string name, double lower, double upper,
                       bool is_integer) {
  RDFSR_CHECK_LE(lower, upper) << "variable '" << name << "' has empty domain";
  Variable v;
  v.name = std::move(name);
  v.lower = lower;
  v.upper = upper;
  v.is_integer = is_integer;
  variables_.push_back(std::move(v));
  return static_cast<int>(variables_.size()) - 1;
}

namespace {

std::vector<LinTerm> MergeTerms(std::vector<LinTerm> terms,
                                std::size_t num_variables) {
  std::map<int, double> merged;
  for (const LinTerm& t : terms) {
    RDFSR_CHECK_GE(t.var, 0);
    RDFSR_CHECK_LT(static_cast<std::size_t>(t.var), num_variables);
    merged[t.var] += t.coef;
  }
  std::vector<LinTerm> out;
  out.reserve(merged.size());
  for (const auto& [var, coef] : merged) {
    if (coef != 0.0) out.push_back({var, coef});
  }
  return out;
}

}  // namespace

int Model::AddConstraint(std::string name, std::vector<LinTerm> terms,
                         double lower, double upper) {
  RDFSR_CHECK_LE(lower, upper) << "constraint '" << name << "' is empty";
  Constraint c;
  c.name = std::move(name);
  c.terms = MergeTerms(std::move(terms), variables_.size());
  c.lower = lower;
  c.upper = upper;
  constraints_.push_back(std::move(c));
  return static_cast<int>(constraints_.size()) - 1;
}

void Model::SetConstraintTerms(int r, std::vector<LinTerm> terms, double lower,
                               double upper) {
  RDFSR_CHECK_GE(r, 0);
  RDFSR_CHECK_LT(static_cast<std::size_t>(r), constraints_.size());
  RDFSR_CHECK_LE(lower, upper)
      << "constraint '" << constraints_[r].name << "' is empty";
  Constraint& c = constraints_[r];
  c.terms = MergeTerms(std::move(terms), variables_.size());
  c.lower = lower;
  c.upper = upper;
}

void Model::SetConstraintBounds(int r, double lower, double upper) {
  RDFSR_CHECK_GE(r, 0);
  RDFSR_CHECK_LT(static_cast<std::size_t>(r), constraints_.size());
  RDFSR_CHECK_LE(lower, upper)
      << "constraint '" << constraints_[r].name << "' is empty";
  constraints_[r].lower = lower;
  constraints_[r].upper = upper;
}

void Model::SetObjective(std::vector<LinTerm> terms) {
  objective_ = MergeTerms(std::move(terms), variables_.size());
}

double Model::ObjectiveValue(const std::vector<double>& x) const {
  double value = 0.0;
  for (const LinTerm& t : objective_) value += t.coef * x[t.var];
  return value;
}

bool Model::IsFeasible(const std::vector<double>& x, double tol) const {
  if (x.size() != variables_.size()) return false;
  for (std::size_t j = 0; j < variables_.size(); ++j) {
    const Variable& v = variables_[j];
    if (x[j] < v.lower - tol || x[j] > v.upper + tol) return false;
    if (v.is_integer && std::abs(x[j] - std::round(x[j])) > tol) return false;
  }
  for (const Constraint& c : constraints_) {
    double sum = 0.0;
    for (const LinTerm& t : c.terms) sum += t.coef * x[t.var];
    // Scale the tolerance by the constraint's magnitude so rows with large
    // counts (threshold rows) are judged relatively.
    double scale = 1.0;
    for (const LinTerm& t : c.terms) scale = std::max(scale, std::abs(t.coef));
    if (sum < c.lower - tol * scale || sum > c.upper + tol * scale) {
      return false;
    }
  }
  return true;
}

void Model::CheckInvariants() const {
  for (std::size_t j = 0; j < variables_.size(); ++j) {
    const Variable& v = variables_[j];
    RDFSR_CHECK_LE(v.lower, v.upper)
        << "variable '" << v.name << "' has an empty domain";
    RDFSR_CHECK(v.lower == v.lower && v.upper == v.upper)
        << "variable '" << v.name << "' has a NaN bound";
  }
  auto check_terms = [&](const std::vector<LinTerm>& terms,
                         const char* where) {
    int prev_var = -1;
    for (const LinTerm& t : terms) {
      RDFSR_CHECK_GE(t.var, 0) << where;
      RDFSR_CHECK_LT(static_cast<std::size_t>(t.var), variables_.size())
          << where << " references a variable past the model";
      RDFSR_CHECK_LT(prev_var, t.var)
          << where << " mentions a variable twice (terms must stay merged)";
      RDFSR_CHECK(t.coef != 0.0 && t.coef == t.coef)
          << where << " holds a zero or NaN coefficient";
      prev_var = t.var;
    }
  };
  for (const Constraint& c : constraints_) {
    RDFSR_CHECK_LE(c.lower, c.upper)
        << "constraint '" << c.name << "' has an empty range";
    RDFSR_CHECK(c.lower == c.lower && c.upper == c.upper)
        << "constraint '" << c.name << "' has a NaN bound";
    check_terms(c.terms, c.name.c_str());
  }
  check_terms(objective_, "objective");
}

std::string Model::ToString() const {
  std::ostringstream out;
  out << "model: " << variables_.size() << " vars, " << constraints_.size()
      << " constraints\n";
  auto print_terms = [&](const std::vector<LinTerm>& terms) {
    for (std::size_t i = 0; i < terms.size(); ++i) {
      if (i > 0) out << " + ";
      out << terms[i].coef << "*" << variables_[terms[i].var].name;
    }
  };
  if (!objective_.empty()) {
    out << "min ";
    print_terms(objective_);
    out << "\n";
  }
  for (const Constraint& c : constraints_) {
    out << c.name << ": ";
    if (c.lower > -kInfinity) out << c.lower << " <= ";
    print_terms(c.terms);
    if (c.upper < kInfinity) out << " <= " << c.upper;
    out << "\n";
  }
  return out.str();
}

}  // namespace rdfsr::ilp
