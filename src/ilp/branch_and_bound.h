// Branch-and-bound mixed-integer solver over the LP relaxation.
//
// Depth-first search branching on the most fractional integer variable,
// exploring the nearest-integer side first (an implicit diving heuristic that
// finds feasible partitions quickly — the paper observed the same asymmetry
// with CPLEX: feasible instances solve in milliseconds, infeasibility proofs
// can take hours). Node and wall-clock limits turn the result into kUnknown
// rather than a wrong "infeasible".

#ifndef RDFSR_ILP_BRANCH_AND_BOUND_H_
#define RDFSR_ILP_BRANCH_AND_BOUND_H_

#include <vector>

#include "ilp/model.h"
#include "ilp/simplex.h"

namespace rdfsr::ilp {

/// Outcome of a MIP solve.
enum class MipStatus {
  kOptimal,     ///< Incumbent proven optimal (tree exhausted).
  kFeasible,    ///< Incumbent found but search stopped early (limits).
  kInfeasible,  ///< Tree exhausted without incumbent.
  kUnknown,     ///< Limits hit without incumbent.
};

const char* MipStatusName(MipStatus status);

/// Which resource limit (if any) cut the search short. Distinguishes the
/// kFeasible/kUnknown outcomes: a node-limit kUnknown and a deadline kUnknown
/// call for different operator responses, and the LP iteration limit is a
/// numerical-budget problem rather than a tree-size one.
enum class MipStopReason {
  kNone,              ///< Search ran to its natural end.
  kFirstIncumbent,    ///< stop_at_first_incumbent fired (by design).
  kNodeLimit,         ///< max_nodes reached.
  kTimeLimit,         ///< time_limit_seconds reached.
  kLpIterationLimit,  ///< Some LP relaxation hit SimplexOptions::max_iterations.
  kCancelled,         ///< Cancellation token tripped.
  kDeadline,          ///< Deadline token expired.
};

const char* MipStopReasonName(MipStopReason reason);

/// MIP solution.
struct MipResult {
  MipStatus status = MipStatus::kUnknown;
  std::vector<double> x;
  double objective = 0.0;
  long long nodes = 0;
  double seconds = 0.0;
  /// Why the search stopped early (kNone when it completed). When several
  /// limits fire, the one that actually unwound the search wins; an LP
  /// iteration limit is only reported when nothing stronger stopped it.
  MipStopReason stop_reason = MipStopReason::kNone;
  /// Number of node LPs that hit the simplex iteration limit (those subtrees
  /// are undecided, so optimality/infeasibility can no longer be proven).
  long long lp_iteration_limit_hits = 0;
};

/// Search limits and behavior.
struct MipOptions {
  double integer_tol = 1e-6;
  long long max_nodes = 2000000;
  double time_limit_seconds = 120.0;
  /// Stop at the first integer-feasible point (decision problems — the sort
  /// refinement encoding has a zero objective, so any incumbent answers
  /// "true"). With false, search continues to prove optimality.
  bool stop_at_first_incumbent = true;
  /// Run the root presolve (ilp/presolve.h) before branch-and-bound.
  bool use_presolve = true;
  SimplexOptions lp;
  /// Polled at every node (and, via `lp`, inside each simplex solve): a trip
  /// unwinds the search with the incumbent found so far (anytime semantics).
  /// The token is forwarded into lp.cancel automatically by SolveMip.
  util::CancellationToken cancel;
};

/// Solves the model. With a zero objective this decides feasibility.
MipResult SolveMip(const Model& model, const MipOptions& options = {});

}  // namespace rdfsr::ilp

#endif  // RDFSR_ILP_BRANCH_AND_BOUND_H_
