// Branch-and-bound mixed-integer solver over the LP relaxation.
//
// Depth-first search exploring the nearest-integer side first (an implicit
// diving heuristic that finds feasible partitions quickly — the paper
// observed the same asymmetry with CPLEX: feasible instances solve in
// milliseconds, infeasibility proofs can take hours). Node and wall-clock
// limits turn the result into kUnknown rather than a wrong "infeasible".
//
// The branch variable is chosen by pseudo-costs seeded with fractionality:
// until a variable has branching history the score degenerates to the classic
// most-fractional rule, after which the measured per-unit degradation (LP
// objective for optimization, total-fractionality reduction for
// zero-objective decision instances) takes over. A root-fixing pass
// (ilp/presolve.h PropagateBounds) probes each still-free binary against the
// row implications — in the Section-6 encodings, assigning a subject forces
// its tau-link rows — and permanently fixes variables whose opposite value is
// propagation-infeasible.
//
// Every node LP is warm-started from its parent's optimal basis (the child
// differs by one variable bound, so phase-1 typically needs a handful of
// pivots), and MipOptions::warm_basis lets callers seed the root LP from a
// previous solve of a near-identical instance (the RefinementSolver theta
// grid). The final root basis comes back in MipResult::root_basis.

#ifndef RDFSR_ILP_BRANCH_AND_BOUND_H_
#define RDFSR_ILP_BRANCH_AND_BOUND_H_

#include <vector>

#include "ilp/model.h"
#include "ilp/simplex.h"

namespace rdfsr::ilp {

/// Outcome of a MIP solve.
enum class MipStatus {
  kOptimal,     ///< Incumbent proven optimal (tree exhausted).
  kFeasible,    ///< Incumbent found but search stopped early (limits).
  kInfeasible,  ///< Tree exhausted without incumbent.
  kUnknown,     ///< Limits hit without incumbent.
};

const char* MipStatusName(MipStatus status);

/// Which resource limit (if any) cut the search short. Distinguishes the
/// kFeasible/kUnknown outcomes: a node-limit kUnknown and a deadline kUnknown
/// call for different operator responses, and the LP iteration limit is a
/// numerical-budget problem rather than a tree-size one.
enum class MipStopReason {
  kNone,              ///< Search ran to its natural end.
  kFirstIncumbent,    ///< stop_at_first_incumbent fired (by design).
  kNodeLimit,         ///< max_nodes reached.
  kTimeLimit,         ///< time_limit_seconds reached.
  kLpIterationLimit,  ///< Some LP relaxation hit SimplexOptions::max_iterations.
  kCancelled,         ///< Cancellation token tripped.
  kDeadline,          ///< Deadline token expired.
};

const char* MipStopReasonName(MipStopReason reason);

/// MIP solution.
struct MipResult {
  MipStatus status = MipStatus::kUnknown;
  std::vector<double> x;
  double objective = 0.0;
  long long nodes = 0;
  double seconds = 0.0;
  /// Why the search stopped early (kNone when it completed). When several
  /// limits fire, the one that actually unwound the search wins; an LP
  /// iteration limit is only reported when nothing stronger stopped it.
  MipStopReason stop_reason = MipStopReason::kNone;
  /// Number of node LPs that hit the simplex iteration limit (those subtrees
  /// are undecided, so optimality/infeasibility can no longer be proven).
  long long lp_iteration_limit_hits = 0;
  /// Solve internals aggregated over every node LP (pivots, refactorizations,
  /// basis reuses, eta-file high-water mark).
  LpEngineStats lp_stats;
  /// The root LP's final basis. When presolve ran this lives in the reduced
  /// variable space; feeding it back through MipOptions::warm_basis on a
  /// near-identical instance is safe because mismatched shapes are ignored.
  SimplexBasis root_basis;
};

/// Branch-variable selection rule.
enum class BranchingRule {
  kPseudoCost,       ///< Fractionality-seeded pseudo-costs (default).
  kMostFractional,   ///< Classic most-fractional (the pre-pseudo-cost rule).
};

/// Search limits and behavior.
struct MipOptions {
  double integer_tol = 1e-6;
  long long max_nodes = 2000000;
  double time_limit_seconds = 120.0;
  /// Stop at the first integer-feasible point (decision problems — the sort
  /// refinement encoding has a zero objective, so any incumbent answers
  /// "true"). With false, search continues to prove optimality.
  bool stop_at_first_incumbent = true;
  /// Run the root presolve (ilp/presolve.h) before branch-and-bound.
  bool use_presolve = true;
  BranchingRule branching = BranchingRule::kPseudoCost;
  /// Warm-start every node LP from its parent's optimal basis.
  bool warm_start_lps = true;
  /// Root-fixing pass: probe free binaries by bound propagation before
  /// diving; variables whose opposite value propagates to infeasibility are
  /// fixed for the whole tree.
  bool root_probing = true;
  /// Optional warm-start basis for the root LP (not owned; must outlive the
  /// solve). Ignored when its shape does not match the model branch-and-bound
  /// actually solves (i.e. after presolve).
  const SimplexBasis* warm_basis = nullptr;
  /// Incumbent cutoff: a node is pruned when its LP bound cannot improve on
  /// the incumbent by more than cutoff_abs + cutoff_rel * |incumbent|.
  double cutoff_abs = 1e-9;
  double cutoff_rel = 1e-9;
  SimplexOptions lp;
  /// Polled at every node (and, via `lp`, inside each simplex solve): a trip
  /// unwinds the search with the incumbent found so far (anytime semantics).
  /// The token is forwarded into lp.cancel automatically by SolveMip.
  util::CancellationToken cancel;
};

/// Solves the model. With a zero objective this decides feasibility.
MipResult SolveMip(const Model& model, const MipOptions& options = {});

}  // namespace rdfsr::ilp

#endif  // RDFSR_ILP_BRANCH_AND_BOUND_H_
