// Branch-and-bound mixed-integer solver over the LP relaxation.
//
// Depth-first search branching on the most fractional integer variable,
// exploring the nearest-integer side first (an implicit diving heuristic that
// finds feasible partitions quickly — the paper observed the same asymmetry
// with CPLEX: feasible instances solve in milliseconds, infeasibility proofs
// can take hours). Node and wall-clock limits turn the result into kUnknown
// rather than a wrong "infeasible".

#ifndef RDFSR_ILP_BRANCH_AND_BOUND_H_
#define RDFSR_ILP_BRANCH_AND_BOUND_H_

#include <vector>

#include "ilp/model.h"
#include "ilp/simplex.h"

namespace rdfsr::ilp {

/// Outcome of a MIP solve.
enum class MipStatus {
  kOptimal,     ///< Incumbent proven optimal (tree exhausted).
  kFeasible,    ///< Incumbent found but search stopped early (limits).
  kInfeasible,  ///< Tree exhausted without incumbent.
  kUnknown,     ///< Limits hit without incumbent.
};

const char* MipStatusName(MipStatus status);

/// MIP solution.
struct MipResult {
  MipStatus status = MipStatus::kUnknown;
  std::vector<double> x;
  double objective = 0.0;
  long long nodes = 0;
  double seconds = 0.0;
};

/// Search limits and behavior.
struct MipOptions {
  double integer_tol = 1e-6;
  long long max_nodes = 2000000;
  double time_limit_seconds = 120.0;
  /// Stop at the first integer-feasible point (decision problems — the sort
  /// refinement encoding has a zero objective, so any incumbent answers
  /// "true"). With false, search continues to prove optimality.
  bool stop_at_first_incumbent = true;
  /// Run the root presolve (ilp/presolve.h) before branch-and-bound.
  bool use_presolve = true;
  SimplexOptions lp;
};

/// Solves the model. With a zero objective this decides feasibility.
MipResult SolveMip(const Model& model, const MipOptions& options = {});

}  // namespace rdfsr::ilp

#endif  // RDFSR_ILP_BRANCH_AND_BOUND_H_
