#include "reduction/three_coloring.h"

#include <functional>
#include <string>

#include "util/check.h"

namespace rdfsr::reduction {

UndirectedGraph::UndirectedGraph(int num_nodes) : n_(num_nodes) {
  RDFSR_CHECK_GT(num_nodes, 0);
  adj_.assign(n_, std::vector<bool>(n_, false));
}

void UndirectedGraph::AddEdge(int a, int b) {
  RDFSR_CHECK_GE(a, 0);
  RDFSR_CHECK_LT(a, n_);
  RDFSR_CHECK_GE(b, 0);
  RDFSR_CHECK_LT(b, n_);
  RDFSR_CHECK_NE(a, b) << "self-loops are not allowed in the reduction";
  adj_[a][b] = adj_[b][a] = true;
}

bool UndirectedGraph::HasEdge(int a, int b) const { return adj_[a][b]; }

UndirectedGraph UndirectedGraph::Complete(int num_nodes) {
  UndirectedGraph g(num_nodes);
  for (int a = 0; a < num_nodes; ++a) {
    for (int b = a + 1; b < num_nodes; ++b) g.AddEdge(a, b);
  }
  return g;
}

UndirectedGraph UndirectedGraph::Cycle(int num_nodes) {
  RDFSR_CHECK_GE(num_nodes, 3);
  UndirectedGraph g(num_nodes);
  for (int a = 0; a < num_nodes; ++a) g.AddEdge(a, (a + 1) % num_nodes);
  return g;
}

schema::PropertyMatrix BuildReductionMatrix(const UndirectedGraph& graph) {
  const int n = graph.num_nodes();
  const int cols = 2 * n + 3;

  std::vector<std::string> props = {"sp1", "sp2", "idp"};
  for (int j = 0; j < n; ++j) props.push_back("L" + std::to_string(j));
  for (int j = 0; j < n; ++j) props.push_back("R" + std::to_string(j));

  std::vector<std::string> subjects;
  std::vector<std::vector<int>> rows;
  // Upper section: three groups of auxiliary rows. Group g (0..2) row i:
  // sp1/sp2 pattern per group, idp = 1, and both diagonal blocks.
  const int sp_pattern[3][2] = {{0, 0}, {0, 1}, {1, 0}};
  const char* group_name[3] = {"a", "b", "c"};
  for (int g = 0; g < 3; ++g) {
    for (int i = 0; i < n; ++i) {
      std::vector<int> row(cols, 0);
      row[0] = sp_pattern[g][0];
      row[1] = sp_pattern[g][1];
      row[2] = 1;  // idp
      row[3 + i] = 1;
      row[3 + n + i] = 1;
      rows.push_back(std::move(row));
      subjects.push_back(std::string(group_name[g]) + std::to_string(i));
    }
  }
  // Lower section: node rows. sp1 = sp2 = 1, idp = 0, left diagonal, right
  // block = complemented adjacency.
  for (int i = 0; i < n; ++i) {
    std::vector<int> row(cols, 0);
    row[0] = 1;
    row[1] = 1;
    row[2] = 0;
    row[3 + i] = 1;
    for (int j = 0; j < n; ++j) {
      row[3 + n + j] = (i != j && graph.HasEdge(i, j)) ? 0 : 1;  // complement
    }
    // The diagonal of the complemented adjacency is 1 (no self-loops).
    row[3 + n + i] = 1;
    rows.push_back(std::move(row));
    subjects.push_back("v" + std::to_string(i));
  }
  return schema::PropertyMatrix::FromRows(rows, subjects, props);
}

rules::Rule BuildRuleR0() {
  using namespace rdfsr::rules;  // NOLINT(build/namespaces)
  // Variables: x, c1, c2, y, d1, d2, z, e, u, f1, f2.
  std::vector<FormulaPtr> ante;
  // Keep every variable off the sp1/sp2 marker columns.
  for (const char* v : {"c1", "c2", "d1", "d2", "e", "f1", "f2"}) {
    ante.push_back(Not(PropEqConst(v, "sp1")));
    ante.push_back(Not(PropEqConst(v, "sp2")));
  }
  // x: an idp-column cell in the upper section (val 1).
  ante.push_back(PropEqConst("x", "idp"));
  ante.push_back(ValEqConst("x", 1));
  // c1, c2: two further 1-cells on x's row, distinct from x and each other.
  ante.push_back(Not(VarEq("c1", "x")));
  ante.push_back(SubjEqSubj("c1", "x"));
  ante.push_back(ValEqConst("c1", 1));
  ante.push_back(Not(VarEq("c2", "x")));
  ante.push_back(SubjEqSubj("c2", "x"));
  ante.push_back(ValEqConst("c2", 1));
  ante.push_back(Not(VarEq("c1", "c2")));
  // y: an idp cell in the lower section (val 0); d1/d2 on y's row under
  // c1/c2's columns.
  ante.push_back(PropEqConst("y", "idp"));
  ante.push_back(ValEqConst("y", 0));
  ante.push_back(SubjEqSubj("d1", "y"));
  ante.push_back(PropEqProp("d1", "c1"));
  ante.push_back(SubjEqSubj("d2", "y"));
  ante.push_back(PropEqProp("d2", "c2"));
  // z/e: duplicate-auxiliary-row detector.
  ante.push_back(PropEqConst("z", "idp"));
  ante.push_back(SubjEqSubj("z", "e"));
  ante.push_back(PropEqProp("e", "c1"));
  ante.push_back(Not(VarEq("e", "c1")));
  ante.push_back(ValEqConst("e", 1));
  // u/f1/f2: restrict to columns representing nodes included in the subset.
  ante.push_back(PropEqConst("u", "idp"));
  ante.push_back(ValEqConst("u", 0));
  ante.push_back(SubjEqSubj("u", "f1"));
  ante.push_back(PropEqProp("f1", "c1"));
  ante.push_back(SubjEqSubj("u", "f2"));
  ante.push_back(PropEqProp("f2", "c2"));
  ante.push_back(ValEqConst("f1", 1));
  ante.push_back(ValEqConst("f2", 1));

  FormulaPtr cons = And(Or(ValEqConst("d1", 1), ValEqConst("d2", 1)),
                        ValEqConst("z", 0));
  Result<Rule> rule = Rule::Create(AndAll(ante), std::move(cons), "r0");
  RDFSR_CHECK(rule.ok()) << rule.status().ToString();
  return std::move(rule).value();
}

std::optional<std::vector<int>> ThreeColor(const UndirectedGraph& graph) {
  const int n = graph.num_nodes();
  std::vector<int> color(n, -1);
  std::function<bool(int)> assign = [&](int node) {
    if (node == n) return true;
    for (int c = 0; c < 3; ++c) {
      bool ok = true;
      for (int other = 0; other < node; ++other) {
        if (graph.HasEdge(node, other) && color[other] == c) {
          ok = false;
          break;
        }
      }
      if (ok) {
        color[node] = c;
        if (assign(node + 1)) return true;
        color[node] = -1;
      }
    }
    return false;
  };
  if (assign(0)) return color;
  return std::nullopt;
}

bool IsValidColoring(const UndirectedGraph& graph,
                     const std::vector<int>& coloring) {
  if (static_cast<int>(coloring.size()) != graph.num_nodes()) return false;
  for (int a = 0; a < graph.num_nodes(); ++a) {
    if (coloring[a] < 0 || coloring[a] > 2) return false;
    for (int b = a + 1; b < graph.num_nodes(); ++b) {
      if (graph.HasEdge(a, b) && coloring[a] == coloring[b]) return false;
    }
  }
  return true;
}

std::vector<std::vector<int>> ColoringToRowPartition(
    const UndirectedGraph& graph, const std::vector<int>& coloring) {
  RDFSR_CHECK(IsValidColoring(graph, coloring));
  const int n = graph.num_nodes();
  std::vector<std::vector<int>> parts(3);
  for (int g = 0; g < 3; ++g) {
    for (int i = 0; i < n; ++i) parts[g].push_back(g * n + i);
  }
  for (int i = 0; i < n; ++i) parts[coloring[i]].push_back(3 * n + i);
  return parts;
}

}  // namespace rdfsr::reduction
