// The NP-hardness reduction of Appendix A: 3-COLORABILITY to
// EXISTSSORTREFINEMENT(r0) with theta = 1 and k = 3.
//
// From an undirected loop-free graph G with n nodes the reduction builds a
// 4n x (2n+3) property-structure matrix M_G (three groups of auxiliary rows
// whose sp1/sp2 columns make every row's signature unique, an idp column, two
// diagonal column blocks, and the complemented adjacency matrix in the lower
// right) and a fixed 11-variable rule r0 such that G is 3-colorable iff M_G
// admits a sigma_{r0}-sort refinement with threshold 1 and at most 3 implicit
// sorts. This module constructs both artifacts programmatically, plus a
// direct 3-coloring search used to cross-check the construction in tests.

#ifndef RDFSR_REDUCTION_THREE_COLORING_H_
#define RDFSR_REDUCTION_THREE_COLORING_H_

#include <optional>
#include <vector>

#include "rules/ast.h"
#include "schema/property_matrix.h"

namespace rdfsr::reduction {

/// An undirected graph without self-loops, over nodes 0..n-1.
class UndirectedGraph {
 public:
  explicit UndirectedGraph(int num_nodes);

  void AddEdge(int a, int b);
  bool HasEdge(int a, int b) const;
  int num_nodes() const { return n_; }

  /// The complete graph K_n (3-colorable iff n <= 3).
  static UndirectedGraph Complete(int num_nodes);
  /// The cycle C_n (3-colorable always; 2-colorable iff n even).
  static UndirectedGraph Cycle(int num_nodes);

 private:
  int n_;
  std::vector<std::vector<bool>> adj_;
};

/// Builds M_G: 4n rows x (2n+3) columns. Column names: "sp1", "sp2", "idp",
/// "L0".."L{n-1}" (left diagonal block), "R0".."R{n-1}" (right block holding
/// the complemented adjacency matrix in the lower section). Row (subject)
/// names: "a<i>", "b<i>", "c<i>" for the three auxiliary groups, "v<i>" for
/// the node rows.
schema::PropertyMatrix BuildReductionMatrix(const UndirectedGraph& graph);

/// The fixed rule r0 of Appendix A (equation 2), 11 variables.
rules::Rule BuildRuleR0();

/// Direct backtracking 3-coloring; returns a color (0..2) per node, or
/// nullopt when G is not 3-colorable.
std::optional<std::vector<int>> ThreeColor(const UndirectedGraph& graph);

/// Checks that `coloring` is a proper 3-coloring of `graph`.
bool IsValidColoring(const UndirectedGraph& graph,
                     const std::vector<int>& coloring);

/// The row partition of M_G induced by a coloring, as in the appendix: part i
/// holds auxiliary group i plus the rows of nodes colored i. Rows are indexed
/// as in BuildReductionMatrix.
std::vector<std::vector<int>> ColoringToRowPartition(
    const UndirectedGraph& graph, const std::vector<int>& coloring);

}  // namespace rdfsr::reduction

#endif  // RDFSR_REDUCTION_THREE_COLORING_H_
