#include "api/rdfsr.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "core/report.h"
#include "eval/evaluator.h"
#include "util/deadline.h"
#include "rules/printer.h"
#include "schema/ascii_view.h"

namespace rdfsr::api {

Analysis::Analysis(std::shared_ptr<const Dataset::Rep> rep, rules::Rule rule)
    : rep_(std::move(rep)),
      evaluator_(eval::MakeEvaluator(rule, &rep_->index)) {}

core::RefinementSolver& Analysis::Solver() {
  if (solver_ == nullptr) {
    solver_ =
        std::make_unique<core::RefinementSolver>(evaluator_.get(), options_);
  }
  return *solver_;
}

Analysis& Analysis::With(core::SolverOptions options) {
  options_ = std::move(options);
  solver_.reset();
  return *this;
}

Analysis& Analysis::TimeLimit(double seconds) {
  options_.mip.time_limit_seconds = seconds;
  solver_.reset();
  return *this;
}

Analysis& Analysis::Timeout(double seconds) {
  // Deliberately no solver_.reset(): the deadline is re-armed per query via
  // RefinementSolver::set_deadline, so the incremental caches survive.
  timeout_seconds_ = seconds;
  return *this;
}

Analysis& Analysis::MaxNodes(long long nodes) {
  options_.mip.max_nodes = nodes;
  solver_.reset();
  return *this;
}

Analysis& Analysis::HeuristicThreads(int threads) {
  options_.heuristic_threads = threads;
  solver_.reset();
  return *this;
}

Analysis& Analysis::ThetaStep(double step) {
  // Clamp into the grid's representable range before it reaches the solver:
  // a step below 1/1000 would collapse to the zero rational (and once divided
  // the grid derivation), junk falls back to the paper's 0.01. MakeThetaGrid
  // re-validates, but clamping here keeps options() honest about what runs.
  if (!std::isfinite(step) || step <= 0) {
    step = 0.01;
  }
  options_.theta_step = std::clamp(step, 0.001, 1.0);
  solver_.reset();
  return *this;
}

Analysis& Analysis::GreedyRestarts(int restarts) {
  options_.greedy.restarts = restarts;
  solver_.reset();
  return *this;
}

Analysis& Analysis::Seed(std::uint64_t seed) {
  options_.greedy.seed = seed;
  solver_.reset();
  return *this;
}

double Analysis::Sigma() const { return evaluator_->SigmaAll(); }

double Analysis::Sigma(const std::vector<int>& sort) const {
  return evaluator_->Sigma(sort);
}

core::RefinementSolver& Analysis::ArmedSolver() {
  core::RefinementSolver& solver = Solver();
  // Re-arm the whole-query budget every call: a Deadline is an absolute time
  // point, so reusing the previous query's would charge it for elapsed time.
  solver.set_deadline(timeout_seconds_ > 0
                          ? util::Deadline::After(timeout_seconds_)
                          : util::Deadline());
  return solver;
}

Result<Refinement> Analysis::HighestTheta(int k) {
  if (k < 1) {
    return Status::InvalidArgument("k must be >= 1, got " + std::to_string(k));
  }
  const core::HighestThetaResult result = ArmedSolver().FindHighestTheta(k);
  Refinement refinement;
  refinement.sorts = result.refinement.sorts;
  refinement.theta = result.theta;
  refinement.optimal = result.ceiling_proven;
  refinement.timed_out = result.timed_out;
  refinement.instances = result.instances;
  refinement.seconds = result.seconds;
  return refinement;
}

Result<Refinement> Analysis::LowestK(double theta, int max_k) {
  if (theta < 0.0 || theta > 1.0) {
    return Status::InvalidArgument("theta must be in [0, 1], got " +
                                   std::to_string(theta));
  }
  return LowestK(Rational::FromDouble(theta), max_k);
}

Result<Refinement> Analysis::LowestK(Rational theta, int max_k) {
  if (theta < Rational(0) || theta > Rational(1)) {
    return Status::InvalidArgument("theta must be in [0, 1], got " +
                                   theta.ToString());
  }
  auto result = ArmedSolver().FindLowestK(theta, max_k);
  if (!result.ok()) return result.status();
  Refinement refinement;
  refinement.sorts = result->refinement.sorts;
  refinement.theta = theta;
  refinement.optimal = result->proven_minimal;
  refinement.timed_out = result->timed_out;
  refinement.instances = result->instances;
  refinement.seconds = result->seconds;
  return refinement;
}

std::string Analysis::Summary(const Refinement& refinement) const {
  const core::SortRefinement sorts{refinement.sorts};
  std::string out = sorts.Summary(rep_->index);
  out += ", sigma >= " + refinement.theta.ToString();
  if (refinement.optimal) out += " (optimal)";
  return out;
}

std::string Analysis::Render(const Refinement& refinement,
                             std::size_t max_rows) const {
  schema::AsciiViewOptions options;
  options.max_rows = max_rows;
  return schema::RenderRefinementView(rep_->index, refinement.sorts, options);
}

std::string Analysis::Report(const Refinement& refinement) const {
  return core::RenderReport(rep_->index,
                            core::SortRefinement{refinement.sorts});
}

const rules::Rule& Analysis::rule() const { return evaluator_->rule(); }

std::string Analysis::RuleText() const { return rules::ToString(rule()); }

}  // namespace rdfsr::api
