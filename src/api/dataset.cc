#include "api/rdfsr.h"

#include <memory>
#include <utility>

#include "rdf/ntriples.h"
#include "schema/ascii_view.h"
#include "schema/index_builder.h"
#include "util/deadline.h"
#include "util/failpoint.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace rdfsr::api {

Result<Dataset> Dataset::Build(std::shared_ptr<const rdf::Graph> graph,
                               const std::string& sort,
                               const DatasetOptions& options,
                               util::ThreadPool* pool, int parse_threads,
                               const util::CancellationToken& cancel) {
  RDFSR_FAILPOINT("schema.index-build");
  auto rep = std::make_shared<Rep>();
  rep->parse_threads = parse_threads;
  // Both paths stream (subject, property) pairs straight into the signature
  // index — no dense PropertyMatrix, and slicing never materializes the
  // slice as a second graph (membership comes from the rdf:type postings).
  if (!sort.empty()) {
    std::size_t slice_triples = 0;
    rep->index = schema::IndexBuilder::FromSortSlice(
        *graph, sort, options.keep_subject_names, &slice_triples, pool, cancel);
    // A tripped token leaves a structurally valid but incomplete index:
    // discard it rather than hand out a silently truncated dataset.
    if (cancel.stop_requested()) return cancel.status();
    if (slice_triples == 0) {
      return Status::NotFound("no subjects of sort <" + sort + ">");
    }
    rep->sort = sort;
    rep->triples = slice_triples;
  } else {
    rep->index = schema::IndexBuilder::FromGraph(
        *graph, options.keep_subject_names, pool, cancel);
    if (cancel.stop_requested()) return cancel.status();
    rep->triples = graph->size();
  }
  if (options.keep_graph) rep->graph = std::move(graph);
  return Dataset(std::move(rep));
}

Result<Dataset> Dataset::FromNTriplesFile(const std::string& path,
                                          const DatasetOptions& options) {
  auto text = rdf::ReadFileToString(path);
  if (!text.ok()) return text.status();
  return FromNTriplesText(*text, options);
}

Result<Dataset> Dataset::FromNTriplesText(std::string_view text,
                                          const DatasetOptions& options) {
  // The deadline covers the whole chain: parse, shard merge, index build.
  const util::Deadline deadline = util::Deadline::AfterMillis(options.deadline_ms);
  rdf::ParseOptions parse_options;
  parse_options.threads = options.parse_threads;
  parse_options.max_errors = options.max_errors;
  parse_options.diagnostics = options.diagnostics;
  parse_options.cancel = deadline.token();
  const int effective = rdf::EffectiveParseThreads(parse_options, text.size());
  parse_options.threads = effective;
  // One pool carries the whole load: sharded parse, shard merge, and the
  // index build's sort / grouping stages all draw from the same workers.
  std::unique_ptr<util::ThreadPool> pool;
  if (effective > 1) {
    pool = std::make_unique<util::ThreadPool>(effective - 1);
    parse_options.pool = pool.get();
  }
  rdf::Graph parsed;
  Status st = rdf::ParseNTriplesInto(text, &parsed, parse_options);
  if (!st.ok()) return st;
  parsed.TypePostings();  // warm while exclusively owned, as in FromGraph
  return Build(std::make_shared<const rdf::Graph>(std::move(parsed)),
               options.sort, options, pool.get(), effective, deadline.token());
}

Result<Dataset> Dataset::FromGraph(rdf::Graph graph,
                                   const DatasetOptions& options) {
  // Warm the lazy rdf:type posting cache while this call still owns the
  // graph exclusively: the graph is immutable once shared, so later const
  // reads (Build, Slice, SortIris — possibly from several threads sharing
  // the Dataset) only ever hit the already-built postings.
  graph.TypePostings();
  return Build(std::make_shared<const rdf::Graph>(std::move(graph)),
               options.sort, options);
}

Dataset Dataset::FromIndex(schema::SignatureIndex index) {
  auto rep = std::make_shared<Rep>();
  rep->index = std::move(index);
  return Dataset(std::move(rep));
}

Result<Dataset> Dataset::Slice(const std::string& sort_iri,
                               const DatasetOptions& options) const {
  if (rep_->graph == nullptr) {
    return Status::InvalidArgument(
        "dataset retains no graph to slice (built FromIndex or with "
        "keep_graph = false)");
  }
  return Build(rep_->graph, sort_iri, options);  // shares the parent graph
}

std::vector<std::string> Dataset::SortIris() const {
  std::vector<std::string> iris;
  if (rep_->graph == nullptr) return iris;
  for (rdf::TermId id : rep_->graph->SortConstants()) {
    iris.push_back(rep_->graph->dict().term(id).lexical);
  }
  return iris;
}

std::size_t Dataset::num_triples() const { return rep_->triples; }

std::int64_t Dataset::num_subjects() const {
  return rep_->index.total_subjects();
}

std::size_t Dataset::num_properties() const {
  return rep_->index.num_properties();
}

std::size_t Dataset::num_signatures() const {
  return rep_->index.num_signatures();
}

const std::vector<std::string>& Dataset::property_names() const {
  return rep_->index.property_names();
}

const std::string& Dataset::sort() const { return rep_->sort; }

int Dataset::effective_parse_threads() const { return rep_->parse_threads; }

int Dataset::SignatureOf(const std::string& subject_name) const {
  return rep_->index.FindSubjectSignature(subject_name);
}

std::string Dataset::Describe() const {
  std::string out = FormatCount(rep_->index.total_subjects()) + " subjects, " +
                    std::to_string(rep_->index.num_properties()) +
                    " properties, " +
                    std::to_string(rep_->index.num_signatures()) +
                    " signatures";
  if (!rep_->sort.empty()) out += " (sort <" + rep_->sort + ">)";
  return out;
}

std::string Dataset::RenderView(std::size_t max_rows) const {
  schema::AsciiViewOptions options;
  options.max_rows = max_rows;
  return schema::RenderSignatureView(rep_->index, options);
}

const schema::SignatureIndex& Dataset::index() const { return rep_->index; }

Result<Analysis> Dataset::Analyze(const std::string& rule_spec) const {
  auto rule = ResolveRuleSpec(rule_spec);
  if (!rule.ok()) return rule.status();
  return Analysis(rep_, *std::move(rule));
}

Analysis Dataset::Analyze(rules::Rule rule) const {
  return Analysis(rep_, std::move(rule));
}

}  // namespace rdfsr::api
