// Public façade for the rdfsr library — the one header applications include.
//
// The paper's pipeline (Sections 2-7 of Arenas et al., PVLDB 2014) is: load
// RDF, slice a sort D_t, build the property-structure view M(D) and its
// signature index, evaluate sigma under a rule, and search for a sort
// refinement. Internally that spans six layers (rdf -> schema -> rules ->
// eval -> core/ilp); this header collapses it to two value types:
//
//   Dataset   owns the loading chain: N-Triples file/string -> rdf::Graph ->
//             optional sort slice -> SignatureIndex (streamed through
//             schema::IndexBuilder — no dense matrix intermediate). Copies
//             share the immutable state, so Dataset is cheap to pass around
//             and anything derived from it (an Analysis) keeps the underlying
//             index alive on its own — no borrowed-pointer lifetime chains.
//
//   Analysis  binds one rule (builtin, spec string, or parsed custom text) to
//             one Dataset, owns the evaluator and solver it needs, and
//             answers Sigma(), HighestTheta(k), LowestK(theta) and Report()
//             with SolverOptions-backed fluent configuration.
//
// Fallible operations return Result<T> (util/status.h) instead of throwing.
//
//   auto people = api::Dataset::FromNTriplesFile("data.nt",
//                                                {.sort = "http://x/Person"});
//   if (!people.ok()) return Fail(people.status());
//   auto cov = people->Analyze("cov");
//   auto best = cov->TimeLimit(10).HighestTheta(2);
//   std::cout << cov->Render(*best) << cov->Report(*best);
//
// The `rdfsr` CLI (tools/rdfsr_cli.cc) is a thin shell over this API, and
// every program in examples/ uses it exclusively.

#ifndef RDFSR_API_RDFSR_H_
#define RDFSR_API_RDFSR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/solver.h"
#include "rdf/graph.h"
#include "rdf/ntriples.h"
#include "rules/ast.h"
#include "schema/signature_index.h"
#include "util/rational.h"
#include "util/status.h"

namespace rdfsr::api {

class Analysis;

/// Knobs for the Dataset loading chain.
struct DatasetOptions {
  /// When non-empty, analyze only the sort slice D_t of this type IRI
  /// (subjects declared via rdf:type; the type triples themselves are
  /// excluded from the view, as in the paper's datasets).
  std::string sort;
  /// Retain the subject-name -> signature map. Needed by rules mentioning
  /// subj(c) = <constant> and by SignatureOf(); costs one string per subject.
  bool keep_subject_names = true;
  /// Retain the parsed graph so Slice() / SortIris() work after loading.
  /// Turn off to drop the triples once the index is built.
  bool keep_graph = true;
  /// Parser threads for FromNTriplesFile / FromNTriplesText. 1 (the default)
  /// parses sequentially; higher values shard the input at line boundaries
  /// and merge per-shard dictionaries in chunk order, which produces the
  /// exact same dataset (term ids, triple order, index) as sequential — a
  /// pure throughput knob for multi-million-triple files. Values < 1 mean
  /// one thread per hardware thread; the count is capped so every chunk
  /// keeps at least ~1 MiB of input (tiny files parse on fewer threads).
  /// The clamped count the load actually used is
  /// Dataset::effective_parse_threads(); the same worker pool is reused for
  /// the signature-index build stages.
  int parse_threads = 1;
  /// Wall-clock budget for the load chain (parse, shard merge, index build)
  /// in milliseconds; <= 0 (the default) means unlimited. Overrun fails the
  /// load with kDeadlineExceeded — no partially built Dataset ever escapes.
  std::int64_t deadline_ms = 0;
  /// Tolerate up to this many malformed lines (0, the default, fails on the
  /// first): bad lines are skipped and the graph is bit-identical to parsing
  /// the pre-cleaned input. Exceeding the budget fails with kParseError.
  std::size_t max_errors = 0;
  /// When non-null and max_errors > 0, receives one line-numbered diagnostic
  /// per skipped line (at most max_errors entries, in input order).
  std::vector<rdf::ParseDiagnostic>* diagnostics = nullptr;
};

/// A sort refinement found by Analysis::HighestTheta or Analysis::LowestK:
/// a partition of the dataset's signature ids into implicit sorts, each with
/// sigma >= theta (Definition 4.2).
struct Refinement {
  /// Signature ids of the underlying Dataset, one vector per implicit sort.
  std::vector<std::vector<int>> sorts;
  /// The guaranteed threshold: every sort has sigma >= theta (exact).
  Rational theta;
  /// Whether the search proved optimality (highest-theta: the next step up
  /// was proven infeasible; lowest-k: all smaller k proven infeasible) rather
  /// than stopping at solver limits.
  bool optimal = false;
  /// The search was cut by Analysis::Timeout: the refinement is the best
  /// incumbent found before the cut (implies !optimal — thresholds/sizes
  /// beyond it were never decided).
  bool timed_out = false;
  int instances = 0;  ///< decision instances solved by the search
  double seconds = 0.0;

  std::size_t num_sorts() const { return sorts.size(); }
};

/// An immutable loaded dataset: the signature index plus (optionally) the
/// graph it came from. Value semantics — copies share state.
class Dataset {
 public:
  /// Loads an N-Triples file from disk and builds the index.
  static Result<Dataset> FromNTriplesFile(const std::string& path,
                                          const DatasetOptions& options = {});

  /// Parses N-Triples text and builds the index.
  static Result<Dataset> FromNTriplesText(std::string_view text,
                                          const DatasetOptions& options = {});

  /// Builds a dataset from an already-parsed graph.
  static Result<Dataset> FromGraph(rdf::Graph graph,
                                   const DatasetOptions& options = {});

  /// Wraps an existing signature index (synthetic generators, index IO).
  /// The dataset has no graph, so Slice() and SortIris() are unavailable.
  static Dataset FromIndex(schema::SignatureIndex index);

  /// The sort slice D_t as a new Dataset sharing this dataset's graph.
  /// Fails with NotFound when no subject has the sort, InvalidArgument when
  /// the graph was not retained. `options.sort` is ignored — the explicit
  /// `sort_iri` argument is the sort.
  Result<Dataset> Slice(const std::string& sort_iri,
                        const DatasetOptions& options = {}) const;

  /// All sort IRIs t appearing in (s, rdf:type, t) triples, or empty when the
  /// graph was not retained.
  std::vector<std::string> SortIris() const;

  /// Binds a rule to this dataset. The spec is either a builtin name —
  /// "cov", "sim", "cov-ignoring:p1,p2,...", "dep:p1,p2", "symdep:p1,p2",
  /// "depdisj:p1,p2" — or free text in the Section 3 rule language.
  Result<Analysis> Analyze(const std::string& rule_spec) const;

  /// Binds an already-constructed rule to this dataset.
  Analysis Analyze(rules::Rule rule) const;

  // --- shape ---------------------------------------------------------------
  std::size_t num_triples() const;  ///< 0 when built FromIndex / graph dropped
  std::int64_t num_subjects() const;
  std::size_t num_properties() const;
  std::size_t num_signatures() const;
  const std::vector<std::string>& property_names() const;
  /// The sort IRI this dataset was sliced to, or empty for the whole graph.
  const std::string& sort() const;

  /// Signature id of a named subject, or -1 when unknown (requires
  /// keep_subject_names).
  int SignatureOf(const std::string& subject_name) const;

  /// Parser threads the load actually used after clamping
  /// DatasetOptions::parse_threads (< 1 resolved to the hardware
  /// concurrency, then capped at the input's chunk count). 1 for datasets
  /// built FromGraph / FromIndex or sliced from another dataset.
  int effective_parse_threads() const;

  /// One-line shape summary: "4 subjects, 3 properties, 2 signatures".
  std::string Describe() const;

  /// ASCII signature view (the Figure 2/3 bitmap rendering).
  std::string RenderView(std::size_t max_rows = 24) const;

  /// Escape hatch: the underlying index, for interop with internal layers.
  const schema::SignatureIndex& index() const;

 private:
  friend class Analysis;

  // Immutable shared state; Analyses take their own reference.
  struct Rep {
    schema::SignatureIndex index;
    std::shared_ptr<const rdf::Graph> graph;  // null when dropped / FromIndex
    std::string sort;                         // sliced sort IRI, or empty
    std::size_t triples = 0;
    int parse_threads = 1;  // effective parser thread count of the load
  };

  explicit Dataset(std::shared_ptr<const Rep> rep) : rep_(std::move(rep)) {}

  /// The one loading chain: slices `graph` to `sort` (when non-empty), builds
  /// the index, and assembles the Rep. Shared by the From* factories and
  /// Slice(). `pool`, when non-null, parallelizes the index build stages
  /// (same bit-identical result); `parse_threads` is recorded for
  /// effective_parse_threads().
  static Result<Dataset> Build(std::shared_ptr<const rdf::Graph> graph,
                               const std::string& sort,
                               const DatasetOptions& options,
                               util::ThreadPool* pool = nullptr,
                               int parse_threads = 1,
                               const util::CancellationToken& cancel = {});

  std::shared_ptr<const Rep> rep_;
};

/// One (dataset, rule) pair: owns the evaluator and refinement solver, and
/// answers structuredness and refinement queries. Created via
/// Dataset::Analyze; keeps the dataset state alive independently of the
/// originating Dataset. Fluent setters return *this so configuration chains:
///
///   analysis.TimeLimit(5).GreedyRestarts(8).HighestTheta(2)
class Analysis {
 public:
  Analysis(Analysis&&) = default;
  Analysis& operator=(Analysis&&) = default;

  // --- fluent configuration (SolverOptions-backed) -------------------------
  /// Replaces the whole solver configuration.
  Analysis& With(core::SolverOptions options);
  /// Exact-solver wall-clock budget per decision instance, in seconds.
  Analysis& TimeLimit(double seconds);
  /// Whole-query wall-clock budget in seconds (<= 0 disables). Anytime
  /// semantics: HighestTheta still succeeds with the best incumbent found
  /// before the cut (Refinement::timed_out set, never optimal); LowestK
  /// fails with kDeadlineExceeded. Unlike the other setters this does NOT
  /// rebuild the solver — the deadline is re-armed per query, so the
  /// incremental caches survive.
  Analysis& Timeout(double seconds);
  /// Exact-solver node budget per decision instance.
  Analysis& MaxNodes(long long nodes);
  /// Worker threads for the agglomerative heuristics (< 1 = one per
  /// hardware thread). Results are bit-identical for every value; see
  /// core::SolverOptions::heuristic_threads.
  Analysis& HeuristicThreads(int threads);
  /// Step size of the sequential highest-theta search (paper: 0.01).
  /// Clamped into [0.001, 1]; non-finite or non-positive values fall back to
  /// 0.01 (the theta grid is derived in exact rationals with denominators up
  /// to 1000, so smaller steps are not representable).
  Analysis& ThetaStep(double step);
  /// Restarts of the greedy primal heuristic.
  Analysis& GreedyRestarts(int restarts);
  /// Deterministic seed for the greedy heuristic.
  Analysis& Seed(std::uint64_t seed);
  const core::SolverOptions& options() const { return options_; }

  // --- queries -------------------------------------------------------------
  /// sigma_r over the whole dataset.
  double Sigma() const;
  /// sigma_r over one implicit sort (signature ids of the dataset).
  double Sigma(const std::vector<int>& sort) const;

  /// Best threshold achievable with k implicit sorts (the paper's
  /// highest-theta search). Fails with InvalidArgument when k < 1.
  Result<Refinement> HighestTheta(int k);

  /// Smallest k admitting a refinement with threshold theta; searches k
  /// upward to max_k (default: number of signatures). Fails with
  /// InvalidArgument on a bad theta and NotFound when no k up to the cap
  /// works.
  Result<Refinement> LowestK(double theta, int max_k = -1);
  Result<Refinement> LowestK(Rational theta, int max_k = -1);

  // --- rendering -----------------------------------------------------------
  /// One-line description: "{2 sorts: 1+1 signatures}, theta = 1".
  std::string Summary(const Refinement& refinement) const;
  /// ASCII rendering of the refinement (the Figure 4-7 bitmaps).
  std::string Render(const Refinement& refinement,
                     std::size_t max_rows = 24) const;
  /// The per-sort schema report (universal / common / absent /
  /// discriminating properties, Section 7.1.1 reading).
  std::string Report(const Refinement& refinement) const;

  /// The bound rule and its concrete syntax.
  const rules::Rule& rule() const;
  std::string RuleText() const;

  /// The dataset state this analysis is bound to.
  const schema::SignatureIndex& index() const { return rep_->index; }

 private:
  friend class Dataset;

  Analysis(std::shared_ptr<const Dataset::Rep> rep, rules::Rule rule);

  /// The solver, (re)built on demand after configuration changes.
  core::RefinementSolver& Solver();
  /// Solver() with the Timeout() deadline freshly armed for one query.
  core::RefinementSolver& ArmedSolver();

  std::shared_ptr<const Dataset::Rep> rep_;
  std::unique_ptr<const eval::Evaluator> evaluator_;
  core::SolverOptions options_;
  double timeout_seconds_ = 0.0;  // whole-query deadline; re-armed per query
  std::unique_ptr<core::RefinementSolver> solver_;  // lazy; reset by setters
};

/// Resolves a rule spec string — builtin name, builtin-family shorthand, or
/// Section 3 rule text — to a rule. Shared by Dataset::Analyze and the CLI.
Result<rules::Rule> ResolveRuleSpec(const std::string& spec);

}  // namespace rdfsr::api

#endif  // RDFSR_API_RDFSR_H_
