#include <string>
#include <vector>

#include "api/rdfsr.h"
#include "rules/builtins.h"
#include "rules/parser.h"

namespace rdfsr::api {

namespace {

/// Splits "p1,p2,..." on commas; empty segments are dropped.
std::vector<std::string> SplitProperties(const std::string& body) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= body.size()) {
    const std::size_t comma = body.find(',', start);
    const std::size_t end = comma == std::string::npos ? body.size() : comma;
    if (end > start) parts.push_back(body.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return parts;
}

/// A property-pair builtin spec "name:p1,p2".
Result<std::vector<std::string>> PairArgs(const std::string& family,
                                          const std::string& body) {
  std::vector<std::string> parts = SplitProperties(body);
  if (parts.size() != 2) {
    return Status::InvalidArgument("rule spec '" + family +
                                   ":' needs exactly two comma-separated "
                                   "properties, got '" + body + "'");
  }
  return parts;
}

}  // namespace

Result<rules::Rule> ResolveRuleSpec(const std::string& spec) {
  if (spec.empty()) return Status::InvalidArgument("empty rule spec");
  if (spec == "cov") return rules::CovRule();
  if (spec == "sim") return rules::SimRule();
  const std::size_t colon = spec.find(':');
  if (colon != std::string::npos) {
    const std::string family = spec.substr(0, colon);
    const std::string body = spec.substr(colon + 1);
    if (family == "cov-ignoring") {
      const std::vector<std::string> ignored = SplitProperties(body);
      if (ignored.empty()) {
        return Status::InvalidArgument(
            "rule spec 'cov-ignoring:' needs at least one property");
      }
      return rules::CovRuleIgnoring(ignored);
    }
    if (family == "dep") {
      auto args = PairArgs(family, body);
      if (!args.ok()) return args.status();
      return rules::DepRule((*args)[0], (*args)[1]);
    }
    if (family == "symdep") {
      auto args = PairArgs(family, body);
      if (!args.ok()) return args.status();
      return rules::SymDepRule((*args)[0], (*args)[1]);
    }
    if (family == "depdisj") {
      auto args = PairArgs(family, body);
      if (!args.ok()) return args.status();
      return rules::DepDisjunctiveRule((*args)[0], (*args)[1]);
    }
  }
  // Anything else is Section 3 rule text.
  return rules::ParseRule(spec, "user");
}

}  // namespace rdfsr::api
