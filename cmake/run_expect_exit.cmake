# Test runner: executes CMD (a shell-style command string) and fails unless
# the process exits with code EXPECTED. Needed because plain add_test() can
# only assert exit code 0, and the CLI's exit-code taxonomy (0 ok, 2 usage,
# 3 data error, 4 deadline/limit, 5 internal) is part of its contract.
#
#   cmake -DCMD="<binary> <args...>" -DEXPECTED=<code> \
#         [-DENVVAR=NAME=VALUE] -P run_expect_exit.cmake
#
# ENVVAR optionally injects one environment variable (used by the fault
# tests to arm $RDFSR_FAILPOINTS for the child only).

if(NOT DEFINED CMD OR NOT DEFINED EXPECTED)
  message(FATAL_ERROR "run_expect_exit.cmake needs -DCMD=... and -DEXPECTED=...")
endif()

separate_arguments(cmd_list UNIX_COMMAND "${CMD}")
if(DEFINED ENVVAR AND NOT ENVVAR STREQUAL "")
  set(cmd_list ${CMAKE_COMMAND} -E env "${ENVVAR}" ${cmd_list})
endif()

execute_process(
  COMMAND ${cmd_list}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)

# String compare, not numeric: a crashed child reports "Segmentation fault"
# or similar here, which must fail the test rather than coerce to a number.
if(NOT rc STREQUAL "${EXPECTED}")
  message(FATAL_ERROR
          "expected exit code ${EXPECTED}, got '${rc}'\n"
          "command: ${CMD}\n--- stdout ---\n${out}\n--- stderr ---\n${err}")
endif()
