# Fixture generator for the CLI exit-code tests:
#   OUT     — a ~300k-line (~13 MB) well-formed N-Triples file, big enough
#             that (a) --timeout 0.001 always cuts the run and (b) a
#             2-thread parse really shards (the sharded-merge fault tests
#             need the merge path).
#   BAD_OUT — a small file with two malformed lines for the tolerant-parse
#             exit-code tests.
#
#   cmake -DOUT=<path> -DBAD_OUT=<path> -P make_stress_nt.cmake
#
# Deterministic output; regenerating is cheap enough to run as a
# FIXTURES_SETUP test on every ctest invocation.

if(NOT DEFINED OUT OR NOT DEFINED BAD_OUT)
  message(FATAL_ERROR "make_stress_nt.cmake needs -DOUT=... and -DBAD_OUT=...")
endif()

# 1000 distinct lines, repeated 300x. Repeated triples are fine: the parser
# still has to tokenize every line, which is the work the timeout must cut.
set(block "")
foreach(i RANGE 999)
  math(EXPR s "${i} % 37")
  math(EXPR p "${i} % 7")
  string(APPEND block
         "<http://stress/s${s}> <http://stress/p${p}> \"v${i}\" .\n")
endforeach()
string(REPEAT "${block}" 300 text)
file(WRITE "${OUT}" "${text}")

file(WRITE "${BAD_OUT}"
"<http://x/s1> <http://x/p> \"a\" .
this line is not a triple
<http://x/s2> <http://x/p> \"b\" .
neither is this one
<http://x/s3> <http://x/p> \"c\" .
")
