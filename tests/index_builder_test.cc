// Equivalence tests for the streaming IndexBuilder: on any graph, the
// pairs -> sort -> group pipeline must produce a SignatureIndex canonically
// identical to the legacy PropertyMatrix::FromGraph + SignatureIndex::FromMatrix
// reference path — including property column order, signature order, and
// subject-name maps — across duplicate triples, blank nodes, multi-sort
// membership, and sort slices.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "gen/random_graph.h"
#include "rdf/graph.h"
#include "rdf/ntriples.h"
#include "rdf/vocab.h"
#include "schema/index_builder.h"
#include "schema/property_matrix.h"
#include "schema/signature_index.h"
#include "util/thread_pool.h"

namespace rdfsr::schema {
namespace {

/// Reference implementation: the legacy dense-matrix chain.
SignatureIndex LegacyFromGraph(const rdf::Graph& graph, bool keep_names) {
  return SignatureIndex::FromMatrix(PropertyMatrix::FromGraph(graph),
                                    keep_names);
}

/// Asserts canonical identity of two indexes: shape, property columns,
/// signature order/supports/counts, and (when kept) subject-name maps.
void ExpectIndexesIdentical(const SignatureIndex& actual,
                            const SignatureIndex& expected,
                            const std::vector<std::string>& subject_names) {
  ASSERT_EQ(actual.num_properties(), expected.num_properties());
  EXPECT_EQ(actual.property_names(), expected.property_names());
  ASSERT_EQ(actual.num_signatures(), expected.num_signatures());
  EXPECT_EQ(actual.total_subjects(), expected.total_subjects());
  for (std::size_t i = 0; i < actual.num_signatures(); ++i) {
    EXPECT_EQ(actual.signature(i).count, expected.signature(i).count)
        << "signature " << i;
    EXPECT_EQ(actual.signature(i).support(), expected.signature(i).support())
        << "signature " << i;
  }
  for (const std::string& name : subject_names) {
    EXPECT_EQ(actual.FindSubjectSignature(name),
              expected.FindSubjectSignature(name))
        << "subject " << name;
  }
}

/// All subject names of a graph (dictionary lexical forms).
std::vector<std::string> SubjectNames(const rdf::Graph& graph) {
  std::vector<std::string> names;
  for (rdf::TermId s : graph.subjects()) {
    names.push_back(graph.dict().term(s).lexical);
  }
  return names;
}

TEST(IndexBuilderTest, MatchesLegacyOnTinyGraph) {
  auto g = rdf::ParseNTriples(
      "<http://x/a> <http://x/p> <http://x/o> .\n"
      "<http://x/a> <http://x/q> \"v\" .\n"
      "<http://x/b> <http://x/p> \"w\" .\n"
      "_:blank <http://x/q> <http://x/a> .\n");
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  ExpectIndexesIdentical(IndexBuilder::FromGraph(*g, true),
                         LegacyFromGraph(*g, true), SubjectNames(*g));
}

TEST(IndexBuilderTest, CollapsesDuplicatePairMentions) {
  IndexBuilder builder;
  rdf::Dictionary dict;
  const rdf::TermId s = dict.InternIri("http://x/s");
  const rdf::TermId p = dict.InternIri("http://x/p");
  const rdf::TermId q = dict.InternIri("http://x/q");
  builder.Add(s, p);
  builder.Add(s, p);  // duplicate mention (e.g. two objects for one property)
  builder.Add(s, q);
  builder.Add(s, p);
  EXPECT_EQ(builder.num_pairs(), 4u);
  const SignatureIndex index = builder.Build(dict, true);
  ASSERT_EQ(index.num_signatures(), 1u);
  EXPECT_EQ(index.signature(0).count, 1);
  EXPECT_EQ(index.signature(0).support(), (std::vector<int>{0, 1}));
  EXPECT_EQ(index.total_subjects(), 1);
}

TEST(IndexBuilderTest, PropertyColumnsFollowFirstAppearance) {
  auto g = rdf::ParseNTriples(
      "<http://x/a> <http://x/z> \"1\" .\n"
      "<http://x/b> <http://x/a> \"2\" .\n"
      "<http://x/a> <http://x/m> \"3\" .\n");
  ASSERT_TRUE(g.ok());
  const SignatureIndex index = IndexBuilder::FromGraph(*g, false);
  EXPECT_EQ(index.property_names(),
            (std::vector<std::string>{"http://x/z", "http://x/a",
                                      "http://x/m"}));
}

TEST(IndexBuilderTest, RandomizedEquivalenceWholeGraph) {
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    gen::RandomGraphSpec spec;
    spec.num_subjects = 10 + static_cast<int>(seed % 30);
    spec.num_properties = 3 + static_cast<int>(seed % 9);
    spec.num_sorts = static_cast<int>(seed % 4);  // includes sortless graphs
    spec.density = 0.15 + 0.07 * static_cast<double>(seed % 10);
    spec.seed = seed;
    const rdf::Graph g = gen::GenerateRandomGraph(spec);
    if (g.empty()) continue;
    SCOPED_TRACE("seed " + std::to_string(seed));
    ExpectIndexesIdentical(IndexBuilder::FromGraph(g, true),
                           LegacyFromGraph(g, true), SubjectNames(g));
  }
}

TEST(IndexBuilderTest, RandomizedEquivalenceSortSlices) {
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    gen::RandomGraphSpec spec;
    spec.num_subjects = 12 + static_cast<int>(seed % 20);
    spec.num_properties = 4 + static_cast<int>(seed % 6);
    spec.num_sorts = 1 + static_cast<int>(seed % 3);
    spec.multi_sort_probability = 0.5;
    spec.seed = seed * 977;
    const rdf::Graph g = gen::GenerateRandomGraph(spec);
    for (rdf::TermId sort_id : g.SortConstants()) {
      const std::string sort = g.dict().term(sort_id).lexical;
      const rdf::Graph slice = g.SortSlice(sort);
      std::size_t slice_triples = 0;
      const SignatureIndex streaming =
          IndexBuilder::FromSortSlice(g, sort, true, &slice_triples);
      EXPECT_EQ(slice_triples, slice.size()) << "sort " << sort;
      if (slice.empty()) {
        EXPECT_EQ(streaming.num_signatures(), 0u);
        continue;
      }
      SCOPED_TRACE("seed " + std::to_string(seed) + " sort " + sort);
      ExpectIndexesIdentical(streaming, LegacyFromGraph(slice, true),
                             SubjectNames(slice));
    }
  }
}

TEST(IndexBuilderTest, UnknownSortYieldsEmptyIndex) {
  auto g = rdf::ParseNTriples("<http://x/a> <http://x/p> \"v\" .\n");
  ASSERT_TRUE(g.ok());
  std::size_t slice_triples = 77;
  const SignatureIndex index =
      IndexBuilder::FromSortSlice(*g, "http://x/Nope", true, &slice_triples);
  EXPECT_EQ(index.num_signatures(), 0u);
  EXPECT_EQ(slice_triples, 0u);
}

TEST(IndexBuilderTest, SortSliceExcludesTypeTriplesAndUntypedSubjects) {
  auto g = rdf::ParseNTriples(
      "<http://x/a> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> "
      "<http://x/T> .\n"
      "<http://x/a> <http://x/p> \"v\" .\n"
      "<http://x/b> <http://x/p> \"w\" .\n");  // untyped: not in the slice
  ASSERT_TRUE(g.ok());
  std::size_t slice_triples = 0;
  const SignatureIndex index =
      IndexBuilder::FromSortSlice(*g, "http://x/T", true, &slice_triples);
  EXPECT_EQ(slice_triples, 1u);
  EXPECT_EQ(index.total_subjects(), 1);
  EXPECT_EQ(index.property_names(),
            (std::vector<std::string>{"http://x/p"}));
  EXPECT_EQ(index.FindSubjectSignature("http://x/a"), 0);
  EXPECT_EQ(index.FindSubjectSignature("http://x/b"), -1);
}

TEST(IndexBuilderTest, IntermediateStateIsPairsNotDenseMatrix) {
  // A tall sparse graph: many subjects, many properties, one pair each. The
  // dense matrix would be subjects x properties cells; the builder must stay
  // linear in pairs.
  rdf::Graph g;
  const int n = 256;
  for (int i = 0; i < n; ++i) {
    g.AddLiteral("http://x/s" + std::to_string(i),
                 "http://x/p" + std::to_string(i), "v");
  }
  IndexBuilder builder;
  for (const rdf::Triple& t : g.triples()) builder.Add(t.subject, t.predicate);
  const std::size_t dense_cells =
      static_cast<std::size_t>(n) * static_cast<std::size_t>(n);
  EXPECT_LT(builder.intermediate_bytes(), dense_cells);
  ExpectIndexesIdentical(builder.Build(g.dict(), false),
                         LegacyFromGraph(g, false), {});
}

TEST(IndexBuilderTest, PooledBuildMatchesSerialAboveCutoff) {
  // Enough (subject, property) pairs to cross the parallel sort/grouping
  // cutoff in Build (kParallelPairCutoff = 4096); the pooled build must be
  // canonically identical to the serial one for any lane count.
  gen::RandomGraphSpec spec;
  spec.num_subjects = 900;
  spec.num_properties = 12;
  spec.density = 0.6;
  spec.seed = 17;
  const rdf::Graph g = gen::GenerateRandomGraph(spec);
  const SignatureIndex serial = IndexBuilder::FromGraph(g, true);
  ASSERT_GE(serial.total_subjects(), 800);
  for (const int workers : {1, 3, 7}) {
    util::ThreadPool pool(workers);
    SCOPED_TRACE(std::to_string(workers) + " workers");
    ExpectIndexesIdentical(IndexBuilder::FromGraph(g, true, &pool), serial,
                           SubjectNames(g));
  }
}

}  // namespace
}  // namespace rdfsr::schema
