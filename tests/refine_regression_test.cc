// Regression lock: greedy and agglomerative refinements recorded from the
// scratch-evaluation implementation (pre incremental-SortStats rewrite, PR 4)
// must be reproduced bit-identically by the incremental engines — on the
// checked-in quickstart dataset and on random indices. Any deviation means
// the incremental path changed a score or a merge decision.

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>

#include "api/rdfsr.h"
#include "core/greedy.h"
#include "eval/evaluator.h"
#include "gen/random_graph.h"
#include "rules/builtins.h"

namespace rdfsr::core {
namespace {

// The quickstart dataset (examples/data/quickstart.nt): four Persons, two
// signatures — {name, email, birthDate} x2 subjects and {name} x2 subjects.
constexpr const char* kQuickstart = R"(
<http://x/alice> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://x/Person> .
<http://x/alice> <http://x/name> "Alice" .
<http://x/alice> <http://x/email> "alice@example.org" .
<http://x/alice> <http://x/birthDate> "1990-01-01" .
<http://x/bob> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://x/Person> .
<http://x/bob> <http://x/name> "Bob" .
<http://x/carol> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://x/Person> .
<http://x/carol> <http://x/name> "Carol" .
<http://x/carol> <http://x/email> "carol@example.org" .
<http://x/carol> <http://x/birthDate> "1985-05-05" .
<http://x/dave> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://x/Person> .
<http://x/dave> <http://x/name> "Dave" .
)";

std::string Render(const SortRefinement& ref) {
  std::ostringstream out;
  out << "{";
  for (std::size_t i = 0; i < ref.sorts.size(); ++i) {
    if (i) out << ", ";
    out << "{";
    for (std::size_t j = 0; j < ref.sorts[i].size(); ++j) {
      if (j) out << ",";
      out << ref.sorts[i][j];
    }
    out << "}";
  }
  out << "}";
  return out.str();
}

TEST(RefineRegressionTest, QuickstartRefinementsUnchanged) {
  api::DatasetOptions options;
  options.sort = "http://x/Person";
  auto dataset = api::Dataset::FromNTriplesText(kQuickstart, options);
  ASSERT_TRUE(dataset.ok()) << dataset.status().ToString();
  const schema::SignatureIndex& index = dataset->index();
  ASSERT_EQ(index.num_signatures(), 2u);

  auto cov = eval::MakeEvaluator(rules::CovRule(), &index);
  auto sim = eval::MakeEvaluator(rules::SimRule(), &index);
  for (const auto* evaluator : {cov.get(), sim.get()}) {
    const std::string rule = evaluator->rule().name();
    EXPECT_EQ(Render(AgglomerativeLowestK(*evaluator, Rational(9, 10))),
              "{{0}, {1}}")
        << rule;
    EXPECT_EQ(Render(AgglomerativeFixedK(*evaluator, 1)), "{{0,1}}") << rule;
    EXPECT_EQ(Render(AgglomerativeFixedK(*evaluator, 2)), "{{0}, {1}}")
        << rule;
    EXPECT_EQ(Render(GreedyMaxMinSigma(*evaluator, 1)), "{{0,1}}") << rule;
    EXPECT_EQ(Render(GreedyMaxMinSigma(*evaluator, 2)), "{{0}, {1}}") << rule;
  }
}

struct RecordedCase {
  std::uint64_t seed;
  const char* rule;  // "cov" or "sim"
  const char* agglo_lowestk_9_10;
  const char* agglo_fixedk_3;
  const char* greedy_k3;
};

// Recorded from the scratch implementation at commit c2222b7 (12 signatures,
// 8 properties, default density/max_count). Greedy sort contents are in
// placement order — part of the bit-identical contract.
constexpr RecordedCase kRecorded[] = {
    {1, "cov",
     "{{0}, {1,9}, {2}, {3}, {4}, {5}, {6}, {7}, {8}, {10}, {11}}",
     "{{0,2}, {1,4,5,6,7,8,9,10,11}, {3}}",
     "{{3,4}, {0,2}, {1,10,6,5,8,9,11,7}}"},
    {1, "sim",
     "{{0,11}, {1,9}, {2}, {3}, {4}, {5}, {6}, {7}, {8}, {10}}",
     "{{0,2,8,11}, {1,4,5,6,7,9,10}, {3}}",
     "{{7,8,6,10,11}, {2,0,5}, {4,3,1,9}}"},
    {7, "cov",
     "{{0}, {1}, {2}, {3}, {4}, {5}, {6}, {7}, {8}, {9}, {10}, {11}}",
     "{{0,2}, {1,4,5,6,8,9}, {3,7,10,11}}",
     "{{9,1,5,2,0,8}, {7,4}, {11,10,3,6}}"},
    {7, "sim",
     "{{0}, {1,5}, {2}, {3,11}, {4}, {6,9}, {7}, {8}, {10}}",
     "{{0,1,2,5,8}, {3,7,10,11}, {4,6,9}}",
     "{{5,1,7,11}, {6,9,3,4,10}, {8,0,2}}"},
    {21, "cov",
     "{{0}, {1}, {2}, {3}, {4}, {5}, {6}, {7}, {8}, {9}, {10}, {11}}",
     "{{0,3,6,7,9,10,11}, {1,5,8}, {2,4}}",
     "{{7,6,0,1}, {2,4,5}, {8,3,11,9,10}}"},
    {21, "sim",
     "{{0,11}, {1,8}, {2,10}, {3,9}, {4}, {5}, {6}, {7}}",
     "{{0,7,11}, {1,6,8}, {2,3,4,5,9,10}}",
     "{{5,8,7}, {3,10,2,4,9}, {11,1,0,6}}"},
};

TEST(RefineRegressionTest, RandomIndexRefinementsUnchanged) {
  for (const RecordedCase& c : kRecorded) {
    gen::RandomIndexSpec spec;
    spec.num_signatures = 12;
    spec.num_properties = 8;
    spec.seed = c.seed;
    const schema::SignatureIndex index = gen::GenerateRandomIndex(spec);
    auto evaluator =
        eval::MakeEvaluator(std::string(c.rule) == "cov" ? rules::CovRule()
                                                         : rules::SimRule(),
                            &index);
    const std::string context =
        "seed " + std::to_string(c.seed) + " " + c.rule;
    EXPECT_EQ(Render(AgglomerativeLowestK(*evaluator, Rational(9, 10))),
              c.agglo_lowestk_9_10)
        << context;
    EXPECT_EQ(Render(AgglomerativeFixedK(*evaluator, 3)), c.agglo_fixedk_3)
        << context;
    EXPECT_EQ(Render(GreedyMaxMinSigma(*evaluator, 3)), c.greedy_k3)
        << context;
  }
}

TEST(RefineRegressionTest, ParallelAgglomerativeMatchesSerial) {
  // Instances above kParallelAgglomerateCutoff (256 signatures) engage the
  // pooled row-recompute branch in greedy.cc. The merge sequence is picked
  // by a strict total order on pairs, so every thread count — including
  // counts above the hardware concurrency — must render identically to the
  // serial path.
  gen::RandomIndexSpec spec;
  spec.num_signatures = 300;
  spec.num_properties = 24;
  spec.density = 0.3;
  for (const std::uint64_t seed : {3u, 11u}) {
    spec.seed = seed;
    const schema::SignatureIndex index = gen::GenerateRandomIndex(spec);
    for (const char* rule : {"cov", "sim"}) {
      auto evaluator = eval::MakeEvaluator(std::string(rule) == "cov"
                                               ? rules::CovRule()
                                               : rules::SimRule(),
                                           &index);
      const std::string lowestk_serial =
          Render(AgglomerativeLowestK(*evaluator, Rational(9, 10), 1));
      const std::string fixedk_serial =
          Render(AgglomerativeFixedK(*evaluator, 280, 1));
      for (const int threads : {2, 8}) {
        const std::string context = "seed " + std::to_string(seed) + " " +
                                    rule + " threads " +
                                    std::to_string(threads);
        EXPECT_EQ(
            Render(AgglomerativeLowestK(*evaluator, Rational(9, 10), threads)),
            lowestk_serial)
            << context;
        EXPECT_EQ(Render(AgglomerativeFixedK(*evaluator, 280, threads)),
                  fixedk_serial)
            << context;
      }
    }
  }
}

}  // namespace
}  // namespace rdfsr::core
