// Fault-injection tests: every planted failpoint must unwind to a clean
// Status — no crash, no deadlocked pool, no leaked state (the faults CI job
// re-runs this suite under ASan). The whole suite skips unless the build was
// configured with -DRDFSR_FAILPOINTS=ON.

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdio>
#include <string>
#include <vector>

#include "api/rdfsr.h"
#include "core/solver.h"
#include "eval/evaluator.h"
#include "rdf/ntriples.h"
#include "rules/builtins.h"
#include "schema/signature_index.h"
#include "util/failpoint.h"
#include "util/thread_pool.h"

namespace rdfsr {
namespace {

class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
#ifndef RDFSR_FAILPOINTS_ENABLED
    GTEST_SKIP() << "build configured without -DRDFSR_FAILPOINTS=ON";
#endif
    util::ClearFailpoints();
  }

  void TearDown() override { util::ClearFailpoints(); }
};

std::string ManyLines(int lines) {
  std::string text;
  for (int i = 0; i < lines; ++i) {
    text += "<http://x/s" + std::to_string(i % 37) + "> <http://x/p" +
            std::to_string(i % 5) + "> \"value " + std::to_string(i) +
            "\" .\n";
  }
  return text;
}

TEST_F(FailpointTest, SpecParsing) {
  EXPECT_TRUE(util::ArmFailpointsFromSpec("a=error,b=50%"));
  EXPECT_TRUE(util::FailpointShouldFire("a"));
  EXPECT_TRUE(util::FailpointShouldFire("a"));  // error: every hit
  EXPECT_FALSE(util::FailpointShouldFire("unarmed"));

  // Malformed specs arm nothing and report failure.
  EXPECT_FALSE(util::ArmFailpointsFromSpec("a"));
  EXPECT_FALSE(util::ArmFailpointsFromSpec("a=0%"));
  EXPECT_FALSE(util::ArmFailpointsFromSpec("a=101%"));
  EXPECT_FALSE(util::ArmFailpointsFromSpec("a=notathing"));
  EXPECT_FALSE(util::ArmFailpointsFromSpec("=error"));
}

TEST_F(FailpointTest, PercentFiresDeterministically) {
  // 25% -> period 4: hits 1, 5, 9 fire out of 12. No RNG — a run with a
  // given spec is exactly reproducible, and even one hit injects a fault.
  ASSERT_TRUE(util::ArmFailpointsFromSpec("p=25%"));
  int fires = 0;
  for (int i = 0; i < 12; ++i) {
    if (util::FailpointShouldFire("p")) ++fires;
  }
  EXPECT_EQ(fires, 3);

  util::ClearFailpoints();
  EXPECT_FALSE(util::FailpointShouldFire("p"));
}

TEST_F(FailpointTest, InjectedStatusNamesTheSite) {
  const Status st = util::FailpointStatus("some.site");
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  EXPECT_NE(st.message().find("some.site"), std::string::npos);
}

TEST_F(FailpointTest, ReadFileUnwindsCleanly) {
  const std::string path = ::testing::TempDir() + "failpoint_read.nt";
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("<http://x/s> <http://x/p> \"v\" .\n", f);
    std::fclose(f);
  }
  ASSERT_TRUE(util::ArmFailpointsFromSpec("ntriples.read-file=error"));
  auto g = rdf::ParseNTriplesFile(path);
  ASSERT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kInternal);
  EXPECT_NE(g.status().message().find("ntriples.read-file"),
            std::string::npos);

  util::ClearFailpoints();
  auto ok = rdf::ParseNTriplesFile(path);
  EXPECT_TRUE(ok.ok()) << ok.status().ToString();
  std::remove(path.c_str());
}

TEST_F(FailpointTest, MergeShardsUnwindsWithDestinationUntouched) {
  ASSERT_TRUE(util::ArmFailpointsFromSpec("graph.merge-shards=error"));
  const std::string text = ManyLines(400);
  rdf::ParseOptions options;
  options.threads = 4;
  options.min_chunk_bytes = 1;
  rdf::Graph graph;
  const Status st = rdf::ParseNTriplesInto(text, &graph, options);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  // The failpoint fires before the merge mutates the destination.
  EXPECT_EQ(graph.size(), 0u);
  graph.CheckInvariants();
}

TEST_F(FailpointTest, WorkerThrowUnwindsThePool) {
  // dict.bulk-append throws from inside a ParallelFor worker; the pool must
  // rethrow on the calling thread and the merge must convert it back to a
  // Status. Returning at all proves no worker deadlocked; ASan proves no
  // leak of the half-merged state.
  ASSERT_TRUE(util::ArmFailpointsFromSpec("dict.bulk-append=error"));
  const std::string text = ManyLines(600);
  rdf::ParseOptions options;
  options.threads = 4;
  options.min_chunk_bytes = 1;
  {
    rdf::Graph graph;
    const Status st = rdf::ParseNTriplesInto(text, &graph, options);
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::kInternal);
    EXPECT_NE(st.message().find("dict.bulk-append"), std::string::npos);
    // The interrupted destination is unspecified but must be safe to
    // destroy (scope end).
  }

  // The same pool-backed path works again once disarmed — nothing wedged.
  util::ClearFailpoints();
  rdf::Graph graph;
  EXPECT_TRUE(rdf::ParseNTriplesInto(text, &graph, options).ok());
  graph.CheckInvariants();
}

TEST_F(FailpointTest, IndexBuildUnwindsThroughTheApi) {
  ASSERT_TRUE(util::ArmFailpointsFromSpec("schema.index-build=error"));
  auto dataset = api::Dataset::FromNTriplesText(ManyLines(50));
  ASSERT_FALSE(dataset.ok());
  EXPECT_EQ(dataset.status().code(), StatusCode::kInternal);
  EXPECT_NE(dataset.status().message().find("schema.index-build"),
            std::string::npos);
}

TEST_F(FailpointTest, MipSolveEntryResolvesToUnknown) {
  // An instance the heuristics cannot settle (SymDep theta=1 k=2 is
  // infeasible, so only the exact solver can answer): the injected fault at
  // the solve boundary must surface as kUnknown + kInternal limit, never as
  // a wrong decision.
  std::vector<schema::Signature> sigs = {
      {{0, 1, 2}, 10}, {{0, 2}, 7}, {{1, 2}, 8}, {{2}, 20}};
  const schema::SignatureIndex index = schema::SignatureIndex::FromSignatures(
      {"deathPlace", "deathDate", "name"}, sigs);
  auto symdep =
      eval::MakeEvaluator(rules::SymDepRule("deathPlace", "deathDate"), &index);
  ASSERT_TRUE(util::ArmFailpointsFromSpec("ilp.solve=error"));
  core::RefinementSolver solver(symdep.get());
  const core::DecisionResult r = solver.Exists(2, Rational(1));
  EXPECT_EQ(r.decision, core::Decision::kUnknown);
  EXPECT_EQ(r.limit.code(), StatusCode::kInternal);
  EXPECT_NE(r.limit.message().find("ilp.solve"), std::string::npos);

  // Disarmed, the same solver decides the instance exactly.
  util::ClearFailpoints();
  const core::DecisionResult clean = solver.Exists(2, Rational(1));
  EXPECT_EQ(clean.decision, core::Decision::kNotExists);
}

// Plain TEST, not FailpointTest: the registry APIs are compiled in every
// build (only the RDFSR_FAILPOINT macro sites compile out), so this
// regression must run even without -DRDFSR_FAILPOINTS=ON. It pins down the
// race the annotated registry closed — FailpointShouldFire once counted hits
// through a Site* held past the registry lock, so a concurrent
// ArmFailpointsFromSpec/ClearFailpoints rebuilding the map was a
// use-after-free. Run under TSan via `ctest -L threads`.
TEST(FailpointRegistryConcurrency, ArmHitReportRace) {
  util::ClearFailpoints();
  util::ThreadPool pool(3);
  // lint:allow(atomic-ref: per-lane fire tallies owned by the ParallelFor phase; read after its join)
  std::atomic<long> fired{0};
  pool.ParallelFor(4, [&](std::size_t lane_begin, std::size_t lane_end) {
    for (std::size_t lane = lane_begin; lane < lane_end; ++lane) {
      for (int i = 0; i < 5000; ++i) {
        switch (lane) {
          case 0:
            util::ArmFailpointsFromSpec("race.a=error,race.b=50%");
            break;
          case 1:
            util::ClearFailpoints();
            break;
          default:
            if (util::FailpointShouldFire("race.a")) {
              fired += 1;
              const Status st = util::FailpointStatus("race.a");
              EXPECT_EQ(st.code(), StatusCode::kInternal);
            }
            util::FailpointShouldFire("race.b");
            break;
        }
      }
    }
  });
  // No crash/deadlock/TSan report is the assertion; the fire count only has
  // to be sane (armed and cleared windows interleave arbitrarily).
  EXPECT_GE(fired.load(), 0);
  util::ClearFailpoints();
  EXPECT_FALSE(util::FailpointShouldFire("race.a"));
}

}  // namespace
}  // namespace rdfsr
