// RefinementSolver tests: the decision procedure, the highest-theta and
// lowest-k searches, and the paper's Section 7.1.3 analytic splits (Dep gives
// theta=1 with k=2; SymDep gives theta=1 with k=3).

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/solver.h"
#include "eval/evaluator.h"
#include "gen/random_graph.h"
#include "rules/builtins.h"

namespace rdfsr::core {
namespace {

/// A small dataset where deathPlace/deathDate overlap partially: some have
/// both, some only one, some neither — so SymDep needs 3 sorts for theta=1.
schema::SignatureIndex MakeDeathIndex() {
  std::vector<schema::Signature> sigs = {
      {{0, 1, 2}, 10},  // deathPlace + deathDate + name
      {{0, 2}, 7},      // deathPlace only
      {{1, 2}, 8},      // deathDate only
      {{2}, 20},        // neither
  };
  return schema::SignatureIndex::FromSignatures(
      {"deathPlace", "deathDate", "name"}, sigs);
}

TEST(SolverTest, TrivialWhenWholeDatasetMeetsTheta) {
  const schema::SignatureIndex index = MakeDeathIndex();
  auto cov = eval::MakeEvaluator(rules::CovRule(), &index);
  RefinementSolver solver(cov.get());
  const double sigma_all = cov->SigmaAll();
  const DecisionResult r =
      solver.Exists(2, Rational::FromDouble(sigma_all * 0.9));
  EXPECT_EQ(r.decision, Decision::kExists);
  ASSERT_TRUE(r.refinement.has_value());
  EXPECT_EQ(r.refinement->num_sorts(), 1u);  // one-sort shortcut
}

TEST(SolverTest, Section713DepSplitsWithKTwoThetaOne) {
  // sigma_Dep[p1,p2] theta=1 k=2: (i) entities without p1, (ii) entities
  // with p2 — here: without deathPlace / with deathDate... our dataset has
  // subjects with deathPlace but no deathDate, so the paper's recipe needs
  // the {deathPlace-only} group in the "no p1"... it has p1. The correct
  // paper statement: sorts (i) all entities without p1 and (ii) all with p2;
  // this covers the dataset only when p1 implies p2 is repairable — with our
  // data {deathPlace only} breaks it, so instead verify on a dataset where
  // every subject with p1 either has p2 or sits alone.
  std::vector<schema::Signature> sigs = {
      {{0, 1, 2}, 5},  // p1 + p2
      {{1, 2}, 4},     // p2 only
      {{2}, 9},        // neither
  };
  const schema::SignatureIndex index =
      schema::SignatureIndex::FromSignatures({"p1", "p2", "name"}, sigs);
  auto dep = eval::MakeEvaluator(rules::DepRule("p1", "p2"), &index);
  RefinementSolver solver(dep.get());
  const DecisionResult r = solver.Exists(2, Rational(1));
  EXPECT_EQ(r.decision, Decision::kExists);
  ASSERT_TRUE(r.refinement.has_value());
  EXPECT_TRUE(ValidateRefinement(*dep, *r.refinement, Rational(1)).ok());
}

TEST(SolverTest, Section713SymDepThetaOneNeedsThreeSorts) {
  const schema::SignatureIndex index = MakeDeathIndex();
  auto symdep = eval::MakeEvaluator(
      rules::SymDepRule("deathPlace", "deathDate"), &index);
  SolverOptions options;
  RefinementSolver solver(symdep.get(), options);

  // k = 2 cannot reach theta = 1 on this data: the three behaviours
  // (p1-only, p2-only, both/neither) cannot be covered by two sorts.
  const DecisionResult k2 = solver.Exists(2, Rational(1));
  EXPECT_EQ(k2.decision, Decision::kNotExists);

  // k = 3 can: {p1 only}, {p2 only}, {both or neither} (Section 7.1.3).
  const DecisionResult k3 = solver.Exists(3, Rational(1));
  EXPECT_EQ(k3.decision, Decision::kExists);
  ASSERT_TRUE(k3.refinement.has_value());
  EXPECT_TRUE(ValidateRefinement(*symdep, *k3.refinement, Rational(1)).ok());
}

TEST(SolverTest, FindLowestKMatchesSection713) {
  const schema::SignatureIndex index = MakeDeathIndex();
  auto symdep = eval::MakeEvaluator(
      rules::SymDepRule("deathPlace", "deathDate"), &index);
  RefinementSolver solver(symdep.get());
  auto result = solver.FindLowestK(Rational(1));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->k, 3);
  EXPECT_TRUE(result->proven_minimal);
}

TEST(SolverTest, FindHighestThetaImprovesOverWholeDataset) {
  // Two incompatible profiles: {a} x10 and {b} x10. Together Cov = 0.5;
  // apart both are perfect.
  std::vector<schema::Signature> sigs = {{{0}, 10}, {{1}, 10}};
  const schema::SignatureIndex index =
      schema::SignatureIndex::FromSignatures({"a", "b"}, sigs);
  auto cov = eval::MakeEvaluator(rules::CovRule(), &index);
  RefinementSolver solver(cov.get());
  const HighestThetaResult best = solver.FindHighestTheta(2);
  EXPECT_EQ(best.theta, Rational(1));
  EXPECT_EQ(best.refinement.num_sorts(), 2u);
  EXPECT_TRUE(
      ValidateRefinement(*cov, best.refinement, best.theta).ok());
}

TEST(SolverTest, HighestThetaWithKOneIsSigmaOfDataset) {
  std::vector<schema::Signature> sigs = {{{0}, 3}, {{0, 1}, 1}};
  const schema::SignatureIndex index =
      schema::SignatureIndex::FromSignatures({"a", "b"}, sigs);
  auto cov = eval::MakeEvaluator(rules::CovRule(), &index);
  RefinementSolver solver(cov.get());
  const HighestThetaResult best = solver.FindHighestTheta(1);
  // sigma_Cov(D) = 5 ones / 8 cells = 0.625; no k=1 refinement can beat it.
  EXPECT_EQ(best.theta, Rational(5, 8));
  EXPECT_EQ(best.refinement.num_sorts(), 1u);
  EXPECT_TRUE(best.ceiling_proven);
}

TEST(SolverTest, LowestKOnRandomDataValidates) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    gen::RandomIndexSpec spec;
    spec.num_signatures = 6;
    spec.num_properties = 4;
    spec.seed = seed;
    const schema::SignatureIndex index = gen::GenerateRandomIndex(spec);
    auto cov = eval::MakeEvaluator(rules::CovRule(), &index);
    RefinementSolver solver(cov.get());
    auto result = solver.FindLowestK(Rational(9, 10));
    if (!result.ok()) continue;  // 0.9 may be unreachable; that's fine
    EXPECT_TRUE(
        ValidateRefinement(*cov, result->refinement, Rational(9, 10)).ok())
        << "seed " << seed;
    // Minimality: k-1 must not admit a refinement (when proven).
    if (result->proven_minimal && result->k > 1) {
      const DecisionResult below = solver.Exists(result->k - 1,
                                                 Rational(9, 10));
      EXPECT_EQ(below.decision, Decision::kNotExists) << "seed " << seed;
    }
  }
}

TEST(SolverTest, GreedyFirstAndPureMipAgree) {
  for (std::uint64_t seed = 2; seed <= 5; ++seed) {
    gen::RandomIndexSpec spec;
    spec.num_signatures = 5;
    spec.num_properties = 3;
    spec.seed = seed;
    const schema::SignatureIndex index = gen::GenerateRandomIndex(spec);
    auto sim = eval::MakeEvaluator(rules::SimRule(), &index);

    SolverOptions with_greedy;
    with_greedy.greedy_first = true;
    SolverOptions without_greedy;
    without_greedy.greedy_first = false;

    RefinementSolver a(sim.get(), with_greedy);
    RefinementSolver b(sim.get(), without_greedy);
    for (const Rational& theta :
         {Rational(1, 2), Rational(4, 5), Rational(1)}) {
      const Decision da = a.Exists(2, theta).decision;
      const Decision db = b.Exists(2, theta).decision;
      EXPECT_EQ(da, db) << "seed=" << seed << " theta=" << theta.ToString();
    }
  }
}

TEST(ThetaGridTest, EndpointIsAlwaysExactlyOne) {
  // Steps that do not divide 1 must still end the grid at theta = 1 (the old
  // integer division den/num stopped 0.03 at 99/100).
  for (double step : {0.03, 0.01, 0.07, 0.3, 1.0, 0.999}) {
    const ThetaGrid grid = MakeThetaGrid(Rational(0), step);
    EXPECT_EQ(grid.Theta(grid.last), Rational(1)) << "step " << step;
    EXPECT_LT(grid.Theta(grid.last - 1), Rational(1)) << "step " << step;
  }
}

TEST(ThetaGridTest, FirstIndexIsStrictlyAboveSigmaAll) {
  // sigma_all exactly on a grid point: the first tested theta must be the
  // next point, neither re-testing sigma_all nor skipping past 51/100.
  {
    const ThetaGrid grid = MakeThetaGrid(Rational(1, 2), 0.01);
    EXPECT_EQ(grid.step, Rational(1, 100));
    EXPECT_EQ(grid.first, 51);
    EXPECT_EQ(grid.Theta(grid.first), Rational(51, 100));
  }
  // sigma_all between grid points: first point above it.
  {
    const ThetaGrid grid = MakeThetaGrid(Rational(499, 1000), 0.01);
    EXPECT_EQ(grid.Theta(grid.first), Rational(1, 2));
  }
  // sigma_all = 1: the grid is empty (nothing lies above the baseline).
  {
    const ThetaGrid grid = MakeThetaGrid(Rational(1), 0.01);
    EXPECT_GT(grid.first, grid.last);
  }
  // sigma_all = 0 with a coarse step.
  {
    const ThetaGrid grid = MakeThetaGrid(Rational(0), 0.25);
    EXPECT_EQ(grid.first, 1);
    EXPECT_EQ(grid.Theta(1), Rational(1, 4));
    EXPECT_EQ(grid.last, 4);
  }
}

TEST(ThetaGridTest, DegenerateStepsAreClampedNotDivideByZero) {
  // A tiny step used to collapse to Rational(0) and divide by zero in the
  // grid derivation; junk steps fall back to the paper's default.
  const ThetaGrid tiny = MakeThetaGrid(Rational(1, 2), 1e-9);
  EXPECT_EQ(tiny.step, Rational(1, 1000));
  EXPECT_EQ(tiny.Theta(tiny.last), Rational(1));

  for (double bad : {0.0, -0.5, std::nan(""),
                     std::numeric_limits<double>::infinity()}) {
    const ThetaGrid grid = MakeThetaGrid(Rational(1, 3), bad);
    EXPECT_EQ(grid.step, Rational(1, 100)) << "step " << bad;
    EXPECT_EQ(grid.Theta(grid.last), Rational(1)) << "step " << bad;
  }

  // Oversized steps clamp to a one-point grid at theta = 1.
  const ThetaGrid big = MakeThetaGrid(Rational(0), 7.5);
  EXPECT_EQ(big.step, Rational(1));
  EXPECT_EQ(big.first, 1);
  EXPECT_EQ(big.last, 1);
}

TEST(SolverTest, HighestThetaReachesOneWithNonDividingStep) {
  // Two incompatible one-property profiles: apart both sorts are perfect, so
  // theta = 1 is feasible with k = 2 — and must be found even when the step
  // (0.03) does not divide 1.
  std::vector<schema::Signature> sigs = {{{0}, 10}, {{1}, 10}};
  const schema::SignatureIndex index =
      schema::SignatureIndex::FromSignatures({"a", "b"}, sigs);
  auto cov = eval::MakeEvaluator(rules::CovRule(), &index);
  SolverOptions options;
  options.theta_step = 0.03;
  RefinementSolver solver(cov.get(), options);
  const HighestThetaResult best = solver.FindHighestTheta(2);
  EXPECT_EQ(best.theta, Rational(1));
  EXPECT_TRUE(best.ceiling_proven);
  EXPECT_TRUE(ValidateRefinement(*cov, best.refinement, best.theta).ok());
}

TEST(SolverTest, HighestThetaTestsSigmaAllOnGridExactlyOnce) {
  // sigma_Cov = 1/2 sits exactly on the 0.01 grid; with k = 1 no improvement
  // exists, so the search must solve exactly one instance (51/100, proven
  // infeasible) — not re-test 1/2 or skip to 52/100.
  std::vector<schema::Signature> sigs = {{{0}, 1}, {{1}, 1}};
  const schema::SignatureIndex index =
      schema::SignatureIndex::FromSignatures({"a", "b"}, sigs);
  auto cov = eval::MakeEvaluator(rules::CovRule(), &index);
  ASSERT_DOUBLE_EQ(cov->SigmaAll(), 0.5);
  RefinementSolver solver(cov.get());
  const HighestThetaResult best = solver.FindHighestTheta(1);
  EXPECT_EQ(best.theta, Rational(1, 2));
  EXPECT_EQ(best.instances, 1);
  EXPECT_TRUE(best.ceiling_proven);
}

TEST(SolverTest, FindLowestKFailureDistinguishesProvenFromUndecided) {
  const schema::SignatureIndex index = MakeDeathIndex();
  auto symdep = eval::MakeEvaluator(
      rules::SymDepRule("deathPlace", "deathDate"), &index);

  // Proven: k <= 2 cannot reach theta = 1 on this data and every instance is
  // decidable, so exhaustion is a proof -> NotFound.
  {
    RefinementSolver solver(symdep.get());
    auto result = solver.FindLowestK(Rational(1), /*max_k=*/2);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
    EXPECT_NE(result.status().message().find("proven"), std::string::npos);
    EXPECT_NE(result.status().message().find("2 instances"),
              std::string::npos);
  }

  // Undecided: with the heuristics off and the MIP row ceiling at zero every
  // instance resolves to kUnknown, so exhaustion proves nothing ->
  // ResourceExhausted.
  {
    SolverOptions options;
    options.greedy_first = false;
    options.max_mip_rows = 0;
    RefinementSolver solver(symdep.get(), options);
    auto result = solver.FindLowestK(Rational(1), /*max_k=*/2);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
    EXPECT_NE(result.status().message().find("undecided"), std::string::npos);
  }
}

TEST(SolverTest, EmptyDatasetExistsVacuously) {
  const schema::SignatureIndex index;
  auto cov = eval::MakeEvaluator(rules::CovRule(), &index);
  RefinementSolver solver(cov.get());
  const DecisionResult r = solver.Exists(1, Rational(1));
  EXPECT_EQ(r.decision, Decision::kExists);
}

}  // namespace
}  // namespace rdfsr::core
