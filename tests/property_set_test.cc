// Property tests for the word-packed PropertySet and for the word-based
// SignatureIndex operations, each checked against a scalar reference
// implementation (sorted vectors / byte rows — the representation the index
// used before the refactor).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <unordered_set>
#include <vector>

#include "schema/property_set.h"
#include "schema/signature_index.h"
#include "util/rng.h"

namespace rdfsr::schema {
namespace {

/// Scalar oracle: a sorted ascending index vector.
std::vector<int> RandomSortedSupport(Rng* rng, int capacity, int density_pct) {
  std::vector<int> out;
  for (int i = 0; i < capacity; ++i) {
    if (static_cast<int>(rng->Below(100)) < density_pct) out.push_back(i);
  }
  return out;
}

std::vector<int> VecIntersect(const std::vector<int>& a,
                              const std::vector<int>& b) {
  std::vector<int> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

std::vector<int> VecUnion(const std::vector<int>& a,
                          const std::vector<int>& b) {
  std::vector<int> out;
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

std::vector<int> VecDifference(const std::vector<int>& a,
                               const std::vector<int>& b) {
  std::vector<int> out;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(out));
  return out;
}

TEST(PropertySetTest, BasicMembership) {
  PropertySet set(130);  // spans three words
  EXPECT_TRUE(set.Empty());
  set.Insert(0);
  set.Insert(63);
  set.Insert(64);
  set.Insert(129);
  EXPECT_EQ(set.Popcount(), 4u);
  EXPECT_TRUE(set.Contains(0));
  EXPECT_TRUE(set.Contains(63));
  EXPECT_TRUE(set.Contains(64));
  EXPECT_TRUE(set.Contains(129));
  EXPECT_FALSE(set.Contains(1));
  EXPECT_FALSE(set.Contains(128));
  set.Erase(64);
  EXPECT_FALSE(set.Contains(64));
  EXPECT_EQ(set.Popcount(), 3u);
  EXPECT_EQ(set.ToVector(), (std::vector<int>{0, 63, 129}));
}

TEST(PropertySetTest, IterationMatchesToVector) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const int capacity = 1 + static_cast<int>(rng.Below(200));
    const std::vector<int> ref = RandomSortedSupport(&rng, capacity, 30);
    const PropertySet set = PropertySet::FromIndices(capacity, ref);
    EXPECT_EQ(set.ToVector(), ref);
    std::vector<int> via_range;
    for (int p : set) via_range.push_back(p);
    EXPECT_EQ(via_range, ref);
    std::vector<int> via_foreach;
    set.ForEach([&](int p) { via_foreach.push_back(p); });
    EXPECT_EQ(via_foreach, ref);
    EXPECT_EQ(set.Popcount(), ref.size());
  }
}

TEST(PropertySetTest, SetAlgebraAgainstScalarOracle) {
  Rng rng(11);
  for (int trial = 0; trial < 50; ++trial) {
    const int capacity = 1 + static_cast<int>(rng.Below(300));
    const std::vector<int> va = RandomSortedSupport(&rng, capacity, 40);
    const std::vector<int> vb = RandomSortedSupport(&rng, capacity, 40);
    const PropertySet a = PropertySet::FromIndices(capacity, va);
    const PropertySet b = PropertySet::FromIndices(capacity, vb);

    EXPECT_EQ(Union(a, b).ToVector(), VecUnion(va, vb));
    EXPECT_EQ(Intersect(a, b).ToVector(), VecIntersect(va, vb));
    EXPECT_EQ(Difference(a, b).ToVector(), VecDifference(va, vb));
    EXPECT_EQ(a.IntersectCount(b), VecIntersect(va, vb).size());
    EXPECT_EQ(a.Intersects(b), !VecIntersect(va, vb).empty());
    EXPECT_EQ(a.IsSubsetOf(b),
              std::includes(vb.begin(), vb.end(), va.begin(), va.end()));
    EXPECT_EQ(a == b, va == vb);
  }
}

TEST(PropertySetTest, CompareLexMatchesVectorOrder) {
  Rng rng(13);
  for (int trial = 0; trial < 200; ++trial) {
    const int capacity = 1 + static_cast<int>(rng.Below(150));
    const std::vector<int> va = RandomSortedSupport(&rng, capacity, 25);
    const std::vector<int> vb = RandomSortedSupport(&rng, capacity, 25);
    const PropertySet a = PropertySet::FromIndices(capacity, va);
    const PropertySet b = PropertySet::FromIndices(capacity, vb);
    const int cmp = PropertySet::CompareLex(a, b);
    if (va < vb) {
      EXPECT_LT(cmp, 0) << "trial " << trial;
    } else if (va == vb) {
      EXPECT_EQ(cmp, 0) << "trial " << trial;
    } else {
      EXPECT_GT(cmp, 0) << "trial " << trial;
    }
    EXPECT_EQ(PropertySet::CompareLex(b, a), -cmp);
  }
  // Prefix cases that word comparison gets wrong if implemented naively.
  const PropertySet p0 = PropertySet::FromIndices(70, {0});
  const PropertySet p01 = PropertySet::FromIndices(70, {0, 1});
  const PropertySet p02 = PropertySet::FromIndices(70, {0, 2});
  const PropertySet p013 = PropertySet::FromIndices(70, {0, 1, 3});
  const PropertySet p069 = PropertySet::FromIndices(70, {0, 69});
  EXPECT_LT(PropertySet::CompareLex(p0, p01), 0);
  EXPECT_GT(PropertySet::CompareLex(p02, p013), 0);
  EXPECT_LT(PropertySet::CompareLex(p0, p069), 0);
  EXPECT_LT(PropertySet::CompareLex(p01, p069), 0);
}

TEST(PropertySetTest, HashConsistentWithEquality) {
  Rng rng(17);
  std::unordered_set<PropertySet, PropertySetHash> seen;
  std::set<std::vector<int>> ref;
  for (int trial = 0; trial < 100; ++trial) {
    const std::vector<int> v = RandomSortedSupport(&rng, 90, 20);
    seen.insert(PropertySet::FromIndices(90, v));
    ref.insert(v);
  }
  EXPECT_EQ(seen.size(), ref.size());
}

TEST(PropertySetTest, NextSetBit) {
  const PropertySet set = PropertySet::FromIndices(200, {3, 64, 128, 199});
  EXPECT_EQ(set.NextSetBit(0), 3);
  EXPECT_EQ(set.NextSetBit(3), 3);
  EXPECT_EQ(set.NextSetBit(4), 64);
  EXPECT_EQ(set.NextSetBit(65), 128);
  EXPECT_EQ(set.NextSetBit(129), 199);
  EXPECT_EQ(set.NextSetBit(200), -1);
  EXPECT_EQ(PropertySet(64).NextSetBit(0), -1);
}

TEST(PropertySetTest, WordBoundaryEdges) {
  // Bit 63 in a one-word set: every mask is built with `1 << (i & 63)`, so
  // the top bit is the shift-by-width-of-type edge (UB if the masking ever
  // regresses; the asan-ubsan CI job runs this under -fsanitize=undefined).
  PropertySet one_word(64);
  one_word.Insert(63);
  EXPECT_TRUE(one_word.Contains(63));
  EXPECT_EQ(one_word.Popcount(), 1u);
  EXPECT_EQ(one_word.NextSetBit(0), 63);
  EXPECT_EQ(one_word.NextSetBit(63), 63);
  EXPECT_EQ(one_word.NextSetBit(64), -1);
  EXPECT_EQ(one_word.ToVector(), std::vector<int>{63});
  one_word.Erase(63);
  EXPECT_TRUE(one_word.Empty());

  // First bit of the second word, reached across the word boundary.
  PropertySet spill(65);
  spill.Insert(64);
  EXPECT_TRUE(spill.Contains(64));
  EXPECT_EQ(spill.NextSetBit(63), 64);
  EXPECT_EQ(spill.NextSetBit(64), 64);
  EXPECT_EQ(*spill.begin(), 64);

  // Capacity 0: every query is well-defined and empty.
  PropertySet empty;
  EXPECT_TRUE(empty.Empty());
  EXPECT_EQ(empty.Popcount(), 0u);
  EXPECT_EQ(empty.NextSetBit(0), -1);
  EXPECT_TRUE(empty.begin() == empty.end());
  EXPECT_EQ(empty, PropertySet());
}

TEST(PropertySetTest, CompareLexBit63Edge) {
  // The first differing index d == 63 makes CompareLex's "elements above d"
  // mask `~0 << (d + 1)` a shift by 64 unless specifically guarded; these
  // pin the guard's behavior on both outcomes.
  const PropertySet a = PropertySet::FromIndices(128, {63});
  const PropertySet b = PropertySet::FromIndices(128, {70});
  // Sequences [63] vs [70]: a precedes b.
  EXPECT_LT(PropertySet::CompareLex(a, b), 0);
  EXPECT_GT(PropertySet::CompareLex(b, a), 0);

  // Strict-prefix case with the difference exactly at bit 63: [ ] vs [63].
  const PropertySet none(128);
  EXPECT_LT(PropertySet::CompareLex(none, a), 0);
  EXPECT_GT(PropertySet::CompareLex(a, none), 0);

  // Prefix vs extension across the word boundary: [63] vs [63, 64].
  const PropertySet ext = PropertySet::FromIndices(128, {63, 64});
  EXPECT_LT(PropertySet::CompareLex(a, ext), 0);
  EXPECT_GT(PropertySet::CompareLex(ext, a), 0);
  EXPECT_EQ(PropertySet::CompareLex(a, a), 0);
}

// --- SignatureIndex on words vs the scalar reference ------------------------

SignatureIndex RandomIndex(Rng* rng, int num_sigs, int num_props) {
  // Distinct non-empty supports; every property used (pad with a full row).
  std::set<std::vector<int>> supports;
  while (static_cast<int>(supports.size()) < num_sigs - 1) {
    std::vector<int> s = RandomSortedSupport(rng, num_props, 40);
    if (!s.empty()) supports.insert(std::move(s));
  }
  std::vector<int> full(num_props);
  for (int p = 0; p < num_props; ++p) full[p] = p;
  supports.insert(full);
  std::vector<Signature> sigs;
  for (const auto& s : supports) {
    sigs.emplace_back(s, 1 + static_cast<std::int64_t>(rng->Below(50)));
  }
  std::vector<std::string> names;
  for (int p = 0; p < num_props; ++p) {
    names.push_back("p" + std::to_string(p));
  }
  return SignatureIndex::FromSignatures(std::move(names), std::move(sigs));
}

/// Scalar reference for Restrict: the pre-refactor implementation working on
/// sorted support vectors and byte flags. Kept as the oracle for the
/// word-packed production path.
struct ScalarRestrictResult {
  std::vector<std::string> property_names;
  // (support, count) pairs sorted by (count desc, support lex asc).
  std::vector<std::pair<std::vector<int>, std::int64_t>> rows;
  std::vector<int> kept_props;
};

ScalarRestrictResult ScalarRestrict(const SignatureIndex& index,
                                    const std::vector<int>& sig_ids) {
  ScalarRestrictResult out;
  std::vector<std::uint8_t> used(index.num_properties(), 0);
  for (int id : sig_ids) {
    for (int p : index.signature(id).support()) used[p] = 1;
  }
  std::vector<int> prop_map(index.num_properties(), -1);
  for (std::size_t p = 0; p < index.num_properties(); ++p) {
    if (used[p]) {
      prop_map[p] = static_cast<int>(out.property_names.size());
      out.property_names.push_back(index.property_name(p));
      out.kept_props.push_back(static_cast<int>(p));
    }
  }
  for (int id : sig_ids) {
    std::vector<int> support;
    for (int p : index.signature(id).support()) {
      support.push_back(prop_map[p]);
    }
    std::sort(support.begin(), support.end());
    out.rows.emplace_back(std::move(support), index.signature(id).count);
  }
  std::sort(out.rows.begin(), out.rows.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return out;
}

TEST(SignatureIndexWordsTest, RestrictMatchesScalarOracleOnRandomIndexes) {
  Rng rng(23);
  for (int trial = 0; trial < 30; ++trial) {
    const int num_props = 2 + static_cast<int>(rng.Below(120));
    const int num_sigs = 2 + static_cast<int>(rng.Below(12));
    const SignatureIndex index = RandomIndex(&rng, num_sigs, num_props);

    // Random non-empty subset of signatures.
    std::vector<int> sig_ids;
    for (std::size_t i = 0; i < index.num_signatures(); ++i) {
      if (rng.Below(2) == 0) sig_ids.push_back(static_cast<int>(i));
    }
    if (sig_ids.empty()) sig_ids.push_back(0);

    std::vector<int> kept;
    const SignatureIndex sub = index.Restrict(sig_ids, &kept);
    const ScalarRestrictResult ref = ScalarRestrict(index, sig_ids);

    ASSERT_EQ(sub.num_properties(), ref.property_names.size());
    for (std::size_t p = 0; p < sub.num_properties(); ++p) {
      EXPECT_EQ(sub.property_name(p), ref.property_names[p]);
    }
    EXPECT_EQ(kept, ref.kept_props);
    ASSERT_EQ(sub.num_signatures(), ref.rows.size());
    for (std::size_t i = 0; i < sub.num_signatures(); ++i) {
      EXPECT_EQ(sub.signature(i).support(), ref.rows[i].first)
          << "trial " << trial << " row " << i;
      EXPECT_EQ(sub.signature(i).count, ref.rows[i].second);
    }
  }
}

TEST(SignatureIndexWordsTest, RestrictRoundTripsThroughFullSubset) {
  Rng rng(29);
  for (int trial = 0; trial < 10; ++trial) {
    const SignatureIndex index = RandomIndex(&rng, 6, 40);
    std::vector<int> all(index.num_signatures());
    for (std::size_t i = 0; i < all.size(); ++i) all[i] = static_cast<int>(i);
    const SignatureIndex sub = index.Restrict(all);
    // Restricting to every signature keeps every property and row.
    ASSERT_EQ(sub.num_signatures(), index.num_signatures());
    ASSERT_EQ(sub.num_properties(), index.num_properties());
    for (std::size_t i = 0; i < index.num_signatures(); ++i) {
      EXPECT_EQ(sub.signature(i).support(), index.signature(i).support());
      EXPECT_EQ(sub.signature(i).count, index.signature(i).count);
    }
  }
}

TEST(SignatureIndexWordsTest, HasAndPropertyCountMatchScalarScan) {
  Rng rng(31);
  const SignatureIndex index = RandomIndex(&rng, 10, 100);
  for (std::size_t p = 0; p < index.num_properties(); ++p) {
    std::int64_t scalar_count = 0;
    for (std::size_t i = 0; i < index.num_signatures(); ++i) {
      const std::vector<int>& support = index.signature(i).support();
      const bool has =
          std::binary_search(support.begin(), support.end(),
                             static_cast<int>(p));
      EXPECT_EQ(index.Has(i, p), has);
      if (has) scalar_count += index.signature(i).count;
    }
    EXPECT_EQ(index.PropertyCount(p), scalar_count);
  }
}

TEST(SignatureIndexWordsTest, SupportViewIsLazilyDerivedFromWords) {
  std::vector<Signature> sigs = {{{0, 2}, 4}, {{1}, 2}};
  const SignatureIndex index =
      SignatureIndex::FromSignatures({"a", "b", "c"}, sigs);
  // Canonical order: count-4 row first.
  EXPECT_EQ(index.signature(0).support(), (std::vector<int>{0, 2}));
  EXPECT_EQ(index.signature(0).props().Popcount(), 2u);
  EXPECT_EQ(index.signature(1).support(), (std::vector<int>{1}));
  // The view agrees with the words on repeated calls (cached path).
  EXPECT_EQ(index.signature(0).support(), index.signature(0).props().ToVector());
}

TEST(SignatureIndexWordsTest, SupportUnionIsUnionOfMemberSupports) {
  std::vector<Signature> sigs = {{{0, 2}, 4}, {{1}, 2}, {{3}, 1}};
  const SignatureIndex index =
      SignatureIndex::FromSignatures({"a", "b", "c", "d"}, sigs);
  // Canonical order: {0,2} x4, {1} x2, {3} x1.
  EXPECT_EQ(index.SupportUnion({0, 1}).ToVector(),
            (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(index.SupportUnion({2}).ToVector(), (std::vector<int>{3}));
  EXPECT_EQ(index.SupportUnion({0, 1, 2}).Popcount(), 4u);
}

}  // namespace
}  // namespace rdfsr::schema
