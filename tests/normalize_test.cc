// Normalizer tests: NNF shape, constant folding, and exact semantic
// preservation (property-tested against the brute-force evaluator).

#include <gtest/gtest.h>

#include "gen/random_graph.h"
#include "rules/builtins.h"
#include "rules/normalize.h"
#include "rules/parser.h"
#include "rules/printer.h"
#include "eval/enumerator.h"
#include "rules/semantics.h"

namespace rdfsr::rules {
namespace {

FormulaPtr Parse(const char* text) {
  auto f = ParseFormula(text);
  EXPECT_TRUE(f.ok()) << text << ": " << f.status().ToString();
  return *f;
}

/// All kNot nodes sit directly above atoms.
bool IsNnf(const FormulaPtr& f) {
  switch (f->kind) {
    case FormulaKind::kNot:
      return f->left->kind != FormulaKind::kNot &&
             f->left->kind != FormulaKind::kAnd &&
             f->left->kind != FormulaKind::kOr;
    case FormulaKind::kAnd:
    case FormulaKind::kOr:
      return IsNnf(f->left) && IsNnf(f->right);
    default:
      return true;
  }
}

TEST(NormalizeTest, RemovesDoubleNegation) {
  const FormulaPtr f = Normalize(Parse("!!(val(c) = 1)"));
  EXPECT_EQ(ToString(f), "val(c) = 1");
}

TEST(NormalizeTest, DeMorgan) {
  const FormulaPtr f = Normalize(Parse("!(val(a) = 1 && val(b) = 1)"));
  EXPECT_EQ(f->kind, FormulaKind::kOr);
  EXPECT_TRUE(IsNnf(f));
  const FormulaPtr g = Normalize(Parse("!(val(a) = 1 || val(b) = 0)"));
  EXPECT_EQ(g->kind, FormulaKind::kAnd);
  EXPECT_TRUE(IsNnf(g));
}

TEST(NormalizeTest, FoldsReflexiveEqualities) {
  EXPECT_EQ(DecideConstant(Parse("c = c")), ConstantTruth::kTrue);
  EXPECT_EQ(DecideConstant(Parse("!(c = c)")), ConstantTruth::kFalse);
  EXPECT_EQ(DecideConstant(Parse("subj(c) = subj(c)")), ConstantTruth::kTrue);
  EXPECT_EQ(DecideConstant(Parse("val(c) = val(c)")), ConstantTruth::kTrue);
  EXPECT_EQ(DecideConstant(Parse("prop(c) = prop(c)")), ConstantTruth::kTrue);
  EXPECT_EQ(DecideConstant(Parse("val(c) = 1")), ConstantTruth::kUnknown);
}

TEST(NormalizeTest, FoldsNeutralAndAbsorbingOperands) {
  // c = c is true: conjunction with it is the other side.
  EXPECT_EQ(ToString(Normalize(Parse("c = c && val(c) = 1"))), "val(c) = 1");
  // Disjunction with a tautology is a tautology.
  EXPECT_EQ(DecideConstant(Parse("c = c || val(c) = 1")),
            ConstantTruth::kTrue);
  // Conjunction with a contradiction is a contradiction.
  EXPECT_EQ(DecideConstant(Parse("!(c = c) && val(c) = 1")),
            ConstantTruth::kFalse);
  // Disjunction with a contradiction is the other side.
  EXPECT_EQ(ToString(Normalize(Parse("!(c = c) || val(c) = 1"))),
            "val(c) = 1");
}

TEST(NormalizeTest, FoldsIdempotence) {
  EXPECT_EQ(ToString(Normalize(Parse("val(c) = 1 && val(c) = 1"))),
            "val(c) = 1");
  EXPECT_EQ(ToString(Normalize(Parse("val(c) = 1 || val(c) = 1"))),
            "val(c) = 1");
}

TEST(NormalizeTest, ConstantFormulasGetCanonicalShape) {
  const FormulaPtr t = Normalize(Parse("c = c"));
  EXPECT_EQ(ToString(t), "c = c");
  const FormulaPtr f = Normalize(Parse("!(c = c) && val(c) = 0"));
  EXPECT_EQ(ToString(f), "!(c = c)");
}

TEST(NormalizeTest, StructuralEquality) {
  EXPECT_TRUE(StructurallyEqual(Parse("val(c) = 1 && prop(c) = p"),
                                Parse("val(c) = 1 && prop(c) = p")));
  EXPECT_FALSE(StructurallyEqual(Parse("val(c) = 1"), Parse("val(c) = 0")));
  EXPECT_FALSE(StructurallyEqual(Parse("val(c) = 1"), Parse("val(d) = 1")));
}

class NormalizePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(NormalizePropertyTest, PreservesSemanticsExactly) {
  const char* formulas[] = {
      "!!(val(c1) = 1)",
      "!(val(c1) = 1 && !(val(c2) = 0))",
      "!(!(subj(c1) = subj(c2)) || prop(c1) = prop(c2))",
      "c1 = c1 && val(c1) = 1 || !(c2 = c2) && val(c2) = 0",
      "!(prop(c1) = p0) && (val(c1) = 1 || val(c1) = 1)",
      "!((val(c1) = 1 || val(c2) = 1) && !(c1 = c2))",
  };
  const char* text = formulas[GetParam() % 6];
  const FormulaPtr original = Parse(text);
  const FormulaPtr normalized = Normalize(original);
  EXPECT_TRUE(IsNnf(normalized)) << ToString(normalized);

  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    gen::RandomMatrixSpec spec;
    spec.num_subjects = 4;
    spec.num_properties = 3;
    spec.seed = seed + GetParam() * 17;
    const schema::PropertyMatrix matrix = gen::GenerateRandomMatrix(spec);
    // Same satisfying-assignment count == same semantics for counting.
    // Brute-force both with the ORIGINAL variable set (normalization may
    // collapse variables syntactically; counting is over var(original)).
    std::vector<std::string> vars;
    CollectVariables(original, &vars);
    std::vector<std::string> norm_vars;
    CollectVariables(normalized, &norm_vars);
    // Build a conjunction anchor so both range over identical variables:
    // anchor == true for every assignment.
    FormulaPtr anchor = nullptr;
    for (const std::string& v : vars) {
      FormulaPtr self = VarEq(v, v);
      anchor = anchor == nullptr ? self : And(anchor, self);
    }
    const std::int64_t a = CountSatisfying(And(anchor, original), matrix);
    const std::int64_t b = CountSatisfying(And(anchor, normalized), matrix);
    EXPECT_EQ(a, b) << text << " seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Cases, NormalizePropertyTest, ::testing::Range(0, 6));

TEST(NormalizeRuleTest, PreservesVariableSet) {
  // Folding would drop c from "c = c": the rule normalizer must keep the
  // antecedent ranging over c.
  const Rule cov = CovRule();
  const Rule normalized = NormalizeRule(cov);
  EXPECT_EQ(normalized.variables(), cov.variables());
  // And the sigma value is unchanged on a sample matrix.
  const schema::PropertyMatrix m = schema::PropertyMatrix::FromRows(
      {{1, 0}, {1, 1}}, {}, {"p", "q"});
  EXPECT_EQ(EvaluateBruteForce(cov, m).Value(),
            EvaluateBruteForce(normalized, m).Value());
}

TEST(NormalizeRuleTest, SimplifiesRedundantRuleBodies) {
  auto rule = ParseRule(
      "!!(val(c1) = 1) && prop(c1) = prop(c2) && prop(c1) = prop(c2) -> "
      "!!(val(c2) = 1)");
  ASSERT_TRUE(rule.ok());
  const Rule normalized = NormalizeRule(*rule);
  EXPECT_EQ(ToString(normalized),
            "val(c1) = 1 && prop(c1) = prop(c2) -> val(c2) = 1");

  const schema::PropertyMatrix m = schema::PropertyMatrix::FromRows(
      {{1, 0}, {1, 1}, {0, 1}}, {}, {"p", "q"});
  const SigmaValue a = EvaluateBruteForce(*rule, m);
  const SigmaValue b = EvaluateBruteForce(normalized, m);
  EXPECT_EQ(a.favorable, b.favorable);
  EXPECT_EQ(a.total, b.total);
}


TEST(NormalizeRuleTest, PreservesSigmaOnSignatureIndexes) {
  // End-to-end: normalized rules must give identical counts through the
  // production (signature-level) evaluator across random datasets.
  const char* rule_texts[] = {
      "!!(c = c) -> val(c) = 1",
      "!(c1 = c2) && prop(c1) = prop(c2) && val(c1) = 1 && val(c1) = 1 "
      "-> !!(val(c2) = 1)",
      "subj(c1) = subj(c2) && !(!(prop(c1) = p0)) -> val(c1) = 0 || "
      "val(c1) = 0 || val(c2) = 1",
  };
  for (const char* text : rule_texts) {
    auto rule = ParseRule(text);
    ASSERT_TRUE(rule.ok()) << text;
    const Rule normalized = NormalizeRule(*rule);
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      gen::RandomIndexSpec spec;
      spec.num_signatures = 5;
      spec.num_properties = 3;
      spec.seed = seed;
      const schema::SignatureIndex index = gen::GenerateRandomIndex(spec);
      const eval::SigmaCounts a = eval::EvaluateRuleOnIndex(*rule, index);
      const eval::SigmaCounts b = eval::EvaluateRuleOnIndex(normalized, index);
      EXPECT_EQ(static_cast<long long>(a.total),
                static_cast<long long>(b.total))
          << text << " seed " << seed;
      EXPECT_EQ(static_cast<long long>(a.favorable),
                static_cast<long long>(b.favorable))
          << text << " seed " << seed;
    }
  }
}

}  // namespace
}  // namespace rdfsr::rules
