// JsonRecorder must emit valid JSON for every double, including non-finite
// metrics (a timed-out ratio is commonly inf or nan): those serialize as
// null, never as the "inf"/"nan" literals that invalidate the CI artifacts.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

#include "../bench/bench_util.h"

namespace rdfsr::bench {
namespace {

std::string ReadAll(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Minimal structural JSON check: quotes pair up and brackets/braces balance
/// outside strings — enough to catch bare inf/nan/empty tokens, which always
/// break nesting-aware parsers at the value position.
bool LooksLikeJson(const std::string& text) {
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '[': case '{': ++depth; break;
      case ']': case '}':
        if (--depth < 0) return false;
        break;
      default: break;
    }
  }
  return depth == 0 && !in_string;
}

TEST(JsonRecorderTest, NonFiniteMetricsSerializeAsNull) {
  const std::string path =
      ::testing::TempDir() + "/bench_util_test_records.json";
  JsonRecorder recorder;
  recorder.Open(path, "bench_util_test");
  recorder.Record(
      "nonfinite",
      {{"config", "smoke"}},
      std::numeric_limits<double>::quiet_NaN(),
      {{"inf", std::numeric_limits<double>::infinity()},
       {"neg_inf", -std::numeric_limits<double>::infinity()},
       {"nan", std::nan("")},
       {"max", std::numeric_limits<double>::max()},
       {"plain", 1.5}});

  const std::string text = ReadAll(path);
  ASSERT_FALSE(text.empty());
  EXPECT_TRUE(LooksLikeJson(text)) << text;
  // Non-finite values come out as null (keys are quoted, values are not).
  EXPECT_NE(text.find("\"inf\": null"), std::string::npos) << text;
  EXPECT_NE(text.find("\"neg_inf\": null"), std::string::npos) << text;
  EXPECT_NE(text.find("\"nan\": null"), std::string::npos) << text;
  EXPECT_NE(text.find("\"seconds\": null"), std::string::npos) << text;
  // Finite values survive untouched — DBL_MAX is finite and must round-trip,
  // not collapse to null.
  EXPECT_NE(text.find("1.7976931348623157e+308"), std::string::npos) << text;
  EXPECT_NE(text.find("1.5"), std::string::npos) << text;
  std::remove(path.c_str());
}

TEST(JsonRecorderTest, EscapesStringsAndStaysParseable) {
  const std::string path =
      ::testing::TempDir() + "/bench_util_test_escapes.json";
  JsonRecorder recorder;
  recorder.Open(path, "bench_util_test");
  recorder.Record("quote\"and\\slash\nnewline", {{"k", "v\t"}}, 0.25, {});
  const std::string text = ReadAll(path);
  EXPECT_TRUE(LooksLikeJson(text)) << text;
  EXPECT_NE(text.find("quote\\\"and\\\\slash\\nnewline"), std::string::npos)
      << text;
  std::remove(path.c_str());
}

TEST(JsonRecorderTest, TimedOutRecordsCarryTheMarkerCompleteOnesDoNot) {
  const std::string path =
      ::testing::TempDir() + "/bench_util_test_timed_out.json";
  JsonRecorder recorder;
  recorder.Open(path, "bench_util_test");
  recorder.Record("complete", {{"k", "8"}}, 1.0, {{"theta", 0.75}});
  recorder.Record("cut", {{"k", "8"}}, 15.0, {{"theta", 0.5}},
                  /*timed_out=*/true);
  const std::string text = ReadAll(path);
  EXPECT_TRUE(LooksLikeJson(text)) << text;
  // Exactly one of the two records carries the marker — complete runs omit
  // the key entirely rather than writing "timed_out": false.
  const auto first = text.find("\"timed_out\": true");
  ASSERT_NE(first, std::string::npos) << text;
  EXPECT_EQ(text.find("\"timed_out\"", first + 1), std::string::npos) << text;
  // The cut record still carries its partial metrics.
  EXPECT_NE(text.find("\"theta\": 0.5"), std::string::npos) << text;
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rdfsr::bench
