// Generator tests: determinism, calibration against the paper's reported
// statistics, and structural validity of every synthetic dataset.

#include <gtest/gtest.h>

#include "eval/closed_form.h"
#include "gen/mixed.h"
#include "gen/persons.h"
#include "gen/random_graph.h"
#include "gen/wordnet.h"
#include "gen/yago.h"
#include "rdf/vocab.h"
#include "schema/property_matrix.h"

namespace rdfsr::gen {
namespace {

using eval::AllSignatures;

TEST(PersonsTest, MatchesPaperHeadlineNumbers) {
  const schema::SignatureIndex index = GeneratePersons();
  EXPECT_EQ(index.num_properties(), 8u);
  // Paper: 64 signatures at full scale; at 1/100 scale we tolerate a few
  // missing rare combinations.
  EXPECT_GE(index.num_signatures(), 48u);
  EXPECT_LE(index.num_signatures(), 64u);

  const std::vector<int> all = AllSignatures(index);
  const double cov = eval::CovCounts(index, all).Value();
  const double sim = eval::SimCounts(index, all).Value();
  EXPECT_NEAR(cov, 0.54, 0.02);  // paper: 0.54
  EXPECT_NEAR(sim, 0.77, 0.02);  // paper: 0.77
}

TEST(PersonsTest, MarginalsMatchPaperCounts) {
  PersonsConfig config;
  config.num_subjects = 50000;  // tighter sampling error
  const schema::SignatureIndex index = GeneratePersons(config);
  const double n = static_cast<double>(index.total_subjects());
  auto frac = [&](const char* prop) {
    const int id = index.FindProperty(prop);
    EXPECT_GE(id, 0) << prop;
    return static_cast<double>(index.PropertyCount(id)) / n;
  };
  EXPECT_DOUBLE_EQ(frac("name"), 1.0);
  EXPECT_NEAR(frac("birthDate"), 420242.0 / 790703, 0.01);
  EXPECT_NEAR(frac("birthPlace"), 323368.0 / 790703, 0.01);
  EXPECT_NEAR(frac("deathDate"), 173507.0 / 790703, 0.01);
  EXPECT_NEAR(frac("deathPlace"), 90246.0 / 790703, 0.01);
  EXPECT_NEAR(frac("givenName"), 0.95, 0.01);
  EXPECT_NEAR(frac("surName"), 0.95, 0.01);
}

TEST(PersonsTest, SymDepOfDeathPairMatchesPaper) {
  PersonsConfig config;
  config.num_subjects = 50000;
  const schema::SignatureIndex index = GeneratePersons(config);
  const double symdep =
      eval::SymDepCounts(index, AllSignatures(index), "deathPlace",
                         "deathDate")
          .Value();
  EXPECT_NEAR(symdep, 0.39, 0.03);  // paper: 0.39
}

TEST(PersonsTest, GivenAndSurNameFullyCorrelated) {
  const schema::SignatureIndex index = GeneratePersons();
  const double symdep =
      eval::SymDepCounts(index, AllSignatures(index), "givenName", "surName")
          .Value();
  EXPECT_DOUBLE_EQ(symdep, 1.0);  // paper Table 2 top entry
}

TEST(PersonsTest, DeterministicBySeed) {
  const schema::SignatureIndex a = GeneratePersons();
  const schema::SignatureIndex b = GeneratePersons();
  ASSERT_EQ(a.num_signatures(), b.num_signatures());
  for (std::size_t i = 0; i < a.num_signatures(); ++i) {
    EXPECT_EQ(a.signature(i).count, b.signature(i).count);
    EXPECT_EQ(a.signature(i).support(), b.signature(i).support());
  }
}

TEST(PersonsTest, GraphMaterializationConsistent) {
  PersonsConfig config;
  config.num_subjects = 200;
  const rdf::Graph graph = GeneratePersonsGraph(config);
  const rdf::Graph persons = graph.SortSlice(rdf::vocab::kFoafPerson);
  EXPECT_EQ(persons.subjects().size(), 200u);
  const schema::PropertyMatrix matrix =
      schema::PropertyMatrix::FromGraph(persons);
  EXPECT_EQ(matrix.num_subjects(), 200u);
  EXPECT_LE(matrix.num_properties(), 8u);
  // Same seed, same sampling stream: signature histogram matches the
  // index-only generator.
  const schema::SignatureIndex from_graph =
      schema::SignatureIndex::FromMatrix(matrix, false);
  EXPECT_EQ(from_graph.total_subjects(), 200);
}

TEST(WordnetTest, MatchesPaperHeadlineNumbers) {
  const schema::SignatureIndex index = GenerateWordnet();
  EXPECT_EQ(index.num_properties(), 12u);
  const std::vector<int> all = AllSignatures(index);
  const double cov = eval::CovCounts(index, all).Value();
  const double sim = eval::SimCounts(index, all).Value();
  EXPECT_NEAR(cov, 0.44, 0.02);  // paper: 0.44
  EXPECT_NEAR(sim, 0.93, 0.02);  // paper: 0.93
  // Paper: 53 signatures; rare-combination sampling gives the same order.
  EXPECT_GE(index.num_signatures(), 25u);
  EXPECT_LE(index.num_signatures(), 80u);
}

TEST(WordnetTest, DominantPropertiesAreUniversal) {
  const schema::SignatureIndex index = GenerateWordnet();
  for (const char* prop :
       {"gloss", "label", "synsetId", "containsWordSense"}) {
    const int id = index.FindProperty(prop);
    ASSERT_GE(id, 0);
    EXPECT_EQ(index.PropertyCount(id), index.total_subjects()) << prop;
  }
}


TEST(WordnetTest, GraphMaterializationConsistent) {
  WordnetConfig config;
  config.num_subjects = 150;
  const rdf::Graph graph = GenerateWordnetGraph(config);
  const rdf::Graph nouns = graph.SortSlice(rdf::vocab::kWnNounSynset);
  EXPECT_EQ(nouns.subjects().size(), 150u);
  const schema::SignatureIndex index = schema::SignatureIndex::FromMatrix(
      schema::PropertyMatrix::FromGraph(nouns), false);
  EXPECT_EQ(index.total_subjects(), 150);
  // The dominant properties remain universal in the materialized graph.
  bool found_gloss = false;
  for (std::size_t p = 0; p < index.num_properties(); ++p) {
    if (index.property_name(p).find("gloss") != std::string::npos) {
      found_gloss = true;
      EXPECT_EQ(index.PropertyCount(p), 150);
    }
  }
  EXPECT_TRUE(found_gloss);
}

TEST(YagoTest, RespectsSpec) {
  YagoSortSpec spec;
  spec.num_properties = 12;
  spec.num_signatures = 20;
  spec.num_subjects = 1000;
  spec.seed = 3;
  const schema::SignatureIndex index = GenerateYagoSort(spec);
  EXPECT_EQ(index.num_signatures(), 20u);
  EXPECT_EQ(index.num_properties(), 12u);
  EXPECT_GE(index.total_subjects(), 1000 * 9 / 10);
  // All supports distinct (FromSignatures would not enforce this).
  std::set<std::vector<int>> seen;
  for (std::size_t i = 0; i < index.num_signatures(); ++i) {
    EXPECT_TRUE(seen.insert(index.signature(i).support()).second);
  }
}

TEST(YagoTest, ScalesAcrossShapeSweep) {
  for (int sigs : {2, 8, 24}) {
    for (int props : {6, 12}) {
      YagoSortSpec spec;
      spec.num_signatures = sigs;
      spec.num_properties = props;
      spec.num_subjects = 500;
      spec.seed = static_cast<std::uint64_t>(sigs * 100 + props);
      const schema::SignatureIndex index = GenerateYagoSort(spec);
      EXPECT_EQ(index.num_signatures(), static_cast<std::size_t>(sigs));
      EXPECT_EQ(index.num_properties(), static_cast<std::size_t>(props));
    }
  }
}

TEST(MixedTest, GroundTruthShapes) {
  const MixedDataset dataset = GenerateMixed();
  EXPECT_EQ(dataset.subject_names.size(), 67u);  // 27 + 40
  EXPECT_EQ(dataset.is_drug_company.size(), 67u);
  EXPECT_EQ(dataset.index.total_subjects(), 67);
  int drugs = 0;
  for (bool b : dataset.is_drug_company) drugs += b;
  EXPECT_EQ(drugs, 27);
  // Subject names resolve to signatures.
  for (const std::string& name : dataset.subject_names) {
    EXPECT_GE(dataset.index.FindSubjectSignature(name), 0) << name;
  }
  // Plumbing properties exist in the index.
  for (const std::string& prop : dataset.plumbing_properties) {
    EXPECT_GE(dataset.index.FindProperty(prop), 0) << prop;
  }
}

TEST(MixedTest, PopulationsUseDisjointSpecificProperties) {
  const MixedDataset dataset = GenerateMixed();
  const int has_product = dataset.index.FindProperty("hasProduct");
  const int dynasty = dataset.index.FindProperty("dynasty");
  ASSERT_GE(has_product, 0);
  ASSERT_GE(dynasty, 0);
  for (std::size_t i = 0; i < dataset.subject_names.size(); ++i) {
    const int sig =
        dataset.index.FindSubjectSignature(dataset.subject_names[i]);
    ASSERT_GE(sig, 0);
    if (dataset.is_drug_company[i]) {
      EXPECT_FALSE(dataset.index.Has(sig, dynasty));
    } else {
      EXPECT_FALSE(dataset.index.Has(sig, has_product));
    }
  }
}

TEST(RandomGraphTest, MatrixHasNoEmptyRowsOrColumns) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    RandomMatrixSpec spec;
    spec.num_subjects = 8;
    spec.num_properties = 5;
    spec.density = 0.2;  // stress the repair path
    spec.seed = seed;
    const schema::PropertyMatrix m = GenerateRandomMatrix(spec);
    for (std::size_t r = 0; r < m.num_subjects(); ++r) {
      int ones = 0;
      for (std::size_t c = 0; c < m.num_properties(); ++c) ones += m.At(r, c);
      EXPECT_GT(ones, 0) << "empty row, seed " << seed;
    }
    for (std::size_t c = 0; c < m.num_properties(); ++c) {
      int ones = 0;
      for (std::size_t r = 0; r < m.num_subjects(); ++r) ones += m.At(r, c);
      EXPECT_GT(ones, 0) << "empty column, seed " << seed;
    }
  }
}

TEST(RandomGraphTest, IndexMeetsSpec) {
  RandomIndexSpec spec;
  spec.num_signatures = 10;
  spec.num_properties = 6;
  spec.seed = 4;
  const schema::SignatureIndex index = GenerateRandomIndex(spec);
  EXPECT_EQ(index.num_signatures(), 10u);
  EXPECT_EQ(index.num_properties(), 6u);
}

}  // namespace
}  // namespace rdfsr::gen
