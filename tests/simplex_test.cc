// LP solver tests: textbook optima, infeasibility, unboundedness, bounds,
// degenerate cases, and bound overrides.

#include <gtest/gtest.h>

#include "ilp/simplex.h"

namespace rdfsr::ilp {
namespace {

TEST(SimplexTest, SolvesTextbookMaximization) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  (min -3x -5y)
  // Optimum: x = 2, y = 6, objective 36.
  Model m;
  const int x = m.AddVariable("x", 0, kInfinity, false);
  const int y = m.AddVariable("y", 0, kInfinity, false);
  m.AddConstraint("c1", {{x, 1.0}}, -kInfinity, 4);
  m.AddConstraint("c2", {{y, 2.0}}, -kInfinity, 12);
  m.AddConstraint("c3", {{x, 3.0}, {y, 2.0}}, -kInfinity, 18);
  m.SetObjective({{x, -3.0}, {y, -5.0}});
  const LpResult r = SolveLp(m);
  ASSERT_EQ(r.status, LpStatus::kOptimal) << LpStatusName(r.status);
  EXPECT_NEAR(r.objective, -36.0, 1e-6);
  EXPECT_NEAR(r.x[x], 2.0, 1e-6);
  EXPECT_NEAR(r.x[y], 6.0, 1e-6);
}

TEST(SimplexTest, HandlesEqualityConstraints) {
  // min x + y s.t. x + y = 3, x - y = 1  ->  x = 2, y = 1.
  Model m;
  const int x = m.AddVariable("x", 0, kInfinity, false);
  const int y = m.AddVariable("y", 0, kInfinity, false);
  m.AddConstraint("sum", {{x, 1.0}, {y, 1.0}}, 3, 3);
  m.AddConstraint("diff", {{x, 1.0}, {y, -1.0}}, 1, 1);
  m.SetObjective({{x, 1.0}, {y, 1.0}});
  const LpResult r = SolveLp(m);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.x[x], 2.0, 1e-6);
  EXPECT_NEAR(r.x[y], 1.0, 1e-6);
}

TEST(SimplexTest, DetectsInfeasibility) {
  Model m;
  const int x = m.AddVariable("x", 0, 1, false);
  m.AddConstraint("impossible", {{x, 1.0}}, 2, 3);
  const LpResult r = SolveLp(m);
  EXPECT_EQ(r.status, LpStatus::kInfeasible);
}

TEST(SimplexTest, DetectsConflictingRows) {
  Model m;
  const int x = m.AddVariable("x", 0, kInfinity, false);
  const int y = m.AddVariable("y", 0, kInfinity, false);
  m.AddConstraint("a", {{x, 1.0}, {y, 1.0}}, 4, 4);
  m.AddConstraint("b", {{x, 1.0}, {y, 1.0}}, -kInfinity, 2);
  const LpResult r = SolveLp(m);
  EXPECT_EQ(r.status, LpStatus::kInfeasible);
}

TEST(SimplexTest, DetectsUnboundedness) {
  Model m;
  const int x = m.AddVariable("x", 0, kInfinity, false);
  m.SetObjective({{x, -1.0}});  // maximize x with no cap
  const LpResult r = SolveLp(m);
  EXPECT_EQ(r.status, LpStatus::kUnbounded);
}

TEST(SimplexTest, RespectsVariableBounds) {
  // min -x with 1 <= x <= 2.5: optimum at upper bound.
  Model m;
  const int x = m.AddVariable("x", 1, 2.5, false);
  m.SetObjective({{x, -1.0}});
  const LpResult r = SolveLp(m);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.x[x], 2.5, 1e-6);
}

TEST(SimplexTest, FeasibilityOnlyProblems) {
  // Zero objective, need x + y >= 1 with binaries relaxed.
  Model m;
  const int x = m.AddVariable("x", 0, 1, false);
  const int y = m.AddVariable("y", 0, 1, false);
  m.AddConstraint("cover", {{x, 1.0}, {y, 1.0}}, 1, kInfinity);
  const LpResult r = SolveLp(m);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_GE(r.x[x] + r.x[y], 1.0 - 1e-6);
}

TEST(SimplexTest, NegativeLowerBounds) {
  // min x with -5 <= x <= 5 and x >= -3  ->  x = -3.
  Model m;
  const int x = m.AddVariable("x", -5, 5, false);
  m.AddConstraint("floor", {{x, 1.0}}, -3, kInfinity);
  m.SetObjective({{x, 1.0}});
  const LpResult r = SolveLp(m);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.x[x], -3.0, 1e-6);
}

TEST(SimplexTest, FreeVariables) {
  // min x + y, x free, x + y >= 2, x - y = 0 -> x = y = 1.
  Model m;
  const int x = m.AddVariable("x", -kInfinity, kInfinity, false);
  const int y = m.AddVariable("y", -kInfinity, kInfinity, false);
  m.AddConstraint("sum", {{x, 1.0}, {y, 1.0}}, 2, kInfinity);
  m.AddConstraint("eq", {{x, 1.0}, {y, -1.0}}, 0, 0);
  m.SetObjective({{x, 1.0}, {y, 1.0}});
  const LpResult r = SolveLp(m);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.x[x], 1.0, 1e-6);
  EXPECT_NEAR(r.x[y], 1.0, 1e-6);
}

TEST(SimplexTest, DegenerateProblemTerminates) {
  // Multiple redundant constraints through the same vertex.
  Model m;
  const int x = m.AddVariable("x", 0, kInfinity, false);
  const int y = m.AddVariable("y", 0, kInfinity, false);
  m.AddConstraint("a", {{x, 1.0}, {y, 1.0}}, -kInfinity, 1);
  m.AddConstraint("b", {{x, 2.0}, {y, 2.0}}, -kInfinity, 2);
  m.AddConstraint("c", {{x, 1.0}}, -kInfinity, 1);
  m.AddConstraint("d", {{y, 1.0}}, -kInfinity, 1);
  m.SetObjective({{x, -1.0}, {y, -1.0}});
  const LpResult r = SolveLp(m);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, -1.0, 1e-6);
}

TEST(SimplexTest, BoundOverridesShrinkTheFeasibleSet) {
  Model m;
  const int x = m.AddVariable("x", 0, 10, false);
  m.SetObjective({{x, -1.0}});
  std::vector<double> lb = {0.0}, ub = {3.0};
  const LpResult r = SolveLp(m, {}, &lb, &ub);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.x[x], 3.0, 1e-6);
}

TEST(SimplexTest, CrossedOverrideBoundsAreInfeasible) {
  Model m;
  (void)m.AddVariable("x", 0, 10, false);
  std::vector<double> lb = {5.0}, ub = {4.0};
  const LpResult r = SolveLp(m, {}, &lb, &ub);
  EXPECT_EQ(r.status, LpStatus::kInfeasible);
}

TEST(SimplexTest, LargerAssignmentLikeProblem) {
  // 4x4 assignment relaxation: min sum c_ij x_ij, doubly stochastic.
  // LP optimum of assignment is integral.
  const double cost[4][4] = {{9, 2, 7, 8}, {6, 4, 3, 7}, {5, 8, 1, 8},
                             {7, 6, 9, 4}};
  Model m;
  int var[4][4];
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      var[i][j] = m.AddVariable("x", 0, 1, false);
    }
  }
  for (int i = 0; i < 4; ++i) {
    std::vector<LinTerm> row, col;
    for (int j = 0; j < 4; ++j) {
      row.push_back({var[i][j], 1.0});
      col.push_back({var[j][i], 1.0});
    }
    m.AddConstraint("row", std::move(row), 1, 1);
    m.AddConstraint("col", std::move(col), 1, 1);
  }
  std::vector<LinTerm> obj;
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) obj.push_back({var[i][j], cost[i][j]});
  }
  m.SetObjective(obj);
  const LpResult r = SolveLp(m);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 13.0, 1e-6);  // r0c1 + r1c0 + r2c2 + r3c3 = 2+6+1+4
}

TEST(SimplexTest, IterationLimitIsADistinctOutcomeWithTheCount) {
  // Row/col equality constraints make the initial slack basis infeasible, so
  // phase-1 alone needs several pivots — 2 cannot finish. The cap must come
  // back as kIterationLimit with the pivot count, never masquerade as
  // kInfeasible/kOptimal.
  Model m;
  int var[3][3];
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) var[i][j] = m.AddVariable("x", 0, 1, false);
  }
  for (int i = 0; i < 3; ++i) {
    std::vector<LinTerm> row, col;
    for (int j = 0; j < 3; ++j) {
      row.push_back({var[i][j], 1.0});
      col.push_back({var[j][i], 1.0});
    }
    m.AddConstraint("row", std::move(row), 1, 1);
    m.AddConstraint("col", std::move(col), 1, 1);
  }
  SimplexOptions options;
  options.max_iterations = 2;
  const LpResult r = SolveLp(m, options);
  EXPECT_EQ(r.status, LpStatus::kIterationLimit);
  EXPECT_EQ(r.iterations, 2);
  EXPECT_STREQ(LpStatusName(r.status), "IterationLimit");

  // The same model converges once the cap is lifted.
  const LpResult full = SolveLp(m);
  EXPECT_EQ(full.status, LpStatus::kOptimal);
}

}  // namespace
}  // namespace rdfsr::ilp
