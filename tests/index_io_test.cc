// Signature-index serialization tests: round trips, size expectations, and
// malformed-input rejection.

#include <gtest/gtest.h>

#include <cstdio>

#include "gen/persons.h"
#include "gen/random_graph.h"
#include "schema/index_io.h"

namespace rdfsr::schema {
namespace {

void ExpectSameIndex(const SignatureIndex& a, const SignatureIndex& b) {
  ASSERT_EQ(a.num_properties(), b.num_properties());
  for (std::size_t p = 0; p < a.num_properties(); ++p) {
    EXPECT_EQ(a.property_name(p), b.property_name(p));
  }
  ASSERT_EQ(a.num_signatures(), b.num_signatures());
  for (std::size_t i = 0; i < a.num_signatures(); ++i) {
    EXPECT_EQ(a.signature(i).count, b.signature(i).count);
    EXPECT_EQ(a.signature(i).support(), b.signature(i).support());
  }
}

TEST(IndexIoTest, RoundTripsRandomIndexes) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    gen::RandomIndexSpec spec;
    spec.num_signatures = 6;
    spec.num_properties = 5;
    spec.seed = seed;
    const SignatureIndex index = gen::GenerateRandomIndex(spec);
    auto parsed = ParseIndex(SerializeIndex(index));
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    ExpectSameIndex(index, *parsed);
  }
}

TEST(IndexIoTest, RoundTripsPersonsAndIsSmall) {
  const SignatureIndex index = gen::GeneratePersons();
  const std::string text = SerializeIndex(index);
  // The paper's pitch: the whole view fits in a few KB.
  EXPECT_LT(text.size(), 4096u);
  auto parsed = ParseIndex(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ExpectSameIndex(index, *parsed);
}

TEST(IndexIoTest, PropertyNamesMayContainSpaces) {
  std::vector<Signature> sigs = {{{0, 1}, 3}};
  const SignatureIndex index = SignatureIndex::FromSignatures(
      {"has name", "http://x/p with space"}, sigs);
  auto parsed = ParseIndex(SerializeIndex(index));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ExpectSameIndex(index, *parsed);
}

TEST(IndexIoTest, FileRoundTrip) {
  const SignatureIndex index = gen::GeneratePersons({.num_subjects = 300});
  const std::string path = "/tmp/rdfsr_index_io_test.sig";
  ASSERT_TRUE(WriteIndexFile(index, path).ok());
  auto parsed = ReadIndexFile(path);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ExpectSameIndex(index, *parsed);
  std::remove(path.c_str());
}

TEST(IndexIoTest, MissingFileIsNotFound) {
  auto r = ReadIndexFile("/nonexistent/index.sig");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(IndexIoTest, RejectsMalformedInput) {
  const char* cases[] = {
      "",                                          // empty
      "wrong header\n",                            // bad header
      "# rdfsr-signature-index v1\nnope\n",        // bad properties line
      "# rdfsr-signature-index v1\nproperties 1\n",  // truncated names
      // Unused property:
      "# rdfsr-signature-index v1\nproperties 2\na\nb\nsignatures 1\n"
      "3 1 0\n",
      // Decreasing support:
      "# rdfsr-signature-index v1\nproperties 2\na\nb\nsignatures 1\n"
      "3 2 1 0\n",
      // Out-of-range property id:
      "# rdfsr-signature-index v1\nproperties 1\na\nsignatures 1\n3 1 5\n",
      // Zero count:
      "# rdfsr-signature-index v1\nproperties 1\na\nsignatures 1\n0 1 0\n",
      // Trailing tokens:
      "# rdfsr-signature-index v1\nproperties 1\na\nsignatures 1\n3 1 0 9\n",
      // Truncated support list:
      "# rdfsr-signature-index v1\nproperties 2\na\nb\nsignatures 1\n3 2 0\n",
  };
  for (const char* text : cases) {
    auto r = ParseIndex(text);
    EXPECT_FALSE(r.ok()) << "accepted: " << text;
  }
}

TEST(IndexIoTest, CanonicalOrderSurvivesSerialization) {
  // Serialization is in canonical order, so parse(serialize(x)) compares
  // equal element-wise even if x was built from shuffled input.
  std::vector<Signature> sigs = {{{1}, 2}, {{0}, 9}, {{0, 1}, 5}};
  const SignatureIndex index =
      SignatureIndex::FromSignatures({"a", "b"}, sigs);
  auto parsed = ParseIndex(SerializeIndex(index));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->signature(0).count, 9);  // largest first
}

}  // namespace
}  // namespace rdfsr::schema
