// The Section 6 encoding, cross-checked against brute-force partition search:
// for small random datasets, the MIP must report a refinement exactly when
// some signature partition into <= k sorts meets the threshold — for every
// builtin rule, several k, and several thresholds, under every encoding
// variant (symmetry breaking, linking, aux integrality).

#include <gtest/gtest.h>

#include "core/ilp_builder.h"
#include "core/solver.h"
#include "eval/evaluator.h"
#include "eval/partitions.h"
#include "gen/random_graph.h"
#include "ilp/branch_and_bound.h"
#include "rules/builtins.h"

namespace rdfsr::core {
namespace {

/// Ground truth by exhaustive set-partition enumeration.
bool BruteForceExists(const eval::Evaluator& evaluator, int k, Rational theta) {
  const int n = static_cast<int>(evaluator.index().num_signatures());
  bool found = false;
  eval::ForEachSetPartition(n, [&](const std::vector<int>& class_of) {
    const int classes =
        *std::max_element(class_of.begin(), class_of.end()) + 1;
    if (classes > k) return true;
    std::vector<std::vector<int>> parts(classes);
    for (int i = 0; i < n; ++i) parts[class_of[i]].push_back(i);
    for (const auto& part : parts) {
      if (!SigmaAtLeast(evaluator.Counts(part), theta)) return true;
    }
    found = true;
    return false;  // stop
  });
  return found;
}

Decision IlpDecide(const eval::Evaluator& evaluator, int k, Rational theta,
                   const IlpBuildOptions& build) {
  const std::vector<eval::TauCount> taus =
      eval::EnumerateTauCounts(evaluator.rule(), evaluator.index());
  IlpEncoding enc =
      BuildRefinementIlp(evaluator.index(), evaluator.rule(), taus, k, theta,
                         build);
  ilp::MipOptions mip;
  mip.max_nodes = 200000;
  mip.time_limit_seconds = 30;
  const ilp::MipResult r = ilp::SolveMip(enc.model, mip);
  if (r.status == ilp::MipStatus::kFeasible ||
      r.status == ilp::MipStatus::kOptimal) {
    // Decoded solutions must validate exactly.
    SortRefinement ref = enc.Decode(r.x);
    EXPECT_TRUE(ValidateRefinement(evaluator, ref, theta).ok())
        << "decoded refinement fails exact validation";
    EXPECT_LE(ref.num_sorts(), static_cast<std::size_t>(k));
    return Decision::kExists;
  }
  if (r.status == ilp::MipStatus::kInfeasible) return Decision::kNotExists;
  return Decision::kUnknown;
}

struct EncodingVariant {
  const char* name;
  IlpBuildOptions options;
};

std::vector<EncodingVariant> Variants() {
  std::vector<EncodingVariant> variants;
  {
    EncodingVariant v{"default", {}};
    variants.push_back(v);
  }
  {
    EncodingVariant v{"hash_symmetry", {}};
    v.options.symmetry = IlpBuildOptions::SymmetryBreaking::kHash;
    variants.push_back(v);
  }
  {
    EncodingVariant v{"no_symmetry", {}};
    v.options.symmetry = IlpBuildOptions::SymmetryBreaking::kNone;
    variants.push_back(v);
  }
  {
    EncodingVariant v{"binary_aux", {}};
    v.options.continuous_aux = false;
    variants.push_back(v);
  }
  {
    EncodingVariant v{"paper_linking", {}};
    v.options.sign_directed_linking = false;
    v.options.substitute_singleton_taus = false;
    v.options.continuous_aux = false;
    variants.push_back(v);
  }
  return variants;
}

class IlpBuilderAgreementTest
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(IlpBuilderAgreementTest, MatchesBruteForceAcrossRulesAndVariants) {
  const int k = std::get<0>(GetParam());
  const std::uint64_t seed = std::get<1>(GetParam());

  gen::RandomIndexSpec spec;
  spec.num_signatures = 4;
  spec.num_properties = 3;
  spec.max_count = 6;
  spec.seed = seed;
  const schema::SignatureIndex index = gen::GenerateRandomIndex(spec);

  const rules::Rule rules_to_test[] = {
      rules::CovRule(),
      rules::SimRule(),
      rules::SymDepRule("p0", "p1"),
  };
  const Rational thetas[] = {Rational(1, 2), Rational(3, 4), Rational(9, 10),
                             Rational(1)};

  for (const rules::Rule& rule : rules_to_test) {
    auto evaluator = eval::MakeEvaluator(rule, &index);
    for (const Rational& theta : thetas) {
      const bool expected = BruteForceExists(*evaluator, k, theta);
      for (const EncodingVariant& variant : Variants()) {
        const Decision got = IlpDecide(*evaluator, k, theta, variant.options);
        ASSERT_NE(got, Decision::kUnknown)
            << rule.name() << " theta=" << theta.ToString() << " "
            << variant.name;
        EXPECT_EQ(got == Decision::kExists, expected)
            << rule.name() << " theta=" << theta.ToString() << " k=" << k
            << " seed=" << seed << " variant=" << variant.name;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    KBySeed, IlpBuilderAgreementTest,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values(11, 22, 33)),
    [](const ::testing::TestParamInfo<std::tuple<int, std::uint64_t>>& info) {
      return "k" + std::to_string(std::get<0>(info.param)) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

TEST(IlpBuilderTest, ReweightMatchesPerInstanceRebuildBitForBit) {
  // One reused instance swept through a theta ladder must equal a fresh
  // build at every step — including after crossing weight sign flips — for
  // every encoding variant. ToString covers names, coefficients, and bounds.
  gen::RandomIndexSpec spec;
  spec.num_signatures = 5;
  spec.num_properties = 4;
  spec.seed = 3;
  const schema::SignatureIndex index = gen::GenerateRandomIndex(spec);
  const Rational thetas[] = {Rational(0),      Rational(1, 10), Rational(1, 2),
                             Rational(17, 20), Rational(9, 10), Rational(1)};

  for (const rules::Rule& rule : {rules::SimRule(), rules::CovRule()}) {
    const auto taus = eval::EnumerateTauCounts(rule, index);
    for (const EncodingVariant& variant : Variants()) {
      RefinementIlpInstance reused(index, AnalyzeTaus(taus, index), 2,
                                   variant.options);
      for (const Rational& theta : thetas) {
        reused.Reweight(theta);
        const IlpEncoding fresh =
            BuildRefinementIlp(index, rule, taus, 2, theta, variant.options);
        EXPECT_EQ(reused.model().ToString(), fresh.model.ToString())
            << rule.name() << " theta=" << theta.ToString() << " variant "
            << variant.name;
      }
      // Sweeping back down must remain exact (no residue from earlier
      // instances).
      reused.Reweight(Rational(1, 2));
      const IlpEncoding fresh = BuildRefinementIlp(index, rule, taus, 2,
                                                   Rational(1, 2),
                                                   variant.options);
      EXPECT_EQ(reused.model().ToString(), fresh.model.ToString());
    }
  }
}

TEST(IlpBuilderTest, RefinementIlpRowsIsExact) {
  gen::RandomIndexSpec spec;
  spec.num_signatures = 6;
  spec.num_properties = 4;
  spec.seed = 5;
  const schema::SignatureIndex index = gen::GenerateRandomIndex(spec);
  for (const rules::Rule& rule : {rules::CovRule(), rules::SimRule()}) {
    const auto taus = eval::EnumerateTauCounts(rule, index);
    const auto shapes = AnalyzeTaus(taus, index);
    for (int k : {1, 2, 4}) {
      for (const EncodingVariant& variant : Variants()) {
        RefinementIlpInstance instance(index, shapes, k, variant.options);
        const std::size_t rows =
            RefinementIlpRows(index, shapes, k, variant.options);
        EXPECT_EQ(rows, instance.model().num_constraints())
            << rule.name() << " k=" << k << " variant " << variant.name;
        // The solver's row ceiling gates on the active count: never more
        // than the skeleton, equal to it without sign-directed linking.
        const std::size_t active =
            RefinementIlpActiveRows(index, shapes, k, variant.options);
        EXPECT_LE(active, rows)
            << rule.name() << " k=" << k << " variant " << variant.name;
        if (!variant.options.sign_directed_linking) {
          EXPECT_EQ(active, rows)
              << rule.name() << " k=" << k << " variant " << variant.name;
        }
      }
    }
  }
}

TEST(IlpBuilderTest, EncodingShapesDiagnostics) {
  gen::RandomIndexSpec spec;
  spec.num_signatures = 5;
  spec.num_properties = 4;
  spec.seed = 8;
  const schema::SignatureIndex index = gen::GenerateRandomIndex(spec);
  const rules::Rule cov = rules::CovRule();
  const auto taus = eval::EnumerateTauCounts(cov, index);

  IlpEncoding enc =
      BuildRefinementIlp(index, cov, taus, 2, Rational(9, 10), {});
  // Cov taus always touch one signature with the property either inside the
  // support (substituted) or outside (needs a U link).
  EXPECT_GT(enc.num_tau_substituted, 0);
  EXPECT_GT(enc.model.num_variables(), 0u);
  EXPECT_GT(enc.model.num_constraints(), 0u);

  // Every X variable is binary; with continuous_aux U/T are not.
  int integer_vars = 0;
  for (const auto& v : enc.model.variables()) integer_vars += v.is_integer;
  EXPECT_EQ(integer_vars, 2 * 5);  // k * num_signatures
}

TEST(IlpBuilderTest, DecodeDropsEmptySorts) {
  std::vector<schema::Signature> sigs = {{{0}, 2}, {{1}, 1}};
  const schema::SignatureIndex index =
      schema::SignatureIndex::FromSignatures({"a", "b"}, sigs);
  const rules::Rule cov = rules::CovRule();
  const auto taus = eval::EnumerateTauCounts(cov, index);
  IlpEncoding enc = BuildRefinementIlp(index, cov, taus, 3, Rational(0), {});
  // Hand-build a solution: both signatures in sort 0.
  std::vector<double> x(enc.model.num_variables(), 0.0);
  x[enc.x_var[0][0]] = 1.0;
  x[enc.x_var[0][1]] = 1.0;
  const SortRefinement ref = enc.Decode(x);
  ASSERT_EQ(ref.num_sorts(), 1u);
  EXPECT_EQ(ref.sorts[0].size(), 2u);
}

TEST(IlpBuilderTest, ThetaOneRequiresPerfectSorts) {
  // Signature {a} and {a,b}: together Cov < 1; apart each sort is perfect.
  std::vector<schema::Signature> sigs = {{{0}, 3}, {{0, 1}, 2}};
  const schema::SignatureIndex index =
      schema::SignatureIndex::FromSignatures({"a", "b"}, sigs);
  auto evaluator = eval::MakeEvaluator(rules::CovRule(), &index);

  EXPECT_EQ(IlpDecide(*evaluator, 1, Rational(1), {}), Decision::kNotExists);
  EXPECT_EQ(IlpDecide(*evaluator, 2, Rational(1), {}), Decision::kExists);
}

}  // namespace
}  // namespace rdfsr::core
