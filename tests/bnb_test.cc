// Branch-and-bound MIP tests: knapsacks, covers, infeasibility proofs, limits.

#include <gtest/gtest.h>

#include "ilp/branch_and_bound.h"

namespace rdfsr::ilp {
namespace {

TEST(BnbTest, SolvesSmallKnapsack) {
  // max 10a + 13b + 7c, 3a + 4b + 2c <= 6, binaries.
  // Best: a + c = 17 (weight 5); b + c = 20 (weight 6) <- optimum.
  Model m;
  const int a = m.AddBinary("a");
  const int b = m.AddBinary("b");
  const int c = m.AddBinary("c");
  m.AddConstraint("w", {{a, 3.0}, {b, 4.0}, {c, 2.0}}, -kInfinity, 6);
  m.SetObjective({{a, -10.0}, {b, -13.0}, {c, -7.0}});
  MipOptions options;
  options.stop_at_first_incumbent = false;
  const MipResult r = SolveMip(m, options);
  ASSERT_EQ(r.status, MipStatus::kOptimal) << MipStatusName(r.status);
  EXPECT_NEAR(r.objective, -20.0, 1e-6);
  EXPECT_NEAR(r.x[b], 1.0, 1e-6);
  EXPECT_NEAR(r.x[c], 1.0, 1e-6);
}

TEST(BnbTest, IntegralityChangesTheAnswer) {
  // LP relaxation of knapsack takes fractions; MIP may not.
  // max 5x + 4y, 6x + 5y <= 8, binaries: LP opt ~ 6.67, MIP opt = 5.
  Model m;
  const int x = m.AddBinary("x");
  const int y = m.AddBinary("y");
  m.AddConstraint("w", {{x, 6.0}, {y, 5.0}}, -kInfinity, 8);
  m.SetObjective({{x, -5.0}, {y, -4.0}});
  MipOptions options;
  options.stop_at_first_incumbent = false;
  const MipResult r = SolveMip(m, options);
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_NEAR(r.objective, -5.0, 1e-6);
}

TEST(BnbTest, ProvesInfeasibility) {
  // x + y = 1 with x = y (binaries) has no integer solution.
  Model m;
  const int x = m.AddBinary("x");
  const int y = m.AddBinary("y");
  m.AddConstraint("sum", {{x, 1.0}, {y, 1.0}}, 1, 1);
  m.AddConstraint("eq", {{x, 1.0}, {y, -1.0}}, 0, 0);
  const MipResult r = SolveMip(m);
  EXPECT_EQ(r.status, MipStatus::kInfeasible);
}

TEST(BnbTest, LpInfeasibleImmediately) {
  Model m;
  const int x = m.AddBinary("x");
  m.AddConstraint("no", {{x, 1.0}}, 2, 3);
  const MipResult r = SolveMip(m);
  EXPECT_EQ(r.status, MipStatus::kInfeasible);
  EXPECT_LE(r.nodes, 1);
}

TEST(BnbTest, FeasibilityModeStopsAtFirstIncumbent) {
  // Set cover: pick at least one of each pair; many solutions exist.
  Model m;
  std::vector<int> vars;
  for (int i = 0; i < 6; ++i) vars.push_back(m.AddBinary("v"));
  for (int i = 0; i < 5; ++i) {
    m.AddConstraint("cover", {{vars[i], 1.0}, {vars[i + 1], 1.0}}, 1,
                    kInfinity);
  }
  const MipResult r = SolveMip(m);  // zero objective, first-incumbent mode
  ASSERT_TRUE(r.status == MipStatus::kFeasible ||
              r.status == MipStatus::kOptimal);
  EXPECT_TRUE(m.IsFeasible(r.x));
}

TEST(BnbTest, MixedIntegerContinuous) {
  // min y s.t. y >= x - 0.5, y >= 0.5 - x, x binary, y continuous:
  // at x in {0,1}, y = 0.5.
  Model m;
  const int x = m.AddBinary("x");
  const int y = m.AddVariable("y", 0, kInfinity, false);
  m.AddConstraint("a", {{y, 1.0}, {x, -1.0}}, -0.5, kInfinity);
  m.AddConstraint("b", {{y, 1.0}, {x, 1.0}}, 0.5, kInfinity);
  m.SetObjective({{y, 1.0}});
  MipOptions options;
  options.stop_at_first_incumbent = false;
  const MipResult r = SolveMip(m, options);
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_NEAR(r.objective, 0.5, 1e-6);
}

TEST(BnbTest, NodeLimitYieldsUnknown) {
  // An infeasibility proof needing more than 1 node, capped at 1 node.
  Model m;
  std::vector<int> vars;
  for (int i = 0; i < 10; ++i) vars.push_back(m.AddBinary("v"));
  // Sum must be 5.5-ish: LP feasible (fractional), IP infeasible.
  std::vector<LinTerm> sum;
  for (int v : vars) sum.push_back({v, 2.0});
  m.AddConstraint("half", std::move(sum), 11, 11);  // sum of evens = 11
  MipOptions options;
  options.max_nodes = 1;
  const MipResult r = SolveMip(m, options);
  EXPECT_EQ(r.status, MipStatus::kUnknown);
}

TEST(BnbTest, InfeasibleParityProblemFullProof) {
  // 2 * sum(binaries) = 11 is infeasible; the full tree proves it.
  Model m;
  std::vector<int> vars;
  for (int i = 0; i < 6; ++i) vars.push_back(m.AddBinary("v"));
  std::vector<LinTerm> sum;
  for (int v : vars) sum.push_back({v, 2.0});
  m.AddConstraint("parity", std::move(sum), 7, 7);
  const MipResult r = SolveMip(m);
  EXPECT_EQ(r.status, MipStatus::kInfeasible);
}

TEST(BnbTest, EqualityAssignmentProblem) {
  // Three items into two groups, each group at most 2 items, groups
  // balanced by weight: weights 3, 3, 4; |w(A) - w(B)| <= 2 is feasible
  // (A = {4, 3}? diff 3-... A={3,3}=6, B={4}: diff 2 -> feasible).
  Model m;
  int assign[3];  // 1 = group A
  for (int i = 0; i < 3; ++i) assign[i] = m.AddBinary("a");
  const double w[3] = {3, 3, 4};
  // diff = sum w_i (2 a_i - 1) in [-2, 2]  <=>  sum 2 w_i a_i in [w-2, w+2].
  std::vector<LinTerm> terms;
  for (int i = 0; i < 3; ++i) terms.push_back({assign[i], 2 * w[i]});
  m.AddConstraint("balance", std::move(terms), 10 - 2, 10 + 2);
  const MipResult r = SolveMip(m);
  ASSERT_TRUE(r.status == MipStatus::kFeasible ||
              r.status == MipStatus::kOptimal);
  const double sum = 2 * (3 * r.x[assign[0]] + 3 * r.x[assign[1]] +
                          4 * r.x[assign[2]]);
  EXPECT_GE(sum, 8 - 1e-6);
  EXPECT_LE(sum, 12 + 1e-6);
}

TEST(BnbTest, TimeLimitRespected) {
  Model m;
  std::vector<int> vars;
  for (int i = 0; i < 24; ++i) vars.push_back(m.AddBinary("v"));
  std::vector<LinTerm> sum;
  for (int v : vars) sum.push_back({v, 2.0});
  m.AddConstraint("odd", std::move(sum), 23, 23);  // infeasible parity
  MipOptions options;
  options.time_limit_seconds = 0.05;
  const MipResult r = SolveMip(m, options);
  // Either it proves infeasibility very fast or it hits the limit.
  EXPECT_TRUE(r.status == MipStatus::kInfeasible ||
              r.status == MipStatus::kUnknown);
  EXPECT_LT(r.seconds, 5.0);
  if (r.status == MipStatus::kUnknown) {
    EXPECT_EQ(r.stop_reason, MipStopReason::kTimeLimit);
  }
}

TEST(BnbTest, NodeLimitRecordsItsStopReason) {
  // Same parity model as NodeLimitYieldsUnknown: kUnknown alone does not say
  // WHICH resource ran out — the stop reason must.
  Model m;
  std::vector<int> vars;
  for (int i = 0; i < 10; ++i) vars.push_back(m.AddBinary("v"));
  std::vector<LinTerm> sum;
  for (int v : vars) sum.push_back({v, 2.0});
  m.AddConstraint("half", std::move(sum), 11, 11);
  MipOptions options;
  options.max_nodes = 1;
  const MipResult r = SolveMip(m, options);
  ASSERT_EQ(r.status, MipStatus::kUnknown);
  EXPECT_EQ(r.stop_reason, MipStopReason::kNodeLimit);
  EXPECT_STREQ(MipStopReasonName(r.stop_reason), "NodeLimit");
}

TEST(BnbTest, LpIterationLimitSurfacesAsItsOwnStopReason) {
  // With a 1-pivot LP budget no node relaxation can converge; every node is
  // distrusted, the tree ends undecided, and the result must say the LP
  // iteration limit (with a hit count) was the cause.
  Model m;
  std::vector<int> vars;
  for (int i = 0; i < 10; ++i) vars.push_back(m.AddBinary("v"));
  std::vector<LinTerm> sum;
  for (int v : vars) sum.push_back({v, 2.0});
  m.AddConstraint("half", std::move(sum), 11, 11);
  MipOptions options;
  options.lp.max_iterations = 1;
  const MipResult r = SolveMip(m, options);
  ASSERT_EQ(r.status, MipStatus::kUnknown);
  EXPECT_EQ(r.stop_reason, MipStopReason::kLpIterationLimit);
  EXPECT_GE(r.lp_iteration_limit_hits, 1);
}

TEST(BnbTest, CompletedSolveLeavesStopReasonNone) {
  Model m;
  const int x = m.AddBinary("x");
  m.SetObjective({{x, -1.0}});
  MipOptions options;
  options.stop_at_first_incumbent = false;
  const MipResult r = SolveMip(m, options);
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_EQ(r.stop_reason, MipStopReason::kNone);
  EXPECT_EQ(r.lp_iteration_limit_hits, 0);
}

TEST(BnbTest, CutoffToleranceScalesWithObjectiveMagnitude) {
  // The same knapsack with its objective scaled by 1e9. The old absolute-only
  // cutoff (incumbent - 1e-9) is far below the LP rounding noise at this
  // magnitude, so equal-valued subtrees were re-explored instead of pruned;
  // the relative term keeps the pruning meaningful and the optimum exact.
  const double kScale = 1e9;
  Model m;
  const int a = m.AddBinary("a");
  const int b = m.AddBinary("b");
  const int c = m.AddBinary("c");
  m.AddConstraint("w", {{a, 3.0}, {b, 4.0}, {c, 2.0}}, -kInfinity, 6);
  m.SetObjective({{a, -10.0 * kScale}, {b, -13.0 * kScale}, {c, -7.0 * kScale}});
  MipOptions options;
  options.stop_at_first_incumbent = false;
  const MipResult r = SolveMip(m, options);
  ASSERT_EQ(r.status, MipStatus::kOptimal) << MipStatusName(r.status);
  EXPECT_NEAR(r.objective, -20.0 * kScale, 1e-3 * kScale);
  EXPECT_NEAR(r.x[b], 1.0, 1e-6);
  EXPECT_NEAR(r.x[c], 1.0, 1e-6);
}

TEST(BnbTest, BranchingRulesAgreeOnTheOptimum) {
  // Pseudo-cost and most-fractional branching explore different trees but
  // must land on the same optimal value.
  Model m;
  std::vector<int> vars;
  const double value[6] = {9, 7, 6, 5, 4, 3};
  const double weight[6] = {5, 4, 4, 3, 2, 2};
  std::vector<LinTerm> cap, obj;
  for (int i = 0; i < 6; ++i) {
    vars.push_back(m.AddBinary("v"));
    cap.push_back({vars[i], weight[i]});
    obj.push_back({vars[i], -value[i]});
  }
  m.AddConstraint("cap", std::move(cap), -kInfinity, 9);
  m.SetObjective(std::move(obj));
  MipOptions pseudo;
  pseudo.stop_at_first_incumbent = false;
  pseudo.branching = BranchingRule::kPseudoCost;
  MipOptions fractional = pseudo;
  fractional.branching = BranchingRule::kMostFractional;
  const MipResult rp = SolveMip(m, pseudo);
  const MipResult rf = SolveMip(m, fractional);
  ASSERT_EQ(rp.status, MipStatus::kOptimal);
  ASSERT_EQ(rf.status, MipStatus::kOptimal);
  EXPECT_NEAR(rp.objective, rf.objective, 1e-6);
}

TEST(BnbTest, RootProbingFixesForcedBinaries) {
  // x + y + z = 3 over binaries forces all three to 1: bound propagation
  // proves it at the root, so the dive needs at most the root node.
  Model m;
  const int x = m.AddBinary("x");
  const int y = m.AddBinary("y");
  const int z = m.AddBinary("z");
  m.AddConstraint("all", {{x, 1.0}, {y, 1.0}, {z, 1.0}}, 3, 3);
  MipOptions options;
  options.use_presolve = false;  // leave the fixing to the probe
  const MipResult r = SolveMip(m, options);
  ASSERT_TRUE(r.status == MipStatus::kFeasible ||
              r.status == MipStatus::kOptimal);
  EXPECT_NEAR(r.x[x], 1.0, 1e-6);
  EXPECT_NEAR(r.x[y], 1.0, 1e-6);
  EXPECT_NEAR(r.x[z], 1.0, 1e-6);
  EXPECT_LE(r.nodes, 1);
}

TEST(BnbTest, RootProbingProvesInfeasibilityWithoutSearch) {
  // Both values of x propagate to a contradiction: x = 1 violates the first
  // row, x = 0 the second. The probe alone must prove infeasibility.
  Model m;
  const int x = m.AddBinary("x");
  const int y = m.AddBinary("y");
  m.AddConstraint("no_up", {{x, 2.0}, {y, 1.0}}, -kInfinity, 1.5);
  m.AddConstraint("no_down", {{x, 2.0}, {y, -1.0}}, 1.5, kInfinity);
  MipOptions options;
  options.use_presolve = false;
  const MipResult r = SolveMip(m, options);
  EXPECT_EQ(r.status, MipStatus::kInfeasible);
  EXPECT_EQ(r.nodes, 0);
}

TEST(BnbTest, ResultCarriesEngineStatsAndRootBasis) {
  Model m;
  std::vector<int> vars;
  for (int i = 0; i < 6; ++i) vars.push_back(m.AddBinary("v"));
  std::vector<LinTerm> sum;
  for (int v : vars) sum.push_back({v, 2.0});
  m.AddConstraint("parity", std::move(sum), 7, 7);  // infeasible: forces work
  const MipResult r = SolveMip(m);
  EXPECT_EQ(r.status, MipStatus::kInfeasible);
  EXPECT_GT(r.lp_stats.pivots + r.lp_stats.refactorizations, 0);
  if (r.nodes > 0) {
    // One basic variable per row; statuses cover structurals plus slacks.
    EXPECT_FALSE(r.root_basis.empty());
    EXPECT_GT(r.root_basis.status.size(), r.root_basis.basic.size());
  }
}

}  // namespace
}  // namespace rdfsr::ilp
