// Tests for the public façade (api/rdfsr.h): the full quickstart pipeline —
// load → slice → sigma → highest-theta → report — driven through the façade
// only, plus the error paths the façade is responsible for surfacing.
//
// Deliberately includes nothing but api/rdfsr.h: this test is the compile-time
// proof that the umbrella header is self-sufficient for applications.

#include "api/rdfsr.h"

#include <memory>
#include <set>
#include <utility>

#include "gtest/gtest.h"

namespace rdfsr::api {
namespace {

// The quickstart dataset: four Persons; alice and carol carry
// name/email/birthDate, bob and dave only name. Two signatures.
constexpr const char* kQuickstart = R"(
<http://x/alice> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://x/Person> .
<http://x/alice> <http://x/name> "Alice" .
<http://x/alice> <http://x/email> "alice@example.org" .
<http://x/alice> <http://x/birthDate> "1990-01-01" .
<http://x/bob> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://x/Person> .
<http://x/bob> <http://x/name> "Bob" .
<http://x/carol> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://x/Person> .
<http://x/carol> <http://x/name> "Carol" .
<http://x/carol> <http://x/email> "carol@example.org" .
<http://x/carol> <http://x/birthDate> "1985-05-05" .
<http://x/dave> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://x/Person> .
<http://x/dave> <http://x/name> "Dave" .
)";

Dataset LoadQuickstart() {
  auto dataset =
      Dataset::FromNTriplesText(kQuickstart, {.sort = "http://x/Person"});
  EXPECT_TRUE(dataset.ok()) << dataset.status().ToString();
  return *std::move(dataset);
}

TEST(DatasetTest, LoadsAndSlicesTheQuickstartSort) {
  const Dataset people = LoadQuickstart();
  EXPECT_EQ(people.num_triples(), 8u);  // type triples excluded from D_t
  EXPECT_EQ(people.num_subjects(), 4);
  EXPECT_EQ(people.num_properties(), 3u);
  EXPECT_EQ(people.num_signatures(), 2u);
  EXPECT_EQ(people.sort(), "http://x/Person");
  EXPECT_NE(people.Describe().find("4 subjects"), std::string::npos);
  EXPECT_FALSE(people.RenderView().empty());
}

TEST(DatasetTest, WholeGraphKeepsTypeColumnAndListsSorts) {
  auto whole = Dataset::FromNTriplesText(kQuickstart);
  ASSERT_TRUE(whole.ok());
  EXPECT_EQ(whole->num_triples(), 12u);
  EXPECT_EQ(whole->num_properties(), 4u);  // + rdf:type column
  const auto sorts = whole->SortIris();
  ASSERT_EQ(sorts.size(), 1u);
  EXPECT_EQ(sorts.front(), "http://x/Person");

  auto sliced = whole->Slice("http://x/Person");
  ASSERT_TRUE(sliced.ok());
  EXPECT_EQ(sliced->num_subjects(), 4);
  EXPECT_EQ(sliced->num_properties(), 3u);
}

TEST(DatasetTest, SignatureOfNamedSubjects) {
  const Dataset people = LoadQuickstart();
  const int alice = people.SignatureOf("http://x/alice");
  const int carol = people.SignatureOf("http://x/carol");
  const int bob = people.SignatureOf("http://x/bob");
  ASSERT_GE(alice, 0);
  EXPECT_EQ(alice, carol);  // identical property sets
  EXPECT_NE(alice, bob);
  EXPECT_EQ(people.SignatureOf("http://x/nobody"), -1);
}

TEST(DatasetTest, CopiesShareState) {
  const Dataset people = LoadQuickstart();
  const Dataset copy = people;  // NOLINT(performance-unnecessary-copy-...)
  EXPECT_EQ(&people.index(), &copy.index());
}

TEST(AnalysisTest, QuickstartSigmaAndHighestTheta) {
  const Dataset people = LoadQuickstart();
  auto cov = people.Analyze("cov");
  ASSERT_TRUE(cov.ok());
  // 8 one-cells in a 4 x 3 view.
  EXPECT_NEAR(cov->Sigma(), 2.0 / 3.0, 1e-12);
  auto sim = people.Analyze("sim");
  ASSERT_TRUE(sim.ok());
  EXPECT_NEAR(sim->Sigma(), 2.0 / 3.0, 1e-12);

  // Splitting the two signatures yields two perfectly covered sorts.
  auto best = cov->HighestTheta(2);
  ASSERT_TRUE(best.ok()) << best.status().ToString();
  EXPECT_EQ(best->theta, Rational(1));
  ASSERT_EQ(best->num_sorts(), 2u);

  // The sorts partition the signature ids exactly.
  std::set<int> seen;
  for (const auto& sort : best->sorts) {
    for (int sig : sort) EXPECT_TRUE(seen.insert(sig).second);
  }
  EXPECT_EQ(seen.size(), people.num_signatures());

  // Per-sort sigma through the façade agrees with the threshold.
  for (const auto& sort : best->sorts) {
    EXPECT_NEAR(cov->Sigma(sort), 1.0, 1e-12);
  }

  EXPECT_NE(cov->Summary(*best).find("2 sorts"), std::string::npos);
  EXPECT_FALSE(cov->Render(*best).empty());
  EXPECT_NE(cov->Report(*best).find("implicit sort"), std::string::npos);
}

TEST(AnalysisTest, LowestKOnQuickstart) {
  const Dataset people = LoadQuickstart();
  auto cov = people.Analyze("cov");
  ASSERT_TRUE(cov.ok());
  auto result = cov->LowestK(1.0);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->num_sorts(), 2u);
  EXPECT_EQ(result->theta, Rational(1));
}

TEST(AnalysisTest, CustomRuleTextAndFluentOptions) {
  const Dataset people = LoadQuickstart();
  auto custom = people.Analyze(
      "subj(c1) = subj(c2) && prop(c1) = <http://x/email> && "
      "prop(c2) = <http://x/birthDate> && val(c1) = 1 -> val(c2) = 1");
  ASSERT_TRUE(custom.ok()) << custom.status().ToString();
  // Both email-holders also hold birthDate.
  EXPECT_NEAR(custom->Sigma(), 1.0, 1e-12);

  custom->TimeLimit(5.0).MaxNodes(10000).ThetaStep(0.05).GreedyRestarts(2);
  EXPECT_EQ(custom->options().mip.time_limit_seconds, 5.0);
  EXPECT_EQ(custom->options().mip.max_nodes, 10000);
  EXPECT_EQ(custom->options().theta_step, 0.05);
  EXPECT_EQ(custom->options().greedy.restarts, 2);
  auto best = custom->HighestTheta(2);
  ASSERT_TRUE(best.ok());
}

TEST(AnalysisTest, OutlivesTheDatasetThatCreatedIt) {
  // The Analysis must keep the underlying index alive on its own — the raw
  // borrowed-pointer chains of the internal layers must not leak through.
  std::unique_ptr<Analysis> analysis;
  {
    const Dataset people = LoadQuickstart();
    auto cov = people.Analyze("cov");
    ASSERT_TRUE(cov.ok());
    analysis = std::make_unique<Analysis>(std::move(*cov));
  }  // Dataset destroyed here
  EXPECT_NEAR(analysis->Sigma(), 2.0 / 3.0, 1e-12);
  auto best = analysis->HighestTheta(2);
  ASSERT_TRUE(best.ok());
  EXPECT_EQ(best->theta, Rational(1));
}

TEST(ErrorPathTest, BadNTriplesReportsParseError) {
  auto dataset = Dataset::FromNTriplesText("<http://x/a> nonsense\n");
  ASSERT_FALSE(dataset.ok());
  EXPECT_EQ(dataset.status().code(), StatusCode::kParseError);
}

TEST(ErrorPathTest, MissingFileFails) {
  auto dataset = Dataset::FromNTriplesFile("/nonexistent/quickstart.nt");
  EXPECT_FALSE(dataset.ok());
}

TEST(ErrorPathTest, UnknownSortIriIsNotFound) {
  auto dataset =
      Dataset::FromNTriplesText(kQuickstart, {.sort = "http://x/Robot"});
  ASSERT_FALSE(dataset.ok());
  EXPECT_EQ(dataset.status().code(), StatusCode::kNotFound);

  auto whole = Dataset::FromNTriplesText(kQuickstart);
  ASSERT_TRUE(whole.ok());
  auto slice = whole->Slice("http://x/Robot");
  ASSERT_FALSE(slice.ok());
  EXPECT_EQ(slice.status().code(), StatusCode::kNotFound);
}

TEST(ErrorPathTest, SliceWithoutRetainedGraphFails) {
  auto no_graph = Dataset::FromNTriplesText(
      kQuickstart, {.sort = "http://x/Person", .keep_graph = false});
  ASSERT_TRUE(no_graph.ok());
  EXPECT_TRUE(no_graph->SortIris().empty());
  auto slice = no_graph->Slice("http://x/Person");
  ASSERT_FALSE(slice.ok());
  EXPECT_EQ(slice.status().code(), StatusCode::kInvalidArgument);
}

TEST(ErrorPathTest, MalformedCustomRuleIsParseError) {
  const Dataset people = LoadQuickstart();
  auto analysis = people.Analyze("val(c");
  ASSERT_FALSE(analysis.ok());
  EXPECT_EQ(analysis.status().code(), StatusCode::kParseError);
}

TEST(ErrorPathTest, BadBuiltinSpecsAreInvalid) {
  const Dataset people = LoadQuickstart();
  EXPECT_FALSE(people.Analyze("").ok());
  EXPECT_FALSE(people.Analyze("dep:onlyone").ok());
  EXPECT_FALSE(people.Analyze("cov-ignoring:").ok());
}

TEST(ErrorPathTest, BadSearchParametersAreInvalid) {
  const Dataset people = LoadQuickstart();
  auto cov = people.Analyze("cov");
  ASSERT_TRUE(cov.ok());
  auto bad_k = cov->HighestTheta(0);
  ASSERT_FALSE(bad_k.ok());
  EXPECT_EQ(bad_k.status().code(), StatusCode::kInvalidArgument);
  auto bad_theta = cov->LowestK(1.5);
  ASSERT_FALSE(bad_theta.ok());
  EXPECT_EQ(bad_theta.status().code(), StatusCode::kInvalidArgument);
}

TEST(RuleSpecTest, ResolvesBuiltinFamilies) {
  for (const char* spec :
       {"cov", "sim", "cov-ignoring:p1,p2", "dep:p1,p2", "symdep:p1,p2",
        "depdisj:p1,p2", "c = c -> val(c) = 1"}) {
    EXPECT_TRUE(ResolveRuleSpec(spec).ok()) << spec;
  }
  EXPECT_FALSE(ResolveRuleSpec("symdep:a,b,c").ok());
}

}  // namespace
}  // namespace rdfsr::api
