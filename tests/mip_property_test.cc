// Randomized property tests for the MIP stack: brute-force enumeration over
// all binary assignments must agree with branch-and-bound on feasibility AND
// on the optimal objective, across random constraint systems.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "ilp/branch_and_bound.h"
#include "util/rng.h"

namespace rdfsr::ilp {
namespace {

struct RandomMip {
  Model model;
  int num_vars = 0;
};

/// Random binary program: n in [3,10] binaries, m in [2,6] range rows with
/// small integer coefficients, random objective.
RandomMip MakeRandomBinaryProgram(std::uint64_t seed, bool with_objective) {
  Rng rng(seed);
  RandomMip out;
  out.num_vars = 3 + static_cast<int>(rng.Below(8));
  for (int j = 0; j < out.num_vars; ++j) {
    out.model.AddBinary("b" + std::to_string(j));
  }
  const int rows = 2 + static_cast<int>(rng.Below(5));
  for (int r = 0; r < rows; ++r) {
    std::vector<LinTerm> terms;
    for (int j = 0; j < out.num_vars; ++j) {
      if (rng.Chance(0.6)) {
        terms.push_back({j, static_cast<double>(rng.Range(-3, 3))});
      }
    }
    if (terms.empty()) terms.push_back({0, 1.0});
    // Range rows of varying tightness.
    const double lo = static_cast<double>(rng.Range(-4, 2));
    const double hi = lo + static_cast<double>(rng.Below(5));
    out.model.AddConstraint("r" + std::to_string(r), std::move(terms), lo, hi);
  }
  if (with_objective) {
    std::vector<LinTerm> obj;
    for (int j = 0; j < out.num_vars; ++j) {
      obj.push_back({j, static_cast<double>(rng.Range(-5, 5))});
    }
    out.model.SetObjective(obj);
  }
  return out;
}

/// Exhaustive optimum over the 2^n binary grid; NaN when infeasible.
double BruteForceOptimum(const Model& model, int num_vars) {
  double best = std::numeric_limits<double>::quiet_NaN();
  for (int mask = 0; mask < (1 << num_vars); ++mask) {
    std::vector<double> x(num_vars);
    for (int j = 0; j < num_vars; ++j) x[j] = (mask >> j) & 1;
    if (!model.IsFeasible(x, 1e-9)) continue;
    const double obj = model.ObjectiveValue(x);
    if (std::isnan(best) || obj < best) best = obj;
  }
  return best;
}

class MipAgreementTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MipAgreementTest, FeasibilityMatchesBruteForce) {
  const RandomMip mip = MakeRandomBinaryProgram(GetParam(), false);
  const double brute = BruteForceOptimum(mip.model, mip.num_vars);
  MipOptions options;
  options.max_nodes = 100000;
  const MipResult r = SolveMip(mip.model, options);
  if (std::isnan(brute)) {
    EXPECT_EQ(r.status, MipStatus::kInfeasible) << "seed " << GetParam();
  } else {
    ASSERT_TRUE(r.status == MipStatus::kFeasible ||
                r.status == MipStatus::kOptimal)
        << "seed " << GetParam() << ": " << MipStatusName(r.status);
    EXPECT_TRUE(mip.model.IsFeasible(r.x, 1e-6));
  }
}

TEST_P(MipAgreementTest, OptimumMatchesBruteForce) {
  const RandomMip mip = MakeRandomBinaryProgram(GetParam() * 7919 + 13, true);
  const double brute = BruteForceOptimum(mip.model, mip.num_vars);
  MipOptions options;
  options.stop_at_first_incumbent = false;
  options.max_nodes = 200000;
  const MipResult r = SolveMip(mip.model, options);
  if (std::isnan(brute)) {
    EXPECT_EQ(r.status, MipStatus::kInfeasible) << "seed " << GetParam();
  } else {
    ASSERT_EQ(r.status, MipStatus::kOptimal)
        << "seed " << GetParam() << ": " << MipStatusName(r.status);
    EXPECT_NEAR(r.objective, brute, 1e-6) << "seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MipAgreementTest,
                         ::testing::Range<std::uint64_t>(1, 41));

TEST(MipMixedTest, ContinuousRelaxationInsideBinaryProgram) {
  // Binary y selects between two continuous regimes for x in [0, 10]:
  //   x <= 2 + 8y, x >= 5y; minimize -x + 3y.
  // y=0: x <= 2 -> obj -2; y=1: x <= 10, x >= 5 -> obj -10 + 3 = -7.
  Model m;
  const int x = m.AddVariable("x", 0, 10, false);
  const int y = m.AddBinary("y");
  m.AddConstraint("cap", {{x, 1.0}, {y, -8.0}}, -kInfinity, 2);
  m.AddConstraint("floor", {{x, 1.0}, {y, -5.0}}, 0, kInfinity);
  m.SetObjective({{x, -1.0}, {y, 3.0}});
  MipOptions options;
  options.stop_at_first_incumbent = false;
  const MipResult r = SolveMip(m, options);
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_NEAR(r.objective, -7.0, 1e-6);
  EXPECT_NEAR(r.x[y], 1.0, 1e-6);
  EXPECT_NEAR(r.x[x], 10.0, 1e-6);
}

TEST(MipMixedTest, GeneralIntegerVariables) {
  // max 4a + 5b st a + 2b <= 7, 3a + b <= 9, a,b in {0..4} integer.
  // Optimum: enumerate... a=2,b=2: obj 18, feas (6<=7, 8<=9) ✓;
  // a=1,b=3: 19, (7<=7, 6<=9) ✓; a=0,b=3: 15; a=2,b=2:18; a=1,b=3 => 19.
  Model m;
  const int a = m.AddVariable("a", 0, 4, true);
  const int b = m.AddVariable("b", 0, 4, true);
  m.AddConstraint("c1", {{a, 1.0}, {b, 2.0}}, -kInfinity, 7);
  m.AddConstraint("c2", {{a, 3.0}, {b, 1.0}}, -kInfinity, 9);
  m.SetObjective({{a, -4.0}, {b, -5.0}});
  MipOptions options;
  options.stop_at_first_incumbent = false;
  const MipResult r = SolveMip(m, options);
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_NEAR(r.objective, -19.0, 1e-6);
}

}  // namespace
}  // namespace rdfsr::ilp
