// Unit tests for rdf/: terms, dictionary interning, graphs, sort slices.

#include <gtest/gtest.h>

#include "rdf/dictionary.h"
#include "rdf/graph.h"
#include "rdf/term.h"
#include "rdf/vocab.h"

namespace rdfsr::rdf {
namespace {

TEST(TermTest, FactoryAndKinds) {
  const Term iri = Term::Iri("http://example.org/a");
  EXPECT_TRUE(iri.is_iri());
  const Term lit = Term::Literal("hi", "", "en");
  EXPECT_TRUE(lit.is_literal());
  const Term blank = Term::Blank("b0");
  EXPECT_TRUE(blank.is_blank());
}

TEST(TermTest, EqualityDistinguishesKinds) {
  EXPECT_NE(Term::Iri("x"), Term::Blank("x"));
  EXPECT_NE(Term::Iri("x"), Term::Literal("x"));
  EXPECT_EQ(Term::Iri("x"), Term::Iri("x"));
}

TEST(TermTest, EqualityDistinguishesLiteralDecorations) {
  EXPECT_NE(Term::Literal("a"), Term::Literal("a", "xsd:string"));
  EXPECT_NE(Term::Literal("a"), Term::Literal("a", "", "en"));
  EXPECT_EQ(Term::Literal("a", "dt"), Term::Literal("a", "dt"));
}

TEST(TermTest, ToStringSurfaceForms) {
  EXPECT_EQ(Term::Iri("http://x/a").ToString(), "<http://x/a>");
  EXPECT_EQ(Term::Blank("n1").ToString(), "_:n1");
  EXPECT_EQ(Term::Literal("hi").ToString(), "\"hi\"");
  EXPECT_EQ(Term::Literal("hi", "", "en").ToString(), "\"hi\"@en");
  EXPECT_EQ(Term::Literal("5", "http://x/int").ToString(),
            "\"5\"^^<http://x/int>");
  EXPECT_EQ(Term::Literal("a\"b\\c\nd").ToString(), "\"a\\\"b\\\\c\\nd\"");
}

TEST(DictionaryTest, InternIsIdempotent) {
  Dictionary dict;
  const TermId a = dict.InternIri("http://x/a");
  const TermId b = dict.InternIri("http://x/b");
  EXPECT_NE(a, b);
  EXPECT_EQ(dict.InternIri("http://x/a"), a);
  EXPECT_EQ(dict.size(), 2u);
}

TEST(DictionaryTest, FindDoesNotIntern) {
  Dictionary dict;
  EXPECT_EQ(dict.FindIri("http://x/a"), kInvalidTermId);
  EXPECT_EQ(dict.size(), 0u);
  dict.InternIri("http://x/a");
  EXPECT_NE(dict.FindIri("http://x/a"), kInvalidTermId);
}

TEST(DictionaryTest, RoundTripsTerms) {
  Dictionary dict;
  const Term lit = Term::Literal("x", "dt", "");
  const TermId id = dict.Intern(lit);
  EXPECT_EQ(dict.term(id), lit);
}

TEST(GraphTest, SetSemantics) {
  Graph g;
  EXPECT_TRUE(g.AddIri("s", "p", "o"));
  EXPECT_FALSE(g.AddIri("s", "p", "o"));  // duplicate
  EXPECT_EQ(g.size(), 1u);
}

TEST(GraphTest, SubjectsAndPropertiesInFirstAppearanceOrder) {
  Graph g;
  g.AddIri("s2", "p1", "o");
  g.AddIri("s1", "p2", "o");
  g.AddIri("s2", "p2", "o");
  ASSERT_EQ(g.subjects().size(), 2u);
  EXPECT_EQ(g.dict().term(g.subjects()[0]).lexical, "s2");
  EXPECT_EQ(g.dict().term(g.subjects()[1]).lexical, "s1");
  ASSERT_EQ(g.properties().size(), 2u);
  EXPECT_EQ(g.dict().term(g.properties()[0]).lexical, "p1");
}

TEST(GraphTest, HasProperty) {
  Graph g;
  g.AddIri("s", "p", "o");
  const TermId s = g.dict().FindIri("s");
  const TermId p = g.dict().FindIri("p");
  const TermId o = g.dict().FindIri("o");
  EXPECT_TRUE(g.HasProperty(s, p));
  EXPECT_FALSE(g.HasProperty(o, p));
  EXPECT_FALSE(g.HasProperty(s, o));
}

TEST(GraphTest, SortSliceSelectsDeclaredSubjects) {
  Graph g;
  g.AddIri("alice", vocab::kRdfType, "Person");
  g.AddIri("alice", "name", "n1");
  g.AddIri("alice", "age", "a1");
  g.AddIri("acme", vocab::kRdfType, "Company");
  g.AddIri("acme", "name", "n2");
  g.AddIri("bob", vocab::kRdfType, "Person");
  g.AddIri("bob", "name", "n3");

  const Graph persons = g.SortSlice("Person");
  EXPECT_EQ(persons.subjects().size(), 2u);
  EXPECT_EQ(persons.size(), 3u);  // alice:name, alice:age, bob:name
  // The type triples themselves are excluded by default.
  const TermId type_prop = persons.dict().FindIri(vocab::kRdfType);
  for (const Triple& t : persons.triples()) {
    EXPECT_NE(t.predicate, type_prop);
  }
}

TEST(GraphTest, SortSliceCanKeepTypeTriples) {
  Graph g;
  g.AddIri("alice", vocab::kRdfType, "Person");
  g.AddIri("alice", "name", "n1");
  const Graph persons = g.SortSlice("Person", /*include_type=*/true);
  EXPECT_EQ(persons.size(), 2u);
}

TEST(GraphTest, SortSliceOfUnknownSortIsEmpty) {
  Graph g;
  g.AddIri("s", "p", "o");
  EXPECT_TRUE(g.SortSlice("Nothing").empty());
}

TEST(GraphTest, SortConstants) {
  Graph g;
  g.AddIri("a", vocab::kRdfType, "Person");
  g.AddIri("b", vocab::kRdfType, "Company");
  g.AddIri("c", vocab::kRdfType, "Person");
  const std::vector<TermId> sorts = g.SortConstants();
  ASSERT_EQ(sorts.size(), 2u);
  EXPECT_EQ(g.dict().term(sorts[0]).lexical, "Person");
  EXPECT_EQ(g.dict().term(sorts[1]).lexical, "Company");
}

TEST(GraphTest, SharedDictionaryAcrossSlices) {
  Graph g;
  g.AddIri("a", vocab::kRdfType, "T");
  g.AddIri("a", "p", "o");
  const Graph slice = g.SortSlice("T");
  EXPECT_EQ(slice.dict_ptr().get(), g.dict_ptr().get());
}

}  // namespace
}  // namespace rdfsr::rdf
