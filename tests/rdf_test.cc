// Unit tests for rdf/: terms, dictionary interning, graphs, sort slices.

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <unordered_set>

#include "rdf/dictionary.h"
#include "rdf/graph.h"
#include "rdf/term.h"
#include "rdf/vocab.h"

namespace rdfsr::rdf {
namespace {

TEST(TermTest, FactoryAndKinds) {
  const Term iri = Term::Iri("http://example.org/a");
  EXPECT_TRUE(iri.is_iri());
  const Term lit = Term::Literal("hi", "", "en");
  EXPECT_TRUE(lit.is_literal());
  const Term blank = Term::Blank("b0");
  EXPECT_TRUE(blank.is_blank());
}

TEST(TermTest, EqualityDistinguishesKinds) {
  EXPECT_NE(Term::Iri("x"), Term::Blank("x"));
  EXPECT_NE(Term::Iri("x"), Term::Literal("x"));
  EXPECT_EQ(Term::Iri("x"), Term::Iri("x"));
}

TEST(TermTest, EqualityDistinguishesLiteralDecorations) {
  EXPECT_NE(Term::Literal("a"), Term::Literal("a", "xsd:string"));
  EXPECT_NE(Term::Literal("a"), Term::Literal("a", "", "en"));
  EXPECT_EQ(Term::Literal("a", "dt"), Term::Literal("a", "dt"));
}

TEST(TermTest, ToStringSurfaceForms) {
  EXPECT_EQ(Term::Iri("http://x/a").ToString(), "<http://x/a>");
  EXPECT_EQ(Term::Blank("n1").ToString(), "_:n1");
  EXPECT_EQ(Term::Literal("hi").ToString(), "\"hi\"");
  EXPECT_EQ(Term::Literal("hi", "", "en").ToString(), "\"hi\"@en");
  EXPECT_EQ(Term::Literal("5", "http://x/int").ToString(),
            "\"5\"^^<http://x/int>");
  EXPECT_EQ(Term::Literal("a\"b\\c\nd").ToString(), "\"a\\\"b\\\\c\\nd\"");
}

TEST(DictionaryTest, InternIsIdempotent) {
  Dictionary dict;
  const TermId a = dict.InternIri("http://x/a");
  const TermId b = dict.InternIri("http://x/b");
  EXPECT_NE(a, b);
  EXPECT_EQ(dict.InternIri("http://x/a"), a);
  EXPECT_EQ(dict.size(), 2u);
}

TEST(DictionaryTest, FindDoesNotIntern) {
  Dictionary dict;
  EXPECT_EQ(dict.FindIri("http://x/a"), kInvalidTermId);
  EXPECT_EQ(dict.size(), 0u);
  dict.InternIri("http://x/a");
  EXPECT_NE(dict.FindIri("http://x/a"), kInvalidTermId);
}

TEST(DictionaryTest, RoundTripsTerms) {
  Dictionary dict;
  const Term lit = Term::Literal("x", "dt", "");
  const TermId id = dict.Intern(lit);
  EXPECT_EQ(dict.term(id), lit);
}

TEST(DictionaryTest, HeterogeneousLookupByView) {
  Dictionary dict;
  const TermId iri = dict.InternIri("http://x/a");
  const TermId lit = dict.Intern(Term::Literal("v", "http://x/dt", ""));

  // string_view overloads resolve without materializing a Term.
  EXPECT_EQ(dict.FindIri(std::string_view("http://x/a")), iri);
  EXPECT_EQ(dict.Find(TermView(TermKind::kLiteral, "v", "http://x/dt", "")),
            lit);
  // Kind participates in identity: same lexical, different kind.
  EXPECT_EQ(dict.Find(TermView::Blank("http://x/a")), kInvalidTermId);
  // Interning through a view is idempotent with Term interning.
  EXPECT_EQ(dict.Intern(TermView::Iri("http://x/a")), iri);
  EXPECT_EQ(dict.Intern(TermView::Iri("http://x/new")), TermId{2});
  EXPECT_EQ(dict.size(), 3u);
}

TEST(TermViewTest, HashesAndComparesLikeTerm) {
  const Term t = Term::Literal("lex", "dt", "");
  const TermView v(t);
  EXPECT_EQ(TermHash()(t), TermHash()(v));
  EXPECT_TRUE(TermEq()(t, v));
  EXPECT_FALSE(TermEq()(TermView(Term::Literal("lex", "", "dt")), t));
  EXPECT_EQ(v.ToTerm(), t);
}

TEST(GraphTest, SetSemantics) {
  Graph g;
  EXPECT_TRUE(g.AddIri("s", "p", "o"));
  EXPECT_FALSE(g.AddIri("s", "p", "o"));  // duplicate
  EXPECT_EQ(g.size(), 1u);
}

TEST(GraphTest, SubjectsAndPropertiesInFirstAppearanceOrder) {
  Graph g;
  g.AddIri("s2", "p1", "o");
  g.AddIri("s1", "p2", "o");
  g.AddIri("s2", "p2", "o");
  ASSERT_EQ(g.subjects().size(), 2u);
  EXPECT_EQ(g.dict().term(g.subjects()[0]).lexical, "s2");
  EXPECT_EQ(g.dict().term(g.subjects()[1]).lexical, "s1");
  ASSERT_EQ(g.properties().size(), 2u);
  EXPECT_EQ(g.dict().term(g.properties()[0]).lexical, "p1");
}

TEST(GraphTest, HasProperty) {
  Graph g;
  g.AddIri("s", "p", "o");
  const TermId s = g.dict().FindIri("s");
  const TermId p = g.dict().FindIri("p");
  const TermId o = g.dict().FindIri("o");
  EXPECT_TRUE(g.HasProperty(s, p));
  EXPECT_FALSE(g.HasProperty(o, p));
  EXPECT_FALSE(g.HasProperty(s, o));
}

TEST(GraphTest, SortSliceSelectsDeclaredSubjects) {
  Graph g;
  g.AddIri("alice", vocab::kRdfType, "Person");
  g.AddIri("alice", "name", "n1");
  g.AddIri("alice", "age", "a1");
  g.AddIri("acme", vocab::kRdfType, "Company");
  g.AddIri("acme", "name", "n2");
  g.AddIri("bob", vocab::kRdfType, "Person");
  g.AddIri("bob", "name", "n3");

  const Graph persons = g.SortSlice("Person");
  EXPECT_EQ(persons.subjects().size(), 2u);
  EXPECT_EQ(persons.size(), 3u);  // alice:name, alice:age, bob:name
  // The type triples themselves are excluded by default.
  const TermId type_prop = persons.dict().FindIri(vocab::kRdfType);
  for (const Triple& t : persons.triples()) {
    EXPECT_NE(t.predicate, type_prop);
  }
}

TEST(GraphTest, SortSliceCanKeepTypeTriples) {
  Graph g;
  g.AddIri("alice", vocab::kRdfType, "Person");
  g.AddIri("alice", "name", "n1");
  const Graph persons = g.SortSlice("Person", /*include_type=*/true);
  EXPECT_EQ(persons.size(), 2u);
}

TEST(GraphTest, SortSliceOfUnknownSortIsEmpty) {
  Graph g;
  g.AddIri("s", "p", "o");
  EXPECT_TRUE(g.SortSlice("Nothing").empty());
}

TEST(GraphTest, SortConstants) {
  Graph g;
  g.AddIri("a", vocab::kRdfType, "Person");
  g.AddIri("b", vocab::kRdfType, "Company");
  g.AddIri("c", vocab::kRdfType, "Person");
  const std::vector<TermId> sorts = g.SortConstants();
  ASSERT_EQ(sorts.size(), 2u);
  EXPECT_EQ(g.dict().term(sorts[0]).lexical, "Person");
  EXPECT_EQ(g.dict().term(sorts[1]).lexical, "Company");
}

TEST(GraphTest, SharedDictionaryAcrossSlices) {
  Graph g;
  g.AddIri("a", vocab::kRdfType, "T");
  g.AddIri("a", "p", "o");
  const Graph slice = g.SortSlice("T");
  EXPECT_EQ(slice.dict_ptr().get(), g.dict_ptr().get());
}

TEST(GraphTest, TypePostingsTrackTypeTriplesIncrementally) {
  Graph g;
  g.AddIri("a", "p", "o");
  EXPECT_TRUE(g.TypePostings().empty());  // rdf:type not even interned yet
  g.AddIri("a", vocab::kRdfType, "T");
  g.AddIri("b", "p", "o");
  ASSERT_EQ(g.TypePostings().size(), 1u);
  EXPECT_EQ(g.TypePostings()[0], 1u);
  // Postings extend as triples arrive after a build (no full rescan needed
  // for correctness — this asserts the observable contents only).
  g.AddIri("b", vocab::kRdfType, "T");
  ASSERT_EQ(g.TypePostings().size(), 2u);
  EXPECT_EQ(g.TypePostings()[1], 3u);
  for (std::uint32_t i : g.TypePostings()) {
    EXPECT_EQ(g.triples()[i].predicate, g.dict().FindIri(vocab::kRdfType));
  }
}

TEST(GraphTest, AddTermViewsMatchesAddTerms) {
  Graph by_term;
  by_term.AddIri("s", "p", "o");
  by_term.Add(Term::Iri("s"), Term::Iri("q"), Term::Literal("v", "", "en"));

  Graph by_view;
  by_view.Add(TermView::Iri("s"), TermView::Iri("p"), TermView::Iri("o"));
  by_view.Add(TermView::Iri("s"), TermView::Iri("q"),
              TermView(TermKind::kLiteral, "v", "", "en"));

  ASSERT_EQ(by_term.size(), by_view.size());
  ASSERT_EQ(by_term.dict().size(), by_view.dict().size());
  for (TermId id = 0; id < by_term.dict().size(); ++id) {
    EXPECT_EQ(by_term.dict().term(id), by_view.dict().term(id));
  }
}

// Distribution regression tests for TripleHash. The pre-fix hash seeded the
// state with the raw subject id and XORed the object in last with no final
// mixing; on small dictionaries (ids 0..few hundred) that meant (a) flipping
// one object bit flipped exactly one hash bit (object avalanche of 1.0), and
// (b) the top 16 hash bits took only a handful of values (8 of 4096 possible
// patterns in this very workload), starving any hash table that keys off high
// bits. The thresholds below fail loudly for that scheme (measured 1.0 and 8)
// and pass with wide margin for a properly finalized mix (measured ~32 and
// ~3983).

TEST(TripleHashTest, ObjectBitsAvalanche) {
  const TripleHash hash;
  std::int64_t flipped_bits = 0;
  std::int64_t cases = 0;
  for (TermId s = 0; s < 32; ++s) {
    for (TermId p = 0; p < 8; ++p) {
      for (TermId o = 0; o < 16; ++o) {
        for (int bit = 0; bit < 4; ++bit) {
          const Triple a{s, p, o};
          const Triple b{s, p, o ^ (TermId{1} << bit)};
          flipped_bits += std::popcount(
              static_cast<std::uint64_t>(hash(a) ^ hash(b)));
          ++cases;
        }
      }
    }
  }
  const double avalanche = static_cast<double>(flipped_bits) /
                           static_cast<double>(cases);
  EXPECT_GE(avalanche, 24.0) << "object bits barely perturb the hash";
}

TEST(TripleHashTest, HighBitsPopulatedOnSmallDictionaries) {
  const TripleHash hash;
  std::unordered_set<std::uint64_t> top16;
  for (TermId s = 0; s < 8; ++s) {
    for (TermId p = 0; p < 8; ++p) {
      for (TermId o = 0; o < 64; ++o) {
        top16.insert(static_cast<std::uint64_t>(hash(Triple{s, p, o})) >> 48);
      }
    }
  }
  // 4096 small-id triples should spread over most of the 4096 reachable
  // top-16-bit patterns, not collapse to a few.
  EXPECT_GE(top16.size(), 1000u);
}

TEST(TripleHashTest, NoExactCollisionsOnSmallIdGrid) {
  const TripleHash hash;
  std::unordered_set<std::size_t> seen;
  int n = 0;
  for (TermId s = 0; s < 16; ++s) {
    for (TermId p = 0; p < 16; ++p) {
      for (TermId o = 0; o < 16; ++o) {
        seen.insert(hash(Triple{s, p, o}));
        ++n;
      }
    }
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(n));
}

}  // namespace
}  // namespace rdfsr::rdf
