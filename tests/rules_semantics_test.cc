// Tests of the reference (brute-force) rule semantics against the paper's
// worked examples: the D1/D2/D3 matrices of Figure 1 and the Section 2.2
// behaviour of Cov, Sim, Dep and SymDep.

#include <gtest/gtest.h>

#include "rules/builtins.h"
#include "rules/parser.h"
#include "rules/semantics.h"
#include "schema/property_matrix.h"

namespace rdfsr::rules {
namespace {

using schema::PropertyMatrix;

/// D1 of Figure 1a: N subjects, all with only property p.
PropertyMatrix MakeD1(int n) {
  std::vector<std::vector<int>> rows(n, {1});
  return PropertyMatrix::FromRows(rows, {}, {"p"});
}

/// D2 of Figure 1b: D1 plus property q on the first subject only.
PropertyMatrix MakeD2(int n) {
  std::vector<std::vector<int>> rows(n, {1, 0});
  rows[0][1] = 1;
  return PropertyMatrix::FromRows(rows, {}, {"p", "q"});
}

/// D3 of Figure 1c: diagonal — subject i has only property i.
PropertyMatrix MakeD3(int n) {
  std::vector<std::vector<int>> rows(n, std::vector<int>(n, 0));
  for (int i = 0; i < n; ++i) rows[i][i] = 1;
  return PropertyMatrix::FromRows(rows);
}

TEST(SemanticsTest, CovOnD1IsOne) {
  const SigmaValue sigma = EvaluateBruteForce(CovRule(), MakeD1(8));
  EXPECT_DOUBLE_EQ(sigma.Value(), 1.0);
  EXPECT_EQ(sigma.total, 8);  // 8 cells
  EXPECT_EQ(sigma.favorable, 8);
}

TEST(SemanticsTest, CovOnD2ApproachesHalf) {
  // (N+1) ones over 2N cells.
  const SigmaValue sigma = EvaluateBruteForce(CovRule(), MakeD2(10));
  EXPECT_EQ(sigma.total, 20);
  EXPECT_EQ(sigma.favorable, 11);
  EXPECT_NEAR(sigma.Value(), 0.55, 1e-12);
}

TEST(SemanticsTest, SimOnD1IsOne) {
  const SigmaValue sigma = EvaluateBruteForce(SimRule(), MakeD1(6));
  EXPECT_DOUBLE_EQ(sigma.Value(), 1.0);
}

TEST(SemanticsTest, SimOnD2StaysNearOne) {
  const SigmaValue sigma = EvaluateBruteForce(SimRule(), MakeD2(12));
  // total: p-column 12*11 pairs; q-column 1*11. favorable: p 12*11, q 0.
  EXPECT_EQ(sigma.total, 12 * 11 + 11);
  EXPECT_EQ(sigma.favorable, 12 * 11);
  EXPECT_GT(sigma.Value(), 0.9);
}

TEST(SemanticsTest, SimOnD3IsZero) {
  const SigmaValue sigma = EvaluateBruteForce(SimRule(), MakeD3(5));
  EXPECT_EQ(sigma.favorable, 0);
  EXPECT_GT(sigma.total, 0);
  EXPECT_DOUBLE_EQ(sigma.Value(), 0.0);
}

TEST(SemanticsTest, CovOnD3IsOneOverN) {
  const SigmaValue sigma = EvaluateBruteForce(CovRule(), MakeD3(5));
  EXPECT_NEAR(sigma.Value(), 0.2, 1e-12);
}

TEST(SemanticsTest, DepCountsPairsThroughSharedSubject) {
  // s0: p1,p2; s1: p1; s2: p2.
  const PropertyMatrix m = PropertyMatrix::FromRows(
      {{1, 1}, {1, 0}, {0, 1}}, {}, {"p1", "p2"});
  const SigmaValue dep = EvaluateBruteForce(DepRule("p1", "p2"), m);
  EXPECT_EQ(dep.total, 2);      // s0 and s1 have p1
  EXPECT_EQ(dep.favorable, 1);  // only s0 has both
  EXPECT_DOUBLE_EQ(dep.Value(), 0.5);
}

TEST(SemanticsTest, SymDepIsSymmetric) {
  const PropertyMatrix m = PropertyMatrix::FromRows(
      {{1, 1}, {1, 0}, {0, 1}, {0, 1}}, {}, {"a", "b"});
  const SigmaValue ab = EvaluateBruteForce(SymDepRule("a", "b"), m);
  const SigmaValue ba = EvaluateBruteForce(SymDepRule("b", "a"), m);
  EXPECT_EQ(ab.total, ba.total);
  EXPECT_EQ(ab.favorable, ba.favorable);
  EXPECT_EQ(ab.total, 4);      // subjects with a or b: all 4
  EXPECT_EQ(ab.favorable, 1);  // both: s0
}

TEST(SemanticsTest, DepWithMissingColumnHasNoTotalCases) {
  const PropertyMatrix m = PropertyMatrix::FromRows({{1}}, {}, {"p1"});
  const SigmaValue dep = EvaluateBruteForce(DepRule("p1", "nope"), m);
  EXPECT_EQ(dep.total, 0);
  EXPECT_DOUBLE_EQ(dep.Value(), 1.0);  // trivially satisfied
}

TEST(SemanticsTest, DepDisjunctiveCountsImplication) {
  // has-p1-implies-has-p2 per subject: s0 yes (both), s1 no (p1 only),
  // s2 yes (neither... has p2 only -> implication holds).
  const PropertyMatrix m = PropertyMatrix::FromRows(
      {{1, 1}, {1, 0}, {0, 1}}, {}, {"p1", "p2"});
  const SigmaValue v = EvaluateBruteForce(DepDisjunctiveRule("p1", "p2"), m);
  EXPECT_EQ(v.total, 3);
  EXPECT_EQ(v.favorable, 2);
}

TEST(SemanticsTest, CovIgnoringSkipsColumn) {
  const PropertyMatrix m = MakeD2(10);  // q nearly empty
  const SigmaValue full = EvaluateBruteForce(CovRule(), m);
  const SigmaValue ignoring = EvaluateBruteForce(CovRuleIgnoring({"q"}), m);
  EXPECT_LT(full.Value(), 1.0);
  EXPECT_DOUBLE_EQ(ignoring.Value(), 1.0);  // p column is complete
  EXPECT_EQ(ignoring.total, 10);
}

TEST(SemanticsTest, SatisfiesAtomByAtom) {
  const PropertyMatrix m = PropertyMatrix::FromRows(
      {{1, 0}, {1, 1}}, {"s0", "s1"}, {"p", "q"});
  const std::vector<std::string> vars = {"c1", "c2"};

  auto sat = [&](const char* text, Cell a, Cell b) {
    auto f = ParseFormula(text);
    EXPECT_TRUE(f.ok()) << f.status().ToString();
    return Satisfies(*f, m, vars, {a, b});
  };
  EXPECT_TRUE(sat("val(c1) = 1", {0, 0}, {0, 0}));
  EXPECT_FALSE(sat("val(c1) = 1", {0, 1}, {0, 0}));
  EXPECT_TRUE(sat("val(c1) = val(c2)", {0, 0}, {1, 1}));
  EXPECT_FALSE(sat("val(c1) = val(c2)", {0, 1}, {1, 1}));
  EXPECT_TRUE(sat("subj(c1) = subj(c2)", {0, 0}, {0, 1}));
  EXPECT_FALSE(sat("subj(c1) = subj(c2)", {0, 0}, {1, 0}));
  EXPECT_TRUE(sat("prop(c1) = prop(c2)", {0, 1}, {1, 1}));
  EXPECT_TRUE(sat("c1 = c2", {1, 1}, {1, 1}));
  EXPECT_FALSE(sat("c1 = c2", {1, 1}, {1, 0}));
  EXPECT_TRUE(sat("subj(c1) = s0", {0, 0}, {0, 0}));
  EXPECT_FALSE(sat("subj(c1) = s1", {0, 0}, {0, 0}));
  EXPECT_TRUE(sat("prop(c1) = q", {0, 1}, {0, 0}));
  EXPECT_TRUE(sat("!(c1 = c2) || val(c1) = 1", {0, 0}, {0, 0}));
}

TEST(SemanticsTest, EmptyMatrixHasSigmaOne) {
  const PropertyMatrix m;
  const SigmaValue sigma = EvaluateBruteForce(CovRule(), m);
  EXPECT_EQ(sigma.total, 0);
  EXPECT_DOUBLE_EQ(sigma.Value(), 1.0);
}

TEST(SemanticsTest, CountSatisfyingMatchesManualEnumeration) {
  const PropertyMatrix m = PropertyMatrix::FromRows({{1, 0}}, {}, {"p", "q"});
  auto f = ParseFormula("val(c) = 1");
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(CountSatisfying(*f, m), 1);
  auto g = ParseFormula("c = c");
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(CountSatisfying(*g, m), 2);
  auto two = ParseFormula("val(c1) = 1 && val(c2) = 0");
  ASSERT_TRUE(two.ok());
  EXPECT_EQ(CountSatisfying(*two, m), 1);  // (p-cell, q-cell)
}

}  // namespace
}  // namespace rdfsr::rules
