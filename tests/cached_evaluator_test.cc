// Tests for the memoizing evaluator wrapper and the binary-theta-search
// solver option (both must be behaviorally transparent).

#include <gtest/gtest.h>

#include "core/solver.h"
#include "eval/cached_evaluator.h"
#include "eval/evaluator.h"
#include "gen/random_graph.h"
#include "rules/builtins.h"

namespace rdfsr::eval {
namespace {

TEST(CachedEvaluatorTest, ReturnsIdenticalCounts) {
  gen::RandomIndexSpec spec;
  spec.num_signatures = 6;
  spec.seed = 9;
  const schema::SignatureIndex index = gen::GenerateRandomIndex(spec);
  auto inner = MakeEvaluator(rules::SimRule(), &index);
  CachedEvaluator cached(inner.get());

  const std::vector<std::vector<int>> subsets = {
      {0}, {1, 2}, {0, 1, 2, 3, 4, 5}, {5, 3, 1}};
  for (const auto& subset : subsets) {
    const SigmaCounts a = inner->Counts(subset);
    const SigmaCounts b = cached.Counts(subset);
    EXPECT_EQ(static_cast<long long>(a.total), static_cast<long long>(b.total));
    EXPECT_EQ(static_cast<long long>(a.favorable),
              static_cast<long long>(b.favorable));
  }
}

TEST(CachedEvaluatorTest, HitsOnRepeatsAndPermutations) {
  gen::RandomIndexSpec spec;
  spec.num_signatures = 5;
  spec.seed = 3;
  const schema::SignatureIndex index = gen::GenerateRandomIndex(spec);
  auto inner = MakeEvaluator(rules::CovRule(), &index);
  CachedEvaluator cached(inner.get());

  (void)cached.Counts({0, 1, 2});
  EXPECT_EQ(cached.misses(), 1u);
  (void)cached.Counts({0, 1, 2});
  EXPECT_EQ(cached.hits(), 1u);
  // Permutations of the same subset hit the same entry.
  (void)cached.Counts({2, 0, 1});
  EXPECT_EQ(cached.hits(), 2u);
  EXPECT_EQ(cached.misses(), 1u);
  // A different subset misses.
  (void)cached.Counts({2, 1});
  EXPECT_EQ(cached.misses(), 2u);
}

TEST(CachedEvaluatorTest, ExposesRuleAndIndex) {
  gen::RandomIndexSpec spec;
  spec.seed = 2;
  const schema::SignatureIndex index = gen::GenerateRandomIndex(spec);
  auto inner = MakeEvaluator(rules::CovRule(), &index);
  CachedEvaluator cached(inner.get());
  EXPECT_EQ(cached.rule().name(), "Cov");
  EXPECT_EQ(&cached.index(), &index);
}

}  // namespace
}  // namespace rdfsr::eval

namespace rdfsr::core {
namespace {

TEST(BinaryThetaSearchTest, AgreesWithSequentialSearch) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    gen::RandomIndexSpec spec;
    spec.num_signatures = 5;
    spec.num_properties = 4;
    spec.seed = seed;
    const schema::SignatureIndex index = gen::GenerateRandomIndex(spec);
    auto cov = eval::MakeEvaluator(rules::CovRule(), &index);

    SolverOptions sequential;
    sequential.binary_theta_search = false;
    SolverOptions binary;
    binary.binary_theta_search = true;

    RefinementSolver a(cov.get(), sequential);
    RefinementSolver b(cov.get(), binary);
    const HighestThetaResult ra = a.FindHighestTheta(2);
    const HighestThetaResult rb = b.FindHighestTheta(2);
    // Both searches settle every instance exactly on these small datasets,
    // so the discovered thresholds must coincide.
    ASSERT_TRUE(ra.ceiling_proven || ra.theta == Rational(1));
    ASSERT_TRUE(rb.ceiling_proven || rb.theta == Rational(1));
    EXPECT_EQ(ra.theta, rb.theta) << "seed " << seed;
    EXPECT_TRUE(ValidateRefinement(*cov, rb.refinement, rb.theta).ok());
  }
}

TEST(BinaryThetaSearchTest, CacheOffStillWorks) {
  gen::RandomIndexSpec spec;
  spec.num_signatures = 4;
  spec.seed = 8;
  const schema::SignatureIndex index = gen::GenerateRandomIndex(spec);
  auto cov = eval::MakeEvaluator(rules::CovRule(), &index);
  SolverOptions options;
  options.cache_evaluations = false;
  RefinementSolver solver(cov.get(), options);
  const HighestThetaResult r = solver.FindHighestTheta(2);
  EXPECT_TRUE(ValidateRefinement(*cov, r.refinement, r.theta).ok());
}

}  // namespace
}  // namespace rdfsr::core
