// Unit tests for the rule-language parser and printer (round trips, operator
// precedence, builtin forms, error reporting).

#include <gtest/gtest.h>

#include "rules/ast.h"
#include "rules/builtins.h"
#include "rules/parser.h"
#include "rules/printer.h"

namespace rdfsr::rules {
namespace {

TEST(ParserTest, ParsesAtoms) {
  EXPECT_TRUE(ParseFormula("val(c) = 1").ok());
  EXPECT_TRUE(ParseFormula("val(c) = 0").ok());
  EXPECT_TRUE(ParseFormula("prop(c) = name").ok());
  EXPECT_TRUE(ParseFormula("prop(c) = <http://x/p>").ok());
  EXPECT_TRUE(ParseFormula("subj(c) = <http://x/s>").ok());
  EXPECT_TRUE(ParseFormula("c1 = c2").ok());
  EXPECT_TRUE(ParseFormula("val(c1) = val(c2)").ok());
  EXPECT_TRUE(ParseFormula("subj(c1) = subj(c2)").ok());
  EXPECT_TRUE(ParseFormula("prop(c1) = prop(c2)").ok());
}

TEST(ParserTest, NotEqualsIsSugarForNegation) {
  auto f = ParseFormula("c1 != c2");
  ASSERT_TRUE(f.ok());
  EXPECT_EQ((*f)->kind, FormulaKind::kNot);
  EXPECT_EQ((*f)->left->kind, FormulaKind::kVarEq);
}

TEST(ParserTest, PrecedenceAndBindsTighterThanOr) {
  auto f = ParseFormula("val(a) = 1 || val(b) = 1 && val(c) = 1");
  ASSERT_TRUE(f.ok());
  EXPECT_EQ((*f)->kind, FormulaKind::kOr);
  EXPECT_EQ((*f)->right->kind, FormulaKind::kAnd);
}

TEST(ParserTest, ParensOverridePrecedence) {
  auto f = ParseFormula("(val(a) = 1 || val(b) = 1) && val(c) = 1");
  ASSERT_TRUE(f.ok());
  EXPECT_EQ((*f)->kind, FormulaKind::kAnd);
  EXPECT_EQ((*f)->left->kind, FormulaKind::kOr);
}

TEST(ParserTest, NotBindsTightest) {
  auto f = ParseFormula("!val(a) = 1 && val(b) = 1");
  ASSERT_TRUE(f.ok());
  EXPECT_EQ((*f)->kind, FormulaKind::kAnd);
  EXPECT_EQ((*f)->left->kind, FormulaKind::kNot);
}

TEST(ParserTest, ParsesRules) {
  auto r = ParseRule("c = c -> val(c) = 1");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->variables().size(), 1u);
}

TEST(ParserTest, RejectsConsequentWithFreshVariables) {
  auto r = ParseRule("val(c1) = 1 -> val(c2) = 1");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("c2"), std::string::npos);
}

TEST(ParserTest, RejectsSyntaxErrors) {
  EXPECT_FALSE(ParseFormula("val(c = 1").ok());
  EXPECT_FALSE(ParseFormula("val(c) == 1").ok());
  EXPECT_FALSE(ParseFormula("val(c) = 2").ok());
  EXPECT_FALSE(ParseFormula("val(c) = ").ok());
  EXPECT_FALSE(ParseFormula("prop(c) = prop(").ok());
  EXPECT_FALSE(ParseFormula("val(c) = 1 &&").ok());
  EXPECT_FALSE(ParseFormula("val(c) = 1 & val(d) = 1").ok());
  EXPECT_FALSE(ParseFormula("val(c) = 1 | val(d) = 1").ok());
  EXPECT_FALSE(ParseFormula("(val(c) = 1").ok());
  EXPECT_FALSE(ParseFormula("val(c) = 1 extra").ok());
  EXPECT_FALSE(ParseFormula("prop(c) = <>").ok());
  EXPECT_FALSE(ParseFormula("subj(c) = val(d)").ok());
  EXPECT_FALSE(ParseRule("val(c) = 1").ok());  // no arrow
  EXPECT_FALSE(ParseRule("val(c) = 1 -> ").ok());
}

TEST(ParserTest, ErrorsMentionOffset) {
  auto f = ParseFormula("val(c) = 9");
  ASSERT_FALSE(f.ok());
  EXPECT_NE(f.status().message().find("offset"), std::string::npos);
}

TEST(PrinterTest, RoundTripsBuiltins) {
  const Rule rules[] = {
      CovRule(),
      SimRule(),
      DepRule("p1", "p2"),
      SymDepRule("deathPlace", "deathDate"),
      DepDisjunctiveRule("a", "b"),
      CovRuleIgnoring({"type", "label"}),
  };
  for (const Rule& rule : rules) {
    const std::string text = ToString(rule);
    auto reparsed = ParseRule(text);
    ASSERT_TRUE(reparsed.ok()) << text << ": " << reparsed.status().ToString();
    EXPECT_EQ(ToString(*reparsed), text) << "unstable print for " << text;
  }
}

TEST(PrinterTest, RoundTripsArbitraryFormulas) {
  const char* cases[] = {
      "val(c) = 1",
      "!(c1 = c2) && prop(c1) = prop(c2)",
      "val(a) = 0 || val(b) = 1 && subj(a) = subj(b)",
      "(val(a) = 1 || val(b) = 1) && !(prop(a) = <http://x/p q>)",
      "subj(c) = s0 && prop(c) = p0",
  };
  for (const char* text : cases) {
    auto f1 = ParseFormula(text);
    ASSERT_TRUE(f1.ok()) << text;
    const std::string printed = ToString(*f1);
    auto f2 = ParseFormula(printed);
    ASSERT_TRUE(f2.ok()) << printed;
    EXPECT_EQ(ToString(*f2), printed);
  }
}

TEST(PrinterTest, QuotesNonIdentifierConstants) {
  auto f = ParseFormula("prop(c) = <http://x/p>");
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(ToString(*f), "prop(c) = <http://x/p>");
  auto g = ParseFormula("prop(c) = name");
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(ToString(*g), "prop(c) = name");
}

TEST(AstTest, CollectVariablesInFirstAppearanceOrder) {
  auto f = ParseFormula("subj(c2) = subj(c1) && val(c3) = 1 && c1 = c2");
  ASSERT_TRUE(f.ok());
  std::vector<std::string> vars;
  CollectVariables(*f, &vars);
  ASSERT_EQ(vars.size(), 3u);
  EXPECT_EQ(vars[0], "c2");
  EXPECT_EQ(vars[1], "c1");
  EXPECT_EQ(vars[2], "c3");
}

TEST(AstTest, CollectConstants) {
  auto f = ParseFormula(
      "subj(c) = s1 && prop(c) = p1 && (subj(c) = s2 || prop(c) = p1)");
  ASSERT_TRUE(f.ok());
  std::vector<std::string> subjects, props;
  CollectSubjectConstants(*f, &subjects);
  CollectPropertyConstants(*f, &props);
  EXPECT_EQ(subjects, (std::vector<std::string>{"s1", "s2"}));
  EXPECT_EQ(props, (std::vector<std::string>{"p1"}));
}

TEST(AstTest, RuleConjunction) {
  const Rule cov = CovRule();
  const FormulaPtr both = cov.Conjunction();
  EXPECT_EQ(both->kind, FormulaKind::kAnd);
}

TEST(AstTest, BuiltinNames) {
  EXPECT_EQ(CovRule().name(), "Cov");
  EXPECT_EQ(SimRule().name(), "Sim");
  EXPECT_EQ(DepRule("a", "b").name(), "Dep[a,b]");
  EXPECT_EQ(SymDepRule("a", "b").name(), "SymDep[a,b]");
}

TEST(AstTest, BuiltinVariableCounts) {
  EXPECT_EQ(CovRule().variables().size(), 1u);
  EXPECT_EQ(SimRule().variables().size(), 2u);
  EXPECT_EQ(DepRule("a", "b").variables().size(), 2u);
  EXPECT_EQ(SymDepRule("a", "b").variables().size(), 2u);
}

}  // namespace
}  // namespace rdfsr::rules
