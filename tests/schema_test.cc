// Unit tests for schema/: property matrices, signatures, the signature index,
// restriction (implicit-sort views), and ASCII rendering.

#include <gtest/gtest.h>

#include "gen/random_graph.h"
#include "rdf/graph.h"
#include "rdf/vocab.h"
#include "schema/ascii_view.h"
#include "schema/property_matrix.h"
#include "schema/signature_index.h"

namespace rdfsr::schema {
namespace {

PropertyMatrix SampleMatrix() {
  // Fig 1b-like: s0 has p and q, s1/s2 only p.
  return PropertyMatrix::FromRows({{1, 1}, {1, 0}, {1, 0}}, {"s0", "s1", "s2"},
                                  {"p", "q"});
}

TEST(PropertyMatrixTest, FromRowsBasics) {
  const PropertyMatrix m = SampleMatrix();
  EXPECT_EQ(m.num_subjects(), 3u);
  EXPECT_EQ(m.num_properties(), 2u);
  EXPECT_EQ(m.At(0, 1), 1);
  EXPECT_EQ(m.At(2, 1), 0);
  EXPECT_EQ(m.CountOnes(), 4);
  EXPECT_EQ(m.FindProperty("q"), 1);
  EXPECT_EQ(m.FindProperty("zz"), -1);
  EXPECT_EQ(m.FindSubject("s2"), 2);
  EXPECT_EQ(m.FindSubject("zz"), -1);
}

TEST(PropertyMatrixTest, FromGraphMatchesHasProperty) {
  rdf::Graph g;
  g.AddIri("s1", "p1", "o");
  g.AddIri("s1", "p2", "o");
  g.AddIri("s2", "p2", "o2");
  const PropertyMatrix m = PropertyMatrix::FromGraph(g);
  EXPECT_EQ(m.num_subjects(), 2u);
  EXPECT_EQ(m.num_properties(), 2u);
  EXPECT_EQ(m.At(0, 0), 1);
  EXPECT_EQ(m.At(0, 1), 1);
  EXPECT_EQ(m.At(1, 0), 0);
  EXPECT_EQ(m.At(1, 1), 1);
}

TEST(PropertyMatrixTest, MultipleObjectsSameProperty) {
  rdf::Graph g;
  g.AddIri("s", "p", "o1");
  g.AddIri("s", "p", "o2");  // same cell
  const PropertyMatrix m = PropertyMatrix::FromGraph(g);
  EXPECT_EQ(m.CountOnes(), 1);
}

TEST(SignatureIndexTest, GroupsIdenticalRows) {
  const SignatureIndex index =
      SignatureIndex::FromMatrix(SampleMatrix(), true);
  ASSERT_EQ(index.num_signatures(), 2u);
  // Canonical order: larger signature set first.
  EXPECT_EQ(index.signature(0).count, 2);  // {p} x2
  EXPECT_EQ(index.signature(1).count, 1);  // {p,q}
  EXPECT_EQ(index.total_subjects(), 3);
}

TEST(SignatureIndexTest, HasAndPropertyCount) {
  const SignatureIndex index =
      SignatureIndex::FromMatrix(SampleMatrix(), true);
  const int p = index.FindProperty("p");
  const int q = index.FindProperty("q");
  ASSERT_GE(p, 0);
  ASSERT_GE(q, 0);
  EXPECT_TRUE(index.Has(0, p));
  EXPECT_FALSE(index.Has(0, q));
  EXPECT_TRUE(index.Has(1, q));
  EXPECT_EQ(index.PropertyCount(p), 3);
  EXPECT_EQ(index.PropertyCount(q), 1);
}

TEST(SignatureIndexTest, SubjectSignatureLookup) {
  const SignatureIndex index =
      SignatureIndex::FromMatrix(SampleMatrix(), true);
  EXPECT_EQ(index.FindSubjectSignature("s0"), 1);
  EXPECT_EQ(index.FindSubjectSignature("s1"), 0);
  EXPECT_EQ(index.FindSubjectSignature("nope"), -1);
  EXPECT_EQ(index.CountNamedSubjects({"s0", "s1", "s2"}, 0), 2);
  EXPECT_EQ(index.CountNamedSubjects({"s0"}, 1), 1);
}

TEST(SignatureIndexTest, NamesNotKeptMeansNoLookup) {
  const SignatureIndex index =
      SignatureIndex::FromMatrix(SampleMatrix(), false);
  EXPECT_EQ(index.FindSubjectSignature("s0"), -1);
}

TEST(SignatureIndexTest, FromSignaturesValidates) {
  std::vector<Signature> sigs;
  sigs.push_back({{0, 1}, 10});
  sigs.push_back({{0}, 5});
  const SignatureIndex index =
      SignatureIndex::FromSignatures({"a", "b"}, sigs);
  EXPECT_EQ(index.num_signatures(), 2u);
  EXPECT_EQ(index.total_subjects(), 15);
}

TEST(SignatureIndexTest, RestrictDropsUnusedColumns) {
  // Signature 0: {p0}, signature 1: {p1,p2}; restricting to sig 0 keeps p0.
  std::vector<Signature> sigs;
  sigs.push_back({{0}, 10});
  sigs.push_back({{1, 2}, 5});
  const SignatureIndex index =
      SignatureIndex::FromSignatures({"p0", "p1", "p2"}, sigs);
  // Canonical order puts count-10 first.
  std::vector<int> kept;
  const SignatureIndex sub = index.Restrict({0}, &kept);
  EXPECT_EQ(sub.num_signatures(), 1u);
  EXPECT_EQ(sub.num_properties(), 1u);
  EXPECT_EQ(sub.property_name(0), "p0");
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0], 0);
  EXPECT_EQ(sub.total_subjects(), 10);
}

TEST(SignatureIndexTest, RestrictKeepsSubjectNames) {
  const SignatureIndex index =
      SignatureIndex::FromMatrix(SampleMatrix(), true);
  const SignatureIndex sub = index.Restrict({1});  // the {p,q} signature
  EXPECT_EQ(sub.FindSubjectSignature("s0"), 0);
}

TEST(SignatureIndexTest, ToMatrixRoundTripsCounts) {
  const SignatureIndex index =
      SignatureIndex::FromMatrix(SampleMatrix(), true);
  const PropertyMatrix m = index.ToMatrix();
  EXPECT_EQ(m.num_subjects(), 3u);
  EXPECT_EQ(m.num_properties(), 2u);
  EXPECT_EQ(m.CountOnes(), 4);
  const SignatureIndex again = SignatureIndex::FromMatrix(m, false);
  ASSERT_EQ(again.num_signatures(), index.num_signatures());
  for (std::size_t i = 0; i < index.num_signatures(); ++i) {
    EXPECT_EQ(again.signature(i).count, index.signature(i).count);
    EXPECT_EQ(again.signature(i).support(), index.signature(i).support());
  }
}

TEST(SignatureIndexTest, CanonicalOrderIsDeterministic) {
  // Same content presented in different input orders yields identical
  // indexes.
  std::vector<Signature> sigs1 = {{{0}, 5}, {{1}, 5}, {{0, 1}, 9}};
  std::vector<Signature> sigs2 = {{{0, 1}, 9}, {{1}, 5}, {{0}, 5}};
  const SignatureIndex a = SignatureIndex::FromSignatures({"x", "y"}, sigs1);
  const SignatureIndex b = SignatureIndex::FromSignatures({"x", "y"}, sigs2);
  ASSERT_EQ(a.num_signatures(), b.num_signatures());
  for (std::size_t i = 0; i < a.num_signatures(); ++i) {
    EXPECT_EQ(a.signature(i).support(), b.signature(i).support());
    EXPECT_EQ(a.signature(i).count, b.signature(i).count);
  }
}

TEST(SignatureIndexTest, RandomMatrixGroupingPreservesSubjects) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    gen::RandomMatrixSpec spec;
    spec.num_subjects = 20;
    spec.num_properties = 5;
    spec.seed = seed;
    const PropertyMatrix m = gen::GenerateRandomMatrix(spec);
    const SignatureIndex index = SignatureIndex::FromMatrix(m, true);
    EXPECT_EQ(index.total_subjects(), 20);
    // Sizes are non-increasing in canonical order.
    for (std::size_t i = 1; i < index.num_signatures(); ++i) {
      EXPECT_GE(index.signature(i - 1).count, index.signature(i).count);
    }
  }
}

TEST(AsciiViewTest, AbbreviateProperty) {
  EXPECT_EQ(AbbreviateProperty("http://xmlns.com/foaf/0.1/name"), "name");
  EXPECT_EQ(AbbreviateProperty("http://x#frag"), "frag");
  EXPECT_EQ(AbbreviateProperty("plain"), "plain");
  EXPECT_EQ(AbbreviateProperty("averyveryverylongpropertyname", 8).size(), 8u);
}

TEST(AsciiViewTest, RendersSignatureView) {
  const SignatureIndex index =
      SignatureIndex::FromMatrix(SampleMatrix(), false);
  const std::string view = RenderSignatureView(index);
  EXPECT_NE(view.find("subjects=3"), std::string::npos);
  EXPECT_NE(view.find("#."), std::string::npos);   // {p} row
  EXPECT_NE(view.find("##"), std::string::npos);   // {p,q} row
}

TEST(AsciiViewTest, RendersRefinementView) {
  const SignatureIndex index =
      SignatureIndex::FromMatrix(SampleMatrix(), false);
  const std::string view = RenderRefinementView(index, {{0}, {1}});
  EXPECT_NE(view.find("sort 1"), std::string::npos);
  EXPECT_NE(view.find("sort 2"), std::string::npos);
}

}  // namespace
}  // namespace rdfsr::schema
