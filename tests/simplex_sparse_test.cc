// Sparse-basis simplex tests: the LU factorization + eta-file engine against
// the dense-inverse oracle on randomized bounded-variable LPs, partial vs
// full pricing, warm starts, degenerate/cycling fixtures under the Bland
// fallback, and refactorization stats.

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

#include "ilp/simplex.h"

namespace rdfsr::ilp {
namespace {

constexpr double kObjTol = 1e-6;

// A random bounded-variable LP: mixed bound patterns (two-sided, one-sided,
// free), mixed row types (<=, >=, ==, two-sided range), sparse rows.
Model RandomLp(std::mt19937_64* rng) {
  std::uniform_int_distribution<int> n_dist(3, 9);
  std::uniform_int_distribution<int> m_dist(2, 7);
  std::uniform_real_distribution<double> coef(-3.0, 3.0);
  std::uniform_real_distribution<double> unit(0.0, 1.0);

  Model m;
  const int n = n_dist(*rng);
  const int rows = m_dist(*rng);
  for (int j = 0; j < n; ++j) {
    const double p = unit(*rng);
    double lb = 0.0, ub = 4.0 * unit(*rng) + 0.5;
    if (p < 0.15) {
      lb = -kInfinity;  // one-sided from above
    } else if (p < 0.25) {
      ub = kInfinity;  // one-sided from below
    } else if (p < 0.30) {
      lb = -kInfinity;
      ub = kInfinity;  // free
    } else if (p < 0.45) {
      lb = -2.0 * unit(*rng) - 0.5;  // two-sided straddling zero
    }
    m.AddVariable("x", lb, ub, false);
  }
  for (int r = 0; r < rows; ++r) {
    std::uniform_int_distribution<int> nnz_dist(1, std::min(4, n));
    const int nnz = nnz_dist(*rng);
    std::vector<LinTerm> terms;
    std::vector<char> used(n, 0);
    for (int t = 0; t < nnz; ++t) {
      std::uniform_int_distribution<int> var_dist(0, n - 1);
      int j = var_dist(*rng);
      if (used[j]) continue;
      used[j] = 1;
      double c = coef(*rng);
      if (std::abs(c) < 0.1) c = 0.5;
      terms.push_back({j, c});
    }
    const double kind = unit(*rng);
    const double mid = 4.0 * coef(*rng) / 3.0;
    if (kind < 0.35) {
      m.AddConstraint("r", std::move(terms), -kInfinity, mid);
    } else if (kind < 0.70) {
      m.AddConstraint("r", std::move(terms), mid, kInfinity);
    } else if (kind < 0.85) {
      m.AddConstraint("r", std::move(terms), mid, mid);
    } else {
      m.AddConstraint("r", std::move(terms), mid - 1.0, mid + 1.0);
    }
  }
  if (unit(*rng) < 0.8) {
    std::vector<LinTerm> obj;
    for (int j = 0; j < n; ++j) {
      if (unit(*rng) < 0.7) obj.push_back({j, coef(*rng)});
    }
    m.SetObjective(std::move(obj));
  }
  return m;
}

SimplexOptions WithBasis(BasisKind kind) {
  SimplexOptions options;
  options.basis_kind = kind;
  return options;
}

TEST(SimplexSparseTest, RandomizedLpsMatchDenseInverseOracle) {
  std::mt19937_64 rng(20140814);
  for (int trial = 0; trial < 200; ++trial) {
    const Model m = RandomLp(&rng);
    const LpResult lu = SolveLp(m, WithBasis(BasisKind::kLuFactorization));
    const LpResult dense = SolveLp(m, WithBasis(BasisKind::kDenseInverse));
    ASSERT_EQ(lu.status, dense.status)
        << "trial " << trial << ": LU " << LpStatusName(lu.status)
        << " vs dense " << LpStatusName(dense.status);
    if (lu.status == LpStatus::kOptimal) {
      EXPECT_NEAR(lu.objective, dense.objective, kObjTol) << "trial " << trial;
    }
  }
}

TEST(SimplexSparseTest, PartialAndFullPricingAgree) {
  std::mt19937_64 rng(271828);
  for (int trial = 0; trial < 120; ++trial) {
    const Model m = RandomLp(&rng);
    SimplexOptions partial;
    partial.pricing = PricingRule::kPartialDantzig;
    SimplexOptions full;
    full.pricing = PricingRule::kDantzig;
    const LpResult a = SolveLp(m, partial);
    const LpResult b = SolveLp(m, full);
    ASSERT_EQ(a.status, b.status) << "trial " << trial;
    if (a.status == LpStatus::kOptimal) {
      EXPECT_NEAR(a.objective, b.objective, kObjTol) << "trial " << trial;
    }
  }
}

TEST(SimplexSparseTest, WarmStartFromOwnOptimumNeedsNoPivots) {
  std::mt19937_64 rng(57721566);
  int warm_solves = 0;
  for (int trial = 0; trial < 150; ++trial) {
    const Model m = RandomLp(&rng);
    const LpResult cold = SolveLp(m);
    if (cold.status != LpStatus::kOptimal) continue;
    SimplexOptions options;
    options.warm_start = &cold.basis;
    const LpResult warm = SolveLp(m, options);
    ASSERT_EQ(warm.status, LpStatus::kOptimal) << "trial " << trial;
    EXPECT_TRUE(warm.warm_started) << "trial " << trial;
    EXPECT_EQ(warm.iterations, 0) << "trial " << trial;
    EXPECT_EQ(warm.stats.basis_reuses, 1) << "trial " << trial;
    EXPECT_NEAR(warm.objective, cold.objective, kObjTol) << "trial " << trial;
    ++warm_solves;
  }
  // The generator must produce enough optimal instances for the test to mean
  // anything.
  ASSERT_GT(warm_solves, 20);
}

TEST(SimplexSparseTest, WarmStartAfterBoundPerturbationMatchesColdStart) {
  std::mt19937_64 rng(16180339);
  std::uniform_real_distribution<double> nudge(0.0, 0.25);
  int compared = 0;
  for (int trial = 0; trial < 200; ++trial) {
    const Model m = RandomLp(&rng);
    const LpResult base = SolveLp(m);
    if (base.status != LpStatus::kOptimal) continue;
    // Perturb the finite variable bounds a little (the branch-and-bound /
    // Reweight situation: same structure, slightly different box).
    const int n = static_cast<int>(m.num_variables());
    std::vector<double> lb(n), ub(n);
    for (int j = 0; j < n; ++j) {
      const Variable& v = m.variable(j);
      lb[j] = v.lower > -kInfinity ? v.lower - nudge(rng) : v.lower;
      ub[j] = v.upper < kInfinity ? v.upper + nudge(rng) : v.upper;
    }
    const LpResult cold = SolveLp(m, {}, &lb, &ub);
    SimplexOptions options;
    options.warm_start = &base.basis;
    const LpResult warm = SolveLp(m, options, &lb, &ub);
    ASSERT_EQ(warm.status, cold.status) << "trial " << trial;
    EXPECT_TRUE(warm.warm_started) << "trial " << trial;
    if (cold.status == LpStatus::kOptimal) {
      EXPECT_NEAR(warm.objective, cold.objective, kObjTol) << "trial " << trial;
    }
    ++compared;
  }
  ASSERT_GT(compared, 20);
}

TEST(SimplexSparseTest, MismatchedWarmBasisFallsBackToColdStart) {
  Model m;
  const int x = m.AddVariable("x", 0, 2, false);
  const int y = m.AddVariable("y", 0, 2, false);
  m.AddConstraint("c", {{x, 1.0}, {y, 1.0}}, 1, 3);
  m.SetObjective({{x, -1.0}, {y, -1.0}});
  SimplexBasis wrong_shape;
  wrong_shape.basic = {0, 1, 2};  // three rows' worth for a one-row model
  wrong_shape.status = {BasisStatus::kAtLower};
  SimplexOptions options;
  options.warm_start = &wrong_shape;
  const LpResult r = SolveLp(m, options);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_FALSE(r.warm_started);
  EXPECT_EQ(r.stats.basis_reuses, 0);
  // max x + y subject to x + y <= 3 (the box allows 4, the row caps it).
  EXPECT_NEAR(r.objective, -3.0, kObjTol);
}

// Beale's classic cycling LP: Dantzig pricing cycles forever without an
// anti-cycling guard; the iteration-count trigger must switch to Bland's rule
// and finish at the true optimum (objective -1/20) with either basis backend.
TEST(SimplexSparseTest, BealeCyclingFixtureTerminatesUnderBothBackends) {
  Model m;
  const int x1 = m.AddVariable("x1", 0, kInfinity, false);
  const int x2 = m.AddVariable("x2", 0, kInfinity, false);
  const int x3 = m.AddVariable("x3", 0, kInfinity, false);
  const int x4 = m.AddVariable("x4", 0, kInfinity, false);
  m.AddConstraint("r1", {{x1, 0.25}, {x2, -60.0}, {x3, -0.04}, {x4, 9.0}},
                  -kInfinity, 0.0);
  m.AddConstraint("r2", {{x1, 0.5}, {x2, -90.0}, {x3, -0.02}, {x4, 3.0}},
                  -kInfinity, 0.0);
  m.AddConstraint("cap", {{x3, 1.0}}, -kInfinity, 1.0);
  m.SetObjective({{x1, -0.75}, {x2, 150.0}, {x3, -0.02}, {x4, 6.0}});
  for (BasisKind kind : {BasisKind::kLuFactorization, BasisKind::kDenseInverse}) {
    const LpResult r = SolveLp(m, WithBasis(kind));
    ASSERT_EQ(r.status, LpStatus::kOptimal) << LpStatusName(r.status);
    EXPECT_NEAR(r.objective, -0.05, kObjTol);
  }
}

TEST(SimplexSparseTest, HighlyDegenerateVertexTerminates) {
  // Many redundant hyperplanes through the optimum: zero-length steps galore.
  Model m;
  const int x = m.AddVariable("x", 0, kInfinity, false);
  const int y = m.AddVariable("y", 0, kInfinity, false);
  const int z = m.AddVariable("z", 0, kInfinity, false);
  for (int s = 1; s <= 6; ++s) {
    m.AddConstraint("cut",
                    {{x, 1.0 * s}, {y, 1.0 * s}, {z, 1.0 * s}}, -kInfinity,
                    2.0 * s);
    m.AddConstraint("mix", {{x, 1.0 * s}, {y, 2.0 * s}}, -kInfinity, 2.0 * s);
  }
  m.SetObjective({{x, -1.0}, {y, -1.0}, {z, -1.0}});
  for (BasisKind kind : {BasisKind::kLuFactorization, BasisKind::kDenseInverse}) {
    const LpResult r = SolveLp(m, WithBasis(kind));
    ASSERT_EQ(r.status, LpStatus::kOptimal);
    EXPECT_NEAR(r.objective, -2.0, kObjTol);
  }
}

TEST(SimplexSparseTest, RefactorizationEveryPivotStaysExactAndCounts) {
  // refactor_interval = 1 forces a fresh LU after every pivot: slow but a
  // strong consistency check, and the stats must reflect it.
  const double cost[4][4] = {{9, 2, 7, 8}, {6, 4, 3, 7}, {5, 8, 1, 8},
                             {7, 6, 9, 4}};
  Model m;
  int var[4][4];
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) var[i][j] = m.AddVariable("x", 0, 1, false);
  }
  for (int i = 0; i < 4; ++i) {
    std::vector<LinTerm> row, col;
    for (int j = 0; j < 4; ++j) {
      row.push_back({var[i][j], 1.0});
      col.push_back({var[j][i], 1.0});
    }
    m.AddConstraint("row", std::move(row), 1, 1);
    m.AddConstraint("col", std::move(col), 1, 1);
  }
  std::vector<LinTerm> obj;
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) obj.push_back({var[i][j], cost[i][j]});
  }
  m.SetObjective(obj);

  SimplexOptions eager;
  eager.refactor_interval = 1;
  const LpResult r = SolveLp(m, eager);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 13.0, kObjTol);
  EXPECT_GT(r.stats.pivots, 0);
  EXPECT_GT(r.stats.refactorizations, 1);
  EXPECT_LE(r.stats.max_eta_length, 1);

  const LpResult lazy = SolveLp(m);
  ASSERT_EQ(lazy.status, LpStatus::kOptimal);
  EXPECT_NEAR(lazy.objective, r.objective, kObjTol);
}

TEST(SimplexSparseTest, StatsSurfaceThroughLpResult) {
  // The first optimal draw from the generator (not every draw is feasible).
  std::mt19937_64 rng(31415926);
  for (int trial = 0;; ++trial) {
    ASSERT_LT(trial, 100) << "generator produced no optimal instance";
    const Model m = RandomLp(&rng);
    const LpResult r = SolveLp(m);
    if (r.status != LpStatus::kOptimal) continue;
    EXPECT_EQ(r.stats.pivots, r.iterations);
    EXPECT_GE(r.stats.refactorizations, 1);  // the initial factorization
    EXPECT_GE(r.stats.max_eta_length, 0);
    EXPECT_EQ(r.stats.basis_reuses, 0);
    EXPECT_FALSE(r.warm_started);
    break;
  }
}

}  // namespace
}  // namespace rdfsr::ilp
