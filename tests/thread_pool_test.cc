// Tests for util::ThreadPool: work completion, exception propagation (both
// through Submit futures and ParallelFor's rethrow), reuse across submits,
// and the inline 0-worker degenerate case the call sites rely on
// (ThreadPool(threads - 1) gives exactly `threads` lanes).

#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <future>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace rdfsr::util {
namespace {

TEST(ThreadPoolTest, SubmitRunsTasksToCompletion) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.workers(), 3);
  // lint:allow(atomic-ref: test-owned counter; Submit futures joined below publish the final value)
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.Submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPoolTest, ZeroWorkerPoolRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.workers(), 0);
  int ran = 0;
  auto f = pool.Submit([&ran] { ++ran; });
  // With no workers the task ran before Submit returned; no other thread
  // exists that could have touched `ran`.
  EXPECT_EQ(ran, 1);
  f.get();

  std::vector<int> hits(10, 0);
  pool.ParallelFor(hits.size(), [&hits](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) ++hits[i];
  });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 10);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                              std::size_t{64}, std::size_t{1000}}) {
    // lint:allow(atomic-ref: per-index hit counters owned by the ParallelFor phase; its join publishes them)
    std::vector<std::atomic<int>> hits(n);
    for (auto& h : hits) h.store(0);
    pool.ParallelFor(n, [&hits](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) ++hits[i];
    });
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "n=" << n << " i=" << i;
    }
  }
}

TEST(ThreadPoolTest, SubmitFuturePropagatesExceptions) {
  ThreadPool pool(2);
  auto f = pool.Submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
  // The worker that ran the throwing task must survive for later tasks.
  auto g = pool.Submit([] {});
  g.get();
}

TEST(ThreadPoolTest, ParallelForRethrowsTaskException) {
  ThreadPool pool(3);
  // lint:allow(atomic-ref: chunk-visit counter owned by the ParallelFor phase; read after the rethrowing join)
  std::atomic<int> visited{0};
  EXPECT_THROW(
      pool.ParallelFor(100,
                       [&visited](std::size_t b, std::size_t e) {
                         visited += static_cast<int>(e - b);
                         if (b == 0) throw std::runtime_error("chunk failed");
                       }),
      std::runtime_error);
  // All chunks were still dispatched (the rethrow happens after the join),
  // so the pool is quiescent and reusable.
  // lint:allow(atomic-ref: reuse-round counter owned by the second ParallelFor; its join publishes it)
  std::atomic<int> counter{0};
  pool.ParallelFor(10, [&counter](std::size_t b, std::size_t e) {
    counter += static_cast<int>(e - b);
  });
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPoolTest, ReusableAcrossManyRounds) {
  // The agglomerative loop reuses one pool for thousands of small rounds;
  // workers must neither leak nor wedge across calls.
  ThreadPool pool(2);
  long long total = 0;
  for (int round = 0; round < 200; ++round) {
    std::vector<long long> values(64, 0);
    pool.ParallelFor(values.size(), [&values, round](std::size_t b,
                                                     std::size_t e) {
      for (std::size_t i = b; i < e; ++i) {
        values[i] = static_cast<long long>(i) + round;  // disjoint writes
      }
    });
    total += std::accumulate(values.begin(), values.end(), 0LL);
  }
  // sum over rounds of sum_{i<64} (i + round) = 200*2016 + 64*(0+..+199).
  EXPECT_EQ(total, 200LL * 2016 + 64LL * (199 * 200 / 2));
}

TEST(ThreadPoolTest, ResolveThreadsClampsToHardware) {
  EXPECT_EQ(ThreadPool::ResolveThreads(1), 1);
  EXPECT_EQ(ThreadPool::ResolveThreads(7), 7);
  EXPECT_GE(ThreadPool::ResolveThreads(0), 1);
  EXPECT_GE(ThreadPool::ResolveThreads(-3), 1);
}

}  // namespace
}  // namespace rdfsr::util
