// Unit tests for the N-Triples parser and writer, including escape handling
// and error reporting (failure injection).

#include <gtest/gtest.h>

#include "rdf/ntriples.h"

namespace rdfsr::rdf {
namespace {

TEST(NTriplesTest, ParsesIriTriple) {
  auto g = ParseNTriples("<http://x/s> <http://x/p> <http://x/o> .\n");
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(g->size(), 1u);
}

TEST(NTriplesTest, ParsesLiteralForms) {
  const char* text =
      "<s> <p> \"plain\" .\n"
      "<s> <p> \"tagged\"@en-GB .\n"
      "<s> <p> \"5\"^^<http://www.w3.org/2001/XMLSchema#integer> .\n";
  auto g = ParseNTriples(text);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(g->size(), 3u);
}

TEST(NTriplesTest, ParsesBlankNodes) {
  auto g = ParseNTriples("_:a <p> _:b .\n");
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(g->size(), 1u);
  EXPECT_TRUE(g->dict().term(g->triples()[0].subject).is_blank());
}

TEST(NTriplesTest, SkipsCommentsAndBlankLines) {
  const char* text =
      "# a comment\n"
      "\n"
      "   \n"
      "<s> <p> <o> . # trailing comment\n";
  auto g = ParseNTriples(text);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(g->size(), 1u);
}

TEST(NTriplesTest, DecodesStringEscapes) {
  auto g = ParseNTriples("<s> <p> \"a\\tb\\nc\\\"d\\\\e\" .\n");
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  const Term& o = g->dict().term(g->triples()[0].object);
  EXPECT_EQ(o.lexical, "a\tb\nc\"d\\e");
}

TEST(NTriplesTest, DecodesUnicodeEscapes) {
  auto g = ParseNTriples("<s> <p> \"\\u00e9\\U0001F600\" .\n");
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  const Term& o = g->dict().term(g->triples()[0].object);
  EXPECT_EQ(o.lexical, "\xc3\xa9\xf0\x9f\x98\x80");  // é + 😀 in UTF-8
}

TEST(NTriplesTest, ErrorsCarryLineNumbers) {
  auto g = ParseNTriples("<s> <p> <o> .\nnot a triple\n");
  ASSERT_FALSE(g.ok());
  EXPECT_NE(g.status().message().find("line 2"), std::string::npos);
}

TEST(NTriplesTest, RejectsMissingDot) {
  EXPECT_FALSE(ParseNTriples("<s> <p> <o>\n").ok());
}

TEST(NTriplesTest, RejectsLiteralSubject) {
  EXPECT_FALSE(ParseNTriples("\"lit\" <p> <o> .\n").ok());
}

TEST(NTriplesTest, RejectsUnterminatedIri) {
  EXPECT_FALSE(ParseNTriples("<s <p> <o> .\n").ok());
}

TEST(NTriplesTest, RejectsUnterminatedLiteral) {
  EXPECT_FALSE(ParseNTriples("<s> <p> \"abc .\n").ok());
}

TEST(NTriplesTest, RejectsBadEscape) {
  EXPECT_FALSE(ParseNTriples("<s> <p> \"a\\qb\" .\n").ok());
}

TEST(NTriplesTest, RejectsTruncatedUnicode) {
  EXPECT_FALSE(ParseNTriples("<s> <p> \"\\u00\" .\n").ok());
}

TEST(NTriplesTest, RejectsTrailingGarbage) {
  EXPECT_FALSE(ParseNTriples("<s> <p> <o> . extra\n").ok());
}

TEST(NTriplesTest, RejectsEmptyLanguageTag) {
  EXPECT_FALSE(ParseNTriples("<s> <p> \"x\"@ .\n").ok());
}

TEST(NTriplesTest, WriterRoundTrips) {
  const char* text =
      "<http://x/s> <http://x/p> \"a\\tb \\\"q\\\" \\\\z\"@en .\n"
      "<http://x/s> <http://x/p2> \"5\"^^<http://x/int> .\n"
      "_:b <http://x/p> <http://x/o> .\n";
  auto g1 = ParseNTriples(text);
  ASSERT_TRUE(g1.ok()) << g1.status().ToString();
  const std::string serialized = WriteNTriples(*g1);
  auto g2 = ParseNTriples(serialized);
  ASSERT_TRUE(g2.ok()) << g2.status().ToString();
  ASSERT_EQ(g1->size(), g2->size());
  // Compare term-level content triple by triple.
  for (std::size_t i = 0; i < g1->size(); ++i) {
    const Triple& t1 = g1->triples()[i];
    const Triple& t2 = g2->triples()[i];
    EXPECT_EQ(g1->dict().term(t1.subject), g2->dict().term(t2.subject));
    EXPECT_EQ(g1->dict().term(t1.predicate), g2->dict().term(t2.predicate));
    EXPECT_EQ(g1->dict().term(t1.object), g2->dict().term(t2.object));
  }
}

TEST(NTriplesTest, ParseIntoAppends) {
  Graph g;
  ASSERT_TRUE(ParseNTriplesInto("<s> <p> <o> .\n", &g).ok());
  ASSERT_TRUE(ParseNTriplesInto("<s2> <p> <o> .\n", &g).ok());
  EXPECT_EQ(g.size(), 2u);
}

TEST(NTriplesTest, MissingFileIsNotFound) {
  auto g = ParseNTriplesFile("/nonexistent/path.nt");
  ASSERT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace rdfsr::rdf
