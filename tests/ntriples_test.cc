// Unit tests for the N-Triples parser and writer, including escape handling,
// error reporting (failure injection), streaming/zero-copy parsing, and the
// sharded multi-threaded reader (chunk-boundary line splitting, global error
// line numbers, bit-identical merge).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "gen/random_graph.h"
#include "rdf/ntriples.h"

namespace rdfsr::rdf {
namespace {

/// Synthetic multi-line input: `lines` triples with distinct subjects, a
/// shared predicate pool, and occasional comments/blanks.
std::string ManyLines(int lines) {
  std::string text;
  for (int i = 0; i < lines; ++i) {
    if (i % 17 == 0) text += "# comment " + std::to_string(i) + "\n";
    if (i % 23 == 0) text += "\n";
    text += "<http://x/s" + std::to_string(i % 37) + "> <http://x/p" +
            std::to_string(i % 5) + "> \"value " + std::to_string(i) +
            "\" .\n";
  }
  return text;
}

/// Asserts two graphs are bit-identical: same dictionary contents in the same
/// id order and the same triple id sequence.
void ExpectGraphsIdentical(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.dict().size(), b.dict().size());
  for (TermId id = 0; id < a.dict().size(); ++id) {
    EXPECT_EQ(a.dict().term(id), b.dict().term(id)) << "term id " << id;
  }
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.triples()[i].subject, b.triples()[i].subject) << "triple " << i;
    EXPECT_EQ(a.triples()[i].predicate, b.triples()[i].predicate)
        << "triple " << i;
    EXPECT_EQ(a.triples()[i].object, b.triples()[i].object) << "triple " << i;
  }
}

TEST(NTriplesTest, ParsesIriTriple) {
  auto g = ParseNTriples("<http://x/s> <http://x/p> <http://x/o> .\n");
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(g->size(), 1u);
}

TEST(NTriplesTest, ParsesLiteralForms) {
  const char* text =
      "<s> <p> \"plain\" .\n"
      "<s> <p> \"tagged\"@en-GB .\n"
      "<s> <p> \"5\"^^<http://www.w3.org/2001/XMLSchema#integer> .\n";
  auto g = ParseNTriples(text);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(g->size(), 3u);
}

TEST(NTriplesTest, ParsesBlankNodes) {
  auto g = ParseNTriples("_:a <p> _:b .\n");
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(g->size(), 1u);
  EXPECT_TRUE(g->dict().term(g->triples()[0].subject).is_blank());
}

TEST(NTriplesTest, SkipsCommentsAndBlankLines) {
  const char* text =
      "# a comment\n"
      "\n"
      "   \n"
      "<s> <p> <o> . # trailing comment\n";
  auto g = ParseNTriples(text);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(g->size(), 1u);
}

TEST(NTriplesTest, DecodesStringEscapes) {
  auto g = ParseNTriples("<s> <p> \"a\\tb\\nc\\\"d\\\\e\" .\n");
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  const Term& o = g->dict().term(g->triples()[0].object);
  EXPECT_EQ(o.lexical, "a\tb\nc\"d\\e");
}

TEST(NTriplesTest, DecodesUnicodeEscapes) {
  auto g = ParseNTriples("<s> <p> \"\\u00e9\\U0001F600\" .\n");
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  const Term& o = g->dict().term(g->triples()[0].object);
  EXPECT_EQ(o.lexical, "\xc3\xa9\xf0\x9f\x98\x80");  // é + 😀 in UTF-8
}

TEST(NTriplesTest, ErrorsCarryLineNumbers) {
  auto g = ParseNTriples("<s> <p> <o> .\nnot a triple\n");
  ASSERT_FALSE(g.ok());
  EXPECT_NE(g.status().message().find("line 2"), std::string::npos);
}

TEST(NTriplesTest, RejectsMissingDot) {
  EXPECT_FALSE(ParseNTriples("<s> <p> <o>\n").ok());
}

TEST(NTriplesTest, RejectsLiteralSubject) {
  EXPECT_FALSE(ParseNTriples("\"lit\" <p> <o> .\n").ok());
}

TEST(NTriplesTest, RejectsUnterminatedIri) {
  EXPECT_FALSE(ParseNTriples("<s <p> <o> .\n").ok());
}

TEST(NTriplesTest, RejectsUnterminatedLiteral) {
  EXPECT_FALSE(ParseNTriples("<s> <p> \"abc .\n").ok());
}

TEST(NTriplesTest, RejectsBadEscape) {
  EXPECT_FALSE(ParseNTriples("<s> <p> \"a\\qb\" .\n").ok());
}

TEST(NTriplesTest, RejectsTruncatedUnicode) {
  EXPECT_FALSE(ParseNTriples("<s> <p> \"\\u00\" .\n").ok());
}

TEST(NTriplesTest, RejectsTrailingGarbage) {
  EXPECT_FALSE(ParseNTriples("<s> <p> <o> . extra\n").ok());
}

TEST(NTriplesTest, RejectsEmptyLanguageTag) {
  EXPECT_FALSE(ParseNTriples("<s> <p> \"x\"@ .\n").ok());
}

TEST(NTriplesTest, WriterRoundTrips) {
  const char* text =
      "<http://x/s> <http://x/p> \"a\\tb \\\"q\\\" \\\\z\"@en .\n"
      "<http://x/s> <http://x/p2> \"5\"^^<http://x/int> .\n"
      "_:b <http://x/p> <http://x/o> .\n";
  auto g1 = ParseNTriples(text);
  ASSERT_TRUE(g1.ok()) << g1.status().ToString();
  const std::string serialized = WriteNTriples(*g1);
  auto g2 = ParseNTriples(serialized);
  ASSERT_TRUE(g2.ok()) << g2.status().ToString();
  ASSERT_EQ(g1->size(), g2->size());
  // Compare term-level content triple by triple.
  for (std::size_t i = 0; i < g1->size(); ++i) {
    const Triple& t1 = g1->triples()[i];
    const Triple& t2 = g2->triples()[i];
    EXPECT_EQ(g1->dict().term(t1.subject), g2->dict().term(t2.subject));
    EXPECT_EQ(g1->dict().term(t1.predicate), g2->dict().term(t2.predicate));
    EXPECT_EQ(g1->dict().term(t1.object), g2->dict().term(t2.object));
  }
}

TEST(NTriplesTest, ParseIntoAppends) {
  Graph g;
  ASSERT_TRUE(ParseNTriplesInto("<s> <p> <o> .\n", &g).ok());
  ASSERT_TRUE(ParseNTriplesInto("<s2> <p> <o> .\n", &g).ok());
  EXPECT_EQ(g.size(), 2u);
}

TEST(NTriplesTest, MissingFileIsNotFound) {
  auto g = ParseNTriplesFile("/nonexistent/path.nt");
  ASSERT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kNotFound);
}

TEST(NTriplesTest, StreamSinkSeesTriplesInOrder) {
  std::vector<std::string> subjects;
  Status st = ParseNTriplesStream(
      "<http://x/a> <http://x/p> \"1\" .\n"
      "_:b <http://x/p> \"2\" .\n",
      [&](const TermView& s, const TermView& p, const TermView& o) {
        subjects.push_back(std::string(s.lexical));
        EXPECT_EQ(p.kind, TermKind::kIri);
        EXPECT_EQ(o.kind, TermKind::kLiteral);
      });
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(subjects, (std::vector<std::string>{"http://x/a", "b"}));
}

TEST(NTriplesTest, StreamDecodesEscapedViews) {
  // Escaped forms must decode even though unescaped forms are zero-copy.
  std::string lex, iri;
  Status st = ParseNTriplesStream(
      "<http://x/caf\\u00e9> <http://x/p> \"a\\tb\" .\n",
      [&](const TermView& s, const TermView&, const TermView& o) {
        iri = std::string(s.lexical);
        lex = std::string(o.lexical);
      });
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(iri, "http://x/caf\xc3\xa9");
  EXPECT_EQ(lex, "a\tb");
}

TEST(NTriplesTest, ReadFileToStringSingleBuffer) {
  const std::string path = ::testing::TempDir() + "ntriples_read_once.nt";
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("<http://x/s> <http://x/p> \"v\" .\n", f);
    std::fclose(f);
  }
  auto text = ReadFileToString(path);
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_EQ(*text, "<http://x/s> <http://x/p> \"v\" .\n");
  std::remove(path.c_str());
}

TEST(NTriplesTest, ShardedParseMatchesSequentialBitForBit) {
  const std::string text = ManyLines(500);
  Graph sequential;
  ASSERT_TRUE(ParseNTriplesInto(text, &sequential).ok());
  for (int threads : {2, 3, 4, 8}) {
    ParseOptions options;
    options.threads = threads;
    options.min_chunk_bytes = 1;  // force sharding on this small input
    Graph sharded;
    ASSERT_TRUE(ParseNTriplesInto(text, &sharded, options).ok())
        << threads << " threads";
    SCOPED_TRACE(std::to_string(threads) + " threads");
    ExpectGraphsIdentical(sharded, sequential);
  }
}

TEST(NTriplesTest, ShardedParseHandlesChunkBoundaryLines) {
  // With min_chunk_bytes = 1 and many threads, chunk boundaries land inside
  // the line stream; every split must snap to a line boundary so no triple is
  // lost or torn.
  const std::string text = ManyLines(64);
  ParseOptions options;
  options.threads = 16;
  options.min_chunk_bytes = 1;
  Graph sharded;
  ASSERT_TRUE(ParseNTriplesInto(text, &sharded, options).ok());
  Graph sequential;
  ASSERT_TRUE(ParseNTriplesInto(text, &sequential).ok());
  ExpectGraphsIdentical(sharded, sequential);
}

TEST(NTriplesTest, ShardedParseReportsGlobalErrorLine) {
  // Place the bad line deep enough that it falls in a later chunk; the error
  // must carry the global line number, not the chunk-local one.
  std::string text = ManyLines(200);
  const std::size_t lines_before =
      static_cast<std::size_t>(std::count(text.begin(), text.end(), '\n'));
  text += "this is not a triple\n";
  text += ManyLines(10);
  ParseOptions options;
  options.threads = 4;
  options.min_chunk_bytes = 1;
  Graph g;
  Status st = ParseNTriplesInto(text, &g, options);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("line " + std::to_string(lines_before + 1)),
            std::string::npos)
      << st.ToString();
}

TEST(NTriplesTest, ShardedParseReportsEarliestError) {
  // Errors in several chunks: the reported error must be the first one in
  // line order, matching sequential semantics.
  std::string text = ManyLines(50);
  const std::size_t first_bad =
      static_cast<std::size_t>(std::count(text.begin(), text.end(), '\n')) + 1;
  text += "bad line one\n";
  text += ManyLines(100);
  text += "bad line two\n";
  ParseOptions options;
  options.threads = 6;
  options.min_chunk_bytes = 1;
  Graph g;
  Status st = ParseNTriplesInto(text, &g, options);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("line " + std::to_string(first_bad)),
            std::string::npos)
      << st.ToString();
}

TEST(NTriplesTest, RandomGraphsIdenticalAcrossThreadCounts) {
  // The contract is bit-identity for *any* thread count, including counts
  // above the hardware concurrency. Random generator graphs exercise the
  // messy shapes (blank nodes, duplicate triples, literals with datatypes)
  // that the ManyLines tests above do not.
  for (const std::uint64_t seed : {2u, 9u, 31u}) {
    gen::RandomGraphSpec spec;
    spec.num_subjects = 120;
    spec.num_properties = 10;
    spec.num_sorts = 2;
    spec.seed = seed;
    const std::string text = WriteNTriples(gen::GenerateRandomGraph(spec));
    Graph sequential;
    ASSERT_TRUE(ParseNTriplesInto(text, &sequential).ok());
    for (const int threads : {1, 2, 8}) {
      ParseOptions options;
      options.threads = threads;
      options.min_chunk_bytes = 1;  // force one chunk per thread
      Graph parsed;
      ASSERT_TRUE(ParseNTriplesInto(text, &parsed, options).ok())
          << "seed " << seed << " threads " << threads;
      SCOPED_TRACE("seed " + std::to_string(seed) + " threads " +
                   std::to_string(threads));
      ExpectGraphsIdentical(parsed, sequential);
      // The derived posting orders feed the signature index — they must
      // match too, not just the raw triple stream.
      EXPECT_EQ(parsed.subjects(), sequential.subjects());
      EXPECT_EQ(parsed.properties(), sequential.properties());
    }
  }
}

TEST(NTriplesTest, ParseFileWithThreadsMatchesSequential) {
  const std::string path = ::testing::TempDir() + "ntriples_sharded.nt";
  const std::string text = ManyLines(300);
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
  }
  auto sequential = ParseNTriplesFile(path);
  ASSERT_TRUE(sequential.ok()) << sequential.status().ToString();
  ParseOptions options;
  options.threads = 4;
  options.min_chunk_bytes = 1;
  auto sharded = ParseNTriplesFile(path, options);
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  ExpectGraphsIdentical(*sharded, *sequential);
  std::remove(path.c_str());
}

/// Interleaves `text`'s lines with `bad` malformed lines at fixed intervals,
/// returning the dirty text and the 1-based global line numbers of the bad
/// lines.
std::string Dirty(const std::string& text, int every,
                  std::vector<std::size_t>* bad_lines) {
  std::string out;
  std::size_t line_no = 0;
  int countdown = every;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t eol = text.find('\n', pos);
    const std::size_t end = eol == std::string::npos ? text.size() : eol + 1;
    if (--countdown == 0) {
      out += "not a triple at all\n";
      bad_lines->push_back(++line_no);
      countdown = every;
    }
    out.append(text, pos, end - pos);
    ++line_no;
    pos = end;
  }
  return out;
}

TEST(NTriplesTest, TolerantParseSkipsBadLinesBitIdentical) {
  const std::string clean = ManyLines(120);
  std::vector<std::size_t> bad_lines;
  const std::string dirty = Dirty(clean, 13, &bad_lines);
  ASSERT_FALSE(bad_lines.empty());

  Graph expected;
  ASSERT_TRUE(ParseNTriplesInto(clean, &expected).ok());

  ParseOptions options;
  options.max_errors = bad_lines.size();
  std::vector<ParseDiagnostic> diags;
  options.diagnostics = &diags;
  Graph tolerant;
  Status st = ParseNTriplesInto(dirty, &tolerant, options);
  ASSERT_TRUE(st.ok()) << st.ToString();
  ExpectGraphsIdentical(tolerant, expected);
  ASSERT_EQ(diags.size(), bad_lines.size());
  for (std::size_t i = 0; i < diags.size(); ++i) {
    EXPECT_EQ(diags[i].line, bad_lines[i]) << "diagnostic " << i;
    EXPECT_FALSE(diags[i].message.empty());
  }
}

TEST(NTriplesTest, TolerantParseFailsPastBudget) {
  const std::string clean = ManyLines(60);
  std::vector<std::size_t> bad_lines;
  const std::string dirty = Dirty(clean, 7, &bad_lines);
  ASSERT_GT(bad_lines.size(), 2u);

  ParseOptions options;
  options.max_errors = 2;  // fewer than the bad lines present
  std::vector<ParseDiagnostic> diags;
  options.diagnostics = &diags;
  Graph g;
  Status st = ParseNTriplesInto(dirty, &g, options);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kParseError);
  EXPECT_NE(st.message().find("max_errors"), std::string::npos)
      << st.ToString();
  // Diagnostics stay bounded by the budget even on failure.
  EXPECT_LE(diags.size(), options.max_errors);
}

TEST(NTriplesTest, TolerantShardedParseMatchesSequentialWithGlobalLines) {
  const std::string clean = ManyLines(400);
  std::vector<std::size_t> bad_lines;
  const std::string dirty = Dirty(clean, 31, &bad_lines);
  ASSERT_FALSE(bad_lines.empty());

  Graph expected;
  ASSERT_TRUE(ParseNTriplesInto(clean, &expected).ok());

  for (const int threads : {2, 4, 8}) {
    ParseOptions options;
    options.threads = threads;
    options.min_chunk_bytes = 1;  // force sharding on this small input
    options.max_errors = bad_lines.size();
    std::vector<ParseDiagnostic> diags;
    options.diagnostics = &diags;
    Graph tolerant;
    Status st = ParseNTriplesInto(dirty, &tolerant, options);
    ASSERT_TRUE(st.ok()) << threads << " threads: " << st.ToString();
    SCOPED_TRACE(std::to_string(threads) + " threads");
    ExpectGraphsIdentical(tolerant, expected);
    // Global line numbers in input order, exactly as the sequential parse
    // reports them.
    ASSERT_EQ(diags.size(), bad_lines.size());
    for (std::size_t i = 0; i < diags.size(); ++i) {
      EXPECT_EQ(diags[i].line, bad_lines[i]) << "diagnostic " << i;
    }
  }
}

TEST(NTriplesTest, TolerantShardedParseFailsPastBudget) {
  const std::string clean = ManyLines(200);
  std::vector<std::size_t> bad_lines;
  const std::string dirty = Dirty(clean, 11, &bad_lines);
  ParseOptions options;
  options.threads = 4;
  options.min_chunk_bytes = 1;
  options.max_errors = 3;
  Graph g;
  Status st = ParseNTriplesInto(dirty, &g, options);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kParseError);
}

TEST(NTriplesTest, ReadFileDirectoryIsInvalidArgument) {
  auto text = ReadFileToString(::testing::TempDir());
  ASSERT_FALSE(text.ok());
  EXPECT_EQ(text.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(text.status().message().find("directory"), std::string::npos)
      << text.status().ToString();
}

TEST(NTriplesTest, MissingFileErrorNamesPath) {
  auto g = ParseNTriplesFile("/no/such/dir/missing.nt");
  ASSERT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kNotFound);
  EXPECT_NE(g.status().message().find("/no/such/dir/missing.nt"),
            std::string::npos)
      << g.status().ToString();
}

TEST(NTriplesTest, CancelledParseKeepsValidPrefix) {
  // Large enough that the parser's stride-4096 checkpoint actually samples
  // the token.
  const std::string text = ManyLines(10000);
  util::Deadline deadline = util::Deadline::Cancellable();
  deadline.RequestCancel();
  ParseOptions options;
  options.cancel = deadline.token();
  Graph g;
  Status st = ParseNTriplesInto(text, &g, options);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kCancelled);
  // Whatever prefix was parsed must be a coherent graph.
  g.CheckInvariants();
}

}  // namespace
}  // namespace rdfsr::rdf
