// Regression locks for the cross-instance warm-start chain and the sparse
// basis default: FindHighestTheta / FindLowestK with warm starts on (the root
// basis of each exact solve seeds the next instance's root LP) must produce
// bit-identical search results to cold starts — including the refinement
// witnesses — and the LU-factorized engine must agree with the dense-inverse
// baseline on every decision, theta/k value, instance count, and proof flag
// (witnesses may differ between backends: degenerate optima admit several).
// Heuristics are disabled so every instance is settled by the exact solver.

#include <gtest/gtest.h>

#include <string>

#include "../bench/bench_util.h"
#include "core/solver.h"
#include "eval/evaluator.h"
#include "gen/random_graph.h"
#include "rules/builtins.h"

namespace rdfsr::core {
namespace {

using bench::RenderSorts;

SolverOptions PureExact() {
  SolverOptions options;
  options.greedy_first = false;
  return options;
}

/// Compares two whole searches. `same_witness` additionally requires the
/// refinements themselves to match: that holds between warm and cold runs of
/// the SAME engine (warm starts must not change anything), but not across
/// basis backends — degenerate optima admit several optimal witnesses and
/// different pivot trajectories may surface different ones. Decisions,
/// theta/k values, instance counts, and proof flags must agree regardless.
void ExpectSearchesIdentical(const eval::Evaluator& evaluator,
                             const SolverOptions& a_options,
                             const SolverOptions& b_options,
                             const std::string& context,
                             bool same_witness = true) {
  RefinementSolver a(&evaluator, a_options);
  RefinementSolver b(&evaluator, b_options);
  for (int k : {1, 2, 3}) {
    const HighestThetaResult ra = a.FindHighestTheta(k);
    const HighestThetaResult rb = b.FindHighestTheta(k);
    EXPECT_EQ(ra.theta, rb.theta) << context << " k=" << k;
    if (same_witness) {
      EXPECT_EQ(RenderSorts(ra.refinement), RenderSorts(rb.refinement))
          << context << " k=" << k;
    }
    EXPECT_EQ(ra.instances, rb.instances) << context << " k=" << k;
    EXPECT_EQ(ra.ceiling_proven, rb.ceiling_proven) << context << " k=" << k;
  }
  for (const Rational& theta : {Rational(3, 4), Rational(1)}) {
    auto ra = a.FindLowestK(theta);
    auto rb = b.FindLowestK(theta);
    ASSERT_EQ(ra.ok(), rb.ok()) << context << " theta=" << theta.ToString();
    if (!ra.ok()) {
      EXPECT_EQ(ra.status().code(), rb.status().code())
          << context << " theta=" << theta.ToString();
      continue;
    }
    EXPECT_EQ(ra->k, rb->k) << context << " theta=" << theta.ToString();
    if (same_witness) {
      EXPECT_EQ(RenderSorts(ra->refinement), RenderSorts(rb->refinement))
          << context << " theta=" << theta.ToString();
    }
    EXPECT_EQ(ra->proven_minimal, rb->proven_minimal)
        << context << " theta=" << theta.ToString();
  }
}

TEST(WarmStartTest, WarmAndColdSearchesBitIdentical) {
  for (std::uint64_t seed : {3, 11, 29}) {
    gen::RandomIndexSpec spec;
    spec.num_signatures = 5;
    spec.num_properties = 3;
    spec.seed = seed;
    const schema::SignatureIndex index = gen::GenerateRandomIndex(spec);
    for (const rules::Rule& rule : {rules::CovRule(), rules::SimRule()}) {
      auto evaluator = eval::MakeEvaluator(rule, &index);
      SolverOptions warm = PureExact();
      warm.warm_start = true;
      SolverOptions cold = PureExact();
      cold.warm_start = false;
      ExpectSearchesIdentical(
          *evaluator, warm, cold,
          "warm-vs-cold seed " + std::to_string(seed) + "/" + rule.name());
    }
  }
}

TEST(WarmStartTest, SparseAndDenseBackendsAgree) {
  for (std::uint64_t seed : {5, 17}) {
    gen::RandomIndexSpec spec;
    spec.num_signatures = 5;
    spec.num_properties = 3;
    spec.seed = seed;
    const schema::SignatureIndex index = gen::GenerateRandomIndex(spec);
    for (const rules::Rule& rule : {rules::CovRule(), rules::SimRule()}) {
      auto evaluator = eval::MakeEvaluator(rule, &index);
      SolverOptions sparse = PureExact();
      sparse.mip.lp.basis_kind = ilp::BasisKind::kLuFactorization;
      SolverOptions dense = PureExact();
      dense.mip.lp.basis_kind = ilp::BasisKind::kDenseInverse;
      ExpectSearchesIdentical(
          *evaluator, sparse, dense,
          "sparse-vs-dense seed " + std::to_string(seed) + "/" + rule.name(),
          /*same_witness=*/false);
    }
  }
}

TEST(WarmStartTest, WarmStartActuallyReusesBases) {
  // The chain must do something: across a theta sweep with warm starts on,
  // at least one root LP adopts a previous basis (stats are aggregated into
  // HighestThetaResult::lp_stats), and the cold configuration reports none.
  gen::RandomIndexSpec spec;
  spec.num_signatures = 5;
  spec.num_properties = 3;
  spec.seed = 3;
  const schema::SignatureIndex index = gen::GenerateRandomIndex(spec);
  auto evaluator = eval::MakeEvaluator(rules::CovRule(), &index);

  SolverOptions warm = PureExact();
  warm.warm_start = true;
  RefinementSolver warm_solver(evaluator.get(), warm);
  const HighestThetaResult rw = warm_solver.FindHighestTheta(2);
  EXPECT_GT(rw.lp_stats.pivots, 0);

  SolverOptions cold = PureExact();
  cold.warm_start = false;
  cold.mip.warm_start_lps = false;
  RefinementSolver cold_solver(evaluator.get(), cold);
  const HighestThetaResult rc = cold_solver.FindHighestTheta(2);
  EXPECT_EQ(rc.lp_stats.basis_reuses, 0);
  EXPECT_GT(rw.lp_stats.basis_reuses, rc.lp_stats.basis_reuses);
}

TEST(WarmStartTest, DecisionResultCarriesLpStats) {
  gen::RandomIndexSpec spec;
  spec.num_signatures = 4;
  spec.num_properties = 3;
  spec.seed = 9;
  const schema::SignatureIndex index = gen::GenerateRandomIndex(spec);
  auto evaluator = eval::MakeEvaluator(rules::CovRule(), &index);
  RefinementSolver solver(evaluator.get(), PureExact());
  // A single instance can be settled without any LP (root probing proves
  // far-infeasible thetas at zero nodes), so accumulate across a small sweep:
  // at least one theta is feasible, and a feasible exact answer needs an
  // incumbent from a solved relaxation.
  long long lp_work = 0;
  for (const Rational& theta :
       {Rational(1, 10), Rational(1, 2), Rational(3, 4), Rational(9, 10)}) {
    const DecisionResult r = solver.Exists(2, theta);
    ASSERT_NE(r.decision, Decision::kUnknown) << theta.ToString();
    lp_work += r.lp_stats.pivots + r.lp_stats.refactorizations;
  }
  EXPECT_GT(lp_work, 0);
}

}  // namespace
}  // namespace rdfsr::core
