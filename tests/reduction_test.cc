// Appendix A reduction tests: the M_G construction, the rule r0, and the
// correspondence between 3-colorings and row partitions.

#include <gtest/gtest.h>

#include "reduction/three_coloring.h"
#include "rules/printer.h"
#include "schema/signature_index.h"

namespace rdfsr::reduction {
namespace {

TEST(GraphTest, CompleteAndCycleConstruction) {
  const UndirectedGraph k4 = UndirectedGraph::Complete(4);
  EXPECT_TRUE(k4.HasEdge(0, 3));
  EXPECT_TRUE(k4.HasEdge(2, 1));
  const UndirectedGraph c5 = UndirectedGraph::Cycle(5);
  EXPECT_TRUE(c5.HasEdge(4, 0));
  EXPECT_FALSE(c5.HasEdge(0, 2));
}

TEST(ThreeColorTest, TriangleIsColorable) {
  const UndirectedGraph g = UndirectedGraph::Complete(3);
  auto coloring = ThreeColor(g);
  ASSERT_TRUE(coloring.has_value());
  EXPECT_TRUE(IsValidColoring(g, *coloring));
}

TEST(ThreeColorTest, K4IsNotColorable) {
  EXPECT_FALSE(ThreeColor(UndirectedGraph::Complete(4)).has_value());
}

TEST(ThreeColorTest, OddCycleNeedsThreeColors) {
  const UndirectedGraph c5 = UndirectedGraph::Cycle(5);
  auto coloring = ThreeColor(c5);
  ASSERT_TRUE(coloring.has_value());
  EXPECT_TRUE(IsValidColoring(c5, *coloring));
  // And uses all three colors (C5 is not 2-colorable).
  std::set<int> used(coloring->begin(), coloring->end());
  EXPECT_EQ(used.size(), 3u);
}

TEST(ThreeColorTest, ValidColoringRejectsBadInput) {
  const UndirectedGraph g = UndirectedGraph::Complete(3);
  EXPECT_FALSE(IsValidColoring(g, {0, 0, 1}));      // adjacent same color
  EXPECT_FALSE(IsValidColoring(g, {0, 1}));         // wrong arity
  EXPECT_FALSE(IsValidColoring(g, {0, 1, 5}));      // out of range
  EXPECT_TRUE(IsValidColoring(g, {0, 1, 2}));
}

TEST(ReductionMatrixTest, DimensionsAndBlocks) {
  // Example A.1: the 3-node path graph 1-2 (edge), 3 isolated.
  UndirectedGraph g(3);
  g.AddEdge(0, 1);
  const schema::PropertyMatrix m = BuildReductionMatrix(g);
  ASSERT_EQ(m.num_subjects(), 12u);   // 4n
  ASSERT_EQ(m.num_properties(), 9u);  // 2n + 3

  // Upper section: sp1/sp2 patterns per auxiliary group, idp = 1.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(m.At(i, 0), 0);      // group a: sp1 = 0
    EXPECT_EQ(m.At(i, 1), 0);      // group a: sp2 = 0
    EXPECT_EQ(m.At(i, 2), 1);      // idp
    EXPECT_EQ(m.At(3 + i, 1), 1);  // group b: sp2 = 1
    EXPECT_EQ(m.At(6 + i, 0), 1);  // group c: sp1 = 1
  }
  // Diagonal blocks in the upper section.
  for (int g_i = 0; g_i < 3; ++g_i) {
    for (int i = 0; i < 3; ++i) {
      for (int j = 0; j < 3; ++j) {
        EXPECT_EQ(m.At(g_i * 3 + i, 3 + j), i == j ? 1 : 0);
        EXPECT_EQ(m.At(g_i * 3 + i, 6 + j), i == j ? 1 : 0);
      }
    }
  }
  // Lower section: sp1 = sp2 = 1, idp = 0, complemented adjacency from
  // Example A.1: rows (1 0 1 / 0 1 1 / 1 1 1).
  const int expect[3][3] = {{1, 0, 1}, {0, 1, 1}, {1, 1, 1}};
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(m.At(9 + i, 0), 1);
    EXPECT_EQ(m.At(9 + i, 1), 1);
    EXPECT_EQ(m.At(9 + i, 2), 0);
    for (int j = 0; j < 3; ++j) {
      EXPECT_EQ(m.At(9 + i, 6 + j), expect[i][j]) << i << "," << j;
    }
  }
}

TEST(ReductionMatrixTest, EveryRowHasUniqueSignature) {
  // The sp1/sp2 columns exist exactly so that no two rows share a signature
  // (making the signature-closure requirement vacuous).
  UndirectedGraph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(2, 3);
  const schema::PropertyMatrix m = BuildReductionMatrix(g);
  const schema::SignatureIndex index =
      schema::SignatureIndex::FromMatrix(m, false);
  EXPECT_EQ(index.num_signatures(), m.num_subjects());
  for (std::size_t i = 0; i < index.num_signatures(); ++i) {
    EXPECT_EQ(index.signature(i).count, 1);
  }
}

TEST(RuleR0Test, WellFormedElevenVariables) {
  const rules::Rule r0 = BuildRuleR0();
  EXPECT_EQ(r0.variables().size(), 11u);
  EXPECT_EQ(r0.name(), "r0");
  // The rule avoids subj(c) = <constant> atoms (as the paper notes).
  std::vector<std::string> subject_constants;
  rules::CollectSubjectConstants(r0.antecedent(), &subject_constants);
  rules::CollectSubjectConstants(r0.consequent(), &subject_constants);
  EXPECT_TRUE(subject_constants.empty());
  // But mentions the marker properties.
  std::vector<std::string> props;
  rules::CollectPropertyConstants(r0.antecedent(), &props);
  EXPECT_NE(std::find(props.begin(), props.end(), "sp1"), props.end());
  EXPECT_NE(std::find(props.begin(), props.end(), "idp"), props.end());
  // Printable and non-trivial.
  EXPECT_GT(rules::ToString(r0).size(), 200u);
}

TEST(ColoringPartitionTest, PartitionCoversAllRowsOnce) {
  const UndirectedGraph c5 = UndirectedGraph::Cycle(5);
  auto coloring = ThreeColor(c5);
  ASSERT_TRUE(coloring.has_value());
  const auto parts = ColoringToRowPartition(c5, *coloring);
  ASSERT_EQ(parts.size(), 3u);
  std::vector<int> seen(4 * 5, 0);
  for (const auto& part : parts) {
    for (int row : part) {
      ASSERT_GE(row, 0);
      ASSERT_LT(row, 20);
      ++seen[row];
    }
  }
  for (int row = 0; row < 20; ++row) EXPECT_EQ(seen[row], 1) << row;
  // Each part has one copy of the auxiliary rows (n rows) plus its color
  // class.
  for (int color = 0; color < 3; ++color) {
    int aux = 0, nodes = 0;
    for (int row : parts[color]) {
      (row < 15) ? ++aux : ++nodes;
    }
    EXPECT_EQ(aux, 5);
  }
}

TEST(ColoringPartitionTest, PartsAreIndependentSets) {
  // The reduction's soundness hinges on color classes being independent
  // sets; check the partition rows against the graph.
  const UndirectedGraph c5 = UndirectedGraph::Cycle(5);
  auto coloring = ThreeColor(c5);
  ASSERT_TRUE(coloring.has_value());
  const auto parts = ColoringToRowPartition(c5, *coloring);
  for (const auto& part : parts) {
    std::vector<int> nodes;
    for (int row : part) {
      if (row >= 15) nodes.push_back(row - 15);
    }
    for (std::size_t a = 0; a < nodes.size(); ++a) {
      for (std::size_t b = a + 1; b < nodes.size(); ++b) {
        EXPECT_FALSE(c5.HasEdge(nodes[a], nodes[b]));
      }
    }
  }
}

}  // namespace
}  // namespace rdfsr::reduction
