// End-to-end pipeline tests: N-Triples text -> graph -> sort slice -> matrix
// -> signature index -> structuredness -> sort refinement, mirroring how a
// downstream user consumes the library (and how the examples do).

#include <gtest/gtest.h>

#include "core/solver.h"
#include "eval/evaluator.h"
#include "gen/persons.h"
#include "rdf/ntriples.h"
#include "rdf/vocab.h"
#include "rules/builtins.h"
#include "rules/parser.h"
#include "schema/property_matrix.h"
#include "schema/signature_index.h"

namespace rdfsr {
namespace {

const char* kTinyDataset = R"(
<http://x/alice> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://x/Person> .
<http://x/alice> <http://x/name> "Alice" .
<http://x/alice> <http://x/email> "a@x" .
<http://x/bob> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://x/Person> .
<http://x/bob> <http://x/name> "Bob" .
<http://x/carol> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://x/Person> .
<http://x/carol> <http://x/name> "Carol" .
<http://x/carol> <http://x/email> "c@x" .
<http://x/acme> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://x/Company> .
<http://x/acme> <http://x/name> "Acme" .
)";

TEST(IntegrationTest, TextToRefinement) {
  auto graph = rdf::ParseNTriples(kTinyDataset);
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();

  const rdf::Graph persons = graph->SortSlice("http://x/Person");
  EXPECT_EQ(persons.subjects().size(), 3u);

  const schema::PropertyMatrix matrix =
      schema::PropertyMatrix::FromGraph(persons);
  const schema::SignatureIndex index =
      schema::SignatureIndex::FromMatrix(matrix, true);
  EXPECT_EQ(index.num_signatures(), 2u);  // {name,email} x2, {name} x1

  auto cov = eval::MakeEvaluator(rules::CovRule(), &index);
  // ones = 3 + 2 = 5; cells = 3 * 2.
  EXPECT_NEAR(cov->SigmaAll(), 5.0 / 6, 1e-12);

  core::RefinementSolver solver(cov.get());
  const core::HighestThetaResult best = solver.FindHighestTheta(2);
  EXPECT_EQ(best.theta, Rational(1));
  EXPECT_EQ(best.refinement.num_sorts(), 2u);
}

TEST(IntegrationTest, UserDefinedRuleThroughParser) {
  auto graph = rdf::ParseNTriples(kTinyDataset);
  ASSERT_TRUE(graph.ok());
  const rdf::Graph persons = graph->SortSlice("http://x/Person");
  const schema::SignatureIndex index = schema::SignatureIndex::FromMatrix(
      schema::PropertyMatrix::FromGraph(persons), true);

  // "If a subject has email it also has name" as a Dep rule via the text
  // syntax, using full IRIs.
  auto rule = rules::ParseRule(
      "subj(c1) = subj(c2) && prop(c1) = <http://x/email> && "
      "prop(c2) = <http://x/name> && val(c1) = 1 -> val(c2) = 1");
  ASSERT_TRUE(rule.ok()) << rule.status().ToString();
  auto evaluator = eval::MakeEvaluator(*rule, &index);
  EXPECT_DOUBLE_EQ(evaluator->SigmaAll(), 1.0);
}

TEST(IntegrationTest, PersonsPipelineAtSmallScale) {
  gen::PersonsConfig config;
  config.num_subjects = 400;
  config.seed = 2024;
  const rdf::Graph graph = gen::GeneratePersonsGraph(config);
  const rdf::Graph persons = graph.SortSlice(rdf::vocab::kFoafPerson);
  const schema::SignatureIndex index = schema::SignatureIndex::FromMatrix(
      schema::PropertyMatrix::FromGraph(persons), false);

  auto cov = eval::MakeEvaluator(rules::CovRule(), &index);
  const double sigma = cov->SigmaAll();
  EXPECT_GT(sigma, 0.40);
  EXPECT_LT(sigma, 0.70);

  // A k=2 Cov refinement must improve the minimum sigma over the baseline.
  core::SolverOptions options;
  options.mip.time_limit_seconds = 20;
  core::RefinementSolver solver(cov.get(), options);
  const core::HighestThetaResult best = solver.FindHighestTheta(2);
  EXPECT_GE(best.theta.ToDouble(), sigma);
  EXPECT_TRUE(
      core::ValidateRefinement(*cov, best.refinement, best.theta).ok());
}

TEST(IntegrationTest, RoundTripThroughNTriplesPreservesSigma) {
  gen::PersonsConfig config;
  config.num_subjects = 150;
  const rdf::Graph graph = gen::GeneratePersonsGraph(config);
  const std::string text = rdf::WriteNTriples(graph);
  auto reparsed = rdf::ParseNTriples(text);
  ASSERT_TRUE(reparsed.ok());

  auto index_of = [](const rdf::Graph& g) {
    return schema::SignatureIndex::FromMatrix(
        schema::PropertyMatrix::FromGraph(g.SortSlice(rdf::vocab::kFoafPerson)),
        false);
  };
  const schema::SignatureIndex a = index_of(graph);
  const schema::SignatureIndex b = index_of(*reparsed);
  auto cov_a = eval::MakeEvaluator(rules::CovRule(), &a);
  auto cov_b = eval::MakeEvaluator(rules::CovRule(), &b);
  EXPECT_DOUBLE_EQ(cov_a->SigmaAll(), cov_b->SigmaAll());
}

}  // namespace
}  // namespace rdfsr
