// Regression lock for the instance-reuse exact path: FindHighestTheta and
// FindLowestK with reuse_instances on (one cached encoding per k, reweighted
// per theta; heuristic-ladder results scored once per k) must produce
// bit-identical outputs to the rebuild-per-instance baseline
// (reuse_instances off) — on the quickstart dataset and on random indices
// small enough that the exact MIP, not just the heuristics, settles
// instances. bench/bench_solver.cc asserts the same identity at larger sizes
// while measuring the speedup.

#include <gtest/gtest.h>

#include <string>

#include "../bench/bench_util.h"
#include "api/rdfsr.h"
#include "core/solver.h"
#include "eval/evaluator.h"
#include "gen/random_graph.h"
#include "rules/builtins.h"

namespace rdfsr::core {
namespace {

using bench::RenderSorts;

SolverOptions WithReuse(bool reuse) {
  SolverOptions options;
  options.reuse_instances = reuse;
  return options;
}

void ExpectSearchesIdentical(const eval::Evaluator& evaluator,
                             const std::string& context) {
  // Fresh solvers per mode: reuse must not leak across configurations.
  RefinementSolver reused(&evaluator, WithReuse(true));
  RefinementSolver rebuilt(&evaluator, WithReuse(false));

  for (int k : {1, 2, 3}) {
    const HighestThetaResult a = reused.FindHighestTheta(k);
    const HighestThetaResult b = rebuilt.FindHighestTheta(k);
    EXPECT_EQ(a.theta, b.theta) << context << " k=" << k;
    EXPECT_EQ(RenderSorts(a.refinement), RenderSorts(b.refinement))
        << context << " k=" << k;
    EXPECT_EQ(a.instances, b.instances) << context << " k=" << k;
    EXPECT_EQ(a.ceiling_proven, b.ceiling_proven) << context << " k=" << k;
  }

  for (const Rational& theta :
       {Rational(3, 4), Rational(9, 10), Rational(1)}) {
    auto a = reused.FindLowestK(theta);
    auto b = rebuilt.FindLowestK(theta);
    ASSERT_EQ(a.ok(), b.ok()) << context << " theta=" << theta.ToString();
    if (!a.ok()) {
      EXPECT_EQ(a.status().code(), b.status().code())
          << context << " theta=" << theta.ToString();
      continue;
    }
    EXPECT_EQ(a->k, b->k) << context << " theta=" << theta.ToString();
    EXPECT_EQ(RenderSorts(a->refinement), RenderSorts(b->refinement))
        << context << " theta=" << theta.ToString();
    EXPECT_EQ(a->proven_minimal, b->proven_minimal)
        << context << " theta=" << theta.ToString();
    EXPECT_EQ(a->instances, b->instances)
        << context << " theta=" << theta.ToString();
  }
}

TEST(SolverReuseTest, QuickstartSearchesBitIdentical) {
  auto dataset = api::Dataset::FromNTriplesFile(
      "examples/data/quickstart.nt", {.sort = "http://x/Person"});
  if (!dataset.ok()) {
    // ctest runs from the build tree; fall back to the source-tree path.
    dataset = api::Dataset::FromNTriplesFile(
        "../examples/data/quickstart.nt", {.sort = "http://x/Person"});
  }
  ASSERT_TRUE(dataset.ok()) << dataset.status().ToString();
  const schema::SignatureIndex& index = dataset->index();
  for (const rules::Rule& rule : {rules::CovRule(), rules::SimRule()}) {
    auto evaluator = eval::MakeEvaluator(rule, &index);
    ExpectSearchesIdentical(*evaluator, "quickstart/" + rule.name());
  }
}

TEST(SolverReuseTest, RandomIndexSearchesBitIdentical) {
  for (std::uint64_t seed : {1, 7, 21}) {
    gen::RandomIndexSpec spec;
    spec.num_signatures = 6;
    spec.num_properties = 4;
    spec.seed = seed;
    const schema::SignatureIndex index = gen::GenerateRandomIndex(spec);
    for (const rules::Rule& rule : {rules::CovRule(), rules::SimRule()}) {
      auto evaluator = eval::MakeEvaluator(rule, &index);
      ExpectSearchesIdentical(
          *evaluator, "seed " + std::to_string(seed) + "/" + rule.name());
    }
  }
}

TEST(SolverReuseTest, PureMipSearchesBitIdentical) {
  // With the heuristic ladder off, every instance is settled by the exact
  // encoding — the strongest check that a reweighted instance solves exactly
  // like a fresh build.
  gen::RandomIndexSpec spec;
  spec.num_signatures = 5;
  spec.num_properties = 3;
  spec.seed = 4;
  const schema::SignatureIndex index = gen::GenerateRandomIndex(spec);
  auto evaluator = eval::MakeEvaluator(rules::CovRule(), &index);

  SolverOptions reuse_on = WithReuse(true);
  reuse_on.greedy_first = false;
  SolverOptions reuse_off = WithReuse(false);
  reuse_off.greedy_first = false;
  RefinementSolver reused(evaluator.get(), reuse_on);
  RefinementSolver rebuilt(evaluator.get(), reuse_off);

  for (int k : {2, 3}) {
    const HighestThetaResult a = reused.FindHighestTheta(k);
    const HighestThetaResult b = rebuilt.FindHighestTheta(k);
    EXPECT_EQ(a.theta, b.theta) << "k=" << k;
    EXPECT_EQ(RenderSorts(a.refinement), RenderSorts(b.refinement)) << "k=" << k;
    EXPECT_EQ(a.instances, b.instances) << "k=" << k;
  }
  auto a = reused.FindLowestK(Rational(9, 10));
  auto b = rebuilt.FindLowestK(Rational(9, 10));
  ASSERT_EQ(a.ok(), b.ok());
  if (a.ok()) {
    EXPECT_EQ(a->k, b->k);
    EXPECT_EQ(RenderSorts(a->refinement), RenderSorts(b->refinement));
  }
}

}  // namespace
}  // namespace rdfsr::core
