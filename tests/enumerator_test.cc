// Property tests: the pruned rough-assignment enumerator (signature-level
// sigma_r) must agree exactly with the brute-force semantics on the expanded
// matrix, for builtin and ad-hoc rules, across random datasets.

#include <gtest/gtest.h>

#include "eval/enumerator.h"
#include "gen/random_graph.h"
#include "rules/builtins.h"
#include "rules/parser.h"
#include "rules/semantics.h"
#include "schema/signature_index.h"

namespace rdfsr::eval {
namespace {

struct RuleCase {
  const char* name;
  const char* text;
};

const RuleCase kRuleCases[] = {
    {"Cov", "c = c -> val(c) = 1"},
    {"Sim", "!(c1 = c2) && prop(c1) = prop(c2) && val(c1) = 1 -> val(c2) = 1"},
    {"Dep", "subj(c1) = subj(c2) && prop(c1) = p0 && prop(c2) = p1 && "
            "val(c1) = 1 -> val(c2) = 1"},
    {"SymDep",
     "subj(c1) = subj(c2) && prop(c1) = p0 && prop(c2) = p1 && "
     "(val(c1) = 1 || val(c2) = 1) -> val(c1) = 1 && val(c2) = 1"},
    {"DepDisj", "subj(c1) = subj(c2) && prop(c1) = p0 && prop(c2) = p1 "
                "-> val(c1) = 0 || val(c2) = 1"},
    {"OrAnte", "val(c1) = 1 || prop(c1) = p1 -> val(c1) = 1"},
    {"ValEqVal", "subj(c1) = subj(c2) && !(c1 = c2) -> val(c1) = val(c2)"},
    {"NegProp", "!(prop(c) = p0) -> val(c) = 1"},
};

class EnumeratorPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(EnumeratorPropertyTest, AgreesWithBruteForce) {
  const int rule_id = std::get<0>(GetParam());
  const std::uint64_t seed = std::get<1>(GetParam());

  gen::RandomIndexSpec spec;
  spec.num_signatures = 3 + static_cast<int>(seed % 3);
  spec.num_properties = 3;
  spec.max_count = 4;
  spec.density = 0.45;
  spec.seed = seed;
  const schema::SignatureIndex index = gen::GenerateRandomIndex(spec);
  const schema::PropertyMatrix matrix = index.ToMatrix();

  auto rule = rules::ParseRule(kRuleCases[rule_id].text);
  ASSERT_TRUE(rule.ok()) << rule.status().ToString();

  const SigmaCounts fast = EvaluateRuleOnIndex(*rule, index);
  const rules::SigmaValue slow = rules::EvaluateBruteForce(*rule, matrix);
  EXPECT_EQ(static_cast<long long>(fast.total), slow.total)
      << kRuleCases[rule_id].name << " totals diverge (seed " << seed << ")";
  EXPECT_EQ(static_cast<long long>(fast.favorable), slow.favorable)
      << kRuleCases[rule_id].name << " favorables diverge (seed " << seed
      << ")";
}

INSTANTIATE_TEST_SUITE_P(
    RuleBySeed, EnumeratorPropertyTest,
    ::testing::Combine(::testing::Range(0, 8),
                       ::testing::Values(1, 2, 3, 4, 5, 6)),
    [](const ::testing::TestParamInfo<std::tuple<int, std::uint64_t>>& info) {
      return std::string(kRuleCases[std::get<0>(info.param)].name) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

TEST(EnumeratorTest, TauCountsSumToEvaluate) {
  gen::RandomIndexSpec spec;
  spec.num_signatures = 5;
  spec.num_properties = 4;
  spec.max_count = 9;
  spec.seed = 77;
  const schema::SignatureIndex index = gen::GenerateRandomIndex(spec);
  const rules::Rule rule = rules::SimRule();
  const std::vector<TauCount> taus = EnumerateTauCounts(rule, index);
  SigmaCounts sum;
  for (const TauCount& tc : taus) {
    EXPECT_GT(tc.total, 0) << "zero-total tau materialized";
    sum.total += tc.total;
    sum.favorable += tc.favorable;
  }
  const SigmaCounts direct = EvaluateRuleOnIndex(rule, index);
  EXPECT_EQ(static_cast<long long>(sum.total),
            static_cast<long long>(direct.total));
  EXPECT_EQ(static_cast<long long>(sum.favorable),
            static_cast<long long>(direct.favorable));
}

TEST(EnumeratorTest, TauCountsDeterministicOrder) {
  gen::RandomIndexSpec spec;
  spec.seed = 3;
  const schema::SignatureIndex index = gen::GenerateRandomIndex(spec);
  const rules::Rule rule = rules::CovRule();
  const auto a = EnumerateTauCounts(rule, index);
  const auto b = EnumerateTauCounts(rule, index);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(a[i].tau == b[i].tau);
    EXPECT_EQ(a[i].total, b[i].total);
  }
}

TEST(EnumeratorTest, CovTauCountsAreSubjectCounts) {
  std::vector<schema::Signature> sigs = {{{0, 1}, 7}, {{0}, 3}};
  const schema::SignatureIndex index =
      schema::SignatureIndex::FromSignatures({"a", "b"}, sigs);
  const auto taus = EnumerateTauCounts(rules::CovRule(), index);
  // Every (signature, property) pair is a tau with total = |S_mu|.
  ASSERT_EQ(taus.size(), 4u);
  std::int64_t total = 0, favorable = 0;
  for (const auto& tc : taus) {
    total += tc.total;
    favorable += tc.favorable;
  }
  EXPECT_EQ(total, 20);      // 10 subjects x 2 columns
  EXPECT_EQ(favorable, 17);  // ones: 7*2 + 3*1
}

TEST(EnumeratorTest, PartialEvaluationPrunesSim) {
  // For Sim, tau candidates must have prop(c1) == prop(c2) and val(c1)=1;
  // the enumerator must not materialize anything else.
  gen::RandomIndexSpec spec;
  spec.num_signatures = 6;
  spec.num_properties = 5;
  spec.seed = 11;
  const schema::SignatureIndex index = gen::GenerateRandomIndex(spec);
  const auto taus = EnumerateTauCounts(rules::SimRule(), index);
  for (const auto& tc : taus) {
    EXPECT_EQ(tc.tau.cells[0].second, tc.tau.cells[1].second);
    EXPECT_TRUE(index.Has(tc.tau.cells[0].first, tc.tau.cells[0].second));
  }
}

TEST(EnumeratorTest, EmptyIndexYieldsSigmaOne) {
  const schema::SignatureIndex index;
  const SigmaCounts counts = EvaluateRuleOnIndex(rules::CovRule(), index);
  EXPECT_EQ(static_cast<long long>(counts.total), 0);
  EXPECT_DOUBLE_EQ(counts.Value(), 1.0);
}

TEST(PartialEvaluateTest, DecidesWhatItCan) {
  std::vector<schema::Signature> sigs = {{{0}, 2}, {{1}, 2}};
  const schema::SignatureIndex index =
      schema::SignatureIndex::FromSignatures({"p0", "p1"}, sigs);
  const std::vector<std::string> vars = {"c1", "c2"};

  RoughAssignment partial;
  partial.cells = {{0, 0}, {-1, -1}};  // c1 on (sig0, p0); c2 unassigned

  auto eval = [&](const char* text) {
    auto f = rules::ParseFormula(text);
    EXPECT_TRUE(f.ok());
    return PartialEvaluate(*f, vars, partial, index);
  };
  EXPECT_EQ(eval("val(c1) = 1"), Tri::kTrue);       // sig0 has p0
  EXPECT_EQ(eval("val(c1) = 0"), Tri::kFalse);
  EXPECT_EQ(eval("prop(c1) = p0"), Tri::kTrue);
  EXPECT_EQ(eval("prop(c1) = p1"), Tri::kFalse);
  EXPECT_EQ(eval("val(c2) = 1"), Tri::kUnknown);    // unassigned
  EXPECT_EQ(eval("subj(c1) = subj(c2)"), Tri::kUnknown);
  EXPECT_EQ(eval("val(c1) = 1 && val(c2) = 1"), Tri::kUnknown);
  EXPECT_EQ(eval("val(c1) = 0 && val(c2) = 1"), Tri::kFalse);
  EXPECT_EQ(eval("val(c1) = 1 || val(c2) = 1"), Tri::kTrue);
  EXPECT_EQ(eval("!(val(c1) = 1)"), Tri::kFalse);
  EXPECT_EQ(eval("c1 = c1"), Tri::kTrue);

  // Both assigned, different signatures: subject equality decided false.
  partial.cells[1] = {1, 1};
  EXPECT_EQ(eval("subj(c1) = subj(c2)"), Tri::kFalse);
  EXPECT_EQ(eval("c1 = c2"), Tri::kFalse);
  // Same signature set: may or may not be the same subject.
  partial.cells[1] = {0, 0};
  EXPECT_EQ(eval("subj(c1) = subj(c2)"), Tri::kUnknown);
  EXPECT_EQ(eval("c1 = c2"), Tri::kUnknown);
}

}  // namespace
}  // namespace rdfsr::eval
