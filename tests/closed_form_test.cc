// Property tests: closed-form structuredness (Cov/Sim/Dep/SymDep/DepDisj and
// CovIgnoring) must agree exactly with the generic signature-level enumerator
// on full indexes and on restricted subsets (implicit sorts).

#include <gtest/gtest.h>

#include "eval/closed_form.h"
#include "eval/enumerator.h"
#include "eval/evaluator.h"
#include "gen/random_graph.h"
#include "rules/builtins.h"
#include "rules/parser.h"
#include "schema/signature_index.h"

namespace rdfsr::eval {
namespace {

void ExpectSameCounts(const SigmaCounts& a, const SigmaCounts& b,
                      const std::string& label) {
  EXPECT_EQ(static_cast<long long>(a.total), static_cast<long long>(b.total))
      << label << " totals";
  EXPECT_EQ(static_cast<long long>(a.favorable),
            static_cast<long long>(b.favorable))
      << label << " favorables";
}

class ClosedFormPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  schema::SignatureIndex MakeIndex() const {
    gen::RandomIndexSpec spec;
    spec.num_signatures = 4 + static_cast<int>(GetParam() % 4);
    spec.num_properties = 4;
    spec.max_count = 12;
    spec.density = 0.5;
    spec.seed = GetParam();
    return gen::GenerateRandomIndex(spec);
  }
};

TEST_P(ClosedFormPropertyTest, CovMatchesGeneric) {
  const schema::SignatureIndex index = MakeIndex();
  const std::vector<int> all = AllSignatures(index);
  ExpectSameCounts(CovCounts(index, all),
                   EvaluateRuleOnIndex(rules::CovRule(), index), "Cov");
}

TEST_P(ClosedFormPropertyTest, SimMatchesGeneric) {
  const schema::SignatureIndex index = MakeIndex();
  const std::vector<int> all = AllSignatures(index);
  ExpectSameCounts(SimCounts(index, all),
                   EvaluateRuleOnIndex(rules::SimRule(), index), "Sim");
}

TEST_P(ClosedFormPropertyTest, DepMatchesGeneric) {
  const schema::SignatureIndex index = MakeIndex();
  const std::vector<int> all = AllSignatures(index);
  ExpectSameCounts(
      DepCounts(index, all, "p0", "p1"),
      EvaluateRuleOnIndex(rules::DepRule("p0", "p1"), index), "Dep");
}

TEST_P(ClosedFormPropertyTest, SymDepMatchesGeneric) {
  const schema::SignatureIndex index = MakeIndex();
  const std::vector<int> all = AllSignatures(index);
  ExpectSameCounts(
      SymDepCounts(index, all, "p1", "p2"),
      EvaluateRuleOnIndex(rules::SymDepRule("p1", "p2"), index), "SymDep");
}

TEST_P(ClosedFormPropertyTest, DepDisjMatchesGeneric) {
  const schema::SignatureIndex index = MakeIndex();
  const std::vector<int> all = AllSignatures(index);
  ExpectSameCounts(
      DepDisjCounts(index, all, "p0", "p2"),
      EvaluateRuleOnIndex(rules::DepDisjunctiveRule("p0", "p2"), index),
      "DepDisj");
}

TEST_P(ClosedFormPropertyTest, CovIgnoringMatchesGeneric) {
  const schema::SignatureIndex index = MakeIndex();
  const std::vector<int> all = AllSignatures(index);
  const std::vector<std::string> ignored = {"p0", "p3"};
  ExpectSameCounts(
      CovIgnoringCounts(index, all, ignored),
      EvaluateRuleOnIndex(rules::CovRuleIgnoring(ignored), index),
      "CovIgnoring");
}

TEST_P(ClosedFormPropertyTest, SubsetsMatchGenericOnRestriction) {
  const schema::SignatureIndex index = MakeIndex();
  // Take every second signature as an implicit sort.
  std::vector<int> subset;
  for (std::size_t i = 0; i < index.num_signatures(); i += 2) {
    subset.push_back(static_cast<int>(i));
  }
  const schema::SignatureIndex sub = index.Restrict(subset);

  ExpectSameCounts(CovCounts(index, subset),
                   EvaluateRuleOnIndex(rules::CovRule(), sub), "Cov/subset");
  ExpectSameCounts(SimCounts(index, subset),
                   EvaluateRuleOnIndex(rules::SimRule(), sub), "Sim/subset");
  ExpectSameCounts(DepCounts(index, subset, "p0", "p1"),
                   EvaluateRuleOnIndex(rules::DepRule("p0", "p1"), sub),
                   "Dep/subset");
  ExpectSameCounts(SymDepCounts(index, subset, "p2", "p3"),
                   EvaluateRuleOnIndex(rules::SymDepRule("p2", "p3"), sub),
                   "SymDep/subset");
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClosedFormPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 13));

TEST(ClosedFormTest, DepMissingColumnIsTriviallyOne) {
  std::vector<schema::Signature> sigs = {{{0}, 5}, {{0, 1}, 5}};
  const schema::SignatureIndex index =
      schema::SignatureIndex::FromSignatures({"a", "b"}, sigs);
  // Restricting to the {a}-only signature removes column b entirely.
  const SigmaCounts counts = DepCounts(index, {0}, "a", "b");
  EXPECT_EQ(static_cast<long long>(counts.total), 0);
  EXPECT_DOUBLE_EQ(counts.Value(), 1.0);
  // Unknown property names behave the same way.
  const SigmaCounts unknown = DepCounts(index, {0, 1}, "a", "zzz");
  EXPECT_EQ(static_cast<long long>(unknown.total), 0);
}

TEST(ClosedFormTest, SymDepPaperExample) {
  // sigma_SymDep[deathPlace, deathDate] = |both| / |either|.
  std::vector<schema::Signature> sigs = {
      {{0, 1}, 39},  // both
      {{0}, 20},     // place only
      {{1}, 41},     // date only
      {{0, 1, 2}, 0 + 1},  // both + extra (keeps p2 used)
  };
  const schema::SignatureIndex index = schema::SignatureIndex::FromSignatures(
      {"deathPlace", "deathDate", "x"}, sigs);
  const SigmaCounts counts = SymDepCounts(index, AllSignatures(index),
                                          "deathPlace", "deathDate");
  EXPECT_EQ(static_cast<long long>(counts.favorable), 40);
  EXPECT_EQ(static_cast<long long>(counts.total), 101);
  EXPECT_NEAR(counts.Value(), 0.396, 0.001);
}

TEST(ClosedFormTest, EvaluatorDispatchesClosedForms) {
  gen::RandomIndexSpec spec;
  spec.seed = 5;
  const schema::SignatureIndex index = gen::GenerateRandomIndex(spec);
  const std::vector<int> all = AllSignatures(index);

  auto cov = MakeEvaluator(rules::CovRule(), &index);
  ExpectSameCounts(cov->Counts(all), CovCounts(index, all), "factory Cov");
  auto sim = MakeEvaluator(rules::SimRule(), &index);
  ExpectSameCounts(sim->Counts(all), SimCounts(index, all), "factory Sim");
  // The factory must route CovIgnoring to the closed form, not fall back to
  // the enumerator, recovering the ignored properties from the rule AST.
  auto cov_ign = MakeEvaluator(rules::CovRuleIgnoring({"p0", "p2"}), &index);
  EXPECT_NE(dynamic_cast<const ClosedFormEvaluator*>(cov_ign.get()), nullptr);
  ExpectSameCounts(cov_ign->Counts(all),
                   CovIgnoringCounts(index, all, {"p0", "p2"}),
                   "factory CovIgnoring");
  // A property IRI containing a comma must survive the round trip (the
  // display name's comma-joined list would mis-split it).
  auto comma = MakeEvaluator(rules::CovRuleIgnoring({"p0,p1"}), &index);
  ExpectSameCounts(comma->Counts(all),
                   CovIgnoringCounts(index, all, {"p0,p1"}),
                   "factory CovIgnoring comma-in-IRI");
  auto dep = MakeEvaluator(rules::DepRule("p0", "p1"), &index);
  ExpectSameCounts(dep->Counts(all), DepCounts(index, all, "p0", "p1"),
                   "factory Dep");
  auto symdep = MakeEvaluator(rules::SymDepRule("p0", "p1"), &index);
  ExpectSameCounts(symdep->Counts(all), SymDepCounts(index, all, "p0", "p1"),
                   "factory SymDep");
}

TEST(ClosedFormTest, FactoryFallsBackToGenericForAdHocRules) {
  gen::RandomIndexSpec spec;
  spec.seed = 6;
  const schema::SignatureIndex index = gen::GenerateRandomIndex(spec);
  auto parsed =
      rules::ParseRule("val(c1) = 1 && subj(c1) = subj(c2) -> val(c2) = 1");
  ASSERT_TRUE(parsed.ok());
  auto evaluator = MakeEvaluator(*parsed, &index);
  // Generic evaluator must agree with direct enumeration.
  ExpectSameCounts(evaluator->Counts(AllSignatures(index)),
                   EvaluateRuleOnIndex(*parsed, index), "generic");
}

TEST(ClosedFormTest, EvaluatorSigmaAllHelpers) {
  std::vector<schema::Signature> sigs = {{{0}, 1}, {{0, 1}, 1}};
  const schema::SignatureIndex index =
      schema::SignatureIndex::FromSignatures({"a", "b"}, sigs);
  auto cov = ClosedFormEvaluator::Cov(&index);
  EXPECT_NEAR(cov->SigmaAll(), 0.75, 1e-12);  // 3 ones / 4 cells
  EXPECT_NEAR(cov->Sigma({0}), 1.0, 1e-12);   // {a}-only sort is complete
}

}  // namespace
}  // namespace rdfsr::eval
