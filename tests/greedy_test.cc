// Greedy/local-search backend tests: validity of produced partitions,
// agreement with exhaustive search on small instances, determinism.

#include <gtest/gtest.h>

#include "core/greedy.h"
#include "eval/evaluator.h"
#include "eval/partitions.h"
#include "gen/random_graph.h"
#include "rules/builtins.h"

namespace rdfsr::core {
namespace {

/// Best achievable min-sigma over all partitions into <= k parts.
double BruteForceMaxMin(const eval::Evaluator& evaluator, int k) {
  const int n = static_cast<int>(evaluator.index().num_signatures());
  double best = -1.0;
  eval::ForEachSetPartition(n, [&](const std::vector<int>& class_of) {
    const int classes =
        *std::max_element(class_of.begin(), class_of.end()) + 1;
    if (classes > k) return true;
    std::vector<std::vector<int>> parts(classes);
    for (int i = 0; i < n; ++i) parts[class_of[i]].push_back(i);
    double min_sigma = 1.0;
    for (const auto& part : parts) {
      min_sigma = std::min(min_sigma, evaluator.Sigma(part));
    }
    best = std::max(best, min_sigma);
    return true;
  });
  return best;
}

TEST(GreedyTest, ProducesValidPartitions) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    gen::RandomIndexSpec spec;
    spec.num_signatures = 7;
    spec.num_properties = 4;
    spec.seed = seed;
    const schema::SignatureIndex index = gen::GenerateRandomIndex(spec);
    auto evaluator = eval::MakeEvaluator(rules::CovRule(), &index);
    const SortRefinement ref = GreedyMaxMinSigma(*evaluator, 3);
    // Partition validity at threshold 0 (structure only).
    EXPECT_TRUE(ValidateRefinement(*evaluator, ref, Rational(0)).ok());
    EXPECT_LE(ref.num_sorts(), 3u);
  }
}

TEST(GreedyTest, NearOptimalOnSmallInstances) {
  // Greedy is a heuristic; on 5-signature instances with k=2 it should land
  // close to the exhaustive optimum most of the time. We require it to be
  // within 0.1 of optimal on every instance (empirically it is optimal).
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    gen::RandomIndexSpec spec;
    spec.num_signatures = 5;
    spec.num_properties = 3;
    spec.max_count = 5;
    spec.seed = seed;
    const schema::SignatureIndex index = gen::GenerateRandomIndex(spec);
    auto evaluator = eval::MakeEvaluator(rules::CovRule(), &index);
    const double best = BruteForceMaxMin(*evaluator, 2);
    const SortRefinement ref = GreedyMaxMinSigma(*evaluator, 2);
    EXPECT_GE(MinSigma(*evaluator, ref), best - 0.1) << "seed " << seed;
  }
}

TEST(GreedyTest, SingleSlotReturnsWholeDataset) {
  gen::RandomIndexSpec spec;
  spec.num_signatures = 4;
  spec.seed = 3;
  const schema::SignatureIndex index = gen::GenerateRandomIndex(spec);
  auto evaluator = eval::MakeEvaluator(rules::SimRule(), &index);
  const SortRefinement ref = GreedyMaxMinSigma(*evaluator, 1);
  ASSERT_EQ(ref.num_sorts(), 1u);
  EXPECT_EQ(ref.sorts[0].size(), 4u);
}

TEST(GreedyTest, DeterministicForFixedSeed) {
  gen::RandomIndexSpec spec;
  spec.num_signatures = 8;
  spec.seed = 5;
  const schema::SignatureIndex index = gen::GenerateRandomIndex(spec);
  auto evaluator = eval::MakeEvaluator(rules::CovRule(), &index);
  GreedyOptions options;
  options.seed = 99;
  const SortRefinement a = GreedyMaxMinSigma(*evaluator, 3, options);
  const SortRefinement b = GreedyMaxMinSigma(*evaluator, 3, options);
  ASSERT_EQ(a.num_sorts(), b.num_sorts());
  for (std::size_t i = 0; i < a.num_sorts(); ++i) {
    EXPECT_EQ(a.sorts[i], b.sorts[i]);
  }
}

TEST(GreedyTest, FindRefinementValidatesThreshold) {
  // Perfect split exists: {a}-sigs and {a,b}-sigs (Cov = 1 apart).
  std::vector<schema::Signature> sigs = {{{0}, 3}, {{0, 1}, 2}};
  const schema::SignatureIndex index =
      schema::SignatureIndex::FromSignatures({"a", "b"}, sigs);
  auto evaluator = eval::MakeEvaluator(rules::CovRule(), &index);
  auto found = GreedyFindRefinement(*evaluator, 2, Rational(1));
  ASSERT_TRUE(found.has_value());
  EXPECT_TRUE(ValidateRefinement(*evaluator, *found, Rational(1)).ok());
  // An impossible threshold: the whole dataset has Cov < 1 with k = 1.
  auto impossible = GreedyFindRefinement(*evaluator, 1, Rational(1));
  EXPECT_FALSE(impossible.has_value());
}

TEST(RefinementTest, SummaryAndSubjects) {
  std::vector<schema::Signature> sigs = {{{0}, 5}, {{1}, 3}};
  const schema::SignatureIndex index =
      schema::SignatureIndex::FromSignatures({"a", "b"}, sigs);
  SortRefinement ref;
  ref.sorts = {{0}, {1}};
  EXPECT_EQ(ref.SubjectsIn(index, 0), 5);
  EXPECT_EQ(ref.SubjectsIn(index, 1), 3);
  const std::string summary = ref.Summary(index);
  EXPECT_NE(summary.find("2 sorts"), std::string::npos);
}

TEST(RefinementTest, ValidationRejectsBadPartitions) {
  std::vector<schema::Signature> sigs = {{{0}, 5}, {{1}, 3}};
  const schema::SignatureIndex index =
      schema::SignatureIndex::FromSignatures({"a", "b"}, sigs);
  auto evaluator = eval::MakeEvaluator(rules::CovRule(), &index);

  SortRefinement missing;
  missing.sorts = {{0}};
  EXPECT_FALSE(ValidateRefinement(*evaluator, missing, Rational(0)).ok());

  SortRefinement duplicated;
  duplicated.sorts = {{0, 1}, {1}};
  EXPECT_FALSE(ValidateRefinement(*evaluator, duplicated, Rational(0)).ok());

  SortRefinement empty_sort;
  empty_sort.sorts = {{0, 1}, {}};
  EXPECT_FALSE(ValidateRefinement(*evaluator, empty_sort, Rational(0)).ok());

  SortRefinement unknown_sig;
  unknown_sig.sorts = {{0, 1, 7}};
  EXPECT_FALSE(ValidateRefinement(*evaluator, unknown_sig, Rational(0)).ok());

  SortRefinement ok;
  ok.sorts = {{0}, {1}};
  EXPECT_TRUE(ValidateRefinement(*evaluator, ok, Rational(0)).ok());
}

TEST(RefinementTest, SigmaAtLeastIsExact) {
  eval::SigmaCounts counts;
  counts.favorable = 9;
  counts.total = 10;
  EXPECT_TRUE(SigmaAtLeast(counts, Rational(9, 10)));
  EXPECT_FALSE(SigmaAtLeast(counts, Rational(91, 100)));
  counts.total = 0;
  EXPECT_TRUE(SigmaAtLeast(counts, Rational(1)));  // vacuous sigma = 1
}

}  // namespace
}  // namespace rdfsr::core
